// psml-ct — constant-time and implicit-flow analyzer for ParSecureML-Repro.
//
// Where psml-taint asks "does secret data reach a plaintext sink?", psml-ct
// asks the side-channel question: "does secret data steer *execution*?" A
// passive network observer only sees ciphertext-like masked shares, but a
// co-resident attacker sees timing, and timing is shaped by branches, memory
// access patterns, and variable-latency instructions. MPC's security
// argument assumes the local computation on shares is data-oblivious; this
// tool checks that assumption over the protocol code.
//
// Built on the shared whole-program model in tools/lint-common/model.*
// (same stripping, same PSML_SECRET/PSML_PUBLIC seeds, same declassifier
// semantics, same signature-keyed cross-TU summaries as psml-taint), plus a
// lightweight per-function CFG: a region stack tracking which open
// if/else/while/for/switch blocks are controlled by secret conditions.
// Values written while a secret region is open pick up implicit taint
// (kSecret|kImplicit) at the region's join — the classic implicit-flow rule,
// done conservatively with a single environment (assignments under a branch
// simply persist past the join).
//
// Rules:
//   secret-branch     an if/while/for/switch/ternary condition is computed
//                     from secret taint. The branch *direction* is then
//                     observable through timing/trace; branch on opened
//                     (reconstructed/declassified) values or use an
//                     oblivious select instead.
//   secret-index      a subscript, .at() call, or *(p + i) pointer
//                     dereference indexes memory with a secret-derived
//                     value; the access pattern leaks through the cache.
//   variable-latency  '/', '%', an early-exit comparison (memcmp/strcmp
//                     family), or a short-circuit &&/|| consumes a secret
//                     operand. Division/modulo latency is operand-dependent
//                     on most cores; short-circuit evaluation is a hidden
//                     branch. A curated table of vetted constant-time ring
//                     helpers (kCtSafeFns below) is exempt: wraparound
//                     add/sub/matmul and shift-based fixed-point scaling
//                     compile to branch-free straight-line code.
//   non-ct-declassify a declassify()/reconstruct_* call observable under —
//                     or applied to a value computed under — a secret
//                     branch. Opening the value (or the act of communicating
//                     at all) reveals which way the secret branch went, so
//                     the declassification is wider than the annotation
//                     claims. Declassify the branch condition itself first.
//
// Interprocedural: a function that branches on / indexes with / divides by
// parameter i records a ct-bit for i in its summary; call sites feeding a
// secret into that parameter are flagged, to a cross-TU fixpoint — same
// machinery as psml-taint's sink_params, on the ct_params channel.
//
// Output: file:line diagnostics plus optional SARIF 2.1.0 (--sarif FILE).
// Shares the justified-allowlist mechanism and the hard entry budget with
// psml-lint/psml-taint. Heuristic (token-level, not a real C++ parser); see
// docs/ANALYSIS.md §8 for the accuracy contract.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "lint_common.hpp"
#include "model.hpp"

namespace fs = std::filesystem;
using psml::lint::AllowEntry;
using psml::lint::ident_char;
using psml::lint::ident_ending_at;
using psml::lint::ident_starting_at;
using psml::lint::RuleInfo;
using psml::lint::skip_spaces_back;
using psml::lint::skip_spaces_fwd;
using psml::lint::Violation;
using namespace psml::lint::model;

namespace {

constexpr std::uint64_t kParamBits = (1ull << kMaxParams) - 1;

// Vetted constant-time helpers: bodies are exempt from the rules and calls
// never propagate ct-bits. Every entry must be justified in
// docs/ANALYSIS.md §8.3 — the justification is part of the audit surface.
//   ring_add/ring_sub      elementwise uint64 wraparound, branch-free loops
//   ring_matmul            packed-panel GEMM over Z_2^64; fixed blocking,
//                          no data-dependent control flow
//   encode_fixed/decode_fixed  scale by the power-of-two constant 2^13;
//                          int<->double conversion + constant multiply
//   truncate_share         arithmetic shift by the constant kFracBits
//   ring_scale_share       constant multiply + truncate_share
const std::set<std::string>& ct_safe_fns() {
  static const std::set<std::string> fns{
      "ring_add",       "ring_sub",         "ring_matmul", "encode_fixed",
      "decode_fixed",   "truncate_share",   "ring_scale_share"};
  return fns;
}

const std::set<std::string>& early_exit_cmps() {
  static const std::set<std::string> fns{"memcmp", "strcmp", "strncmp",
                                         "strcasecmp", "bcmp"};
  return fns;
}

// True when `text`, after leading spaces, starts with keyword `tok`.
bool starts_with_tok(const std::string& text, const std::string& tok) {
  const std::size_t b = skip_spaces_fwd(text, 0);
  return text.compare(b, tok.size(), tok) == 0 &&
         (b + tok.size() >= text.size() || !ident_char(text[b + tok.size()]));
}

// Splits on top-level ';' (the for-header clause separator).
std::vector<std::string> split_semis(const std::string& s) {
  std::vector<std::string> parts;
  int depth = 0;
  std::size_t start = 0;
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (c == '(' || c == '[' || c == '{') ++depth;
    if (c == ')' || c == ']' || c == '}') --depth;
    if (c == ';' && depth == 0) {
      parts.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  parts.push_back(s.substr(start));
  return parts;
}

// Position just past the ']' matching the '[' at `open`, or npos.
std::size_t match_bracket(const std::string& s, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < s.size(); ++i) {
    if (s[i] == '[') ++depth;
    if (s[i] == ']' && --depth == 0) return i + 1;
  }
  return std::string::npos;
}

// The operand expression ending just before position `op` (exclusive):
// either a parenthesized span or an identifier chain with member/subscript
// links. Empty when there is no plausible operand.
std::string left_operand(const std::string& s, std::size_t op) {
  if (op == 0) return {};
  std::size_t i = skip_spaces_back(s, op - 1);
  if (i == std::string::npos) return {};
  const std::size_t end = i;
  while (true) {
    // Consume one component ending at i: a (...)/[...] span or an
    // identifier; i lands on the component's first character.
    if (s[i] == ')' || s[i] == ']') {
      const char open_c = s[i] == ')' ? '(' : '[';
      const char close_c = s[i];
      int depth = 0;
      while (true) {
        if (s[i] == close_c) ++depth;
        if (s[i] == open_c && --depth == 0) break;
        if (i == 0) return {};
        --i;
      }
    } else if (ident_char(s[i])) {
      while (i > 0 && ident_char(s[i - 1])) --i;
    } else {
      return {};
    }
    if (i == 0) break;
    // Chain left: a call/subscript head (`name(` / `name[`), or a member /
    // scope link (a.b, a->b, a::b).
    if ((s[i] == '(' || s[i] == '[') &&
        (ident_char(s[i - 1]) || s[i - 1] == ')' || s[i - 1] == ']')) {
      --i;
      continue;
    }
    if (s[i - 1] == '.') {
      if (i < 2) break;
      i -= 2;
      continue;
    }
    if (i >= 2 && s[i - 1] == ':' && s[i - 2] == ':') {
      if (i < 3) break;
      i -= 3;
      continue;
    }
    if (i >= 2 && s[i - 1] == '>' && s[i - 2] == '-') {
      if (i < 3) break;
      i -= 3;
      continue;
    }
    break;
  }
  return s.substr(i, end - i + 1);
}

// The operand expression starting at position `begin`: identifier chain
// (with calls/subscripts/members) or parenthesized span.
std::string right_operand(const std::string& s, std::size_t begin) {
  std::size_t i = skip_spaces_fwd(s, begin);
  while (i < s.size() && (s[i] == '!' || s[i] == '*' || s[i] == '&' ||
                          s[i] == '-' || s[i] == '+' || s[i] == '~')) {
    ++i;  // unary prefixes
  }
  const std::size_t start = i;
  while (i < s.size()) {
    if (s[i] == '(') {
      const std::size_t e = match_paren(s, i);
      if (e == std::string::npos) return s.substr(start);
      i = e;
    } else if (s[i] == '[') {
      const std::size_t e = match_bracket(s, i);
      if (e == std::string::npos) return s.substr(start);
      i = e;
    } else if (ident_char(s[i])) {
      ++i;
    } else if (s[i] == '.' || (s[i] == ':' && i + 1 < s.size() && s[i + 1] == ':')) {
      i += s[i] == ':' ? 2 : 1;
    } else if (s[i] == '-' && i + 1 < s.size() && s[i + 1] == '>') {
      i += 2;
    } else {
      break;
    }
  }
  return s.substr(start, i - start);
}

class CtAnalysis : public FlowAnalysis {
 public:
  CtAnalysis(const Function& fn, Model& model, std::vector<Violation>* sink)
      : FlowAnalysis(fn, model), report_(sink),
        vetted_(ct_safe_fns().count(fn.name) != 0) {}

 private:
  struct Region {
    enum Kind { kIf, kElse, kLoop, kSwitch, kOther };
    Kind kind = kOther;
    std::uint64_t cond_taint = 0;
  };

  void violate(const std::string& rule, std::size_t line,
               const std::string& msg) {
    if (report_ && !vetted_) report_->push_back({fn_.file, line, rule, msg});
  }

  void record_ct_bits(std::uint64_t t, const std::string& rule,
                      std::size_t line) {
    if (vetted_) return;
    for (int b = 0; b < kMaxParams; ++b) {
      if (t & (1ull << b)) {
        summary_.ct_params |= 1ull << b;
        summary_.ct_info.emplace(b, std::make_pair(rule, where(line)));
      }
    }
  }

  // Evaluates a control condition. Reports secret-branch, records ct-bits
  // for parameter-derived conditions, and returns the taint so the caller
  // can mark the region it controls.
  std::uint64_t check_condition(const std::string& cond, std::size_t line,
                                const std::string& what) {
    std::uint64_t t = expr_taint(cond);
    if (t & kSecret) {
      violate("secret-branch", line,
              "secret '" + secret_witness(cond) + "' controls " + what +
                  "; the branch direction is observable through timing — "
                  "branch on an opened (reconstruct_*/declassify) value or "
                  "use a data-oblivious select");
    }
    record_ct_bits(t, "secret-branch", line);
    if (t & kSecret) t |= kImplicit;
    return t;
  }

  std::uint64_t implicit_taint() const override {
    std::uint64_t t = stmt_implicit_;
    for (const Region& r : regions_) t |= r.cond_taint;
    if (t & kSecret) t |= kImplicit;
    return t;
  }

  // -- CFG region tracking ---------------------------------------------------

  void on_block_open(const Stmt& s) override {
    regions_.push_back(classify(s));
  }

  void on_block_close() override {
    if (regions_.empty()) return;
    const Region r = regions_.back();
    regions_.pop_back();
    if (r.kind == Region::kIf) last_if_taint_ = r.cond_taint;
  }

  Region classify(const Stmt& s) {
    const std::string& t = s.text;
    Region r;
    if (starts_with_tok(t, "if") ||
        (starts_with_tok(t, "else") && t.find("if") != std::string::npos &&
         t.find('(') != std::string::npos)) {
      r.kind = Region::kIf;
      r.cond_taint = header_condition(t, s.line, "an if condition");
    } else if (starts_with_tok(t, "else")) {
      // An else branch is controlled by the same secret as its if: taking
      // it reveals the condition was false.
      r.kind = Region::kElse;
      r.cond_taint = last_if_taint_;
    } else if (starts_with_tok(t, "while")) {
      r.kind = Region::kLoop;
      r.cond_taint = header_condition(t, s.line, "a loop condition");
    } else if (starts_with_tok(t, "switch")) {
      r.kind = Region::kSwitch;
      r.cond_taint = header_condition(t, s.line, "a switch condition");
    } else if (starts_with_tok(t, "for")) {
      r.kind = Region::kLoop;
      r.cond_taint = for_condition(t, s.line);
    } else {
      r.kind = Region::kOther;  // plain block, lambda, do-body, try, ...
    }
    return r;
  }

  // Condition of an if/while/switch header, honoring C++17 init-statements
  // (`if (auto v = f(); cond)` — the last ';'-clause is the condition).
  std::uint64_t header_condition(const std::string& t, std::size_t line,
                                 const std::string& what) {
    const std::size_t open = t.find('(');
    if (open == std::string::npos) return 0;
    const std::size_t end = match_paren(t, open);
    const std::size_t stop = end == std::string::npos ? t.size() : end - 1;
    const auto clauses = split_semis(t.substr(open + 1, stop - open - 1));
    return check_condition(clauses.back(), line, what);
  }

  // A for header contributes only its middle (condition) clause: iterating
  // over a secret container (range-for) or stepping a secret value is not
  // itself observable — the trip count is. Range-for has no condition.
  std::uint64_t for_condition(const std::string& t, std::size_t line) {
    const std::size_t open = t.find('(');
    if (open == std::string::npos) return 0;
    const std::size_t end = match_paren(t, open);
    const std::size_t stop = end == std::string::npos ? t.size() : end - 1;
    const std::string inner = t.substr(open + 1, stop - open - 1);
    const auto clauses = split_semis(inner);
    if (clauses.size() < 2) return 0;  // range-for or malformed
    return check_condition(clauses[1], line, "a loop condition");
  }

  // -- per-statement rules ---------------------------------------------------

  void on_stmt(const Stmt& s) override {
    stmt_implicit_ = 0;
    const std::string& t = s.text;

    // Braceless control statements arrive as a single kNormal stmt
    // ("if (c) x = 1"); the do-while trailer ("while (c)") too. Check the
    // condition and make any trailing inline body pick up implicit taint.
    if (s.kind == Stmt::kNormal) {
      if (starts_with_tok(t, "if") ||
          (starts_with_tok(t, "else") && t.find("if(") != std::string::npos) ||
          (starts_with_tok(t, "else") && t.find("if (") != std::string::npos)) {
        stmt_implicit_ = header_condition(t, s.line, "an if condition");
      } else if (starts_with_tok(t, "while")) {
        stmt_implicit_ = header_condition(t, s.line, "a loop condition");
      } else if (starts_with_tok(t, "for")) {
        stmt_implicit_ = for_condition(t, s.line);
      } else if (starts_with_tok(t, "else")) {
        stmt_implicit_ = last_if_taint_;
      }
    }

    scan_ternary(s);
    scan_indexing(s);
    scan_variable_latency(s);
    scan_declassify_under_branch(s);
    scan_callee_ct(s);
  }

  // `cond ? a : b` — the selected arm is timing-visible like any branch.
  void scan_ternary(const Stmt& s) {
    const std::string t = blank_declassifiers(s.text);
    for (std::size_t i = 0; i < t.size(); ++i) {
      if (t[i] != '?') continue;
      if (i + 1 < t.size() && t[i + 1] == ':') continue;  // GNU ?: — skip arm
      // The condition spans back to the nearest unmatched '(' or top-level
      // '=' / ',' / start; strip a leading `return`.
      std::size_t begin = 0;
      int depth = 0;
      for (std::size_t j = i; j > 0; --j) {
        const char c = t[j - 1];
        if (c == ')' || c == ']') ++depth;
        if (c == '(' || c == '[') {
          if (depth == 0) {
            begin = j;
            break;
          }
          --depth;
        }
        if (depth == 0 && (c == '=' || c == ',' || c == ';')) {
          begin = j;
          break;
        }
      }
      std::string cond = trim(t.substr(begin, i - begin));
      if (cond.compare(0, 6, "return") == 0 &&
          (cond.size() == 6 || !ident_char(cond[6]))) {
        cond = cond.substr(6);
      }
      if (trim(cond).empty()) continue;
      const std::uint64_t ct = expr_taint(cond);
      if (ct & kSecret) {
        violate("secret-branch", s.line,
                "secret '" + secret_witness(cond) +
                    "' controls a ternary condition; the selected arm is "
                    "observable through timing — select on opened data or "
                    "compute both arms and blend");
      }
      record_ct_bits(ct, "secret-branch", s.line);
    }
  }

  // Subscripts, .at(), and *(p + i) dereferences with secret-derived
  // indices: the touched cache lines reveal the index.
  void scan_indexing(const Stmt& s) {
    const std::string t = blank_declassifiers(s.text);
    for (std::size_t i = 0; i < t.size(); ++i) {
      if (t[i] != '[') continue;
      // Subscript only: the '[' must follow a value (identifier, ')' or
      // ']'), which excludes lambda captures and [[attributes]]. Structured
      // bindings (`auto [a, b] = ...`) follow the keyword, not a value.
      const std::size_t prev = skip_spaces_back(t, i == 0 ? 0 : i - 1);
      if (i == 0 || prev == std::string::npos ||
          !(ident_char(t[prev]) || t[prev] == ')' || t[prev] == ']')) {
        continue;
      }
      if (ident_ending_at(t, prev) == "auto") continue;
      const std::size_t end = match_bracket(t, i);
      const std::size_t stop = end == std::string::npos ? t.size() : end - 1;
      const std::string idx = t.substr(i + 1, stop - i - 1);
      const std::uint64_t it = expr_taint(idx);
      if (it & kSecret) {
        violate("secret-index", s.line,
                "secret '" + secret_witness(idx) +
                    "' indexes memory; the access pattern leaks through the "
                    "cache — index with public values or scan all entries "
                    "obliviously");
      }
      record_ct_bits(it, "secret-index", s.line);
    }
    // .at( / ->at(
    std::size_t pos = 0;
    while ((pos = t.find("at", pos)) != std::string::npos) {
      const std::size_t after = pos + 2;
      const bool member =
          pos > 0 && (t[pos - 1] == '.' ||
                      (pos > 1 && t[pos - 2] == '-' && t[pos - 1] == '>'));
      if (!member || (after < t.size() && ident_char(t[after]))) {
        pos = after;
        continue;
      }
      const std::size_t open = skip_spaces_fwd(t, after);
      if (open < t.size() && t[open] == '(') {
        const std::size_t end = match_paren(t, open);
        const std::size_t stop = end == std::string::npos ? t.size() : end - 1;
        const std::string idx = t.substr(open + 1, stop - open - 1);
        const std::uint64_t it = expr_taint(idx);
        if (it & kSecret) {
          violate("secret-index", s.line,
                  "secret '" + secret_witness(idx) +
                      "' indexes memory via .at(); the access pattern leaks "
                      "through the cache");
        }
        record_ct_bits(it, "secret-index", s.line);
      }
      pos = after;
    }
    // *(p + i): a '*' in dereference position (after '=', '(', ',', ';',
    // '{', 'return', or at statement start) whose parenthesized operand does
    // pointer arithmetic.
    pos = 0;
    while ((pos = t.find("*(", pos)) != std::string::npos) {
      const std::size_t prev = skip_spaces_back(t, pos == 0 ? 0 : pos - 1);
      const bool deref =
          pos == 0 || prev == std::string::npos ||
          (!ident_char(t[prev]) && t[prev] != ')' && t[prev] != ']') ||
          ident_ending_at(t, prev) == "return";
      if (!deref) {
        pos += 2;
        continue;
      }
      const std::size_t end = match_paren(t, pos + 1);
      const std::size_t stop = end == std::string::npos ? t.size() : end - 1;
      const std::string inner = t.substr(pos + 2, stop - pos - 2);
      if (inner.find('+') != std::string::npos ||
          inner.find('-') != std::string::npos) {
        const std::uint64_t it = expr_taint(inner);
        if (it & kSecret) {
          violate("secret-index", s.line,
                  "secret '" + secret_witness(inner) +
                      "' feeds pointer arithmetic in a dereference; the "
                      "access pattern leaks through the cache");
        }
        record_ct_bits(it, "secret-index", s.line);
      }
      pos += 2;
    }
  }

  void check_operand_latency(const std::string& operand, std::size_t line,
                             const std::string& what) {
    if (trim(operand).empty()) return;
    const std::uint64_t t = expr_taint(operand);
    if (t & kSecret) {
      violate("variable-latency", line,
              "secret '" + secret_witness(operand) + "' feeds " + what +
                  "; execution latency depends on the operand value — use "
                  "the vetted constant-time ring helpers or mask first");
    }
    record_ct_bits(t, "variable-latency", line);
  }

  void scan_variable_latency(const Stmt& s) {
    const std::string t = blank_declassifiers(s.text);
    for (std::size_t i = 0; i < t.size(); ++i) {
      const char c = t[i];
      if (c == '/' || c == '%') {
        // Not operator declarations; '%' never survives in strings (the
        // stripper blanked them).
        const std::size_t prev = skip_spaces_back(t, i == 0 ? 0 : i - 1);
        if (prev != std::string::npos &&
            ident_ending_at(t, prev) == "operator") {
          continue;
        }
        const std::string what = c == '/' ? "a division" : "a modulo";
        check_operand_latency(left_operand(t, i), s.line, what);
        check_operand_latency(
            right_operand(t, i + (i + 1 < t.size() && t[i + 1] == '=' ? 2 : 1)),
            s.line, what);
      } else if ((c == '&' || c == '|') && i + 1 < t.size() &&
                 t[i + 1] == c) {
        const std::string left = left_operand(t, i);
        // `Type&& x` rvalue-reference declarations: the "operand" is a type
        // name, not a value.
        const std::string lroot = root_ident(left);
        if (c == '&' && (model_.secret_types.count(lroot) ||
                         model_.secret_types.count(last_ident(left)))) {
          ++i;
          continue;
        }
        const std::string what =
            "a short-circuit '" + std::string(2, c) + "' (a hidden branch)";
        check_operand_latency(left, s.line, what);
        check_operand_latency(right_operand(t, i + 2), s.line, what);
        ++i;
      }
    }
    // Early-exit comparisons: latency reveals the first differing byte.
    for (const std::string& name : early_exit_cmps()) {
      std::size_t pos = 0;
      while ((pos = t.find(name, pos)) != std::string::npos) {
        const std::size_t after = pos + name.size();
        if ((pos > 0 && ident_char(t[pos - 1])) ||
            (after < t.size() && ident_char(t[after]))) {
          pos = after;
          continue;
        }
        const std::size_t open = skip_spaces_fwd(t, after);
        if (open < t.size() && t[open] == '(') {
          const std::size_t end = match_paren(t, open);
          const std::size_t stop = end == std::string::npos ? t.size() : end - 1;
          for (const std::string& a :
               split_args(t.substr(open + 1, stop - open - 1))) {
            check_operand_latency(
                a, s.line, "'" + name + "' (an early-exit comparison)");
          }
        }
        pos = after;
      }
    }
  }

  // declassify()/reconstruct_* under a secret branch, or applied to a value
  // that only became interesting under one: the call's observable effect
  // (timing, communication, the opened value itself) reveals the branch.
  void scan_declassify_under_branch(const Stmt& s) {
    const std::string& t = s.text;
    for (const std::string& d : declassifier_fns()) {
      std::size_t pos = 0;
      while ((pos = t.find(d, pos)) != std::string::npos) {
        const std::size_t after = pos + d.size();
        if ((pos > 0 && ident_char(t[pos - 1])) ||
            (after < t.size() && ident_char(t[after]))) {
          pos = after;
          continue;
        }
        const std::size_t open = skip_spaces_fwd(t, after);
        if (open >= t.size() || t[open] != '(') {
          pos = after;
          continue;
        }
        const std::size_t end = match_paren(t, open);
        const std::size_t stop = end == std::string::npos ? t.size() : end - 1;
        const std::string inner = t.substr(open + 1, stop - open - 1);
        const std::uint64_t it =
            expr_taint(inner) | implicit_taint() | stmt_implicit_;
        if (it & kImplicit) {
          violate("non-ct-declassify", s.line,
                  "'" + d +
                      "' under secret-dependent control flow: the opened "
                      "value (and the act of opening) reveals the branch "
                      "condition — declassify the condition itself, or hoist "
                      "the opening out of the branch");
        }
        pos = end == std::string::npos ? t.size() : end;
      }
    }
  }

  // Interprocedural: a secret argument feeding a parameter the callee
  // branches on / indexes with / divides by.
  void scan_callee_ct(const Stmt& s) {
    const std::string& t = s.text;
    std::size_t i = 0;
    while (i < t.size()) {
      if (!ident_char(t[i]) || (t[i] >= '0' && t[i] <= '9')) {
        ++i;
        continue;
      }
      const std::string name = ident_starting_at(t, i);
      const std::size_t open = skip_spaces_fwd(t, i + name.size());
      if (open < t.size() && t[open] == '(' && !keywords().count(name) &&
          !ct_safe_fns().count(name) && !declassifier_fns().count(name)) {
        const std::size_t end = match_paren(t, open);
        const std::size_t stop = end == std::string::npos ? t.size() : end - 1;
        const std::string args_text = t.substr(open + 1, stop - open - 1);
        const auto args = split_args(args_text);
        const auto sum = call_summary(name, args_text);
        if (sum && sum->ct_params != 0) {
          for (const auto& [idx, info] : sum->ct_info) {
            if (idx >= static_cast<int>(args.size())) continue;
            const std::uint64_t at =
                expr_taint(args[static_cast<size_t>(idx)]);
            if (at & kSecret) {
              violate(info.first, s.line,
                      "secret '" +
                          secret_witness(args[static_cast<size_t>(idx)]) +
                          "' flows into '" + name + "' (" + info.second +
                          "), which uses it in a non-constant-time "
                          "construct; open or mask the value before the "
                          "call, or vet the callee and add it to the "
                          "constant-time table");
            }
            record_ct_bits(at, info.first, s.line);
          }
        }
      }
      i += name.size();
    }
  }

  std::vector<Violation>* report_;
  const bool vetted_;
  std::vector<Region> regions_;
  std::uint64_t last_if_taint_ = 0;
  std::uint64_t stmt_implicit_ = 0;
};

// ---- rule metadata ----------------------------------------------------------

const std::vector<RuleInfo> kRules{
    {"secret-branch",
     "A branch/loop/switch/ternary condition is computed from secret data; "
     "the branch direction is observable through timing"},
    {"secret-index",
     "Memory is indexed with a secret-derived value; the access pattern "
     "leaks through the cache"},
    {"variable-latency",
     "A division, modulo, early-exit comparison, or short-circuit operator "
     "consumes a secret operand; latency depends on the value"},
    {"non-ct-declassify",
     "A declassify/reconstruct call is control-dependent on a secret branch, "
     "widening the declassification to the branch condition"},
};

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> roots;
  psml::lint::ReportOptions ropts;
  ropts.tool = "psml-ct";
  fs::path allowlist_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--allowlist") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "psml-ct: --allowlist needs a file\n");
        return 2;
      }
      allowlist_path = argv[++i];
    } else if (arg == "--sarif") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "psml-ct: --sarif needs a file\n");
        return 2;
      }
      ropts.sarif_path = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: psml-ct [--allowlist FILE] [--sarif FILE] DIR-OR-FILE...\n");
      return 0;
    } else {
      roots.push_back(arg);
    }
  }
  if (roots.empty()) {
    std::fprintf(stderr, "psml-ct: no inputs (try --help)\n");
    return 2;
  }

  bool allow_ok = true;
  std::vector<AllowEntry> allow;
  if (!allowlist_path.empty()) {
    allow = psml::lint::read_allowlist(allowlist_path, "psml-ct", allow_ok);
    ropts.allowlist_path = allowlist_path;
  }

  const auto files = psml::lint::collect_inputs(roots, "psml-ct");
  if (!files) return 2;

  auto prog = load_program(*files, "psml-ct");
  if (!prog) return 2;

  solve_summaries(*prog, [](const Function& fn, Model& model) {
    return CtAnalysis(fn, model, nullptr).run();
  });

  std::vector<Violation> violations;
  for (const Function& fn : prog->functions) {
    CtAnalysis(fn, prog->model, &violations).run();
  }
  std::sort(violations.begin(), violations.end(),
            [](const Violation& a, const Violation& b) {
              return std::tie(a.file, a.line, a.rule) <
                     std::tie(b.file, b.line, b.rule);
            });
  violations.erase(std::unique(violations.begin(), violations.end(),
                               [](const Violation& a, const Violation& b) {
                                 return a.file == b.file && a.line == b.line &&
                                        a.rule == b.rule;
                               }),
                   violations.end());

  return psml::lint::report_and_finish(ropts, kRules, violations, allow,
                                       allow_ok, files->size());
}
