// psml-taint — cross-translation-unit secret-taint dataflow analyzer and
// Beaver protocol-order checker for ParSecureML-Repro.
//
// Where psml-lint matches single tokens, psml-taint builds a whole-program
// model: every function in the input set is parsed into a statement stream,
// taint is seeded from declared secret sources, propagated through
// assignments / container copies / call summaries to a fixpoint, and flows
// into plaintext sinks are reported unless they pass through a sanctioned
// declassifier. The program model (stripping, function extraction, the taint
// environment, and the signature-keyed cross-TU summaries) lives in
// tools/lint-common/model.* and is shared with psml-ct, so "secret" means
// exactly one thing across the analyzer stack.
//
// Sources (see src/common/taint.hpp for the annotation contract):
//   - values of PSML_SECRET-annotated types (SharePair, TripletShare,
//     ActivationShare, RingTripletShare, TripletStore, ...)
//   - results of PSML_SECRET-annotated functions (share_float, share_ring,
//     random_seed, ...) and of functions whose declared return type is secret
//   - the first argument of PSML_SECRET-annotated void functions (the rng
//     fill_* out-parameter convention)
//   - results of triplet-store accessors (pop_matmul, triplets(), ...)
//
// Sinks:
//   taint-to-log      PSML_* log macros, printf family, std::cout/cerr
//   taint-to-channel  Channel::send / send_matrix / exchange helpers
//   taint-to-persist  ostream .write() serialization (checkpoints)
//
// Declassifiers (taint is dropped):
//   - psml::declassify(x)            explicit, audited escape hatch
//   - reconstruct_float / reconstruct_ring   opening a shared value
//   - subtracting a secret mask: tensor::sub(x, u, e) / ring_sub(x, u) where
//     the subtrahend is itself secret produces a blinded value (the paper's
//     E_i = A_i - U_i masking step)
//   - metadata accessors (.rows(), .size(), .bytes(), ...) — shapes and
//     counts are public
//
// Declassifier misuse is itself checked:
//   useless-declassify      psml::declassify() of a value that is already
//                           public — every declassify call is an audited
//                           escape hatch, so no-op calls dilute the audit
//   reconstruct-before-mask an operand share is opened via reconstruct_*
//                           before (or without) the Beaver masking step in a
//                           function that masks other operands
//
// A second, flow-order pass checks the Beaver protocol shape itself in any
// function that masks with triplet members (.u/.v/.z):
//   send-before-mask        a matrix is exchanged before (or without) being
//                           masked, violating E_i = A_i - U_i before exchange
//   triplet-double-consume  one triplet member feeds two distinct
//                           destinations in the same branch lineage — each
//                           Beaver triplet is single-use
//
// Output: file:line diagnostics plus optional SARIF 2.1.0 (--sarif FILE).
// Shares the justified-allowlist mechanism (and its hard entry budget) with
// psml-lint via tools/lint-common. Heuristic, not a real C++ parser: built on
// stripped source and a brace/paren statement scanner; it aims for useful
// precision on this codebase's idioms, not language completeness.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "lint_common.hpp"
#include "model.hpp"

namespace fs = std::filesystem;
using psml::lint::AllowEntry;
using psml::lint::ident_char;
using psml::lint::ident_starting_at;
using psml::lint::RuleInfo;
using psml::lint::skip_spaces_fwd;
using psml::lint::Violation;
using namespace psml::lint::model;

namespace {

constexpr std::uint64_t kParamBits = (1ull << kMaxParams) - 1;

struct SendEvent {
  std::vector<std::string> arg_roots;
  std::size_t line = 0;
};

struct ReconstructEvent {
  std::vector<std::string> arg_roots;
  std::size_t line = 0;
};

struct Consumption {
  std::string dest;
  std::vector<int> block_path;
  std::size_t line = 0;
};

class TaintAnalysis : public FlowAnalysis {
 public:
  TaintAnalysis(const Function& fn, Model& model, std::vector<Violation>* sink)
      : FlowAnalysis(fn, model), report_(sink) {}

 private:
  void violate(const std::string& rule, std::size_t line,
               const std::string& msg) {
    if (report_) report_->push_back({fn_.file, line, rule, msg});
  }

  // -- sinks ----------------------------------------------------------------

  // `last_arg_only`: channel sends carry the secret-bearing payload as their
  // final argument; tags and compression keys are protocol metadata, and
  // treating them as sinks would drag every comm_key parameter into the
  // summaries. Log/persist sinks check every argument.
  void check_sink(const std::string& rule, const std::string& sink_desc,
                  const std::string& args_text, std::size_t line,
                  bool last_arg_only = false) {
    const auto args = split_args(args_text);
    for (std::size_t ai = last_arg_only && !args.empty() ? args.size() - 1 : 0;
         ai < args.size(); ++ai) {
      const std::uint64_t t = expr_taint(args[ai]);
      if (t & kSecret) {
        violate(rule, line,
                "secret '" + secret_witness(args[ai]) + "' reaches " +
                    sink_desc +
                    "; mask it with a triplet share (E_i = A_i - U_i), open "
                    "it via reconstruct_*, or wrap it in psml::declassify() "
                    "if the disclosure is intentional");
      }
      for (int b = 0; b < kMaxParams; ++b) {
        if (t & (1ull << b)) {
          summary_.sink_params |= 1ull << b;
          summary_.sink_info.emplace(b, std::make_pair(rule, where(line)));
        }
      }
    }
  }

  // Scans one statement for raw sinks and summary-based call sinks.
  void on_stmt(const Stmt& s) override {
    const std::string& t = s.text;

    static const std::vector<std::string> log_sinks{
        "PSML_TRACE", "PSML_DEBUG", "PSML_INFO", "PSML_WARN",
        "PSML_ERROR", "PSML_LOG",   "printf",    "fprintf",
        "puts",       "fputs"};
    for (const std::string& name : log_sinks) {
      std::size_t pos = 0;
      while ((pos = t.find(name, pos)) != std::string::npos) {
        const std::size_t after = pos + name.size();
        if ((pos > 0 && ident_char(t[pos - 1])) ||
            (after < t.size() && ident_char(t[after]))) {
          pos = after;
          continue;
        }
        const std::size_t open = skip_spaces_fwd(t, after);
        if (open < t.size() && t[open] == '(') {
          const std::size_t end = match_paren(t, open);
          const std::size_t stop =
              end == std::string::npos ? t.size() : end - 1;
          check_sink("taint-to-log", "a log/print sink ('" + name + "')",
                     t.substr(open + 1, stop - open - 1), s.line);
        }
        pos = after;
      }
    }
    if (has_token(t, "cout") || has_token(t, "cerr")) {
      check_sink("taint-to-log", "a console stream", t, s.line);
    }

    // `.send(` / `->send(`: raw channel sink; also a send event for the
    // protocol pass.
    scan_member_sink(s, "send", "taint-to-channel",
                     "a channel send (Channel::send)", /*last_arg_only=*/true);
    scan_member_sink(s, "write", "taint-to-persist",
                     "persistent storage (ostream::write)", false);
    scan_named_sink(s, "send_matrix", "taint-to-channel",
                    "a channel send (net::send_matrix)",
                    /*last_arg_only=*/true);
    scan_named_sink(s, "fwrite", "taint-to-persist",
                    "persistent storage (fwrite)", false);

    // Interprocedural: arguments that land on a sink parameter of a callee.
    std::size_t i = 0;
    while (i < t.size()) {
      if (!ident_char(t[i]) || (t[i] >= '0' && t[i] <= '9')) {
        ++i;
        continue;
      }
      const std::string name = ident_starting_at(t, i);
      const std::size_t open = skip_spaces_fwd(t, i + name.size());
      if (open < t.size() && t[open] == '(') {
        const std::size_t end = match_paren(t, open);
        const std::size_t stop = end == std::string::npos ? t.size() : end - 1;
        const std::string args_text = t.substr(open + 1, stop - open - 1);
        const auto args = split_args(args_text);
        const auto sum = call_summary(name, args_text);
        if (!sum || sum->sink_params == 0) {
          i += name.size();
          continue;
        }
        for (const auto& [idx, info] : sum->sink_info) {
          if (idx >= static_cast<int>(args.size())) continue;
          const std::uint64_t at = expr_taint(args[static_cast<size_t>(idx)]);
          if (at & kSecret) {
            violate(info.first, s.line,
                    "secret '" + secret_witness(args[static_cast<size_t>(idx)]) +
                        "' flows into '" + name + "' (" + info.second +
                        "), which passes it to a plaintext sink; declassify "
                        "or mask before the call");
          }
          for (int b = 0; b < kMaxParams; ++b) {
            if (at & (1ull << b)) {
              summary_.sink_params |= 1ull << b;
              summary_.sink_info.emplace(b, info);
            }
          }
        }
      }
      i += name.size();
    }

    // Declassifier misuse.
    scan_useless_declassify(s);

    // Masking *sources*: `sub(x, u, e)` / `ring_sub(x, u)` with a secret
    // subtrahend blinds x — record the minuend so the protocol pass can
    // tell "opened a value this function masks" from "opened something
    // else" (e.g. the peer's already-masked difference).
    for (const char* mask_fn : {"sub", "sub_par", "ring_sub"}) {
      std::size_t pos = 0;
      while ((pos = t.find(mask_fn, pos)) != std::string::npos) {
        const std::size_t after = pos + std::char_traits<char>::length(mask_fn);
        if ((pos > 0 && ident_char(t[pos - 1])) ||
            (after < t.size() && ident_char(t[after]))) {
          pos = after;
          continue;
        }
        const std::size_t open = skip_spaces_fwd(t, after);
        if (open < t.size() && t[open] == '(') {
          const std::size_t end = match_paren(t, open);
          const std::size_t stop =
              end == std::string::npos ? t.size() : end - 1;
          const auto args = split_args(t.substr(open + 1, stop - open - 1));
          if (args.size() >= 2 && (expr_taint(args[1]) & kSecret)) {
            const std::string src = root_ident(args[0]);
            if (!src.empty() && !mask_src_.count(src)) {
              mask_src_[src] = s.line;
            }
          }
        }
        pos = after;
      }
    }

    // Send / reconstruct events for the protocol-order pass.
    collect_send_event(s, ".send");
    collect_send_event(s, "send_matrix");
    collect_send_event(s, "exchange");
    collect_send_event(s, "exchange_u64");
    collect_reconstruct_event(s, "reconstruct_float");
    collect_reconstruct_event(s, "reconstruct_ring");
  }

  void scan_member_sink(const Stmt& s, const std::string& method,
                        const std::string& rule, const std::string& desc,
                        bool last_arg_only) {
    const std::string& t = s.text;
    std::size_t pos = 0;
    while ((pos = t.find(method, pos)) != std::string::npos) {
      const std::size_t after = pos + method.size();
      const bool member =
          pos > 0 && (t[pos - 1] == '.' ||
                      (pos > 1 && t[pos - 2] == '-' && t[pos - 1] == '>'));
      if (!member || (after < t.size() && ident_char(t[after]))) {
        pos = after;
        continue;
      }
      const std::size_t open = skip_spaces_fwd(t, after);
      if (open < t.size() && t[open] == '(') {
        const std::size_t end = match_paren(t, open);
        const std::size_t stop = end == std::string::npos ? t.size() : end - 1;
        check_sink(rule, desc, t.substr(open + 1, stop - open - 1), s.line,
                   last_arg_only);
      }
      pos = after;
    }
  }

  void scan_named_sink(const Stmt& s, const std::string& name,
                       const std::string& rule, const std::string& desc,
                       bool last_arg_only) {
    const std::string& t = s.text;
    std::size_t pos = 0;
    while ((pos = t.find(name, pos)) != std::string::npos) {
      const std::size_t after = pos + name.size();
      if ((pos > 0 && ident_char(t[pos - 1])) ||
          (after < t.size() && ident_char(t[after]))) {
        pos = after;
        continue;
      }
      const std::size_t open = skip_spaces_fwd(t, after);
      if (open < t.size() && t[open] == '(') {
        const std::size_t end = match_paren(t, open);
        const std::size_t stop = end == std::string::npos ? t.size() : end - 1;
        check_sink(rule, desc, t.substr(open + 1, stop - open - 1), s.line,
                   last_arg_only);
      }
      pos = after;
    }
  }

  // -- declassifier misuse ---------------------------------------------------

  // psml::declassify() is an audited escape hatch; calling it on a value
  // that is provably public already (no secret taint AND no
  // possibly-secret parameter taint) is a no-op that dilutes the audit
  // trail. Values of unknown provenance are left alone.
  void scan_useless_declassify(const Stmt& s) {
    const std::string& t = s.text;
    std::size_t pos = 0;
    while ((pos = t.find("declassify", pos)) != std::string::npos) {
      const std::size_t after = pos + 10;
      if ((pos > 0 && ident_char(t[pos - 1])) ||
          (after < t.size() && ident_char(t[after]))) {
        pos = after;
        continue;
      }
      const std::size_t open = skip_spaces_fwd(t, after);
      if (open >= t.size() || t[open] != '(') {
        pos = after;
        continue;
      }
      const std::size_t end = match_paren(t, open);
      const std::size_t stop = end == std::string::npos ? t.size() : end - 1;
      const std::string inner = trim(t.substr(open + 1, stop - open - 1));
      if (!inner.empty()) {
        const std::uint64_t it = expr_taint(inner);
        if ((it & kSecret) == 0 && (it & kParamBits) == 0) {
          violate("useless-declassify", s.line,
                  "declassify() of already-public value '" +
                      (root_ident(inner).empty() ? inner
                                                 : root_ident(inner)) +
                      "'; declassify calls are audited escape hatches — "
                      "remove the call or declassify at the true "
                      "secret->public transition");
        }
      }
      pos = end == std::string::npos ? t.size() : end;
    }
  }

  // -- protocol-order pass ---------------------------------------------------

  void collect_send_event(const Stmt& s, const std::string& needle) {
    const std::string& t = s.text;
    std::size_t pos = 0;
    while ((pos = t.find(needle, pos)) != std::string::npos) {
      const std::size_t after = pos + needle.size();
      const std::size_t name_begin = needle[0] == '.' ? pos + 1 : pos;
      if ((name_begin > 0 && needle[0] != '.' &&
           ident_char(t[name_begin - 1])) ||
          (after < t.size() && ident_char(t[after]))) {
        pos = after;
        continue;
      }
      const std::size_t open = skip_spaces_fwd(t, after);
      if (open >= t.size() || t[open] != '(') {
        pos = after;
        continue;
      }
      const std::size_t end = match_paren(t, open);
      const std::size_t stop = end == std::string::npos ? t.size() : end - 1;
      SendEvent ev;
      ev.line = s.line;
      for (const std::string& a :
           split_args(t.substr(open + 1, stop - open - 1))) {
        ev.arg_roots.push_back(root_ident(a));
      }
      sends_.push_back(std::move(ev));
      pos = after;
    }
  }

  void collect_reconstruct_event(const Stmt& s, const std::string& name) {
    const std::string& t = s.text;
    std::size_t pos = 0;
    while ((pos = t.find(name, pos)) != std::string::npos) {
      const std::size_t after = pos + name.size();
      if ((pos > 0 && ident_char(t[pos - 1])) ||
          (after < t.size() && ident_char(t[after]))) {
        pos = after;
        continue;
      }
      const std::size_t open = skip_spaces_fwd(t, after);
      if (open >= t.size() || t[open] != '(') {
        pos = after;
        continue;
      }
      const std::size_t end = match_paren(t, open);
      const std::size_t stop = end == std::string::npos ? t.size() : end - 1;
      ReconstructEvent ev;
      ev.line = s.line;
      for (const std::string& a :
           split_args(t.substr(open + 1, stop - open - 1))) {
        ev.arg_roots.push_back(root_ident(a));
      }
      reconstructs_.push_back(std::move(ev));
      pos = after;
    }
  }

  void on_mask(const std::string& dest, std::size_t line,
               bool triplet) override {
    if (dest.empty()) return;
    if (!masked_.count(dest)) masked_[dest] = line;
    if (triplet) triplet_mask_ = true;
  }

  void on_consume(const std::string& member, const std::string& dest,
                  std::size_t line) override {
    if (member.empty() || dest.empty()) return;
    consume_[member].push_back({dest, block_path_, line});
  }

  void after_stmts() override {
    if (triplet_mask_) {
      for (const SendEvent& ev : sends_) {
        for (const std::string& r : ev.arg_roots) {
          if (r.empty()) continue;
          const auto mk = masked_.find(r);
          if (mk != masked_.end()) {
            if (mk->second > ev.line) {
              violate("send-before-mask", ev.line,
                      "'" + r + "' is exchanged before the masking step at " +
                          where(mk->second) +
                          "; the Beaver online phase requires E_i = A_i - "
                          "U_i before the exchange");
            }
            continue;
          }
          const auto vt = var_type_.find(r);
          const bool matrix_typed =
              vt != var_type_.end() &&
              vt->second.find("Matrix") != std::string::npos;
          // Any taint counts here, including positional parameter taint: in
          // the protocol helpers the operand shares arrive as plain MatrixF
          // parameters. Reconstructed/declassified values carry no taint and
          // pass freely.
          const auto et = env_.find(r);
          const bool tainted = et != env_.end() && et->second != 0;
          if (matrix_typed && tainted && !pinned_.count(r)) {
            violate("send-before-mask", ev.line,
                    "'" + r +
                        "' is exchanged without a triplet masking step in a "
                        "function that masks other operands; every secret "
                        "operand must be blinded (E_i = A_i - U_i) first");
          }
        }
      }
      // Opening an *operand* share before it was masked reveals the input
      // itself, not the blinded difference. Two precise triggers: the root
      // is a masking destination created only later (ordering), or the root
      // is itself the minuend of a later masking step (this function blinds
      // it — so opening the raw value first defeats the mask). Values never
      // masked here (result shares, the peer's differences) are exempt.
      for (const ReconstructEvent& ev : reconstructs_) {
        for (const std::string& r : ev.arg_roots) {
          if (r.empty()) continue;
          const auto mk = masked_.find(r);
          if (mk != masked_.end() && mk->second > ev.line) {
            violate("reconstruct-before-mask", ev.line,
                    "'" + r +
                        "' is reconstructed before the masking step at " +
                        where(mk->second) +
                        "; opening an unmasked operand reveals the raw "
                        "share (mask first: E_i = A_i - U_i)");
            continue;
          }
          const auto ms = mask_src_.find(r);
          if (mk == masked_.end() && ms != mask_src_.end() &&
              ms->second > ev.line) {
            violate("reconstruct-before-mask", ev.line,
                    "operand '" + r +
                        "' is reconstructed raw here but masked at " +
                        where(ms->second) +
                        " (E_i = A_i - U_i); opening the unmasked operand "
                        "reveals the raw share");
          }
        }
      }
    }
    for (const auto& [member, uses] : consume_) {
      for (std::size_t a = 0; a < uses.size(); ++a) {
        for (std::size_t b = a + 1; b < uses.size(); ++b) {
          if (uses[a].dest == uses[b].dest) continue;
          // Same branch lineage only: one path must be a prefix of the
          // other, otherwise they are exclusive if/else siblings.
          const auto& pa = uses[a].block_path;
          const auto& pb = uses[b].block_path;
          const std::size_t n = std::min(pa.size(), pb.size());
          if (!std::equal(pa.begin(), pa.begin() + static_cast<long>(n),
                          pb.begin())) {
            continue;
          }
          violate("triplet-double-consume", uses[b].line,
                  "triplet member '" + member + "' already consumed into '" +
                      uses[a].dest + "' at " + where(uses[a].line) +
                      "; each Beaver triplet component is single-use per "
                      "protocol instance");
          break;
        }
      }
    }
  }

  std::vector<Violation>* report_;

  // protocol pass state
  bool triplet_mask_ = false;
  std::map<std::string, std::size_t> masked_;    // dest -> first mask line
  std::map<std::string, std::size_t> mask_src_;  // minuend -> first mask line
  std::map<std::string, std::vector<Consumption>> consume_;
  std::vector<SendEvent> sends_;
  std::vector<ReconstructEvent> reconstructs_;
};

// ---- rule metadata ----------------------------------------------------------

const std::vector<RuleInfo> kRules{
    {"taint-to-log",
     "Secret share/triplet/seed material reaches a log or print sink without "
     "declassification"},
    {"taint-to-channel",
     "Secret material is sent over a channel without triplet masking or "
     "declassification"},
    {"taint-to-persist",
     "Secret material is serialized to persistent storage without "
     "declassification"},
    {"send-before-mask",
     "Operand exchanged before the Beaver masking step (E_i = A_i - U_i must "
     "precede the exchange)"},
    {"reconstruct-before-mask",
     "Operand share opened via reconstruct_* before (or without) the Beaver "
     "masking step"},
    {"triplet-double-consume",
     "A Beaver triplet component is consumed by two destinations; triplets "
     "are single-use"},
    {"useless-declassify",
     "declassify() of an already-public value; no-op declassification "
     "dilutes the audited escape-hatch surface"},
};

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> roots;
  psml::lint::ReportOptions ropts;
  ropts.tool = "psml-taint";
  fs::path allowlist_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--allowlist") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "psml-taint: --allowlist needs a file\n");
        return 2;
      }
      allowlist_path = argv[++i];
    } else if (arg == "--sarif") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "psml-taint: --sarif needs a file\n");
        return 2;
      }
      ropts.sarif_path = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: psml-taint [--allowlist FILE] [--sarif FILE] "
          "DIR-OR-FILE...\n");
      return 0;
    } else {
      roots.push_back(arg);
    }
  }
  if (roots.empty()) {
    std::fprintf(stderr, "psml-taint: no inputs (try --help)\n");
    return 2;
  }

  bool allow_ok = true;
  std::vector<AllowEntry> allow;
  if (!allowlist_path.empty()) {
    allow = psml::lint::read_allowlist(allowlist_path, "psml-taint", allow_ok);
    ropts.allowlist_path = allowlist_path;
  }

  const auto files = psml::lint::collect_inputs(roots, "psml-taint");
  if (!files) return 2;

  auto prog = load_program(*files, "psml-taint");
  if (!prog) return 2;

  // Phase 3: summary fixpoint (monotone merge, signature-keyed).
  solve_summaries(*prog, [](const Function& fn, Model& model) {
    return TaintAnalysis(fn, model, nullptr).run();
  });

  // Phase 4: reporting pass.
  std::vector<Violation> violations;
  for (const Function& fn : prog->functions) {
    TaintAnalysis(fn, prog->model, &violations).run();
  }
  std::sort(violations.begin(), violations.end(),
            [](const Violation& a, const Violation& b) {
              return std::tie(a.file, a.line, a.rule) <
                     std::tie(b.file, b.line, b.rule);
            });
  violations.erase(std::unique(violations.begin(), violations.end(),
                               [](const Violation& a, const Violation& b) {
                                 return a.file == b.file && a.line == b.line &&
                                        a.rule == b.rule;
                               }),
                   violations.end());

  return psml::lint::report_and_finish(ropts, kRules, violations, allow,
                                       allow_ok, files->size());
}
