#include "model.hpp"

#include <algorithm>
#include <cstdio>

namespace fs = std::filesystem;

namespace psml::lint::model {

// ---- token tables ----------------------------------------------------------

const std::set<std::string>& keywords() {
  static const std::set<std::string> k{
      "if",     "for",   "while",  "switch", "catch",  "return",
      "else",   "do",    "sizeof", "new",    "delete", "case",
      "goto",   "throw", "co_await"};
  return k;
}

namespace {

const std::set<std::string>& qualifier_tokens() {
  static const std::set<std::string> q{"inline",   "static",   "constexpr",
                                       "friend",   "virtual",  "explicit",
                                       "const",    "typename", "extern",
                                       "noexcept", "consteval"};
  return q;
}

// Tokens dropped when normalizing a parameter declarator to its core type.
const std::set<std::string>& type_noise_tokens() {
  static const std::set<std::string> q{
      "const",    "volatile", "typename",    "struct",     "class",
      "mutable",  "register", "PSML_SECRET", "PSML_PUBLIC"};
  return q;
}

}  // namespace

// Methods whose result is public metadata even on a secret object.
const std::set<std::string>& metadata_methods() {
  static const std::set<std::string> m{
      "rows",  "cols",     "size",  "bytes",  "empty",      "same_shape",
      "count", "capacity", "valid", "nnz",    "length",     "stride",
      "shape", "dim",      "depth", "stats",  "total_bytes",
      "retain", "recycle"};  // TripletStore mode queries: public config
  return m;
}

// Triplet-store accessors whose result is secret share material.
const std::set<std::string>& accessor_methods() {
  static const std::set<std::string> a{
      "pop_matmul", "pop_elementwise", "pop_activation", "triplets",
      "matmuls",    "elementwises",    "activations"};
  return a;
}

// Functions whose calls are blanked before taint evaluation: their result is
// public by protocol definition.
const std::set<std::string>& declassifier_fns() {
  static const std::set<std::string> d{"declassify", "reconstruct_float",
                                       "reconstruct_ring"};
  return d;
}

Model seeded_model() {
  Model model;
  model.secret_types = {"SharePair", "TripletShare", "ActivationShare",
                        "RingTripletShare", "TripletStore"};
  model.secret_fns = {"share_float", "share_ring", "random_seed"};
  model.taintout_fns = {
      "fill_uniform",     "fill_normal",         "fill_bernoulli",
      "fill_uniform_u64", "fill_uniform_par",    "fill_normal_par",
      "fill_uniform_u64_par", "fill_uniform_locked", "philox_fill_uniform",
      "philox_fill_uniform_par", "philox_fill_u64"};
  return model;
}

// ---- token helpers ---------------------------------------------------------

bool has_token(const std::string& s, const std::string& tok) {
  std::size_t pos = 0;
  while ((pos = s.find(tok, pos)) != std::string::npos) {
    const std::size_t after = pos + tok.size();
    if ((pos == 0 || !ident_char(s[pos - 1])) &&
        (after >= s.size() || !ident_char(s[after]))) {
      return true;
    }
    pos = after;
  }
  return false;
}

std::size_t match_paren(const std::string& s, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < s.size(); ++i) {
    if (s[i] == '(') ++depth;
    if (s[i] == ')' && --depth == 0) return i + 1;
  }
  return std::string::npos;
}

std::vector<std::string> split_args(const std::string& s) {
  std::vector<std::string> out;
  int depth = 0;
  std::string cur;
  for (char c : s) {
    if (c == '(' || c == '[' || c == '{') ++depth;
    if (c == ')' || c == ']' || c == '}') --depth;
    if (c == ',' && depth == 0) {
      out.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

std::string trim(const std::string& s) {
  std::size_t b = s.find_first_not_of(" \t");
  if (b == std::string::npos) return "";
  std::size_t e = s.find_last_not_of(" \t");
  return s.substr(b, e - b + 1);
}

std::string root_ident(const std::string& s) {
  std::size_t i = 0;
  while (i < s.size() && !ident_char(s[i])) ++i;
  std::string name = ident_starting_at(s, i);
  // Skip a leading namespace qualification.
  std::size_t j = i + name.size();
  while (j + 1 < s.size() && s[j] == ':' && s[j + 1] == ':') {
    j += 2;
    name = ident_starting_at(s, j);
    j += name.size();
  }
  return name;
}

std::string last_ident(const std::string& s) {
  std::size_t i = s.size();
  for (;;) {
    const std::size_t e = s.find_last_not_of(" \t", i == 0 ? 0 : i - 1);
    if (e == std::string::npos) return "";
    if (s[e] == ']') {
      // skip the bracket group
      int depth = 0;
      std::size_t j = e;
      for (;; --j) {
        if (s[j] == ']') ++depth;
        if (s[j] == '[' && --depth == 0) break;
        if (j == 0) return "";
      }
      i = j;
      continue;
    }
    if (!ident_char(s[e])) return "";
    return ident_ending_at(s, e);
  }
}

std::string core_type(const std::string& decl,
                      const std::string& declared_name) {
  std::vector<std::string> toks;
  std::size_t i = 0;
  while (i < decl.size()) {
    if (!ident_char(decl[i]) || std::isdigit(static_cast<unsigned char>(
                                    decl[i]))) {
      ++i;
      continue;
    }
    const std::string t = ident_starting_at(decl, i);
    i += t.size();
    if (!type_noise_tokens().count(t)) toks.push_back(t);
  }
  if (!declared_name.empty() && toks.size() > 1 &&
      toks.back() == declared_name) {
    toks.pop_back();
  }
  std::string out;
  for (const std::string& t : toks) {
    if (!out.empty()) out += ' ';
    out += t;
  }
  return out;
}

std::string signature_key(const Function& fn) {
  std::string key = fn.name + "/";
  for (std::size_t i = 0; i < fn.params.size(); ++i) {
    if (i) key += ',';
    key += fn.params[i].core;
  }
  return key;
}

// ---- Summary / Model -------------------------------------------------------

void Summary::merge_from(const Summary& o) {
  returns_secret |= o.returns_secret;
  sink_params |= o.sink_params;
  for (const auto& [idx, info] : o.sink_info) sink_info.emplace(idx, info);
  ct_params |= o.ct_params;
  for (const auto& [idx, info] : o.ct_info) ct_info.emplace(idx, info);
}

std::optional<Summary> Model::lookup(
    const std::string& name, std::size_t arity,
    const std::vector<std::string>& arg_cores) const {
  const auto it = overloads.find(name + "/" + std::to_string(arity));
  if (it == overloads.end()) return std::nullopt;

  // Candidate keys whose parameter cores are compatible with the (possibly
  // unknown) argument cores. Cores compare by their last token so namespace
  // qualification at one site but not the other ("mpc TripletShare" vs
  // "TripletShare") still matches.
  const auto last_tok = [](const std::string& c) {
    const std::size_t sp = c.rfind(' ');
    return sp == std::string::npos ? c : c.substr(sp + 1);
  };
  std::vector<const Summary*> compatible;
  for (const std::string& key : it->second) {
    const auto sit = summaries.find(key);
    if (sit == summaries.end()) continue;
    const auto cores = split_args(key.substr(name.size() + 1));
    bool ok = true;
    for (std::size_t i = 0; i < arity && i < arg_cores.size(); ++i) {
      const std::string pc = i < cores.size() ? cores[i] : "";
      if (!arg_cores[i].empty() && !pc.empty() &&
          last_tok(arg_cores[i]) != last_tok(pc)) {
        ok = false;
        break;
      }
    }
    if (ok) compatible.push_back(&sit->second);
  }
  // Every candidate positively mismatched a known argument type: the call
  // binds to something this model cannot see (e.g. an overload with
  // defaulted parameters has a different declared arity). Treat as unknown
  // rather than smearing the wrong overload's summary over the call.
  if (compatible.empty()) return std::nullopt;
  Summary merged;
  for (const Summary* s : compatible) merged.merge_from(*s);
  return merged;
}

// ---- phase 1: global annotation / declaration scan -------------------------

void scan_declarations(const std::string& path,
                       const std::vector<std::string>& clean, Model& model) {
  // The annotation header itself defines the macros; skip it.
  if (path_ends_with(path, "common/taint.hpp")) return;

  for (std::size_t li = 0; li < clean.size(); ++li) {
    // Join a short window so a signature split across lines still shows its
    // name and opening paren.
    std::string w = clean[li];
    for (std::size_t k = 1; k <= 2 && li + k < clean.size(); ++k) {
      w += ' ';
      w += clean[li + k];
    }

    std::size_t pos = 0;
    while ((pos = w.find("PSML_SECRET", pos)) != std::string::npos) {
      const std::size_t after = pos + 11;
      if ((pos > 0 && ident_char(w[pos - 1])) ||
          (after < w.size() && ident_char(w[after]))) {
        pos = after;
        continue;
      }
      // `struct PSML_SECRET Name` / `class PSML_SECRET Name`
      const std::size_t before = skip_spaces_back(w, pos == 0 ? 0 : pos - 1);
      const std::string prev =
          before == std::string::npos ? "" : ident_ending_at(w, before);
      std::size_t i = skip_spaces_fwd(w, after);
      std::string tok = ident_starting_at(w, i);
      if (prev == "struct" || prev == "class") {
        if (!tok.empty()) model.secret_types.insert(tok);
        pos = after;
        continue;
      }
      // `PSML_SECRET struct Name` (alternate order)
      if (tok == "struct" || tok == "class") {
        i = skip_spaces_fwd(w, i + tok.size());
        tok = ident_starting_at(w, i);
        if (!tok.empty()) model.secret_types.insert(tok);
        pos = after;
        continue;
      }
      // Function annotation: first meaningful token decides the mode (void ->
      // out-parameter convention), the identifier before '(' is the name.
      bool is_void = false;
      std::size_t j = i;
      while (true) {
        const std::string q = ident_starting_at(w, j);
        if (q.empty()) break;
        if (qualifier_tokens().count(q)) {
          j = skip_spaces_fwd(w, j + q.size());
          continue;
        }
        is_void = (q == "void");
        break;
      }
      const std::size_t open = w.find('(', i);
      if (open != std::string::npos) {
        const std::size_t e = skip_spaces_back(w, open == 0 ? 0 : open - 1);
        const std::string name =
            e == std::string::npos ? "" : ident_ending_at(w, e);
        if (!name.empty() && !keywords().count(name)) {
          (is_void ? model.taintout_fns : model.secret_fns).insert(name);
        }
      }
      pos = after;
    }
  }
}

void scan_secret_returns(const std::vector<std::string>& clean, Model& model) {
  for (const std::string& line : clean) {
    std::size_t earliest = std::string::npos;
    for (const std::string& t : model.secret_types) {
      std::size_t p = 0;
      while ((p = line.find(t, p)) != std::string::npos) {
        const std::size_t after = p + t.size();
        if ((p == 0 || !ident_char(line[p - 1])) &&
            (after >= line.size() || !ident_char(line[after]))) {
          earliest = std::min(earliest, p);
          break;
        }
        p = after;
      }
    }
    if (earliest == std::string::npos) continue;
    std::size_t open = line.find('(', earliest);
    while (open != std::string::npos) {
      const std::size_t e = skip_spaces_back(line, open == 0 ? 0 : open - 1);
      if (e != std::string::npos && ident_char(line[e])) {
        const std::string name = ident_ending_at(line, e);
        // Only names with the secret type strictly before them (return type
        // position), never keywords.
        if (!name.empty() && !keywords().count(name) &&
            name != "move" && name != "forward" &&
            e + 1 > earliest + name.size() &&
            !model.secret_types.count(name)) {
          model.secret_fns.insert(name);
        }
      }
      open = line.find('(', open + 1);
    }
  }
}

// ---- phase 2: function extraction ------------------------------------------

namespace {

bool parse_header(std::string buf, const std::string& file, std::size_t line,
                  Function& fn, const Model& model) {
  // Cut a constructor initializer list: first top-level ':' not part of '::'.
  int depth = 0;
  for (std::size_t i = 0; i < buf.size(); ++i) {
    const char c = buf[i];
    if (c == '(' || c == '[') ++depth;
    if (c == ')' || c == ']') --depth;
    if (c == ':' && depth == 0) {
      const bool dbl = (i + 1 < buf.size() && buf[i + 1] == ':') ||
                       (i > 0 && buf[i - 1] == ':');
      if (!dbl) {
        buf = buf.substr(0, i);
        break;
      }
      if (i + 1 < buf.size() && buf[i + 1] == ':') ++i;
    }
  }

  std::size_t close = buf.rfind(')');
  std::string name;
  std::size_t open = std::string::npos;
  while (close != std::string::npos) {
    int d = 1;
    open = std::string::npos;
    for (std::size_t i = close; i-- > 0;) {
      if (buf[i] == ')') ++d;
      if (buf[i] == '(' && --d == 0) {
        open = i;
        break;
      }
    }
    if (open == std::string::npos) return false;
    const std::size_t e = skip_spaces_back(buf, open == 0 ? 0 : open - 1);
    name = e == std::string::npos ? "" : ident_ending_at(buf, e);
    // Skip trailing specifier groups and retry with an earlier ')'.
    if (name == "noexcept" || name == "decltype" || name == "throw" ||
        name == "alignas") {
      close = open == 0 ? std::string::npos : buf.rfind(')', open);
      continue;
    }
    break;
  }
  if (close == std::string::npos || open == std::string::npos) return false;
  if (name.empty() || keywords().count(name)) return false;

  const std::string head = buf.substr(0, open - name.size() >= buf.size()
                                             ? 0
                                             : open >= name.size()
                                                   ? open - name.size()
                                                   : 0);
  // `auto f = ...(` style is an assignment, not a definition.
  int hd = 0;
  for (char c : head) {
    if (c == '(' || c == '[' || c == '<') ++hd;
    if (c == ')' || c == ']' || c == '>') --hd;
    if (c == '=' && hd == 0) return false;
  }

  fn.name = name;
  fn.file = file;
  fn.line = line;
  const std::string params = buf.substr(open + 1, close - open - 1);
  for (std::string p : split_args(params)) {
    const std::size_t eq = p.find('=');
    if (eq != std::string::npos) p = p.substr(0, eq);
    p = trim(p);
    if (p.empty() || p == "void") continue;
    Param prm;
    prm.name = last_ident(p);
    prm.type = p;
    prm.core = core_type(p, prm.name);
    prm.pinned = has_token(p, "PSML_PUBLIC");
    prm.secret = has_token(p, "PSML_SECRET");
    if (!prm.secret) {
      for (const std::string& t : model.secret_types) {
        if (has_token(p, t)) {
          prm.secret = true;
          break;
        }
      }
    }
    fn.params.push_back(std::move(prm));
  }
  return true;
}

}  // namespace

void extract_functions(const std::string& path,
                       const std::vector<std::string>& clean,
                       const Model& model, std::vector<Function>& out) {
  std::string buf;
  std::size_t buf_line = 0;
  int paren = 0;
  int brace = 0;
  long fn_index = -1;
  int fn_close = 0;
  bool pp_cont = false;

  auto flush = [&](std::vector<Function>& fns, Stmt::Kind kind) {
    const std::string text = trim(buf);
    buf.clear();
    paren = 0;
    if (fn_index < 0) return;
    if (text.empty() && kind == Stmt::kNormal) return;
    fns[static_cast<std::size_t>(fn_index)].stmts.push_back(
        Stmt{kind, text, buf_line});
  };

  for (std::size_t li = 0; li < clean.size(); ++li) {
    const std::string& line = clean[li];
    const std::size_t first = line.find_first_not_of(" \t");
    if (pp_cont || (first != std::string::npos && line[first] == '#')) {
      pp_cont = !line.empty() && line.back() == '\\';
      continue;
    }
    for (char c : line) {
      if (c == '(') {
        ++paren;
      } else if (c == ')') {
        if (paren > 0) --paren;
      } else if (c == ';' && paren == 0) {
        flush(out, Stmt::kNormal);
        continue;
      } else if (c == '{') {
        if (fn_index >= 0) {
          flush(out, Stmt::kBlockOpen);
        } else {
          Function fn;
          if (parse_header(trim(buf), path, buf_line, fn, model)) {
            out.push_back(std::move(fn));
            fn_index = static_cast<long>(out.size()) - 1;
            fn_close = brace;
          }
          buf.clear();
          paren = 0;
        }
        ++brace;
        continue;
      } else if (c == '}') {
        if (brace > 0) --brace;
        if (fn_index >= 0) {
          if (brace == fn_close) {
            flush(out, Stmt::kNormal);
            fn_index = -1;
          } else {
            flush(out, Stmt::kBlockClose);
          }
        } else {
          buf.clear();
          paren = 0;
        }
        continue;
      }
      if (buf.empty() && c != ' ' && c != '\t') buf_line = li + 1;
      if (!(buf.empty() && (c == ' ' || c == '\t'))) buf += c;
    }
    if (!buf.empty()) buf += ' ';
  }
}

std::optional<Program> load_program(const std::vector<fs::path>& files,
                                    const char* tool) {
  Program prog;
  prog.model = seeded_model();
  for (const fs::path& f : files) {
    auto lines = read_lines(f);
    if (!lines) {
      std::fprintf(stderr, "%s: cannot read %s\n", tool, f.string().c_str());
      return std::nullopt;
    }
    prog.stripped.emplace_back(f.generic_string(), strip_source(*lines));
  }
  for (const auto& [path, clean] : prog.stripped) {
    scan_declarations(path, clean, prog.model);
  }
  for (const auto& [path, clean] : prog.stripped) {
    scan_secret_returns(clean, prog.model);
  }
  for (const auto& [path, clean] : prog.stripped) {
    extract_functions(path, clean, prog.model, prog.functions);
  }
  for (const Function& fn : prog.functions) {
    auto& keys = prog.model.overloads[fn.name + "/" +
                                      std::to_string(fn.params.size())];
    const std::string key = signature_key(fn);
    if (std::find(keys.begin(), keys.end(), key) == keys.end()) {
      keys.push_back(key);
    }
  }
  return prog;
}

// ---- per-function dataflow engine ------------------------------------------

FlowAnalysis::FlowAnalysis(const Function& fn, Model& model)
    : fn_(fn), model_(model) {}

Summary FlowAnalysis::run() {
  for (std::size_t i = 0; i < fn_.params.size(); ++i) {
    const Param& p = fn_.params[i];
    if (p.name.empty()) continue;
    var_type_[p.name] = p.type;
    if (p.pinned) {
      pinned_.insert(p.name);
      continue;
    }
    std::uint64_t t = 0;
    if (i < static_cast<std::size_t>(kMaxParams)) t |= 1ull << i;
    if (p.secret) t |= kSecret;
    env_[p.name] = t;
  }
  for (const Stmt& s : fn_.stmts) {
    if (s.kind == Stmt::kBlockOpen) {
      process(s);
      block_path_.push_back(next_block_id_++);
      on_block_open(s);
      continue;
    }
    if (s.kind == Stmt::kBlockClose) {
      if (!block_path_.empty()) block_path_.pop_back();
      on_block_close();
      continue;
    }
    process(s);
  }
  after_stmts();
  return summary_;
}

std::string FlowAnalysis::where(std::size_t line) const {
  return fn_.file + ":" + std::to_string(line);
}

std::string FlowAnalysis::blank_declassifiers(std::string s) const {
  for (const std::string& d : declassifier_fns()) {
    std::size_t pos = 0;
    while ((pos = s.find(d, pos)) != std::string::npos) {
      const std::size_t after = pos + d.size();
      if ((pos > 0 && ident_char(s[pos - 1])) ||
          (after < s.size() && ident_char(s[after]))) {
        pos = after;
        continue;
      }
      const std::size_t open = skip_spaces_fwd(s, after);
      if (open >= s.size() || s[open] != '(') {
        pos = after;
        continue;
      }
      const std::size_t end = match_paren(s, open);
      if (end == std::string::npos) break;
      for (std::size_t i = pos; i < end; ++i) s[i] = ' ';
      pos = end;
    }
  }
  return s;
}

std::string FlowAnalysis::expr_core(const std::string& expr) const {
  const std::string t = trim(expr);
  for (char c : t) {
    if (!ident_char(c)) return "";
  }
  const auto it = var_type_.find(t);
  if (it == var_type_.end()) return "";
  // Parameter entries hold the full declarator ("Channel& ch"); pass the
  // variable name so it is dropped from the core.
  const std::string core = core_type(it->second, t);
  return core == "auto" ? "" : core;
}

std::vector<std::string> FlowAnalysis::arg_cores(
    const std::string& args_text) const {
  std::vector<std::string> out;
  for (const std::string& a : split_args(args_text)) {
    out.push_back(expr_core(a));
  }
  return out;
}

std::optional<Summary> FlowAnalysis::call_summary(
    const std::string& name, const std::string& args_text) const {
  return model_.lookup(name, split_args(args_text).size(),
                       arg_cores(args_text));
}

std::uint64_t FlowAnalysis::chain_taint(const std::string& s,
                                        std::size_t ident_begin,
                                        const std::string& root,
                                        std::size_t* next) {
  std::size_t i = ident_begin + root.size();
  std::uint64_t t = 0;
  const bool is_call_head =
      skip_spaces_fwd(s, i) < s.size() && s[skip_spaces_fwd(s, i)] == '(';
  if (is_call_head) {
    i = skip_spaces_fwd(s, i);
    const std::size_t end = match_paren(s, i);
    const std::string args_text =
        end == std::string::npos ? "" : s.substr(i + 1, end - i - 2);
    // std::move / std::forward are transparent: their taint is exactly the
    // argument's. They must never pick up secret_fns/summary entries (a
    // brace-init like `TripletShare{std::move(x), ...}` would otherwise
    // poison `move` as a secret-returning function for the whole tree).
    if (root == "move" || root == "forward") {
      *next = end == std::string::npos ? s.size() : end;
      return expr_taint(args_text, 1);
    }
    if (model_.secret_fns.count(root) || model_.secret_types.count(root)) {
      t |= kSecret;
    }
    const auto sum = call_summary(root, args_text);
    if (sum && sum->returns_secret) t |= kSecret;
    i = end == std::string::npos ? s.size() : end;
  } else {
    if (!pinned_.count(root)) {
      const auto it = env_.find(root);
      if (it != env_.end()) t |= it->second;
      if (model_.secret_types.count(root)) t |= kSecret;
    }
  }
  // Walk `.member` / `->member` / method-call links.
  for (;;) {
    std::size_t j = skip_spaces_fwd(s, i);
    if (j < s.size() && s[j] == '.') {
      j += 1;
    } else if (j + 1 < s.size() && s[j] == '-' && s[j + 1] == '>') {
      j += 2;
    } else {
      break;
    }
    j = skip_spaces_fwd(s, j);
    const std::string m = ident_starting_at(s, j);
    if (m.empty()) break;
    std::size_t k = skip_spaces_fwd(s, j + m.size());
    if (k < s.size() && s[k] == '(') {
      if (metadata_methods().count(m)) {
        t = 0;  // shapes / counts are public
      } else if (accessor_methods().count(m) ||
                 model_.secret_fns.count(m)) {
        t |= kSecret;
      }
      const std::size_t end = match_paren(s, k);
      i = end == std::string::npos ? s.size() : end;
    } else {
      i = j + m.size();
    }
  }
  *next = i;
  return t;
}

std::uint64_t FlowAnalysis::expr_taint(const std::string& raw, int depth) {
  if (depth > 6) return 0;
  std::string s = blank_declassifiers(raw);

  // ring_sub(x, mask): a secret subtrahend blinds the result.
  std::size_t pos = 0;
  while ((pos = s.find("ring_sub", pos)) != std::string::npos) {
    const std::size_t after = pos + 8;
    if ((pos > 0 && ident_char(s[pos - 1])) ||
        (after < s.size() && ident_char(s[after]))) {
      pos = after;
      continue;
    }
    const std::size_t open = skip_spaces_fwd(s, after);
    if (open >= s.size() || s[open] != '(') {
      pos = after;
      continue;
    }
    const std::size_t end = match_paren(s, open);
    if (end == std::string::npos) break;
    const auto args = split_args(s.substr(open + 1, end - open - 2));
    if (args.size() >= 2 && (expr_taint(args[1], depth + 1) & kSecret)) {
      for (std::size_t i = pos; i < end; ++i) s[i] = ' ';
    }
    pos = end;
  }

  std::uint64_t t = 0;
  std::size_t i = 0;
  while (i < s.size()) {
    if (!ident_char(s[i]) || (s[i] >= '0' && s[i] <= '9')) {
      ++i;
      continue;
    }
    const std::string name = ident_starting_at(s, i);
    const std::size_t prev =
        i == 0 ? std::string::npos : skip_spaces_back(s, i - 1);
    const bool member_link =
        prev != std::string::npos && (s[prev] == '.' || s[prev] == '>');
    const bool ns_link = prev != std::string::npos && s[prev] == ':';
    if (member_link || keywords().count(name)) {
      i += name.size();  // members handled by their chain root
      continue;
    }
    if (ns_link) {
      // Qualified name: only meaningful if it heads a call chain.
      std::size_t j = skip_spaces_fwd(s, i + name.size());
      if (j >= s.size() || s[j] != '(') {
        i += name.size();
        continue;
      }
    }
    std::size_t next = i + name.size();
    t |= chain_taint(s, i, name, &next);
    i = std::max(next, i + name.size());
  }
  return t;
}

std::string FlowAnalysis::secret_witness(const std::string& raw) {
  std::string s = blank_declassifiers(raw);
  std::size_t i = 0;
  while (i < s.size()) {
    if (!ident_char(s[i]) || (s[i] >= '0' && s[i] <= '9')) {
      ++i;
      continue;
    }
    const std::string name = ident_starting_at(s, i);
    const std::size_t prev =
        i == 0 ? std::string::npos : skip_spaces_back(s, i - 1);
    const bool member_link =
        prev != std::string::npos && (s[prev] == '.' || s[prev] == '>');
    if (member_link || keywords().count(name)) {
      i += name.size();
      continue;
    }
    std::size_t next = i + name.size();
    if (chain_taint(s, i, name, &next) & kSecret) return name;
    i = std::max(next, i + name.size());
  }
  return "value";
}

std::string FlowAnalysis::triplet_member(const std::string& text) const {
  std::size_t i = 0;
  while (i < text.size()) {
    if (!ident_char(text[i]) || (text[i] >= '0' && text[i] <= '9')) {
      ++i;
      continue;
    }
    const std::string root = ident_starting_at(text, i);
    std::size_t j = skip_spaces_fwd(text, i + root.size());
    if (j < text.size() && text[j] == '.') {
      j = skip_spaces_fwd(text, j + 1);
      const std::string m = ident_starting_at(text, j);
      if ((m == "u" || m == "v" || m == "z") &&
          (j + m.size() >= text.size() ||
           !ident_char(text[j + m.size()]))) {
        const auto vt = var_type_.find(root);
        const bool triplet_typed =
            vt != var_type_.end() && vt->second.find("Triplet") !=
                                         std::string::npos;
        const auto et = env_.find(root);
        const bool secret = et != env_.end() && (et->second & kSecret);
        if (triplet_typed || secret ||
            root.find("triplet") != std::string::npos) {
          return root + "." + m;
        }
      }
    }
    i += root.size();
  }
  return "";
}

// ---- statement dispatch ----------------------------------------------------

std::size_t FlowAnalysis::top_level_assign(const std::string& t) {
  int depth = 0;
  int angle = 0;
  for (std::size_t i = 0; i < t.size(); ++i) {
    const char c = t[i];
    if (c == '(' || c == '[' || c == '{') ++depth;
    if (c == ')' || c == ']' || c == '}') --depth;
    if (c == '<') ++angle;
    if (c == '>') angle = std::max(0, angle - 1);
    if (c == '=' && depth == 0 && angle == 0) {
      const char prev = i > 0 ? t[i - 1] : '\0';
      const char next = i + 1 < t.size() ? t[i + 1] : '\0';
      if (next == '=' || prev == '=' || prev == '!' || prev == '<' ||
          prev == '>') {
        if (next == '=') ++i;
        continue;
      }
      return i;
    }
  }
  return std::string::npos;
}

bool FlowAnalysis::is_compound(const std::string& t, std::size_t eq) {
  const char prev = eq > 0 ? t[eq - 1] : '\0';
  return prev == '+' || prev == '-' || prev == '*' || prev == '/' ||
         prev == '%' || prev == '|' || prev == '&' || prev == '^';
}

std::vector<std::string> FlowAnalysis::binding_names(const std::string& lhs) {
  std::vector<std::string> out;
  const std::size_t ob = lhs.find('[');
  const std::size_t cb = lhs.rfind(']');
  if (ob != std::string::npos && cb != std::string::npos && cb > ob &&
      lhs.find("auto") != std::string::npos) {
    for (const std::string& part :
         split_args(lhs.substr(ob + 1, cb - ob - 1))) {
      const std::string n = trim(part);
      if (!n.empty()) out.push_back(n);
    }
    return out;
  }
  const std::string n = last_ident(lhs);
  if (!n.empty()) out.push_back(n);
  return out;
}

void FlowAnalysis::process(const Stmt& s) {
  const std::string& t = s.text;
  if (t.empty()) return;

  on_stmt(s);

  // return <expr>
  if (t.rfind("return", 0) == 0 &&
      (t.size() == 6 || !ident_char(t[6]))) {
    if ((expr_taint(t.substr(6)) | implicit_taint()) & kSecret) {
      summary_.returns_secret = true;
    }
    return;
  }

  // Range-for binding: for (auto& x : range)
  if (t.rfind("for", 0) == 0) {
    const std::size_t open = t.find('(');
    if (open != std::string::npos) {
      const std::size_t end = match_paren(t, open);
      const std::string inner =
          t.substr(open + 1, (end == std::string::npos ? t.size() : end - 1) -
                                 open - 1);
      int d = 0;
      for (std::size_t i = 0; i < inner.size(); ++i) {
        const char c = inner[i];
        if (c == '(' || c == '[' || c == '<') ++d;
        if (c == ')' || c == ']' || c == '>') --d;
        if (c == ':' && d == 0 &&
            (i + 1 >= inner.size() || inner[i + 1] != ':') &&
            (i == 0 || inner[i - 1] != ':')) {
          const std::uint64_t rt = expr_taint(inner.substr(i + 1));
          for (const std::string& n :
               binding_names(inner.substr(0, i))) {
            if (!n.empty() && !pinned_.count(n)) {
              env_[n] |= rt | implicit_taint();
            }
          }
          break;
        }
      }
    }
    return;
  }

  // rng-style out-parameter fills: fill_*(dst, ...) taints dst.
  for (const std::string& f : model_.taintout_fns) {
    std::size_t pos = 0;
    while ((pos = t.find(f, pos)) != std::string::npos) {
      const std::size_t after = pos + f.size();
      if ((pos > 0 && ident_char(t[pos - 1])) ||
          (after < t.size() && ident_char(t[after]))) {
        pos = after;
        continue;
      }
      const std::size_t open = skip_spaces_fwd(t, after);
      if (open < t.size() && t[open] == '(') {
        const std::size_t end = match_paren(t, open);
        const std::size_t stop =
            end == std::string::npos ? t.size() : end - 1;
        const auto args = split_args(t.substr(open + 1, stop - open - 1));
        if (!args.empty()) {
          const std::string dst = root_ident(args[0]);
          if (!dst.empty() && !pinned_.count(dst)) {
            env_[dst] |= kSecret | implicit_taint();
          }
        }
      }
      pos = after;
    }
  }

  // tensor-style out-parameter ops (out = last argument). sub/sub_par with
  // a secret subtrahend is the masking declassifier.
  static const std::set<std::string> mask_ops{"sub", "sub_par"};
  static const std::set<std::string> or_ops{
      "add",       "add_par",      "hadamard",      "hadamard_par",
      "scale",     "scale_par",    "axpy",          "axpy_par",
      "gemm_naive", "gemm_blocked", "gemm_parallel"};
  std::size_t i = 0;
  while (i < t.size()) {
    if (!ident_char(t[i]) || (t[i] >= '0' && t[i] <= '9')) {
      ++i;
      continue;
    }
    const std::string name = ident_starting_at(t, i);
    const std::size_t open = skip_spaces_fwd(t, i + name.size());
    const bool is_mask = mask_ops.count(name) != 0;
    if ((is_mask || or_ops.count(name)) && open < t.size() &&
        t[open] == '(') {
      const std::size_t end = match_paren(t, open);
      const std::size_t stop = end == std::string::npos ? t.size() : end - 1;
      const auto args = split_args(t.substr(open + 1, stop - open - 1));
      if (args.size() >= 2) {
        const std::string out_root = root_ident(args.back());
        const std::string out_last = last_ident(args.back());
        std::uint64_t rt = 0;
        bool masked = false;
        if (is_mask && args.size() >= 3) {
          const std::uint64_t sub_t = expr_taint(args[1]);
          if (sub_t & kSecret) {
            masked = true;
            const std::string member = triplet_member(args[1]);
            on_mask(out_root, s.line, !member.empty());
            on_consume(member, out_root, s.line);
          } else {
            rt = expr_taint(args[0]) | sub_t;
          }
        } else {
          for (std::size_t ai = 0; ai + 1 < args.size(); ++ai) {
            rt |= expr_taint(args[ai]);
            on_consume(triplet_member(args[ai]), out_root, s.line);
          }
        }
        if (!out_root.empty() && !pinned_.count(out_root)) {
          const bool member_out = out_root != out_last;
          if (masked && !member_out) {
            env_[out_root] = implicit_taint();
          } else if (name == "axpy" || name == "axpy_par" || member_out) {
            env_[out_root] |= rt | implicit_taint();
          } else {
            env_[out_root] = rt | implicit_taint();
          }
        }
        i = stop;
        continue;
      }
    }
    i += name.size();
  }

  // PSML_PUBLIC pins a variable clean for the rest of the function.
  if (has_token(t, "PSML_PUBLIC")) {
    const std::size_t eq = top_level_assign(t);
    const std::string lhs = eq == std::string::npos ? t : t.substr(0, eq);
    const std::string n = last_ident(lhs);
    if (!n.empty()) {
      pinned_.insert(n);
      env_.erase(n);
    }
    return;
  }

  const std::size_t eq = top_level_assign(t);
  if (eq != std::string::npos) {
    handle_assignment(s, t.substr(0, eq), t.substr(eq + 1),
                      eq > 0 && is_compound(t, eq));
    return;
  }
  handle_declaration_or_call(s);
}

void FlowAnalysis::handle_assignment(const Stmt& s, const std::string& lhs,
                                     const std::string& rhs, bool compound) {
  std::uint64_t rt = expr_taint(rhs) | implicit_taint();
  if (has_token(lhs, "PSML_SECRET")) rt |= kSecret;
  for (const std::string& st : model_.secret_types) {
    if (has_token(lhs, st)) {
      rt |= kSecret;
      break;
    }
  }

  const std::vector<std::string> names = binding_names(lhs);
  const std::string lhs_last = names.size() == 1 ? names[0] : "";
  const std::string lhs_root = root_ident(lhs);

  // Record a declared type when the lhs is a declaration.
  if (!lhs_last.empty()) {
    const std::size_t at = lhs.rfind(lhs_last);
    const std::string type_text = trim(lhs.substr(0, at));
    if (!type_text.empty() && type_text.find('.') == std::string::npos) {
      var_type_[lhs_last] = type_text;
    }
  }

  on_consume(triplet_member(rhs),
             lhs_last.empty() ? lhs_root : lhs_last, s.line);

  // ring_sub masking in the rhs establishes a protocol mask event.
  if (rhs.find("ring_sub") != std::string::npos) {
    const std::size_t open = rhs.find('(', rhs.find("ring_sub"));
    if (open != std::string::npos) {
      const std::size_t end = match_paren(rhs, open);
      if (end != std::string::npos) {
        const auto args = split_args(rhs.substr(open + 1, end - open - 2));
        if (args.size() >= 2 && (expr_taint(args[1]) & kSecret)) {
          const std::string member = triplet_member(args[1]);
          on_mask(lhs_last.empty() ? lhs_root : lhs_last, s.line,
                  !member.empty());
        }
      }
    }
  }

  if (names.size() > 1) {
    for (const std::string& n : names) {
      if (!pinned_.count(n)) env_[n] = rt;
    }
    return;
  }
  if (lhs_last.empty()) return;
  // A '.' or '->' in the lhs is a member write (`p.s1 = ...`): weak update
  // on the owning object. (A differing root/last ident alone is NOT enough
  // — in `float y = ...` the root is the declared type.)
  if (lhs.find('.') != std::string::npos ||
      lhs.find("->") != std::string::npos) {
    if (!lhs_root.empty() && !pinned_.count(lhs_root)) {
      env_[lhs_root] |= rt;
    }
    return;
  }
  if (pinned_.count(lhs_last)) return;
  if (compound) {
    env_[lhs_last] |= rt;
  } else {
    env_[lhs_last] = rt;
  }
}

void FlowAnalysis::handle_declaration_or_call(const Stmt& s) {
  const std::string& t = s.text;
  const std::size_t open = t.find('(');
  if (open != std::string::npos) {
    const std::size_t e = skip_spaces_back(t, open == 0 ? 0 : open - 1);
    if (e == std::string::npos || !ident_char(t[e])) return;
    const std::string name = ident_ending_at(t, e);
    if (name.empty() || keywords().count(name)) return;
    const std::size_t before_name =
        e + 1 >= name.size() ? e + 1 - name.size() : 0;
    const std::size_t p =
        before_name == 0 ? std::string::npos
                         : skip_spaces_back(t, before_name - 1);
    const bool qualified = p != std::string::npos && t[p] == ':';
    const bool preceded_by_type =
        p != std::string::npos && !qualified &&
        (ident_char(t[p]) || t[p] == '>' || t[p] == '&' || t[p] == '*');
    if (!preceded_by_type) return;  // plain call; on_stmt already ran
    // Constructor-style declaration: Type name(args).
    const std::size_t end = match_paren(t, open);
    const std::size_t stop = end == std::string::npos ? t.size() : end - 1;
    std::uint64_t rt = implicit_taint();
    for (const std::string& a :
         split_args(t.substr(open + 1, stop - open - 1))) {
      rt |= expr_taint(a);
    }
    const std::string type_text = t.substr(0, before_name);
    for (const std::string& st : model_.secret_types) {
      if (has_token(type_text, st)) {
        rt |= kSecret;
        break;
      }
    }
    var_type_[name] = trim(type_text);
    if (!pinned_.count(name)) env_[name] = rt;
    return;
  }
  // Plain declaration: `Type a, b;` — possibly comma-chained.
  const auto parts = split_args(t);
  std::string first_type;
  for (std::size_t pi = 0; pi < parts.size(); ++pi) {
    const std::string part = trim(parts[pi]);
    const std::string n = last_ident(part);
    if (n.empty()) continue;
    std::string type_text;
    if (pi == 0) {
      const std::size_t at = part.rfind(n);
      type_text = trim(part.substr(0, at));
      first_type = type_text;
    } else {
      type_text = first_type;
    }
    if (type_text.empty()) continue;  // bare expression statement
    std::uint64_t rt = 0;
    for (const std::string& st : model_.secret_types) {
      if (has_token(type_text, st) ||
          (pi == 0 && has_token(part, "PSML_SECRET"))) {
        rt |= kSecret;
        break;
      }
    }
    var_type_[n] = type_text;
    if (!pinned_.count(n)) env_[n] = rt;
  }
}

// ---- fixpoint --------------------------------------------------------------

void solve_summaries(Program& prog,
                     Summary (*analyze)(const Function&, Model&)) {
  for (int iter = 0; iter < 12; ++iter) {
    const auto before = prog.model.summaries;
    for (const Function& fn : prog.functions) {
      const Summary s = analyze(fn, prog.model);
      prog.model.summaries[signature_key(fn)].merge_from(s);
    }
    if (prog.model.summaries == before) break;
  }
}

}  // namespace psml::lint::model
