#include "lint_common.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "sarif.hpp"

namespace fs = std::filesystem;

namespace psml::lint {

// ---- source loading / stripping -------------------------------------------

std::optional<std::vector<std::string>> read_lines(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  if (!in) return std::nullopt;
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    lines.push_back(std::move(line));
  }
  return lines;
}

namespace {

// True when the '\'' at position `i` is a C++14 digit separator
// (1'000'000, 0xFF'FF, 0b1010'0101) rather than the start of a char
// literal: the preceding numeric-literal token must begin with a digit and
// the next character must continue the literal.
bool is_digit_separator(const std::string& line, std::size_t i) {
  if (i == 0 || i + 1 >= line.size()) return false;
  const auto literal_char = [](char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '.';
  };
  if (!literal_char(line[i - 1]) || !literal_char(line[i + 1])) return false;
  // Walk back over the literal body (digits, hex letters, '.', previous
  // separators) to its first character.
  std::size_t b = i - 1;
  while (b > 0 && (literal_char(line[b - 1]) || line[b - 1] == '\'')) --b;
  return std::isdigit(static_cast<unsigned char>(line[b]));
}

// If the token ending just before position `i` (exclusive) is a string
// encoding prefix (u8, u, U, L) with no identifier characters before it,
// returns its length; otherwise 0. Used so LR"(...)" / u8R"(...)" raw
// strings and their prefixes don't desynchronize the stripper.
std::size_t encoding_prefix_len(const std::string& line, std::size_t i) {
  for (const char* p : {"u8", "u", "U", "L"}) {
    const std::size_t n = std::char_traits<char>::length(p);
    if (i >= n && line.compare(i - n, n, p) == 0 &&
        (i == n || !ident_char(line[i - n - 1]))) {
      return n;
    }
  }
  return 0;
}

}  // namespace

std::vector<std::string> strip_source(const std::vector<std::string>& lines) {
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar, kRaw };
  State st = State::kCode;
  std::string raw_delim;  // for raw strings: the )delim" terminator
  std::vector<std::string> out;
  out.reserve(lines.size());

  for (const std::string& line : lines) {
    std::string clean(line.size(), ' ');
    if (st == State::kLineComment) st = State::kCode;  // // ends at newline
    for (std::size_t i = 0; i < line.size(); ++i) {
      const char c = line[i];
      const char next = i + 1 < line.size() ? line[i + 1] : '\0';
      switch (st) {
        case State::kCode:
          if (c == '/' && next == '/') {
            st = State::kLineComment;
            ++i;
          } else if (c == '/' && next == '*') {
            st = State::kBlockComment;
            ++i;
          } else if (c == 'R' && next == '"' &&
                     (i == 0 ||
                      (!std::isalnum(
                           static_cast<unsigned char>(line[i - 1])) &&
                       line[i - 1] != '_') ||
                      encoding_prefix_len(line, i) != 0)) {
            // Raw string literal R"delim( ... )delim"
            std::size_t p = i + 2;
            std::string delim;
            while (p < line.size() && line[p] != '(') delim += line[p++];
            raw_delim = ")" + delim + "\"";
            st = State::kRaw;
            clean[i] = '"';  // keep a marker so tokenizers see a literal
            i = p;           // skip past the opening paren
          } else if (c == '"') {
            st = State::kString;
            clean[i] = '"';
          } else if (c == '\'') {
            if (is_digit_separator(line, i)) {
              clean[i] = '\'';  // numeric literal body, not a char literal
            } else {
              st = State::kChar;
              clean[i] = '\'';
            }
          } else {
            clean[i] = c;
          }
          break;
        case State::kLineComment:
          break;  // rest of line is comment
        case State::kBlockComment:
          if (c == '*' && next == '/') {
            st = State::kCode;
            ++i;
          }
          break;
        case State::kString:
          if (c == '\\') {
            ++i;
          } else if (c == '"') {
            st = State::kCode;
            clean[i] = '"';
          }
          break;
        case State::kChar:
          if (c == '\\') {
            ++i;
          } else if (c == '\'') {
            st = State::kCode;
            clean[i] = '\'';
          }
          break;
        case State::kRaw: {
          if (line.compare(i, raw_delim.size(), raw_delim) == 0) {
            i += raw_delim.size() - 1;
            clean[i] = '"';
            st = State::kCode;
          }
          break;
        }
      }
    }
    out.push_back(std::move(clean));
  }
  return out;
}

// ---- token helpers ---------------------------------------------------------

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

std::string ident_ending_at(const std::string& s, std::size_t end) {
  std::size_t b = end;
  while (b > 0 && ident_char(s[b - 1])) --b;
  if (!ident_char(s[end])) return {};
  return s.substr(b, end - b + 1);
}

std::string ident_starting_at(const std::string& s, std::size_t begin) {
  std::size_t e = begin;
  while (e < s.size() && ident_char(s[e])) ++e;
  return s.substr(begin, e - begin);
}

std::size_t skip_spaces_back(const std::string& s, std::size_t i) {
  while (i != std::string::npos && i < s.size() &&
         std::isspace(static_cast<unsigned char>(s[i]))) {
    if (i == 0) return std::string::npos;
    --i;
  }
  return i;
}

std::size_t skip_spaces_fwd(const std::string& s, std::size_t i) {
  while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
  return i;
}

bool path_ends_with(const std::string& path, const std::string& suffix) {
  return path.size() >= suffix.size() &&
         path.compare(path.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool path_contains(const std::string& path, const std::string& needle) {
  return path.find(needle) != std::string::npos;
}

// ---- input collection ------------------------------------------------------

std::optional<std::vector<fs::path>> collect_inputs(
    const std::vector<std::string>& roots, const char* tool) {
  std::vector<fs::path> files;
  for (const std::string& r : roots) {
    fs::path root(r);
    if (fs::is_regular_file(root)) {
      files.push_back(root);
      continue;
    }
    if (!fs::is_directory(root)) {
      std::fprintf(stderr, "%s: no such input: %s\n", tool, r.c_str());
      return std::nullopt;
    }
    for (const auto& ent : fs::recursive_directory_iterator(root)) {
      if (!ent.is_regular_file()) continue;
      const std::string ext = ent.path().extension().string();
      if (ext == ".cpp" || ext == ".cc" || ext == ".hpp" || ext == ".h") {
        files.push_back(ent.path());
      }
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

// ---- allowlist -------------------------------------------------------------

std::vector<AllowEntry> read_allowlist(const fs::path& p, const char* tool,
                                       bool& ok) {
  std::vector<AllowEntry> entries;
  ok = true;
  auto lines = read_lines(p);
  if (!lines) {
    std::fprintf(stderr, "%s: cannot read allowlist %s\n", tool,
                 p.string().c_str());
    ok = false;
    return entries;
  }
  for (std::size_t i = 0; i < lines->size(); ++i) {
    const std::string& raw = (*lines)[i];
    const std::size_t b = raw.find_first_not_of(" \t");
    if (b == std::string::npos || raw[b] == '#') continue;
    std::istringstream iss(raw);
    AllowEntry e;
    e.line = i + 1;
    iss >> e.rule >> e.path_suffix;
    std::getline(iss, e.justification);
    const std::size_t jb = e.justification.find_first_not_of(" \t—-");
    e.justification =
        jb == std::string::npos ? "" : e.justification.substr(jb);
    if (e.rule.empty() || e.path_suffix.empty() || e.justification.empty()) {
      std::fprintf(stderr,
                   "%s: allowlist %s:%zu: need '<rule> <path-suffix> "
                   "<justification>'\n",
                   tool, p.string().c_str(), i + 1);
      ok = false;
      continue;
    }
    entries.push_back(std::move(e));
  }
  if (entries.size() > kAllowlistBudget) {
    std::fprintf(stderr,
                 "%s: allowlist %s has %zu entries — the budget is %zu "
                 "(ROADMAP contract). Fix the code instead of growing the "
                 "list.\n",
                 tool, p.string().c_str(), entries.size(), kAllowlistBudget);
    ok = false;
  }
  return entries;
}

const AllowEntry* match_allowlist(const std::vector<AllowEntry>& allow,
                                  const Violation& v) {
  for (const AllowEntry& e : allow) {
    if (e.rule == v.rule && path_ends_with(v.file, e.path_suffix)) {
      return &e;
    }
  }
  return nullptr;
}

// ---- reporting -------------------------------------------------------------

int report_and_finish(const ReportOptions& opts,
                      const std::vector<RuleInfo>& rules,
                      const std::vector<Violation>& violations,
                      const std::vector<AllowEntry>& allow, bool allow_ok,
                      std::size_t file_count) {
  std::size_t reported = 0, suppressed = 0;
  std::vector<bool> is_suppressed(violations.size(), false);
  for (std::size_t i = 0; i < violations.size(); ++i) {
    const Violation& v = violations[i];
    if (const AllowEntry* match = match_allowlist(allow, v)) {
      ++match->uses;
      ++suppressed;
      is_suppressed[i] = true;
      continue;
    }
    std::printf("%s:%zu: [%s] %s\n", v.file.c_str(), v.line, v.rule.c_str(),
                v.message.c_str());
    ++reported;
  }

  bool stale = false;
  for (const AllowEntry& e : allow) {
    if (e.uses == 0) {
      std::fprintf(stderr,
                   "%s: stale allowlist entry at %s:%zu (%s %s) — matched "
                   "nothing, remove it\n",
                   opts.tool.c_str(), opts.allowlist_path.string().c_str(),
                   e.line, e.rule.c_str(), e.path_suffix.c_str());
      stale = true;
    }
  }

  if (!opts.sarif_path.empty()) {
    if (!write_sarif(opts.sarif_path, opts.tool, opts.version, rules,
                     violations, is_suppressed)) {
      std::fprintf(stderr, "%s: cannot write SARIF to %s\n", opts.tool.c_str(),
                   opts.sarif_path.string().c_str());
      return 2;
    }
  }

  std::printf("%s: %zu file(s), %zu violation(s), %zu allowlisted\n",
              opts.tool.c_str(), file_count, reported, suppressed);
  if (!opts.allowlist_path.empty()) {
    // Budget usage line for the CI job log: how much of the hard cap this
    // tool's allowlist consumes (the cap is shared policy, per ROADMAP).
    std::printf("%s: allowlist budget: %zu/%zu entries (%zu suppression(s) "
                "matched)\n",
                opts.tool.c_str(), allow.size(), kAllowlistBudget, suppressed);
  }
  return (reported == 0 && !stale && allow_ok) ? 0 : 1;
}

}  // namespace psml::lint
