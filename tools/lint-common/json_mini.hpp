// Minimal recursive-descent JSON parser — just enough to structurally
// validate the SARIF 2.1.0 logs our checkers emit (tests/lint_selftest.cpp).
// Not a general-purpose library: numbers are stored as doubles, no
// \uXXXX surrogate-pair decoding (escapes are validated and kept verbatim).
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace psml::lint::json {

struct Value;
using ValuePtr = std::shared_ptr<Value>;

enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

struct Value {
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<ValuePtr> array;
  std::map<std::string, ValuePtr> object;

  bool is(Kind k) const { return kind == k; }
  // Object member lookup; nullptr when absent or not an object.
  const Value* get(const std::string& key) const;
  // Array element; nullptr when out of range or not an array.
  const Value* at(std::size_t i) const;
};

// Parses `text`; on failure returns nullptr and sets `error` to a
// position-tagged message.
ValuePtr parse(const std::string& text, std::string& error);

}  // namespace psml::lint::json
