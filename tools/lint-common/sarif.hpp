// SARIF 2.1.0 emission for the project checkers, dependency-free.
//
// The output targets GitHub code-scanning upload (codeql-action/upload-sarif)
// for inline PR annotations: one run per tool, rule metadata in
// tool.driver.rules, one result per finding with a physicalLocation region.
// Allowlisted findings are still emitted, but carry a suppression record
// (kind "external") so code scanning shows them as suppressed instead of
// open — the allowlist stays visible rather than becoming a silent hole.
#pragma once

#include <filesystem>
#include <string>
#include <vector>

namespace psml::lint {

struct Violation;
struct RuleInfo;

// JSON string escaping (control chars, quotes, backslashes).
std::string json_escape(const std::string& s);

// Writes the SARIF log. `suppressed[i]` marks violations[i] as allowlisted.
// Returns false when the file cannot be written.
bool write_sarif(const std::filesystem::path& out, const std::string& tool,
                 const std::string& version,
                 const std::vector<RuleInfo>& rules,
                 const std::vector<Violation>& violations,
                 const std::vector<bool>& suppressed);

}  // namespace psml::lint
