// Shared infrastructure for the project's static checkers (psml-lint,
// psml-taint): source stripping, token/path helpers, the violation record,
// and the justified-allowlist mechanism with its hard entry budget.
//
// Both tools are line/token-heuristic, not real C++ parsers. Everything here
// operates on "stripped" source: comments and string/char literal *contents*
// replaced by spaces (line breaks preserved, so line numbers stay valid).
#pragma once

#include <cstddef>
#include <filesystem>
#include <optional>
#include <string>
#include <vector>

namespace psml::lint {

struct Violation {
  std::string file;  // generic (forward-slash) path as given on the cmdline
  std::size_t line = 0;
  std::string rule;
  std::string message;
};

struct AllowEntry {
  std::string rule;
  std::string path_suffix;
  std::string justification;
  std::size_t line = 0;  // line in the allowlist file
  mutable std::size_t uses = 0;
};

// Rule metadata carried into SARIF output (and --help text).
struct RuleInfo {
  std::string id;
  std::string short_description;
};

// ROADMAP contract: the allowlist may never grow past this many entries.
// Enforced as a hard error by read_allowlist, not by review.
inline constexpr std::size_t kAllowlistBudget = 10;

// ---- source loading / stripping -------------------------------------------

// Reads a file as lines (CRLF-tolerant). nullopt when unreadable.
std::optional<std::vector<std::string>> read_lines(
    const std::filesystem::path& p);

// Returns the content with comments and string/char literal contents blanked
// to spaces. Quote markers are kept so tokenizers still see a literal, and
// raw strings R"delim(...)delim" are handled.
std::vector<std::string> strip_source(const std::vector<std::string>& lines);

// ---- token helpers ---------------------------------------------------------

bool ident_char(char c);
// Reads the identifier ending at (and including) position `end` (inclusive).
std::string ident_ending_at(const std::string& s, std::size_t end);
std::string ident_starting_at(const std::string& s, std::size_t begin);
// Index of last non-space char at or before i, or npos.
std::size_t skip_spaces_back(const std::string& s, std::size_t i);
std::size_t skip_spaces_fwd(const std::string& s, std::size_t i);

bool path_ends_with(const std::string& path, const std::string& suffix);
bool path_contains(const std::string& path, const std::string& needle);

// ---- input collection ------------------------------------------------------

// Expands DIR-OR-FILE roots into a sorted list of C++ sources (.cpp .cc .hpp
// .h). Prints an error and returns nullopt for a missing root.
std::optional<std::vector<std::filesystem::path>> collect_inputs(
    const std::vector<std::string>& roots, const char* tool);

// ---- allowlist -------------------------------------------------------------

// Parses "<rule> <path-suffix> <justification...>" lines ('#' comments and
// blanks skipped). Sets ok=false on unreadable file, malformed entries, or a
// budget overrun (> kAllowlistBudget entries) — the budget is a hard error
// so the list cannot quietly rot upward.
std::vector<AllowEntry> read_allowlist(const std::filesystem::path& p,
                                       const char* tool, bool& ok);

// Matching entry for a violation (rule equal, path-suffix match), or null.
const AllowEntry* match_allowlist(const std::vector<AllowEntry>& allow,
                                  const Violation& v);

// ---- reporting -------------------------------------------------------------

struct ReportOptions {
  std::string tool;                    // e.g. "psml-lint"
  std::string version = "1.0.0";
  std::filesystem::path allowlist_path;  // empty when no allowlist given
  std::filesystem::path sarif_path;      // empty disables SARIF output
};

// Prints unallowed violations, flags stale allowlist entries, writes SARIF
// (suppressed findings included with suppression records, per 2.1.0), and
// returns the process exit code (0 = clean).
int report_and_finish(const ReportOptions& opts,
                      const std::vector<RuleInfo>& rules,
                      const std::vector<Violation>& violations,
                      const std::vector<AllowEntry>& allow, bool allow_ok,
                      std::size_t file_count);

}  // namespace psml::lint
