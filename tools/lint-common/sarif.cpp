#include "sarif.hpp"

#include <cstdio>
#include <fstream>
#include <map>

#include "lint_common.hpp"

namespace psml::lint {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

// SARIF artifact URIs must be URI-form: forward slashes, and relative paths
// preferred so GitHub can map them onto the repo checkout.
std::string to_uri(const std::string& path) {
  std::string p = path;
  for (char& c : p) {
    if (c == '\\') c = '/';
  }
  // Strip a leading "./" — GitHub treats the URI as checkout-relative.
  while (p.rfind("./", 0) == 0) p = p.substr(2);
  return p;
}

}  // namespace

bool write_sarif(const std::filesystem::path& out, const std::string& tool,
                 const std::string& version,
                 const std::vector<RuleInfo>& rules,
                 const std::vector<Violation>& violations,
                 const std::vector<bool>& suppressed) {
  std::ofstream os(out, std::ios::binary);
  if (!os) return false;

  std::map<std::string, std::size_t> rule_index;
  for (std::size_t i = 0; i < rules.size(); ++i) {
    rule_index[rules[i].id] = i;
  }

  os << "{\n"
     << "  \"$schema\": \"https://raw.githubusercontent.com/oasis-tcs/"
        "sarif-spec/master/Schemata/sarif-schema-2.1.0.json\",\n"
     << "  \"version\": \"2.1.0\",\n"
     << "  \"runs\": [\n"
     << "    {\n"
     << "      \"tool\": {\n"
     << "        \"driver\": {\n"
     << "          \"name\": \"" << json_escape(tool) << "\",\n"
     << "          \"version\": \"" << json_escape(version) << "\",\n"
     << "          \"informationUri\": "
        "\"https://github.com/parsecureml/parsecureml-repro/blob/main/docs/"
        "ANALYSIS.md\",\n"
     << "          \"rules\": [\n";
  for (std::size_t i = 0; i < rules.size(); ++i) {
    os << "            {\n"
       << "              \"id\": \"" << json_escape(rules[i].id) << "\",\n"
       << "              \"shortDescription\": { \"text\": \""
       << json_escape(rules[i].short_description) << "\" }\n"
       << "            }" << (i + 1 < rules.size() ? "," : "") << "\n";
  }
  os << "          ]\n"
     << "        }\n"
     << "      },\n"
     << "      \"results\": [\n";
  for (std::size_t i = 0; i < violations.size(); ++i) {
    const Violation& v = violations[i];
    os << "        {\n"
       << "          \"ruleId\": \"" << json_escape(v.rule) << "\",\n";
    const auto it = rule_index.find(v.rule);
    if (it != rule_index.end()) {
      os << "          \"ruleIndex\": " << it->second << ",\n";
    }
    os << "          \"level\": \"error\",\n"
       << "          \"message\": { \"text\": \"" << json_escape(v.message)
       << "\" },\n"
       << "          \"locations\": [\n"
       << "            {\n"
       << "              \"physicalLocation\": {\n"
       << "                \"artifactLocation\": { \"uri\": \""
       << json_escape(to_uri(v.file)) << "\" },\n"
       << "                \"region\": { \"startLine\": " << v.line << " }\n"
       << "              }\n"
       << "            }\n"
       << "          ]";
    if (i < suppressed.size() && suppressed[i]) {
      os << ",\n"
         << "          \"suppressions\": [\n"
         << "            { \"kind\": \"external\", \"justification\": "
            "\"allowlist entry (see tools/*/allowlist.txt)\" }\n"
         << "          ]";
    }
    os << "\n        }" << (i + 1 < violations.size() ? "," : "") << "\n";
  }
  os << "      ]\n"
     << "    }\n"
     << "  ]\n"
     << "}\n";
  return static_cast<bool>(os);
}

}  // namespace psml::lint
