#include "json_mini.hpp"

#include <cctype>
#include <cstdlib>

namespace psml::lint::json {

const Value* Value::get(const std::string& key) const {
  if (kind != Kind::kObject) return nullptr;
  const auto it = object.find(key);
  return it == object.end() ? nullptr : it->second.get();
}

const Value* Value::at(std::size_t i) const {
  if (kind != Kind::kArray || i >= array.size()) return nullptr;
  return array[i].get();
}

namespace {

struct Parser {
  const std::string& s;
  std::size_t i = 0;
  std::string err;

  explicit Parser(const std::string& text) : s(text) {}

  bool fail(const std::string& what) {
    if (err.empty()) {
      err = what + " at offset " + std::to_string(i);
    }
    return false;
  }

  void ws() {
    while (i < s.size() && (s[i] == ' ' || s[i] == '\t' || s[i] == '\n' ||
                            s[i] == '\r')) {
      ++i;
    }
  }

  bool literal(const char* lit) {
    std::size_t n = 0;
    while (lit[n] != '\0') ++n;
    if (s.compare(i, n, lit) != 0) return fail("bad literal");
    i += n;
    return true;
  }

  bool parse_string(std::string& out) {
    if (i >= s.size() || s[i] != '"') return fail("expected string");
    ++i;
    out.clear();
    while (i < s.size() && s[i] != '"') {
      if (s[i] == '\\') {
        if (i + 1 >= s.size()) return fail("truncated escape");
        const char e = s[i + 1];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (i + 5 >= s.size()) return fail("truncated \\u escape");
            for (std::size_t k = 2; k <= 5; ++k) {
              if (!std::isxdigit(static_cast<unsigned char>(s[i + k]))) {
                return fail("bad \\u escape");
              }
            }
            out.append(s, i, 6);  // keep verbatim; validation only
            i += 4;
            break;
          }
          default:
            return fail("bad escape");
        }
        i += 2;
      } else if (static_cast<unsigned char>(s[i]) < 0x20) {
        return fail("control character in string");
      } else {
        out += s[i++];
      }
    }
    if (i >= s.size()) return fail("unterminated string");
    ++i;  // closing quote
    return true;
  }

  ValuePtr parse_value() {
    ws();
    if (i >= s.size()) {
      fail("unexpected end of input");
      return nullptr;
    }
    auto v = std::make_shared<Value>();
    const char c = s[i];
    if (c == '{') {
      ++i;
      v->kind = Kind::kObject;
      ws();
      if (i < s.size() && s[i] == '}') {
        ++i;
        return v;
      }
      for (;;) {
        ws();
        std::string key;
        if (!parse_string(key)) return nullptr;
        ws();
        if (i >= s.size() || s[i] != ':') {
          fail("expected ':'");
          return nullptr;
        }
        ++i;
        ValuePtr member = parse_value();
        if (!member) return nullptr;
        v->object[key] = std::move(member);
        ws();
        if (i < s.size() && s[i] == ',') {
          ++i;
          continue;
        }
        if (i < s.size() && s[i] == '}') {
          ++i;
          return v;
        }
        fail("expected ',' or '}'");
        return nullptr;
      }
    }
    if (c == '[') {
      ++i;
      v->kind = Kind::kArray;
      ws();
      if (i < s.size() && s[i] == ']') {
        ++i;
        return v;
      }
      for (;;) {
        ValuePtr elem = parse_value();
        if (!elem) return nullptr;
        v->array.push_back(std::move(elem));
        ws();
        if (i < s.size() && s[i] == ',') {
          ++i;
          continue;
        }
        if (i < s.size() && s[i] == ']') {
          ++i;
          return v;
        }
        fail("expected ',' or ']'");
        return nullptr;
      }
    }
    if (c == '"') {
      v->kind = Kind::kString;
      if (!parse_string(v->str)) return nullptr;
      return v;
    }
    if (c == 't') {
      if (!literal("true")) return nullptr;
      v->kind = Kind::kBool;
      v->boolean = true;
      return v;
    }
    if (c == 'f') {
      if (!literal("false")) return nullptr;
      v->kind = Kind::kBool;
      return v;
    }
    if (c == 'n') {
      if (!literal("null")) return nullptr;
      return v;
    }
    // number
    const std::size_t start = i;
    if (i < s.size() && s[i] == '-') ++i;
    while (i < s.size() &&
           (std::isdigit(static_cast<unsigned char>(s[i])) || s[i] == '.' ||
            s[i] == 'e' || s[i] == 'E' || s[i] == '+' || s[i] == '-')) {
      ++i;
    }
    if (i == start) {
      fail("unexpected character");
      return nullptr;
    }
    v->kind = Kind::kNumber;
    v->number = std::strtod(s.substr(start, i - start).c_str(), nullptr);
    return v;
  }
};

}  // namespace

ValuePtr parse(const std::string& text, std::string& error) {
  Parser p(text);
  ValuePtr v = p.parse_value();
  if (v) {
    p.ws();
    if (p.i != text.size()) {
      p.fail("trailing content");
      v = nullptr;
    }
  }
  error = p.err;
  return v;
}

}  // namespace psml::lint::json
