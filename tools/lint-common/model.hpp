// Shared whole-program model for the flow-sensitive checkers (psml-taint,
// psml-ct): annotation scanning, function extraction over stripped source,
// the taint environment with PSML_SECRET/PSML_PUBLIC seeds and declassifier
// semantics, and signature-keyed cross-TU call summaries solved to a
// fixpoint.
//
// psml-taint layers sink detection and the Beaver protocol-order pass on
// top of FlowAnalysis; psml-ct layers the constant-time CFG pass. Both see
// the exact same expression-taint semantics because there is exactly one
// implementation of them — here.
//
// Everything is heuristic (token-level, not a real C++ parser); see
// docs/ANALYSIS.md §3 for the accuracy contract.
#pragma once

#include <cstdint>
#include <filesystem>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "lint_common.hpp"

namespace psml::lint::model {

// Taint is a bitmask: bit 63 = definitely-secret, bit 62 = control-dependent
// on a secret branch (implicit flow, set only by psml-ct), bits 0..47 =
// "derived from parameter i" for summary building.
inline constexpr std::uint64_t kSecret = 1ull << 63;
inline constexpr std::uint64_t kImplicit = 1ull << 62;
inline constexpr int kMaxParams = 48;

// ---- program shape ---------------------------------------------------------

struct Stmt {
  enum Kind { kNormal, kBlockOpen, kBlockClose };
  Kind kind = kNormal;
  std::string text;
  std::size_t line = 0;
};

struct Param {
  std::string name;
  std::string type;  // full declarator text
  std::string core;  // normalized core type ("MatrixF", "std size_t", ...)
  bool pinned = false;  // PSML_PUBLIC
  bool secret = false;  // PSML_SECRET
};

struct Function {
  std::string name;
  std::string file;
  std::size_t line = 0;
  std::vector<Param> params;
  std::vector<Stmt> stmts;
};

// Cross-TU call summary. Keyed by the function's normalized parameter-type
// signature ("name/Core1,Core2"), so const/non-const and type-distinct
// overloads never share (and cross-poison) one record; call sites that
// cannot type their arguments fall back to merging every same-name/arity
// candidate, which is conservative but never unsound.
struct Summary {
  bool returns_secret = false;
  // psml-taint: param bits that reach a plaintext sink.
  std::uint64_t sink_params = 0;
  std::map<int, std::pair<std::string, std::string>> sink_info;
  // psml-ct: param bits that reach a non-constant-time construct (branch,
  // memory index, variable-latency op) inside the callee.
  std::uint64_t ct_params = 0;
  std::map<int, std::pair<std::string, std::string>> ct_info;

  void merge_from(const Summary& o);
  bool operator==(const Summary& o) const {
    return returns_secret == o.returns_secret &&
           sink_params == o.sink_params && ct_params == o.ct_params;
  }
};

struct Model {
  std::set<std::string> secret_types;
  std::set<std::string> secret_fns;    // call result is secret
  std::set<std::string> taintout_fns;  // first argument becomes secret
  std::map<std::string, Summary> summaries;  // signature key -> summary
  // "name/arity" -> signature keys of its overloads.
  std::map<std::string, std::vector<std::string>> overloads;

  // Merged summary over the overload candidates of name/arity compatible
  // with `arg_cores` (an empty core is a wildcard). nullopt when no
  // overload of that name/arity is known at all.
  std::optional<Summary> lookup(const std::string& name, std::size_t arity,
                                const std::vector<std::string>& arg_cores)
      const;
};

// The project's seeded sources (share/triplet types, rng fills, sharing
// helpers) — identical for every tool so "secret" means one thing.
Model seeded_model();

// ---- token / expression helpers --------------------------------------------

const std::set<std::string>& keywords();
const std::set<std::string>& metadata_methods();    // .rows() etc: public
const std::set<std::string>& accessor_methods();    // triplet-store pops
const std::set<std::string>& declassifier_fns();    // declassify/reconstruct

bool has_token(const std::string& s, const std::string& tok);
// Position just past the ')' matching the '(' at `open`, or npos.
std::size_t match_paren(const std::string& s, std::size_t open);
// Splits on top-level commas (parens/brackets/braces respected).
std::vector<std::string> split_args(const std::string& s);
std::string trim(const std::string& s);
// First identifier of an expression with namespace qualification skipped.
std::string root_ident(const std::string& s);
// Last identifier with any trailing [subscript] stripped first.
std::string last_ident(const std::string& s);

// Normalized core type of a declarator: qualifier tokens and the trailing
// declared name (when `declared_name` is non-empty and more than one
// candidate token remains) dropped, remaining type tokens space-joined.
std::string core_type(const std::string& decl,
                      const std::string& declared_name);
// Signature key for summary storage: "name/Core1,Core2".
std::string signature_key(const Function& fn);

// ---- phases 1+2: declarations and function extraction ----------------------

void scan_declarations(const std::string& path,
                       const std::vector<std::string>& clean, Model& model);
void scan_secret_returns(const std::vector<std::string>& clean, Model& model);
void extract_functions(const std::string& path,
                       const std::vector<std::string>& clean,
                       const Model& model, std::vector<Function>& out);

// Whole-program container: every input file stripped, the seeded+scanned
// model, and every extracted function body.
struct Program {
  std::vector<std::pair<std::string, std::vector<std::string>>> stripped;
  Model model;
  std::vector<Function> functions;
};

// Loads, strips, scans, and extracts all files. nullopt (with a message on
// stderr) when a file is unreadable.
std::optional<Program> load_program(
    const std::vector<std::filesystem::path>& files, const char* tool);

// ---- per-function dataflow engine ------------------------------------------

// Seeds parameters, walks the statement stream updating the taint
// environment (assignments, declarations, range-for bindings, rng fills,
// tensor out-parameter ops, declassifier laundering, ring_sub masking), and
// produces the function's Summary. Tools subclass and hook:
//
//   on_stmt         every processed statement, before its env updates
//   on_block_open   after the block-opening statement is processed
//   on_block_close  a '}' was consumed
//   after_stmts     end of body (protocol-order pass lives here)
//   implicit_taint  extra taint ORed into every value written while a
//                   secret-controlled region is open (psml-ct)
//   on_mask/on_consume  Beaver masking / triplet-consumption events
class FlowAnalysis {
 public:
  FlowAnalysis(const Function& fn, Model& model);
  virtual ~FlowAnalysis() = default;

  Summary run();

 protected:
  virtual void on_stmt(const Stmt&) {}
  virtual void on_block_open(const Stmt&) {}
  virtual void on_block_close() {}
  virtual void after_stmts() {}
  virtual std::uint64_t implicit_taint() const { return 0; }
  virtual void on_mask(const std::string& /*dest*/, std::size_t /*line*/,
                       bool /*triplet*/) {}
  virtual void on_consume(const std::string& /*member*/,
                          const std::string& /*dest*/, std::size_t /*line*/) {}

  // Conservative expression taint: OR over identifier chains, with
  // declassifier blanking and ring_sub masking applied first.
  std::uint64_t expr_taint(const std::string& raw, int depth = 0);
  // First chain in `raw` that contributes kSecret, for diagnostics.
  std::string secret_witness(const std::string& raw);
  // Blanks every `name(...)` span for declassifier functions.
  std::string blank_declassifiers(std::string s) const;
  // Taint of a member/method chain rooted at `root`; advances *next.
  std::uint64_t chain_taint(const std::string& s, std::size_t ident_begin,
                            const std::string& root, std::size_t* next);
  // Triplet-member expression (`root.u/.v/.z`) with a plausible triplet
  // root, or "".
  std::string triplet_member(const std::string& text) const;
  // Signature-aware summary lookup for a call `name(args_text)`: argument
  // core types are resolved through var_type_ when an argument is a bare
  // identifier.
  std::optional<Summary> call_summary(const std::string& name,
                                      const std::string& args_text) const;
  std::vector<std::string> arg_cores(const std::string& args_text) const;
  // Known core type of a bare-identifier expression, or "".
  std::string expr_core(const std::string& expr) const;

  std::string where(std::size_t line) const;

  static std::size_t top_level_assign(const std::string& t);
  static bool is_compound(const std::string& t, std::size_t eq);
  static std::vector<std::string> binding_names(const std::string& lhs);

  const Function& fn_;
  Model& model_;
  Summary summary_;
  std::map<std::string, std::uint64_t> env_;
  std::set<std::string> pinned_;
  std::map<std::string, std::string> var_type_;
  std::vector<int> block_path_;

 private:
  void process(const Stmt& s);
  void handle_assignment(const Stmt& s, const std::string& lhs,
                         const std::string& rhs, bool compound);
  void handle_declaration_or_call(const Stmt& s);

  int next_block_id_ = 0;
};

// Runs `analyze` over every function until the summary map stops changing
// (bounded monotone iteration; summaries only grow).
void solve_summaries(Program& prog,
                     Summary (*analyze)(const Function&, Model&));

}  // namespace psml::lint::model
