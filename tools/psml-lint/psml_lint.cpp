// psml-lint — project-specific static checker for ParSecureML-Repro.
//
// Enforces four rules a generic linter cannot express because they encode
// MPC-protocol and library-architecture invariants:
//
//   ring-raw-arith   No raw +/-/* on ring share words (MatrixU64 values)
//                    outside src/mpc/ring.*. Share arithmetic must go through
//                    ring_add/ring_sub/ring_matmul/truncate_share so that
//                    wraparound semantics and truncation stay in one audited
//                    place.
//   rng-outside-rng  No rand()/srand()/std::mt19937/std::random_device
//                    outside src/rng/. Secret shares and masks must come from
//                    the Philox/seeded generators in src/rng so randomness is
//                    reproducible and never silently correlated.
//   secret-logging   No logging/printing of share, triplet, mask, or seed
//                    material from secure code paths (src/mpc, src/ml/secure,
//                    src/parsecureml, src/compress). A debug print of a share
//                    buffer is a secret leak.
//   naked-thread     No std::thread construction outside the owned
//                    concurrency primitives (common/thread_pool, pipeline/
//                    async_lane, sgpu/stream, src/net). Ad-hoc threads dodge
//                    the shutdown/exception discipline those wrappers provide.
//
// Diagnostics are file:line with a rule tag. A violation can be suppressed by
// an allowlist entry ("<rule> <path-suffix> <justification>"); unused entries
// are themselves an error so the allowlist cannot rot.
//
// The checker is line/token-heuristic, not a real C++ parser: comments,
// string literals (including raw strings), and char literals are stripped
// before matching, and the ring rule tracks MatrixU64 declarations per file.

#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <optional>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

struct Violation {
  std::string file;  // generic (forward-slash) path as given on the cmdline
  std::size_t line = 0;
  std::string rule;
  std::string message;
};

struct AllowEntry {
  std::string rule;
  std::string path_suffix;
  std::string justification;
  std::size_t line = 0;  // line in the allowlist file
  mutable std::size_t uses = 0;
};

// ---- source stripping -------------------------------------------------------

// Returns the file content with comments and string/char literal *contents*
// replaced by spaces, preserving line breaks so line numbers stay valid.
std::vector<std::string> strip_source(const std::vector<std::string>& lines) {
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar, kRaw };
  State st = State::kCode;
  std::string raw_delim;  // for raw strings: the )delim" terminator
  std::vector<std::string> out;
  out.reserve(lines.size());

  for (const std::string& line : lines) {
    std::string clean(line.size(), ' ');
    if (st == State::kLineComment) st = State::kCode;  // // ends at newline
    for (std::size_t i = 0; i < line.size(); ++i) {
      const char c = line[i];
      const char next = i + 1 < line.size() ? line[i + 1] : '\0';
      switch (st) {
        case State::kCode:
          if (c == '/' && next == '/') {
            st = State::kLineComment;
            ++i;
          } else if (c == '/' && next == '*') {
            st = State::kBlockComment;
            ++i;
          } else if (c == 'R' && next == '"' &&
                     (i == 0 || (!std::isalnum(static_cast<unsigned char>(
                                     line[i - 1])) &&
                                 line[i - 1] != '_'))) {
            // Raw string literal R"delim( ... )delim"
            std::size_t p = i + 2;
            std::string delim;
            while (p < line.size() && line[p] != '(') delim += line[p++];
            raw_delim = ")" + delim + "\"";
            st = State::kRaw;
            clean[i] = '"';  // keep a marker so tokenizers see a literal
            i = p;           // skip past the opening paren
          } else if (c == '"') {
            st = State::kString;
            clean[i] = '"';
          } else if (c == '\'') {
            st = State::kChar;
            clean[i] = '\'';
          } else {
            clean[i] = c;
          }
          break;
        case State::kLineComment:
          break;  // rest of line is comment
        case State::kBlockComment:
          if (c == '*' && next == '/') {
            st = State::kCode;
            ++i;
          }
          break;
        case State::kString:
          if (c == '\\') {
            ++i;
          } else if (c == '"') {
            st = State::kCode;
            clean[i] = '"';
          }
          break;
        case State::kChar:
          if (c == '\\') {
            ++i;
          } else if (c == '\'') {
            st = State::kCode;
            clean[i] = '\'';
          }
          break;
        case State::kRaw: {
          if (line.compare(i, raw_delim.size(), raw_delim) == 0) {
            i += raw_delim.size() - 1;
            clean[i] = '"';
            st = State::kCode;
          }
          break;
        }
      }
    }
    out.push_back(std::move(clean));
  }
  return out;
}

// ---- small token helpers ----------------------------------------------------

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

// Reads the identifier ending at (and including) position `end` (inclusive).
std::string ident_ending_at(const std::string& s, std::size_t end) {
  std::size_t b = end;
  while (b > 0 && ident_char(s[b - 1])) --b;
  if (!ident_char(s[end])) return {};
  return s.substr(b, end - b + 1);
}

std::string ident_starting_at(const std::string& s, std::size_t begin) {
  std::size_t e = begin;
  while (e < s.size() && ident_char(s[e])) ++e;
  return s.substr(begin, e - begin);
}

std::size_t skip_spaces_back(const std::string& s, std::size_t i) {
  // Returns index of last non-space char at or before i, or npos.
  while (i != std::string::npos && i < s.size() &&
         std::isspace(static_cast<unsigned char>(s[i]))) {
    if (i == 0) return std::string::npos;
    --i;
  }
  return i;
}

std::size_t skip_spaces_fwd(const std::string& s, std::size_t i) {
  while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
  return i;
}

bool path_ends_with(const std::string& path, const std::string& suffix) {
  return path.size() >= suffix.size() &&
         path.compare(path.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool path_contains(const std::string& path, const std::string& needle) {
  return path.find(needle) != std::string::npos;
}

// ---- rule: ring-raw-arith ---------------------------------------------------

// Collects names declared with type MatrixU64 in this file (parameters and
// locals; comma-chained declarators included). Function names that *return*
// MatrixU64 also land in the registry, which is harmless: a name directly
// followed by '(' is never treated as an operand.
std::set<std::string> collect_ring_vars(const std::vector<std::string>& lines) {
  std::set<std::string> vars;
  for (const std::string& line : lines) {
    std::size_t pos = 0;
    while ((pos = line.find("MatrixU64", pos)) != std::string::npos) {
      // Reject identifiers that merely contain the token (e.g. MatrixU64Ptr).
      const std::size_t after = pos + 9;
      if ((pos > 0 && ident_char(line[pos - 1])) ||
          (after < line.size() && ident_char(line[after]))) {
        pos = after;
        continue;
      }
      std::size_t i = skip_spaces_fwd(line, after);
      while (i < line.size() && (line[i] == '&' || line[i] == '*')) ++i;
      i = skip_spaces_fwd(line, i);
      for (;;) {
        const std::string name = ident_starting_at(line, i);
        if (name.empty()) break;
        vars.insert(name);
        i += name.size();
        i = skip_spaces_fwd(line, i);
        // Skip an initializer / constructor-call to find a chained declarator.
        if (i < line.size() && line[i] == '(') {
          int depth = 0;
          while (i < line.size()) {
            if (line[i] == '(') ++depth;
            if (line[i] == ')' && --depth == 0) {
              ++i;
              break;
            }
            ++i;
          }
          i = skip_spaces_fwd(line, i);
        } else if (i < line.size() && line[i] == '=') {
          while (i < line.size() && line[i] != ',' && line[i] != ';') ++i;
        }
        if (i < line.size() && line[i] == ',') {
          i = skip_spaces_fwd(line, i + 1);
          // Step over cv-qualifiers in parameter lists.
          while (true) {
            const std::string word = ident_starting_at(line, i);
            if (word == "const" || word == "volatile") {
              i = skip_spaces_fwd(line, i + word.size());
            } else {
              break;
            }
          }
          continue;
        }
        break;
      }
      pos = after;
    }
  }
  vars.erase("const");
  vars.erase("volatile");
  return vars;
}

// Resolves the operand to the *left* of operator position `op` to a matrix
// variable name, handling `name` and `name.data()[...]` shapes.
std::string left_operand_var(const std::string& s, std::size_t op,
                             const std::set<std::string>& vars) {
  if (op == 0) return {};
  std::size_t i = skip_spaces_back(s, op - 1);
  if (i == std::string::npos) return {};
  if (s[i] == ']') {
    // name.data()[...]  — walk back over the subscript.
    int depth = 0;
    while (true) {
      if (s[i] == ']') ++depth;
      if (s[i] == '[' && --depth == 0) break;
      if (i == 0) return {};
      --i;
    }
    if (i == 0) return {};
    i = skip_spaces_back(s, i - 1);
    if (i == std::string::npos || s[i] != ')') {
      // Plain subscript ident[...]: resolve the array identifier itself.
      const std::string name = ident_ending_at(s, i);
      return vars.count(name) ? name : std::string{};
    }
    // ...data()[  — walk back over the call parens.
    int pd = 0;
    while (true) {
      if (s[i] == ')') ++pd;
      if (s[i] == '(' && --pd == 0) break;
      if (i == 0) return {};
      --i;
    }
    if (i == 0) return {};
    i = skip_spaces_back(s, i - 1);
    const std::string fn = ident_ending_at(s, i);
    if (fn != "data") return {};
    i -= fn.size();
    if (i == 0 || s[i - 1] != '.') return {};
    const std::string name = ident_ending_at(s, i - 2);
    return vars.count(name) ? name : std::string{};
  }
  if (ident_char(s[i])) {
    const std::string name = ident_ending_at(s, i);
    // Reject members of some other object (foo.m) and qualified names.
    const std::size_t b = i + 1 - name.size();
    if (b > 0 && (s[b - 1] == '.' || s[b - 1] == ':')) return {};
    return vars.count(name) ? name : std::string{};
  }
  return {};
}

std::string right_operand_var(const std::string& s, std::size_t after_op,
                              const std::set<std::string>& vars) {
  const std::size_t i = skip_spaces_fwd(s, after_op);
  if (i >= s.size() || !ident_char(s[i])) return {};
  const std::string name = ident_starting_at(s, i);
  if (!vars.count(name)) return {};
  const std::size_t j = skip_spaces_fwd(s, i + name.size());
  if (j < s.size() && s[j] == '(') return {};  // function call, not a var
  if (j < s.size() && s[j] == '.') {
    // Member access: only name.data()[...] is a use of the share words
    // themselves; name.rows() / name.bytes() etc. are metadata.
    static const std::regex data_sub(R"(^\.\s*data\s*\(\s*\)\s*\[)");
    if (!std::regex_search(s.substr(j), data_sub)) return {};
  }
  return name;
}

void check_ring_arith(const std::string& path,
                      const std::vector<std::string>& clean,
                      std::vector<Violation>& out) {
  if (path_ends_with(path, "mpc/ring.cpp") ||
      path_ends_with(path, "mpc/ring.hpp")) {
    return;  // the one audited home of raw ring-word arithmetic
  }
  const std::set<std::string> vars = collect_ring_vars(clean);
  if (vars.empty()) return;

  for (std::size_t ln = 0; ln < clean.size(); ++ln) {
    const std::string& s = clean[ln];
    for (std::size_t i = 0; i < s.size(); ++i) {
      const char c = s[i];
      if (c != '+' && c != '-' && c != '*') continue;
      const char prev = i > 0 ? s[i - 1] : '\0';
      const char next = i + 1 < s.size() ? s[i + 1] : '\0';
      if (next == c || prev == c) continue;           // ++ -- (and **)
      if (c == '-' && next == '>') continue;          // ->
      if (c == '*' && (prev == '(' || next == ')')) continue;  // casts/deref
      // Unary context: operator preceded by another operator or open paren.
      const std::size_t lp = skip_spaces_back(s, i == 0 ? 0 : i - 1);
      if (i == 0 || lp == std::string::npos) continue;
      const char lc = s[lp];
      const bool compound = next == '=';
      if (std::string("(,=<>?:&|!+-*/%^{[;").find(lc) != std::string::npos) {
        continue;  // unary +/-/deref — not share arithmetic
      }
      const std::string lv = left_operand_var(s, i, vars);
      const std::string rv =
          right_operand_var(s, i + (compound ? 2 : 1), vars);
      const std::string hit = !lv.empty() ? lv : rv;
      if (hit.empty()) continue;
      std::ostringstream msg;
      msg << "raw '" << c << (compound ? "=" : "")
          << "' on ring share word '" << hit
          << "' — use psml::mpc ring ops (ring_add/ring_sub/ring_matmul/"
             "truncate_share) so Z_2^64 semantics stay audited in mpc/ring.*";
      out.push_back({path, ln + 1, "ring-raw-arith", msg.str()});
    }
  }
}

// ---- rule: rng-outside-rng --------------------------------------------------

void check_rng(const std::string& path, const std::vector<std::string>& clean,
               std::vector<Violation>& out) {
  if (path_contains(path, "src/rng/") || path_contains(path, "/rng/")) return;
  static const std::regex re(
      R"((^|[^\w])(s?rand\s*\(|mt19937(_64)?\b|random_device\b))");
  for (std::size_t ln = 0; ln < clean.size(); ++ln) {
    if (std::regex_search(clean[ln], re)) {
      out.push_back({path, ln + 1, "rng-outside-rng",
                     "raw C/std randomness outside src/rng/ — secret shares "
                     "and masks must come from psml::rng (Philox / seeded "
                     "generators)"});
    }
  }
}

// ---- rule: secret-logging ---------------------------------------------------

bool in_secure_path(const std::string& path) {
  return path_contains(path, "src/mpc/") ||
         path_contains(path, "src/ml/secure/") ||
         path_contains(path, "src/parsecureml/") ||
         path_contains(path, "src/compress/");
}

void check_secret_logging(const std::string& path,
                          const std::vector<std::string>& clean,
                          std::vector<Violation>& out) {
  if (!in_secure_path(path)) return;
  static const std::regex sink(
      R"(\b(printf|fprintf|puts|fputs|std::cout|std::cerr|PSML_TRACE|PSML_DEBUG|PSML_INFO|PSML_WARN|PSML_ERROR|PSML_LOG)\b)");
  static const std::regex secret(
      R"(share|triplet|secret|mask|seed|\.s0\b|\.s1\b|\.data\s*\()",
      std::regex::icase);
  for (std::size_t ln = 0; ln < clean.size(); ++ln) {
    if (!std::regex_search(clean[ln], sink)) continue;
    // Gather the full statement (to the terminating ';'), capped at 10 lines.
    std::string stmt;
    for (std::size_t j = ln; j < clean.size() && j < ln + 10; ++j) {
      stmt += clean[j];
      stmt += ' ';
      if (clean[j].find(';') != std::string::npos) break;
    }
    if (std::regex_search(stmt, secret)) {
      out.push_back({path, ln + 1, "secret-logging",
                     "logging/printing references share/triplet/mask/seed "
                     "material in a secure code path — a debug print of "
                     "secret-shared data is a leak"});
    }
  }
}

// ---- rule: naked-thread -----------------------------------------------------

bool thread_owner_file(const std::string& path) {
  return path_ends_with(path, "common/thread_pool.hpp") ||
         path_ends_with(path, "common/thread_pool.cpp") ||
         path_ends_with(path, "pipeline/async_lane.hpp") ||
         path_ends_with(path, "pipeline/async_lane.cpp") ||
         path_ends_with(path, "sgpu/stream.hpp") ||
         path_ends_with(path, "sgpu/stream.cpp") ||
         path_contains(path, "src/net/");
}

void check_naked_thread(const std::string& path,
                        const std::vector<std::string>& clean,
                        std::vector<Violation>& out) {
  if (thread_owner_file(path)) return;
  // std::thread not followed by :: (so std::thread::id and
  // std::thread::hardware_concurrency stay legal), plus pthread_create.
  static const std::regex re(R"(std::j?thread\b(?!\s*::)|\bpthread_create\b)");
  for (std::size_t ln = 0; ln < clean.size(); ++ln) {
    if (std::regex_search(clean[ln], re)) {
      out.push_back({path, ln + 1, "naked-thread",
                     "raw thread construction outside the owned concurrency "
                     "primitives — use ThreadPool, AsyncLane, sgpu::Stream, "
                     "or a channel backend so shutdown and exception "
                     "propagation stay centralized"});
    }
  }
}

// ---- driver -----------------------------------------------------------------

std::optional<std::vector<std::string>> read_lines(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  if (!in) return std::nullopt;
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    lines.push_back(std::move(line));
  }
  return lines;
}

std::vector<AllowEntry> read_allowlist(const fs::path& p, bool& ok) {
  std::vector<AllowEntry> entries;
  ok = true;
  auto lines = read_lines(p);
  if (!lines) {
    std::fprintf(stderr, "psml-lint: cannot read allowlist %s\n",
                 p.string().c_str());
    ok = false;
    return entries;
  }
  for (std::size_t i = 0; i < lines->size(); ++i) {
    const std::string& raw = (*lines)[i];
    const std::size_t b = raw.find_first_not_of(" \t");
    if (b == std::string::npos || raw[b] == '#') continue;
    std::istringstream iss(raw);
    AllowEntry e;
    e.line = i + 1;
    iss >> e.rule >> e.path_suffix;
    std::getline(iss, e.justification);
    const std::size_t jb = e.justification.find_first_not_of(" \t—-");
    e.justification =
        jb == std::string::npos ? "" : e.justification.substr(jb);
    if (e.rule.empty() || e.path_suffix.empty() || e.justification.empty()) {
      std::fprintf(stderr,
                   "psml-lint: allowlist %s:%zu: need '<rule> <path-suffix> "
                   "<justification>'\n",
                   p.string().c_str(), i + 1);
      ok = false;
      continue;
    }
    entries.push_back(std::move(e));
  }
  return entries;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> roots;
  fs::path allowlist_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--allowlist") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "psml-lint: --allowlist needs a file\n");
        return 2;
      }
      allowlist_path = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      std::printf("usage: psml-lint [--allowlist FILE] DIR-OR-FILE...\n");
      return 0;
    } else {
      roots.push_back(arg);
    }
  }
  if (roots.empty()) {
    std::fprintf(stderr, "psml-lint: no inputs (try --help)\n");
    return 2;
  }

  bool allow_ok = true;
  std::vector<AllowEntry> allow;
  if (!allowlist_path.empty()) allow = read_allowlist(allowlist_path, allow_ok);

  std::vector<fs::path> files;
  for (const std::string& r : roots) {
    fs::path root(r);
    if (fs::is_regular_file(root)) {
      files.push_back(root);
      continue;
    }
    if (!fs::is_directory(root)) {
      std::fprintf(stderr, "psml-lint: no such input: %s\n", r.c_str());
      return 2;
    }
    for (const auto& ent : fs::recursive_directory_iterator(root)) {
      if (!ent.is_regular_file()) continue;
      const std::string ext = ent.path().extension().string();
      if (ext == ".cpp" || ext == ".cc" || ext == ".hpp" || ext == ".h") {
        files.push_back(ent.path());
      }
    }
  }
  std::sort(files.begin(), files.end());

  std::vector<Violation> violations;
  for (const fs::path& f : files) {
    auto lines = read_lines(f);
    if (!lines) {
      std::fprintf(stderr, "psml-lint: cannot read %s\n", f.string().c_str());
      return 2;
    }
    const std::vector<std::string> clean = strip_source(*lines);
    const std::string path = f.generic_string();
    check_ring_arith(path, clean, violations);
    check_rng(path, clean, violations);
    check_secret_logging(path, clean, violations);
    check_naked_thread(path, clean, violations);
  }

  std::size_t reported = 0, suppressed = 0;
  for (const Violation& v : violations) {
    const AllowEntry* match = nullptr;
    for (const AllowEntry& e : allow) {
      if (e.rule == v.rule && path_ends_with(v.file, e.path_suffix)) {
        match = &e;
        break;
      }
    }
    if (match) {
      ++match->uses;
      ++suppressed;
      continue;
    }
    std::printf("%s:%zu: [%s] %s\n", v.file.c_str(), v.line, v.rule.c_str(),
                v.message.c_str());
    ++reported;
  }

  bool stale = false;
  for (const AllowEntry& e : allow) {
    if (e.uses == 0) {
      std::fprintf(stderr,
                   "psml-lint: stale allowlist entry at %s:%zu (%s %s) — "
                   "matched nothing, remove it\n",
                   allowlist_path.string().c_str(), e.line, e.rule.c_str(),
                   e.path_suffix.c_str());
      stale = true;
    }
  }

  std::printf("psml-lint: %zu file(s), %zu violation(s), %zu allowlisted\n",
              files.size(), reported, suppressed);
  return (reported == 0 && !stale && allow_ok) ? 0 : 1;
}
