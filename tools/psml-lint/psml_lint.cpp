// psml-lint — project-specific static checker for ParSecureML-Repro.
//
// Enforces four rules a generic linter cannot express because they encode
// MPC-protocol and library-architecture invariants:
//
//   ring-raw-arith   No raw +/-/* on ring share words (MatrixU64 values)
//                    outside src/mpc/ring.*. Share arithmetic must go through
//                    ring_add/ring_sub/ring_matmul/truncate_share so that
//                    wraparound semantics and truncation stay in one audited
//                    place. Tracks `using`/`typedef` aliases of MatrixU64 and
//                    auto/auto& bindings to tracked variables, so renaming a
//                    share type or taking a reference cannot dodge the rule.
//   rng-outside-rng  No rand()/srand()/std::mt19937/std::random_device
//                    outside src/rng/. Secret shares and masks must come from
//                    the Philox/seeded generators in src/rng so randomness is
//                    reproducible and never silently correlated.
//   secret-logging   No logging/printing of share, triplet, mask, or seed
//                    material from secure code paths (src/mpc, src/ml/secure,
//                    src/parsecureml, src/compress). A debug print of a share
//                    buffer is a secret leak.
//   naked-thread     No std::thread construction outside the owned
//                    concurrency primitives (common/thread_pool, pipeline/
//                    async_lane, sgpu/stream, src/net). Ad-hoc threads dodge
//                    the shutdown/exception discipline those wrappers provide.
//
// Diagnostics are file:line with a rule tag, plus optional SARIF 2.1.0
// (--sarif FILE) for CI annotation upload. A violation can be suppressed by
// an allowlist entry ("<rule> <path-suffix> <justification>"); unused entries
// are themselves an error so the allowlist cannot rot, and the list is
// hard-capped at lint::kAllowlistBudget entries.
//
// The checker is line/token-heuristic, not a real C++ parser: comments,
// string literals (including raw strings), and char literals are stripped
// before matching (tools/lint-common). For flow-sensitive secret tracking see
// the companion tool tools/psml-taint.

#include <cstdio>
#include <filesystem>
#include <map>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "lint_common.hpp"

namespace fs = std::filesystem;
using psml::lint::AllowEntry;
using psml::lint::ident_char;
using psml::lint::ident_ending_at;
using psml::lint::ident_starting_at;
using psml::lint::path_contains;
using psml::lint::path_ends_with;
using psml::lint::RuleInfo;
using psml::lint::skip_spaces_back;
using psml::lint::skip_spaces_fwd;
using psml::lint::Violation;

namespace {

// ---- rule: ring-raw-arith ---------------------------------------------------

// Collects the set of type names that denote MatrixU64 in this file:
// MatrixU64 itself plus every `using X = MatrixU64;` / `typedef MatrixU64 X;`
// chain (aliases of aliases included, iterated to fixpoint).
std::set<std::string> collect_ring_types(const std::vector<std::string>& lines) {
  std::set<std::string> types{"MatrixU64"};
  static const std::regex using_re(
      R"(\busing\s+(\w+)\s*=\s*(?:psml::)?(?:tensor::)?(\w+)\s*;)");
  static const std::regex typedef_re(
      R"(\btypedef\s+(?:psml::)?(?:tensor::)?(\w+)\s+(\w+)\s*;)");
  bool grew = true;
  while (grew) {
    grew = false;
    for (const std::string& line : lines) {
      std::smatch m;
      if (std::regex_search(line, m, using_re) && types.count(m[2].str())) {
        grew |= types.insert(m[1].str()).second;
      }
      if (std::regex_search(line, m, typedef_re) && types.count(m[1].str())) {
        grew |= types.insert(m[2].str()).second;
      }
    }
  }
  return types;
}

// Collects names declared with a ring type in this file (parameters and
// locals; comma-chained declarators included), plus auto/auto& bindings to
// already-tracked names (reference bindings would otherwise escape the
// rule). Function names that *return* a ring type also land in the registry,
// which is harmless: a name directly followed by '(' is never treated as an
// operand.
std::set<std::string> collect_ring_vars(const std::vector<std::string>& lines,
                                        const std::set<std::string>& types) {
  std::set<std::string> vars;
  for (const std::string& line : lines) {
    for (const std::string& type : types) {
      std::size_t pos = 0;
      while ((pos = line.find(type, pos)) != std::string::npos) {
        // Reject identifiers that merely contain the token (e.g.
        // MatrixU64Ptr).
        const std::size_t after = pos + type.size();
        if ((pos > 0 && ident_char(line[pos - 1])) ||
            (after < line.size() && ident_char(line[after]))) {
          pos = after;
          continue;
        }
        std::size_t i = skip_spaces_fwd(line, after);
        // `using X = MatrixU64;` — the name *left* of '=' is an alias (in
        // the type registry), not a variable.
        if (i < line.size() && (line[i] == '=' || line[i] == ';')) {
          pos = after;
          continue;
        }
        while (i < line.size() && (line[i] == '&' || line[i] == '*')) ++i;
        i = skip_spaces_fwd(line, i);
        for (;;) {
          const std::string name = ident_starting_at(line, i);
          if (name.empty()) break;
          vars.insert(name);
          i += name.size();
          i = skip_spaces_fwd(line, i);
          // Skip an initializer / constructor-call to find a chained
          // declarator.
          if (i < line.size() && line[i] == '(') {
            int depth = 0;
            while (i < line.size()) {
              if (line[i] == '(') ++depth;
              if (line[i] == ')' && --depth == 0) {
                ++i;
                break;
              }
              ++i;
            }
            i = skip_spaces_fwd(line, i);
          } else if (i < line.size() && line[i] == '=') {
            while (i < line.size() && line[i] != ',' && line[i] != ';') ++i;
          }
          if (i < line.size() && line[i] == ',') {
            i = skip_spaces_fwd(line, i + 1);
            // Step over cv-qualifiers.
            while (true) {
              const std::string word = ident_starting_at(line, i);
              if (word == "const" || word == "volatile") {
                i = skip_spaces_fwd(line, i + word.size());
              } else {
                break;
              }
            }
            // Only a chained *declarator* continues the walk. In a parameter
            // list the comma introduces a fresh type (`MatrixU64& out,
            // std::uint64_t seed`), recognizable by a second identifier or a
            // '::' after the first one — stop there.
            const std::string peek = ident_starting_at(line, i);
            const std::size_t after_peek =
                skip_spaces_fwd(line, i + peek.size());
            if (!peek.empty() && after_peek < line.size() &&
                (ident_char(line[after_peek]) || line[after_peek] == ':' ||
                 line[after_peek] == '&' || line[after_peek] == '*')) {
              break;
            }
            continue;
          }
          break;
        }
        pos = after;
      }
    }
  }
  vars.erase("const");
  vars.erase("volatile");

  // auto / auto& / const auto& bindings whose initializer is exactly a
  // tracked variable adopt its ring-ness (`auto body = m.serialize();` must
  // NOT — the serialized bytes are not a ring matrix, so the initializer has
  // to be the bare name). Fixpoint so chains of bindings (auto& a = m;
  // auto& b = a;) are all caught.
  static const std::regex auto_bind(
      R"(\bauto\s*(?:const\s*)?[&]?\s*(\w+)\s*=\s*(\w+)\s*;)");
  bool grew = true;
  while (grew) {
    grew = false;
    for (const std::string& line : lines) {
      auto begin = std::sregex_iterator(line.begin(), line.end(), auto_bind);
      for (auto it = begin; it != std::sregex_iterator(); ++it) {
        if (vars.count((*it)[2].str())) {
          grew |= vars.insert((*it)[1].str()).second;
        }
      }
    }
  }
  return vars;
}

// Resolves the operand to the *left* of operator position `op` to a matrix
// variable name, handling `name` and `name.data()[...]` shapes.
std::string left_operand_var(const std::string& s, std::size_t op,
                             const std::set<std::string>& vars) {
  if (op == 0) return {};
  std::size_t i = skip_spaces_back(s, op - 1);
  if (i == std::string::npos) return {};
  if (s[i] == ']') {
    // name.data()[...]  — walk back over the subscript.
    int depth = 0;
    while (true) {
      if (s[i] == ']') ++depth;
      if (s[i] == '[' && --depth == 0) break;
      if (i == 0) return {};
      --i;
    }
    if (i == 0) return {};
    i = skip_spaces_back(s, i - 1);
    if (i == std::string::npos || s[i] != ')') {
      // Plain subscript ident[...]: resolve the array identifier itself.
      const std::string name = ident_ending_at(s, i);
      return vars.count(name) ? name : std::string{};
    }
    // ...data()[  — walk back over the call parens.
    int pd = 0;
    while (true) {
      if (s[i] == ')') ++pd;
      if (s[i] == '(' && --pd == 0) break;
      if (i == 0) return {};
      --i;
    }
    if (i == 0) return {};
    i = skip_spaces_back(s, i - 1);
    const std::string fn = ident_ending_at(s, i);
    if (fn != "data") return {};
    i -= fn.size();
    if (i == 0 || s[i - 1] != '.') return {};
    const std::string name = ident_ending_at(s, i - 2);
    return vars.count(name) ? name : std::string{};
  }
  if (ident_char(s[i])) {
    const std::string name = ident_ending_at(s, i);
    // Reject members of some other object (foo.m) and qualified names.
    const std::size_t b = i + 1 - name.size();
    if (b > 0 && (s[b - 1] == '.' || s[b - 1] == ':')) return {};
    return vars.count(name) ? name : std::string{};
  }
  return {};
}

std::string right_operand_var(const std::string& s, std::size_t after_op,
                              const std::set<std::string>& vars) {
  const std::size_t i = skip_spaces_fwd(s, after_op);
  if (i >= s.size() || !ident_char(s[i])) return {};
  const std::string name = ident_starting_at(s, i);
  if (!vars.count(name)) return {};
  const std::size_t j = skip_spaces_fwd(s, i + name.size());
  if (j < s.size() && s[j] == '(') return {};  // function call, not a var
  if (j < s.size() && s[j] == '.') {
    // Member access: only name.data()[...] is a use of the share words
    // themselves; name.rows() / name.bytes() etc. are metadata.
    static const std::regex data_sub(R"(^\.\s*data\s*\(\s*\)\s*\[)");
    if (!std::regex_search(s.substr(j), data_sub)) return {};
  }
  return name;
}

void check_ring_arith(const std::string& path,
                      const std::vector<std::string>& clean,
                      std::vector<Violation>& out) {
  if (path_ends_with(path, "mpc/ring.cpp") ||
      path_ends_with(path, "mpc/ring.hpp")) {
    return;  // the one audited home of raw ring-word arithmetic
  }
  const std::set<std::string> types = collect_ring_types(clean);
  const std::set<std::string> vars = collect_ring_vars(clean, types);
  if (vars.empty()) return;

  for (std::size_t ln = 0; ln < clean.size(); ++ln) {
    const std::string& s = clean[ln];
    for (std::size_t i = 0; i < s.size(); ++i) {
      const char c = s[i];
      if (c != '+' && c != '-' && c != '*') continue;
      const char prev = i > 0 ? s[i - 1] : '\0';
      const char next = i + 1 < s.size() ? s[i + 1] : '\0';
      if (next == c || prev == c) continue;           // ++ -- (and **)
      if (c == '-' && next == '>') continue;          // ->
      if (c == '*' && (prev == '(' || next == ')')) continue;  // casts/deref
      // Unary context: operator preceded by another operator or open paren.
      const std::size_t lp = skip_spaces_back(s, i == 0 ? 0 : i - 1);
      if (i == 0 || lp == std::string::npos) continue;
      const char lc = s[lp];
      const bool compound = next == '=';
      if (std::string("(,=<>?:&|!+-*/%^{[;").find(lc) != std::string::npos) {
        continue;  // unary +/-/deref — not share arithmetic
      }
      const std::string lv = left_operand_var(s, i, vars);
      const std::string rv =
          right_operand_var(s, i + (compound ? 2 : 1), vars);
      const std::string hit = !lv.empty() ? lv : rv;
      if (hit.empty()) continue;
      std::ostringstream msg;
      msg << "raw '" << c << (compound ? "=" : "")
          << "' on ring share word '" << hit
          << "' — use psml::mpc ring ops (ring_add/ring_sub/ring_matmul/"
             "truncate_share) so Z_2^64 semantics stay audited in mpc/ring.*";
      out.push_back({path, ln + 1, "ring-raw-arith", msg.str()});
    }
  }
}

// ---- rule: rng-outside-rng --------------------------------------------------

void check_rng(const std::string& path, const std::vector<std::string>& clean,
               std::vector<Violation>& out) {
  if (path_contains(path, "src/rng/") || path_contains(path, "/rng/")) return;
  static const std::regex re(
      R"((^|[^\w])(s?rand\s*\(|mt19937(_64)?\b|random_device\b))");
  for (std::size_t ln = 0; ln < clean.size(); ++ln) {
    if (std::regex_search(clean[ln], re)) {
      out.push_back({path, ln + 1, "rng-outside-rng",
                     "raw C/std randomness outside src/rng/ — secret shares "
                     "and masks must come from psml::rng (Philox / seeded "
                     "generators)"});
    }
  }
}

// ---- rule: secret-logging ---------------------------------------------------

bool in_secure_path(const std::string& path) {
  return path_contains(path, "src/mpc/") ||
         path_contains(path, "src/ml/secure/") ||
         path_contains(path, "src/parsecureml/") ||
         path_contains(path, "src/compress/");
}

void check_secret_logging(const std::string& path,
                          const std::vector<std::string>& clean,
                          std::vector<Violation>& out) {
  if (!in_secure_path(path)) return;
  static const std::regex sink(
      R"(\b(printf|fprintf|puts|fputs|std::cout|std::cerr|PSML_TRACE|PSML_DEBUG|PSML_INFO|PSML_WARN|PSML_ERROR|PSML_LOG)\b)");
  static const std::regex secret(
      R"(share|triplet|secret|mask|seed|\.s0\b|\.s1\b|\.data\s*\()",
      std::regex::icase);
  for (std::size_t ln = 0; ln < clean.size(); ++ln) {
    if (!std::regex_search(clean[ln], sink)) continue;
    // Gather the full statement (to the terminating ';'), capped at 10 lines.
    std::string stmt;
    for (std::size_t j = ln; j < clean.size() && j < ln + 10; ++j) {
      stmt += clean[j];
      stmt += ' ';
      if (clean[j].find(';') != std::string::npos) break;
    }
    if (std::regex_search(stmt, secret)) {
      out.push_back({path, ln + 1, "secret-logging",
                     "logging/printing references share/triplet/mask/seed "
                     "material in a secure code path — a debug print of "
                     "secret-shared data is a leak"});
    }
  }
}

// ---- rule: naked-thread -----------------------------------------------------

bool thread_owner_file(const std::string& path) {
  return path_ends_with(path, "common/thread_pool.hpp") ||
         path_ends_with(path, "common/thread_pool.cpp") ||
         path_ends_with(path, "pipeline/async_lane.hpp") ||
         path_ends_with(path, "pipeline/async_lane.cpp") ||
         path_ends_with(path, "sgpu/stream.hpp") ||
         path_ends_with(path, "sgpu/stream.cpp") ||
         path_contains(path, "src/net/");
}

void check_naked_thread(const std::string& path,
                        const std::vector<std::string>& clean,
                        std::vector<Violation>& out) {
  if (thread_owner_file(path)) return;
  // std::thread not followed by :: (so std::thread::id and
  // std::thread::hardware_concurrency stay legal), plus pthread_create.
  static const std::regex re(R"(std::j?thread\b(?!\s*::)|\bpthread_create\b)");
  for (std::size_t ln = 0; ln < clean.size(); ++ln) {
    if (std::regex_search(clean[ln], re)) {
      out.push_back({path, ln + 1, "naked-thread",
                     "raw thread construction outside the owned concurrency "
                     "primitives — use ThreadPool, AsyncLane, sgpu::Stream, "
                     "or a channel backend so shutdown and exception "
                     "propagation stay centralized"});
    }
  }
}

// ---- rule: raw-socket-io ----------------------------------------------------

// Socket syscalls bypass Channel framing — checksums, sequencing, reconnect,
// and the zero-copy WireBuf path — so only the net backends may touch them.
// `::send(` / `::recv(` must be the global-namespace syscalls: a preceding
// identifier character or ':' means a qualified method (Endpoint::send,
// Channel::recv) and stays legal, as do member calls (`ch.send(`), which have
// no `::` at all. The iovec family has no method homonyms in this codebase,
// so bare identifiers are flagged.
void check_raw_socket_io(const std::string& path,
                         const std::vector<std::string>& clean,
                         std::vector<Violation>& out) {
  if (path_contains(path, "src/net/")) return;
  static const std::regex re(
      R"((^|[^A-Za-z0-9_:])::(send|recv|sendto|recvfrom)\s*\()"
      R"(|\b(writev|readv|sendmsg|recvmsg)\s*\()");
  for (std::size_t ln = 0; ln < clean.size(); ++ln) {
    if (std::regex_search(clean[ln], re)) {
      out.push_back({path, ln + 1, "raw-socket-io",
                     "raw socket I/O outside src/net/ — go through a "
                     "net::Channel so framing, checksums, and reconnect "
                     "semantics stay in one place"});
    }
  }
}

const std::vector<RuleInfo> kRules = {
    {"ring-raw-arith",
     "Raw +/-/* on ring share words outside src/mpc/ring.* — use the audited "
     "ring ops"},
    {"rng-outside-rng",
     "Raw C/std randomness outside src/rng/ — use the seeded psml::rng "
     "facade"},
    {"secret-logging",
     "Log/print references share/triplet/mask/seed material in a secure code "
     "path"},
    {"naked-thread",
     "Raw thread construction outside the owned concurrency primitives"},
    {"raw-socket-io",
     "Raw socket syscalls (::send/::recv/writev/sendmsg/...) outside "
     "src/net/ bypass Channel framing"},
};

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> roots;
  psml::lint::ReportOptions ropts;
  ropts.tool = "psml-lint";
  fs::path allowlist_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--allowlist") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "psml-lint: --allowlist needs a file\n");
        return 2;
      }
      allowlist_path = argv[++i];
    } else if (arg == "--sarif") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "psml-lint: --sarif needs a file\n");
        return 2;
      }
      ropts.sarif_path = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: psml-lint [--allowlist FILE] [--sarif FILE] "
          "DIR-OR-FILE...\n");
      return 0;
    } else {
      roots.push_back(arg);
    }
  }
  if (roots.empty()) {
    std::fprintf(stderr, "psml-lint: no inputs (try --help)\n");
    return 2;
  }

  bool allow_ok = true;
  std::vector<AllowEntry> allow;
  if (!allowlist_path.empty()) {
    allow = psml::lint::read_allowlist(allowlist_path, "psml-lint", allow_ok);
    ropts.allowlist_path = allowlist_path;
  }

  const auto files = psml::lint::collect_inputs(roots, "psml-lint");
  if (!files) return 2;

  std::vector<Violation> violations;
  for (const fs::path& f : *files) {
    auto lines = psml::lint::read_lines(f);
    if (!lines) {
      std::fprintf(stderr, "psml-lint: cannot read %s\n", f.string().c_str());
      return 2;
    }
    const std::vector<std::string> clean = psml::lint::strip_source(*lines);
    const std::string path = f.generic_string();
    check_ring_arith(path, clean, violations);
    check_rng(path, clean, violations);
    check_secret_logging(path, clean, violations);
    check_naked_thread(path, clean, violations);
    check_raw_socket_io(path, clean, violations);
  }

  return psml::lint::report_and_finish(ropts, kRules, violations, allow,
                                       allow_ok, files->size());
}
