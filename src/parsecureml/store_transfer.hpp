// Client -> server transmission of offline material (triplet stores and data
// shares) over a Channel. This is the "transmit" half of the offline phase in
// Fig. 2 — real serialization over the transport so its cost is measured.
#pragma once

#include "mpc/triplet.hpp"
#include "net/channel.hpp"

namespace psml::parsecureml {

void send_store(net::Channel& ch, const mpc::TripletStore& store);
mpc::TripletStore recv_store(net::Channel& ch);

}  // namespace psml::parsecureml
