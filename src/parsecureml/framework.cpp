#include "parsecureml/framework.hpp"

#include <cmath>
#include <thread>

#include "common/taint.hpp"
#include "common/timer.hpp"
#include "ml/checkpoint.hpp"
#include "net/local_channel.hpp"
#include "parsecureml/store_transfer.hpp"
#include "profile/adaptive.hpp"
#include "profile/profiler.hpp"
#include "tensor/ops.hpp"

namespace psml::parsecureml {

std::string to_string(Mode mode) {
  switch (mode) {
    case Mode::kPlainCpu: return "plain-cpu";
    case Mode::kPlainGpu: return "plain-gpu";
    case Mode::kSecureML: return "SecureML";
    case Mode::kParSecureML: return "ParSecureML";
    case Mode::kCustom: return "custom";
  }
  return "?";
}

mpc::PartyOptions options_for_mode(Mode mode) {
  switch (mode) {
    case Mode::kSecureML:
      return mpc::PartyOptions::secureml_baseline();
    case Mode::kParSecureML:
      return mpc::PartyOptions::parsecureml();
    default:
      return mpc::PartyOptions::parsecureml();
  }
}

data::LabelScheme scheme_for_model(ml::ModelKind kind) {
  switch (kind) {
    case ml::ModelKind::kCnn:
    case ml::ModelKind::kMlp:
      return data::LabelScheme::kOneHot10;
    case ml::ModelKind::kSvm:
      return data::LabelScheme::kBinaryPm1;
    default:
      return data::LabelScheme::kBinary01;
  }
}

ml::ModelConfig model_config_for(const RunConfig& cfg,
                                 const data::Geometry& geometry) {
  ml::ModelConfig mc;
  mc.kind = cfg.model;
  mc.seed = cfg.seed;
  mc.classes = scheme_for_model(cfg.model) == data::LabelScheme::kOneHot10
                   ? 10
                   : 1;
  if (cfg.model == ml::ModelKind::kCnn) {
    mc.image_h = geometry.h;
    mc.image_w = geometry.w;
    mc.channels = geometry.c;
    mc.input_dim = geometry.features();
  } else if (cfg.model == ml::ModelKind::kRnn) {
    PSML_REQUIRE(geometry.features() % cfg.rnn_steps == 0,
                 "RNN: features not divisible by steps");
    mc.rnn_steps = cfg.rnn_steps;
    mc.input_dim = geometry.features() / cfg.rnn_steps;
    mc.rnn_hidden = 32;
  } else {
    mc.input_dim = geometry.features();
  }
  return mc;
}

namespace {

std::size_t batch_count(const RunConfig& cfg) {
  const std::size_t b = std::min(cfg.batch, cfg.samples);
  return std::max<std::size_t>(1, cfg.samples / b);
}

std::size_t effective_batch(const RunConfig& cfg) {
  return std::min(cfg.batch, cfg.samples);
}

// ---- plain (non-secure) runs ------------------------------------------------

ml::Engine engine_for_mode(Mode mode) {
  return mode == Mode::kPlainGpu ? ml::Engine::kGpu : ml::Engine::kCpuNaive;
}

RunResult run_plain(const RunConfig& cfg, bool training) {
  RunResult result;
  const auto scheme = scheme_for_model(cfg.model);
  auto ds = data::make_dataset(cfg.dataset, scheme, cfg.samples, cfg.seed);
  auto mc = model_config_for(cfg, ds.geometry);
  mc.engine = engine_for_mode(cfg.mode);

  const std::size_t batch = effective_batch(cfg);
  const std::size_t n_batches = batch_count(cfg);
  Timer total;

  if (cfg.model == ml::ModelKind::kRnn) {
    auto model = ml::build_plain_rnn(mc);
    Timer online;
    for (std::size_t e = 0; e < cfg.epochs; ++e) {
      for (std::size_t b = 0; b < n_batches; ++b) {
        const MatrixF xb = data::slice_rows(ds.x, b * batch, batch);
        const MatrixF yb = data::slice_rows(ds.y, b * batch, batch);
        const auto xs = data::sequence_view(xb, cfg.rnn_steps);
        const MatrixF pred = training ? model.forward(xs) : model.forward(xs);
        if (training) {
          const auto loss = ml::compute_loss(ml::LossKind::kMse, pred, yb);
          model.backward(loss.grad);
          model.update(cfg.lr);
        }
      }
    }
    result.online_sec = online.seconds();
    if (cfg.evaluate) {
      const auto xs = data::sequence_view(ds.x, cfg.rnn_steps);
      result.accuracy = ml::accuracy(model.forward(xs), ds.y);
    }
    if (training && !cfg.checkpoint_path.empty()) {
      ml::save_model(cfg.checkpoint_path, model);
    }
  } else {
    auto model = ml::build_plain(mc);
    const auto loss_kind = ml::loss_for(cfg.model);
    Timer online;
    for (std::size_t e = 0; e < cfg.epochs; ++e) {
      for (std::size_t b = 0; b < n_batches; ++b) {
        const MatrixF xb = data::slice_rows(ds.x, b * batch, batch);
        const MatrixF yb = data::slice_rows(ds.y, b * batch, batch);
        if (training) {
          ml::train_batch(model, loss_kind, xb, yb, cfg.lr);
        } else {
          (void)model.forward(xb);
        }
      }
    }
    result.online_sec = online.seconds();
    if (cfg.evaluate) {
      result.accuracy = ml::accuracy(model.forward(ds.x), ds.y);
    }
    if (training && !cfg.checkpoint_path.empty()) {
      ml::save_model(cfg.checkpoint_path, model);
    }
  }
  result.total_sec = total.seconds();
  return result;
}

// ---- secure runs --------------------------------------------------------------

struct SecureHarness {
  net::ChannelPair s0s1;  // server <-> server
  net::ChannelPair cs0;   // client <-> server0
  net::ChannelPair cs1;   // client <-> server1

  SecureHarness() {
    s0s1 = net::LocalChannel::make_pair();
    cs0 = net::LocalChannel::make_pair();
    cs1 = net::LocalChannel::make_pair();
  }
};

// Runs f0/f1 on two threads, rethrowing the first exception.
void run_two_parties(const std::function<void()>& f0,
                     const std::function<void()>& f1) {
  std::exception_ptr err0, err1;
  std::thread t0([&] {
    try {
      f0();
    } catch (...) {
      err0 = std::current_exception();
    }
  });
  std::thread t1([&] {
    try {
      f1();
    } catch (...) {
      err1 = std::current_exception();
    }
  });
  t0.join();
  t1.join();
  if (err0) std::rethrow_exception(err0);
  if (err1) std::rethrow_exception(err1);
}

RunResult run_secure(const RunConfig& cfg, bool training) {
  RunResult result;
  const mpc::PartyOptions opts = cfg.mode == Mode::kCustom
                                     ? cfg.custom_opts
                                     : options_for_mode(cfg.mode);
  sgpu::Device* device = opts.use_gpu ? &sgpu::Device::global() : nullptr;
  if (opts.adaptive) {
    // Calibrate the dispatcher outside the timed region (one-time profiling
    // run, Sec. 4.2).
    (void)profile::AdaptiveDispatch::global();
  }

  const auto scheme = scheme_for_model(cfg.model);
  auto ds = data::make_dataset(cfg.dataset, scheme, cfg.samples, cfg.seed);
  const auto mc = model_config_for(cfg, ds.geometry);
  const std::size_t batch = effective_batch(cfg);
  const std::size_t n_batches = batch_count(cfg);
  const auto loss_kind = ml::loss_for(cfg.model);

  Timer total;
  auto& prof = profile::Profiler::global();
  prof.reset();

  // ---- offline phase: dealer generates triplets and shares the data ----
  mpc::DealerOptions dopts;
  dopts.use_gpu = opts.use_gpu;
  dopts.naive_cpu = !opts.cpu_parallel;
  dopts.seed = cfg.seed ^ 0xD5A1;
  mpc::TripletDealer dealer(device, dopts);

  const bool is_rnn = cfg.model == ml::ModelKind::kRnn;
  ml::SecurePair pair;
  ml::SecureRnnPair rnn_pair;
  std::vector<mpc::TripletSpec> plan;
  // One epoch's worth of triplets; epochs recycle them so the masks U/V of
  // each (layer, operand) stay fixed across epochs — the precondition of the
  // Eq. 11-12 delta compression (see TripletStore::set_recycle).
  if (is_rnn) {
    rnn_pair = ml::build_secure_rnn_pair(mc);
    for (std::size_t i = 0; i < n_batches; ++i) {
      rnn_pair.m0->plan(plan, batch, cfg.rnn_steps, training);
    }
  } else {
    pair = ml::build_secure_pair(mc);
    for (std::size_t i = 0; i < n_batches; ++i) {
      pair.m0.plan_batch(plan, batch, loss_kind, mc.output_dim(), training);
    }
  }

  Timer gen_timer;
  auto [st0, st1] = dealer.generate(plan);
  auto x_shares = mpc::share_float(ds.x, cfg.seed ^ 0x11);
  auto y_shares = mpc::share_float(ds.y, cfg.seed ^ 0x22);
  result.offline_generate_sec = gen_timer.seconds();
  result.offline_bytes = st0.bytes() + x_shares.s0.bytes() + y_shares.s0.bytes();

  // ---- offline transmit: client -> servers over the channels ----
  SecureHarness harness;
  mpc::TripletStore recv_st0, recv_st1;
  MatrixF x0, x1, y0, y1;
  Timer tx_timer;
  {
    std::thread c([&] {
      // declassify(): the client hands each server its own additive share of
      // the inputs/labels — the single party entitled to those words (same
      // dealer-to-owner handoff as store_transfer.cpp).
      send_store(*harness.cs0.a, st0);
      net::send_matrix(*harness.cs0.a, mpc::tags::kClientData,
                       psml::declassify(x_shares.s0));
      net::send_matrix(*harness.cs0.a, mpc::tags::kClientData + 1,
                       psml::declassify(y_shares.s0));
      send_store(*harness.cs1.a, st1);
      net::send_matrix(*harness.cs1.a, mpc::tags::kClientData,
                       psml::declassify(x_shares.s1));
      net::send_matrix(*harness.cs1.a, mpc::tags::kClientData + 1,
                       psml::declassify(y_shares.s1));
    });
    run_two_parties(
        [&] {
          recv_st0 = recv_store(*harness.cs0.b);
          x0 = net::recv_matrix_f32(*harness.cs0.b, mpc::tags::kClientData);
          y0 = net::recv_matrix_f32(*harness.cs0.b,
                                    mpc::tags::kClientData + 1);
        },
        [&] {
          recv_st1 = recv_store(*harness.cs1.b);
          x1 = net::recv_matrix_f32(*harness.cs1.b, mpc::tags::kClientData);
          y1 = net::recv_matrix_f32(*harness.cs1.b,
                                    mpc::tags::kClientData + 1);
        });
    c.join();
  }
  result.offline_transmit_sec = tx_timer.seconds();

  // ---- online phase: the two servers train / infer on shares ----
  mpc::PartyContext ctx0(0, harness.s0s1.a, device, opts);
  mpc::PartyContext ctx1(1, harness.s0s1.b, device, opts);
  recv_st0.set_recycle(true);
  recv_st1.set_recycle(true);
  ctx0.set_triplets(std::move(recv_st0));
  ctx1.set_triplets(std::move(recv_st1));

  // Per-server reconstructed predictions (inference runs only).
  std::vector<MatrixF> preds0, preds1;

  auto server_loop = [&](int id) {
    mpc::PartyContext& ctx = id == 0 ? ctx0 : ctx1;
    const MatrixF& x = id == 0 ? x0 : x1;
    const MatrixF& y = id == 0 ? y0 : y1;
    auto& model = id == 0 ? pair.m0 : pair.m1;
    auto& rnn = id == 0 ? rnn_pair.m0 : rnn_pair.m1;
    auto& preds = id == 0 ? preds0 : preds1;

    std::unique_ptr<pipeline::AsyncLane> lane;
    if (opts.use_pipeline) lane = std::make_unique<pipeline::AsyncLane>();
    ml::SecureEnv env{&ctx, training, lane.get()};

    for (std::size_t e = 0; e < cfg.epochs; ++e) {
      for (std::size_t b = 0; b < n_batches; ++b) {
        ctx.set_stream_salt(b);  // per-batch-slot compression baselines
        const MatrixF xb = data::slice_rows(x, b * batch, batch);
        const MatrixF yb = data::slice_rows(y, b * batch, batch);
        if (is_rnn) {
          const auto xs = data::sequence_view(xb, cfg.rnn_steps);
          MatrixF pred = rnn->forward(env, xs);
          if (training) {
            MatrixF grad(pred.rows(), pred.cols());
            const float inv_n = 1.0f / static_cast<float>(pred.rows());
            for (std::size_t i = 0; i < grad.size(); ++i) {
              grad.data()[i] = (pred.data()[i] - yb.data()[i]) * inv_n;
            }
            rnn->backward(env, grad);
            rnn->update(cfg.lr);
          } else {
            preds.push_back(std::move(pred));
          }
        } else if (training) {
          ml::secure_train_batch(env, model, loss_kind, xb, yb, cfg.lr);
        } else {
          preds.push_back(ml::secure_infer_batch(env, model, xb));
        }
      }
    }
    if (lane) lane->drain();
  };

  Timer online;
  run_two_parties([&] { server_loop(0); }, [&] { server_loop(1); });
  result.online_sec = online.seconds();

  // ---- wrap-up: stats + client-side evaluation ----
  for (const auto& [name, stat] : prof.report()) {
    result.online_phases[name] += stat.total_sec;
  }
  const auto& st_a = harness.s0s1.a->stats();
  const auto& st_b = harness.s0s1.b->stats();
  result.server_to_server_bytes = st_a.bytes_sent.load() + st_b.bytes_sent.load();
  const auto& c0 = ctx0.compressed().stats();
  const auto& c1 = ctx1.compressed().stats();
  result.compression.messages = c0.messages + c1.messages;
  result.compression.compressed_messages =
      c0.compressed_messages + c1.compressed_messages;
  result.compression.dense_bytes = c0.dense_bytes + c1.dense_bytes;
  result.compression.sent_bytes = c0.sent_bytes + c1.sent_bytes;

  if (cfg.evaluate) {
    if (training) {
      if (is_rnn) {
        auto plain = ml::reconstruct_plain_rnn(mc, *rnn_pair.m0, *rnn_pair.m1);
        const auto xs = data::sequence_view(ds.x, cfg.rnn_steps);
        result.accuracy = ml::accuracy(plain.forward(xs), ds.y);
        if (!cfg.checkpoint_path.empty()) {
          ml::save_model(cfg.checkpoint_path, plain);
        }
      } else {
        auto plain = ml::reconstruct_plain(mc, pair.m0, pair.m1);
        result.accuracy = ml::accuracy(plain.forward(ds.x), ds.y);
        if (!cfg.checkpoint_path.empty()) {
          ml::save_model(cfg.checkpoint_path, plain);
        }
      }
    } else {
      // Client reconstructs the prediction shares batch by batch.
      std::size_t correct_rows = 0, total_rows = 0;
      for (std::size_t b = 0; b < preds0.size(); ++b) {
        const MatrixF pred = mpc::reconstruct_float(preds0[b], preds1[b]);
        const MatrixF yb = data::slice_rows(
            ds.y, (b % n_batches) * batch, batch);
        correct_rows += static_cast<std::size_t>(
            ml::accuracy(pred, yb) * static_cast<double>(pred.rows()) + 0.5);
        total_rows += pred.rows();
      }
      result.accuracy = total_rows == 0
                            ? 0.0
                            : static_cast<double>(correct_rows) / total_rows;
    }
  }
  result.total_sec = total.seconds();
  return result;
}

}  // namespace

namespace {

void validate(const RunConfig& cfg) {
  PSML_REQUIRE(cfg.samples > 0, "RunConfig: samples must be positive");
  PSML_REQUIRE(cfg.batch > 0, "RunConfig: batch must be positive");
  PSML_REQUIRE(cfg.epochs > 0, "RunConfig: epochs must be positive");
  PSML_REQUIRE(cfg.lr > 0.0f && std::isfinite(cfg.lr),
               "RunConfig: learning rate must be positive and finite");
  if (cfg.model == ml::ModelKind::kRnn) {
    PSML_REQUIRE(cfg.rnn_steps > 0, "RunConfig: rnn_steps must be positive");
    const auto geometry = data::dataset_geometry(cfg.dataset);
    PSML_REQUIRE(geometry.features() % cfg.rnn_steps == 0,
                 "RunConfig: dataset features not divisible by rnn_steps");
  }
}

}  // namespace

RunResult run_training(const RunConfig& cfg) {
  validate(cfg);
  if (cfg.mode == Mode::kPlainCpu || cfg.mode == Mode::kPlainGpu) {
    return run_plain(cfg, /*training=*/true);
  }
  return run_secure(cfg, /*training=*/true);
}

RunResult run_inference(const RunConfig& cfg) {
  validate(cfg);
  if (cfg.mode == Mode::kPlainCpu || cfg.mode == Mode::kPlainGpu) {
    return run_plain(cfg, /*training=*/false);
  }
  return run_secure(cfg, /*training=*/false);
}

}  // namespace psml::parsecureml
