#include "parsecureml/store_transfer.hpp"

#include <cstring>

#include "common/taint.hpp"
#include "mpc/party.hpp"
#include "net/serialize.hpp"

namespace psml::parsecureml {

namespace {

constexpr net::Tag kStoreHeader = mpc::tags::kControl + 0x100;
constexpr net::Tag kStoreMatrix = mpc::tags::kControl + 0x101;

struct StoreHeader {
  std::uint32_t n_matmul;
  std::uint32_t n_elem;
  std::uint32_t n_act;
};

// declassify(): this is the client handing server i its *own* share of the
// offline material — the one party entitled to exactly these words. The
// other server's share never crosses this channel, so the additive masking
// stays information-theoretic (paper Sec. 2.2, client-aided dealer model).
void send_triplet(net::Channel& ch, const mpc::TripletShare& t) {
  net::send_matrix(ch, kStoreMatrix, psml::declassify(t.u));
  net::send_matrix(ch, kStoreMatrix, psml::declassify(t.v));
  net::send_matrix(ch, kStoreMatrix, psml::declassify(t.z));
}

mpc::TripletShare recv_triplet(net::Channel& ch) {
  mpc::TripletShare t;
  t.u = net::recv_matrix_f32(ch, kStoreMatrix);
  t.v = net::recv_matrix_f32(ch, kStoreMatrix);
  t.z = net::recv_matrix_f32(ch, kStoreMatrix);
  return t;
}

}  // namespace

void send_store(net::Channel& ch, const mpc::TripletStore& store) {
  const StoreHeader h{static_cast<std::uint32_t>(store.matmuls().size()),
                      static_cast<std::uint32_t>(store.elementwises().size()),
                      static_cast<std::uint32_t>(store.activations().size())};
  std::vector<std::uint8_t> buf(sizeof(h));
  std::memcpy(buf.data(), &h, sizeof(h));
  ch.send(kStoreHeader, buf);

  for (const auto& t : store.matmuls()) send_triplet(ch, t);
  for (const auto& t : store.elementwises()) send_triplet(ch, t);
  for (const auto& a : store.activations()) {
    send_triplet(ch, a.t_lo);
    send_triplet(ch, a.t_hi);
    // Same dealer-to-owner handoff as send_triplet above.
    net::send_matrix(ch, kStoreMatrix, psml::declassify(a.s_lo));
    net::send_matrix(ch, kStoreMatrix, psml::declassify(a.s_hi));
  }
}

mpc::TripletStore recv_store(net::Channel& ch) {
  const net::Message msg = ch.recv(kStoreHeader);
  if (msg.payload.size() != sizeof(StoreHeader)) {
    throw ProtocolError("recv_store: bad header size");
  }
  StoreHeader h;
  std::memcpy(&h, msg.payload.data(), sizeof(h));

  mpc::TripletStore store;
  for (std::uint32_t i = 0; i < h.n_matmul; ++i) {
    store.push_matmul(recv_triplet(ch));
  }
  for (std::uint32_t i = 0; i < h.n_elem; ++i) {
    store.push_elementwise(recv_triplet(ch));
  }
  for (std::uint32_t i = 0; i < h.n_act; ++i) {
    mpc::ActivationShare a;
    a.t_lo = recv_triplet(ch);
    a.t_hi = recv_triplet(ch);
    a.s_lo = net::recv_matrix_f32(ch, kStoreMatrix);
    a.s_hi = net::recv_matrix_f32(ch, kStoreMatrix);
    store.push_activation(std::move(a));
  }
  return store;
}

}  // namespace psml::parsecureml
