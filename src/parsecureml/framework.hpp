// ParSecureML public API: one-call secure training / inference runs.
//
// A run wires up the three-party topology of Fig. 1b in one process — a
// client (dealer) and two computation servers connected by channels — then
// executes the configured workload and reports phase timings, traffic and
// accuracy. The same entry points also run the non-secure baselines
// ("original" CPU ML, non-secure GPU ML) so every comparison in the paper's
// evaluation is a pair of run_* calls.
//
// Execution modes:
//   kPlainCpu      — original ML, single-thread naive GEMM (Table 1 baseline)
//   kPlainGpu      — original ML on the simulated GPU (Table 2 reference)
//   kSecureML      — two-party computation, no GPU, no optimizations
//                    (the SecureML reimplementation the paper benchmarks)
//   kParSecureML   — full system: adaptive GPU, double pipeline, compression,
//                    CPU parallelism, Tensor-Core GEMM
//   kCustom        — caller-provided PartyOptions (ablations)
#pragma once

#include <map>
#include <string>

#include "compress/compressed_channel.hpp"
#include "data/datasets.hpp"
#include "ml/models.hpp"
#include "mpc/party.hpp"

namespace psml::parsecureml {

enum class Mode { kPlainCpu, kPlainGpu, kSecureML, kParSecureML, kCustom };

std::string to_string(Mode mode);

// The PartyOptions a given mode runs the servers with.
mpc::PartyOptions options_for_mode(Mode mode);

struct RunConfig {
  ml::ModelKind model = ml::ModelKind::kMlp;
  data::DatasetKind dataset = data::DatasetKind::kMnist;
  std::size_t samples = 256;
  std::size_t batch = 128;
  std::size_t epochs = 1;
  float lr = 0.1f;
  Mode mode = Mode::kParSecureML;
  // Used when mode == kCustom.
  mpc::PartyOptions custom_opts;
  std::uint64_t seed = 99;
  // Reconstruct trained weights and score on the training set afterwards.
  bool evaluate = true;
  std::size_t rnn_steps = 4;
  // When non-empty and training with evaluate on, the reconstructed model is
  // checkpointed here (ml/checkpoint.hpp format).
  std::string checkpoint_path;
};

struct RunResult {
  // Phase wall times (seconds). Plain modes report everything under online.
  double offline_generate_sec = 0.0;
  double offline_transmit_sec = 0.0;
  double online_sec = 0.0;
  double total_sec = 0.0;
  // Aggregated profiler phases across both servers (online.compute1,
  // online.communicate, online.compute2, ...).
  std::map<std::string, double> online_phases;
  // Post-run evaluation (when cfg.evaluate).
  double accuracy = 0.0;
  // Inter-server traffic (bytes actually sent, both directions).
  std::uint64_t server_to_server_bytes = 0;
  // Compressed-transmission statistics, both servers aggregated.
  compress::Stats compression;
  // Offline material size (bytes per server).
  std::size_t offline_bytes = 0;
};

// The label scheme / model config a run uses (exposed for benches/tests).
data::LabelScheme scheme_for_model(ml::ModelKind kind);
ml::ModelConfig model_config_for(const RunConfig& cfg,
                                 const data::Geometry& geometry);

// Trains cfg.epochs over the dataset; returns timings + accuracy.
RunResult run_training(const RunConfig& cfg);

// Forward passes over the dataset (secure inference); accuracy is computed
// from client-reconstructed predictions.
RunResult run_inference(const RunConfig& cfg);

}  // namespace psml::parsecureml
