#include "sparse/csr.hpp"

#include <cstring>

#include "common/error.hpp"

namespace psml::sparse {

namespace {

struct WireHeader {
  std::uint32_t rows;
  std::uint32_t cols;
  std::uint32_t nnz;
};

// memcpy requires non-null pointers even for n == 0, and an empty vector's
// data() may be null (UBSan flags this on empty matrices).
void copy_bytes(void* dst, const void* src, std::size_t n) {
  if (n != 0) std::memcpy(dst, src, n);
}

}  // namespace

Csr Csr::from_dense(const MatrixF& dense) {
  Csr out;
  out.rows_ = dense.rows();
  out.cols_ = dense.cols();
  PSML_REQUIRE(dense.rows() < UINT32_MAX && dense.cols() < UINT32_MAX,
               "CSR: dimension exceeds 32-bit index space");
  out.row_ptr_.resize(out.rows_ + 1, 0);
  for (std::size_t r = 0; r < dense.rows(); ++r) {
    for (std::size_t c = 0; c < dense.cols(); ++c) {
      const float v = dense(r, c);
      if (v != 0.0f) {
        out.col_idx_.push_back(static_cast<std::uint32_t>(c));
        out.values_.push_back(v);
      }
    }
    out.row_ptr_[r + 1] = static_cast<std::uint32_t>(out.values_.size());
  }
  return out;
}

MatrixF Csr::to_dense() const {
  MatrixF out(rows_, cols_, 0.0f);
  add_to(out);
  return out;
}

void Csr::add_to(MatrixF& out) const {
  PSML_REQUIRE(out.rows() == rows_ && out.cols() == cols_,
               "CSR add_to: shape mismatch");
  for (std::size_t r = 0; r < rows_; ++r) {
    float* orow = out.data() + r * cols_;
    for (std::uint32_t i = row_ptr_[r]; i < row_ptr_[r + 1]; ++i) {
      orow[col_idx_[i]] += values_[i];
    }
  }
}

MatrixF Csr::spmm(const MatrixF& x) const {
  PSML_REQUIRE(x.rows() == cols_, "CSR spmm: inner dimensions disagree");
  MatrixF y(rows_, x.cols(), 0.0f);
  for (std::size_t r = 0; r < rows_; ++r) {
    float* yrow = y.data() + r * y.cols();
    for (std::uint32_t i = row_ptr_[r]; i < row_ptr_[r + 1]; ++i) {
      const float v = values_[i];
      const float* xrow = x.data() + col_idx_[i] * x.cols();
      for (std::size_t c = 0; c < x.cols(); ++c) yrow[c] += v * xrow[c];
    }
  }
  return y;
}

std::size_t Csr::wire_bytes() const {
  return sizeof(WireHeader) + row_ptr_.size() * sizeof(std::uint32_t) +
         col_idx_.size() * sizeof(std::uint32_t) +
         values_.size() * sizeof(float);
}

std::vector<std::uint8_t> Csr::serialize() const {
  std::vector<std::uint8_t> buf(wire_bytes());
  std::uint8_t* p = buf.data();
  const WireHeader h{static_cast<std::uint32_t>(rows_),
                     static_cast<std::uint32_t>(cols_),
                     static_cast<std::uint32_t>(values_.size())};
  std::memcpy(p, &h, sizeof(h));
  p += sizeof(h);
  copy_bytes(p, row_ptr_.data(), row_ptr_.size() * sizeof(std::uint32_t));
  p += row_ptr_.size() * sizeof(std::uint32_t);
  copy_bytes(p, col_idx_.data(), col_idx_.size() * sizeof(std::uint32_t));
  p += col_idx_.size() * sizeof(std::uint32_t);
  copy_bytes(p, values_.data(), values_.size() * sizeof(float));
  return buf;
}

Csr Csr::deserialize(const std::uint8_t* data, std::size_t size) {
  if (size < sizeof(WireHeader)) {
    throw ProtocolError("CSR deserialize: buffer shorter than header");
  }
  WireHeader h;
  std::memcpy(&h, data, sizeof(h));
  const std::size_t rp = static_cast<std::size_t>(h.rows) + 1;
  const std::size_t need = sizeof(WireHeader) + rp * sizeof(std::uint32_t) +
                           static_cast<std::size_t>(h.nnz) *
                               (sizeof(std::uint32_t) + sizeof(float));
  if (size != need) {
    throw ProtocolError("CSR deserialize: buffer size does not match header");
  }
  Csr out;
  out.rows_ = h.rows;
  out.cols_ = h.cols;
  out.row_ptr_.resize(rp);
  out.col_idx_.resize(h.nnz);
  out.values_.resize(h.nnz);
  const std::uint8_t* p = data + sizeof(WireHeader);
  copy_bytes(out.row_ptr_.data(), p, rp * sizeof(std::uint32_t));
  p += rp * sizeof(std::uint32_t);
  copy_bytes(out.col_idx_.data(), p, h.nnz * sizeof(std::uint32_t));
  p += h.nnz * sizeof(std::uint32_t);
  copy_bytes(out.values_.data(), p, h.nnz * sizeof(float));

  // Validate structure so a corrupt payload cannot index out of range later.
  if (out.row_ptr_.front() != 0 || out.row_ptr_.back() != h.nnz) {
    throw ProtocolError("CSR deserialize: row pointers do not span nnz");
  }
  for (std::size_t r = 0; r + 1 < out.row_ptr_.size(); ++r) {
    if (out.row_ptr_[r] > out.row_ptr_[r + 1]) {
      throw ProtocolError("CSR deserialize: non-monotone row pointers");
    }
  }
  for (const auto c : out.col_idx_) {
    if (c >= h.cols) {
      throw ProtocolError("CSR deserialize: column index out of range");
    }
  }
  return out;
}

}  // namespace psml::sparse
