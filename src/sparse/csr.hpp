// Compressed Sparse Row storage + codecs (paper Sec. 4.4).
//
// The compressed-transmission layer converts sparse E/F deltas to CSR before
// sending. The wire format is a single contiguous byte buffer:
//   header {rows, cols, nnz}  |  row_ptr[rows+1]  |  col_idx[nnz]  | vals[nnz]
// with 32-bit indices (matrices here never exceed 2^31 per dim).
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/matrix.hpp"

namespace psml::sparse {

class Csr {
 public:
  Csr() = default;

  // Build from dense, keeping entries != 0.
  static Csr from_dense(const MatrixF& dense);

  MatrixF to_dense() const;

  // y = this * x (dense matrix), the SpMM used when a compressed delta is
  // applied without decompressing first.
  MatrixF spmm(const MatrixF& x) const;

  // out += this (scatter-add into a dense accumulator), the delta-apply op.
  void add_to(MatrixF& out) const;

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t nnz() const { return values_.size(); }

  // Bytes this matrix occupies on the wire.
  std::size_t wire_bytes() const;
  // Bytes the equivalent dense matrix would occupy.
  std::size_t dense_bytes() const { return rows_ * cols_ * sizeof(float); }

  std::vector<std::uint8_t> serialize() const;
  // Throws ProtocolError on malformed input (bad sizes, out-of-range
  // indices, non-monotone row pointers).
  static Csr deserialize(const std::uint8_t* data, std::size_t size);

  const std::vector<std::uint32_t>& row_ptr() const { return row_ptr_; }
  const std::vector<std::uint32_t>& col_idx() const { return col_idx_; }
  const std::vector<float>& values() const { return values_; }

  friend bool operator==(const Csr& a, const Csr& b) {
    return a.rows_ == b.rows_ && a.cols_ == b.cols_ &&
           a.row_ptr_ == b.row_ptr_ && a.col_idx_ == b.col_idx_ &&
           a.values_ == b.values_;
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<std::uint32_t> row_ptr_;  // size rows_+1 (or empty when rows_==0)
  std::vector<std::uint32_t> col_idx_;
  std::vector<float> values_;
};

}  // namespace psml::sparse
