// Deterministic chaos injection for any Channel.
//
// FaultInjectChannel is a decorator that wraps a Channel endpoint and
// executes a scripted, seedable fault plan against the messages flowing
// through it, so every transport failure mode the protocol must survive is
// reproducible in CI. Both endpoints of a pair must be wrapped (use
// wrap_pair): the decorator adds a 12-byte mini-frame
//   u64 seq | u32 crc32(payload)
// in front of every payload, which is what lets the receiving side detect
// truncation and bit-flip corruption as typed NetworkErrors and drop
// duplicate deliveries by sequence number — the same mechanisms the
// hardened TCP framing uses, modelled at the Channel layer so chaos tests
// run against in-process LocalChannel pairs.
//
// Fault plan grammar (FaultPlan::parse): a semicolon-separated list of
//   kind@index[:arg]
// where `index` is the 0-based count of messages *sent* through this
// endpoint and `kind` is one of
//   delay@i:ms   sleep `ms` milliseconds (default 10) before delivering
//   drop@i       silently discard the message (the waiting peer recv
//                surfaces TimeoutError once its deadline expires)
//   close@i      discard the message, then close the channel (peer recvs
//                throw NetworkError)
//   flip@i[:bit] XOR one payload bit (default: pseudorandom bit drawn from
//                the plan seed and index) — detected by the peer as a CRC
//                mismatch (NetworkError)
//   trunc@i[:n]  cut the last n bytes (default 1) off the frame — detected
//                by the peer as truncation/CRC mismatch (NetworkError)
//   dup@i        deliver the message twice (the duplicate is absorbed by
//                sequence dedupe; the run completes normally)
//   part@i[:n]   partition: hold this and the following n-1 messages
//                (default 2 total), then release them in order — the run
//                completes normally if recv deadlines tolerate the stall
// Multiple actions may target the same index; they apply in plan order.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "net/channel.hpp"

namespace psml::net {

struct FaultAction {
  enum class Kind : std::uint8_t {
    kDelay,
    kDrop,
    kClose,
    kFlip,
    kTruncate,
    kDuplicate,
    kPartition,
  };
  Kind kind = Kind::kDelay;
  std::size_t index = 0;   // 0-based send index the action fires at
  std::uint64_t arg = 0;   // ms / bit / bytes / window size; 0 = default
  bool has_arg = false;
};

struct FaultPlan {
  std::vector<FaultAction> actions;

  // Parses the grammar above; throws InvalidArgument on malformed specs.
  // An empty spec is a valid no-fault plan.
  static FaultPlan parse(const std::string& spec);
  std::string to_string() const;
  bool empty() const { return actions.empty(); }
};

class FaultInjectChannel final : public Channel {
 public:
  // Wraps both endpoints of a pair with their own plans. The two decorators
  // share nothing; determinism comes from the per-endpoint send counters
  // and the seed.
  static ChannelPair wrap_pair(ChannelPair inner, FaultPlan plan_a,
                               FaultPlan plan_b, std::uint64_t seed = 1);
  // Wraps a single endpoint (the peer must be wrapped too, e.g. with an
  // empty plan, so the mini-framing matches).
  static std::shared_ptr<Channel> wrap(std::shared_ptr<Channel> inner,
                                       FaultPlan plan,
                                       std::uint64_t seed = 1);

  void close() override;
  bool send_may_block() const override { return inner_->send_may_block(); }

  // Number of fault actions that have fired so far (for test assertions).
  std::size_t faults_fired() const {
    return faults_fired_.load(std::memory_order_relaxed);
  }

 protected:
  // Flattens the outbound fragments first: the fault actions (bit flips,
  // truncation, partition buffering) need one mutable contiguous frame.
  void send_impl(Tag tag, WireBuf&& payload) override;
  Message recv_impl(Deadline deadline) override;

 private:
  FaultInjectChannel(std::shared_ptr<Channel> inner, FaultPlan plan,
                     std::uint64_t seed)
      : inner_(std::move(inner)), plan_(std::move(plan)), seed_(seed) {}

  void forward(Tag tag, const std::vector<std::uint8_t>& framed);

  std::shared_ptr<Channel> inner_;
  const FaultPlan plan_;
  const std::uint64_t seed_;

  // Send-side state; send_impl runs under the base class send mutex, so no
  // extra locking is needed.
  std::size_t send_index_ = 0;
  std::uint64_t next_seq_ = 1;
  std::size_t partition_left_ = 0;
  std::vector<Message> held_;  // messages buffered during a partition

  // Recv-side state; only the current drainer touches it (base class
  // serializes recv_impl).
  std::uint64_t last_recv_seq_ = 0;

  std::atomic<std::size_t> faults_fired_{0};
};

}  // namespace psml::net
