// Point-to-point message transport between protocol endpoints.
//
// This is the MPI substitute: the ParSecureML protocol only needs tagged,
// ordered, reliable point-to-point messages between {client, server0,
// server1}. Two backends implement the interface:
//   LocalChannel — in-process queues (tests, benchmarks, single-machine runs)
//   TcpChannel   — loopback/LAN sockets (two-process deployment example)
//
// Every channel counts traffic; the compression experiment (Fig. 16) reads
// these counters.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/error.hpp"
#include "net/wire_buf.hpp"

namespace psml::net {

// Message tags; the high bits identify the protocol step, low bits carry a
// sequence component where needed.
using Tag = std::uint32_t;

// Receive deadlines are absolute steady-clock points; kNoDeadline means
// "block forever" (the pre-fault-tolerance behaviour).
using Clock = std::chrono::steady_clock;
using Deadline = Clock::time_point;
inline constexpr Deadline kNoDeadline = Deadline::max();

// Deadline `timeout` from now; non-positive timeouts mean no deadline.
inline Deadline deadline_after(std::chrono::milliseconds timeout) {
  return timeout.count() > 0 ? Clock::now() + timeout : kNoDeadline;
}

struct Message {
  Tag tag = 0;
  std::vector<std::uint8_t> payload;
};

struct TrafficStats {
  std::atomic<std::uint64_t> bytes_sent{0};
  std::atomic<std::uint64_t> bytes_received{0};
  std::atomic<std::uint64_t> messages_sent{0};
  std::atomic<std::uint64_t> messages_received{0};

  void reset() {
    bytes_sent = 0;
    bytes_received = 0;
    messages_sent = 0;
    messages_received = 0;
  }
};

class Channel {
 public:
  Channel();  // seeds the default timeout from PSML_NET_TIMEOUT_MS
  virtual ~Channel() = default;

  // Sends one tagged message. Thread-safe against concurrent send() calls.
  // The span overload copies nothing extra: it wraps the span as a borrowed
  // WireBuf view (valid through the synchronous call, per the WireBuf
  // contract) and forwards to the zero-copy path.
  void send(Tag tag, std::span<const std::uint8_t> payload);
  void send(Tag tag, WireBuf&& payload);

  // Blocking receive of the next message carrying `tag`. Messages with other
  // tags received in the meantime are buffered and returned by their own
  // recv() calls — this is what lets the double pipeline interleave protocol
  // steps without strict global ordering.
  //
  // Concurrency contract: multiple threads may block in recv() for different
  // tags. The implementation never holds the receive lock while blocked on
  // the transport (one thread drains at a time; the rest wait on a condition
  // variable over the reorder buffer). Holding the lock across the blocking
  // drain would deadlock the double pipeline: each party's main thread can
  // end up waiting for a message whose sender is the peer's *other* thread,
  // blocked behind the peer's held lock — a 4-thread cross-party cycle.
  //
  // Deadline contract: the no-deadline overloads use the channel's default
  // timeout (none unless set_default_timeout() or PSML_NET_TIMEOUT_MS says
  // otherwise). When the deadline expires before the wanted message arrives
  // — whether this thread was draining the transport or waiting on the
  // reorder buffer — recv throws TimeoutError. A timeout is not fatal to the
  // channel: already-buffered and future messages remain receivable, and the
  // drainer role is handed to the next waiter.
  Message recv(Tag tag);
  Message recv(Tag tag, Deadline deadline);

  // Blocking receive of the next message regardless of tag. Messages already
  // buffered by tag-selective recv() calls are returned first, in arrival
  // order, before the transport is read again.
  Message recv_any();
  Message recv_any(Deadline deadline);

  // Default timeout applied by the no-deadline recv overloads; zero (the
  // initial value, overridable via PSML_NET_TIMEOUT_MS) disables it.
  void set_default_timeout(std::chrono::milliseconds timeout) {
    default_timeout_ms_.store(timeout.count(), std::memory_order_relaxed);
  }
  std::chrono::milliseconds default_timeout() const {
    return std::chrono::milliseconds(
        default_timeout_ms_.load(std::memory_order_relaxed));
  }

  // Closes the transport; pending and future recv() calls throw NetworkError.
  virtual void close() = 0;

  // True when send() can block on peer backpressure (e.g. TCP socket
  // buffers). Protocol code uses this to decide whether a concurrent
  // exchange needs a separate sender thread.
  virtual bool send_may_block() const { return false; }

  const TrafficStats& stats() const { return stats_; }
  TrafficStats& stats() { return stats_; }

 protected:
  // Backend hooks. send_impl receives the fragments as assembled by the
  // caller; a backend either gathers them straight to the wire (TcpChannel's
  // sendmsg) or moves/flattens them into a Message (LocalChannel). Borrowed
  // fragments are valid for the duration of the call only.
  virtual void send_impl(Tag tag, WireBuf&& payload) = 0;
  // Returns the next message in arrival order; throws NetworkError when the
  // peer is gone and TimeoutError when `deadline` expires first. A timeout
  // must leave the backend usable: a later recv_impl() call picks up exactly
  // where the timed-out one stopped (no bytes lost or re-delivered).
  virtual Message recv_impl(Deadline deadline) = 0;

  TrafficStats stats_;

 private:
  // Reorder buffer for tag-selective receive. recv_mutex_ guards pending_
  // and drainer_active_; it is NEVER held across the blocking recv_impl()
  // call (see recv() contract above). recv_cv_ wakes waiters whenever the
  // buffer changes or the drainer role frees up.
  std::vector<Message> pending_;
  bool drainer_active_ = false;
  std::condition_variable recv_cv_;
  std::mutex recv_mutex_;
  std::mutex send_mutex_;
  std::atomic<long long> default_timeout_ms_;
};

// A matched pair of channel endpoints (A talks to B).
struct ChannelPair {
  std::shared_ptr<Channel> a;
  std::shared_ptr<Channel> b;
};

}  // namespace psml::net
