#include "net/buffer_pool.hpp"

#include "common/env.hpp"

namespace psml::net {

BufferPool& BufferPool::global() {
  static BufferPool pool(env_size_t("PSML_NET_POOL_BYTES", 64ull << 20));
  return pool;
}

BufferPool::BufferPool(std::size_t cap_bytes) : cap_bytes_(cap_bytes) {}

int BufferPool::class_index(std::size_t n) {
  if (n > kMaxClass) return -1;
  std::size_t c = kMinClass;
  int idx = 0;
  while (c < n) {
    c <<= 1;
    ++idx;
  }
  return idx;
}

std::vector<std::uint8_t> BufferPool::acquire(std::size_t n) {
  const int idx = class_index(n);
  if (idx >= 0 && cap_bytes_ > 0) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto& bin = bins_[idx];
    if (!bin.empty()) {
      std::vector<std::uint8_t> v = std::move(bin.back());
      bin.pop_back();
      metrics_.bytes_held -= v.capacity();
      metrics_.hits += 1;
      // resize within capacity: no allocation, no zero-fill guarantees
      // needed by the contract (callers overwrite every byte).
      v.resize(n);
      return v;
    }
    metrics_.misses += 1;
  } else {
    std::lock_guard<std::mutex> lock(mutex_);
    metrics_.misses += 1;
  }
  std::vector<std::uint8_t> v;
  if (idx >= 0) {
    // Reserve the full class size so this buffer rebins cleanly on release
    // regardless of the exact payload length that allocated it.
    v.reserve(kMinClass << idx);
  }
  v.resize(n);
  return v;
}

void BufferPool::release(std::vector<std::uint8_t>&& v) {
  const int idx = class_index(v.capacity());
  std::lock_guard<std::mutex> lock(mutex_);
  if (idx < 0 || v.capacity() == 0 ||
      v.capacity() != (kMinClass << idx) ||  // off-class: came from elsewhere
      metrics_.bytes_held + v.capacity() > cap_bytes_) {
    metrics_.drops += 1;
    return;  // vector dies here
  }
  metrics_.releases += 1;
  metrics_.bytes_held += v.capacity();
  bins_[idx].push_back(std::move(v));
}

BufferPool::Metrics BufferPool::metrics() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return metrics_;
}

void BufferPool::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& bin : bins_) bin.clear();
  metrics_ = Metrics{};
}

}  // namespace psml::net
