#include "net/local_channel.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>

namespace psml::net {

ChannelPair LocalChannel::make_pair() {
  auto q_ab = std::make_shared<Queue>();
  auto q_ba = std::make_shared<Queue>();
  // Private constructor: can't use make_shared.
  std::shared_ptr<Channel> a(new LocalChannel(q_ab, q_ba));
  std::shared_ptr<Channel> b(new LocalChannel(q_ba, q_ab));
  return {std::move(a), std::move(b)};
}

void LocalChannel::send_impl(Tag tag, WireBuf&& payload) {
  Message m;
  m.tag = tag;
  m.payload = std::move(payload).take_bytes();
  {
    std::lock_guard<std::mutex> lock(tx_->mutex);
    if (tx_->closed) {
      throw NetworkError("LocalChannel: send on closed channel");
    }
    tx_->items.push_back(std::move(m));
  }
  tx_->cv.notify_one();
}

Message LocalChannel::recv_impl(Deadline deadline) {
  std::unique_lock<std::mutex> lock(rx_->mutex);
  const auto ready = [this] { return !rx_->items.empty() || rx_->closed; };
  if (deadline != kNoDeadline) {
    if (!rx_->cv.wait_until(lock, deadline, ready)) {
      throw TimeoutError("LocalChannel: recv deadline expired");
    }
  } else {
    // Debug aid (PSML_RECV_DEBUG=1): report stalls instead of waiting
    // silently — used to diagnose protocol-level distributed deadlocks.
    static const bool debug = std::getenv("PSML_RECV_DEBUG") != nullptr;
    if (debug) {
      int stalls = 0;
      while (!rx_->cv.wait_for(lock, std::chrono::seconds(5), ready)) {
        std::fprintf(stderr,
                     "[psml recv stall #%d] thread %p queue=%p empty\n",
                     ++stalls, static_cast<void*>(&lock),
                     static_cast<void*>(rx_.get()));
      }
    } else {
      rx_->cv.wait(lock, ready);
    }
  }
  if (rx_->items.empty()) {
    throw NetworkError("LocalChannel: peer closed");
  }
  Message m = std::move(rx_->items.front());
  rx_->items.pop_front();
  return m;
}

void LocalChannel::close() {
  for (auto& q : {tx_, rx_}) {
    {
      std::lock_guard<std::mutex> lock(q->mutex);
      q->closed = true;
    }
    q->cv.notify_all();
  }
}

}  // namespace psml::net
