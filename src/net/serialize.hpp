// Matrix (de)serialization over channels.
//
// Wire format of a dense matrix message:
//   u8 kind (0 = dense f32, 1 = csr f32, 2 = dense u64) | u32 rows | u32 cols
//   | data
// The kind byte is what lets the compressed-transmission layer switch
// between dense and CSR payloads per message without a side channel.
#pragma once

#include <cstdint>

#include "net/channel.hpp"
#include "sparse/csr.hpp"
#include "tensor/matrix.hpp"

namespace psml::net {

enum class PayloadKind : std::uint8_t {
  kDenseF32 = 0,
  kCsrF32 = 1,
  kDenseU64 = 2,
};

std::vector<std::uint8_t> encode_matrix(const MatrixF& m);
std::vector<std::uint8_t> encode_matrix(const MatrixU64& m);
std::vector<std::uint8_t> encode_csr(const psml::sparse::Csr& m);

// View-based encoders: append the wire encoding onto a WireBuf without
// materializing a byte vector — the 12-byte header is copied, the matrix
// storage rides as a borrowed view (valid through the synchronous send; a
// backend that must retain it consolidates via WireBuf::make_owned). This is
// what makes a large-matrix send zero-copy end to end.
void encode_matrix_into(const MatrixF& m, WireBuf& out);
void encode_matrix_into(const MatrixU64& m, WireBuf& out);

// Exact encode_matrix / encode_csr output sizes without materializing the
// buffer, derived from the same wire-header struct the encoders use. The
// compression layer's dense-vs-CSR accounting uses these so its ratios can't
// drift if the header layout changes.
std::size_t encoded_matrix_bytes(const MatrixF& m);
std::size_t encoded_matrix_bytes(const MatrixU64& m);
std::size_t encoded_csr_bytes(const psml::sparse::Csr& m);

// Decodes either a dense or CSR float payload into a dense matrix.
MatrixF decode_matrix_f32(const std::uint8_t* data, std::size_t size);
MatrixU64 decode_matrix_u64(const std::uint8_t* data, std::size_t size);
// Returns the payload kind without decoding.
PayloadKind peek_kind(const std::uint8_t* data, std::size_t size);

// Channel helpers.
void send_matrix(Channel& ch, Tag tag, const MatrixF& m);
void send_matrix(Channel& ch, Tag tag, const MatrixU64& m);
void send_csr(Channel& ch, Tag tag, const psml::sparse::Csr& m);
MatrixF recv_matrix_f32(Channel& ch, Tag tag);
MatrixU64 recv_matrix_u64(Channel& ch, Tag tag);

}  // namespace psml::net
