#include "net/serialize.hpp"

#include <cstring>

#include "net/buffer_pool.hpp"

namespace psml::net {

namespace {

struct MatrixHeader {
  std::uint8_t kind;
  std::uint8_t pad[3] = {0, 0, 0};
  std::uint32_t rows;
  std::uint32_t cols;
};
static_assert(sizeof(MatrixHeader) == 12);

template <typename T>
std::vector<std::uint8_t> encode_dense(const Matrix<T>& m, PayloadKind kind) {
  std::vector<std::uint8_t> buf(sizeof(MatrixHeader) + m.bytes());
  const MatrixHeader h{static_cast<std::uint8_t>(kind),
                       {0, 0, 0},
                       static_cast<std::uint32_t>(m.rows()),
                       static_cast<std::uint32_t>(m.cols())};
  std::memcpy(buf.data(), &h, sizeof(h));
  std::memcpy(buf.data() + sizeof(h), m.data(), m.bytes());
  return buf;
}

MatrixHeader read_header(const std::uint8_t* data, std::size_t size) {
  if (size < sizeof(MatrixHeader)) {
    throw ProtocolError("matrix decode: buffer shorter than header");
  }
  MatrixHeader h;
  std::memcpy(&h, data, sizeof(h));
  return h;
}

}  // namespace

namespace {

template <typename T>
void encode_dense_into(const Matrix<T>& m, PayloadKind kind, WireBuf& out) {
  const MatrixHeader h{static_cast<std::uint8_t>(kind),
                       {0, 0, 0},
                       static_cast<std::uint32_t>(m.rows()),
                       static_cast<std::uint32_t>(m.cols())};
  out.append_copy(&h, sizeof(h));
  out.append_view(m.data(), m.bytes());
}

}  // namespace

void encode_matrix_into(const MatrixF& m, WireBuf& out) {
  encode_dense_into(m, PayloadKind::kDenseF32, out);
}

void encode_matrix_into(const MatrixU64& m, WireBuf& out) {
  encode_dense_into(m, PayloadKind::kDenseU64, out);
}

std::vector<std::uint8_t> encode_matrix(const MatrixF& m) {
  return encode_dense(m, PayloadKind::kDenseF32);
}

std::vector<std::uint8_t> encode_matrix(const MatrixU64& m) {
  return encode_dense(m, PayloadKind::kDenseU64);
}

std::size_t encoded_matrix_bytes(const MatrixF& m) {
  return sizeof(MatrixHeader) + m.bytes();
}

std::size_t encoded_matrix_bytes(const MatrixU64& m) {
  return sizeof(MatrixHeader) + m.bytes();
}

std::size_t encoded_csr_bytes(const psml::sparse::Csr& m) {
  return sizeof(MatrixHeader) + m.wire_bytes();
}

std::vector<std::uint8_t> encode_csr(const psml::sparse::Csr& m) {
  auto body = m.serialize();
  std::vector<std::uint8_t> buf(sizeof(MatrixHeader) + body.size());
  const MatrixHeader h{static_cast<std::uint8_t>(PayloadKind::kCsrF32),
                       {0, 0, 0},
                       static_cast<std::uint32_t>(m.rows()),
                       static_cast<std::uint32_t>(m.cols())};
  std::memcpy(buf.data(), &h, sizeof(h));
  std::memcpy(buf.data() + sizeof(h), body.data(), body.size());
  return buf;
}

PayloadKind peek_kind(const std::uint8_t* data, std::size_t size) {
  return static_cast<PayloadKind>(read_header(data, size).kind);
}

MatrixF decode_matrix_f32(const std::uint8_t* data, std::size_t size) {
  const MatrixHeader h = read_header(data, size);
  const std::uint8_t* body = data + sizeof(MatrixHeader);
  const std::size_t body_size = size - sizeof(MatrixHeader);
  switch (static_cast<PayloadKind>(h.kind)) {
    case PayloadKind::kDenseF32: {
      MatrixF m(h.rows, h.cols);
      if (body_size != m.bytes()) {
        throw ProtocolError("matrix decode: dense payload size mismatch");
      }
      std::memcpy(m.data(), body, body_size);
      return m;
    }
    case PayloadKind::kCsrF32: {
      auto csr = psml::sparse::Csr::deserialize(body, body_size);
      if (csr.rows() != h.rows || csr.cols() != h.cols) {
        throw ProtocolError("matrix decode: CSR header/dims mismatch");
      }
      return csr.to_dense();
    }
    default:
      throw ProtocolError("matrix decode: expected f32 payload");
  }
}

MatrixU64 decode_matrix_u64(const std::uint8_t* data, std::size_t size) {
  const MatrixHeader h = read_header(data, size);
  if (static_cast<PayloadKind>(h.kind) != PayloadKind::kDenseU64) {
    throw ProtocolError("matrix decode: expected u64 payload");
  }
  MatrixU64 m(h.rows, h.cols);
  if (size - sizeof(MatrixHeader) != m.bytes()) {
    throw ProtocolError("matrix decode: u64 payload size mismatch");
  }
  std::memcpy(m.data(), data + sizeof(MatrixHeader), m.bytes());
  return m;
}

void send_matrix(Channel& ch, Tag tag, const MatrixF& m) {
  WireBuf buf;
  encode_matrix_into(m, buf);
  ch.send(tag, std::move(buf));
}

void send_matrix(Channel& ch, Tag tag, const MatrixU64& m) {
  WireBuf buf;
  encode_matrix_into(m, buf);
  ch.send(tag, std::move(buf));
}

void send_csr(Channel& ch, Tag tag, const psml::sparse::Csr& m) {
  ch.send(tag, encode_csr(m));
}

MatrixF recv_matrix_f32(Channel& ch, Tag tag) {
  Message m = ch.recv(tag);
  MatrixF out = decode_matrix_f32(m.payload.data(), m.payload.size());
  BufferPool::global().release(std::move(m.payload));
  return out;
}

MatrixU64 recv_matrix_u64(Channel& ch, Tag tag) {
  Message m = ch.recv(tag);
  MatrixU64 out = decode_matrix_u64(m.payload.data(), m.payload.size());
  BufferPool::global().release(std::move(m.payload));
  return out;
}

}  // namespace psml::net
