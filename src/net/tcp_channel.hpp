// TCP channel backend for multi-process deployment.
//
// Frame format on the wire (little-endian, version 2):
//   u32 magic | u32 tag | u64 seq | u64 payload_len | u32 payload_crc
//   | u32 header_crc | payload bytes
// Every field of the header is covered by header_crc (CRC-32 of the first
// 28 bytes) so a corrupt or desynchronized stream is rejected before the
// payload length is trusted. payload_crc is IEEE CRC-32 unless both hellos
// advertised the CRC-32C capability flag, in which case payloads switch to
// the hardware-accelerated Castagnoli polynomial (header_crc never
// switches: it must be checkable pre-negotiation); payload_len is capped
// (PSML_NET_MAX_FRAME, default 1 GiB) so a garbage header cannot trigger a
// multi-GB allocation. `seq` numbers each direction's frames from 1 and
// enables duplicate suppression and reconnect-and-resume.
//
// Connection lifecycle: every (re)connection starts with a Hello handshake
// carrying {session id, last delivered seq}. With TcpOptions::resume
// enabled, both endpoints keep a bounded retransmit ring of sent frames;
// when the connection drops mid-session the client redials (exponential
// backoff with deterministic jitter), the server re-accepts on its retained
// listen socket, both re-handshake with the same session id, and each side
// retransmits the frames the other has not yet delivered. The seq numbers
// make the resume exactly-once: the receiver drops anything at or below its
// last delivered seq.
//
// Socket I/O is poll()-based so every read honours the recv deadline and a
// blocked accept/connect can time out as TimeoutError. A deadline that
// expires mid-frame keeps the partially read frame in channel state and the
// next recv_impl() resumes the read — no bytes are lost or re-delivered.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "net/channel.hpp"

namespace psml::net {

// Knobs for the fault-tolerant transport. The defaults reproduce the
// pre-existing behaviour (no resume, wait forever for the peer to arrive).
struct TcpOptions {
  // connect(): total time to keep redialing before giving up.
  double connect_timeout_sec = 10.0;
  // listen(): how long to wait in accept; < 0 reads
  // PSML_NET_ACCEPT_TIMEOUT_MS (0 = wait forever). Expiry throws
  // TimeoutError.
  double accept_timeout_sec = -1.0;

  // Payload checksum algorithm. When true (the default) the endpoint
  // advertises CRC-32C support in its "PSMH" hello; payload_crc switches to
  // the hardware-accelerated CRC-32C only when BOTH endpoints advertised it,
  // so an old peer (or a raw test harness sending flags=0) transparently
  // falls back to IEEE CRC-32. header_crc stays IEEE CRC-32 unconditionally
  // — it must be checkable before any negotiation state is known.
  // PSML_NET_CRC32C=0 force-disables advertising.
  bool crc32c = true;

  // Reconnect-and-resume. Requires both endpoints to opt in.
  bool resume = false;
  int max_reconnects = 5;           // redial/re-accept attempts per outage
  std::size_t retransmit_cap_bytes = 64ull << 20;  // per-direction ring

  // Exponential backoff with deterministic jitter, shared by the connect()
  // retry loop and the reconnect path: sleep k grows
  // base * 2^k, capped at max, each scaled by a jitter factor in
  // [0.5, 1.0) drawn from a splitmix64 chain over jitter_seed.
  double backoff_base_ms = 10.0;
  double backoff_max_ms = 2000.0;
  std::uint64_t jitter_seed = 0x243f6a8885a308d3ull;
};

class TcpChannel final : public Channel {
 public:
  // Listens on `port` (all interfaces) and accepts exactly one peer, then
  // performs the session handshake. With opts.resume the listening socket is
  // retained for re-accepting the same session after a drop.
  static std::shared_ptr<Channel> listen(std::uint16_t port,
                                        TcpOptions opts = {});

  // Connects to host:port, retrying with backoff+jitter over every address
  // getaddrinfo returns so either side can start first.
  static std::shared_ptr<Channel> connect(const std::string& host,
                                          std::uint16_t port,
                                          TcpOptions opts);
  static std::shared_ptr<Channel> connect(const std::string& host,
                                          std::uint16_t port,
                                          double timeout_sec = 10.0);

  ~TcpChannel() override;
  void close() override;
  bool send_may_block() const override { return true; }

  // Test hook: severs the current connection as a network fault would
  // (shutdown of the socket without marking the channel closed). With
  // resume enabled the next send/recv reconnects; without it they throw
  // NetworkError. Both endpoints observe the break.
  void inject_disconnect();

  std::uint64_t session_id() const { return session_id_; }
  int reconnect_count() const {
    return reconnects_.load(std::memory_order_relaxed);
  }
  // True when both endpoints advertised CRC-32C and payloads use it.
  bool crc32c_negotiated() const {
    return use_crc32c_.load(std::memory_order_relaxed);
  }

  // Deadline-aware raw I/O on one fd, shared with the framing helpers.
  // Throws TimeoutError on deadline expiry and NetworkError on socket
  // failure / EOF.
  static void write_all(int fd, const void* data, std::size_t size);
  static std::size_t read_some(int fd, void* data, std::size_t size,
                               Deadline deadline);

 protected:
  // Zero-copy data plane: the frame header and the WireBuf fragments go out
  // in ONE sendmsg (scatter-gather, MSG_NOSIGNAL), never flattened. With
  // resume enabled the payload is first consolidated (make_owned — the one
  // copy resume costs for borrowed views) and the retransmit ring stores a
  // clone_shared() that bumps refcounts instead of deep-copying bytes.
  void send_impl(Tag tag, WireBuf&& payload) override;
  Message recv_impl(Deadline deadline) override;

 private:
  enum class Role { kServer, kClient };

  struct SentFrame {
    std::uint64_t seq = 0;
    Tag tag = 0;
    WireBuf payload;  // fully owned; shares storage with the original send
  };

  // Partially read frame, preserved across a deadline expiry so the stream
  // never desynchronizes. Only the current drainer thread touches it (the
  // base class serializes recv_impl calls); `gen` invalidates it after a
  // reconnect.
  struct RecvState {
    std::uint64_t gen = 0;
    bool have_header = false;
    std::size_t got = 0;  // bytes of header or payload read so far
    std::vector<std::uint8_t> header;
    Message msg;
    std::uint32_t payload_crc = 0;
  };

  TcpChannel(int fd, int listen_fd, Role role, std::string host,
             std::uint16_t port, TcpOptions opts, std::uint64_t session_id,
             bool use_crc32c);

  // Called by send/recv after a socket-level failure observed under
  // connection generation `failed_gen`. Returns (retry the operation) if the
  // connection was re-established — by this call or a racing one — and
  // throws otherwise.
  void recover_or_throw(std::uint64_t failed_gen, const NetworkError& err);

  // Dial / accept / handshake helpers used by the factories and the
  // reconnect path.
  static int dial_once(const std::string& host, std::uint16_t port,
                       Deadline deadline);
  static int accept_once(int listen_fd, Deadline deadline);
  static void handshake_client(int fd, std::uint64_t& session_id,
                               std::uint64_t last_recv_seq,
                               std::uint32_t my_flags,
                               std::uint64_t& peer_last_recv,
                               std::uint32_t& peer_flags);
  static void handshake_server(int fd, std::uint64_t& session_id,
                               std::uint64_t last_recv_seq,
                               std::uint32_t my_flags,
                               std::uint64_t& peer_last_recv,
                               std::uint32_t& peer_flags);
  // The flags this endpoint advertises in its hello, from opts_ and env.
  static std::uint32_t hello_flags(const TcpOptions& opts);
  void retransmit_from(int fd, std::uint64_t peer_last_recv);

  double next_backoff_ms(int attempt);

  // close() may race in-flight send/recv on other threads: it only
  // shutdown()s the socket (waking blocked syscalls), and the destructor —
  // which by object-lifetime rules cannot race them — does the ::close().
  // Reconnects retire the dead fd into retired_fds_ (closed by the
  // destructor) for the same reason: an fd number must never be recycled
  // while a blocked reader could still reference it.
  std::atomic<int> fd_{-1};
  std::atomic<bool> shut_{false};
  const Role role_;
  const std::string peer_host_;
  const std::uint16_t peer_port_;
  const TcpOptions opts_;
  std::uint64_t session_id_ = 0;
  int listen_fd_ = -1;
  // Result of the hello negotiation; re-derived on every reconnect
  // handshake (the peer's capabilities cannot silently change mid-session —
  // a mismatch there throws).
  std::atomic<bool> use_crc32c_{false};

  // Guards the reconnect state machine: conn_gen_, retired_fds_, the
  // retransmit ring, seq assignment, and backoff_state_. Never held across
  // a blocking data-plane read (only handshake I/O during reconnect).
  std::mutex conn_mutex_;
  std::uint64_t conn_gen_ = 1;
  std::vector<int> retired_fds_;
  std::uint64_t backoff_state_;
  std::atomic<int> reconnects_{0};

  std::uint64_t next_send_seq_ = 1;       // under conn_mutex_
  std::deque<SentFrame> ring_;            // under conn_mutex_
  std::size_t ring_bytes_ = 0;            // under conn_mutex_
  std::atomic<std::uint64_t> last_recv_seq_{0};

  RecvState recv_state_;
};

}  // namespace psml::net
