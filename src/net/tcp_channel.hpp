// TCP channel backend for multi-process deployment.
//
// Frame format on the wire (little-endian):
//   u32 magic | u32 tag | u64 payload_len | payload bytes
// Blocking socket I/O with full-read/full-write loops; TCP_NODELAY set so
// the small reconstruct-phase messages are not Nagle-delayed.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "net/channel.hpp"

namespace psml::net {

class TcpChannel final : public Channel {
 public:
  // Listens on `port` (all interfaces) and accepts exactly one peer.
  static std::shared_ptr<Channel> listen(std::uint16_t port);

  // Connects to host:port, retrying for up to `timeout_sec` so either side
  // can start first.
  static std::shared_ptr<Channel> connect(const std::string& host,
                                          std::uint16_t port,
                                          double timeout_sec = 10.0);

  ~TcpChannel() override;
  void close() override;
  bool send_may_block() const override { return true; }

 protected:
  void send_impl(Message&& m) override;
  Message recv_impl() override;

 private:
  explicit TcpChannel(int fd) : fd_(fd) {}

  void write_all(int fd, const void* data, std::size_t size);
  void read_all(int fd, void* data, std::size_t size);

  // close() may race in-flight send/recv on other threads: it only
  // shutdown()s the socket (waking blocked syscalls), and the destructor —
  // which by object-lifetime rules cannot race them — does the ::close().
  // shut_'s exchange makes the shutdown happen exactly once.
  std::atomic<int> fd_{-1};
  std::atomic<bool> shut_{false};
};

}  // namespace psml::net
