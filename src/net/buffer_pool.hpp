// Size-classed recycling pool for transport byte buffers.
//
// The receive path allocates one payload vector per frame and the
// compression layer one scratch buffer per send; at training rates that is
// thousands of multi-MB allocations per second, all short-lived and nearly
// all the same few sizes (the E/F matrices of each layer). The pool keeps
// freed vectors binned by capacity (powers of two, 256 B .. 16 MiB) and
// hands them back on the next acquire, so the steady state performs no
// allocator traffic at all.
//
// Contract:
//   - acquire(n) returns a vector with size() == n; its contents are
//     unspecified (callers overwrite every byte — wire payloads are fully
//     written before being read).
//   - release(std::move(v)) is advisory: the pool may keep the buffer (if
//     its capacity matches a class and the cap allows) or let it die. Never
//     required for correctness — a payload that escapes to user code and is
//     destroyed normally is simply a pool miss later.
//   - thread-safe; a single mutex guards the bins (the critical section is
//     a couple of pointer moves, contention is far cheaper than malloc).
//
// PSML_NET_POOL_BYTES caps the total bytes retained (default 64 MiB, 0
// disables pooling entirely); metrics() exposes hit/miss/drop counters for
// BENCH_comm.json and tests.
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

namespace psml::net {

class BufferPool {
 public:
  struct Metrics {
    std::uint64_t hits = 0;       // acquire served from a bin
    std::uint64_t misses = 0;     // acquire fell through to the allocator
    std::uint64_t releases = 0;   // buffers accepted back
    std::uint64_t drops = 0;      // releases rejected (cap / off-class size)
    std::size_t bytes_held = 0;   // currently retained capacity
  };

  // Process-wide pool shared by every channel and endpoint.
  static BufferPool& global();

  // Isolated pool with an explicit retention cap — unit tests and benches
  // use this to exercise cap/eviction behaviour without touching global().
  explicit BufferPool(std::size_t cap_bytes);

  std::vector<std::uint8_t> acquire(std::size_t n);
  void release(std::vector<std::uint8_t>&& v);

  Metrics metrics() const;
  // Frees every retained buffer (tests and benchmarks isolate runs with it;
  // counters reset too).
  void clear();

  std::size_t cap_bytes() const { return cap_bytes_; }

 private:
  static constexpr std::size_t kMinClass = 256;           // 2^8
  static constexpr std::size_t kMaxClass = 16ull << 20;   // 2^24
  static constexpr int kNumClasses = 17;                  // 2^8 .. 2^24

  // Index of the smallest class holding `n` bytes, or -1 when n is outside
  // the pooled range.
  static int class_index(std::size_t n);

  const std::size_t cap_bytes_;
  mutable std::mutex mutex_;
  std::vector<std::vector<std::uint8_t>> bins_[kNumClasses];
  Metrics metrics_;
};

}  // namespace psml::net
