#include "net/fault_inject.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <thread>

#include "common/crc32.hpp"

namespace psml::net {

namespace {

constexpr std::size_t kMiniFrameBytes = 12;  // u64 seq + u32 crc

std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

void put_u64(std::uint8_t* p, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

void put_u32(std::uint8_t* p, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

std::uint32_t get_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

std::string trim(const std::string& s) {
  std::size_t b = s.find_first_not_of(" \t\n");
  if (b == std::string::npos) return "";
  std::size_t e = s.find_last_not_of(" \t\n");
  return s.substr(b, e - b + 1);
}

const char* kind_name(FaultAction::Kind k) {
  switch (k) {
    case FaultAction::Kind::kDelay: return "delay";
    case FaultAction::Kind::kDrop: return "drop";
    case FaultAction::Kind::kClose: return "close";
    case FaultAction::Kind::kFlip: return "flip";
    case FaultAction::Kind::kTruncate: return "trunc";
    case FaultAction::Kind::kDuplicate: return "dup";
    case FaultAction::Kind::kPartition: return "part";
  }
  return "?";
}

}  // namespace

FaultPlan FaultPlan::parse(const std::string& spec) {
  FaultPlan plan;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    const std::size_t semi = spec.find(';', pos);
    const std::string token =
        trim(spec.substr(pos, semi == std::string::npos ? std::string::npos
                                                        : semi - pos));
    pos = semi == std::string::npos ? spec.size() + 1 : semi + 1;
    if (token.empty()) continue;

    const std::size_t at = token.find('@');
    PSML_REQUIRE(at != std::string::npos,
                 "fault plan token '" + token + "' lacks '@index'");
    const std::string kind = trim(token.substr(0, at));
    std::string rest = trim(token.substr(at + 1));
    std::string arg_str;
    const std::size_t colon = rest.find(':');
    if (colon != std::string::npos) {
      arg_str = trim(rest.substr(colon + 1));
      rest = trim(rest.substr(0, colon));
    }

    FaultAction a;
    if (kind == "delay") {
      a.kind = FaultAction::Kind::kDelay;
    } else if (kind == "drop") {
      a.kind = FaultAction::Kind::kDrop;
    } else if (kind == "close") {
      a.kind = FaultAction::Kind::kClose;
    } else if (kind == "flip") {
      a.kind = FaultAction::Kind::kFlip;
    } else if (kind == "trunc") {
      a.kind = FaultAction::Kind::kTruncate;
    } else if (kind == "dup") {
      a.kind = FaultAction::Kind::kDuplicate;
    } else if (kind == "part") {
      a.kind = FaultAction::Kind::kPartition;
    } else {
      throw InvalidArgument("fault plan: unknown kind '" + kind + "'");
    }
    try {
      a.index = static_cast<std::size_t>(std::stoull(rest));
      if (!arg_str.empty()) {
        a.arg = std::stoull(arg_str);
        a.has_arg = true;
      }
    } catch (const std::exception&) {
      throw InvalidArgument("fault plan: bad number in token '" + token +
                            "'");
    }
    plan.actions.push_back(a);
  }
  return plan;
}

std::string FaultPlan::to_string() const {
  std::string out;
  for (const FaultAction& a : actions) {
    if (!out.empty()) out += ';';
    out += kind_name(a.kind);
    out += '@';
    out += std::to_string(a.index);
    if (a.has_arg) {
      out += ':';
      out += std::to_string(a.arg);
    }
  }
  return out;
}

ChannelPair FaultInjectChannel::wrap_pair(ChannelPair inner, FaultPlan plan_a,
                                          FaultPlan plan_b,
                                          std::uint64_t seed) {
  ChannelPair out;
  out.a = wrap(std::move(inner.a), std::move(plan_a), seed);
  out.b = wrap(std::move(inner.b), std::move(plan_b), mix64(seed));
  return out;
}

std::shared_ptr<Channel> FaultInjectChannel::wrap(
    std::shared_ptr<Channel> inner, FaultPlan plan, std::uint64_t seed) {
  return std::shared_ptr<Channel>(
      new FaultInjectChannel(std::move(inner), std::move(plan), seed));
}

void FaultInjectChannel::close() { inner_->close(); }

void FaultInjectChannel::forward(Tag tag,
                                 const std::vector<std::uint8_t>& framed) {
  inner_->send(tag, std::span<const std::uint8_t>(framed));
}

void FaultInjectChannel::send_impl(Tag tag, WireBuf&& payload) {
  const std::size_t idx = send_index_++;
  const std::uint64_t seq = next_seq_++;

  // The payload CRC is computed fragment-chained before flattening — the
  // same order the hardened TCP path would checksum it.
  const std::uint32_t payload_crc = payload.checksum(&psml::crc32);
  const std::size_t payload_len = payload.size();
  std::vector<std::uint8_t> framed(kMiniFrameBytes + payload_len);
  put_u64(framed.data(), seq);
  put_u32(framed.data() + 8, payload_crc);
  {
    std::size_t off = kMiniFrameBytes;
    for (const WireBuf::View& v : payload.views()) {
      std::memcpy(framed.data() + off, v.data, v.len);
      off += v.len;
    }
  }

  bool drop = false, close_after = false, duplicate = false;
  for (const FaultAction& a : plan_.actions) {
    if (a.index != idx) continue;
    faults_fired_.fetch_add(1, std::memory_order_relaxed);
    switch (a.kind) {
      case FaultAction::Kind::kDelay: {
        const std::uint64_t ms = a.has_arg ? a.arg : 10;
        std::this_thread::sleep_for(std::chrono::milliseconds(ms));
        break;
      }
      case FaultAction::Kind::kDrop:
        drop = true;
        break;
      case FaultAction::Kind::kClose:
        drop = true;
        close_after = true;
        break;
      case FaultAction::Kind::kFlip: {
        // Flip one bit past the seq field (crc or payload): the receiver
        // sees a CRC mismatch while sequence accounting stays intact.
        const std::size_t region_bits = (framed.size() - 8) * 8;
        const std::uint64_t bit =
            (a.has_arg ? a.arg : mix64(seed_ ^ idx)) % region_bits;
        framed[8 + bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
        break;
      }
      case FaultAction::Kind::kTruncate: {
        const std::size_t n =
            std::min<std::size_t>(a.has_arg ? a.arg : 1, framed.size());
        framed.resize(framed.size() - n);
        break;
      }
      case FaultAction::Kind::kDuplicate:
        duplicate = true;
        break;
      case FaultAction::Kind::kPartition:
        partition_left_ =
            std::max<std::size_t>(partition_left_, a.has_arg ? a.arg : 2);
        break;
    }
  }

  if (partition_left_ > 0) {
    // Partitioned: buffer in order; the last message of the window heals
    // the partition and releases the backlog. A partition that never heals
    // (fewer sends than the window) behaves like dropped messages.
    if (!drop) {
      held_.push_back(Message{tag, framed});
      if (duplicate) held_.push_back(Message{tag, framed});
    }
    if (--partition_left_ == 0) {
      for (const Message& h : held_) forward(h.tag, h.payload);
      held_.clear();
    }
    if (close_after) inner_->close();
    return;
  }

  if (!drop) {
    forward(tag, framed);
    if (duplicate) forward(tag, framed);
  }
  if (close_after) inner_->close();
}

Message FaultInjectChannel::recv_impl(Deadline deadline) {
  for (;;) {
    Message m = inner_->recv_any(deadline);
    if (m.payload.size() < kMiniFrameBytes) {
      throw NetworkError("FaultInjectChannel: truncated frame (" +
                         std::to_string(m.payload.size()) + " bytes)");
    }
    const std::uint64_t seq = get_u64(m.payload.data());
    const std::uint32_t crc = get_u32(m.payload.data() + 8);
    if (crc32(m.payload.data() + kMiniFrameBytes,
              m.payload.size() - kMiniFrameBytes) != crc) {
      throw NetworkError(
          "FaultInjectChannel: corrupt frame (crc mismatch)");
    }
    if (seq <= last_recv_seq_) continue;  // duplicate delivery — absorbed
    last_recv_seq_ = seq;                 // gaps = dropped frames, allowed
    m.payload.erase(m.payload.begin(),
                    m.payload.begin() + kMiniFrameBytes);
    return m;
  }
}

}  // namespace psml::net
