#include "net/wire_buf.hpp"

#include <cstring>

#include "net/buffer_pool.hpp"

namespace psml::net {

void WireBuf::append_copy(const void* data, std::size_t len) {
  if (len == 0) return;
  Frag f;
  f.in_arena = true;
  f.off = arena_.size();
  f.len = len;
  arena_.insert(arena_.end(), static_cast<const std::uint8_t*>(data),
                static_cast<const std::uint8_t*>(data) + len);
  frags_.push_back(std::move(f));
  size_ += len;
}

void WireBuf::append_view(const void* data, std::size_t len) {
  if (len == 0) return;
  Frag f;
  f.data = static_cast<const std::uint8_t*>(data);
  f.len = len;
  frags_.push_back(std::move(f));
  size_ += len;
}

void WireBuf::append_shared(std::shared_ptr<const void> owner,
                            const void* data, std::size_t len) {
  if (len == 0) return;
  Frag f;
  f.data = static_cast<const std::uint8_t*>(data);
  f.len = len;
  f.owner = std::move(owner);
  frags_.push_back(std::move(f));
  size_ += len;
}

void WireBuf::append_vector(std::vector<std::uint8_t>&& v) {
  if (v.empty()) return;
  Frag f;
  f.vec = std::make_shared<std::vector<std::uint8_t>>(std::move(v));
  f.data = f.vec->data();
  f.len = f.vec->size();
  size_ += f.len;
  frags_.push_back(std::move(f));
}

void WireBuf::append_buf(WireBuf&& other) {
  const std::size_t base = arena_.size();
  arena_.insert(arena_.end(), other.arena_.begin(), other.arena_.end());
  for (Frag& f : other.frags_) {
    if (f.in_arena) f.off += base;
    frags_.push_back(std::move(f));
  }
  size_ += other.size_;
  other.frags_.clear();
  other.arena_.clear();
  other.size_ = 0;
}

std::vector<WireBuf::View> WireBuf::views() const {
  std::vector<View> out;
  out.reserve(frags_.size());
  for (const Frag& f : frags_) out.push_back(View{frag_data(f), f.len});
  return out;
}

std::uint32_t WireBuf::checksum(
    std::uint32_t (*fn)(const void*, std::size_t, std::uint32_t)) const {
  std::uint32_t c = 0;
  for (const Frag& f : frags_) c = fn(frag_data(f), f.len, c);
  return c;
}

bool WireBuf::fully_owned() const {
  for (const Frag& f : frags_) {
    if (!f.in_arena && !f.vec && !f.owner) return false;
  }
  return true;
}

void WireBuf::make_owned() {
  std::size_t viewed = 0;
  for (const Frag& f : frags_) {
    if (!f.in_arena && !f.vec && !f.owner) viewed += f.len;
  }
  if (viewed == 0) return;
  // One pooled buffer for every viewed fragment; consecutive views collapse
  // into it in order, each becoming a shared slice.
  auto backing = std::make_shared<std::vector<std::uint8_t>>(
      BufferPool::global().acquire(viewed));
  std::size_t off = 0;
  for (Frag& f : frags_) {
    if (f.in_arena || f.vec || f.owner) continue;
    std::memcpy(backing->data() + off, f.data, f.len);
    f.data = backing->data() + off;
    f.owner = std::shared_ptr<const void>(backing, backing->data());
    off += f.len;
  }
}

WireBuf WireBuf::clone_shared() const {
  WireBuf out;
  out.arena_ = arena_;
  out.frags_ = frags_;
  // Arena fragments resolve against the clone's own arena copy; shared /
  // vec fragments carry their refcounted storage over unchanged.
  out.size_ = size_;
  return out;
}

std::vector<std::uint8_t> WireBuf::take_bytes() && {
  if (frags_.size() == 1) {
    Frag& f = frags_.front();
    // Whole-vector fragment with no other owners: move it out intact. This
    // preserves byte-for-byte (and allocation) identity through
    // LocalChannel.
    if (f.vec && f.vec.use_count() == 1 && f.data == f.vec->data() &&
        f.len == f.vec->size()) {
      std::vector<std::uint8_t> out = std::move(*f.vec);
      frags_.clear();
      size_ = 0;
      return out;
    }
  }
  std::vector<std::uint8_t> out = BufferPool::global().acquire(size_);
  std::size_t off = 0;
  for (const Frag& f : frags_) {
    std::memcpy(out.data() + off, frag_data(f), f.len);
    off += f.len;
  }
  frags_.clear();
  arena_.clear();
  size_ = 0;
  return out;
}

}  // namespace psml::net
