// Zero-copy outbound message: an ordered list of byte fragments that a
// backend can hand to scatter-gather I/O (one sendmsg per frame) without
// ever flattening into a single contiguous payload.
//
// Fragment ownership comes in three strengths:
//   copied  — small bytes (wire headers, subkind prefixes) memcpy'd into the
//             WireBuf's own arena at append time
//   shared  — a refcounted buffer (shared_ptr) the WireBuf co-owns; cheap to
//             clone into the retransmit ring, alive as long as anyone needs
//   viewed  — a borrowed pointer into caller storage (matrix data). Valid
//             only until the synchronous send() returns; a backend that must
//             keep the bytes longer (retransmit ring) calls make_owned()
//             first, which consolidates all viewed fragments into one shared
//             buffer — the single copy the resume feature costs.
//
// The CRC of the whole logical payload is computed fragment-by-fragment with
// the seed-chaining convention (crc(A||B) == crc(B, len_b, crc(A))), so the
// scatter-gather path never materializes the payload just to checksum it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace psml::net {

class WireBuf {
 public:
  struct View {
    const std::uint8_t* data;
    std::size_t len;
  };

  WireBuf() = default;
  WireBuf(WireBuf&&) = default;
  WireBuf& operator=(WireBuf&&) = default;
  WireBuf(const WireBuf&) = delete;
  WireBuf& operator=(const WireBuf&) = delete;

  // Copies `len` bytes into the arena (for headers and other small bytes).
  void append_copy(const void* data, std::size_t len);
  // Borrows caller storage; the caller guarantees the bytes outlive the
  // synchronous send() call.
  void append_view(const void* data, std::size_t len);
  // Co-owns `owner`; `data` points into the owned storage.
  void append_shared(std::shared_ptr<const void> owner, const void* data,
                     std::size_t len);
  // Takes ownership of a whole vector (the common "encoded body" case).
  // A WireBuf holding exactly one of these releases it intact via
  // take_bytes() — the LocalChannel fast path.
  void append_vector(std::vector<std::uint8_t>&& v);
  // Splices another WireBuf's fragments onto the end of this one (arena
  // bytes merge, owned/viewed fragments carry over). `other` is left empty.
  void append_buf(WireBuf&& other);

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::size_t fragment_count() const { return frags_.size(); }

  // Resolved {pointer, length} spans in payload order. Pointers into the
  // arena are only stable until the next append_copy.
  std::vector<View> views() const;

  // Fragment-chained checksum over the whole payload; `fn` is one of the
  // crc32 / crc32c entry points.
  std::uint32_t checksum(std::uint32_t (*fn)(const void*, std::size_t,
                                             std::uint32_t)) const;

  // True when no fragment is a borrowed view (safe to keep past the send).
  bool fully_owned() const;

  // Consolidates viewed fragments into one pooled shared buffer so the
  // WireBuf (and clones of it) stay valid after send() returns. Shared and
  // arena fragments are left alone — no copy for them.
  void make_owned();

  // Cheap copy sharing the same owned storage (refcount bump, no byte
  // copies). Requires fully_owned(); the retransmit ring stores these.
  WireBuf clone_shared() const;

  // Moves the payload out as one contiguous vector. Zero-copy when the
  // WireBuf is exactly one whole owned vector; otherwise flattens through
  // the buffer pool. Consumes the WireBuf.
  std::vector<std::uint8_t> take_bytes() &&;

 private:
  struct Frag {
    // Exactly one storage mode:
    //   in_arena      — bytes at arena_[off .. off+len)
    //   vec != null   — whole owned vector; data points into *vec
    //   owner != null — shared opaque storage; data points into it
    //   none of those — borrowed view
    bool in_arena = false;
    std::size_t off = 0;
    const std::uint8_t* data = nullptr;
    std::size_t len = 0;
    std::shared_ptr<const void> owner;
    std::shared_ptr<std::vector<std::uint8_t>> vec;
  };

  const std::uint8_t* frag_data(const Frag& f) const {
    return f.in_arena ? arena_.data() + f.off : f.data;
  }

  std::vector<std::uint8_t> arena_;
  std::vector<Frag> frags_;
  std::size_t size_ = 0;
};

}  // namespace psml::net
