// In-process channel backend: two endpoints sharing a pair of blocking
// queues. Used by tests, benchmarks, and the single-machine 3-party harness.
#pragma once

#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>

#include "net/channel.hpp"

namespace psml::net {

class LocalChannel final : public Channel {
 public:
  // Creates a connected pair of endpoints.
  static ChannelPair make_pair();

  void close() override;

 protected:
  // Fast path: an owned single-buffer WireBuf (the usual encoded-body case)
  // moves through the queue without any byte copy — the receiver gets the
  // sender's allocation, bitwise identical. View fragments flatten once
  // through the buffer pool (the send contract says views don't outlive the
  // call, and queued messages do).
  void send_impl(Tag tag, WireBuf&& payload) override;
  Message recv_impl(Deadline deadline) override;

 private:
  struct Queue {
    std::deque<Message> items;
    std::mutex mutex;
    std::condition_variable cv;
    bool closed = false;
  };

  LocalChannel(std::shared_ptr<Queue> tx, std::shared_ptr<Queue> rx)
      : tx_(std::move(tx)), rx_(std::move(rx)) {}

  std::shared_ptr<Queue> tx_;
  std::shared_ptr<Queue> rx_;
};

}  // namespace psml::net
