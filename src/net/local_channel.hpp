// In-process channel backend: two endpoints sharing a pair of blocking
// queues. Used by tests, benchmarks, and the single-machine 3-party harness.
#pragma once

#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>

#include "net/channel.hpp"

namespace psml::net {

class LocalChannel final : public Channel {
 public:
  // Creates a connected pair of endpoints.
  static ChannelPair make_pair();

  void close() override;

 protected:
  void send_impl(Message&& m) override;
  Message recv_impl(Deadline deadline) override;

 private:
  struct Queue {
    std::deque<Message> items;
    std::mutex mutex;
    std::condition_variable cv;
    bool closed = false;
  };

  LocalChannel(std::shared_ptr<Queue> tx, std::shared_ptr<Queue> rx)
      : tx_(std::move(tx)), rx_(std::move(rx)) {}

  std::shared_ptr<Queue> tx_;
  std::shared_ptr<Queue> rx_;
};

}  // namespace psml::net
