#include "net/tcp_channel.hpp"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "common/log.hpp"

namespace psml::net {

namespace {

constexpr std::uint32_t kFrameMagic = 0x50534d4cu;  // "PSML"

struct FrameHeader {
  std::uint32_t magic;
  std::uint32_t tag;
  std::uint64_t payload_len;
};

void set_nodelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

[[noreturn]] void throw_errno(const std::string& what) {
  throw NetworkError(what + ": " + std::strerror(errno));
}

}  // namespace

std::shared_ptr<Channel> TcpChannel::listen(std::uint16_t port) {
  const int lfd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (lfd < 0) throw_errno("socket");
  int one = 1;
  ::setsockopt(lfd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(port);
  if (::bind(lfd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(lfd);
    throw_errno("bind");
  }
  if (::listen(lfd, 1) < 0) {
    ::close(lfd);
    throw_errno("listen");
  }
  const int fd = ::accept(lfd, nullptr, nullptr);
  ::close(lfd);
  if (fd < 0) throw_errno("accept");
  set_nodelay(fd);
  return std::shared_ptr<Channel>(new TcpChannel(fd));
}

std::shared_ptr<Channel> TcpChannel::connect(const std::string& host,
                                             std::uint16_t port,
                                             double timeout_sec) {
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  const std::string port_str = std::to_string(port);
  if (::getaddrinfo(host.c_str(), port_str.c_str(), &hints, &res) != 0) {
    throw NetworkError("getaddrinfo failed for " + host);
  }
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(timeout_sec);
  int fd = -1;
  for (;;) {
    fd = ::socket(res->ai_family, res->ai_socktype, res->ai_protocol);
    if (fd < 0) {
      ::freeaddrinfo(res);
      throw_errno("socket");
    }
    if (::connect(fd, res->ai_addr, res->ai_addrlen) == 0) break;
    ::close(fd);
    fd = -1;
    if (std::chrono::steady_clock::now() >= deadline) {
      ::freeaddrinfo(res);
      throw NetworkError("connect to " + host + ":" + port_str + " timed out");
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  ::freeaddrinfo(res);
  set_nodelay(fd);
  return std::shared_ptr<Channel>(new TcpChannel(fd));
}

TcpChannel::~TcpChannel() {
  // Destruction is never concurrent with send/recv (standard object
  // lifetime), so this is the only place the descriptor may actually be
  // ::close()d — closing it any earlier could hand the fd number to an
  // unrelated open() while a blocked recv() still references it.
  close();
  const int fd = fd_.exchange(-1, std::memory_order_acq_rel);
  if (fd >= 0) ::close(fd);
}

void TcpChannel::close() {
  // shutdown(), not ::close(): a recv() blocked on another thread gets
  // unblocked (returns 0 / ECONNRESET) and fails cleanly, while the fd
  // number stays reserved until the destructor so it cannot be recycled
  // under the reader's feet. exchange() makes racing close() calls (or
  // close() racing the destructor) shut down exactly once.
  if (!shut_.exchange(true, std::memory_order_acq_rel)) {
    const int fd = fd_.load(std::memory_order_acquire);
    if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
  }
}

void TcpChannel::write_all(int fd, const void* data, std::size_t size) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  while (size > 0) {
    const ssize_t n = ::send(fd, p, size, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      throw_errno("send");
    }
    p += n;
    size -= static_cast<std::size_t>(n);
  }
}

void TcpChannel::read_all(int fd, void* data, std::size_t size) {
  auto* p = static_cast<std::uint8_t*>(data);
  while (size > 0) {
    const ssize_t n = ::recv(fd, p, size, 0);
    if (n == 0) throw NetworkError("peer closed connection");
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("recv");
    }
    p += n;
    size -= static_cast<std::size_t>(n);
  }
}

void TcpChannel::send_impl(Message&& m) {
  const int fd = fd_.load(std::memory_order_acquire);
  if (fd < 0 || shut_.load(std::memory_order_acquire)) {
    throw NetworkError("TcpChannel: send on closed channel");
  }
  const FrameHeader h{kFrameMagic, m.tag, m.payload.size()};
  write_all(fd, &h, sizeof(h));
  if (!m.payload.empty()) write_all(fd, m.payload.data(), m.payload.size());
}

Message TcpChannel::recv_impl() {
  const int fd = fd_.load(std::memory_order_acquire);
  if (fd < 0 || shut_.load(std::memory_order_acquire)) {
    throw NetworkError("TcpChannel: recv on closed channel");
  }
  FrameHeader h{};
  read_all(fd, &h, sizeof(h));
  if (h.magic != kFrameMagic) {
    throw NetworkError("TcpChannel: bad frame magic (corrupt stream?)");
  }
  Message m;
  m.tag = h.tag;
  m.payload.resize(h.payload_len);
  if (h.payload_len > 0) read_all(fd, m.payload.data(), h.payload_len);
  return m;
}

}  // namespace psml::net
