#include "net/tcp_channel.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "common/crc32.hpp"
#include "common/env.hpp"
#include "common/log.hpp"
#include "net/buffer_pool.hpp"

namespace psml::net {

namespace {

// Wire format v2 ("PSM2"). v1 frames ("PSML", no crc/seq) are rejected with
// a clean NetworkError — both endpoints of a deployment upgrade together.
constexpr std::uint32_t kFrameMagic = 0x324d5350u;  // "PSM2"
constexpr std::uint32_t kHelloMagic = 0x484d5350u;  // "PSMH"
constexpr std::uint32_t kWireVersion = 2;

struct FrameHeader {
  std::uint32_t magic;
  std::uint32_t tag;
  std::uint64_t seq;
  std::uint64_t payload_len;
  std::uint32_t payload_crc;
  std::uint32_t header_crc;  // crc32 over the preceding 28 bytes
};
static_assert(sizeof(FrameHeader) == 32);

struct HelloFrame {
  std::uint32_t magic;
  std::uint32_t version;
  std::uint64_t session_id;     // 0 from a client opening a fresh session
  std::uint64_t last_recv_seq;  // highest seq this side has delivered
  std::uint32_t flags;          // bit 0: resume capable
  std::uint32_t crc;            // crc32 over the preceding 28 bytes
};
static_assert(sizeof(HelloFrame) == 32);

constexpr std::uint32_t kHelloFlagResume = 1u;
constexpr std::uint32_t kHelloFlagCrc32c = 2u;

std::size_t max_frame_bytes() {
  static const std::size_t cap =
      env_size_t("PSML_NET_MAX_FRAME", 1ull << 30);
  return cap;
}

void set_nodelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

[[noreturn]] void throw_errno(const std::string& what) {
  throw NetworkError(what + ": " + std::strerror(errno));
}

std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::uint64_t fresh_session_id() {
  static std::atomic<std::uint64_t> counter{1};
  const auto now = std::chrono::steady_clock::now().time_since_epoch().count();
  return mix64(static_cast<std::uint64_t>(now) ^
               (counter.fetch_add(1) << 32) ^
               (static_cast<std::uint64_t>(::getpid()) << 16));
}

// Remaining milliseconds until `deadline`, clamped for poll(); -1 means
// wait forever, 0 means already expired.
int poll_timeout_ms(Deadline deadline) {
  if (deadline == kNoDeadline) return -1;
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
      deadline - Clock::now());
  if (left.count() <= 0) return 0;
  constexpr long long kMaxPoll = 1000 * 60 * 60;  // re-poll at least hourly
  return static_cast<int>(std::min<long long>(left.count(), kMaxPoll));
}

// Blocks until `fd` is ready for `events` or the deadline expires.
void poll_or_timeout(int fd, short events, Deadline deadline,
                     const char* what) {
  for (;;) {
    pollfd p{fd, events, 0};
    const int rc = ::poll(&p, 1, poll_timeout_ms(deadline));
    if (rc > 0) return;  // readable/writable or error — the syscall reports
    if (rc == 0) {
      if (deadline != kNoDeadline && Clock::now() >= deadline) {
        throw TimeoutError(std::string("TcpChannel: ") + what +
                           " deadline expired");
      }
      continue;
    }
    if (errno == EINTR) continue;
    throw_errno(what);
  }
}

void sleep_ms(double ms) {
  std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
}

}  // namespace

// ---------------------------------------------------------------------------
// Raw I/O

void TcpChannel::write_all(int fd, const void* data, std::size_t size) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  while (size > 0) {
    const ssize_t n = ::send(fd, p, size, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      throw_errno("send");
    }
    p += n;
    size -= static_cast<std::size_t>(n);
  }
}

std::size_t TcpChannel::read_some(int fd, void* data, std::size_t size,
                                  Deadline deadline) {
  for (;;) {
    poll_or_timeout(fd, POLLIN, deadline, "recv");
    const ssize_t n = ::recv(fd, data, size, 0);
    if (n == 0) throw NetworkError("peer closed connection");
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      throw_errno("recv");
    }
    return static_cast<std::size_t>(n);
  }
}

namespace {

// Gather-writes the whole iovec array, advancing across partial writes.
// sendmsg (not writev) because the socket needs MSG_NOSIGNAL — writev has
// no flags parameter.
void writev_all(int fd, iovec* iov, std::size_t count) {
  constexpr std::size_t kMaxIov = 1024;  // UIO_MAXIOV floor
  while (count > 0) {
    msghdr msg{};
    msg.msg_iov = iov;
    msg.msg_iovlen = std::min(count, kMaxIov);
    const ssize_t n = ::sendmsg(fd, &msg, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("sendmsg");
    }
    std::size_t written = static_cast<std::size_t>(n);
    while (count > 0 && written >= iov[0].iov_len) {
      written -= iov[0].iov_len;
      ++iov;
      --count;
    }
    if (count > 0 && written > 0) {
      iov[0].iov_base = static_cast<char*>(iov[0].iov_base) + written;
      iov[0].iov_len -= written;
    }
  }
}

// One frame = one syscall: the 32-byte header and every payload fragment go
// out as a single scatter-gather sendmsg. The payload is checksummed
// fragment-chained, never flattened.
void write_frame(int fd, Tag tag, std::uint64_t seq, const WireBuf& payload,
                 bool use_crc32c) {
  FrameHeader h{};
  h.magic = kFrameMagic;
  h.tag = tag;
  h.seq = seq;
  h.payload_len = payload.size();
  h.payload_crc =
      use_crc32c ? payload.checksum(&psml::crc32c) : payload.checksum(&psml::crc32);
  h.header_crc = crc32(&h, sizeof(FrameHeader) - sizeof(std::uint32_t));
  const auto views = payload.views();
  std::vector<iovec> iov;
  iov.reserve(views.size() + 1);
  iov.push_back(iovec{&h, sizeof(h)});
  for (const WireBuf::View& v : views) {
    iov.push_back(
        iovec{const_cast<std::uint8_t*>(v.data), v.len});
  }
  writev_all(fd, iov.data(), iov.size());
}

void read_exact(int fd, void* data, std::size_t size, Deadline deadline) {
  auto* p = static_cast<std::uint8_t*>(data);
  while (size > 0) {
    const std::size_t n = TcpChannel::read_some(fd, p, size, deadline);
    p += n;
    size -= n;
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Dial / accept / handshake

int TcpChannel::dial_once(const std::string& host, std::uint16_t port,
                          Deadline deadline) {
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  const std::string port_str = std::to_string(port);
  if (::getaddrinfo(host.c_str(), port_str.c_str(), &hints, &res) != 0) {
    throw NetworkError("getaddrinfo failed for " + host);
  }
  std::string last_err = "no addresses";
  // Try every resolved address, not just the first.
  for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    if (deadline != kNoDeadline && Clock::now() >= deadline) break;
    const int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last_err = std::string("socket: ") + std::strerror(errno);
      continue;
    }
    const int fl = ::fcntl(fd, F_GETFL, 0);
    ::fcntl(fd, F_SETFL, fl | O_NONBLOCK);
    const int rc = ::connect(fd, ai->ai_addr, ai->ai_addrlen);
    bool ok = (rc == 0);
    if (!ok && errno == EINPROGRESS) {
      try {
        poll_or_timeout(fd, POLLOUT, deadline, "connect");
      } catch (const NetworkError& e) {
        last_err = e.what();
        ::close(fd);
        continue;
      }
      int err = 0;
      socklen_t len = sizeof(err);
      ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len);
      if (err == 0) {
        ok = true;
      } else {
        last_err = std::string("connect: ") + std::strerror(err);
      }
    } else if (!ok) {
      last_err = std::string("connect: ") + std::strerror(errno);
    }
    if (ok) {
      ::fcntl(fd, F_SETFL, fl);
      set_nodelay(fd);
      ::freeaddrinfo(res);
      return fd;
    }
    ::close(fd);
  }
  ::freeaddrinfo(res);
  throw NetworkError("connect to " + host + ":" + port_str + " failed: " +
                     last_err);
}

int TcpChannel::accept_once(int listen_fd, Deadline deadline) {
  poll_or_timeout(listen_fd, POLLIN, deadline, "accept");
  const int fd = ::accept(listen_fd, nullptr, nullptr);
  if (fd < 0) throw_errno("accept");
  set_nodelay(fd);
  return fd;
}

namespace {

HelloFrame read_hello(int fd, Deadline deadline) {
  HelloFrame h{};
  read_exact(fd, &h, sizeof(h), deadline);
  if (h.magic != kHelloMagic ||
      h.crc != crc32(&h, sizeof(HelloFrame) - sizeof(std::uint32_t))) {
    throw NetworkError("TcpChannel: bad handshake frame (corrupt stream?)");
  }
  if (h.version != kWireVersion) {
    throw NetworkError("TcpChannel: wire version mismatch (got " +
                       std::to_string(h.version) + ", want " +
                       std::to_string(kWireVersion) + ")");
  }
  return h;
}

void write_hello(int fd, std::uint64_t session_id, std::uint64_t last_recv,
                 std::uint32_t flags) {
  HelloFrame h{};
  h.magic = kHelloMagic;
  h.version = kWireVersion;
  h.session_id = session_id;
  h.last_recv_seq = last_recv;
  h.flags = flags;
  h.crc = crc32(&h, sizeof(HelloFrame) - sizeof(std::uint32_t));
  TcpChannel::write_all(fd, &h, sizeof(h));
}

}  // namespace

std::uint32_t TcpChannel::hello_flags(const TcpOptions& opts) {
  std::uint32_t flags = 0;
  if (opts.resume) flags |= kHelloFlagResume;
  static const bool env_crc32c = env_size_t("PSML_NET_CRC32C", 1) != 0;
  if (opts.crc32c && env_crc32c) flags |= kHelloFlagCrc32c;
  return flags;
}

void TcpChannel::handshake_client(int fd, std::uint64_t& session_id,
                                  std::uint64_t last_recv_seq,
                                  std::uint32_t my_flags,
                                  std::uint64_t& peer_last_recv,
                                  std::uint32_t& peer_flags) {
  write_hello(fd, session_id, last_recv_seq, my_flags);
  const Deadline d = deadline_after(std::chrono::milliseconds(10000));
  const HelloFrame h = read_hello(fd, d);
  if (session_id != 0 && h.session_id != session_id) {
    throw NetworkError("TcpChannel: session id mismatch on resume");
  }
  session_id = h.session_id;
  peer_last_recv = h.last_recv_seq;
  peer_flags = h.flags;
}

void TcpChannel::handshake_server(int fd, std::uint64_t& session_id,
                                  std::uint64_t last_recv_seq,
                                  std::uint32_t my_flags,
                                  std::uint64_t& peer_last_recv,
                                  std::uint32_t& peer_flags) {
  const Deadline d = deadline_after(std::chrono::milliseconds(10000));
  const HelloFrame h = read_hello(fd, d);
  if (session_id == 0) {
    session_id = h.session_id != 0 ? h.session_id : fresh_session_id();
  } else if (h.session_id != session_id) {
    throw NetworkError("TcpChannel: peer resumed an unknown session");
  }
  peer_last_recv = h.last_recv_seq;
  peer_flags = h.flags;
  write_hello(fd, session_id, last_recv_seq, my_flags);
}

// ---------------------------------------------------------------------------
// Factories

std::shared_ptr<Channel> TcpChannel::listen(std::uint16_t port,
                                            TcpOptions opts) {
  const int lfd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (lfd < 0) throw_errno("socket");
  int one = 1;
  ::setsockopt(lfd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(port);
  if (::bind(lfd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(lfd);
    throw_errno("bind");
  }
  if (::listen(lfd, 1) < 0) {
    ::close(lfd);
    throw_errno("listen");
  }

  double accept_timeout = opts.accept_timeout_sec;
  if (accept_timeout < 0) {
    const std::size_t env_ms = env_size_t("PSML_NET_ACCEPT_TIMEOUT_MS", 0);
    accept_timeout = env_ms > 0 ? static_cast<double>(env_ms) / 1000.0 : 0.0;
  }
  const Deadline d =
      accept_timeout > 0
          ? Clock::now() + std::chrono::duration_cast<Clock::duration>(
                               std::chrono::duration<double>(accept_timeout))
          : kNoDeadline;
  int fd = -1;
  std::uint64_t session_id = 0;
  std::uint64_t peer_last = 0;
  std::uint32_t peer_flags = 0;
  const std::uint32_t my_flags = hello_flags(opts);
  try {
    fd = accept_once(lfd, d);
    handshake_server(fd, session_id, 0, my_flags, peer_last, peer_flags);
  } catch (...) {
    if (fd >= 0) ::close(fd);
    ::close(lfd);
    throw;
  }
  int keep_lfd = -1;
  if (opts.resume) {
    keep_lfd = lfd;  // retained for re-accepting the session after a drop
  } else {
    ::close(lfd);
  }
  const bool use_crc32c = (my_flags & kHelloFlagCrc32c) != 0 &&
                          (peer_flags & kHelloFlagCrc32c) != 0;
  return std::shared_ptr<Channel>(new TcpChannel(fd, keep_lfd, Role::kServer,
                                                 std::string(), port, opts,
                                                 session_id, use_crc32c));
}

std::shared_ptr<Channel> TcpChannel::connect(const std::string& host,
                                             std::uint16_t port,
                                             double timeout_sec) {
  TcpOptions opts;
  opts.connect_timeout_sec = timeout_sec;
  return connect(host, port, opts);
}

std::shared_ptr<Channel> TcpChannel::connect(const std::string& host,
                                             std::uint16_t port,
                                             TcpOptions opts) {
  const Deadline deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(opts.connect_timeout_sec));
  std::uint64_t jitter_state = opts.jitter_seed;
  int fd = -1;
  for (int attempt = 0;; ++attempt) {
    try {
      fd = dial_once(host, port, deadline);
      break;
    } catch (const NetworkError& e) {
      if (Clock::now() >= deadline) {
        throw NetworkError("connect to " + host + ":" +
                           std::to_string(port) + " timed out (" + e.what() +
                           ")");
      }
      // Exponential backoff with deterministic jitter in [0.5, 1.0).
      jitter_state = mix64(jitter_state);
      const double factor =
          0.5 + 0.5 * (static_cast<double>(jitter_state >> 11) /
                       9007199254740992.0);
      const double base = std::min(opts.backoff_max_ms,
                                   opts.backoff_base_ms * double(1u << std::min(attempt, 20)));
      sleep_ms(base * factor);
    }
  }
  std::uint64_t session_id = 0;
  std::uint64_t peer_last = 0;
  std::uint32_t peer_flags = 0;
  const std::uint32_t my_flags = hello_flags(opts);
  try {
    handshake_client(fd, session_id, 0, my_flags, peer_last, peer_flags);
  } catch (...) {
    ::close(fd);
    throw;
  }
  const bool use_crc32c = (my_flags & kHelloFlagCrc32c) != 0 &&
                          (peer_flags & kHelloFlagCrc32c) != 0;
  return std::shared_ptr<Channel>(new TcpChannel(
      fd, -1, Role::kClient, host, port, opts, session_id, use_crc32c));
}

TcpChannel::TcpChannel(int fd, int listen_fd, Role role, std::string host,
                       std::uint16_t port, TcpOptions opts,
                       std::uint64_t session_id, bool use_crc32c)
    : fd_(fd),
      role_(role),
      peer_host_(std::move(host)),
      peer_port_(port),
      opts_(opts),
      session_id_(session_id),
      listen_fd_(listen_fd),
      use_crc32c_(use_crc32c),
      backoff_state_(opts.jitter_seed ^ session_id) {}

TcpChannel::~TcpChannel() {
  // Destruction is never concurrent with send/recv (standard object
  // lifetime), so this is the only place descriptors may actually be
  // ::close()d — closing them any earlier could hand the fd number to an
  // unrelated open() while a blocked recv() still references it.
  close();
  const int fd = fd_.exchange(-1, std::memory_order_acq_rel);
  if (fd >= 0) ::close(fd);
  if (listen_fd_ >= 0) ::close(listen_fd_);
  for (const int rfd : retired_fds_) ::close(rfd);
}

void TcpChannel::close() {
  // shutdown(), not ::close(): a recv() blocked on another thread gets
  // unblocked (returns 0 / ECONNRESET) and fails cleanly, while the fd
  // number stays reserved until the destructor so it cannot be recycled
  // under the reader's feet. exchange() makes racing close() calls (or
  // close() racing the destructor) shut down exactly once.
  if (!shut_.exchange(true, std::memory_order_acq_rel)) {
    const int fd = fd_.load(std::memory_order_acquire);
    if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
    if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  }
}

void TcpChannel::inject_disconnect() {
  const int fd = fd_.load(std::memory_order_acquire);
  if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
}

// ---------------------------------------------------------------------------
// Reconnect machinery

double TcpChannel::next_backoff_ms(int attempt) {
  backoff_state_ = mix64(backoff_state_);
  const double factor =
      0.5 + 0.5 * (static_cast<double>(backoff_state_ >> 11) /
                   9007199254740992.0);
  const double base =
      std::min(opts_.backoff_max_ms,
               opts_.backoff_base_ms * double(1u << std::min(attempt, 20)));
  return base * factor;
}

void TcpChannel::retransmit_from(int fd, std::uint64_t peer_last_recv) {
  if (peer_last_recv + 1 >= next_send_seq_) return;  // peer has everything
  if (ring_.empty() || ring_.front().seq > peer_last_recv + 1) {
    throw NetworkError(
        "TcpChannel: cannot resume — retransmit window no longer holds seq " +
        std::to_string(peer_last_recv + 1));
  }
  const bool use_crc32c = use_crc32c_.load(std::memory_order_relaxed);
  for (const SentFrame& f : ring_) {
    if (f.seq > peer_last_recv) {
      write_frame(fd, f.tag, f.seq, f.payload, use_crc32c);
    }
  }
}

void TcpChannel::recover_or_throw(std::uint64_t failed_gen,
                                  const NetworkError& err) {
  if (shut_.load(std::memory_order_acquire)) {
    throw NetworkError("TcpChannel: channel closed");
  }
  std::unique_lock<std::mutex> lock(conn_mutex_);
  if (conn_gen_ != failed_gen) return;  // a racing thread already recovered
  if (!opts_.resume) throw err;

  // Retire the dead socket; its number stays reserved until the destructor.
  const int old = fd_.load(std::memory_order_acquire);
  if (old >= 0) {
    ::shutdown(old, SHUT_RDWR);
    retired_fds_.push_back(old);
  }

  for (int attempt = 0; attempt < opts_.max_reconnects; ++attempt) {
    if (shut_.load(std::memory_order_acquire)) {
      throw NetworkError("TcpChannel: closed during reconnect");
    }
    sleep_ms(next_backoff_ms(attempt));
    int nfd = -1;
    try {
      const Deadline d =
          Clock::now() +
          std::chrono::duration_cast<Clock::duration>(
              std::chrono::duration<double>(opts_.connect_timeout_sec));
      nfd = role_ == Role::kClient
                ? dial_once(peer_host_, peer_port_, d)
                : accept_once(listen_fd_, d);
      std::uint64_t sid = session_id_;
      std::uint64_t peer_last = 0;
      std::uint32_t peer_flags = 0;
      const std::uint64_t my_last =
          last_recv_seq_.load(std::memory_order_acquire);
      const std::uint32_t my_flags = hello_flags(opts_) | kHelloFlagResume;
      if (role_ == Role::kClient) {
        handshake_client(nfd, sid, my_last, my_flags, peer_last, peer_flags);
      } else {
        handshake_server(nfd, sid, my_last, my_flags, peer_last, peer_flags);
      }
      // The checksum negotiation must come out the same as the original
      // handshake — a peer that changes capabilities mid-session would
      // corrupt every in-flight payload_crc check.
      const bool renegotiated = (my_flags & kHelloFlagCrc32c) != 0 &&
                                (peer_flags & kHelloFlagCrc32c) != 0;
      if (renegotiated != use_crc32c_.load(std::memory_order_relaxed)) {
        throw NetworkError(
            "TcpChannel: peer changed checksum capability on resume");
      }
      retransmit_from(nfd, peer_last);
      fd_.store(nfd, std::memory_order_release);
      ++conn_gen_;
      reconnects_.fetch_add(1, std::memory_order_relaxed);
      PSML_INFO("TcpChannel: session " << session_id_ << " resumed after "
                                       << (attempt + 1) << " attempt(s)");
      return;
    } catch (const Error&) {
      if (nfd >= 0) {
        ::shutdown(nfd, SHUT_RDWR);
        retired_fds_.push_back(nfd);
      }
    }
  }
  throw NetworkError("TcpChannel: reconnect failed after " +
                     std::to_string(opts_.max_reconnects) +
                     " attempts; original error: " + err.what());
}

// ---------------------------------------------------------------------------
// Data plane

void TcpChannel::send_impl(Tag tag, WireBuf&& payload) {
  if (shut_.load(std::memory_order_acquire)) {
    throw NetworkError("TcpChannel: send on closed channel");
  }
  if (payload.size() > max_frame_bytes()) {
    throw NetworkError("TcpChannel: payload of " +
                       std::to_string(payload.size()) +
                       " bytes exceeds PSML_NET_MAX_FRAME");
  }
  const bool use_crc32c = use_crc32c_.load(std::memory_order_relaxed);
  std::uint64_t seq = 0;
  {
    std::lock_guard<std::mutex> lock(conn_mutex_);
    seq = next_send_seq_++;
    if (opts_.resume) {
      // Resume costs the one consolidation copy for borrowed fragments;
      // the ring entry then just bumps refcounts on the owned storage (the
      // live write below gathers from the very same buffers).
      payload.make_owned();
      ring_bytes_ += payload.size() + sizeof(FrameHeader);
      ring_.push_back(SentFrame{seq, tag, payload.clone_shared()});
      while (ring_bytes_ > opts_.retransmit_cap_bytes && !ring_.empty()) {
        ring_bytes_ -= ring_.front().payload.size() + sizeof(FrameHeader);
        ring_.pop_front();
      }
    }
  }
  for (;;) {
    if (shut_.load(std::memory_order_acquire)) {
      throw NetworkError("TcpChannel: send on closed channel");
    }
    std::uint64_t gen = 0;
    {
      std::lock_guard<std::mutex> lock(conn_mutex_);
      gen = conn_gen_;
    }
    const int fd = fd_.load(std::memory_order_acquire);
    if (fd < 0) throw NetworkError("TcpChannel: send on closed channel");
    try {
      write_frame(fd, tag, seq, payload, use_crc32c);
      return;
    } catch (const NetworkError& e) {
      recover_or_throw(gen, e);  // returns (retry) or throws
    }
  }
}

Message TcpChannel::recv_impl(Deadline deadline) {
  for (;;) {
    if (shut_.load(std::memory_order_acquire)) {
      throw NetworkError("TcpChannel: recv on closed channel");
    }
    std::uint64_t gen = 0;
    {
      std::lock_guard<std::mutex> lock(conn_mutex_);
      gen = conn_gen_;
    }
    const int fd = fd_.load(std::memory_order_acquire);
    if (fd < 0) throw NetworkError("TcpChannel: recv on closed channel");

    RecvState& st = recv_state_;
    if (st.gen != gen) {
      // A reconnect invalidated any partial frame: the peer re-sends whole
      // frames after the handshake.
      st = RecvState{};
      st.gen = gen;
      st.header.resize(sizeof(FrameHeader));
    }
    try {
      while (!st.have_header) {
        st.got += read_some(fd, st.header.data() + st.got,
                            sizeof(FrameHeader) - st.got, deadline);
        if (st.got < sizeof(FrameHeader)) continue;
        FrameHeader h{};
        std::memcpy(&h, st.header.data(), sizeof(h));
        if (h.magic != kFrameMagic ||
            h.header_crc !=
                crc32(&h, sizeof(FrameHeader) - sizeof(std::uint32_t))) {
          throw NetworkError("TcpChannel: bad frame header (corrupt stream?)");
        }
        if (h.payload_len > max_frame_bytes()) {
          throw NetworkError("TcpChannel: frame of " +
                             std::to_string(h.payload_len) +
                             " bytes exceeds PSML_NET_MAX_FRAME");
        }
        st.msg.tag = h.tag;
        // Pooled payload: steady-state receive does no allocator traffic.
        st.msg.payload = BufferPool::global().acquire(h.payload_len);
        st.payload_crc = h.payload_crc;
        st.have_header = true;
        st.got = 0;
        // Stash seq in the state via the header buffer (still intact).
      }
      FrameHeader h{};
      std::memcpy(&h, st.header.data(), sizeof(h));
      while (st.got < st.msg.payload.size()) {
        st.got += read_some(fd, st.msg.payload.data() + st.got,
                            st.msg.payload.size() - st.got, deadline);
      }
      const std::uint32_t got_crc =
          use_crc32c_.load(std::memory_order_relaxed)
              ? crc32c(st.msg.payload.data(), st.msg.payload.size())
              : crc32(st.msg.payload.data(), st.msg.payload.size());
      if (got_crc != st.payload_crc) {
        throw NetworkError("TcpChannel: payload crc mismatch (corrupt "
                           "stream?)");
      }
      const std::uint64_t last =
          last_recv_seq_.load(std::memory_order_acquire);
      // Frame complete: reset state before dedupe/return.
      st.have_header = false;
      st.got = 0;
      Message out = std::move(st.msg);
      st.msg = Message{};
      if (h.seq <= last) {
        // Duplicate after a resume retransmit: recycle its buffer.
        BufferPool::global().release(std::move(out.payload));
        continue;
      }
      if (h.seq != last + 1) {
        throw NetworkError("TcpChannel: sequence gap (got " +
                           std::to_string(h.seq) + ", expected " +
                           std::to_string(last + 1) + ")");
      }
      last_recv_seq_.store(h.seq, std::memory_order_release);
      return out;
    } catch (const TimeoutError&) {
      // Deadline expired mid-frame: keep the partial state for the next
      // call and surface the timeout to the caller.
      throw;
    } catch (const NetworkError& e) {
      recover_or_throw(gen, e);  // returns (retry) or throws
    }
  }
}

}  // namespace psml::net
