#include "net/channel.hpp"

#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace psml::net {

void Channel::send(Tag tag, std::span<const std::uint8_t> payload) {
  Message m;
  m.tag = tag;
  m.payload.assign(payload.begin(), payload.end());
  stats_.bytes_sent += payload.size();
  stats_.messages_sent += 1;
  std::lock_guard<std::mutex> lock(send_mutex_);
  send_impl(std::move(m));
}

namespace {

bool take_by_tag(std::vector<Message>& pending, Tag tag, Message& out) {
  for (std::size_t i = 0; i < pending.size(); ++i) {
    if (pending[i].tag == tag) {
      out = std::move(pending[i]);
      pending.erase(pending.begin() + static_cast<std::ptrdiff_t>(i));
      return true;
    }
  }
  return false;
}

}  // namespace

Message Channel::recv(Tag tag) {
  std::unique_lock<std::mutex> lock(recv_mutex_);
  for (;;) {
    Message m;
    if (take_by_tag(pending_, tag, m)) return m;
    if (drainer_active_) {
      // Someone else is reading the transport; wait for the buffer to
      // change or the drainer role to free up.
      recv_cv_.wait(lock);
      continue;
    }
    // Become the drainer. The lock is dropped while blocked on the
    // transport so other threads can consume buffered messages.
    drainer_active_ = true;
    lock.unlock();
    Message incoming;
    try {
      incoming = recv_impl();
    } catch (...) {
      lock.lock();
      drainer_active_ = false;
      // Wake everyone: one of them becomes the next drainer and observes
      // the transport error itself.
      recv_cv_.notify_all();
      throw;
    }
    lock.lock();
    drainer_active_ = false;
    stats_.bytes_received += incoming.payload.size();
    stats_.messages_received += 1;
    if (incoming.tag == tag) {
      recv_cv_.notify_all();
      return incoming;
    }
    pending_.push_back(std::move(incoming));
    recv_cv_.notify_all();
  }
}

Message Channel::recv_any() {
  std::unique_lock<std::mutex> lock(recv_mutex_);
  for (;;) {
    if (!pending_.empty()) {
      Message m = std::move(pending_.front());
      pending_.erase(pending_.begin());
      return m;
    }
    if (drainer_active_) {
      recv_cv_.wait(lock);
      continue;
    }
    drainer_active_ = true;
    lock.unlock();
    Message incoming;
    try {
      incoming = recv_impl();
    } catch (...) {
      lock.lock();
      drainer_active_ = false;
      recv_cv_.notify_all();
      throw;
    }
    lock.lock();
    drainer_active_ = false;
    stats_.bytes_received += incoming.payload.size();
    stats_.messages_received += 1;
    recv_cv_.notify_all();
    return incoming;
  }
}

}  // namespace psml::net
