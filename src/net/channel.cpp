#include "net/channel.hpp"

#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <string>

#include "common/env.hpp"

namespace psml::net {

Channel::Channel()
    : default_timeout_ms_(static_cast<long long>(
          env_size_t("PSML_NET_TIMEOUT_MS", 0))) {}

void Channel::send(Tag tag, std::span<const std::uint8_t> payload) {
  WireBuf buf;
  buf.append_view(payload.data(), payload.size());
  send(tag, std::move(buf));
}

void Channel::send(Tag tag, WireBuf&& payload) {
  stats_.bytes_sent += payload.size();
  stats_.messages_sent += 1;
  std::lock_guard<std::mutex> lock(send_mutex_);
  send_impl(tag, std::move(payload));
}

namespace {

bool take_by_tag(std::vector<Message>& pending, Tag tag, Message& out) {
  for (std::size_t i = 0; i < pending.size(); ++i) {
    if (pending[i].tag == tag) {
      out = std::move(pending[i]);
      pending.erase(pending.begin() + static_cast<std::ptrdiff_t>(i));
      return true;
    }
  }
  return false;
}

[[noreturn]] void throw_recv_timeout(Tag tag) {
  throw TimeoutError("Channel: recv(tag=" + std::to_string(tag) +
                     ") deadline expired");
}

}  // namespace

Message Channel::recv(Tag tag) { return recv(tag, deadline_after(default_timeout())); }

Message Channel::recv_any() { return recv_any(deadline_after(default_timeout())); }

Message Channel::recv(Tag tag, Deadline deadline) {
  std::unique_lock<std::mutex> lock(recv_mutex_);
  for (;;) {
    Message m;
    if (take_by_tag(pending_, tag, m)) return m;
    if (drainer_active_) {
      // Someone else is reading the transport; wait for the buffer to
      // change or the drainer role to free up.
      if (deadline == kNoDeadline) {
        recv_cv_.wait(lock);
      } else if (recv_cv_.wait_until(lock, deadline) ==
                 std::cv_status::timeout) {
        if (take_by_tag(pending_, tag, m)) return m;
        throw_recv_timeout(tag);
      }
      continue;
    }
    // Become the drainer. The lock is dropped while blocked on the
    // transport so other threads can consume buffered messages.
    drainer_active_ = true;
    lock.unlock();
    Message incoming;
    try {
      incoming = recv_impl(deadline);
    } catch (...) {
      lock.lock();
      drainer_active_ = false;
      // Wake everyone: one of them becomes the next drainer and observes
      // the transport state (error or, after our TimeoutError, more data)
      // itself.
      recv_cv_.notify_all();
      throw;
    }
    lock.lock();
    drainer_active_ = false;
    stats_.bytes_received += incoming.payload.size();
    stats_.messages_received += 1;
    if (incoming.tag == tag) {
      recv_cv_.notify_all();
      return incoming;
    }
    pending_.push_back(std::move(incoming));
    recv_cv_.notify_all();
  }
}

Message Channel::recv_any(Deadline deadline) {
  std::unique_lock<std::mutex> lock(recv_mutex_);
  for (;;) {
    if (!pending_.empty()) {
      Message m = std::move(pending_.front());
      pending_.erase(pending_.begin());
      return m;
    }
    if (drainer_active_) {
      if (deadline == kNoDeadline) {
        recv_cv_.wait(lock);
      } else if (recv_cv_.wait_until(lock, deadline) ==
                 std::cv_status::timeout) {
        if (!pending_.empty()) {
          Message m = std::move(pending_.front());
          pending_.erase(pending_.begin());
          return m;
        }
        throw TimeoutError("Channel: recv_any deadline expired");
      }
      continue;
    }
    drainer_active_ = true;
    lock.unlock();
    Message incoming;
    try {
      incoming = recv_impl(deadline);
    } catch (...) {
      lock.lock();
      drainer_active_ = false;
      recv_cv_.notify_all();
      throw;
    }
    lock.lock();
    drainer_active_ = false;
    stats_.bytes_received += incoming.payload.size();
    stats_.messages_received += 1;
    recv_cv_.notify_all();
    return incoming;
  }
}

}  // namespace psml::net
