#include "sgpu/trace_export.hpp"

#include <fstream>
#include <sstream>

#include "common/error.hpp"

namespace psml::sgpu {

namespace {

const char* track_of(ActivityKind kind) {
  switch (kind) {
    case ActivityKind::kMemcpyH2D: return "copy h2d";
    case ActivityKind::kMemcpyD2H: return "copy d2h";
    case ActivityKind::kKernel: return "compute";
  }
  return "?";
}

int tid_of(ActivityKind kind) {
  switch (kind) {
    case ActivityKind::kMemcpyH2D: return 1;
    case ActivityKind::kMemcpyD2H: return 2;
    case ActivityKind::kKernel: return 3;
  }
  return 0;
}

// Minimal JSON string escaping (names are ASCII identifiers in practice).
std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (static_cast<unsigned char>(c) >= 0x20) out.push_back(c);
  }
  return out;
}

}  // namespace

std::string to_chrome_trace_json(const Trace& trace) {
  const auto activities = trace.snapshot();
  std::ostringstream os;
  os << "[";
  bool first = true;
  // Thread-name metadata events make the tracks readable.
  for (const int tid : {1, 2, 3}) {
    const char* name = tid == 1 ? "copy h2d" : tid == 2 ? "copy d2h" : "compute";
    if (!first) os << ",";
    first = false;
    os << R"({"ph":"M","pid":1,"tid":)" << tid
       << R"(,"name":"thread_name","args":{"name":")" << name << R"("}})";
  }
  for (const auto& a : activities) {
    if (!first) os << ",";
    first = false;
    os << R"({"ph":"X","pid":1,"tid":)" << tid_of(a.kind) << R"(,"name":")"
       << escape(a.name) << R"(","cat":")" << track_of(a.kind) << R"(","ts":)"
       << a.start_sec * 1e6 << R"(,"dur":)" << (a.end_sec - a.start_sec) * 1e6;
    if (a.bytes > 0) {
      os << R"(,"args":{"bytes":)" << a.bytes << "}";
    }
    os << "}";
  }
  os << "]";
  return os.str();
}

void write_chrome_trace(std::ostream& os, const Trace& trace) {
  os << to_chrome_trace_json(trace);
}

void write_chrome_trace(const std::string& path, const Trace& trace) {
  std::ofstream os(path);
  PSML_REQUIRE(os.good(), "trace export: cannot open " + path);
  write_chrome_trace(os, trace);
  PSML_REQUIRE(os.good(), "trace export: write failed for " + path);
}

}  // namespace psml::sgpu
