// Raw device kernels. These run *inside* a stream task (see Device::launch)
// and parallelize internally over the device compute pool — they are the
// simulated equivalents of the CUDA kernels / cuBLAS calls ParSecureML uses.
#pragma once

#include <cstddef>
#include <cstdint>

namespace psml::sgpu {

class Device;

// C = alpha * A(mxk) * B(kxn) + beta * C, row-major, FP32 ("cublasSgemm").
void k_gemm(Device& dev, const float* a, const float* b, float* c,
            std::size_t m, std::size_t n, std::size_t k, float alpha,
            float beta);

// Tensor-Core-path GEMM ("cublasSgemmEx with CUBLAS_TENSOR_OP_MATH"):
// operands are rounded to IEEE binary16, products accumulate in FP32. On
// x86 this uses F16C hardware conversion; numerically it matches V100 Tensor
// Core behaviour (fp16 multiply, fp32 accumulate).
void k_gemm_tc(Device& dev, const float* a, const float* b, float* c,
               std::size_t m, std::size_t n, std::size_t k, float alpha,
               float beta);

// out[i] = alpha * x[i] + y[i]  (the "D = (-i)*E + A_i" step of Eq. 8).
void k_axpby(Device& dev, float alpha, const float* x, const float* y,
             float* out, std::size_t n);

// out[i] += x[i]
void k_add_inplace(Device& dev, const float* x, float* out, std::size_t n);

// Piecewise-linear activation of Eq. 9:
//   f(x) = 0 for x < -1/2;  x + 1/2 on [-1/2, 1/2];  1 for x > 1/2.
void k_activation_piecewise(Device& dev, const float* x, float* out,
                            std::size_t n);

// Derivative mask of Eq. 9: 1 on (-1/2, 1/2), else 0.
void k_activation_piecewise_grad(Device& dev, const float* x, float* out,
                                 std::size_t n);

// Philox4x32-10 uniform fill ("curandGenerateUniform").
void k_philox_uniform(Device& dev, float* out, std::size_t n, float lo,
                      float hi, std::uint64_t seed);

// True when the Tensor-Core path uses hardware F16C conversion on this build.
bool tensor_core_hw_f16c();

}  // namespace psml::sgpu
