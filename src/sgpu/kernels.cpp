#include "sgpu/kernels.hpp"

#include <algorithm>
#include <cstring>
#include <vector>

#if defined(__F16C__) && defined(__AVX2__) && defined(__FMA__)
#include <immintrin.h>
#define PSML_TC_HW 1
#else
#define PSML_TC_HW 0
#endif

#include "common/aligned.hpp"
#include "common/half.hpp"
#include "rng/philox.hpp"
#include "sgpu/device.hpp"

namespace psml::sgpu {

namespace {

// Row-panel FP32 GEMM microkernel (same blocking as the host kernel; the
// device pool supplies the parallelism).
void gemm_rows_f32(float alpha, const float* a, const float* b, float beta,
                   float* c, std::size_t r0, std::size_t r1, std::size_t n,
                   std::size_t k) {
  constexpr std::size_t kKB = 256;
  constexpr std::size_t kJB = 512;
  for (std::size_t i = r0; i < r1; ++i) {
    float* ci = c + i * n;
    if (beta == 0.0f) {
      std::fill(ci, ci + n, 0.0f);
    } else if (beta != 1.0f) {
      for (std::size_t j = 0; j < n; ++j) ci[j] *= beta;
    }
  }
  for (std::size_t kb = 0; kb < k; kb += kKB) {
    const std::size_t kmax = std::min(kb + kKB, k);
    for (std::size_t jb = 0; jb < n; jb += kJB) {
      const std::size_t jmax = std::min(jb + kJB, n);
      for (std::size_t i = r0; i < r1; ++i) {
        const float* ai = a + i * k;
        float* ci = c + i * n;
        for (std::size_t kk = kb; kk < kmax; ++kk) {
          const float av = alpha * ai[kk];
          if (av == 0.0f) continue;
          const float* bk = b + kk * n;
          for (std::size_t j = jb; j < jmax; ++j) ci[j] += av * bk[j];
        }
      }
    }
  }
}

// FP16-operand row-panel kernel: A and B are pre-quantized to binary16.
void gemm_rows_tc(float alpha, const std::uint16_t* a, const std::uint16_t* b,
                  float beta, float* c, std::size_t r0, std::size_t r1,
                  std::size_t n, std::size_t k) {
  constexpr std::size_t kKB = 256;
  constexpr std::size_t kJB = 512;
  for (std::size_t i = r0; i < r1; ++i) {
    float* ci = c + i * n;
    if (beta == 0.0f) {
      std::fill(ci, ci + n, 0.0f);
    } else if (beta != 1.0f) {
      for (std::size_t j = 0; j < n; ++j) ci[j] *= beta;
    }
  }
  for (std::size_t kb = 0; kb < k; kb += kKB) {
    const std::size_t kmax = std::min(kb + kKB, k);
    for (std::size_t jb = 0; jb < n; jb += kJB) {
      const std::size_t jmax = std::min(jb + kJB, n);
      for (std::size_t i = r0; i < r1; ++i) {
        const std::uint16_t* ai = a + i * k;
        float* ci = c + i * n;
        for (std::size_t kk = kb; kk < kmax; ++kk) {
          const float av = alpha * half_bits_to_float(ai[kk]);
          if (av == 0.0f) continue;
          const std::uint16_t* bk = b + kk * n;
          std::size_t j = jb;
#if PSML_TC_HW
          const __m256 vav = _mm256_set1_ps(av);
          for (; j + 8 <= jmax; j += 8) {
            const __m128i bh = _mm_loadu_si128(
                reinterpret_cast<const __m128i*>(bk + j));
            const __m256 bf = _mm256_cvtph_ps(bh);
            __m256 cf = _mm256_loadu_ps(ci + j);
            cf = _mm256_fmadd_ps(vav, bf, cf);
            _mm256_storeu_ps(ci + j, cf);
          }
#endif
          for (; j < jmax; ++j) {
            ci[j] += av * half_bits_to_float(bk[j]);
          }
        }
      }
    }
  }
}

void quantize_to_half(Device& dev, const float* src, std::uint16_t* dst,
                      std::size_t n) {
  dev.compute_pool().parallel_for(
      0, n,
      [&](std::size_t lo, std::size_t hi) {
        std::size_t i = lo;
#if PSML_TC_HW
        for (; i + 8 <= hi; i += 8) {
          const __m256 f = _mm256_loadu_ps(src + i);
          const __m128i h = _mm256_cvtps_ph(f, _MM_FROUND_TO_NEAREST_INT);
          _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i), h);
        }
#endif
        for (; i < hi; ++i) dst[i] = float_to_half_bits(src[i]);
      },
      /*grain=*/kFloatsPerCacheLine * 16);
}

template <typename Body>
void device_parallel(Device& dev, std::size_t n, Body&& body) {
  dev.compute_pool().parallel_for(0, n, std::forward<Body>(body),
                                  kFloatsPerCacheLine * 16);
}

}  // namespace

bool tensor_core_hw_f16c() { return PSML_TC_HW != 0; }

void k_gemm(Device& dev, const float* a, const float* b, float* c,
            std::size_t m, std::size_t n, std::size_t k, float alpha,
            float beta) {
  if (m * n * k < (std::size_t{1} << 18)) {
    gemm_rows_f32(alpha, a, b, beta, c, 0, m, n, k);
    return;
  }
  dev.compute_pool().parallel_for(
      0, m,
      [=](std::size_t lo, std::size_t hi) {
        gemm_rows_f32(alpha, a, b, beta, c, lo, hi, n, k);
      },
      /*grain=*/4);
}

void k_gemm_tc(Device& dev, const float* a, const float* b, float* c,
               std::size_t m, std::size_t n, std::size_t k, float alpha,
               float beta) {
  // Quantize operands once (this is what cublasSgemmEx does internally when
  // fed FP32 data in tensor-op mode); the packed FP16 panels halve memory
  // traffic in the multiply loop.
  std::vector<std::uint16_t, AlignedAllocator<std::uint16_t>> ah(m * k);
  std::vector<std::uint16_t, AlignedAllocator<std::uint16_t>> bh(k * n);
  quantize_to_half(dev, a, ah.data(), m * k);
  quantize_to_half(dev, b, bh.data(), k * n);
  const std::uint16_t* pa = ah.data();
  const std::uint16_t* pb = bh.data();
  if (m * n * k < (std::size_t{1} << 18)) {
    gemm_rows_tc(alpha, pa, pb, beta, c, 0, m, n, k);
    return;
  }
  dev.compute_pool().parallel_for(
      0, m,
      [=](std::size_t lo, std::size_t hi) {
        gemm_rows_tc(alpha, pa, pb, beta, c, lo, hi, n, k);
      },
      /*grain=*/4);
}

void k_axpby(Device& dev, float alpha, const float* x, const float* y,
             float* out, std::size_t n) {
  device_parallel(dev, n, [=](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) out[i] = alpha * x[i] + y[i];
  });
}

void k_add_inplace(Device& dev, const float* x, float* out, std::size_t n) {
  device_parallel(dev, n, [=](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) out[i] += x[i];
  });
}

void k_activation_piecewise(Device& dev, const float* x, float* out,
                            std::size_t n) {
  device_parallel(dev, n, [=](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      const float v = x[i];
      out[i] = v < -0.5f ? 0.0f : (v > 0.5f ? 1.0f : v + 0.5f);
    }
  });
}

void k_activation_piecewise_grad(Device& dev, const float* x, float* out,
                                 std::size_t n) {
  device_parallel(dev, n, [=](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      const float v = x[i];
      out[i] = (v > -0.5f && v < 0.5f) ? 1.0f : 0.0f;
    }
  });
}

void k_philox_uniform(Device& dev, float* out, std::size_t n, float lo,
                      float hi, std::uint64_t seed) {
  const rng::Philox4x32 gen(seed);
  const float range = hi - lo;
  dev.compute_pool().parallel_for(
      0, (n + 3) / 4,
      [&, out, n](std::size_t blo, std::size_t bhi) {
        for (std::size_t blk_i = blo; blk_i < bhi; ++blk_i) {
          const auto blk = gen.block(blk_i);
          const std::size_t base = blk_i * 4;
          const std::size_t lim = std::min<std::size_t>(4, n - base);
          for (std::size_t j = 0; j < lim; ++j) {
            out[base + j] =
                lo + range * (static_cast<float>(blk[j] >> 8) *
                              (1.0f / 16777216.0f));
          }
        }
      },
      /*grain=*/kFloatsPerCacheLine * 4);
}

}  // namespace psml::sgpu
