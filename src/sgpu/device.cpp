#include "sgpu/device.hpp"

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "common/env.hpp"
#include "common/timer.hpp"

namespace psml::sgpu {

void DeviceBuffer::release() {
  if (ptr_ != nullptr) {
    std::free(ptr_);
    device_->free_bytes(bytes_);
    ptr_ = nullptr;
    bytes_ = 0;
    device_ = nullptr;
  }
}

Device::Device() : Device(Config{}) {}

Device::Device(Config cfg) : cfg_(cfg) {
  compute_pool_ = std::make_unique<ThreadPool>(cfg_.compute_threads);
  default_stream_ = create_stream();
}

Device::~Device() { synchronize(); }

Device& Device::global() {
  static Device device([] {
    Config cfg;
    cfg.compute_threads = env_size_t("PSML_SGPU_THREADS", 0);
    cfg.pcie_gbps = env_double("PSML_SGPU_PCIE_GBPS", 0.0);
    cfg.memory_bytes = env_size_t("PSML_SGPU_MEMORY_MB", 4096) << 20;
    cfg.launch_overhead_us = env_double("PSML_SGPU_LAUNCH_US", 0.0);
    return cfg;
  }());
  return device;
}

DeviceBuffer Device::alloc(std::size_t bytes) {
  {
    std::lock_guard<std::mutex> lock(mem_mutex_);
    if (allocated_ + bytes > cfg_.memory_bytes) {
      throw DeviceError("sgpu: out of device memory (requested " +
                        std::to_string(bytes) + " B, in use " +
                        std::to_string(allocated_) + " B of " +
                        std::to_string(cfg_.memory_bytes) + " B)");
    }
    allocated_ += bytes;
  }
  const std::size_t rounded =
      (bytes + kCacheLineBytes - 1) / kCacheLineBytes * kCacheLineBytes;
  void* p = std::aligned_alloc(kCacheLineBytes,
                               rounded == 0 ? kCacheLineBytes : rounded);
  if (p == nullptr) {
    free_bytes(bytes);
    throw DeviceError("sgpu: host allocation backing device memory failed");
  }
  return DeviceBuffer(this, p, bytes);
}

void Device::free_bytes(std::size_t bytes) {
  std::lock_guard<std::mutex> lock(mem_mutex_);
  allocated_ -= bytes;
}

std::shared_ptr<Stream> Device::create_stream() {
  auto s = std::shared_ptr<Stream>(new Stream(), [this](Stream* p) {
    {
      std::lock_guard<std::mutex> lock(streams_mutex_);
      std::erase(streams_, p);
    }
    delete p;
  });
  std::lock_guard<std::mutex> lock(streams_mutex_);
  streams_.push_back(s.get());
  return s;
}

void Device::throttle_copy(double elapsed_sec, std::size_t bytes) const {
  if (cfg_.pcie_gbps <= 0.0) return;
  const double target = static_cast<double>(bytes) / (cfg_.pcie_gbps * 1e9);
  if (target > elapsed_sec) {
    std::this_thread::sleep_for(
        std::chrono::duration<double>(target - elapsed_sec));
  }
}

void Device::memcpy_h2d(Stream& stream, DeviceBuffer& dst, const void* src,
                        std::size_t bytes) {
  PSML_REQUIRE(bytes <= dst.bytes(), "memcpy_h2d: copy exceeds buffer");
  void* d = dst.raw();
  stream.enqueue([this, d, src, bytes] {
    const double t0 = trace_.now();
    Timer t;
    std::memcpy(d, src, bytes);
    throttle_copy(t.seconds(), bytes);
    trace_.record(ActivityKind::kMemcpyH2D, "h2d", t0, trace_.now(), bytes);
  });
}

void Device::memcpy_d2h(Stream& stream, void* dst, const DeviceBuffer& src,
                        std::size_t bytes) {
  PSML_REQUIRE(bytes <= src.bytes(), "memcpy_d2h: copy exceeds buffer");
  const void* s = src.raw();
  stream.enqueue([this, dst, s, bytes] {
    const double t0 = trace_.now();
    Timer t;
    std::memcpy(dst, s, bytes);
    throttle_copy(t.seconds(), bytes);
    trace_.record(ActivityKind::kMemcpyD2H, "d2h", t0, trace_.now(), bytes);
  });
}

void Device::launch(Stream& stream, std::string name,
                    std::function<void()> kernel) {
  stream.enqueue([this, name = std::move(name), kernel = std::move(kernel)] {
    if (cfg_.launch_overhead_us > 0.0) {
      std::this_thread::sleep_for(
          std::chrono::duration<double>(cfg_.launch_overhead_us * 1e-6));
    }
    const double t0 = trace_.now();
    kernel();
    trace_.record(ActivityKind::kKernel, name, t0, trace_.now());
  });
}

void Device::synchronize() {
  std::lock_guard<std::mutex> lock(streams_mutex_);
  for (Stream* s : streams_) s->synchronize();
}

}  // namespace psml::sgpu
