// Stream/Event execution model of the simulated device.
//
// A Stream is an in-order work queue with a dedicated worker thread
// (cudaStream_t). An Event marks a point in a stream; the host can wait on
// it (cudaEventSynchronize) and other streams can order behind it
// (cudaStreamWaitEvent). These two primitives carry the whole double-pipeline
// design of Sec. 4.3.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>

namespace psml::sgpu {

class Event {
 public:
  Event() : state_(std::make_shared<State>()) {}

  // Host-side blocking wait until the event has fired.
  void wait() const;
  bool ready() const;

 private:
  friend class Stream;
  struct State {
    std::mutex mutex;
    std::condition_variable cv;
    bool done = false;
  };
  void fire();
  std::shared_ptr<State> state_;
};

class Stream {
 public:
  Stream();
  ~Stream();

  Stream(const Stream&) = delete;
  Stream& operator=(const Stream&) = delete;

  // Enqueue arbitrary work; runs on the stream thread in FIFO order.
  void enqueue(std::function<void()> task);

  // Record an event that fires when all previously enqueued work completes.
  Event record_event();

  // All *subsequently* enqueued work waits until `e` has fired.
  void wait_event(Event e);

  // Host-side blocking drain of the queue.
  void synchronize();

 private:
  void worker_loop();

  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;        // signals the worker
  std::condition_variable idle_cv_;   // signals synchronize()
  bool stopping_ = false;
  bool busy_ = false;
  std::thread worker_;
};

}  // namespace psml::sgpu
