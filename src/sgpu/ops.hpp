// Host-facing typed operations on the simulated device: device-resident
// matrices, async upload/download, and kernel wrappers that enqueue on
// streams. This is the layer the MPC online phase and the double pipeline
// build on.
#pragma once

#include <cstdint>
#include <memory>

#include "sgpu/device.hpp"
#include "sgpu/kernels.hpp"
#include "tensor/matrix.hpp"

namespace psml::sgpu {

// A device-resident row-major FP32 matrix.
class DeviceMatrix {
 public:
  DeviceMatrix() = default;
  DeviceMatrix(Device& dev, std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), buf_(dev.alloc(rows * cols * sizeof(float))) {}

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return rows_ * cols_; }
  std::size_t bytes() const { return size() * sizeof(float); }
  bool valid() const { return buf_.valid(); }

  DeviceBuffer& buffer() { return buf_; }
  const DeviceBuffer& buffer() const { return buf_; }
  float* data() { return buf_.f32(); }
  const float* data() const { return buf_.f32(); }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  DeviceBuffer buf_;
};

// ---- async transfers ------------------------------------------------------

// Enqueue host->device copy of `src` into `dst` (shapes must match).
void upload_async(Device& dev, Stream& stream, DeviceMatrix& dst,
                  const MatrixF& src);

// Enqueue device->host copy of `src` into `dst`.
void download_async(Device& dev, Stream& stream, MatrixF& dst,
                    const DeviceMatrix& src);

// Allocate + upload in one step (synchronous allocation, async copy).
DeviceMatrix to_device_async(Device& dev, Stream& stream, const MatrixF& src);

// ---- async kernels ---------------------------------------------------------

// C = alpha * A * B + beta * C. `tensor_core` selects the FP16 fast path.
void gemm_async(Device& dev, Stream& stream, const DeviceMatrix& a,
                const DeviceMatrix& b, DeviceMatrix& c, float alpha = 1.0f,
                float beta = 0.0f, bool tensor_core = false);

// out = alpha * x + y, elementwise.
void axpby_async(Device& dev, Stream& stream, float alpha,
                 const DeviceMatrix& x, const DeviceMatrix& y,
                 DeviceMatrix& out);

// out += x
void add_inplace_async(Device& dev, Stream& stream, const DeviceMatrix& x,
                       DeviceMatrix& out);

// Eq. 9 activation and its derivative mask.
void activation_async(Device& dev, Stream& stream, const DeviceMatrix& x,
                      DeviceMatrix& out);
void activation_grad_async(Device& dev, Stream& stream, const DeviceMatrix& x,
                           DeviceMatrix& out);

// Uniform fill via the device Philox generator ("curandGenerateUniform").
void philox_uniform_async(Device& dev, Stream& stream, DeviceMatrix& out,
                          float lo, float hi, std::uint64_t seed);

// ---- synchronous conveniences ----------------------------------------------

// Full round trip on the default stream: upload A and B, multiply, download.
// The workhorse of the offline phase (Z = U x V) and the non-pipelined
// online fallback.
MatrixF device_matmul(const MatrixF& a, const MatrixF& b,
                      bool tensor_core = false);
MatrixF device_matmul(Device& dev, const MatrixF& a, const MatrixF& b,
                      bool tensor_core = false);

}  // namespace psml::sgpu
