#include "sgpu/stream.hpp"

namespace psml::sgpu {

void Event::fire() {
  {
    std::lock_guard<std::mutex> lock(state_->mutex);
    state_->done = true;
  }
  state_->cv.notify_all();
}

void Event::wait() const {
  std::unique_lock<std::mutex> lock(state_->mutex);
  state_->cv.wait(lock, [this] { return state_->done; });
}

bool Event::ready() const {
  std::lock_guard<std::mutex> lock(state_->mutex);
  return state_->done;
}

Stream::Stream() : worker_([this] { worker_loop(); }) {}

Stream::~Stream() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  if (worker_.joinable()) worker_.join();
}

void Stream::enqueue(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

Event Stream::record_event() {
  Event e;
  enqueue([e]() mutable { e.fire(); });
  return e;
}

void Stream::wait_event(Event e) {
  enqueue([e] { e.wait(); });
}

void Stream::synchronize() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && !busy_; });
}

void Stream::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stopping_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      busy_ = true;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      busy_ = false;
      if (queue_.empty()) idle_cv_.notify_all();
    }
  }
}

}  // namespace psml::sgpu
