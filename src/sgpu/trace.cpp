#include "sgpu/trace.hpp"

namespace psml::sgpu {

namespace {
const char* kind_prefix(ActivityKind kind) {
  switch (kind) {
    case ActivityKind::kMemcpyH2D: return "memcpy_h2d";
    case ActivityKind::kMemcpyD2H: return "memcpy_d2h";
    case ActivityKind::kKernel: return "kernel";
  }
  return "?";
}
}  // namespace

Trace::Trace() : epoch_(std::chrono::steady_clock::now()) {}

double Trace::now() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       epoch_)
      .count();
}

void Trace::record(ActivityKind kind, const std::string& name,
                   double start_sec, double end_sec, std::uint64_t bytes) {
  if (!enabled_) return;
  std::lock_guard<std::mutex> lock(mutex_);
  activities_.push_back({kind, name, start_sec, end_sec, bytes});
}

std::vector<Activity> Trace::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return activities_;
}

std::map<std::string, ActivitySummary> Trace::summary() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::map<std::string, ActivitySummary> out;
  for (const auto& a : activities_) {
    std::string key = kind_prefix(a.kind);
    if (a.kind == ActivityKind::kKernel) key += ":" + a.name;
    auto& s = out[key];
    s.total_sec += a.end_sec - a.start_sec;
    s.count += 1;
    s.bytes += a.bytes;
  }
  return out;
}

void Trace::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  activities_.clear();
}

}  // namespace psml::sgpu
