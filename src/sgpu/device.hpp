// Simulated GPU device — the CUDA substitute (see DESIGN.md §2).
//
// The device owns:
//   * a device memory arena with capacity accounting (cudaMalloc analogue),
//   * an ordered-queue Stream abstraction with Events (cudaStream_t /
//     cudaEvent_t analogues) — each stream is a dedicated worker thread,
//   * a copy engine: H2D/D2H transfers are real memcpys optionally throttled
//     to a configured PCIe bandwidth so transfer/compute overlap behaves like
//     the real machine,
//   * a compute pool shared by kernels (the "SMs"),
//   * an nvprof-style activity trace.
//
// Everything framework-level (what runs where, what overlaps what) uses only
// this API, so porting back to real CUDA is a backend swap.
#pragma once

#include <cstddef>
#include <memory>
#include <mutex>

#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "sgpu/stream.hpp"
#include "sgpu/trace.hpp"

namespace psml::sgpu {

class Device;

// RAII device allocation. Movable, non-copyable.
class DeviceBuffer {
 public:
  DeviceBuffer() = default;
  DeviceBuffer(DeviceBuffer&& other) noexcept { swap(other); }
  DeviceBuffer& operator=(DeviceBuffer&& other) noexcept {
    if (this != &other) {
      release();
      swap(other);
    }
    return *this;
  }
  DeviceBuffer(const DeviceBuffer&) = delete;
  DeviceBuffer& operator=(const DeviceBuffer&) = delete;
  ~DeviceBuffer() { release(); }

  std::size_t bytes() const { return bytes_; }
  bool valid() const { return ptr_ != nullptr; }

  // Raw device pointer. Host code must not dereference outside kernels/copies
  // (we cannot enforce that in simulation, but the discipline is kept
  // throughout the library so a CUDA backend drops in).
  void* raw() { return ptr_; }
  const void* raw() const { return ptr_; }
  float* f32() { return static_cast<float*>(ptr_); }
  const float* f32() const { return static_cast<const float*>(ptr_); }

 private:
  friend class Device;
  DeviceBuffer(Device* device, void* ptr, std::size_t bytes)
      : device_(device), ptr_(ptr), bytes_(bytes) {}

  void release();
  void swap(DeviceBuffer& other) noexcept {
    std::swap(device_, other.device_);
    std::swap(ptr_, other.ptr_);
    std::swap(bytes_, other.bytes_);
  }

  Device* device_ = nullptr;
  void* ptr_ = nullptr;
  std::size_t bytes_ = 0;
};

class Device {
 public:
  struct Config {
    // Worker threads backing kernel execution; 0 = hardware_concurrency.
    std::size_t compute_threads = 0;
    // Simulated PCIe bandwidth in GB/s for each copy direction; 0 disables
    // the throttle (copies cost just the memcpy).
    double pcie_gbps = 0.0;
    // Device memory capacity.
    std::size_t memory_bytes = std::size_t{4} << 30;
    // Fixed per-kernel launch latency in microseconds (models driver
    // overhead; relevant for the many-small-kernels regime of Fig. 17).
    double launch_overhead_us = 0.0;
  };

  Device();
  explicit Device(Config cfg);
  ~Device();

  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  // Process-wide device, configured once from PSML_SGPU_* env vars.
  static Device& global();

  const Config& config() const { return cfg_; }

  DeviceBuffer alloc(std::size_t bytes);
  std::size_t allocated_bytes() const { return allocated_; }

  Stream& default_stream() { return *default_stream_; }
  // Streams deregister themselves from the device on destruction, hence the
  // shared_ptr with custom deleter.
  std::shared_ptr<Stream> create_stream();

  // Asynchronous copies, enqueued on `stream` (cudaMemcpyAsync analogues).
  void memcpy_h2d(Stream& stream, DeviceBuffer& dst, const void* src,
                  std::size_t bytes);
  void memcpy_d2h(Stream& stream, void* dst, const DeviceBuffer& src,
                  std::size_t bytes);

  // Enqueue a named kernel on `stream`. The functor runs on the stream
  // thread and may use compute_pool() for internal parallelism.
  void launch(Stream& stream, std::string name, std::function<void()> kernel);

  // Blocks until all streams created so far have drained.
  void synchronize();

  ThreadPool& compute_pool() { return *compute_pool_; }
  Trace& trace() { return trace_; }

 private:
  friend class DeviceBuffer;
  void free_bytes(std::size_t bytes);
  void throttle_copy(double elapsed_sec, std::size_t bytes) const;

  Config cfg_;
  std::unique_ptr<ThreadPool> compute_pool_;
  Trace trace_;

  std::mutex mem_mutex_;
  std::size_t allocated_ = 0;

  std::mutex streams_mutex_;
  std::vector<Stream*> streams_;  // registry for synchronize()
  std::shared_ptr<Stream> default_stream_;
};

}  // namespace psml::sgpu
