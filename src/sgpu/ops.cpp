#include "sgpu/ops.hpp"

namespace psml::sgpu {

void upload_async(Device& dev, Stream& stream, DeviceMatrix& dst,
                  const MatrixF& src) {
  PSML_REQUIRE(dst.rows() == src.rows() && dst.cols() == src.cols(),
               "upload_async: shape mismatch");
  dev.memcpy_h2d(stream, dst.buffer(), src.data(), src.bytes());
}

void download_async(Device& dev, Stream& stream, MatrixF& dst,
                    const DeviceMatrix& src) {
  PSML_REQUIRE(dst.rows() == src.rows() && dst.cols() == src.cols(),
               "download_async: shape mismatch");
  dev.memcpy_d2h(stream, dst.data(), src.buffer(), src.bytes());
}

DeviceMatrix to_device_async(Device& dev, Stream& stream, const MatrixF& src) {
  DeviceMatrix d(dev, src.rows(), src.cols());
  upload_async(dev, stream, d, src);
  return d;
}

void gemm_async(Device& dev, Stream& stream, const DeviceMatrix& a,
                const DeviceMatrix& b, DeviceMatrix& c, float alpha,
                float beta, bool tensor_core) {
  PSML_REQUIRE(a.cols() == b.rows(), "gemm_async: inner dimensions disagree");
  PSML_REQUIRE(c.rows() == a.rows() && c.cols() == b.cols(),
               "gemm_async: output shape mismatch");
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  const std::size_t m = a.rows(), n = b.cols(), k = a.cols();
  if (tensor_core) {
    dev.launch(stream, "gemm_tc", [&dev, pa, pb, pc, m, n, k, alpha, beta] {
      k_gemm_tc(dev, pa, pb, pc, m, n, k, alpha, beta);
    });
  } else {
    dev.launch(stream, "gemm", [&dev, pa, pb, pc, m, n, k, alpha, beta] {
      k_gemm(dev, pa, pb, pc, m, n, k, alpha, beta);
    });
  }
}

void axpby_async(Device& dev, Stream& stream, float alpha,
                 const DeviceMatrix& x, const DeviceMatrix& y,
                 DeviceMatrix& out) {
  PSML_REQUIRE(x.size() == y.size() && x.size() == out.size(),
               "axpby_async: size mismatch");
  const float* px = x.data();
  const float* py = y.data();
  float* po = out.data();
  const std::size_t n = x.size();
  dev.launch(stream, "axpby", [&dev, alpha, px, py, po, n] {
    k_axpby(dev, alpha, px, py, po, n);
  });
}

void add_inplace_async(Device& dev, Stream& stream, const DeviceMatrix& x,
                       DeviceMatrix& out) {
  PSML_REQUIRE(x.size() == out.size(), "add_inplace_async: size mismatch");
  const float* px = x.data();
  float* po = out.data();
  const std::size_t n = x.size();
  dev.launch(stream, "add",
             [&dev, px, po, n] { k_add_inplace(dev, px, po, n); });
}

void activation_async(Device& dev, Stream& stream, const DeviceMatrix& x,
                      DeviceMatrix& out) {
  PSML_REQUIRE(x.size() == out.size(), "activation_async: size mismatch");
  const float* px = x.data();
  float* po = out.data();
  const std::size_t n = x.size();
  dev.launch(stream, "activation",
             [&dev, px, po, n] { k_activation_piecewise(dev, px, po, n); });
}

void activation_grad_async(Device& dev, Stream& stream, const DeviceMatrix& x,
                           DeviceMatrix& out) {
  PSML_REQUIRE(x.size() == out.size(), "activation_grad_async: size mismatch");
  const float* px = x.data();
  float* po = out.data();
  const std::size_t n = x.size();
  dev.launch(stream, "activation_grad", [&dev, px, po, n] {
    k_activation_piecewise_grad(dev, px, po, n);
  });
}

void philox_uniform_async(Device& dev, Stream& stream, DeviceMatrix& out,
                          float lo, float hi, std::uint64_t seed) {
  float* po = out.data();
  const std::size_t n = out.size();
  dev.launch(stream, "philox_uniform", [&dev, po, n, lo, hi, seed] {
    k_philox_uniform(dev, po, n, lo, hi, seed);
  });
}

MatrixF device_matmul(Device& dev, const MatrixF& a, const MatrixF& b,
                      bool tensor_core) {
  PSML_REQUIRE(a.cols() == b.rows(),
               "device_matmul: inner dimensions disagree");
  Stream& s = dev.default_stream();
  DeviceMatrix da = to_device_async(dev, s, a);
  DeviceMatrix db = to_device_async(dev, s, b);
  DeviceMatrix dc(dev, a.rows(), b.cols());
  gemm_async(dev, s, da, db, dc, 1.0f, 0.0f, tensor_core);
  MatrixF c(a.rows(), b.cols());
  download_async(dev, s, c, dc);
  s.synchronize();
  return c;
}

MatrixF device_matmul(const MatrixF& a, const MatrixF& b, bool tensor_core) {
  return device_matmul(Device::global(), a, b, tensor_core);
}

}  // namespace psml::sgpu
