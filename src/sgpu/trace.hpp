// nvprof-style activity trace for the simulated device.
//
// Every copy and kernel records {name, category, start, end, bytes}; the
// profiler and the Fig. 8 benchmark read aggregate summaries from here.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace psml::sgpu {

enum class ActivityKind { kMemcpyH2D, kMemcpyD2H, kKernel };

struct Activity {
  ActivityKind kind;
  std::string name;
  double start_sec;  // relative to trace epoch
  double end_sec;
  std::uint64_t bytes;  // copies only
};

struct ActivitySummary {
  double total_sec = 0.0;
  std::uint64_t count = 0;
  std::uint64_t bytes = 0;
};

class Trace {
 public:
  Trace();

  void set_enabled(bool enabled) { enabled_ = enabled; }
  bool enabled() const { return enabled_; }

  void record(ActivityKind kind, const std::string& name, double start_sec,
              double end_sec, std::uint64_t bytes = 0);

  // Current time relative to the trace epoch.
  double now() const;

  std::vector<Activity> snapshot() const;
  // Aggregates by (kind, name) for kernels and by kind for copies.
  std::map<std::string, ActivitySummary> summary() const;

  void clear();

 private:
  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mutex_;
  std::vector<Activity> activities_;
  bool enabled_ = true;
};

}  // namespace psml::sgpu
