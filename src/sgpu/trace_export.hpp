// Chrome-tracing export of the device activity trace.
//
// Writes the Trace Event Format understood by chrome://tracing and Perfetto:
// one complete ("X") event per copy/kernel, copies on a "copy engine" track
// and kernels on a "compute" track — the visual equivalent of an nvprof
// timeline for the simulated device.
#pragma once

#include <iosfwd>
#include <string>

#include "sgpu/trace.hpp"

namespace psml::sgpu {

// Serializes the trace as a Trace Event Format JSON array document.
std::string to_chrome_trace_json(const Trace& trace);

void write_chrome_trace(std::ostream& os, const Trace& trace);
void write_chrome_trace(const std::string& path, const Trace& trace);

}  // namespace psml::sgpu
