#include "pipeline/async_lane.hpp"

namespace psml::pipeline {

AsyncLane::AsyncLane() : worker_([this] { worker_loop(); }) {}

AsyncLane::~AsyncLane() { stop(); }

void AsyncLane::stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) return;
    stopping_ = true;
  }
  cv_.notify_all();
  if (worker_.joinable()) worker_.join();
}

void AsyncLane::enqueue(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) throw ShutdownError("AsyncLane::run after stop");
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void AsyncLane::drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && !busy_; });
}

void AsyncLane::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stopping_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      busy_ = true;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      busy_ = false;
      if (queue_.empty()) idle_cv_.notify_all();
    }
  }
}

}  // namespace psml::pipeline
