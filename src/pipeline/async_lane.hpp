// Execution lanes for the layer-level pipeline (paper Sec. 4.3, Fig. 6).
//
// The double pipeline's second level overlaps the *reconstruct* step of one
// layer (CPU + network bound) with the *GPU operation* of a neighbouring
// layer. An AsyncLane is a single-worker ordered executor: work submitted to
// a lane runs FIFO on the lane's thread, and the caller gets a future. The
// secure trainer uses one lane for reconstruct work while GPU operations run
// on the calling thread/device streams; because each lane is strictly
// ordered, the two servers' message sequences stay aligned.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <type_traits>

#include "common/error.hpp"

namespace psml::pipeline {

// Lifecycle / concurrency contract:
//   * run() may be called from any thread, concurrently with drain() and
//     with other run() calls. Tasks execute FIFO in submission order
//     (submission order of concurrent run() calls is whatever order they
//     win the queue lock in).
//   * drain() returns once every task whose run() call happened-before the
//     drain() began has finished. Tasks submitted *concurrently with* a
//     drain() are queued normally but may or may not be waited for — a
//     caller that needs them covered must order its run() calls before the
//     drain. The lane is not left in any special state: run() after drain()
//     queues as usual.
//   * stop() (also invoked by the destructor) rejects all future run()
//     calls with psml::ShutdownError, runs every already-queued task, and
//     joins the worker. run() racing stop() either enqueues before the stop
//     (and its task runs) or throws; it never silently drops work.
class AsyncLane {
 public:
  AsyncLane();
  ~AsyncLane();

  AsyncLane(const AsyncLane&) = delete;
  AsyncLane& operator=(const AsyncLane&) = delete;

  // Submits a callable; returns a future of its result. Tasks run FIFO.
  // Throws psml::ShutdownError after stop().
  template <typename F>
  auto run(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> fut = task->get_future();
    enqueue([task] { (*task)(); });
    return fut;
  }

  // Blocks until all work submitted before this call has run (see the
  // contract above for interaction with concurrent run()).
  void drain();

  // Stops accepting work, finishes the queued tasks, joins the worker.
  // Idempotent; called by the destructor.
  void stop();

 private:
  void enqueue(std::function<void()> task);
  void worker_loop();

  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  bool stopping_ = false;
  bool busy_ = false;
  std::thread worker_;
};

}  // namespace psml::pipeline
