// Execution lanes for the layer-level pipeline (paper Sec. 4.3, Fig. 6).
//
// The double pipeline's second level overlaps the *reconstruct* step of one
// layer (CPU + network bound) with the *GPU operation* of a neighbouring
// layer. An AsyncLane is a single-worker ordered executor: work submitted to
// a lane runs FIFO on the lane's thread, and the caller gets a future. The
// secure trainer uses one lane for reconstruct work while GPU operations run
// on the calling thread/device streams; because each lane is strictly
// ordered, the two servers' message sequences stay aligned.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <type_traits>

namespace psml::pipeline {

class AsyncLane {
 public:
  AsyncLane();
  ~AsyncLane();

  AsyncLane(const AsyncLane&) = delete;
  AsyncLane& operator=(const AsyncLane&) = delete;

  // Submits a callable; returns a future of its result. Tasks run FIFO.
  template <typename F>
  auto run(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> fut = task->get_future();
    enqueue([task] { (*task)(); });
    return fut;
  }

  // Blocks until all submitted work has run.
  void drain();

 private:
  void enqueue(std::function<void()> task);
  void worker_loop();

  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  bool stopping_ = false;
  bool busy_ = false;
  std::thread worker_;
};

}  // namespace psml::pipeline
