// CRC-32 (IEEE) hardware tier: 4-way 128-bit carry-less-multiply folding per
// Gopal et al., "Fast CRC Computation for Generic Polynomials Using PCLMULQDQ
// Instruction" (Intel, 2009), with the bit-reflected-domain fold constants
// and Barrett reduction pair for the 0xEDB88320 polynomial. Only this TU
// carries -mpclmul; it is reached solely through the __builtin_cpu_supports
// dispatch in crc32.cpp.

#include "common/crc32.hpp"

#if defined(__PCLMUL__) && defined(__SSE4_1__)
#include <immintrin.h>
#endif

namespace psml {
namespace detail {

#if defined(__PCLMUL__) && defined(__SSE4_1__)

bool cpu_has_pclmul() {
  return __builtin_cpu_supports("pclmul") && __builtin_cpu_supports("sse4.1");
}

namespace {

// Folds `len` bytes (len >= 64, len % 16 == 0) into the running raw
// (pre-inversion) CRC state and returns the reduced 32-bit raw state.
std::uint32_t fold_pclmul(const std::uint8_t* buf, std::size_t len,
                          std::uint32_t state) {
  // x^(T mod P) constants in the reflected domain:
  //   k1 = x^(4*128+64), k2 = x^(4*128)   (64-byte parallel fold)
  //   k3 = x^(128+64),   k4 = x^128       (16-byte fold)
  //   k5 = x^96                           (96 -> 64 reduction)
  //   mu, P'                              (Barrett reduction)
  const __m128i k1k2 =
      _mm_set_epi64x(0x01c6e41596ll, 0x0154442bd4ll);
  const __m128i k3k4 =
      _mm_set_epi64x(0x00ccaa009ell, 0x01751997d0ll);
  const __m128i k5 = _mm_set_epi64x(0, 0x0163cd6124ll);
  const __m128i poly_mu =
      _mm_set_epi64x(0x01f7011641ll, 0x01db710641ll);
  const __m128i mask32 = _mm_setr_epi32(~0, 0, ~0, 0);

  __m128i x1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(buf + 0x00));
  __m128i x2 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(buf + 0x10));
  __m128i x3 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(buf + 0x20));
  __m128i x4 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(buf + 0x30));
  x1 = _mm_xor_si128(x1, _mm_cvtsi32_si128(static_cast<int>(state)));
  buf += 64;
  len -= 64;

  while (len >= 64) {
    const __m128i x5 = _mm_clmulepi64_si128(x1, k1k2, 0x00);
    const __m128i x6 = _mm_clmulepi64_si128(x2, k1k2, 0x00);
    const __m128i x7 = _mm_clmulepi64_si128(x3, k1k2, 0x00);
    const __m128i x8 = _mm_clmulepi64_si128(x4, k1k2, 0x00);
    x1 = _mm_clmulepi64_si128(x1, k1k2, 0x11);
    x2 = _mm_clmulepi64_si128(x2, k1k2, 0x11);
    x3 = _mm_clmulepi64_si128(x3, k1k2, 0x11);
    x4 = _mm_clmulepi64_si128(x4, k1k2, 0x11);
    x1 = _mm_xor_si128(
        _mm_xor_si128(x1, x5),
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(buf + 0x00)));
    x2 = _mm_xor_si128(
        _mm_xor_si128(x2, x6),
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(buf + 0x10)));
    x3 = _mm_xor_si128(
        _mm_xor_si128(x3, x7),
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(buf + 0x20)));
    x4 = _mm_xor_si128(
        _mm_xor_si128(x4, x8),
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(buf + 0x30)));
    buf += 64;
    len -= 64;
  }

  // 512 -> 128 bits.
  __m128i x5 = _mm_clmulepi64_si128(x1, k3k4, 0x00);
  x1 = _mm_clmulepi64_si128(x1, k3k4, 0x11);
  x1 = _mm_xor_si128(_mm_xor_si128(x1, x2), x5);
  x5 = _mm_clmulepi64_si128(x1, k3k4, 0x00);
  x1 = _mm_clmulepi64_si128(x1, k3k4, 0x11);
  x1 = _mm_xor_si128(_mm_xor_si128(x1, x3), x5);
  x5 = _mm_clmulepi64_si128(x1, k3k4, 0x00);
  x1 = _mm_clmulepi64_si128(x1, k3k4, 0x11);
  x1 = _mm_xor_si128(_mm_xor_si128(x1, x4), x5);

  while (len >= 16) {
    const __m128i y = _mm_loadu_si128(reinterpret_cast<const __m128i*>(buf));
    x5 = _mm_clmulepi64_si128(x1, k3k4, 0x00);
    x1 = _mm_clmulepi64_si128(x1, k3k4, 0x11);
    x1 = _mm_xor_si128(_mm_xor_si128(x1, y), x5);
    buf += 16;
    len -= 16;
  }

  // 128 -> 64 bits.
  __m128i x0 = _mm_clmulepi64_si128(x1, k3k4, 0x10);
  x1 = _mm_xor_si128(_mm_srli_si128(x1, 8), x0);
  // 96 -> 64 bits.
  x0 = _mm_srli_si128(x1, 4);
  x1 = _mm_and_si128(x1, mask32);
  x1 = _mm_clmulepi64_si128(x1, k5, 0x00);
  x1 = _mm_xor_si128(x1, x0);
  // Barrett 64 -> 32 bits.
  x0 = _mm_and_si128(x1, mask32);
  x0 = _mm_clmulepi64_si128(x0, poly_mu, 0x10);
  x0 = _mm_and_si128(x0, mask32);
  x0 = _mm_clmulepi64_si128(x0, poly_mu, 0x00);
  x1 = _mm_xor_si128(x1, x0);
  return static_cast<std::uint32_t>(_mm_extract_epi32(x1, 1));
}

}  // namespace

std::uint32_t crc32_pclmul(const void* data, std::size_t len,
                           std::uint32_t seed) {
  if (len < 64) {
    return crc32_table(data, len, seed);
  }
  const auto* p = static_cast<const std::uint8_t*>(data);
  const std::size_t folded = len & ~static_cast<std::size_t>(15);
  const std::uint32_t state =
      fold_pclmul(p, folded, seed ^ 0xffffffffu);
  return crc32_table(p + folded, len - folded, state ^ 0xffffffffu);
}

#else  // !(__PCLMUL__ && __SSE4_1__)

bool cpu_has_pclmul() { return false; }

std::uint32_t crc32_pclmul(const void* data, std::size_t len,
                           std::uint32_t seed) {
  return crc32_table(data, len, seed);  // unreachable via dispatch
}

#endif

}  // namespace detail
}  // namespace psml
