// Secret-taint annotations read by tools/psml-taint.
//
// The macros expand to nothing for the compiler; the taint analyzer matches
// the raw tokens in the source text (before preprocessing), so they are
// zero-cost markers with tool-enforced meaning:
//
//   PSML_SECRET on a struct/class   every variable of that type carries
//                                   secret taint (share, triplet, or mask
//                                   words).
//   PSML_SECRET on a function       a non-void function's return value is
//                                   tainted; a void function taints its
//                                   first argument (the out-parameter
//                                   convention of the rng:: fills).
//   PSML_SECRET on a variable       the variable itself is tainted.
//   PSML_PUBLIC on a variable       the variable is pinned clean — the
//                                   analyzer never taints it. Use only for
//                                   values that are public by construction
//                                   (already-masked wire payloads, shapes,
//                                   tags).
//
// psml::declassify(x) is the one sanctioned, greppable escape hatch: it is
// an identity function at runtime, and the analyzer treats its result as
// clean. Every call site is an audited claim that the value is safe to leave
// the secure domain (it is masked, it is a share being handed to the single
// party entitled to it, or it has been opened by the protocol itself).
// docs/ANALYSIS.md lists the current call sites; adding one is a
// review-worthy event, exactly like an allowlist entry.
#pragma once

#include <utility>

#define PSML_SECRET
#define PSML_PUBLIC

namespace psml {

// Identity pass-through marking an audited secret->public transition.
template <typename T>
constexpr decltype(auto) declassify(T&& value) noexcept {
  return std::forward<T>(value);
}

}  // namespace psml
