// Error handling for ParSecureML-Repro.
//
// The library throws typed exceptions derived from psml::Error; PSML_CHECK /
// PSML_REQUIRE are used at API boundaries and for internal invariants.
#pragma once

#include <stdexcept>
#include <string>

namespace psml {

// Base class of all exceptions thrown by this library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

// Invalid argument / shape mismatch at an API boundary.
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

// Transport-level failure (peer closed, short read, malformed frame).
class NetworkError : public Error {
 public:
  explicit NetworkError(const std::string& what) : Error(what) {}
};

// A receive (or accept/connect) deadline expired before the peer delivered.
// Subclass of NetworkError so existing transport-failure handlers catch it;
// callers that want to distinguish "slow peer" from "dead peer" catch this
// first.
class TimeoutError : public NetworkError {
 public:
  explicit TimeoutError(const std::string& what) : NetworkError(what) {}
};

// Protocol-level failure in the 2PC state machine (unexpected tag,
// inconsistent shares, corrupt compressed payload).
class ProtocolError : public Error {
 public:
  explicit ProtocolError(const std::string& what) : Error(what) {}
};

// Simulated-device failure (out of device memory, invalid stream use).
class DeviceError : public Error {
 public:
  explicit DeviceError(const std::string& what) : Error(what) {}
};

// Use of a concurrency primitive (ThreadPool, AsyncLane) after it has been
// stopped — e.g. submit() racing destruction. Always a lifecycle bug in the
// caller, never data-dependent.
class ShutdownError : public Error {
 public:
  explicit ShutdownError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] void throw_check_failed(const char* kind, const char* expr,
                                     const char* file, int line,
                                     const std::string& msg);
}  // namespace detail

// Internal invariant; failure indicates a bug in the library.
#define PSML_CHECK(cond)                                                     \
  do {                                                                       \
    if (!(cond)) {                                                           \
      ::psml::detail::throw_check_failed("check", #cond, __FILE__, __LINE__, \
                                         "");                                \
    }                                                                        \
  } while (0)

#define PSML_CHECK_MSG(cond, msg)                                            \
  do {                                                                       \
    if (!(cond)) {                                                           \
      ::psml::detail::throw_check_failed("check", #cond, __FILE__, __LINE__, \
                                         (msg));                             \
    }                                                                        \
  } while (0)

// Precondition on user-supplied arguments; throws InvalidArgument.
#define PSML_REQUIRE(cond, msg)                                              \
  do {                                                                       \
    if (!(cond)) {                                                           \
      throw ::psml::InvalidArgument(std::string("requirement failed: ") +    \
                                    #cond + " — " + (msg));                  \
    }                                                                        \
  } while (0)

}  // namespace psml
