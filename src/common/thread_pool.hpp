// Work-sharing thread pool + parallel_for.
//
// The pool backs every CPU-parallel kernel in the library (matrix add/sub,
// random fills, host-side GEMM) and the simulated-GPU device workers. Chunk
// granularity for float work defaults to one cache line (16 floats) so two
// threads never write the same line — the optimization Sec. 5.1 of the paper
// calls out.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "common/aligned.hpp"
#include "common/error.hpp"

namespace psml {

class ThreadPool {
 public:
  // threads == 0 picks hardware_concurrency().
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  // Enqueue an arbitrary task; returns a future for its completion. Throws
  // psml::ShutdownError if the pool has been (or is being) destroyed — the
  // check happens under the queue lock, so a submit racing the destructor
  // either enqueues before shutdown (and the task runs: the destructor drains
  // the queue) or observes the stop and throws.
  template <typename F>
  std::future<void> submit(F&& f) {
    auto task = std::make_shared<std::packaged_task<void()>>(std::forward<F>(f));
    std::future<void> fut = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (stopping_) throw ShutdownError("ThreadPool::submit after shutdown");
      queue_.emplace([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  // Stops accepting work, runs every already-queued task, and joins the
  // workers. After this, submit() (and any parallel_for large enough to need
  // worker threads) throws psml::ShutdownError. Safe to race against
  // submit() (see above); must not be called concurrently with itself. The
  // destructor calls it.
  void shutdown();

  // Splits [begin, end) into contiguous chunks of at least `grain` elements,
  // runs body(chunk_begin, chunk_end) on pool threads + the calling thread,
  // and blocks until all chunks are done. Exceptions from the body are
  // propagated (first one wins).
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t, std::size_t)>& body,
                    std::size_t grain = kFloatsPerCacheLine);

  // Process-wide pool, lazily constructed. Size can be pinned via the
  // PSML_THREADS environment variable before first use.
  static ThreadPool& global();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

// Convenience free function using the global pool.
inline void parallel_for(std::size_t begin, std::size_t end,
                         const std::function<void(std::size_t, std::size_t)>& body,
                         std::size_t grain = kFloatsPerCacheLine) {
  ThreadPool::global().parallel_for(begin, end, body, grain);
}

}  // namespace psml
