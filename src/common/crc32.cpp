// Runtime dispatch and the portable slicing-by-8 tier for both CRC
// polynomials. The hardware kernels live in their own TUs (crc32_sse42.cpp,
// crc32_pclmul.cpp) so only those files carry vector ISA flags — this file
// must stay buildable for baseline x86-64 and non-x86.

#include "common/crc32.hpp"

#include <atomic>
#include <cstring>

namespace psml {

namespace detail {

// Implemented in the per-ISA TUs. Each returns the finished (post-inversion)
// CRC so the dispatch layer can chain tiers freely; on builds without the
// ISA the TU aliases the portable tier.
std::uint32_t crc32_pclmul(const void* data, std::size_t len,
                           std::uint32_t seed);
std::uint32_t crc32c_sse42(const void* data, std::size_t len,
                           std::uint32_t seed);
bool cpu_has_pclmul();
bool cpu_has_sse42();

namespace {

// Slicing-by-8: tables[k][b] is the CRC of byte b followed by k zero bytes,
// letting the loop fold 8 input bytes per iteration with two 32-bit loads.
struct SliceTables {
  std::uint32_t t[8][256];

  explicit SliceTables(const std::array<std::uint32_t, 256>& byte_table) {
    for (int i = 0; i < 256; ++i) t[0][i] = byte_table[static_cast<std::size_t>(i)];
    for (int k = 1; k < 8; ++k) {
      for (int i = 0; i < 256; ++i) {
        const std::uint32_t c = t[k - 1][i];
        t[k][i] = t[0][c & 0xffu] ^ (c >> 8);
      }
    }
  }
};

std::uint32_t crc_slice8(const SliceTables& s, const void* data,
                         std::size_t len, std::uint32_t seed) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::uint32_t c = seed ^ 0xffffffffu;
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
  while (len > 0 && (reinterpret_cast<std::uintptr_t>(p) & 7u) != 0) {
    c = s.t[0][(c ^ *p++) & 0xffu] ^ (c >> 8);
    --len;
  }
  while (len >= 8) {
    std::uint32_t lo, hi;
    std::memcpy(&lo, p, 4);
    std::memcpy(&hi, p + 4, 4);
    lo ^= c;
    c = s.t[7][lo & 0xffu] ^ s.t[6][(lo >> 8) & 0xffu] ^
        s.t[5][(lo >> 16) & 0xffu] ^ s.t[4][lo >> 24] ^ s.t[3][hi & 0xffu] ^
        s.t[2][(hi >> 8) & 0xffu] ^ s.t[1][(hi >> 16) & 0xffu] ^
        s.t[0][hi >> 24];
    p += 8;
    len -= 8;
  }
#endif
  while (len-- > 0) {
    c = s.t[0][(c ^ *p++) & 0xffu] ^ (c >> 8);
  }
  return c ^ 0xffffffffu;
}

const SliceTables& ieee_slices() {
  static const SliceTables s(kCrc32Table);
  return s;
}
const SliceTables& castagnoli_slices() {
  static const SliceTables s(kCrc32cTable);
  return s;
}

std::atomic<Crc32Isa> g_isa{Crc32Isa::kAuto};

}  // namespace
}  // namespace detail

void set_crc32_isa(Crc32Isa isa) {
  detail::g_isa.store(isa, std::memory_order_relaxed);
}

Crc32Isa crc32_isa() { return detail::g_isa.load(std::memory_order_relaxed); }

bool crc32_hw_available() { return detail::cpu_has_pclmul(); }
bool crc32c_hw_available() { return detail::cpu_has_sse42(); }

namespace {

// Resolves the forced/auto setting against CPU capability for one
// polynomial; `hw` says whether that polynomial's hardware tier exists here.
Crc32Isa resolve(bool hw) {
  switch (detail::g_isa.load(std::memory_order_relaxed)) {
    case Crc32Isa::kTable:
      return Crc32Isa::kTable;
    case Crc32Isa::kSlice8:
      return Crc32Isa::kSlice8;
    case Crc32Isa::kHw:
    case Crc32Isa::kAuto:
      break;
  }
  return hw ? Crc32Isa::kHw : Crc32Isa::kSlice8;
}

}  // namespace

std::uint32_t crc32(const void* data, std::size_t len, std::uint32_t seed) {
  switch (resolve(detail::cpu_has_pclmul())) {
    case Crc32Isa::kHw:
      return detail::crc32_pclmul(data, len, seed);
    case Crc32Isa::kSlice8:
      return detail::crc_slice8(detail::ieee_slices(), data, len, seed);
    default:
      return crc32_table(data, len, seed);
  }
}

std::uint32_t crc32c(const void* data, std::size_t len, std::uint32_t seed) {
  switch (resolve(detail::cpu_has_sse42())) {
    case Crc32Isa::kHw:
      return detail::crc32c_sse42(data, len, seed);
    case Crc32Isa::kSlice8:
      return detail::crc_slice8(detail::castagnoli_slices(), data, len, seed);
    default:
      return crc32c_table(data, len, seed);
  }
}

const char* crc32_kernel_name() {
  switch (resolve(detail::cpu_has_pclmul())) {
    case Crc32Isa::kHw:
      return "pclmul";
    case Crc32Isa::kSlice8:
      return "slice8";
    default:
      return "table";
  }
}

const char* crc32c_kernel_name() {
  switch (resolve(detail::cpu_has_sse42())) {
    case Crc32Isa::kHw:
      return "sse42";
    case Crc32Isa::kSlice8:
      return "slice8";
    default:
      return "table";
  }
}

}  // namespace psml
