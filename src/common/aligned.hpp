// Cache-line/SIMD aligned storage used by the tensor and device-memory
// subsystems. Alignment is 64 bytes so a row start never straddles a cache
// line and the compiler can emit aligned vector loads.
#pragma once

#include <cstddef>
#include <cstdlib>
#include <limits>
#include <new>

namespace psml {

inline constexpr std::size_t kCacheLineBytes = 64;
// A cache line holds 16 FP32 values; the CPU-parallel matrix kernels chunk
// work in multiples of this to avoid two threads writing one line (Sec. 5.1
// of the paper).
inline constexpr std::size_t kFloatsPerCacheLine = kCacheLineBytes / sizeof(float);

template <typename T>
struct AlignedAllocator {
  using value_type = T;

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U>&) noexcept {}

  T* allocate(std::size_t n) {
    if (n > std::numeric_limits<std::size_t>::max() / sizeof(T)) {
      throw std::bad_alloc();
    }
    std::size_t bytes = n * sizeof(T);
    // aligned_alloc requires size to be a multiple of alignment.
    bytes = (bytes + kCacheLineBytes - 1) / kCacheLineBytes * kCacheLineBytes;
    if (bytes == 0) bytes = kCacheLineBytes;
    void* p = std::aligned_alloc(kCacheLineBytes, bytes);
    if (p == nullptr) throw std::bad_alloc();
    return static_cast<T*>(p);
  }

  void deallocate(T* p, std::size_t) noexcept { std::free(p); }

  template <typename U>
  bool operator==(const AlignedAllocator<U>&) const noexcept {
    return true;
  }
};

}  // namespace psml
