// Environment-variable helpers for runtime knobs.
#pragma once

#include <cstddef>
#include <string>

namespace psml {

// Returns the value of `name` parsed as size_t, or `fallback` when unset or
// unparsable.
std::size_t env_size_t(const char* name, std::size_t fallback);

// Returns the value of `name` parsed as double, or `fallback`.
double env_double(const char* name, double fallback);

// Returns the value of `name`, or `fallback`.
std::string env_string(const char* name, const std::string& fallback);

}  // namespace psml
