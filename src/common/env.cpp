#include "common/env.hpp"

#include <cstdlib>

namespace psml {

std::size_t env_size_t(const char* name, std::size_t fallback) {
  const char* e = std::getenv(name);
  if (e == nullptr || *e == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(e, &end, 10);
  if (end == e) return fallback;
  return static_cast<std::size_t>(v);
}

double env_double(const char* name, double fallback) {
  const char* e = std::getenv(name);
  if (e == nullptr || *e == '\0') return fallback;
  char* end = nullptr;
  const double v = std::strtod(e, &end);
  if (end == e) return fallback;
  return v;
}

std::string env_string(const char* name, const std::string& fallback) {
  const char* e = std::getenv(name);
  if (e == nullptr) return fallback;
  return std::string(e);
}

}  // namespace psml
