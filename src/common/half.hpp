// Software IEEE 754 binary16 ("half") used by the simulated Tensor Core GEMM
// path (sgpu::gemm_tc). Storage is a 16-bit word; arithmetic is performed by
// converting to float, exactly like hardware FP16 multiply with FP32
// accumulate.
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>

namespace psml {

// Round-to-nearest-even float32 -> binary16 conversion.
inline std::uint16_t float_to_half_bits(float f) {
  std::uint32_t x = std::bit_cast<std::uint32_t>(f);
  const std::uint32_t sign = (x >> 16) & 0x8000u;
  x &= 0x7fffffffu;

  if (x >= 0x47800000u) {              // overflow or inf/nan
    if (x > 0x7f800000u) {             // NaN: keep a payload bit
      return static_cast<std::uint16_t>(sign | 0x7e00u);
    }
    return static_cast<std::uint16_t>(sign | 0x7c00u);  // +-inf
  }
  if (x < 0x38800000u) {  // subnormal half or zero
    if (x < 0x33000000u) return static_cast<std::uint16_t>(sign);  // -> 0
    const std::uint32_t exp = x >> 23;
    const std::uint32_t mant = (x & 0x7fffffu) | 0x800000u;
    // Subnormal half value = mant24 * 2^(E-23); expressed in units of the
    // half subnormal ulp 2^-24 that is mant24 >> (126 - exp).
    const std::uint32_t shift = 126 - exp;  // bits dropped
    std::uint32_t half_mant = mant >> shift;
    // round to nearest even
    const std::uint32_t rem = mant & ((1u << shift) - 1);
    const std::uint32_t halfway = 1u << (shift - 1);
    if (rem > halfway || (rem == halfway && (half_mant & 1u))) ++half_mant;
    return static_cast<std::uint16_t>(sign | half_mant);
  }
  // normal case
  const std::uint32_t exp = (x >> 23) - 112u;
  const std::uint32_t mant = (x >> 13) & 0x3ffu;
  // round to nearest even on the 13 dropped bits
  const std::uint32_t rem = x & 0x1fffu;
  std::uint32_t out = (exp << 10) | mant;
  if (rem > 0x1000u || (rem == 0x1000u && (out & 1u))) ++out;  // may carry into exp: fine
  return static_cast<std::uint16_t>(sign | out);
}

inline float half_bits_to_float(std::uint16_t h) {
  const std::uint32_t sign = static_cast<std::uint32_t>(h & 0x8000u) << 16;
  const std::uint32_t exp = (h >> 10) & 0x1fu;
  const std::uint32_t mant = h & 0x3ffu;
  std::uint32_t out;
  if (exp == 0) {
    if (mant == 0) {
      out = sign;  // zero
    } else {
      // subnormal: normalize
      int e = -1;
      std::uint32_t m = mant;
      while ((m & 0x400u) == 0) {
        m <<= 1;
        ++e;
      }
      m &= 0x3ffu;
      out = sign | ((113u - 1u - static_cast<std::uint32_t>(e)) << 23) | (m << 13);
    }
  } else if (exp == 0x1f) {
    out = sign | 0x7f800000u | (mant << 13);  // inf/nan
  } else {
    out = sign | ((exp + 112u) << 23) | (mant << 13);
  }
  return std::bit_cast<float>(out);
}

// Value type wrapper; implicit conversions keep kernel code readable.
struct half_t {
  std::uint16_t bits = 0;

  half_t() = default;
  explicit half_t(float f) : bits(float_to_half_bits(f)) {}
  explicit operator float() const { return half_bits_to_float(bits); }

  friend bool operator==(half_t a, half_t b) { return a.bits == b.bits; }
};

static_assert(sizeof(half_t) == 2, "half_t must be 2 bytes");

}  // namespace psml
