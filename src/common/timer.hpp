// Wall-clock timers used by the profiler and the benchmark harnesses.
#pragma once

#include <chrono>
#include <cstdint>

namespace psml {

// Monotonic wall timer with nanosecond resolution.
class Timer {
 public:
  using clock = std::chrono::steady_clock;

  Timer() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  // Seconds elapsed since construction / last reset().
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  double millis() const { return seconds() * 1e3; }
  std::int64_t nanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() -
                                                                start_)
        .count();
  }

 private:
  clock::time_point start_;
};

// Accumulating stopwatch: sums disjoint timed intervals.
class Stopwatch {
 public:
  void start() {
    running_ = true;
    t_.reset();
  }
  void stop() {
    if (running_) {
      total_ += t_.seconds();
      running_ = false;
    }
  }
  void add(double seconds) { total_ += seconds; }
  double seconds() const { return total_ + (running_ ? t_.seconds() : 0.0); }
  void reset() {
    total_ = 0.0;
    running_ = false;
  }

 private:
  Timer t_;
  double total_ = 0.0;
  bool running_ = false;
};

// RAII scope timer adding to a Stopwatch.
class ScopedTimer {
 public:
  explicit ScopedTimer(Stopwatch& sw) : sw_(sw) { sw_.start(); }
  ~ScopedTimer() { sw_.stop(); }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Stopwatch& sw_;
};

}  // namespace psml
