// Minimal leveled logger. Off by default above WARN; controlled by the
// PSML_LOG environment variable (trace|debug|info|warn|error) or
// set_log_level().
#pragma once

#include <sstream>
#include <string>

namespace psml {

enum class LogLevel : int { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

LogLevel log_level();
void set_log_level(LogLevel level);

namespace detail {
void log_emit(LogLevel level, const std::string& msg);
}

#define PSML_LOG(level, ...)                                       \
  do {                                                             \
    if (static_cast<int>(level) >=                                 \
        static_cast<int>(::psml::log_level())) {                   \
      std::ostringstream psml_log_os_;                             \
      psml_log_os_ << __VA_ARGS__;                                 \
      ::psml::detail::log_emit(level, psml_log_os_.str());         \
    }                                                              \
  } while (0)

#define PSML_TRACE(...) PSML_LOG(::psml::LogLevel::kTrace, __VA_ARGS__)
#define PSML_DEBUG(...) PSML_LOG(::psml::LogLevel::kDebug, __VA_ARGS__)
#define PSML_INFO(...) PSML_LOG(::psml::LogLevel::kInfo, __VA_ARGS__)
#define PSML_WARN(...) PSML_LOG(::psml::LogLevel::kWarn, __VA_ARGS__)
#define PSML_ERROR(...) PSML_LOG(::psml::LogLevel::kError, __VA_ARGS__)

}  // namespace psml
