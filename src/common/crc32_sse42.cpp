// CRC-32C hardware tier: the SSE4.2 crc32 instruction family. This is the
// only TU compiled with -msse4.2 in psml_common; it is reached solely through
// the __builtin_cpu_supports dispatch in crc32.cpp, so the rest of the
// library stays baseline x86-64 (and this file degrades to the table walk on
// compilers/targets without the ISA).

#include "common/crc32.hpp"

#if defined(__SSE4_2__)
#include <nmmintrin.h>

#include <cstring>
#endif

namespace psml {
namespace detail {

#if defined(__SSE4_2__)

bool cpu_has_sse42() { return __builtin_cpu_supports("sse4.2"); }

std::uint32_t crc32c_sse42(const void* data, std::size_t len,
                           std::uint32_t seed) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::uint32_t c = seed ^ 0xffffffffu;
  while (len > 0 && (reinterpret_cast<std::uintptr_t>(p) & 7u) != 0) {
    c = _mm_crc32_u8(c, *p++);
    --len;
  }
  std::uint64_t c64 = c;
  while (len >= 8) {
    std::uint64_t v;
    std::memcpy(&v, p, 8);
    c64 = _mm_crc32_u64(c64, v);
    p += 8;
    len -= 8;
  }
  c = static_cast<std::uint32_t>(c64);
  while (len-- > 0) {
    c = _mm_crc32_u8(c, *p++);
  }
  return c ^ 0xffffffffu;
}

#else  // !__SSE4_2__

bool cpu_has_sse42() { return false; }

std::uint32_t crc32c_sse42(const void* data, std::size_t len,
                           std::uint32_t seed) {
  return crc32c_table(data, len, seed);  // unreachable via dispatch
}

#endif

}  // namespace detail
}  // namespace psml
