#include "common/error.hpp"

#include <sstream>

namespace psml::detail {

void throw_check_failed(const char* kind, const char* expr, const char* file,
                        int line, const std::string& msg) {
  std::ostringstream os;
  os << kind << " failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}

}  // namespace psml::detail
