#include "common/thread_pool.hpp"

#include <algorithm>
#include <exception>

#include "common/env.hpp"
#include "common/error.hpp"

namespace psml {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() { shutdown(); }

void ThreadPool::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stopping_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& body,
    std::size_t grain) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  grain = std::max<std::size_t>(grain, 1);
  const std::size_t max_chunks = (n + grain - 1) / grain;
  // One chunk per worker plus the caller; more would only add scheduling
  // overhead for memory-bound loops.
  const std::size_t chunks = std::min(max_chunks, size() + 1);
  if (chunks <= 1) {
    body(begin, end);
    return;
  }
  // Round the per-chunk size up to a multiple of `grain` so chunk borders sit
  // on grain (cache line) boundaries.
  std::size_t per = (n + chunks - 1) / chunks;
  per = (per + grain - 1) / grain * grain;

  std::atomic<std::size_t> next{begin};
  std::exception_ptr first_error;
  std::mutex error_mutex;

  auto run_chunks = [&] {
    for (;;) {
      const std::size_t lo = next.fetch_add(per);
      if (lo >= end) return;
      const std::size_t hi = std::min(lo + per, end);
      try {
        body(lo, hi);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
        return;
      }
    }
  };

  std::vector<std::future<void>> futs;
  futs.reserve(chunks - 1);
  for (std::size_t i = 0; i + 1 < chunks; ++i) futs.push_back(submit(run_chunks));
  run_chunks();
  for (auto& f : futs) f.wait();
  if (first_error) std::rethrow_exception(first_error);
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool(env_size_t("PSML_THREADS", 0));
  return pool;
}

}  // namespace psml
