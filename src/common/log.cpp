#include "common/log.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace psml {

namespace {

LogLevel level_from_env() {
  const char* e = std::getenv("PSML_LOG");
  if (e == nullptr) return LogLevel::kWarn;
  if (std::strcmp(e, "trace") == 0) return LogLevel::kTrace;
  if (std::strcmp(e, "debug") == 0) return LogLevel::kDebug;
  if (std::strcmp(e, "info") == 0) return LogLevel::kInfo;
  if (std::strcmp(e, "warn") == 0) return LogLevel::kWarn;
  if (std::strcmp(e, "error") == 0) return LogLevel::kError;
  if (std::strcmp(e, "off") == 0) return LogLevel::kOff;
  return LogLevel::kWarn;
}

std::atomic<int> g_level{static_cast<int>(level_from_env())};
std::mutex g_emit_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    default: return "?";
  }
}

}  // namespace

LogLevel log_level() { return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed)); }

void set_log_level(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

namespace detail {
void log_emit(LogLevel level, const std::string& msg) {
  std::lock_guard<std::mutex> lock(g_emit_mutex);
  std::fprintf(stderr, "[psml %s] %s\n", level_name(level), msg.c_str());
}
}  // namespace detail

}  // namespace psml
