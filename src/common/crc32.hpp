// CRC-32 (IEEE 802.3, reflected 0xEDB88320) and CRC-32C (Castagnoli,
// reflected 0x82F63B78) with runtime-dispatched hardware kernels.
//
// Used by the transport layer to checksum frame headers and payloads so a
// corrupt or truncated stream is detected as a typed NetworkError instead of
// being delivered to the protocol. Not cryptographic — it protects against
// accidental corruption, not an adversary (the MPC threat model already
// assumes semi-honest parties on the wire).
//
// Three implementation tiers per polynomial, selected at runtime (the PR 4
// TU-per-ISA pattern: only crc32_sse42.cpp / crc32_pclmul.cpp are built with
// vector ISA flags, and they are reached solely through __builtin_cpu_supports
// dispatch, so the library still runs on baseline x86-64 and non-x86):
//
//   table   byte-at-a-time table walk — the seed implementation, kept as the
//           reference oracle and the portability floor
//   slice8  slicing-by-8 (8 tables, one 64-bit load per step) — portable,
//           ~4x the table tier
//   hw      CRC-32C: the SSE4.2 crc32q instruction (~1 byte/cycle/lane);
//           CRC-32: PCLMUL 4-way 128-bit folding per the Intel CRC paper
//
// All entry points share the same chaining convention: pass a previous
// result as `seed` to extend a checksum over discontiguous buffers
// (crc(A||B) == crc(B, len_b, crc(A, len_a))).
//
// The wire uses CRC-32 for frame headers unconditionally and negotiates
// CRC-32C for payloads in the "PSMH" hello (see net/tcp_channel.hpp).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace psml {

namespace detail {

constexpr std::array<std::uint32_t, 256> make_crc_table(std::uint32_t poly) {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? (poly ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

inline constexpr std::array<std::uint32_t, 256> kCrc32Table =
    make_crc_table(0xedb88320u);
inline constexpr std::array<std::uint32_t, 256> kCrc32cTable =
    make_crc_table(0x82f63b78u);

inline std::uint32_t crc_table_walk(
    const std::array<std::uint32_t, 256>& table, const void* data,
    std::size_t len, std::uint32_t seed) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::uint32_t c = seed ^ 0xffffffffu;
  for (std::size_t i = 0; i < len; ++i) {
    c = table[(c ^ p[i]) & 0xffu] ^ (c >> 8);
  }
  return c ^ 0xffffffffu;
}

}  // namespace detail

// Reference byte-at-a-time tiers (always available, any alignment/length).
inline std::uint32_t crc32_table(const void* data, std::size_t len,
                                 std::uint32_t seed = 0) {
  return detail::crc_table_walk(detail::kCrc32Table, data, len, seed);
}
inline std::uint32_t crc32c_table(const void* data, std::size_t len,
                                  std::uint32_t seed = 0) {
  return detail::crc_table_walk(detail::kCrc32cTable, data, len, seed);
}

// Dispatched entry points: fastest tier the CPU supports (or the forced one).
std::uint32_t crc32(const void* data, std::size_t len, std::uint32_t seed = 0);
std::uint32_t crc32c(const void* data, std::size_t len,
                     std::uint32_t seed = 0);

// Forced-ISA override for tests and benchmarks. kAuto picks the best
// available tier; forcing a tier the CPU lacks silently falls back to the
// best one below it (kHw -> kSlice8 -> kTable), mirroring set_gemm_isa.
enum class Crc32Isa { kAuto, kTable, kSlice8, kHw };
void set_crc32_isa(Crc32Isa isa);
Crc32Isa crc32_isa();

// Resolved kernel names for the current setting, e.g. "pclmul" / "sse42" /
// "slice8" / "table" — what BENCH_comm.json records.
const char* crc32_kernel_name();   // IEEE polynomial kernel
const char* crc32c_kernel_name();  // Castagnoli polynomial kernel

// Hardware tier availability on this CPU (regardless of the forced ISA).
bool crc32_hw_available();   // PCLMUL folding for CRC-32
bool crc32c_hw_available();  // SSE4.2 crc32 instruction for CRC-32C

}  // namespace psml
