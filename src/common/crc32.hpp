// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), table-driven.
//
// Used by the transport layer to checksum frame headers and payloads so a
// corrupt or truncated stream is detected as a typed NetworkError instead of
// being delivered to the protocol. Not cryptographic — it protects against
// accidental corruption, not an adversary (the MPC threat model already
// assumes semi-honest parties on the wire).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace psml {

namespace detail {

constexpr std::array<std::uint32_t, 256> make_crc32_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? (0xedb88320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

inline constexpr std::array<std::uint32_t, 256> kCrc32Table =
    make_crc32_table();

}  // namespace detail

// One-shot / chainable CRC-32. Pass a previous result as `seed` to extend a
// checksum over discontiguous buffers.
inline std::uint32_t crc32(const void* data, std::size_t len,
                           std::uint32_t seed = 0) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::uint32_t c = seed ^ 0xffffffffu;
  for (std::size_t i = 0; i < len; ++i) {
    c = detail::kCrc32Table[(c ^ p[i]) & 0xffu] ^ (c >> 8);
  }
  return c ^ 0xffffffffu;
}

}  // namespace psml
