#include "mpc/ring_protocol.hpp"

#include <future>

#include "net/serialize.hpp"
#include "profile/profiler.hpp"

namespace psml::mpc {

namespace {

MatrixU64 exchange_u64(PartyContext& ctx, net::Tag tag, const MatrixU64& mine) {
  if (!ctx.peer().send_may_block()) {
    net::send_matrix(ctx.peer(), tag, mine);
    return net::recv_matrix_u64(ctx.peer(), tag);
  }
  auto sent = std::async(std::launch::async, [&] {
    net::send_matrix(ctx.peer(), tag, mine);
  });
  MatrixU64 theirs = net::recv_matrix_u64(ctx.peer(), tag);
  sent.get();
  return theirs;
}

}  // namespace

std::pair<RingTripletShare, RingTripletShare> make_ring_matmul_triplet(
    std::size_t m, std::size_t k, std::size_t n, std::uint64_t seed) {
  // U, V are uniform over the full ring (information-theoretic masking of
  // the opened E = A - U, F = B - V); the Beaver identity and the final
  // truncation are scale-agnostic, so no fixed-point structure is needed.
  MatrixU64 u(m, k), v(k, n);
  rng::fill_uniform_u64_par(u, seed ^ 0xA);
  rng::fill_uniform_u64_par(v, seed ^ 0xB);
  MatrixU64 z = ring_matmul(u, v);

  auto su = share_ring(u, seed ^ 0x1);
  auto sv = share_ring(v, seed ^ 0x2);
  auto sz = share_ring(z, seed ^ 0x3);
  return {RingTripletShare{std::move(su.s0), std::move(sv.s0), std::move(sz.s0)},
          RingTripletShare{std::move(su.s1), std::move(sv.s1), std::move(sz.s1)}};
}

MatrixU64 secure_matmul_ring(PartyContext& ctx, const MatrixU64& a_i,
                             const MatrixU64& b_i,
                             const RingTripletShare& triplet, bool truncate) {
  PSML_REQUIRE(a_i.same_shape(triplet.u) && b_i.same_shape(triplet.v),
               "secure_matmul_ring: triplet shape mismatch");
  auto& prof = profile::Profiler::global();
  const std::uint32_t seq = ctx.next_seq();

  MatrixU64 e_i, f_i;
  {
    profile::ScopedPhase sp(prof, "online.compute1");
    e_i = ring_sub(a_i, triplet.u);
    f_i = ring_sub(b_i, triplet.v);
  }

  MatrixU64 e, f;
  {
    profile::ScopedPhase sp(prof, "online.communicate");
    const net::Tag te = tags::kExchangeE + (seq & 0x00ffffffu);
    const net::Tag tf = tags::kExchangeF + (seq & 0x00ffffffu);
    MatrixU64 e_peer = exchange_u64(ctx, te, e_i);
    MatrixU64 f_peer = exchange_u64(ctx, tf, f_i);
    e = reconstruct_ring(e_i, e_peer);
    f = reconstruct_ring(f_i, f_peer);
  }

  profile::ScopedPhase sp(prof, "online.compute2");
  // C_i = (-i) E x F + A_i x F + E x B_i + Z_i over Z_2^64.
  MatrixU64 c = ring_matmul(a_i, f);
  c = ring_add(c, ring_matmul(e, b_i));
  c = ring_add(c, triplet.z);
  if (ctx.id() == 1) {
    c = ring_sub(c, ring_matmul(e, f));
  }
  if (truncate) {
    c = truncate_share(c, ctx.id());
  }
  return c;
}

}  // namespace psml::mpc
