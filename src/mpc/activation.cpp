#include "mpc/activation.hpp"

#include <future>

#include "mpc/secure_mul.hpp"
#include "profile/profiler.hpp"
#include "tensor/ops.hpp"

namespace psml::mpc {

namespace {

// Opens a shared matrix between the two servers (both learn the value).
MatrixF open_shares(PartyContext& ctx, const MatrixF& mine, net::Tag tag) {
  // Opened values are fresh random-looking masks every epoch; delta
  // compression cannot help, so bypass it with a raw dense send.
  std::future<void> sent;
  if (ctx.peer().send_may_block()) {
    sent = std::async(std::launch::async, [&] {
      ctx.peer().send(tag, net::encode_matrix(mine));
    });
  } else {
    ctx.peer().send(tag, net::encode_matrix(mine));
  }
  const net::Message msg = ctx.peer().recv(tag);
  if (sent.valid()) sent.get();
  MatrixF theirs = net::decode_matrix_f32(msg.payload.data(), msg.payload.size());
  MatrixF out;
  tensor::add(mine, theirs, out);
  return out;
}

}  // namespace

ActivationResult secure_activation(PartyContext& ctx, const MatrixF& x_i,
                                   const ActivationShare& material,
                                   std::uint64_t comm_key) {
  PSML_REQUIRE(x_i.same_shape(material.s_lo),
               "secure_activation: material shape mismatch");
  auto& prof = profile::Profiler::global();
  const float i = static_cast<float>(ctx.id());

  // Shares of Y_lo = X + 1/2 and Y_hi = X - 1/2 (constants go to party 1).
  MatrixF y_lo = x_i, y_hi = x_i;
  if (ctx.id() == 1) {
    for (std::size_t idx = 0; idx < y_lo.size(); ++idx) {
      y_lo.data()[idx] += 0.5f;
      y_hi.data()[idx] -= 0.5f;
    }
  }

  // Masked products, securely computed then opened. sign(Y .* S) = sign(Y).
  MatrixF m_lo =
      secure_mul(ctx, y_lo, material.s_lo, material.t_lo, comm_key);
  MatrixF m_hi =
      secure_mul(ctx, y_hi, material.s_hi, material.t_hi, comm_key);

  const std::uint32_t seq = ctx.next_seq();
  MatrixF open_lo, open_hi;
  {
    profile::ScopedPhase sp(prof, "online.communicate");
    open_lo = open_shares(ctx, m_lo, tags::kOpenMasked + (seq & 0xffffffu));
    open_hi =
        open_shares(ctx, m_hi, tags::kOpenMasked + 0x800000u + (seq & 0x7fffffu));
  }

  profile::ScopedPhase sp(prof, "online.compute2");
  ActivationResult out;
  out.value_share.resize(x_i.rows(), x_i.cols());
  out.grad_mask.resize(x_i.rows(), x_i.cols());
  for (std::size_t idx = 0; idx < x_i.size(); ++idx) {
    const bool below = open_lo.data()[idx] < 0.0f;   // X < -1/2
    const bool above = open_hi.data()[idx] > 0.0f;   // X > 1/2
    if (below) {
      out.value_share.data()[idx] = 0.0f;
      out.grad_mask.data()[idx] = 0.0f;
    } else if (above) {
      out.value_share.data()[idx] = i;  // shares (0, 1) reconstruct to 1
      out.grad_mask.data()[idx] = 0.0f;
    } else {
      out.value_share.data()[idx] = x_i.data()[idx] + i * 0.5f;
      out.grad_mask.data()[idx] = 1.0f;
    }
  }
  return out;
}

ActivationResult secure_activation(PartyContext& ctx, const MatrixF& x_i,
                                   std::uint64_t comm_key) {
  const ActivationShare material = ctx.triplets().pop_activation();
  return secure_activation(ctx, x_i, material, comm_key);
}

MatrixF secure_less_than(PartyContext& ctx, const MatrixF& x_i, float c,
                         const ActivationShare& material,
                         std::uint64_t comm_key) {
  PSML_REQUIRE(x_i.same_shape(material.s_lo),
               "secure_less_than: material shape mismatch");
  auto& prof = profile::Profiler::global();

  // Shares of Y = X - c (constant to party 1); sign(Y .* S) = sign(Y).
  MatrixF y = x_i;
  if (ctx.id() == 1) {
    for (std::size_t idx = 0; idx < y.size(); ++idx) y.data()[idx] -= c;
  }
  MatrixF masked = secure_mul(ctx, y, material.s_lo, material.t_lo, comm_key);

  const std::uint32_t seq = ctx.next_seq();
  MatrixF opened;
  {
    profile::ScopedPhase sp(prof, "online.communicate");
    opened = open_shares(ctx, masked, tags::kOpenMasked + (seq & 0xffffffu));
  }
  MatrixF mask(x_i.rows(), x_i.cols());
  for (std::size_t idx = 0; idx < mask.size(); ++idx) {
    mask.data()[idx] = opened.data()[idx] < 0.0f ? 1.0f : 0.0f;
  }
  return mask;
}

MatrixF activation_ref(const MatrixF& x) {
  MatrixF out(x.rows(), x.cols());
  for (std::size_t idx = 0; idx < x.size(); ++idx) {
    const float v = x.data()[idx];
    out.data()[idx] = v < -0.5f ? 0.0f : (v > 0.5f ? 1.0f : v + 0.5f);
  }
  return out;
}

MatrixF activation_grad_ref(const MatrixF& x) {
  MatrixF out(x.rows(), x.cols());
  for (std::size_t idx = 0; idx < x.size(); ++idx) {
    const float v = x.data()[idx];
    out.data()[idx] = (v > -0.5f && v < 0.5f) ? 1.0f : 0.0f;
  }
  return out;
}

}  // namespace psml::mpc
