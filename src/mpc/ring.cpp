#include "mpc/ring.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "tensor/gemm_kernel.hpp"

namespace psml::mpc {

MatrixU64 encode_fixed(const MatrixF& x) {
  MatrixU64 out(x.rows(), x.cols());
  for (std::size_t i = 0; i < x.size(); ++i) {
    out.data()[i] = encode_fixed(static_cast<double>(x.data()[i]));
  }
  return out;
}

MatrixF decode_fixed(const MatrixU64& v) {
  MatrixF out(v.rows(), v.cols());
  for (std::size_t i = 0; i < v.size(); ++i) {
    out.data()[i] = static_cast<float>(decode_fixed(v.data()[i]));
  }
  return out;
}

MatrixU64 ring_add(const MatrixU64& a, const MatrixU64& b) {
  PSML_REQUIRE(a.same_shape(b), "ring_add: shape mismatch");
  MatrixU64 out(a.rows(), a.cols());
  for (std::size_t i = 0; i < a.size(); ++i) {
    out.data()[i] = a.data()[i] + b.data()[i];
  }
  return out;
}

MatrixU64 ring_sub(const MatrixU64& a, const MatrixU64& b) {
  PSML_REQUIRE(a.same_shape(b), "ring_sub: shape mismatch");
  MatrixU64 out(a.rows(), a.cols());
  for (std::size_t i = 0; i < a.size(); ++i) {
    out.data()[i] = a.data()[i] - b.data()[i];
  }
  return out;
}

MatrixU64 ring_matmul(const MatrixU64& a, const MatrixU64& b) {
  PSML_REQUIRE(a.cols() == b.rows(), "ring_matmul: inner dims disagree");
  const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
  MatrixU64 c(m, n, 0);
  // Packed-panel engine shared with the f32 GEMM path (branch-free: the seed
  // kernel's `av == 0` skip is gone). Ring arithmetic is exact mod 2^64, so
  // the 2-D tile parallelism cannot change results; the cutoff only avoids
  // pool overhead on the small online-step multiplies.
  tensor::detail::GemmArgsU64 g;
  g.m = m;
  g.n = n;
  g.k = k;
  g.alpha = 1;
  g.beta = 0;
  g.a = a.data();
  g.a_rs = k;
  g.a_cs = 1;
  g.b = b.data();
  g.b_rs = n;
  g.b_cs = 1;
  g.c = c.data();
  g.ldc = n;
  g.parallel = m * n * k >= (std::size_t{1} << 18);
  tensor::detail::gemm_u64_auto(g);
  return c;
}

MatrixU64 ring_scale_share(const MatrixU64& share, double c, int party) {
  const std::uint64_t enc = encode_fixed(c);
  MatrixU64 scaled(share.rows(), share.cols());
  for (std::size_t i = 0; i < share.size(); ++i) {
    scaled.data()[i] = share.data()[i] * enc;
  }
  return truncate_share(scaled, party);
}

MatrixU64 truncate_share(const MatrixU64& share, int party) {
  PSML_REQUIRE(party == 0 || party == 1, "truncate_share: party must be 0/1");
  MatrixU64 out(share.rows(), share.cols());
  for (std::size_t i = 0; i < share.size(); ++i) {
    const std::uint64_t v = share.data()[i];
    if (party == 0) {
      out.data()[i] = static_cast<std::uint64_t>(
          static_cast<std::int64_t>(v) >> kFracBits);
    } else {
      // Party 1 truncates the negation so that t0 + t1 ~ trunc(v0 + v1).
      out.data()[i] = static_cast<std::uint64_t>(
          -(static_cast<std::int64_t>(-v) >> kFracBits));
    }
  }
  return out;
}

}  // namespace psml::mpc
