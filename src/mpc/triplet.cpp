#include "mpc/triplet.hpp"

#include "sgpu/ops.hpp"
#include "tensor/gemm.hpp"

namespace psml::mpc {

namespace {

// splitmix64 step for the dealer's seed chain.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

void TripletStore::set_recycle(bool recycle) {
  recycle_ = recycle;
  matmul_cursor_ = 0;
  elem_cursor_ = 0;
  act_cursor_ = 0;
}

void TripletStore::set_retain(bool retain) {
  retain_ = retain;
  matmul_cursor_ = 0;
  elem_cursor_ = 0;
  act_cursor_ = 0;
}

TripletStore::Mark TripletStore::mark() const {
  PSML_CHECK_MSG(retain_ || recycle_,
                 "TripletStore::mark needs retain or recycle mode");
  return Mark{matmul_cursor_, elem_cursor_, act_cursor_};
}

void TripletStore::rewind(const Mark& mark) {
  PSML_CHECK_MSG(retain_ || recycle_,
                 "TripletStore::rewind needs retain or recycle mode");
  matmul_cursor_ = mark.matmul;
  elem_cursor_ = mark.elem;
  act_cursor_ = mark.act;
}

TripletShare TripletStore::pop_matmul() {
  PSML_CHECK_MSG(!matmul_.empty(), "offline matmul triplets exhausted");
  if (recycle_) {
    TripletShare t = matmul_[matmul_cursor_];
    matmul_cursor_ = (matmul_cursor_ + 1) % matmul_.size();
    return t;
  }
  if (retain_) {
    PSML_CHECK_MSG(matmul_cursor_ < matmul_.size(),
                   "offline matmul triplets exhausted");
    return matmul_[matmul_cursor_++];
  }
  TripletShare t = std::move(matmul_.front());
  matmul_.pop_front();
  return t;
}

TripletShare TripletStore::pop_elementwise() {
  PSML_CHECK_MSG(!elem_.empty(), "offline elementwise triplets exhausted");
  if (recycle_) {
    TripletShare t = elem_[elem_cursor_];
    elem_cursor_ = (elem_cursor_ + 1) % elem_.size();
    return t;
  }
  if (retain_) {
    PSML_CHECK_MSG(elem_cursor_ < elem_.size(),
                   "offline elementwise triplets exhausted");
    return elem_[elem_cursor_++];
  }
  TripletShare t = std::move(elem_.front());
  elem_.pop_front();
  return t;
}

ActivationShare TripletStore::pop_activation() {
  PSML_CHECK_MSG(!act_.empty(), "offline activation material exhausted");
  if (recycle_) {
    ActivationShare a = act_[act_cursor_];
    act_cursor_ = (act_cursor_ + 1) % act_.size();
    return a;
  }
  if (retain_) {
    PSML_CHECK_MSG(act_cursor_ < act_.size(),
                   "offline activation material exhausted");
    return act_[act_cursor_++];
  }
  ActivationShare a = std::move(act_.front());
  act_.pop_front();
  return a;
}

std::size_t TripletStore::bytes() const {
  std::size_t total = 0;
  for (const auto& t : matmul_) total += t.u.bytes() + t.v.bytes() + t.z.bytes();
  for (const auto& t : elem_) total += t.u.bytes() + t.v.bytes() + t.z.bytes();
  for (const auto& a : act_) {
    total += a.t_lo.u.bytes() + a.t_lo.v.bytes() + a.t_lo.z.bytes();
    total += a.t_hi.u.bytes() + a.t_hi.v.bytes() + a.t_hi.z.bytes();
    total += a.s_lo.bytes() + a.s_hi.bytes();
  }
  return total;
}

TripletDealer::TripletDealer(sgpu::Device* device, DealerOptions opts)
    : device_(device), opts_(opts) {
  seed_state_ = opts_.seed != 0 ? opts_.seed : rng::random_seed();
  if (opts_.use_gpu) {
    PSML_REQUIRE(device_ != nullptr, "dealer: use_gpu requires a device");
  }
}

std::uint64_t TripletDealer::next_seed() {
  seed_state_ = mix64(seed_state_);
  return seed_state_;
}

std::pair<TripletShare, TripletShare> TripletDealer::make_matmul(
    std::size_t m, std::size_t k, std::size_t n) {
  MatrixF u(m, k), v(k, n);
  rng::fill_uniform_par(u, -1.0f, 1.0f, next_seed());
  rng::fill_uniform_par(v, -1.0f, 1.0f, next_seed());

  MatrixF z;
  // Profiling-guided adaptive offline (Sec. 4.2): small Z = U x V products
  // never amortize the device round trip, so they stay on the CPU even in
  // GPU mode.
  const bool big_enough = 2.0 * static_cast<double>(m) * k * n >=
                          static_cast<double>(1 << 21);
  if (opts_.use_gpu && big_enough) {
    z = sgpu::device_matmul(*device_, u, v);
  } else if (opts_.naive_cpu) {
    z = tensor::matmul_naive(u, v);
  } else {
    z = tensor::matmul(u, v);
  }

  auto su = share_float(u, next_seed());
  auto sv = share_float(v, next_seed());
  auto sz = share_float(z, next_seed());
  return {TripletShare{std::move(su.s0), std::move(sv.s0), std::move(sz.s0)},
          TripletShare{std::move(su.s1), std::move(sv.s1), std::move(sz.s1)}};
}

std::pair<TripletShare, TripletShare> TripletDealer::make_elementwise(
    std::size_t m, std::size_t n) {
  MatrixF u(m, n), v(m, n), z;
  rng::fill_uniform_par(u, -1.0f, 1.0f, next_seed());
  rng::fill_uniform_par(v, -1.0f, 1.0f, next_seed());
  tensor::hadamard(u, v, z);

  auto su = share_float(u, next_seed());
  auto sv = share_float(v, next_seed());
  auto sz = share_float(z, next_seed());
  return {TripletShare{std::move(su.s0), std::move(sv.s0), std::move(sz.s0)},
          TripletShare{std::move(su.s1), std::move(sv.s1), std::move(sz.s1)}};
}

std::pair<ActivationShare, ActivationShare> TripletDealer::make_activation(
    std::size_t m, std::size_t n) {
  auto [lo0, lo1] = make_elementwise(m, n);
  auto [hi0, hi1] = make_elementwise(m, n);

  // Positive multiplicative masks. Bounded away from zero so sign(y * s)
  // is numerically robust in float.
  MatrixF s_lo(m, n), s_hi(m, n);
  rng::fill_uniform_par(s_lo, 0.5f, 2.0f, next_seed());
  rng::fill_uniform_par(s_hi, 0.5f, 2.0f, next_seed());
  auto ss_lo = share_float(s_lo, next_seed());
  auto ss_hi = share_float(s_hi, next_seed());

  ActivationShare a0{std::move(lo0), std::move(hi0), std::move(ss_lo.s0),
                     std::move(ss_hi.s0)};
  ActivationShare a1{std::move(lo1), std::move(hi1), std::move(ss_lo.s1),
                     std::move(ss_hi.s1)};
  return {std::move(a0), std::move(a1)};
}

std::pair<TripletStore, TripletStore> TripletDealer::generate(
    const std::vector<TripletSpec>& plan) {
  TripletStore st0, st1;
  for (const auto& spec : plan) {
    switch (spec.kind) {
      case TripletKind::kMatMul: {
        auto [t0, t1] = make_matmul(spec.m, spec.k, spec.n);
        st0.push_matmul(std::move(t0));
        st1.push_matmul(std::move(t1));
        break;
      }
      case TripletKind::kElementwise: {
        auto [t0, t1] = make_elementwise(spec.m, spec.n);
        st0.push_elementwise(std::move(t0));
        st1.push_elementwise(std::move(t1));
        break;
      }
      case TripletKind::kActivation: {
        auto [a0, a1] = make_activation(spec.m, spec.n);
        st0.push_activation(std::move(a0));
        st1.push_activation(std::move(a1));
        break;
      }
    }
  }
  return {std::move(st0), std::move(st1)};
}

}  // namespace psml::mpc
