#include "mpc/secure_mul.hpp"

#include <future>
#include <utility>

#include "profile/profiler.hpp"
#include "tensor/ops.hpp"

namespace psml::mpc {

namespace {

// Coalesced (E_i, F_i) exchange — one frame per direction, mirroring
// secure_matmul's reconstruct step.
std::pair<MatrixF, MatrixF> exchange_pair(PartyContext& ctx, net::Tag tag,
                                          std::uint64_t key_a,
                                          const MatrixF& a,
                                          std::uint64_t key_b,
                                          const MatrixF& b) {
  if (!ctx.peer().send_may_block()) {
    ctx.compressed().send_pair(tag, key_a, a, key_b, b);
    return ctx.compressed().recv_pair(tag, key_a, key_b);
  }
  auto sent = std::async(std::launch::async, [&] {
    ctx.compressed().send_pair(tag, key_a, a, key_b, b);
  });
  auto theirs = ctx.compressed().recv_pair(tag, key_a, key_b);
  sent.get();
  return theirs;
}

}  // namespace

MatrixF secure_mul(PartyContext& ctx, const MatrixF& x_i, const MatrixF& y_i,
                   const TripletShare& triplet, std::uint64_t comm_key) {
  PSML_REQUIRE(x_i.same_shape(y_i), "secure_mul: operand shape mismatch");
  PSML_REQUIRE(x_i.same_shape(triplet.u) && y_i.same_shape(triplet.v),
               "secure_mul: triplet shape does not match operands");
  auto& prof = profile::Profiler::global();
  const auto& o = ctx.options();
  const std::uint32_t seq = ctx.next_seq();
  const std::uint64_t key =
      comm_key != 0 ? comm_key : (std::uint64_t{0xE100} << 32) | seq;

  MatrixF e_i, f_i;
  {
    profile::ScopedPhase sp(prof, "online.compute1");
    if (o.cpu_parallel) {
      tensor::sub_par(x_i, triplet.u, e_i);
      tensor::sub_par(y_i, triplet.v, f_i);
    } else {
      tensor::sub(x_i, triplet.u, e_i);
      tensor::sub(y_i, triplet.v, f_i);
    }
  }

  MatrixF e, f;
  {
    profile::ScopedPhase sp(prof, "online.communicate");
    const net::Tag te = tags::kExchangeE + (seq & 0x00ffffffu);
    auto [e_peer, f_peer] = exchange_pair(ctx, te, key ^ 0x1, e_i, key ^ 0x2, f_i);
    tensor::add(e_i, e_peer, e);
    tensor::add(f_i, f_peer, f);
  }

  profile::ScopedPhase sp(prof, "online.compute2");
  // C_i = (-i) E.*F + X_i.*F + E.*Y_i + Z_i — elementwise, always CPU: the
  // arithmetic intensity (1 flop per 3 loads) never amortizes a PCIe round
  // trip, matching the paper's choice to keep light steps off the GPU.
  MatrixF c(x_i.rows(), x_i.cols());
  const float neg_i = -static_cast<float>(ctx.id());
  const float* pe = e.data();
  const float* pf = f.data();
  const float* px = x_i.data();
  const float* py = y_i.data();
  const float* pz = triplet.z.data();
  float* pc = c.data();
  for (std::size_t idx = 0; idx < c.size(); ++idx) {
    pc[idx] = neg_i * pe[idx] * pf[idx] + px[idx] * pf[idx] +
              pe[idx] * py[idx] + pz[idx];
  }
  return c;
}

MatrixF secure_mul(PartyContext& ctx, const MatrixF& x_i, const MatrixF& y_i,
                   std::uint64_t comm_key) {
  const TripletShare t = ctx.triplets().pop_elementwise();
  return secure_mul(ctx, x_i, y_i, t, comm_key);
}

}  // namespace psml::mpc
