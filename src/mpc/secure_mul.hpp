// Secure elementwise (Hadamard) multiplication via Beaver triplets.
//
// Same protocol as secure_matmul with the products replaced by elementwise
// ones:  C_i = (-i) E.*F + X_i.*F + E.*Y_i + Z_i. Used by the CNN
// point-to-point multiplications (Sec. 7.2) and by the masked comparison in
// the activation protocol.
#pragma once

#include <cstdint>

#include "mpc/party.hpp"
#include "tensor/matrix.hpp"

namespace psml::mpc {

MatrixF secure_mul(PartyContext& ctx, const MatrixF& x_i, const MatrixF& y_i,
                   const TripletShare& triplet, std::uint64_t comm_key = 0);

// Pops the next elementwise triplet from the party's offline store.
MatrixF secure_mul(PartyContext& ctx, const MatrixF& x_i, const MatrixF& y_i,
                   std::uint64_t comm_key = 0);

}  // namespace psml::mpc
