// Server-side party context for the online phase.
//
// A PartyContext bundles everything one of the two computation servers needs
// to run secure operations: its party id, the channel to the peer server
// (optionally wrapped in compressed transmission), its offline triplet
// store, the simulated GPU device with a pair of streams for the
// transfer/compute pipeline, and the execution-mode toggles that define the
// evaluation matrix (SecureML baseline vs ParSecureML, each optimization
// individually switchable).
#pragma once

#include <cstdint>
#include <memory>

#include "compress/compressed_channel.hpp"
#include "mpc/triplet.hpp"
#include "net/channel.hpp"
#include "sgpu/device.hpp"

namespace psml::mpc {

// Execution-mode toggles. Defaults are full ParSecureML; SecureML baseline
// is `secureml_baseline()`.
struct PartyOptions {
  bool use_gpu = true;          // online Eq. 8 on the device
  bool use_pipeline = true;     // overlap H2D transfers with kernels (Fig. 5)
  bool use_tensor_core = true;  // FP16 fast-path GEMM (Sec. 5.2)
  bool use_compression = true;  // delta-CSR E/F exchange (Sec. 4.4)
  double compression_threshold = 0.75;  // min zero fraction for CSR deltas
  bool fuse_eq8 = true;         // Eq. 8 fused form vs Eq. 6 three-product form
  bool cpu_parallel = true;     // parallel CPU add/sub + rng (Sec. 5.1)
  bool adaptive = true;         // profiling-guided CPU/GPU dispatch (Sec. 4.2)

  static PartyOptions secureml_baseline() {
    PartyOptions o;
    o.use_gpu = false;
    o.use_pipeline = false;
    o.use_tensor_core = false;
    o.use_compression = false;
    o.fuse_eq8 = false;
    o.cpu_parallel = false;
    o.adaptive = false;
    return o;
  }

  static PartyOptions parsecureml() { return PartyOptions{}; }
};

class PartyContext {
 public:
  // `device` may be null when opts.use_gpu is false.
  PartyContext(int party_id, std::shared_ptr<net::Channel> peer,
               sgpu::Device* device, PartyOptions opts);

  int id() const { return party_id_; }
  const PartyOptions& options() const { return opts_; }
  PartyOptions& options() { return opts_; }

  net::Channel& peer() { return *peer_; }
  compress::Endpoint& compressed() { return *compressed_; }

  sgpu::Device& device() {
    PSML_CHECK_MSG(device_ != nullptr, "party has no device");
    return *device_;
  }
  bool has_device() const { return device_ != nullptr; }
  sgpu::Stream& copy_stream() { return *copy_stream_; }
  sgpu::Stream& compute_stream() { return *compute_stream_; }

  TripletStore& triplets() { return triplets_; }
  void set_triplets(TripletStore store) { triplets_ = std::move(store); }

  // Per-op monotonically increasing sequence; both servers run the same op
  // sequence (SPMD), so their counters agree and form matching tags/keys.
  std::uint32_t next_seq() { return seq_++; }

  // Fault-recovery support: after an aborted step the two servers'
  // counters can diverge (one consumed more ops before failing). peek_seq
  // exposes the current value and resync_seq jumps the counter forward to
  // the exchanged maximum, so a retried step draws fresh tags that cannot
  // collide with any in-flight stale message (every stale tag is below the
  // maximum). Never moves the counter backwards.
  std::uint32_t peek_seq() const { return seq_; }
  void resync_seq(std::uint32_t seq) { seq_ = std::max(seq_, seq); }

  // Compression stream salt, set by the training loop to the batch index so
  // each (layer, operand, batch-slot) keeps its own delta baseline across
  // epochs. Both servers set it identically.
  void set_stream_salt(std::uint64_t salt) { stream_salt_ = salt; }
  std::uint64_t stream_salt() const { return stream_salt_; }

 private:
  int party_id_;
  std::shared_ptr<net::Channel> peer_;
  std::unique_ptr<compress::Endpoint> compressed_;
  sgpu::Device* device_;
  std::shared_ptr<sgpu::Stream> copy_stream_;
  std::shared_ptr<sgpu::Stream> compute_stream_;
  TripletStore triplets_;
  PartyOptions opts_;
  std::uint32_t seq_ = 0;
  std::uint64_t stream_salt_ = 0;
};

// Tag bases for the protocol message families.
namespace tags {
inline constexpr net::Tag kExchangeE = 0x01000000;  // + seq
inline constexpr net::Tag kExchangeF = 0x02000000;  // + seq
inline constexpr net::Tag kOpenMasked = 0x03000000; // + seq (activation)
inline constexpr net::Tag kClientData = 0x04000000; // client -> server
inline constexpr net::Tag kResult = 0x05000000;     // server -> client
inline constexpr net::Tag kControl = 0x06000000;
}  // namespace tags

}  // namespace psml::mpc
