// Fixed-point arithmetic over Z_2^64 — SecureML's number system.
//
// Reals are encoded as round(x * 2^kFracBits) in two's complement, embedded
// in uint64 with wraparound arithmetic. After a fixed-point multiply the
// product carries 2*kFracBits fractional bits; SecureML's local truncation
// (each party independently shifts its share) restores the scale at the cost
// of being off by at most 1 ulp with overwhelming probability.
#pragma once

#include <cstdint>

#include "tensor/matrix.hpp"

namespace psml::mpc {

// SecureML uses 13 fractional bits (their l_D = 13).
inline constexpr unsigned kFracBits = 13;
inline constexpr double kFixedScale = static_cast<double>(1u << kFracBits);

inline std::uint64_t encode_fixed(double x) {
  return static_cast<std::uint64_t>(
      static_cast<std::int64_t>(x * kFixedScale + (x >= 0 ? 0.5 : -0.5)));
}

inline double decode_fixed(std::uint64_t v) {
  return static_cast<double>(static_cast<std::int64_t>(v)) / kFixedScale;
}

MatrixU64 encode_fixed(const MatrixF& x);
MatrixF decode_fixed(const MatrixU64& v);

// Elementwise ring ops (mod 2^64 — plain unsigned wraparound).
MatrixU64 ring_add(const MatrixU64& a, const MatrixU64& b);
MatrixU64 ring_sub(const MatrixU64& a, const MatrixU64& b);

// C = A x B over Z_2^64 via the shared packed-panel engine (branch-free
// 4x8-register-blocked microkernel, 2-D tile parallelism above a size
// cutoff; exact mod-2^64 arithmetic makes execution order unobservable).
MatrixU64 ring_matmul(const MatrixU64& a, const MatrixU64& b);

// SecureML local truncation: arithmetic-shift each element right by
// kFracBits as a signed value. Applied to each *share*; party 1 uses the
// two's-complement trick (negate, shift, negate) so the reconstructed value
// is truncated correctly up to +-1 ulp.
MatrixU64 truncate_share(const MatrixU64& share, int party);

// Multiplies a share by a *public* fixed-point constant and restores the
// scale: share' = trunc(share * encode(c)). Purely local (multiplication by
// a public value commutes with additive sharing); used for learning-rate
// and 1/batch scalings in ring-mode training.
MatrixU64 ring_scale_share(const MatrixU64& share, double c, int party);

}  // namespace psml::mpc
