// Additive secret sharing (paper Sec. 2.2, Eq. 3).
//
// Two algebras are supported:
//   * float shares — x = x0 + x1 over IEEE float. This is what the
//     ParSecureML reference implementation uses; reconstruction carries
//     rounding error proportional to the mask radius.
//   * ring64 shares — x = x0 + x1 (mod 2^64) over fixed-point-encoded
//     integers (SecureML's actual algebra; exact reconstruction, information
//     -theoretic hiding). See ring.hpp for the fixed-point codec.
#pragma once

#include <cstdint>
#include <utility>

#include "common/taint.hpp"
#include "mpc/ring.hpp"
#include "rng/rng.hpp"
#include "tensor/matrix.hpp"
#include "tensor/ops.hpp"

namespace psml::mpc {

template <typename T>
struct PSML_SECRET SharePair {
  Matrix<T> s0;  // server 0's share
  Matrix<T> s1;  // server 1's share
};

// Mask radius for float sharing. Shares are uniform in [-radius, radius];
// larger radii hide magnitudes better but cost float precision on
// reconstruction (error ~ radius * eps).
inline constexpr float kFloatMaskRadius = 16.0f;

// Split `x` into two float shares: s0 uniform random, s1 = x - s0.
PSML_SECRET inline SharePair<float> share_float(const MatrixF& x,
                                                std::uint64_t seed) {
  SharePair<float> p;
  p.s0.resize(x.rows(), x.cols());
  rng::fill_uniform_par(p.s0, -kFloatMaskRadius, kFloatMaskRadius, seed);
  tensor::sub(x, p.s0, p.s1);
  return p;
}

inline MatrixF reconstruct_float(const MatrixF& s0, const MatrixF& s1) {
  MatrixF out;
  tensor::add(s0, s1, out);
  return out;
}

// Split `x` (already ring-encoded, see ring.hpp) into two ring shares:
// s0 uniform over Z_2^64, s1 = x - s0 (mod 2^64). Unconditionally hiding.
PSML_SECRET inline SharePair<std::uint64_t> share_ring(const MatrixU64& x,
                                                       std::uint64_t seed) {
  SharePair<std::uint64_t> p;
  p.s0.resize(x.rows(), x.cols());
  rng::fill_uniform_u64_par(p.s0, seed);
  p.s1 = ring_sub(x, p.s0);  // mod 2^64 wrap
  return p;
}

inline MatrixU64 reconstruct_ring(const MatrixU64& s0, const MatrixU64& s1) {
  PSML_REQUIRE(s0.same_shape(s1), "reconstruct_ring: shape mismatch");
  return ring_add(s0, s1);
}

}  // namespace psml::mpc
