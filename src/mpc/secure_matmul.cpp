#include "mpc/secure_matmul.hpp"

#include <future>
#include <utility>

#include "mpc/share.hpp"
#include "net/serialize.hpp"
#include "rng/rng.hpp"

#include "profile/adaptive.hpp"
#include "profile/profiler.hpp"
#include "sgpu/ops.hpp"
#include "tensor/gemm.hpp"
#include "tensor/ops.hpp"

namespace psml::mpc {

namespace {

// Concurrent send/recv so neither TCP endpoint can deadlock on full socket
// buffers when both parties transmit large shares simultaneously. In-process
// channels never block on send, so they take the cheap inline path (no
// thread spawn per exchange).
MatrixF exchange(PartyContext& ctx, net::Tag tag, std::uint64_t key,
                 const MatrixF& mine) {
  if (!ctx.peer().send_may_block()) {
    ctx.compressed().send(tag, key, mine);
    return ctx.compressed().recv(tag, key);
  }
  auto sent = std::async(std::launch::async, [&] {
    ctx.compressed().send(tag, key, mine);
  });
  MatrixF theirs = ctx.compressed().recv(tag, key);
  sent.get();
  return theirs;
}

// Coalesced exchange of the (E_i, F_i) pair: ONE frame out, ONE frame in per
// reconstruct step instead of two each way. Same deadlock-avoidance shape as
// exchange() above.
std::pair<MatrixF, MatrixF> exchange_pair(PartyContext& ctx, net::Tag tag,
                                          std::uint64_t key_a,
                                          const MatrixF& a,
                                          std::uint64_t key_b,
                                          const MatrixF& b) {
  if (!ctx.peer().send_may_block()) {
    ctx.compressed().send_pair(tag, key_a, a, key_b, b);
    return ctx.compressed().recv_pair(tag, key_a, key_b);
  }
  auto sent = std::async(std::launch::async, [&] {
    ctx.compressed().send_pair(tag, key_a, a, key_b, b);
  });
  auto theirs = ctx.compressed().recv_pair(tag, key_a, key_b);
  sent.get();
  return theirs;
}

// CPU evaluation of the online combination (Eq. 6 or fused Eq. 8).
MatrixF compute_ci_cpu(PartyContext& ctx, const MatrixF& e, const MatrixF& f,
                       const MatrixF& a_i, const MatrixF& b_i,
                       const MatrixF& z_i) {
  const auto& o = ctx.options();
  const float neg_i = -static_cast<float>(ctx.id());
  MatrixF c(a_i.rows(), b_i.cols());

  if (o.fuse_eq8) {
    // D = (-i) * E + A_i;  C = D x F + E x B_i + Z_i   (two GEMMs)
    MatrixF d;
    if (o.cpu_parallel) {
      d.resize(e.rows(), e.cols());
      tensor::scale_par(e, neg_i, d);
      tensor::add_par(d, a_i, d);
      tensor::gemm_parallel(1.0f, d, tensor::Trans::kNo, f, tensor::Trans::kNo,
                            0.0f, c);
      tensor::gemm_parallel(1.0f, e, tensor::Trans::kNo, b_i,
                            tensor::Trans::kNo, 1.0f, c);
      tensor::add_par(c, z_i, c);
    } else {
      tensor::scale(e, neg_i, d);
      tensor::add(d, a_i, d);
      tensor::gemm_blocked(1.0f, d, tensor::Trans::kNo, f, tensor::Trans::kNo,
                           0.0f, c);
      tensor::gemm_blocked(1.0f, e, tensor::Trans::kNo, b_i, tensor::Trans::kNo,
                           1.0f, c);
      tensor::add(c, z_i, c);
    }
    return c;
  }

  // Literal Eq. 6: C = (-i) ExF + A_i x F + E x B_i + Z_i (three GEMMs).
  // Baseline mode uses the naive kernel throughout (single-thread SecureML).
  auto gemm = o.cpu_parallel ? tensor::gemm_parallel : tensor::gemm_naive;
  if (ctx.id() == 1) {
    gemm(-1.0f, e, tensor::Trans::kNo, f, tensor::Trans::kNo, 0.0f, c);
  } else {
    c.fill(0.0f);
  }
  gemm(1.0f, a_i, tensor::Trans::kNo, f, tensor::Trans::kNo, 1.0f, c);
  gemm(1.0f, e, tensor::Trans::kNo, b_i, tensor::Trans::kNo, 1.0f, c);
  if (o.cpu_parallel) {
    tensor::add_par(c, z_i, c);
  } else {
    tensor::add(c, z_i, c);
  }
  return c;
}

// Device evaluation of fused Eq. 8 with the Fig. 5 transfer/compute pipeline:
//   copy stream:    E | A_i | F        | B_i       | Z_i
//   compute stream:         D=-iE+A_i  | C = D x F | C += E x B_i | C += Z_i
MatrixF compute_ci_gpu(PartyContext& ctx, const MatrixF& e, const MatrixF& f,
                       const MatrixF& a_i, const MatrixF& b_i,
                       const MatrixF& z_i) {
  auto& dev = ctx.device();
  const auto& o = ctx.options();
  const float neg_i = -static_cast<float>(ctx.id());
  // The fp16 path's win (halved operand traffic) only materializes on large
  // GEMMs; below the crossover the quantization pass dominates (Fig. 15
  // kernel sweep), so gate it by problem size.
  const double flops =
      2.0 * static_cast<double>(a_i.rows()) * b_i.cols() * a_i.cols();
  const bool tc =
      o.use_tensor_core && flops >= static_cast<double>(1 << 24);

  sgpu::Stream& copy = o.use_pipeline ? ctx.copy_stream() : ctx.compute_stream();
  sgpu::Stream& comp = ctx.compute_stream();

  sgpu::DeviceMatrix de(dev, e.rows(), e.cols());
  sgpu::DeviceMatrix da(dev, a_i.rows(), a_i.cols());
  sgpu::DeviceMatrix df(dev, f.rows(), f.cols());
  sgpu::DeviceMatrix db(dev, b_i.rows(), b_i.cols());
  sgpu::DeviceMatrix dz(dev, z_i.rows(), z_i.cols());
  sgpu::DeviceMatrix dd(dev, e.rows(), e.cols());
  sgpu::DeviceMatrix dc(dev, a_i.rows(), b_i.cols());

  sgpu::upload_async(dev, copy, de, e);
  sgpu::upload_async(dev, copy, da, a_i);
  const sgpu::Event e_ea = copy.record_event();
  sgpu::upload_async(dev, copy, df, f);
  const sgpu::Event e_f = copy.record_event();
  sgpu::upload_async(dev, copy, db, b_i);
  const sgpu::Event e_b = copy.record_event();
  sgpu::upload_async(dev, copy, dz, z_i);
  const sgpu::Event e_z = copy.record_event();

  if (o.use_pipeline) comp.wait_event(e_ea);
  sgpu::axpby_async(dev, comp, neg_i, de, da, dd);  // D = (-i) E + A_i
  if (o.use_pipeline) comp.wait_event(e_f);
  sgpu::gemm_async(dev, comp, dd, df, dc, 1.0f, 0.0f, tc);  // C = D x F
  if (o.use_pipeline) comp.wait_event(e_b);
  sgpu::gemm_async(dev, comp, de, db, dc, 1.0f, 1.0f, tc);  // C += E x B_i
  if (o.use_pipeline) comp.wait_event(e_z);
  sgpu::add_inplace_async(dev, comp, dz, dc);  // C += Z_i

  MatrixF c(a_i.rows(), b_i.cols());
  sgpu::download_async(dev, comp, c, dc);
  comp.synchronize();
  return c;
}

}  // namespace

Reconstructed reconstruct_ef(PartyContext& ctx, const MatrixF& a_i,
                             const MatrixF& b_i, const TripletShare& triplet,
                             std::uint64_t comm_key) {
  PSML_REQUIRE(a_i.same_shape(triplet.u) && b_i.same_shape(triplet.v),
               "secure_matmul: triplet shape does not match operands");
  auto& prof = profile::Profiler::global();
  const auto& o = ctx.options();
  const std::uint32_t seq = ctx.next_seq();
  const std::uint64_t key =
      comm_key != 0 ? comm_key : (std::uint64_t{0xEF00} << 32) | seq;

  // compute1: E_i = A_i - U_i, F_i = B_i - V_i
  MatrixF e_i, f_i;
  {
    profile::ScopedPhase sp(prof, "online.compute1");
    if (o.cpu_parallel) {
      tensor::sub_par(a_i, triplet.u, e_i);
      tensor::sub_par(b_i, triplet.v, f_i);
    } else {
      tensor::sub(a_i, triplet.u, e_i);
      tensor::sub(b_i, triplet.v, f_i);
    }
  }

  // communicate: exchange E_i / F_i, sum to E / F.
  Reconstructed ef;
  {
    profile::ScopedPhase sp(prof, "online.communicate");
    // E and F travel coalesced in one frame per direction (halving the
    // per-step round-trip count). The tag stays on the kExchangeE sequence so
    // the Fig. 6 pipeline and resilient-training resync keep their numbering;
    // each half keeps its own compression stream key (key^1 / key^2) exactly
    // as the former split sends did.
    const net::Tag te = tags::kExchangeE + (seq & 0x00ffffffu);
    auto [e_peer, f_peer] = exchange_pair(ctx, te, key ^ 0x1, e_i, key ^ 0x2, f_i);
    if (o.cpu_parallel) {
      tensor::add_par(e_i, e_peer, ef.e);
      tensor::add_par(f_i, f_peer, ef.f);
    } else {
      tensor::add(e_i, e_peer, ef.e);
      tensor::add(f_i, f_peer, ef.f);
    }
  }
  return ef;
}

MatrixF compute_ci(PartyContext& ctx, const Reconstructed& ef,
                   const MatrixF& a_i, const MatrixF& b_i,
                   const TripletShare& triplet) {
  auto& prof = profile::Profiler::global();
  profile::ScopedPhase sp(prof, "online.compute2");
  const auto& o = ctx.options();

  bool on_gpu = o.use_gpu;
  if (on_gpu && o.adaptive) {
    // The fused form costs ~2 GEMMs of (m,n,k); fold that into one decision
    // with doubled k (same flop count).
    const auto d = profile::AdaptiveDispatch::global().decide(
        a_i.rows(), b_i.cols(), 2 * a_i.cols());
    on_gpu = d.use_gpu;
  }
  if (on_gpu) {
    return compute_ci_gpu(ctx, ef.e, ef.f, a_i, b_i, triplet.z);
  }
  return compute_ci_cpu(ctx, ef.e, ef.f, a_i, b_i, triplet.z);
}

MatrixF open_operand(PartyContext& ctx, const MatrixF& share,
                     const MatrixF& mask_share, net::Tag tag,
                     std::uint64_t comm_key) {
  PSML_REQUIRE(share.same_shape(mask_share),
               "open_operand: mask shape mismatch");
  auto& prof = profile::Profiler::global();
  MatrixF diff;
  {
    profile::ScopedPhase sp(prof, "online.compute1");
    if (ctx.options().cpu_parallel) {
      tensor::sub_par(share, mask_share, diff);
    } else {
      tensor::sub(share, mask_share, diff);
    }
  }
  profile::ScopedPhase sp(prof, "online.communicate");
  MatrixF peer = exchange(ctx, tag, comm_key, diff);
  MatrixF out;
  tensor::add(diff, peer, out);
  return out;
}

MatrixF secure_matmul(PartyContext& ctx, const MatrixF& a_i,
                      const MatrixF& b_i, const TripletShare& triplet,
                      std::uint64_t comm_key) {
  const Reconstructed ef = reconstruct_ef(ctx, a_i, b_i, triplet, comm_key);
  return compute_ci(ctx, ef, a_i, b_i, triplet);
}

MatrixF refresh_share(PartyContext& ctx, const MatrixF& x_i) {
  auto& prof = profile::Profiler::global();
  profile::ScopedPhase sp(prof, "online.communicate");
  const net::Tag tag =
      tags::kControl + 0x200000u + (ctx.next_seq() & 0x000fffffu);
  const bool par = ctx.options().cpu_parallel;
  if (ctx.id() == 0) {
    MatrixF fresh(x_i.rows(), x_i.cols());
    rng::fill_uniform_par(fresh, -kFloatMaskRadius, kFloatMaskRadius,
                          rng::random_seed());
    MatrixF masked;
    if (par) {
      tensor::sub_par(x_i, fresh, masked);
    } else {
      tensor::sub(x_i, fresh, masked);
    }
    net::send_matrix(ctx.peer(), tag, masked);
    return fresh;
  }
  MatrixF masked = net::recv_matrix_f32(ctx.peer(), tag);
  MatrixF out;
  if (par) {
    tensor::add_par(x_i, masked, out);
  } else {
    tensor::add(x_i, masked, out);
  }
  return out;
}

MatrixF secure_matmul(PartyContext& ctx, const MatrixF& a_i,
                      const MatrixF& b_i, std::uint64_t comm_key) {
  const TripletShare t = ctx.triplets().pop_matmul();
  return secure_matmul(ctx, a_i, b_i, t, comm_key);
}

}  // namespace psml::mpc
