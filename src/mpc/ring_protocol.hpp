// Secure matrix multiplication over Z_2^64 with fixed-point encoding —
// SecureML's exact algebra, provided alongside the float-share mode for
// protocol fidelity (see DESIGN.md §6). Shares here are uniform over the
// full ring, so the masking is information-theoretic; reconstruction is
// exact up to the +-1 ulp of probabilistic truncation.
#pragma once

#include <cstdint>
#include <utility>

#include "common/taint.hpp"
#include "mpc/party.hpp"
#include "mpc/ring.hpp"
#include "mpc/share.hpp"
#include "tensor/matrix.hpp"

namespace psml::mpc {

struct PSML_SECRET RingTripletShare {
  MatrixU64 u, v, z;
};

// Dealer-side generation of a ring matmul triplet (U, V uniform, Z = U x V).
std::pair<RingTripletShare, RingTripletShare> make_ring_matmul_triplet(
    std::size_t m, std::size_t k, std::size_t n, std::uint64_t seed);

// Online step: inputs are fixed-point-encoded shares; the result share is
// truncated back to kFracBits fractional bits when `truncate` is set (the
// usual case — skip it only when composing raw ring products).
MatrixU64 secure_matmul_ring(PartyContext& ctx, const MatrixU64& a_i,
                             const MatrixU64& b_i,
                             const RingTripletShare& triplet,
                             bool truncate = true);

}  // namespace psml::mpc
