// Secure piecewise-linear activation (paper Sec. 4.2, Eq. 9).
//
//            { 0        x < -1/2
//   f(x) =   { x + 1/2  -1/2 <= x <= 1/2
//            { 1        x > 1/2
//
// The servers hold additive shares x_i of the pre-activation X and must end
// with shares of f(X). The nonlinearity reduces to two comparisons per
// element: X vs -1/2 and X vs +1/2. We use dealer-assisted masked sign
// reveal: offline material contains a secret random *positive* mask S
// (shared) and a Beaver triplet; online, the servers securely compute
// Y .* S for Y = X + 1/2 (resp. X - 1/2) and open the product. Since S > 0,
// sign(Y .* S) = sign(Y), so both servers learn *only* which side of the
// threshold each element lies on — the same region information that any
// piecewise evaluation (including the reference implementation's) exposes —
// while magnitudes stay masked. f(X) is then linear per region:
//   middle:  f = X + 1/2  ->  share_i = x_i + i * 1/2
//   low:     f = 0        ->  share_i = 0
//   high:    f = 1        ->  share_i = i
// The derivative mask (for backprop) is public per region: 1 in the middle,
// 0 outside.
#pragma once

#include <cstdint>

#include "mpc/party.hpp"
#include "tensor/matrix.hpp"

namespace psml::mpc {

struct ActivationResult {
  MatrixF value_share;  // share of f(X)
  MatrixF grad_mask;    // public region mask: f'(X) in {0, 1}
};

ActivationResult secure_activation(PartyContext& ctx, const MatrixF& x_i,
                                   const ActivationShare& material,
                                   std::uint64_t comm_key = 0);

// Pops the next activation material from the party's offline store.
ActivationResult secure_activation(PartyContext& ctx, const MatrixF& x_i,
                                   std::uint64_t comm_key = 0);

// Public comparison mask [X < c] from shares of X via one masked-sign
// reveal, consuming the `t_lo`/`s_lo` half of an ActivationShare. Used by
// the SVM hinge loss (margin test) — both servers learn the boolean mask,
// the same leakage profile as the activation protocol.
MatrixF secure_less_than(PartyContext& ctx, const MatrixF& x_i, float c,
                         const ActivationShare& material,
                         std::uint64_t comm_key = 0);

// Plaintext reference of Eq. 9 (used by tests and the plaintext models).
MatrixF activation_ref(const MatrixF& x);
MatrixF activation_grad_ref(const MatrixF& x);

}  // namespace psml::mpc
