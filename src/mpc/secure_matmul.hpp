// Secure matrix multiplication — the online phase of the triplet protocol
// (paper Sec. 2.2 Eqs. 4-6, Sec. 4.2 Eq. 8, Sec. 4.3 Fig. 5).
//
// Both servers call secure_matmul with their shares A_i, B_i and a matmul
// triplet; each obtains C_i with C_0 + C_1 = A x B. The execution path is
// selected by the PartyOptions:
//
//   reconstruct ("compute1" + "communicate"):
//     E_i = A_i - U_i, F_i = B_i - V_i, exchanged with the peer (optionally
//     delta-CSR compressed) and summed to E, F. Always on the CPU — the
//     paper found GPU offload of this step counterproductive.
//
//   GPU operation ("compute2"):
//     C_i = ((-i) E + A_i) x F + E x B_i + Z_i     (fused Eq. 8)
//     run on the simulated device, with the Fig. 5 pipeline overlapping the
//     H2D transfers of F, B_i, Z_i with the kernels, or on the CPU when the
//     adaptive dispatcher predicts the CPU wins (small workloads).
#pragma once

#include <cstdint>

#include "mpc/party.hpp"
#include "tensor/matrix.hpp"

namespace psml::mpc {

// `comm_key` identifies the logical tensor stream for delta compression; use
// compress::stream_key(layer, phase, operand) and keep it stable across
// epochs. 0 derives a one-shot key from the op sequence number (compression
// still works within repeated calls only if keys repeat).
MatrixF secure_matmul(PartyContext& ctx, const MatrixF& a_i,
                      const MatrixF& b_i, const TripletShare& triplet,
                      std::uint64_t comm_key = 0);

// Pops the next matmul triplet from the party's offline store.
MatrixF secure_matmul(PartyContext& ctx, const MatrixF& a_i,
                      const MatrixF& b_i, std::uint64_t comm_key = 0);

// The reconstruct step alone (E, F from shares): exposed for the layer-level
// pipeline, which interleaves reconstructs and GPU ops across layers.
struct Reconstructed {
  MatrixF e, f;
};
Reconstructed reconstruct_ef(PartyContext& ctx, const MatrixF& a_i,
                             const MatrixF& b_i, const TripletShare& triplet,
                             std::uint64_t comm_key);

// The compute step alone, given reconstructed E/F.
MatrixF compute_ci(PartyContext& ctx, const Reconstructed& ef,
                   const MatrixF& a_i, const MatrixF& b_i,
                   const TripletShare& triplet);

// Half-reconstruct for the Fig. 6 layer pipeline: opens one masked operand
// (X - U). The backward pass of a layer needs two matmuls whose *known*
// operands (the forward input, the weights) can be opened as soon as forward
// completes, while the gradient-dependent operands must wait — this function
// is the early half. `tag` must be drawn from ctx.next_seq() at schedule
// time so both servers' tag sequences agree.
MatrixF open_operand(PartyContext& ctx, const MatrixF& share_minus_mask_of,
                     const MatrixF& mask_share, net::Tag tag,
                     std::uint64_t comm_key);

// Share refresh for the float-share mode. Composed Beaver multiplications
// grow share magnitudes multiplicatively (the A_i x F term scales with the
// magnitude of the input *share*, not the input), and float reconstruction
// loses |share| * eps per element — after a few training epochs the weight
// shares outgrow float precision entirely. refresh_share re-randomizes a
// share pair back to the kFloatMaskRadius scale with one message:
//   party 0: draw fresh r, send x_0 - r, keep r.
//   party 1: keep x_1 + (x_0 - r).
// The message is masked by the fresh r exactly as strongly as the original
// sharing. Ring-mode shares are uniform over Z_2^64 and never need this —
// see DESIGN.md §6. Applied by the secure layers to weight gradients before
// each update.
MatrixF refresh_share(PartyContext& ctx, const MatrixF& x_i);

}  // namespace psml::mpc
