#include "mpc/party.hpp"

namespace psml::mpc {

PartyContext::PartyContext(int party_id, std::shared_ptr<net::Channel> peer,
                           sgpu::Device* device, PartyOptions opts)
    : party_id_(party_id),
      peer_(std::move(peer)),
      device_(device),
      opts_(opts) {
  PSML_REQUIRE(party_id == 0 || party_id == 1, "party id must be 0 or 1");
  PSML_REQUIRE(peer_ != nullptr, "party requires a peer channel");
  if (opts_.use_gpu) {
    PSML_REQUIRE(device_ != nullptr, "use_gpu requires a device");
  }
  compress::Config ccfg;
  ccfg.enabled = opts_.use_compression;
  ccfg.sparsity_threshold = opts_.compression_threshold;
  compressed_ = std::make_unique<compress::Endpoint>(*peer_, ccfg);
  if (device_ != nullptr) {
    copy_stream_ = device_->create_stream();
    compute_stream_ = device_->create_stream();
  }
}

}  // namespace psml::mpc
