// Beaver triplet generation — the offline phase (paper Sec. 2.2 Eqs. 2-3 and
// Fig. 4).
//
// For every secure multiplication the dealer (the client, trusted in
// SecureML's client-aided model) samples random U, V, computes Z = U x V,
// additively shares all three, and hands share i to server i. The heavy step
// is Z = U x V, which ParSecureML runs on the GPU (>90 % of offline time,
// Sec. 4.2); TripletDealer takes a device pointer for exactly that.
//
// A TripletPlan is the ordered list of triplet shapes one epoch consumes.
// Both servers execute the same op sequence (SPMD), so consuming from a FIFO
// TripletStore keeps them aligned with no extra coordination.
#pragma once

#include <cstdint>
#include <deque>
#include <utility>
#include <vector>

#include "common/taint.hpp"
#include "mpc/share.hpp"
#include "sgpu/device.hpp"
#include "tensor/matrix.hpp"

namespace psml::mpc {

enum class TripletKind : std::uint8_t {
  kMatMul = 0,       // U(mxk), V(kxn), Z = U x V
  kElementwise = 1,  // U, V, Z = U .* V, all (mxn)
  kActivation = 2,   // two elementwise triplets + two positive masks (mxn)
};

struct TripletSpec {
  TripletKind kind = TripletKind::kMatMul;
  std::size_t m = 0, k = 0, n = 0;  // kElementwise/kActivation use m, n only

  friend bool operator==(const TripletSpec&, const TripletSpec&) = default;
};

// One server's share of a multiplication triplet (matmul or elementwise).
struct PSML_SECRET TripletShare {
  MatrixF u, v, z;
};

// One server's share of the activation-comparison material: Beaver triplets
// for the two masked products and additive shares of the positive
// multiplicative masks s1, s2 (see activation.hpp).
struct PSML_SECRET ActivationShare {
  TripletShare t_lo, t_hi;
  MatrixF s_lo, s_hi;
};

// FIFO store of one server's offline material.
//
// Recycle mode: the paper's compressed-transmission design (Eqs. 11-12)
// requires the triplet masks U/V of a given operation to stay *fixed across
// epochs* — E_{j+1} = E_j + dA only holds when U does not change. In recycle
// mode pops cycle through the stored material (one epoch's worth) instead of
// consuming it, exactly modelling that reuse. The security trade-off
// (revealed E-deltas equal data deltas) is inherent to the paper's scheme
// and documented in DESIGN.md.
class PSML_SECRET TripletStore {
 public:
  void push_matmul(TripletShare t) { matmul_.push_back(std::move(t)); }
  void push_elementwise(TripletShare t) { elem_.push_back(std::move(t)); }
  void push_activation(ActivationShare a) { act_.push_back(std::move(a)); }

  // Enables epoch-cycling pops; cursors restart at the front.
  void set_recycle(bool recycle);
  bool recycle() const { return recycle_; }

  // Retain mode: pops advance cursors without consuming (no wrap-around, a
  // pop past the end still fails), which is what makes mark()/rewind()
  // possible — the fault-tolerant training loop rewinds to the step's mark
  // before retrying so both parties re-consume identical triplets. Switch
  // modes only before the first pop.
  void set_retain(bool retain);
  bool retain() const { return retain_; }

  // Cursor snapshot for step-level rollback. Requires retain or recycle
  // mode (consuming pops destroy the material and cannot be rewound).
  struct Mark {
    std::size_t matmul = 0, elem = 0, act = 0;
  };
  Mark mark() const;
  void rewind(const Mark& mark);

  TripletShare pop_matmul();
  TripletShare pop_elementwise();
  ActivationShare pop_activation();

  bool empty() const { return matmul_.empty() && elem_.empty() && act_.empty(); }
  std::size_t matmul_size() const { return matmul_.size(); }
  std::size_t elementwise_size() const { return elem_.size(); }
  std::size_t activation_size() const { return act_.size(); }

  // Total bytes of offline material held (what the client must transmit).
  std::size_t bytes() const;

  // Read-only views for serialization (client -> server transmission).
  const std::deque<TripletShare>& matmuls() const { return matmul_; }
  const std::deque<TripletShare>& elementwises() const { return elem_; }
  const std::deque<ActivationShare>& activations() const { return act_; }

 private:
  std::deque<TripletShare> matmul_;
  std::deque<TripletShare> elem_;
  std::deque<ActivationShare> act_;
  bool recycle_ = false;
  bool retain_ = false;
  std::size_t matmul_cursor_ = 0;
  std::size_t elem_cursor_ = 0;
  std::size_t act_cursor_ = 0;
};

struct DealerOptions {
  // Run Z = U x V on the simulated GPU (the paper's offline acceleration).
  bool use_gpu = true;
  // Use the baseline naive CPU GEMM instead (SecureML mode).
  bool naive_cpu = false;
  // Deterministic seed; 0 draws a random one.
  std::uint64_t seed = 0;
};

class TripletDealer {
 public:
  TripletDealer(sgpu::Device* device, DealerOptions opts);

  // Generates the shares of one triplet for both servers.
  std::pair<TripletShare, TripletShare> make_matmul(std::size_t m,
                                                    std::size_t k,
                                                    std::size_t n);
  std::pair<TripletShare, TripletShare> make_elementwise(std::size_t m,
                                                         std::size_t n);
  std::pair<ActivationShare, ActivationShare> make_activation(std::size_t m,
                                                              std::size_t n);

  // Generates a whole plan into per-server stores.
  std::pair<TripletStore, TripletStore> generate(
      const std::vector<TripletSpec>& plan);

 private:
  std::uint64_t next_seed();

  sgpu::Device* device_;  // may be null when use_gpu is false
  DealerOptions opts_;
  std::uint64_t seed_state_;
};

}  // namespace psml::mpc
