// Philox4x32-10 counter-based PRNG (Salmon et al., SC'11).
//
// This is the generator family cuRAND uses by default; it is stateless per
// call (output = f(key, counter)), which is why it maps perfectly onto GPU
// threads. We use it as the device-side RNG of the simulated GPU, standing in
// for cuRAND in the Fig. 7 experiment.
#pragma once

#include <array>
#include <cstdint>

#include "common/taint.hpp"
#include "tensor/matrix.hpp"

namespace psml::rng {

struct Philox4x32 {
  std::uint64_t key;

  explicit Philox4x32(std::uint64_t seed) : key(seed) {}

  // Generates the 4 x 32-bit block for counter value `ctr`.
  std::array<std::uint32_t, 4> block(std::uint64_t ctr) const;
};

// Uniform floats in [lo, hi) from counters [0, m.size()); deterministic in
// `seed` and trivially parallel (each element depends only on its index).
PSML_SECRET void philox_fill_uniform(MatrixF& m, float lo, float hi,
                                     std::uint64_t seed);

// Parallel version running on the global thread pool (the "device kernel"
// without the device; sgpu wraps this in a launch).
PSML_SECRET void philox_fill_uniform_par(MatrixF& m, float lo, float hi,
                                         std::uint64_t seed);

// Raw 64-bit outputs, one per element.
PSML_SECRET void philox_fill_u64(MatrixU64& m, std::uint64_t seed);

}  // namespace psml::rng
