#include "rng/rng.hpp"

#include <chrono>
#include <functional>
#include <mutex>
#include <thread>

#include "common/thread_pool.hpp"

namespace psml::rng {

namespace {

// splitmix64 — used to derive block seeds and to mix seed material.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::uint32_t initial_thread_seed() {
  const auto now = static_cast<std::uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
  const auto tid = std::hash<std::thread::id>{}(std::this_thread::get_id());
  return static_cast<std::uint32_t>(mix64(now + tid));
}

// Block size for deterministic parallel fills: a multiple of the cache line
// so writer threads never share a line.
constexpr std::size_t kFillBlock = 4096;

template <typename T, typename MakeDist>
void fill_par_impl(Matrix<T>& m, std::uint64_t seed, MakeDist make_dist) {
  T* p = m.data();
  const std::size_t n = m.size();
  parallel_for(
      0, (n + kFillBlock - 1) / kFillBlock,
      [&](std::size_t blo, std::size_t bhi) {
        for (std::size_t blk = blo; blk < bhi; ++blk) {
          std::mt19937 gen(static_cast<std::uint32_t>(mix64(seed + blk)));
          auto dist = make_dist();
          const std::size_t lo = blk * kFillBlock;
          const std::size_t hi = std::min(lo + kFillBlock, n);
          for (std::size_t i = lo; i < hi; ++i) p[i] = static_cast<T>(dist(gen));
        }
      },
      /*grain=*/1);
}

}  // namespace

std::mt19937& thread_generator() {
  // Constructed once per thread, destroyed at thread exit — the paper's
  // "static thread local" MT19937 design.
  static thread_local std::mt19937 gen(initial_thread_seed());
  return gen;
}

void seed_thread_generator(std::uint32_t seed) { thread_generator().seed(seed); }

void fill_uniform(MatrixF& m, float lo, float hi) {
  std::uniform_real_distribution<float> dist(lo, hi);
  auto& gen = thread_generator();
  float* p = m.data();
  for (std::size_t i = 0; i < m.size(); ++i) p[i] = dist(gen);
}

void fill_normal(MatrixF& m, float mean, float stddev) {
  std::normal_distribution<float> dist(mean, stddev);
  auto& gen = thread_generator();
  float* p = m.data();
  for (std::size_t i = 0; i < m.size(); ++i) p[i] = dist(gen);
}

void fill_bernoulli(MatrixF& m, double p_one) {
  std::bernoulli_distribution dist(p_one);
  auto& gen = thread_generator();
  float* p = m.data();
  for (std::size_t i = 0; i < m.size(); ++i) p[i] = dist(gen) ? 1.0f : 0.0f;
}

void fill_uniform_u64(MatrixU64& m) {
  auto& gen = thread_generator();
  std::uint64_t* p = m.data();
  for (std::size_t i = 0; i < m.size(); ++i) {
    p[i] = (static_cast<std::uint64_t>(gen()) << 32) | gen();
  }
}

void fill_uniform_par(MatrixF& m, float lo, float hi, std::uint64_t seed) {
  fill_par_impl(m, seed, [=] {
    return std::uniform_real_distribution<float>(lo, hi);
  });
}

void fill_normal_par(MatrixF& m, float mean, float stddev, std::uint64_t seed) {
  fill_par_impl(m, seed, [=] {
    return std::normal_distribution<float>(mean, stddev);
  });
}

void fill_uniform_u64_par(MatrixU64& m, std::uint64_t seed) {
  std::uint64_t* p = m.data();
  const std::size_t n = m.size();
  parallel_for(
      0, (n + kFillBlock - 1) / kFillBlock,
      [&](std::size_t blo, std::size_t bhi) {
        for (std::size_t blk = blo; blk < bhi; ++blk) {
          std::mt19937_64 gen(mix64(seed + blk));
          const std::size_t lo = blk * kFillBlock;
          const std::size_t hi = std::min(lo + kFillBlock, n);
          for (std::size_t i = lo; i < hi; ++i) p[i] = gen();
        }
      },
      /*grain=*/1);
}

void fill_uniform_locked(MatrixF& m, float lo, float hi) {
  static std::mutex mtx;
  static std::mt19937 gen(12345);
  std::uniform_real_distribution<float> dist(lo, hi);
  float* p = m.data();
  const std::size_t n = m.size();
  parallel_for(0, n, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) {
      std::lock_guard<std::mutex> lock(mtx);
      p[i] = dist(gen);
    }
  });
}

std::uint64_t random_seed() {
  const auto now = static_cast<std::uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
  std::random_device rd;
  return mix64(now ^ (static_cast<std::uint64_t>(rd()) << 32 | rd()));
}

}  // namespace psml::rng
