#include "rng/philox.hpp"

#include "common/thread_pool.hpp"

namespace psml::rng {

namespace {

constexpr std::uint32_t kPhiloxM0 = 0xD2511F53u;
constexpr std::uint32_t kPhiloxM1 = 0xCD9E8D57u;
constexpr std::uint32_t kPhiloxW0 = 0x9E3779B9u;  // golden ratio
constexpr std::uint32_t kPhiloxW1 = 0xBB67AE85u;  // sqrt(3) - 1

inline void philox_round(std::array<std::uint32_t, 4>& ctr, std::uint32_t k0,
                         std::uint32_t k1) {
  const std::uint64_t p0 = static_cast<std::uint64_t>(kPhiloxM0) * ctr[0];
  const std::uint64_t p1 = static_cast<std::uint64_t>(kPhiloxM1) * ctr[2];
  const std::uint32_t hi0 = static_cast<std::uint32_t>(p0 >> 32);
  const std::uint32_t lo0 = static_cast<std::uint32_t>(p0);
  const std::uint32_t hi1 = static_cast<std::uint32_t>(p1 >> 32);
  const std::uint32_t lo1 = static_cast<std::uint32_t>(p1);
  ctr = {hi1 ^ ctr[1] ^ k0, lo1, hi0 ^ ctr[3] ^ k1, lo0};
}

inline float u32_to_unit_float(std::uint32_t x) {
  // 24 high bits -> [0, 1) with full float precision.
  return static_cast<float>(x >> 8) * (1.0f / 16777216.0f);
}

}  // namespace

std::array<std::uint32_t, 4> Philox4x32::block(std::uint64_t ctr) const {
  std::array<std::uint32_t, 4> c = {static_cast<std::uint32_t>(ctr),
                                    static_cast<std::uint32_t>(ctr >> 32), 0u,
                                    0u};
  std::uint32_t k0 = static_cast<std::uint32_t>(key);
  std::uint32_t k1 = static_cast<std::uint32_t>(key >> 32);
  for (int round = 0; round < 10; ++round) {
    philox_round(c, k0, k1);
    k0 += kPhiloxW0;
    k1 += kPhiloxW1;
  }
  return c;
}

void philox_fill_uniform(MatrixF& m, float lo, float hi, std::uint64_t seed) {
  const Philox4x32 gen(seed);
  float* p = m.data();
  const std::size_t n = m.size();
  const float range = hi - lo;
  for (std::size_t i = 0; i < n; i += 4) {
    const auto blk = gen.block(i / 4);
    const std::size_t lim = std::min<std::size_t>(4, n - i);
    for (std::size_t j = 0; j < lim; ++j) {
      p[i + j] = lo + range * u32_to_unit_float(blk[j]);
    }
  }
}

void philox_fill_uniform_par(MatrixF& m, float lo, float hi,
                             std::uint64_t seed) {
  const Philox4x32 gen(seed);
  float* p = m.data();
  const std::size_t n = m.size();
  const float range = hi - lo;
  parallel_for(
      0, (n + 3) / 4,
      [&](std::size_t blo, std::size_t bhi) {
        for (std::size_t blk_i = blo; blk_i < bhi; ++blk_i) {
          const auto blk = gen.block(blk_i);
          const std::size_t base = blk_i * 4;
          const std::size_t lim = std::min<std::size_t>(4, n - base);
          for (std::size_t j = 0; j < lim; ++j) {
            p[base + j] = lo + range * u32_to_unit_float(blk[j]);
          }
        }
      },
      /*grain=*/kFloatsPerCacheLine);
}

void philox_fill_u64(MatrixU64& m, std::uint64_t seed) {
  const Philox4x32 gen(seed);
  std::uint64_t* p = m.data();
  const std::size_t n = m.size();
  for (std::size_t i = 0; i < n; i += 2) {
    const auto blk = gen.block(i / 2);
    p[i] = (static_cast<std::uint64_t>(blk[0]) << 32) | blk[1];
    if (i + 1 < n) {
      p[i + 1] = (static_cast<std::uint64_t>(blk[2]) << 32) | blk[3];
    }
  }
}

}  // namespace psml::rng
