// Profiling-guided adaptive GPU utilization (paper Sec. 4.2).
//
// The dispatcher answers one question per GEMM: run it on the CPU or ship it
// to the (simulated) GPU? It calibrates both engines with a short profiling
// run — small/medium probe multiplies on each — and fits simple cost models:
//   t_cpu(flops) = a_cpu * flops
//   t_gpu(flops, bytes) = overhead + a_gpu * flops + bytes / pcie_bw
// The GPU model carries a fixed launch/transfer overhead term, which is what
// produces the paper's small-workload-on-CPU / large-workload-on-GPU
// crossover (Fig. 17, Sec. 7.7 "Limitation").
#pragma once

#include <cstddef>

#include "sgpu/device.hpp"

namespace psml::profile {

struct DispatchDecision {
  bool use_gpu = false;
  double est_cpu_sec = 0.0;
  double est_gpu_sec = 0.0;
};

class AdaptiveDispatch {
 public:
  struct Model {
    double cpu_sec_per_flop = 0.0;
    double gpu_sec_per_flop = 0.0;
    double gpu_overhead_sec = 0.0;       // launch + sync latency
    double gpu_sec_per_byte = 0.0;       // effective PCIe cost
    bool calibrated = false;
  };

  AdaptiveDispatch() = default;

  // Runs probe GEMMs on both engines and fits the model. Takes tens of
  // milliseconds; call once per process (the framework does this lazily).
  void calibrate(sgpu::Device& dev);

  // Decision for C(m,n) = A(m,k) x B(k,n), counting the H2D/D2H bytes the
  // GPU path would move.
  DispatchDecision decide(std::size_t m, std::size_t n, std::size_t k) const;

  const Model& model() const { return model_; }
  void set_model(const Model& m) { model_ = m; }

  // Lazily calibrated process-wide dispatcher on the global device.
  static AdaptiveDispatch& global();

 private:
  Model model_;
};

}  // namespace psml::profile
