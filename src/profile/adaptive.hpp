// Profiling-guided adaptive GPU utilization (paper Sec. 4.2).
//
// The dispatcher answers one question per GEMM: run it on the CPU or ship it
// to the (simulated) GPU? It calibrates both engines with a short profiling
// run — small/medium probe multiplies on each — and fits simple cost models:
//   t_cpu(flops) = a_cpu * flops
//   t_gpu(flops, bytes) = overhead + a_gpu * flops + bytes / pcie_bw
// The GPU model carries a fixed launch/transfer overhead term, which is what
// produces the paper's small-workload-on-CPU / large-workload-on-GPU
// crossover (Fig. 17, Sec. 7.7 "Limitation").
//
// Thread safety: decide() may run concurrently with calibrate()/set_model()
// (the online phase dispatches from worker threads while tests or the
// framework refit the model). The model is published as a snapshot under a
// mutex — readers copy it, writers install a fully-built replacement, so no
// torn model is ever observed.
//
// Kernel staleness: the CPU slope is only meaningful for the kernel it was
// measured against. calibrate()/set_model() stamp the current
// tensor::gemm_kernel_revision(); if the kernel selection changes afterwards
// (tensor::set_gemm_isa), decide() treats the model as stale and falls back
// to the static threshold until recalibrate() is run.
#pragma once

#include <cstddef>
#include <mutex>

#include "sgpu/device.hpp"

namespace psml::profile {

struct DispatchDecision {
  bool use_gpu = false;
  double est_cpu_sec = 0.0;
  double est_gpu_sec = 0.0;
};

class AdaptiveDispatch {
 public:
  struct Model {
    double cpu_sec_per_flop = 0.0;
    double gpu_sec_per_flop = 0.0;
    double gpu_overhead_sec = 0.0;       // launch + sync latency
    double gpu_sec_per_byte = 0.0;       // effective PCIe cost
    bool calibrated = false;
    // tensor::gemm_kernel_revision() at fit time; a mismatch at decide()
    // time means the CPU kernel changed under us and the fit is stale.
    std::size_t kernel_revision = 0;
  };

  AdaptiveDispatch() = default;

  // Runs probe GEMMs on both engines and fits the model. Takes tens of
  // milliseconds at the default probe sizes; call once per process (the
  // framework does this lazily). Probe sizes are parameters so tests can
  // hammer calibrate() cheaply. Safe to call concurrently with decide();
  // concurrent calibrations race benignly (last fit wins).
  void calibrate(sgpu::Device& dev, std::size_t small_n = 96,
                 std::size_t large_n = 384);

  // Refit hook for kernel-selection changes (tensor::set_gemm_isa): identical
  // to calibrate(), named for the call sites that re-run it so CPU/GPU
  // crossover decisions stay honest against the newly selected kernel.
  void recalibrate(sgpu::Device& dev) { calibrate(dev); }

  // Decision for C(m,n) = A(m,k) x B(k,n), counting the H2D/D2H bytes the
  // GPU path would move. Uses the static flop threshold when the model is
  // uncalibrated or stale (fit against a different kernel revision).
  DispatchDecision decide(std::size_t m, std::size_t n, std::size_t k) const;

  // Snapshot of the current model (by value: the model can be republished
  // concurrently).
  Model model() const;
  // Installs a caller-built model, stamped with the current kernel revision.
  void set_model(const Model& m);

  // Lazily calibrated process-wide dispatcher on the global device.
  static AdaptiveDispatch& global();

 private:
  mutable std::mutex mutex_;  // guards model_
  Model model_;
};

}  // namespace psml::profile
