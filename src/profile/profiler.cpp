#include "profile/profiler.hpp"

namespace psml::profile {

void Profiler::add(const std::string& phase, double seconds) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& s = phases_[phase];
  s.total_sec += seconds;
  s.count += 1;
}

double Profiler::total(const std::string& phase) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = phases_.find(phase);
  return it == phases_.end() ? 0.0 : it->second.total_sec;
}

std::map<std::string, PhaseStat> Profiler::report() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return phases_;
}

void Profiler::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  phases_.clear();
}

Profiler& Profiler::global() {
  static Profiler p;
  return p;
}

}  // namespace psml::profile
