// Step profiler: named wall-time accumulators for the protocol phases
// (offline generate / offline transmit / online compute1 / communicate /
// compute2 ...). The Fig. 2 and Table 3 benchmarks read their breakdowns
// from here.
#pragma once

#include <map>
#include <mutex>
#include <string>

#include "common/timer.hpp"

namespace psml::profile {

struct PhaseStat {
  double total_sec = 0.0;
  std::uint64_t count = 0;
};

class Profiler {
 public:
  void add(const std::string& phase, double seconds);

  double total(const std::string& phase) const;
  std::map<std::string, PhaseStat> report() const;
  void reset();

  // Process-wide instance used by the framework drivers.
  static Profiler& global();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, PhaseStat> phases_;
};

// RAII phase scope.
class ScopedPhase {
 public:
  ScopedPhase(Profiler& profiler, std::string phase)
      : profiler_(profiler), phase_(std::move(phase)) {}
  ~ScopedPhase() { profiler_.add(phase_, timer_.seconds()); }
  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  Profiler& profiler_;
  std::string phase_;
  Timer timer_;
};

}  // namespace psml::profile
