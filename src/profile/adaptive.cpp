#include "profile/adaptive.hpp"

#include <algorithm>
#include <mutex>

#include "common/timer.hpp"
#include "rng/rng.hpp"
#include "sgpu/ops.hpp"
#include "tensor/gemm.hpp"

namespace psml::profile {

namespace {

double flops_of(std::size_t m, std::size_t n, std::size_t k) {
  return 2.0 * static_cast<double>(m) * static_cast<double>(n) *
         static_cast<double>(k);
}

double moved_bytes(std::size_t m, std::size_t n, std::size_t k) {
  return static_cast<double>((m * k + k * n + m * n) * sizeof(float));
}

double time_cpu_gemm(const MatrixF& a, const MatrixF& b, MatrixF& c) {
  Timer t;
  tensor::gemm_parallel(1.0f, a, tensor::Trans::kNo, b, tensor::Trans::kNo,
                        0.0f, c);
  return t.seconds();
}

double time_gpu_gemm(sgpu::Device& dev, const MatrixF& a, const MatrixF& b) {
  Timer t;
  (void)sgpu::device_matmul(dev, a, b);
  return t.seconds();
}

}  // namespace

void AdaptiveDispatch::calibrate(sgpu::Device& dev, std::size_t small_n,
                                 std::size_t large_n) {
  // Two probe sizes per engine; the affine GPU model needs two points, the
  // linear CPU model uses the larger probe only (less timer noise). All the
  // probe work runs without the lock — only the final publish takes it.
  MatrixF a_small(small_n, small_n), b_small(small_n, small_n);
  MatrixF a_large(large_n, large_n), b_large(large_n, large_n);
  rng::fill_uniform(a_small, -1.0f, 1.0f);
  rng::fill_uniform(b_small, -1.0f, 1.0f);
  rng::fill_uniform(a_large, -1.0f, 1.0f);
  rng::fill_uniform(b_large, -1.0f, 1.0f);

  // Warm-up both engines (thread pools, device streams).
  MatrixF c_small(small_n, small_n);
  time_cpu_gemm(a_small, b_small, c_small);
  time_gpu_gemm(dev, a_small, b_small);

  // Median-of-3 timings.
  auto median3 = [](double x, double y, double z) {
    return std::max(std::min(x, y), std::min(std::max(x, y), z));
  };

  MatrixF c_large(large_n, large_n);
  const double cpu_large =
      median3(time_cpu_gemm(a_large, b_large, c_large),
              time_cpu_gemm(a_large, b_large, c_large),
              time_cpu_gemm(a_large, b_large, c_large));
  const double gpu_small = median3(time_gpu_gemm(dev, a_small, b_small),
                                   time_gpu_gemm(dev, a_small, b_small),
                                   time_gpu_gemm(dev, a_small, b_small));
  const double gpu_large = median3(time_gpu_gemm(dev, a_large, b_large),
                                   time_gpu_gemm(dev, a_large, b_large),
                                   time_gpu_gemm(dev, a_large, b_large));

  const double f_small = flops_of(small_n, small_n, small_n);
  const double f_large = flops_of(large_n, large_n, large_n);
  const double bytes_small = moved_bytes(small_n, small_n, small_n);
  const double bytes_large = moved_bytes(large_n, large_n, large_n);

  Model m;
  m.cpu_sec_per_flop = cpu_large / f_large;
  // Split the GPU affine fit: attribute the configured PCIe bandwidth to the
  // byte term when present, else fold transfers into the flop slope.
  const double gbps = dev.config().pcie_gbps;
  m.gpu_sec_per_byte = gbps > 0.0 ? 1.0 / (gbps * 1e9) : 0.0;
  const double t_small = std::max(1e-9, gpu_small - bytes_small * m.gpu_sec_per_byte);
  const double t_large = std::max(1e-9, gpu_large - bytes_large * m.gpu_sec_per_byte);
  m.gpu_sec_per_flop = std::max(0.0, (t_large - t_small) / (f_large - f_small));
  m.gpu_overhead_sec = std::max(0.0, t_small - m.gpu_sec_per_flop * f_small);
  m.calibrated = true;
  m.kernel_revision = tensor::gemm_kernel_revision();
  std::lock_guard<std::mutex> lock(mutex_);
  model_ = m;
}

DispatchDecision AdaptiveDispatch::decide(std::size_t m, std::size_t n,
                                          std::size_t k) const {
  const Model snap = model();
  DispatchDecision d;
  if (!snap.calibrated ||
      snap.kernel_revision != tensor::gemm_kernel_revision()) {
    // Uncalibrated (or stale: the CPU kernel changed since the fit) fallback:
    // a static flop threshold. 2^21 flops ~ a 128^3 multiply, the regime
    // where transfer overhead stops dominating.
    d.use_gpu = flops_of(m, n, k) >= static_cast<double>(1 << 21);
    return d;
  }
  const double f = flops_of(m, n, k);
  const double bytes = moved_bytes(m, n, k);
  d.est_cpu_sec = snap.cpu_sec_per_flop * f;
  d.est_gpu_sec = snap.gpu_overhead_sec + snap.gpu_sec_per_flop * f +
                  snap.gpu_sec_per_byte * bytes;
  d.use_gpu = d.est_gpu_sec < d.est_cpu_sec;
  return d;
}

AdaptiveDispatch::Model AdaptiveDispatch::model() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return model_;
}

void AdaptiveDispatch::set_model(const Model& m) {
  std::lock_guard<std::mutex> lock(mutex_);
  model_ = m;
  model_.kernel_revision = tensor::gemm_kernel_revision();
}

AdaptiveDispatch& AdaptiveDispatch::global() {
  // Two-step init (the mutex member makes AdaptiveDispatch immovable): the
  // calibration runs inside a thread-safe static initializer exactly once.
  static AdaptiveDispatch dispatch;
  static const bool calibrated = [] {
    dispatch.calibrate(sgpu::Device::global());
    return true;
  }();
  (void)calibrated;
  return dispatch;
}

}  // namespace psml::profile
