// Model checkpointing: save/load trained weights to a portable binary file.
//
// Format: magic | version | layer count | per layer {kind tag, matrices}.
// Covers Sequential (Dense/Conv2D/activations) and RnnModel. The secure
// world reuses this through reconstruct_plain: reconstruct, save; and a
// saved plaintext model can be re-shared with mpc::share_float to resume
// secure training.
#pragma once

#include <iosfwd>
#include <string>

#include "ml/plain/model.hpp"
#include "ml/plain/rnn.hpp"

namespace psml::ml {

void save_model(const std::string& path, Sequential& model);
void save_model(const std::string& path, const RnnModel& model);

// Loads weights into an already-built model with the identical architecture;
// throws InvalidArgument on any mismatch (layer count, kinds, shapes).
void load_model(const std::string& path, Sequential& model);
void load_model(const std::string& path, RnnModel& model);

// Stream variants (unit-testable without the filesystem).
void save_model(std::ostream& os, Sequential& model);
void load_model(std::istream& is, Sequential& model);
void save_model(std::ostream& os, const RnnModel& model);
void load_model(std::istream& is, RnnModel& model);

class SecureSequential;

// Share snapshot: serializes one server's *parameter shares* without any
// reconstruction or communication — purely local, so it is safe to take
// even while the peer is unreachable. Used by the fault-tolerant training
// loop to roll a model back to the start of a failed step before retrying.
// load throws InvalidArgument on any shape/count mismatch.
void save_share_snapshot(std::ostream& os, SecureSequential& model);
void load_share_snapshot(std::istream& is, SecureSequential& model);

}  // namespace psml::ml
