// Model checkpointing: save/load trained weights to a portable binary file.
//
// Format: magic | version | layer count | per layer {kind tag, matrices}.
// Covers Sequential (Dense/Conv2D/activations) and RnnModel. The secure
// world reuses this through reconstruct_plain: reconstruct, save; and a
// saved plaintext model can be re-shared with mpc::share_float to resume
// secure training.
#pragma once

#include <iosfwd>
#include <string>

#include "ml/plain/model.hpp"
#include "ml/plain/rnn.hpp"

namespace psml::ml {

void save_model(const std::string& path, Sequential& model);
void save_model(const std::string& path, const RnnModel& model);

// Loads weights into an already-built model with the identical architecture;
// throws InvalidArgument on any mismatch (layer count, kinds, shapes).
void load_model(const std::string& path, Sequential& model);
void load_model(const std::string& path, RnnModel& model);

// Stream variants (unit-testable without the filesystem).
void save_model(std::ostream& os, Sequential& model);
void load_model(std::istream& is, Sequential& model);
void save_model(std::ostream& os, const RnnModel& model);
void load_model(std::istream& is, RnnModel& model);

}  // namespace psml::ml
