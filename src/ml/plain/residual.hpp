// Residual block (paper Sec. 7.7 "Possible Application Scenarios": "most
// layers in ResNet are convolution layers ... ParSecureML still can be
// used"). The block computes
//   y = f(inner(x) + x)
// where `inner` is any width-preserving stack of layers and f is the Eq. 9
// activation. The skip connection is a share-linear add, so the secure
// counterpart costs nothing beyond the inner layers.
#pragma once

#include <memory>
#include <vector>

#include "ml/plain/layers.hpp"

namespace psml::ml {

class ResidualBlock : public Layer {
 public:
  // Inner layers must preserve feature width.
  explicit ResidualBlock(std::vector<std::unique_ptr<Layer>> inner);

  MatrixF forward(const MatrixF& x) override;
  MatrixF backward(const MatrixF& dy) override;
  void update(float lr) override;
  std::size_t out_features(std::size_t in) const override { return in; }

  std::size_t inner_size() const { return inner_.size(); }
  Layer& inner_layer(std::size_t i) { return *inner_[i]; }

 private:
  std::vector<std::unique_ptr<Layer>> inner_;
  MatrixF act_mask_;
};

}  // namespace psml::ml
