// Plaintext Elman RNN with full backpropagation through time.
//
//   h_t = f(x_t W_x + h_{t-1} W_h),   o = h_T W_o
// with f the Eq. 9 piecewise activation. Sequences are provided as a vector
// of per-timestep batch x input_dim matrices.
#pragma once

#include <vector>

#include "tensor/matrix.hpp"

namespace psml::ml {

class RnnModel {
 public:
  RnnModel(std::size_t input_dim, std::size_t hidden_dim,
           std::size_t output_dim, std::uint64_t seed = 44);

  // xs: one matrix per timestep, each batch x input_dim.
  MatrixF forward(const std::vector<MatrixF>& xs);

  // Full BPTT from the output-loss gradient; accumulates parameter grads.
  void backward(const MatrixF& dout);

  void update(float lr);

  std::size_t hidden_dim() const { return wh_.rows(); }
  std::size_t output_dim() const { return wo_.cols(); }
  const MatrixF& wx() const { return wx_; }
  const MatrixF& wh() const { return wh_; }
  const MatrixF& wo() const { return wo_; }
  MatrixF& wx() { return wx_; }
  MatrixF& wh() { return wh_; }
  MatrixF& wo() { return wo_; }

 private:
  MatrixF wx_;  // input_dim x hidden
  MatrixF wh_;  // hidden x hidden
  MatrixF wo_;  // hidden x output
  MatrixF dwx_, dwh_, dwo_;

  // Caches for BPTT.
  std::vector<MatrixF> xs_cache_;
  std::vector<MatrixF> h_cache_;     // h_0 .. h_T (h_0 = zeros)
  std::vector<MatrixF> mask_cache_;  // activation derivative per step
};

}  // namespace psml::ml
