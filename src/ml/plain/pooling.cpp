#include "ml/plain/pooling.hpp"

namespace psml::ml {

AvgPool2D::AvgPool2D(PoolShape shape) : shape_(shape) {
  PSML_REQUIRE(shape_.window > 0 && shape_.in_h % shape_.window == 0 &&
                   shape_.in_w % shape_.window == 0,
               "AvgPool2D: window must evenly divide the input");
}

MatrixF AvgPool2D::pool(const MatrixF& x, const PoolShape& s) {
  PSML_REQUIRE(x.cols() == s.in_features(), "AvgPool2D: input width mismatch");
  const std::size_t oh = s.out_h(), ow = s.out_w();
  const float inv = 1.0f / static_cast<float>(s.window * s.window);
  MatrixF y(x.rows(), s.out_features_(), 0.0f);
  for (std::size_t b = 0; b < x.rows(); ++b) {
    const float* img = x.data() + b * x.cols();
    float* out = y.data() + b * y.cols();
    for (std::size_t c = 0; c < s.channels; ++c) {
      const float* chan = img + c * s.in_h * s.in_w;
      float* omap = out + c * oh * ow;
      for (std::size_t oy = 0; oy < oh; ++oy) {
        for (std::size_t ox = 0; ox < ow; ++ox) {
          float acc = 0.0f;
          for (std::size_t wy = 0; wy < s.window; ++wy) {
            const float* row = chan + (oy * s.window + wy) * s.in_w;
            for (std::size_t wx = 0; wx < s.window; ++wx) {
              acc += row[ox * s.window + wx];
            }
          }
          omap[oy * ow + ox] = acc * inv;
        }
      }
    }
  }
  return y;
}

MatrixF AvgPool2D::unpool(const MatrixF& dy, const PoolShape& s) {
  PSML_REQUIRE(dy.cols() == s.out_features_(),
               "AvgPool2D: grad width mismatch");
  const std::size_t oh = s.out_h(), ow = s.out_w();
  const float inv = 1.0f / static_cast<float>(s.window * s.window);
  MatrixF dx(dy.rows(), s.in_features(), 0.0f);
  for (std::size_t b = 0; b < dy.rows(); ++b) {
    const float* grad = dy.data() + b * dy.cols();
    float* img = dx.data() + b * dx.cols();
    for (std::size_t c = 0; c < s.channels; ++c) {
      const float* gmap = grad + c * oh * ow;
      float* chan = img + c * s.in_h * s.in_w;
      for (std::size_t oy = 0; oy < oh; ++oy) {
        for (std::size_t ox = 0; ox < ow; ++ox) {
          const float g = gmap[oy * ow + ox] * inv;
          for (std::size_t wy = 0; wy < s.window; ++wy) {
            float* row = chan + (oy * s.window + wy) * s.in_w;
            for (std::size_t wx = 0; wx < s.window; ++wx) {
              row[ox * s.window + wx] = g;
            }
          }
        }
      }
    }
  }
  return dx;
}

MatrixF AvgPool2D::forward(const MatrixF& x) { return pool(x, shape_); }
MatrixF AvgPool2D::backward(const MatrixF& dy) { return unpool(dy, shape_); }

}  // namespace psml::ml
