#include "ml/plain/model.hpp"

#include <algorithm>

#include "tensor/ops.hpp"

namespace psml::ml {

MatrixF Sequential::forward(const MatrixF& x) {
  MatrixF cur = x;
  for (auto& l : layers_) cur = l->forward(cur);
  return cur;
}

MatrixF Sequential::backward(const MatrixF& dloss) {
  MatrixF cur = dloss;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    cur = (*it)->backward(cur);
  }
  return cur;
}

void Sequential::update(float lr) {
  for (auto& l : layers_) l->update(lr);
}

LossResult compute_loss(LossKind kind, const MatrixF& pred,
                        const MatrixF& target) {
  PSML_REQUIRE(pred.same_shape(target), "loss: shape mismatch");
  LossResult out;
  out.grad.resize(pred.rows(), pred.cols());
  const float inv_n = 1.0f / static_cast<float>(pred.rows());
  double acc = 0.0;
  switch (kind) {
    case LossKind::kMse: {
      for (std::size_t i = 0; i < pred.size(); ++i) {
        const float d = pred.data()[i] - target.data()[i];
        acc += 0.5 * d * d;
        out.grad.data()[i] = d * inv_n;
      }
      break;
    }
    case LossKind::kHinge: {
      // L = mean(max(0, 1 - y * p)); dL/dp = -y when margin violated.
      for (std::size_t i = 0; i < pred.size(); ++i) {
        const float margin = 1.0f - target.data()[i] * pred.data()[i];
        if (margin > 0.0f) {
          acc += margin;
          out.grad.data()[i] = -target.data()[i] * inv_n;
        } else {
          out.grad.data()[i] = 0.0f;
        }
      }
      break;
    }
  }
  out.value = static_cast<float>(acc * inv_n);
  return out;
}

float train_batch(Sequential& model, LossKind loss, const MatrixF& x,
                  const MatrixF& y, float lr) {
  const MatrixF pred = model.forward(x);
  const LossResult lr_res = compute_loss(loss, pred, y);
  model.backward(lr_res.grad);
  model.update(lr);
  return lr_res.value;
}

double accuracy(const MatrixF& pred, const MatrixF& target) {
  PSML_REQUIRE(pred.same_shape(target), "accuracy: shape mismatch");
  if (pred.rows() == 0) return 0.0;
  std::size_t correct = 0;
  if (pred.cols() == 1) {
    // Binary task. Targets are either {0,1} (regression/logistic) or +-1
    // (SVM); pick the decision threshold by the label convention in use.
    bool pm_one = false;
    for (std::size_t r = 0; r < target.rows(); ++r) {
      if (target(r, 0) < 0.0f) {
        pm_one = true;
        break;
      }
    }
    const float threshold = pm_one ? 0.0f : 0.5f;
    for (std::size_t r = 0; r < pred.rows(); ++r) {
      const bool predicted_pos = pred(r, 0) >= threshold;
      const bool actual_pos = target(r, 0) >= threshold;
      if (predicted_pos == actual_pos) ++correct;
    }
  } else {
    for (std::size_t r = 0; r < pred.rows(); ++r) {
      const auto prow = pred.row(r);
      const auto trow = target.row(r);
      const auto pi = std::max_element(prow.begin(), prow.end());
      const auto ti = std::max_element(trow.begin(), trow.end());
      if (std::distance(prow.begin(), pi) == std::distance(trow.begin(), ti)) {
        ++correct;
      }
    }
  }
  return static_cast<double>(correct) / static_cast<double>(pred.rows());
}

}  // namespace psml::ml
