#include "ml/plain/rnn.hpp"

#include "ml/plain/layers.hpp"
#include "tensor/gemm.hpp"
#include "tensor/ops.hpp"

namespace psml::ml {

RnnModel::RnnModel(std::size_t input_dim, std::size_t hidden_dim,
                   std::size_t output_dim, std::uint64_t seed)
    : wx_(xavier_init(input_dim, hidden_dim, seed)),
      wh_(xavier_init(hidden_dim, hidden_dim, seed + 1)),
      wo_(xavier_init(hidden_dim, output_dim, seed + 2)),
      dwx_(input_dim, hidden_dim, 0.0f),
      dwh_(hidden_dim, hidden_dim, 0.0f),
      dwo_(hidden_dim, output_dim, 0.0f) {}

MatrixF RnnModel::forward(const std::vector<MatrixF>& xs) {
  PSML_REQUIRE(!xs.empty(), "RNN: empty sequence");
  const std::size_t batch = xs[0].rows();
  const std::size_t hidden = wh_.rows();

  xs_cache_ = xs;
  h_cache_.assign(1, MatrixF(batch, hidden, 0.0f));
  mask_cache_.clear();

  for (const auto& x : xs) {
    PSML_REQUIRE(x.cols() == wx_.rows(), "RNN: input width mismatch");
    MatrixF z = tensor::matmul(x, wx_);
    tensor::gemm_parallel(1.0f, h_cache_.back(), tensor::Trans::kNo, wh_,
                          tensor::Trans::kNo, 1.0f, z);
    MatrixF h(batch, hidden);
    MatrixF mask(batch, hidden);
    for (std::size_t i = 0; i < z.size(); ++i) {
      const float v = z.data()[i];
      if (v < -0.5f) {
        h.data()[i] = 0.0f;
        mask.data()[i] = 0.0f;
      } else if (v > 0.5f) {
        h.data()[i] = 1.0f;
        mask.data()[i] = 0.0f;
      } else {
        h.data()[i] = v + 0.5f;
        mask.data()[i] = 1.0f;
      }
    }
    h_cache_.push_back(std::move(h));
    mask_cache_.push_back(std::move(mask));
  }
  return tensor::matmul(h_cache_.back(), wo_);
}

void RnnModel::backward(const MatrixF& dout) {
  const std::size_t steps = xs_cache_.size();
  // dW_o = h_T^T x dout ; dh_T = dout x W_o^T
  MatrixF ht_t = tensor::transpose(h_cache_.back());
  tensor::gemm_parallel(1.0f, ht_t, tensor::Trans::kNo, dout,
                        tensor::Trans::kNo, 1.0f, dwo_);
  MatrixF dh = tensor::matmul(dout, tensor::transpose(wo_));

  for (std::size_t t = steps; t-- > 0;) {
    // dz = dh .* mask_t
    MatrixF dz;
    tensor::hadamard(dh, mask_cache_[t], dz);
    // dW_x += x_t^T dz ; dW_h += h_{t-1}^T dz ; dh = dz W_h^T
    tensor::gemm_parallel(1.0f, xs_cache_[t], tensor::Trans::kYes, dz,
                          tensor::Trans::kNo, 1.0f, dwx_);
    tensor::gemm_parallel(1.0f, h_cache_[t], tensor::Trans::kYes, dz,
                          tensor::Trans::kNo, 1.0f, dwh_);
    dh = tensor::matmul(dz, tensor::transpose(wh_));
  }
}

void RnnModel::update(float lr) {
  tensor::axpy(-lr, dwx_, wx_);
  tensor::axpy(-lr, dwh_, wh_);
  tensor::axpy(-lr, dwo_, wo_);
  dwx_.fill(0.0f);
  dwh_.fill(0.0f);
  dwo_.fill(0.0f);
}

}  // namespace psml::ml
