// Average pooling. Chosen over max pooling deliberately: averaging is
// *linear*, so the secure counterpart is purely local on shares (no
// comparison protocol per window) — the same reason SecureML-family systems
// prefer it. Input/output use the channel-major flat layout of Conv2D.
#pragma once

#include "ml/plain/layers.hpp"

namespace psml::ml {

struct PoolShape {
  std::size_t in_h = 0, in_w = 0;
  std::size_t channels = 1;
  std::size_t window = 2;  // square, non-overlapping (stride == window)

  std::size_t out_h() const { return in_h / window; }
  std::size_t out_w() const { return in_w / window; }
  std::size_t in_features() const { return channels * in_h * in_w; }
  std::size_t out_features_() const { return channels * out_h() * out_w(); }
};

class AvgPool2D : public Layer {
 public:
  explicit AvgPool2D(PoolShape shape);

  MatrixF forward(const MatrixF& x) override;
  MatrixF backward(const MatrixF& dy) override;
  std::size_t out_features(std::size_t) const override {
    return shape_.out_features_();
  }

  const PoolShape& shape() const { return shape_; }

  // The linear maps themselves, exposed for the secure layer (identical
  // code runs on shares).
  static MatrixF pool(const MatrixF& x, const PoolShape& s);
  static MatrixF unpool(const MatrixF& dy, const PoolShape& s);

 private:
  PoolShape shape_;
};

}  // namespace psml::ml
