// Plaintext sequential model, losses, SGD training loop, metrics.
#pragma once

#include <memory>
#include <vector>

#include "ml/plain/layers.hpp"

namespace psml::ml {

enum class LossKind {
  kMse,    // mean squared error (also used for one-hot classification,
           // SecureML-style)
  kHinge,  // SVM hinge loss on +-1 labels
};

class Sequential {
 public:
  Sequential() = default;

  void add(std::unique_ptr<Layer> layer) { layers_.push_back(std::move(layer)); }
  std::size_t size() const { return layers_.size(); }
  Layer& layer(std::size_t i) { return *layers_[i]; }

  MatrixF forward(const MatrixF& x);
  // Full backward from the loss gradient; returns input gradient.
  MatrixF backward(const MatrixF& dloss);
  void update(float lr);

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
};

// Loss value and gradient w.r.t. predictions.
struct LossResult {
  float value = 0.0f;
  MatrixF grad;  // d loss / d pred
};
LossResult compute_loss(LossKind kind, const MatrixF& pred,
                        const MatrixF& target);

// One SGD step over a batch: forward, loss, backward, update. Returns loss.
float train_batch(Sequential& model, LossKind loss, const MatrixF& x,
                  const MatrixF& y, float lr);

// Classification accuracy by row-argmax (one-hot targets) or by sign when
// predictions have a single column (+-1 targets).
double accuracy(const MatrixF& pred, const MatrixF& target);

}  // namespace psml::ml
