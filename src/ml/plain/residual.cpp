#include "ml/plain/residual.hpp"

#include "tensor/ops.hpp"

namespace psml::ml {

ResidualBlock::ResidualBlock(std::vector<std::unique_ptr<Layer>> inner)
    : inner_(std::move(inner)) {
  PSML_REQUIRE(!inner_.empty(), "ResidualBlock: empty inner stack");
}

MatrixF ResidualBlock::forward(const MatrixF& x) {
  MatrixF cur = x;
  for (auto& l : inner_) cur = l->forward(cur);
  PSML_REQUIRE(cur.same_shape(x),
               "ResidualBlock: inner stack changed feature width");
  MatrixF z;
  tensor::add(cur, x, z);

  // Eq. 9 activation on the summed pre-activation.
  MatrixF y(z.rows(), z.cols());
  act_mask_.resize(z.rows(), z.cols());
  for (std::size_t i = 0; i < z.size(); ++i) {
    const float v = z.data()[i];
    if (v < -0.5f) {
      y.data()[i] = 0.0f;
      act_mask_.data()[i] = 0.0f;
    } else if (v > 0.5f) {
      y.data()[i] = 1.0f;
      act_mask_.data()[i] = 0.0f;
    } else {
      y.data()[i] = v + 0.5f;
      act_mask_.data()[i] = 1.0f;
    }
  }
  return y;
}

MatrixF ResidualBlock::backward(const MatrixF& dy) {
  // Through the activation, then both branches: dX = inner'(dz) + dz.
  MatrixF dz;
  tensor::hadamard(dy, act_mask_, dz);
  MatrixF dinner = dz;
  for (auto it = inner_.rbegin(); it != inner_.rend(); ++it) {
    dinner = (*it)->backward(dinner);
  }
  MatrixF dx;
  tensor::add(dinner, dz, dx);
  return dx;
}

void ResidualBlock::update(float lr) {
  for (auto& l : inner_) l->update(lr);
}

}  // namespace psml::ml
