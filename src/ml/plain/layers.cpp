#include "ml/plain/layers.hpp"

#include <cmath>

#include "rng/rng.hpp"
#include "sgpu/ops.hpp"
#include "tensor/gemm.hpp"
#include "tensor/ops.hpp"

namespace psml::ml {

MatrixF engine_matmul(Engine engine, const MatrixF& a, const MatrixF& b) {
  switch (engine) {
    case Engine::kCpuNaive:
      return tensor::matmul_naive(a, b);
    case Engine::kCpuParallel:
      return tensor::matmul(a, b);
    case Engine::kGpu:
      return sgpu::device_matmul(a, b);
  }
  throw InvalidArgument("unknown engine");
}

MatrixF xavier_init(std::size_t in, std::size_t out, std::uint64_t seed) {
  MatrixF w(in, out);
  const float a = std::sqrt(1.5f / static_cast<float>(in));
  rng::fill_uniform_par(w, -a, a, seed);
  return w;
}

// ---- Dense ----------------------------------------------------------------

Dense::Dense(std::size_t in, std::size_t out, Engine engine,
             std::uint64_t seed)
    : w_(xavier_init(in, out, seed)),
      b_(1, out, 0.0f),
      dw_(in, out, 0.0f),
      db_(1, out, 0.0f),
      engine_(engine) {}

MatrixF Dense::forward(const MatrixF& x) {
  PSML_REQUIRE(x.cols() == w_.rows(), "Dense: input width mismatch");
  x_cache_ = x;
  MatrixF y = engine_matmul(engine_, x, w_);
  for (std::size_t r = 0; r < y.rows(); ++r) {
    float* row = y.data() + r * y.cols();
    for (std::size_t c = 0; c < y.cols(); ++c) row[c] += b_(0, c);
  }
  return y;
}

MatrixF Dense::backward(const MatrixF& dy) {
  PSML_REQUIRE(dy.cols() == w_.cols(), "Dense: grad width mismatch");
  // dW = X^T x dY ; db = 1^T x dY ; dX = dY x W^T
  dw_ = engine_matmul(engine_, tensor::transpose(x_cache_), dy);
  for (std::size_t r = 0; r < dy.rows(); ++r) {
    const float* row = dy.data() + r * dy.cols();
    for (std::size_t c = 0; c < dy.cols(); ++c) db_(0, c) += row[c];
  }
  return engine_matmul(engine_, dy, tensor::transpose(w_));
}

void Dense::update(float lr) {
  tensor::axpy(-lr, dw_, w_);
  tensor::axpy(-lr, db_, b_);
  dw_.fill(0.0f);
  db_.fill(0.0f);
}

// ---- PiecewiseActivation ---------------------------------------------------

MatrixF PiecewiseActivation::forward(const MatrixF& x) {
  MatrixF y(x.rows(), x.cols());
  mask_.resize(x.rows(), x.cols());
  for (std::size_t i = 0; i < x.size(); ++i) {
    const float v = x.data()[i];
    if (v < -0.5f) {
      y.data()[i] = 0.0f;
      mask_.data()[i] = 0.0f;
    } else if (v > 0.5f) {
      y.data()[i] = 1.0f;
      mask_.data()[i] = 0.0f;
    } else {
      y.data()[i] = v + 0.5f;
      mask_.data()[i] = 1.0f;
    }
  }
  return y;
}

MatrixF PiecewiseActivation::backward(const MatrixF& dy) {
  MatrixF dx;
  tensor::hadamard(dy, mask_, dx);
  return dx;
}

// ---- ReLU -------------------------------------------------------------------

MatrixF ReLU::forward(const MatrixF& x) {
  MatrixF y(x.rows(), x.cols());
  mask_.resize(x.rows(), x.cols());
  for (std::size_t i = 0; i < x.size(); ++i) {
    const float v = x.data()[i];
    y.data()[i] = v > 0.0f ? v : 0.0f;
    mask_.data()[i] = v > 0.0f ? 1.0f : 0.0f;
  }
  return y;
}

MatrixF ReLU::backward(const MatrixF& dy) {
  MatrixF dx;
  tensor::hadamard(dy, mask_, dx);
  return dx;
}

// ---- Conv2D -----------------------------------------------------------------

Conv2D::Conv2D(tensor::ConvShape shape, Engine engine, std::uint64_t seed)
    : shape_(shape),
      w_(xavier_init(shape.patch_cols(), shape.out_c, seed)),
      dw_(shape.patch_cols(), shape.out_c, 0.0f),
      engine_(engine) {}

// Patch-matrix layout: rows are (batch, oy, ox); columns are the receptive
// field. Output is returned as batch x (out_c * oh * ow) with channel-major
// feature maps, matching conv2d_direct.
MatrixF Conv2D::forward(const MatrixF& x) {
  batch_cache_ = x.rows();
  patches_cache_ = tensor::im2col(x, shape_);
  // P x W: (batch*oh*ow) x out_c
  MatrixF flat = engine_matmul(engine_, patches_cache_, w_);
  // Transpose the per-image block to channel-major maps.
  const std::size_t oh = shape_.out_h(), ow = shape_.out_w();
  const std::size_t spatial = oh * ow;
  MatrixF y(batch_cache_, shape_.out_c * spatial);
  for (std::size_t b = 0; b < batch_cache_; ++b) {
    for (std::size_t s = 0; s < spatial; ++s) {
      const float* frow = flat.data() + (b * spatial + s) * shape_.out_c;
      for (std::size_t c = 0; c < shape_.out_c; ++c) {
        y(b, c * spatial + s) = frow[c];
      }
    }
  }
  return y;
}

MatrixF Conv2D::backward(const MatrixF& dy) {
  const std::size_t oh = shape_.out_h(), ow = shape_.out_w();
  const std::size_t spatial = oh * ow;
  PSML_REQUIRE(dy.cols() == shape_.out_c * spatial,
               "Conv2D: grad width mismatch");
  // Back to patch-row layout: (batch*oh*ow) x out_c.
  MatrixF flat(batch_cache_ * spatial, shape_.out_c);
  for (std::size_t b = 0; b < batch_cache_; ++b) {
    for (std::size_t s = 0; s < spatial; ++s) {
      float* frow = flat.data() + (b * spatial + s) * shape_.out_c;
      for (std::size_t c = 0; c < shape_.out_c; ++c) {
        frow[c] = dy(b, c * spatial + s);
      }
    }
  }
  // dW = P^T x dYflat ; dP = dYflat x W^T ; dX = col2im(dP)
  dw_ = engine_matmul(engine_, tensor::transpose(patches_cache_), flat);
  MatrixF dpatches = engine_matmul(engine_, flat, tensor::transpose(w_));
  return tensor::col2im(dpatches, shape_, batch_cache_);
}

void Conv2D::update(float lr) {
  tensor::axpy(-lr, dw_, w_);
  dw_.fill(0.0f);
}

}  // namespace psml::ml
