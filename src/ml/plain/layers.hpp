// Plaintext reference layers — the "original machine learning tasks" the
// paper compares against (Table 1, Table 2). Each matmul-bearing layer runs
// on a selectable engine: naive single-thread CPU (the "original"
// implementation of Table 1), parallel CPU, or the simulated GPU (the
// non-secure GPU tasks of Table 2).
#pragma once

#include <memory>
#include <vector>

#include "tensor/im2col.hpp"
#include "tensor/matrix.hpp"

namespace psml::ml {

enum class Engine {
  kCpuNaive,     // single-thread triple-loop GEMM
  kCpuParallel,  // blocked multi-thread GEMM
  kGpu,          // simulated-device GEMM (upload/compute/download)
};

// C = A x B on the chosen engine.
MatrixF engine_matmul(Engine engine, const MatrixF& a, const MatrixF& b);

class Layer {
 public:
  virtual ~Layer() = default;

  // X: batch x in_features. Returns batch x out_features; caches what the
  // backward pass needs.
  virtual MatrixF forward(const MatrixF& x) = 0;

  // dY: gradient w.r.t. the forward output. Returns gradient w.r.t. X and
  // accumulates parameter gradients internally.
  virtual MatrixF backward(const MatrixF& dy) = 0;

  // SGD step on accumulated gradients; clears them.
  virtual void update(float lr) {}

  virtual std::size_t out_features(std::size_t in_features) const = 0;
};

// Fully connected layer with bias. The bias matters here more than in a
// ReLU network: the Eq. 9 activation's linear region is only [-1/2, 1/2]
// and its outputs have mean 1/2, so learned offsets are what keep the next
// layer's pre-activations inside the region.
class Dense : public Layer {
 public:
  Dense(std::size_t in, std::size_t out, Engine engine,
        std::uint64_t seed = 42);

  MatrixF forward(const MatrixF& x) override;
  MatrixF backward(const MatrixF& dy) override;
  void update(float lr) override;
  std::size_t out_features(std::size_t) const override { return w_.cols(); }

  const MatrixF& weights() const { return w_; }
  MatrixF& weights() { return w_; }
  const MatrixF& bias() const { return b_; }
  MatrixF& bias() { return b_; }

 private:
  MatrixF w_;   // in x out
  MatrixF b_;   // 1 x out
  MatrixF dw_;  // gradient accumulators
  MatrixF db_;
  MatrixF x_cache_;
  Engine engine_;
};

// Piecewise-linear activation of Eq. 9 (the secure-friendly nonlinearity).
class PiecewiseActivation : public Layer {
 public:
  MatrixF forward(const MatrixF& x) override;
  MatrixF backward(const MatrixF& dy) override;
  std::size_t out_features(std::size_t in) const override { return in; }

 private:
  MatrixF mask_;
};

// Standard ReLU (used by the plaintext CNN/MLP variants the paper cites).
class ReLU : public Layer {
 public:
  MatrixF forward(const MatrixF& x) override;
  MatrixF backward(const MatrixF& dy) override;
  std::size_t out_features(std::size_t in) const override { return in; }

 private:
  MatrixF mask_;
};

// 2-D convolution via im2col + GEMM; weights out_c x (in_c * k * k).
class Conv2D : public Layer {
 public:
  Conv2D(tensor::ConvShape shape, Engine engine, std::uint64_t seed = 43);

  MatrixF forward(const MatrixF& x) override;
  MatrixF backward(const MatrixF& dy) override;
  void update(float lr) override;
  std::size_t out_features(std::size_t) const override {
    return shape_.out_c * shape_.out_h() * shape_.out_w();
  }

  const tensor::ConvShape& shape() const { return shape_; }
  const MatrixF& weights() const { return w_; }
  MatrixF& weights() { return w_; }

 private:
  tensor::ConvShape shape_;
  MatrixF w_;
  MatrixF dw_;
  MatrixF patches_cache_;
  std::size_t batch_cache_ = 0;
  Engine engine_;
};

// Initial weights, deterministic in `seed`: uniform in +-sqrt(1.5/in).
// Scaled for the Eq. 9 piecewise activation — its inputs carry a mean of
// ~1/2 and the linear region is narrow, so classic Xavier magnitudes
// saturate most units from the start (see DESIGN.md §5).
MatrixF xavier_init(std::size_t in, std::size_t out, std::uint64_t seed);

}  // namespace psml::ml
