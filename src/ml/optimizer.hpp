// Optimizers. SGD lives inline in the layers (update(lr)); this adds
// momentum as a layer-external state holder. The momentum recursion
//   v <- mu * v + g ; w <- w - lr * v
// is linear in the gradient, so the secure world applies it to gradient
// *shares* unchanged — each server keeps its own velocity share and the
// reconstructed trajectory equals plaintext momentum SGD.
#pragma once

#include <unordered_map>

#include "tensor/matrix.hpp"
#include "tensor/ops.hpp"

namespace psml::ml {

class MomentumState {
 public:
  explicit MomentumState(float mu = 0.9f) : mu_(mu) {}

  // Applies one momentum step to `weights` given gradient `grad`; velocity
  // is keyed by the weight matrix's address (one per parameter tensor).
  void step(MatrixF& weights, const MatrixF& grad, float lr) {
    PSML_REQUIRE(weights.same_shape(grad), "momentum: shape mismatch");
    MatrixF& v = velocity_[&weights];
    if (!v.same_shape(grad)) v.resize(grad.rows(), grad.cols());
    // v = mu * v + g
    tensor::scale(v, mu_, v);
    tensor::axpy(1.0f, grad, v);
    // w -= lr * v
    tensor::axpy(-lr, v, weights);
  }

  float mu() const { return mu_; }
  void reset() { velocity_.clear(); }

 private:
  float mu_;
  std::unordered_map<const MatrixF*, MatrixF> velocity_;
};

}  // namespace psml::ml
