#include "ml/checkpoint.hpp"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>

#include "ml/secure/secure_model.hpp"

namespace psml::ml {

namespace {

constexpr std::uint32_t kMagic = 0x50534d43;  // "PSMC"
constexpr std::uint32_t kVersion = 1;

enum class LayerTag : std::uint32_t {
  kDense = 1,
  kConv2D = 2,
  kPiecewise = 3,
  kRelu = 4,
  kRnn = 100,
};

void write_u32(std::ostream& os, std::uint32_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

std::uint32_t read_u32(std::istream& is) {
  std::uint32_t v = 0;
  is.read(reinterpret_cast<char*>(&v), sizeof(v));
  if (!is) throw InvalidArgument("checkpoint: truncated stream");
  return v;
}

void write_matrix(std::ostream& os, const MatrixF& m) {
  write_u32(os, static_cast<std::uint32_t>(m.rows()));
  write_u32(os, static_cast<std::uint32_t>(m.cols()));
  os.write(reinterpret_cast<const char*>(m.data()),
           static_cast<std::streamsize>(m.bytes()));
}

MatrixF read_matrix(std::istream& is) {
  const std::uint32_t rows = read_u32(is);
  const std::uint32_t cols = read_u32(is);
  MatrixF m(rows, cols);
  is.read(reinterpret_cast<char*>(m.data()),
          static_cast<std::streamsize>(m.bytes()));
  if (!is) throw InvalidArgument("checkpoint: truncated matrix data");
  return m;
}

void read_matrix_into(std::istream& is, MatrixF& dst, const char* what) {
  MatrixF m = read_matrix(is);
  PSML_REQUIRE(m.same_shape(dst),
               std::string("checkpoint: shape mismatch for ") + what);
  dst = std::move(m);
}

LayerTag tag_of(Layer& layer) {
  if (dynamic_cast<Dense*>(&layer) != nullptr) return LayerTag::kDense;
  if (dynamic_cast<Conv2D*>(&layer) != nullptr) return LayerTag::kConv2D;
  if (dynamic_cast<PiecewiseActivation*>(&layer) != nullptr) {
    return LayerTag::kPiecewise;
  }
  if (dynamic_cast<ReLU*>(&layer) != nullptr) return LayerTag::kRelu;
  throw InvalidArgument("checkpoint: unknown layer type");
}

void check_header(std::istream& is) {
  if (read_u32(is) != kMagic) {
    throw InvalidArgument("checkpoint: bad magic (not a psml checkpoint)");
  }
  if (read_u32(is) != kVersion) {
    throw InvalidArgument("checkpoint: unsupported version");
  }
}

}  // namespace

void save_model(std::ostream& os, Sequential& model) {
  write_u32(os, kMagic);
  write_u32(os, kVersion);
  write_u32(os, static_cast<std::uint32_t>(model.size()));
  for (std::size_t i = 0; i < model.size(); ++i) {
    Layer& layer = model.layer(i);
    write_u32(os, static_cast<std::uint32_t>(tag_of(layer)));
    if (auto* d = dynamic_cast<Dense*>(&layer)) {
      write_matrix(os, d->weights());
      write_matrix(os, d->bias());
    } else if (auto* c = dynamic_cast<Conv2D*>(&layer)) {
      write_matrix(os, c->weights());
    }
  }
}

void load_model(std::istream& is, Sequential& model) {
  check_header(is);
  const std::uint32_t count = read_u32(is);
  PSML_REQUIRE(count == model.size(), "checkpoint: layer count mismatch");
  for (std::size_t i = 0; i < model.size(); ++i) {
    Layer& layer = model.layer(i);
    const auto tag = static_cast<LayerTag>(read_u32(is));
    PSML_REQUIRE(tag == tag_of(layer), "checkpoint: layer kind mismatch");
    if (auto* d = dynamic_cast<Dense*>(&layer)) {
      read_matrix_into(is, d->weights(), "dense weights");
      read_matrix_into(is, d->bias(), "dense bias");
    } else if (auto* c = dynamic_cast<Conv2D*>(&layer)) {
      read_matrix_into(is, c->weights(), "conv weights");
    }
  }
}

void save_model(std::ostream& os, const RnnModel& model) {
  write_u32(os, kMagic);
  write_u32(os, kVersion);
  write_u32(os, 1);  // one "layer"
  write_u32(os, static_cast<std::uint32_t>(LayerTag::kRnn));
  write_matrix(os, model.wx());
  write_matrix(os, model.wh());
  write_matrix(os, model.wo());
}

void load_model(std::istream& is, RnnModel& model) {
  check_header(is);
  PSML_REQUIRE(read_u32(is) == 1, "checkpoint: not an RNN checkpoint");
  PSML_REQUIRE(static_cast<LayerTag>(read_u32(is)) == LayerTag::kRnn,
               "checkpoint: not an RNN checkpoint");
  read_matrix_into(is, model.wx(), "wx");
  read_matrix_into(is, model.wh(), "wh");
  read_matrix_into(is, model.wo(), "wo");
}

namespace {

template <typename Model>
void save_to_path(const std::string& path, Model& model) {
  std::ofstream os(path, std::ios::binary);
  PSML_REQUIRE(os.good(), "checkpoint: cannot open for writing: " + path);
  save_model(os, model);
  PSML_REQUIRE(os.good(), "checkpoint: write failed: " + path);
}

template <typename Model>
void load_from_path(const std::string& path, Model& model) {
  std::ifstream is(path, std::ios::binary);
  PSML_REQUIRE(is.good(), "checkpoint: cannot open for reading: " + path);
  load_model(is, model);
}

}  // namespace

void save_model(const std::string& path, Sequential& model) {
  save_to_path(path, model);
}

namespace {
constexpr std::uint32_t kShareMagic = 0x50535353;  // "PSSS"
}  // namespace

void save_share_snapshot(std::ostream& os, SecureSequential& model) {
  const std::vector<MatrixF*> state = model.collect_state();
  write_u32(os, kShareMagic);
  write_u32(os, kVersion);
  write_u32(os, static_cast<std::uint32_t>(state.size()));
  for (const MatrixF* m : state) write_matrix(os, *m);
}

void load_share_snapshot(std::istream& is, SecureSequential& model) {
  if (read_u32(is) != kShareMagic) {
    throw InvalidArgument("share snapshot: bad magic");
  }
  if (read_u32(is) != kVersion) {
    throw InvalidArgument("share snapshot: unsupported version");
  }
  std::vector<MatrixF*> state = model.collect_state();
  const std::uint32_t count = read_u32(is);
  PSML_REQUIRE(count == state.size(), "share snapshot: state count mismatch");
  for (MatrixF* m : state) read_matrix_into(is, *m, "share snapshot matrix");
}
void save_model(const std::string& path, const RnnModel& model) {
  save_to_path(path, model);
}
void load_model(const std::string& path, Sequential& model) {
  load_from_path(path, model);
}
void load_model(const std::string& path, RnnModel& model) {
  load_from_path(path, model);
}

}  // namespace psml::ml
