// Model factories: the six benchmark models of the paper (CNN, MLP, RNN,
// linear regression, logistic regression, SVM), each in a plaintext and a
// secure (two-share) build with identical initial weights.
#pragma once

#include <memory>
#include <string>

#include "ml/plain/model.hpp"
#include "ml/plain/rnn.hpp"
#include "ml/secure/secure_model.hpp"
#include "ml/secure/secure_rnn.hpp"

namespace psml::ml {

enum class ModelKind { kCnn, kMlp, kRnn, kLinear, kLogistic, kSvm };

std::string to_string(ModelKind kind);
LossKind loss_for(ModelKind kind);

struct ModelConfig {
  ModelKind kind = ModelKind::kMlp;
  // Flattened input feature count (non-CNN models).
  std::size_t input_dim = 0;
  // Image geometry (CNN only); input_dim must equal channels * h * w.
  std::size_t image_h = 0, image_w = 0, channels = 1;
  // Output width: 10 classes for CNN/MLP, 1 for linear/logistic/SVM/RNN-reg.
  std::size_t classes = 10;
  // RNN geometry.
  std::size_t rnn_steps = 4, rnn_hidden = 32;
  // Engine for the plaintext build.
  Engine engine = Engine::kCpuParallel;
  std::uint64_t seed = 7;

  std::size_t output_dim() const { return classes; }
};

// Plaintext build (all kinds except kRnn; see build_plain_rnn).
Sequential build_plain(const ModelConfig& cfg);
RnnModel build_plain_rnn(const ModelConfig& cfg);

// Secure build: two SecureSequential instances holding the two additive
// shares of the same initial weights build_plain(cfg) produces.
struct SecurePair {
  SecureSequential m0, m1;
};
SecurePair build_secure_pair(const ModelConfig& cfg);

struct SecureRnnPair {
  std::unique_ptr<SecureRnn> m0, m1;
};
SecureRnnPair build_secure_rnn_pair(const ModelConfig& cfg);

// Reconstructs trained weights from the two secure halves into a plaintext
// model with cfg's architecture (used for post-training evaluation).
Sequential reconstruct_plain(const ModelConfig& cfg, SecureSequential& m0,
                             SecureSequential& m1);
RnnModel reconstruct_plain_rnn(const ModelConfig& cfg, const SecureRnn& m0,
                               const SecureRnn& m1);

// The convolution geometry the CNN builder uses for a given config.
tensor::ConvShape cnn_conv_shape(const ModelConfig& cfg);

}  // namespace psml::ml
