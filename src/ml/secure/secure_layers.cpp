#include "ml/secure/secure_layers.hpp"

#include "compress/compressed_channel.hpp"
#include "tensor/ops.hpp"

namespace psml::ml {

namespace {

using compress::stream_key;

constexpr std::uint32_t kPhaseForward = 0;
constexpr std::uint32_t kPhaseBackward = 1;

net::Tag seq_tag(mpc::PartyContext& ctx, net::Tag base) {
  return base + (ctx.next_seq() & 0x00ffffffu);
}

// Per-batch-slot compression stream key (see PartyContext::set_stream_salt).
std::uint64_t skey(const mpc::PartyContext& ctx, std::uint32_t layer,
                   std::uint32_t phase, std::uint32_t operand) {
  return stream_key(layer, phase, operand) ^ (ctx.stream_salt() << 48);
}

}  // namespace

// ---- SecureDense ------------------------------------------------------------

SecureDense::SecureDense(MatrixF w_share, MatrixF b_share)
    : w_(std::move(w_share)),
      b_(std::move(b_share)),
      dw_(w_.rows(), w_.cols(), 0.0f),
      db_(1, w_.cols(), 0.0f) {
  PSML_REQUIRE(b_.rows() == 1 && b_.cols() == w_.cols(),
               "SecureDense: bias share shape mismatch");
}

void SecureDense::plan(std::vector<mpc::TripletSpec>& specs,
                       std::size_t batch, bool training) const {
  const std::size_t in = w_.rows(), out = w_.cols();
  // Consumption order in forward(): Y = X x W, then the staged backward
  // triplets for dW = X^T x dY and dX = dY x W^T.
  specs.push_back({mpc::TripletKind::kMatMul, batch, in, out});
  if (training) {
    specs.push_back({mpc::TripletKind::kMatMul, in, batch, out});
    specs.push_back({mpc::TripletKind::kMatMul, batch, out, in});
  }
}

MatrixF SecureDense::forward(SecureEnv& env, const MatrixF& x_i) {
  auto& ctx = *env.ctx;
  PSML_REQUIRE(x_i.cols() == w_.rows(), "SecureDense: input width mismatch");

  const mpc::TripletShare t_f = ctx.triplets().pop_matmul();
  MatrixF y = mpc::secure_matmul(ctx, x_i, w_, t_f,
                                 skey(ctx, layer_id_, kPhaseForward, 0));
  // Bias add is linear in the shares: purely local.
  for (std::size_t r = 0; r < y.rows(); ++r) {
    float* row = y.data() + r * y.cols();
    for (std::size_t c = 0; c < y.cols(); ++c) row[c] += b_(0, c);
  }

  if (!env.training) return y;

  // Stage the backward pass.
  t_dw_ = ctx.triplets().pop_matmul();
  t_dx_ = ctx.triplets().pop_matmul();
  x_cache_ = x_i;

  tag_e_dw_ = seq_tag(ctx, mpc::tags::kExchangeE);
  tag_f_dx_ = seq_tag(ctx, mpc::tags::kExchangeF);
  tag_f_dw_ = seq_tag(ctx, mpc::tags::kExchangeF);
  tag_e_dx_ = seq_tag(ctx, mpc::tags::kExchangeE);

  if (env.lane != nullptr) {
    // Fig. 6: the gradient-independent halves of the backward reconstruct
    // run on the comm lane now, overlapping later layers' GPU operations.
    auto* self = this;
    auto* pctx = &ctx;
    early_e_dw_ = env.lane->run([self, pctx] {
      return mpc::open_operand(*pctx, tensor::transpose(self->x_cache_),
                               self->t_dw_.u, self->tag_e_dw_,
                               skey(*pctx, self->layer_id_, kPhaseBackward, 0));
    });
    early_f_dx_ = env.lane->run([self, pctx] {
      return mpc::open_operand(*pctx, tensor::transpose(self->w_),
                               self->t_dx_.v, self->tag_f_dx_,
                               skey(*pctx, self->layer_id_, kPhaseBackward, 1));
    });
  }
  return y;
}

MatrixF SecureDense::backward(SecureEnv& env, const MatrixF& dy_i) {
  auto& ctx = *env.ctx;
  PSML_REQUIRE(dy_i.cols() == w_.cols(), "SecureDense: grad width mismatch");

  const MatrixF xt = tensor::transpose(x_cache_);
  const MatrixF wt = tensor::transpose(w_);

  // dW = X^T x dY.
  MatrixF e_dw =
      env.lane != nullptr
          ? early_e_dw_.get()
          : mpc::open_operand(ctx, xt, t_dw_.u, tag_e_dw_,
                              skey(ctx, layer_id_, kPhaseBackward, 0));
  MatrixF f_dw = mpc::open_operand(ctx, dy_i, t_dw_.v, tag_f_dw_,
                                   skey(ctx, layer_id_, kPhaseBackward, 2));
  dw_ = mpc::compute_ci(ctx, {std::move(e_dw), std::move(f_dw)}, xt, dy_i,
                        t_dw_);
  // Keep weight-share magnitudes at the mask scale (see refresh_share docs).
  dw_ = mpc::refresh_share(ctx, dw_);
  // db = 1^T x dY: linear, local on shares (refreshed like dW — dY shares
  // can carry large magnitudes).
  MatrixF db_batch(1, dy_i.cols(), 0.0f);
  for (std::size_t r = 0; r < dy_i.rows(); ++r) {
    const float* row = dy_i.data() + r * dy_i.cols();
    for (std::size_t c = 0; c < dy_i.cols(); ++c) db_batch(0, c) += row[c];
  }
  db_batch = mpc::refresh_share(ctx, db_batch);
  tensor::add(db_, db_batch, db_);

  // dX = dY x W^T.
  MatrixF e_dx = mpc::open_operand(ctx, dy_i, t_dx_.u, tag_e_dx_,
                                   skey(ctx, layer_id_, kPhaseBackward, 3));
  MatrixF f_dx =
      env.lane != nullptr
          ? early_f_dx_.get()
          : mpc::open_operand(ctx, wt, t_dx_.v, tag_f_dx_,
                              skey(ctx, layer_id_, kPhaseBackward, 1));
  return mpc::compute_ci(ctx, {std::move(e_dx), std::move(f_dx)}, dy_i, wt,
                         t_dx_);
}

void SecureDense::update(float lr) {
  tensor::axpy(-lr, dw_, w_);
  tensor::axpy(-lr, db_, b_);
  dw_.fill(0.0f);
  db_.fill(0.0f);
}

// ---- SecureActivation -------------------------------------------------------

void SecureActivation::plan(std::vector<mpc::TripletSpec>& specs,
                            std::size_t batch, bool training) const {
  PSML_REQUIRE(width_ > 0, "SecureActivation: width not set");
  specs.push_back({mpc::TripletKind::kActivation, batch, 0, width_});
}

MatrixF SecureActivation::forward(SecureEnv& env, const MatrixF& x_i) {
  auto& ctx = *env.ctx;
  PSML_REQUIRE(width_ == 0 || x_i.cols() == width_,
               "SecureActivation: width mismatch");
  auto result = mpc::secure_activation(
      ctx, x_i, skey(ctx, layer_id_, kPhaseForward, 0));
  grad_mask_ = std::move(result.grad_mask);
  return std::move(result.value_share);
}

MatrixF SecureActivation::backward(SecureEnv& env, const MatrixF& dy_i) {
  // The region mask is public; masking the gradient share is local.
  MatrixF dx;
  tensor::hadamard(dy_i, grad_mask_, dx);
  return dx;
}

// ---- SecureConv2D -----------------------------------------------------------

SecureConv2D::SecureConv2D(tensor::ConvShape shape, MatrixF w_share)
    : shape_(shape),
      w_(std::move(w_share)),
      dw_(w_.rows(), w_.cols(), 0.0f) {
  PSML_REQUIRE(w_.rows() == shape_.patch_cols() && w_.cols() == shape_.out_c,
               "SecureConv2D: weight share shape mismatch");
}

void SecureConv2D::plan(std::vector<mpc::TripletSpec>& specs,
                        std::size_t batch, bool training) const {
  const std::size_t pr = shape_.patch_rows(batch);
  const std::size_t pc = shape_.patch_cols();
  const std::size_t oc = shape_.out_c;
  specs.push_back({mpc::TripletKind::kMatMul, pr, pc, oc});  // forward
  if (training) {
    specs.push_back({mpc::TripletKind::kMatMul, pc, pr, oc});  // dW
    specs.push_back({mpc::TripletKind::kMatMul, pr, oc, pc});  // dPatches
  }
}

MatrixF SecureConv2D::forward(SecureEnv& env, const MatrixF& x_i) {
  auto& ctx = *env.ctx;
  batch_cache_ = x_i.rows();
  // im2col is a linear rearrangement: applying it to a share yields a share
  // of the lowered matrix, so each server lowers locally.
  patches_cache_ = tensor::im2col(x_i, shape_);

  const mpc::TripletShare t_f = ctx.triplets().pop_matmul();
  MatrixF flat =
      mpc::secure_matmul(ctx, patches_cache_, w_, t_f,
                         skey(ctx, layer_id_, kPhaseForward, 0));
  if (env.training) {
    t_dw_ = ctx.triplets().pop_matmul();
    t_dx_ = ctx.triplets().pop_matmul();
  }

  // Rearrange (batch*oh*ow) x out_c into channel-major feature maps.
  const std::size_t spatial = shape_.out_h() * shape_.out_w();
  MatrixF y(batch_cache_, shape_.out_c * spatial);
  for (std::size_t b = 0; b < batch_cache_; ++b) {
    for (std::size_t s = 0; s < spatial; ++s) {
      const float* frow = flat.data() + (b * spatial + s) * shape_.out_c;
      for (std::size_t c = 0; c < shape_.out_c; ++c) {
        y(b, c * spatial + s) = frow[c];
      }
    }
  }
  return y;
}

MatrixF SecureConv2D::backward(SecureEnv& env, const MatrixF& dy_i) {
  auto& ctx = *env.ctx;
  const std::size_t spatial = shape_.out_h() * shape_.out_w();
  PSML_REQUIRE(dy_i.cols() == shape_.out_c * spatial,
               "SecureConv2D: grad width mismatch");

  MatrixF flat(batch_cache_ * spatial, shape_.out_c);
  for (std::size_t b = 0; b < batch_cache_; ++b) {
    for (std::size_t s = 0; s < spatial; ++s) {
      float* frow = flat.data() + (b * spatial + s) * shape_.out_c;
      for (std::size_t c = 0; c < shape_.out_c; ++c) {
        frow[c] = dy_i(b, c * spatial + s);
      }
    }
  }

  dw_ = mpc::secure_matmul(ctx, tensor::transpose(patches_cache_), flat,
                           t_dw_, skey(ctx, layer_id_, kPhaseBackward, 0));
  dw_ = mpc::refresh_share(ctx, dw_);
  MatrixF dpatches =
      mpc::secure_matmul(ctx, flat, tensor::transpose(w_), t_dx_,
                         skey(ctx, layer_id_, kPhaseBackward, 1));
  return tensor::col2im(dpatches, shape_, batch_cache_);
}

void SecureConv2D::update(float lr) {
  tensor::axpy(-lr, dw_, w_);
  dw_.fill(0.0f);
}

}  // namespace psml::ml
