// Secure average pooling — runs AvgPool2D's linear maps directly on each
// party's share; no triplets, no communication (see pooling.hpp).
#pragma once

#include "ml/plain/pooling.hpp"
#include "ml/secure/secure_layers.hpp"

namespace psml::ml {

class SecureAvgPool2D : public SecureLayer {
 public:
  explicit SecureAvgPool2D(PoolShape shape) : shape_(shape) {}

  void plan(std::vector<mpc::TripletSpec>&, std::size_t, bool) const override {
    // Linear layer: consumes no offline material.
  }
  MatrixF forward(SecureEnv&, const MatrixF& x_i) override {
    return AvgPool2D::pool(x_i, shape_);
  }
  MatrixF backward(SecureEnv&, const MatrixF& dy_i) override {
    return AvgPool2D::unpool(dy_i, shape_);
  }

  const PoolShape& shape() const { return shape_; }

 private:
  PoolShape shape_;
};

}  // namespace psml::ml
