// Secure layers: each server holds additive shares of the activations and
// parameters and runs the triplet protocols of src/mpc per layer.
//
// Pipeline support (paper Sec. 4.3, Fig. 6): a layer's backward pass needs
// two secure matmuls — dW = X^T x dY and dX = dY x W^T. The operands X^T and
// W^T are known the moment forward() finishes, so their halves of the
// reconstruct step (open X^T - U, open W^T - V) are scheduled on the party's
// comm lane *during the forward pass*, overlapping with the GPU operations
// of later layers. Only the gradient-dependent halves remain in backward().
#pragma once

#include <future>
#include <memory>
#include <optional>
#include <vector>

#include "mpc/activation.hpp"
#include "mpc/party.hpp"
#include "mpc/secure_matmul.hpp"
#include "pipeline/async_lane.hpp"
#include "tensor/im2col.hpp"
#include "tensor/matrix.hpp"

namespace psml::ml {

// Per-party execution environment handed to every secure layer call.
struct SecureEnv {
  mpc::PartyContext* ctx = nullptr;
  // Inference runs forward-only: backward triplets are neither planned nor
  // consumed when this is false.
  bool training = true;
  // Non-null enables the layer-level pipeline; exchanges scheduled here run
  // concurrently with the caller's GPU operations.
  pipeline::AsyncLane* lane = nullptr;
};

class SecureLayer {
 public:
  virtual ~SecureLayer() = default;

  // Appends this layer's per-batch triplet specs in exact consumption order.
  virtual void plan(std::vector<mpc::TripletSpec>& specs, std::size_t batch,
                    bool training) const = 0;

  virtual MatrixF forward(SecureEnv& env, const MatrixF& x_i) = 0;
  virtual MatrixF backward(SecureEnv& env, const MatrixF& dy_i) = 0;
  virtual void update(float lr) {}

  // Stable id used for compression stream keys; assigned by the container.
  // Virtual so composite layers can propagate derived ids to sub-layers.
  virtual void set_layer_id(std::uint32_t id) { layer_id_ = id; }
  std::uint32_t layer_id() const { return layer_id_; }

  // Appends pointers to this layer's persistent parameter shares (the state
  // an SGD update mutates), in a deterministic order shared by both
  // servers. Used by the checkpoint share-snapshot machinery to roll a
  // model back to the start of a failed training step. Stateless layers
  // contribute nothing.
  virtual void collect_state(std::vector<MatrixF*>& out) {}

 protected:
  std::uint32_t layer_id_ = 0;
};

// Fully connected layer on weight shares.
class SecureDense : public SecureLayer {
 public:
  // Shares of the (in x out) weight matrix and (1 x out) bias.
  SecureDense(MatrixF w_share, MatrixF b_share);

  void plan(std::vector<mpc::TripletSpec>& specs, std::size_t batch,
            bool training) const override;
  MatrixF forward(SecureEnv& env, const MatrixF& x_i) override;
  MatrixF backward(SecureEnv& env, const MatrixF& dy_i) override;
  void update(float lr) override;

  const MatrixF& weight_share() const { return w_; }
  const MatrixF& bias_share() const { return b_; }

  void collect_state(std::vector<MatrixF*>& out) override {
    out.push_back(&w_);
    out.push_back(&b_);
  }

 private:
  MatrixF w_;   // share of W, in x out
  MatrixF b_;   // share of b, 1 x out
  MatrixF dw_;  // share of dW
  MatrixF db_;

  // Backward-pass state staged by forward().
  MatrixF x_cache_;
  mpc::TripletShare t_dw_, t_dx_;
  std::future<MatrixF> early_e_dw_;  // opened X^T - U of the dW matmul
  std::future<MatrixF> early_f_dx_;  // opened W^T - V of the dX matmul
  // Tags reserved at forward (schedule) time for all four backward halves so
  // both servers' tag sequences agree regardless of pipeline interleaving.
  net::Tag tag_e_dw_ = 0, tag_f_dw_ = 0, tag_e_dx_ = 0, tag_f_dx_ = 0;
};

// Eq. 9 activation via the masked-comparison protocol.
class SecureActivation : public SecureLayer {
 public:
  void plan(std::vector<mpc::TripletSpec>& specs, std::size_t batch,
            bool training) const override;
  MatrixF forward(SecureEnv& env, const MatrixF& x_i) override;
  MatrixF backward(SecureEnv& env, const MatrixF& dy_i) override;

  void set_width(std::size_t width) { width_ = width; }
  std::size_t width() const { return width_; }

 private:
  std::size_t width_ = 0;  // features per row, fixed by the model builder
  MatrixF grad_mask_;      // public region mask cached by forward
};

// Convolution on shares: im2col is linear so each server lowers its own
// share locally; the patch-matrix multiply runs the triplet protocol.
class SecureConv2D : public SecureLayer {
 public:
  SecureConv2D(tensor::ConvShape shape, MatrixF w_share);

  void plan(std::vector<mpc::TripletSpec>& specs, std::size_t batch,
            bool training) const override;
  MatrixF forward(SecureEnv& env, const MatrixF& x_i) override;
  MatrixF backward(SecureEnv& env, const MatrixF& dy_i) override;
  void update(float lr) override;

  const tensor::ConvShape& shape() const { return shape_; }
  const MatrixF& weight_share() const { return w_; }

  void collect_state(std::vector<MatrixF*>& out) override {
    out.push_back(&w_);
  }

 private:
  tensor::ConvShape shape_;
  MatrixF w_;  // share of (patch_cols x out_c)
  MatrixF dw_;
  MatrixF patches_cache_;
  std::size_t batch_cache_ = 0;
  mpc::TripletShare t_dw_, t_dx_;
};

}  // namespace psml::ml
