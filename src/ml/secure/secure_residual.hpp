// Secure residual block — mirror of ml::ResidualBlock on shares.
// The skip connection is a local share add; the block activation runs the
// Eq. 9 masked-comparison protocol.
#pragma once

#include <memory>
#include <vector>

#include "ml/secure/secure_layers.hpp"

namespace psml::ml {

class SecureResidualBlock : public SecureLayer {
 public:
  SecureResidualBlock(std::vector<std::unique_ptr<SecureLayer>> inner,
                      std::size_t width);

  void plan(std::vector<mpc::TripletSpec>& specs, std::size_t batch,
            bool training) const override;
  MatrixF forward(SecureEnv& env, const MatrixF& x_i) override;
  MatrixF backward(SecureEnv& env, const MatrixF& dy_i) override;
  void update(float lr) override;

  std::size_t inner_size() const { return inner_.size(); }
  SecureLayer& inner_layer(std::size_t i) { return *inner_[i]; }

  // Propagates derived ids to the inner layers so their compression stream
  // keys stay unique.
  void set_layer_id(std::uint32_t id) override;

  void collect_state(std::vector<MatrixF*>& out) override {
    for (auto& layer : inner_) layer->collect_state(out);
  }

 private:
  std::vector<std::unique_ptr<SecureLayer>> inner_;
  std::size_t width_;
  MatrixF act_mask_;  // public region mask of the block activation
};

}  // namespace psml::ml
