// Secure sequential model: the server-side container mirroring
// ml::Sequential, plus secure loss gradients and the per-batch training
// step. One instance lives on each of the two servers; both execute the same
// schedule (SPMD) over their respective shares.
#pragma once

#include <memory>
#include <vector>

#include "ml/plain/model.hpp"
#include "ml/secure/secure_layers.hpp"

namespace psml::ml {

class SecureSequential {
 public:
  SecureSequential() = default;

  void add(std::unique_ptr<SecureLayer> layer);
  std::size_t size() const { return layers_.size(); }
  SecureLayer& layer(std::size_t i) { return *layers_[i]; }

  // Appends the full per-batch triplet plan (layers in order, then loss).
  void plan_batch(std::vector<mpc::TripletSpec>& specs, std::size_t batch,
                  LossKind loss, std::size_t out_dim,
                  bool training = true) const;

  MatrixF forward(SecureEnv& env, const MatrixF& x_i);
  MatrixF backward(SecureEnv& env, const MatrixF& dy_i);
  void update(float lr);

  // Pointers to every layer's persistent parameter shares, in model order.
  // The share-snapshot checkpoint functions serialize exactly this list.
  std::vector<MatrixF*> collect_state();

 private:
  std::vector<std::unique_ptr<SecureLayer>> layers_;
};

// Loss gradient on shares. MSE is local (linear); hinge consumes one
// elementwise triplet and one comparison (see plan_batch).
MatrixF secure_loss_grad(SecureEnv& env, LossKind loss, const MatrixF& pred_i,
                         const MatrixF& y_i);

// One full secure SGD step: forward, loss grad, backward, update.
void secure_train_batch(SecureEnv& env, SecureSequential& model,
                        LossKind loss, const MatrixF& x_i, const MatrixF& y_i,
                        float lr);

// Forward pass only (secure inference).
MatrixF secure_infer_batch(SecureEnv& env, SecureSequential& model,
                           const MatrixF& x_i);

}  // namespace psml::ml
