// Secure Elman RNN with BPTT on shares — mirrors ml::RnnModel.
//
//   h_t = f(x_t W_x + h_{t-1} W_h),  o = h_T W_o
// Every product is a triplet matmul; the activation runs the masked-
// comparison protocol; gradient accumulation across timesteps is local
// (sums of shares are shares of sums).
#pragma once

#include <vector>

#include "ml/secure/secure_layers.hpp"

namespace psml::ml {

class SecureRnn {
 public:
  SecureRnn(MatrixF wx_share, MatrixF wh_share, MatrixF wo_share);

  // Per-batch triplet specs for `steps` timesteps, in consumption order.
  void plan(std::vector<mpc::TripletSpec>& specs, std::size_t batch,
            std::size_t steps, bool training) const;

  MatrixF forward(SecureEnv& env, const std::vector<MatrixF>& xs_i);
  void backward(SecureEnv& env, const MatrixF& dout_i);
  void update(float lr);

  // Re-randomizes the gradient shares down to mask scale (float-share
  // numerical stability; see mpc::refresh_share). backward() calls this.
  void refresh_grads(SecureEnv& env);

  const MatrixF& wx_share() const { return wx_; }
  const MatrixF& wh_share() const { return wh_; }
  const MatrixF& wo_share() const { return wo_; }

 private:
  MatrixF wx_, wh_, wo_;
  MatrixF dwx_, dwh_, dwo_;

  std::vector<MatrixF> xs_cache_;
  std::vector<MatrixF> h_cache_;
  std::vector<MatrixF> mask_cache_;  // public activation masks
};

}  // namespace psml::ml
