#include "ml/secure/secure_model.hpp"

#include "mpc/secure_mul.hpp"
#include "tensor/ops.hpp"

namespace psml::ml {

void SecureSequential::add(std::unique_ptr<SecureLayer> layer) {
  layer->set_layer_id(static_cast<std::uint32_t>(layers_.size() + 1));
  layers_.push_back(std::move(layer));
}

void SecureSequential::plan_batch(std::vector<mpc::TripletSpec>& specs,
                                  std::size_t batch, LossKind loss,
                                  std::size_t out_dim, bool training) const {
  for (const auto& l : layers_) l->plan(specs, batch, training);
  if (training && loss == LossKind::kHinge) {
    // margins m = y .* pred, then the comparison m < 1.
    specs.push_back({mpc::TripletKind::kElementwise, batch, 0, out_dim});
    specs.push_back({mpc::TripletKind::kActivation, batch, 0, out_dim});
  }
}

MatrixF SecureSequential::forward(SecureEnv& env, const MatrixF& x_i) {
  MatrixF cur = x_i;
  for (auto& l : layers_) cur = l->forward(env, cur);
  return cur;
}

MatrixF SecureSequential::backward(SecureEnv& env, const MatrixF& dy_i) {
  MatrixF cur = dy_i;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    cur = (*it)->backward(env, cur);
  }
  return cur;
}

void SecureSequential::update(float lr) {
  for (auto& l : layers_) l->update(lr);
}

std::vector<MatrixF*> SecureSequential::collect_state() {
  std::vector<MatrixF*> out;
  for (auto& l : layers_) l->collect_state(out);
  return out;
}

MatrixF secure_loss_grad(SecureEnv& env, LossKind loss, const MatrixF& pred_i,
                         const MatrixF& y_i) {
  auto& ctx = *env.ctx;
  PSML_REQUIRE(pred_i.same_shape(y_i), "secure loss: shape mismatch");
  const float inv_n = 1.0f / static_cast<float>(pred_i.rows());
  MatrixF grad(pred_i.rows(), pred_i.cols());

  switch (loss) {
    case LossKind::kMse: {
      // grad = (pred - y) / n is linear in the shares: purely local.
      for (std::size_t i = 0; i < grad.size(); ++i) {
        grad.data()[i] = (pred_i.data()[i] - y_i.data()[i]) * inv_n;
      }
      return grad;
    }
    case LossKind::kHinge: {
      // m = y .* pred (secure); mask = [m < 1] (public); grad = -y .* mask / n
      // (local, since the mask is public).
      const mpc::TripletShare t = ctx.triplets().pop_elementwise();
      MatrixF margin = mpc::secure_mul(ctx, y_i, pred_i, t);
      const mpc::ActivationShare cmp = ctx.triplets().pop_activation();
      MatrixF mask = mpc::secure_less_than(ctx, margin, 1.0f, cmp);
      for (std::size_t i = 0; i < grad.size(); ++i) {
        grad.data()[i] = -y_i.data()[i] * mask.data()[i] * inv_n;
      }
      return grad;
    }
  }
  throw InvalidArgument("unknown loss kind");
}

void secure_train_batch(SecureEnv& env, SecureSequential& model,
                        LossKind loss, const MatrixF& x_i, const MatrixF& y_i,
                        float lr) {
  const MatrixF pred = model.forward(env, x_i);
  const MatrixF grad = secure_loss_grad(env, loss, pred, y_i);
  model.backward(env, grad);
  if (env.lane != nullptr) env.lane->drain();
  model.update(lr);
}

MatrixF secure_infer_batch(SecureEnv& env, SecureSequential& model,
                           const MatrixF& x_i) {
  const bool was_training = env.training;
  env.training = false;
  MatrixF out = model.forward(env, x_i);
  env.training = was_training;
  return out;
}

}  // namespace psml::ml
