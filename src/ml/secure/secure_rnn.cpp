#include "ml/secure/secure_rnn.hpp"

#include "compress/compressed_channel.hpp"
#include "tensor/ops.hpp"

namespace psml::ml {

namespace {
std::uint64_t skey(const mpc::PartyContext& ctx, std::uint32_t layer,
                   std::uint32_t phase, std::uint32_t operand) {
  return compress::stream_key(layer, phase, operand) ^
         (ctx.stream_salt() << 48);
}
}

SecureRnn::SecureRnn(MatrixF wx_share, MatrixF wh_share, MatrixF wo_share)
    : wx_(std::move(wx_share)),
      wh_(std::move(wh_share)),
      wo_(std::move(wo_share)),
      dwx_(wx_.rows(), wx_.cols(), 0.0f),
      dwh_(wh_.rows(), wh_.cols(), 0.0f),
      dwo_(wo_.rows(), wo_.cols(), 0.0f) {}

void SecureRnn::plan(std::vector<mpc::TripletSpec>& specs, std::size_t batch,
                     std::size_t steps, bool training) const {
  const std::size_t in = wx_.rows();
  const std::size_t hid = wh_.rows();
  const std::size_t out = wo_.cols();
  for (std::size_t t = 0; t < steps; ++t) {
    specs.push_back({mpc::TripletKind::kMatMul, batch, in, hid});   // x Wx
    specs.push_back({mpc::TripletKind::kMatMul, batch, hid, hid});  // h Wh
    specs.push_back({mpc::TripletKind::kActivation, batch, 0, hid});
  }
  specs.push_back({mpc::TripletKind::kMatMul, batch, hid, out});  // h_T Wo
  if (!training) return;
  specs.push_back({mpc::TripletKind::kMatMul, hid, batch, out});  // dWo
  specs.push_back({mpc::TripletKind::kMatMul, batch, out, hid});  // dh_T
  for (std::size_t t = 0; t < steps; ++t) {
    specs.push_back({mpc::TripletKind::kMatMul, in, batch, hid});   // dWx
    specs.push_back({mpc::TripletKind::kMatMul, hid, batch, hid});  // dWh
    specs.push_back({mpc::TripletKind::kMatMul, batch, hid, hid});  // dh
  }
}

MatrixF SecureRnn::forward(SecureEnv& env, const std::vector<MatrixF>& xs_i) {
  auto& ctx = *env.ctx;
  PSML_REQUIRE(!xs_i.empty(), "SecureRnn: empty sequence");
  const std::size_t batch = xs_i[0].rows();
  const std::size_t hid = wh_.rows();

  xs_cache_ = xs_i;
  h_cache_.assign(1, MatrixF(batch, hid, 0.0f));
  mask_cache_.clear();

  for (std::size_t t = 0; t < xs_i.size(); ++t) {
    const std::uint32_t lt = static_cast<std::uint32_t>(t);
    MatrixF zx = mpc::secure_matmul(ctx, xs_i[t], wx_,
                                    skey(ctx, 100 + lt, 0, 0));
    MatrixF zh = mpc::secure_matmul(ctx, h_cache_.back(), wh_,
                                    skey(ctx, 100 + lt, 0, 1));
    MatrixF z;
    tensor::add(zx, zh, z);
    auto act = mpc::secure_activation(ctx, z, skey(ctx, 100 + lt, 0, 2));
    h_cache_.push_back(std::move(act.value_share));
    mask_cache_.push_back(std::move(act.grad_mask));
  }
  return mpc::secure_matmul(ctx, h_cache_.back(), wo_, skey(ctx, 99, 0, 0));
}

void SecureRnn::backward(SecureEnv& env, const MatrixF& dout_i) {
  auto& ctx = *env.ctx;
  const std::size_t steps = xs_cache_.size();

  // dWo += h_T^T x dout ; dh = dout x Wo^T
  MatrixF g = mpc::secure_matmul(ctx, tensor::transpose(h_cache_.back()),
                                 dout_i, skey(ctx, 99, 1, 0));
  tensor::add(dwo_, g, dwo_);
  MatrixF dh = mpc::secure_matmul(ctx, dout_i, tensor::transpose(wo_),
                                  skey(ctx, 99, 1, 1));

  for (std::size_t t = steps; t-- > 0;) {
    const std::uint32_t lt = static_cast<std::uint32_t>(t);
    MatrixF dz;
    tensor::hadamard(dh, mask_cache_[t], dz);  // public mask: local
    MatrixF gx = mpc::secure_matmul(ctx, tensor::transpose(xs_cache_[t]), dz,
                                    skey(ctx, 100 + lt, 1, 0));
    tensor::add(dwx_, gx, dwx_);
    MatrixF gh = mpc::secure_matmul(ctx, tensor::transpose(h_cache_[t]), dz,
                                    skey(ctx, 100 + lt, 1, 1));
    tensor::add(dwh_, gh, dwh_);
    dh = mpc::secure_matmul(ctx, dz, tensor::transpose(wh_),
                            skey(ctx, 100 + lt, 1, 2));
  }
  refresh_grads(env);
}

void SecureRnn::refresh_grads(SecureEnv& env) {
  dwx_ = mpc::refresh_share(*env.ctx, dwx_);
  dwh_ = mpc::refresh_share(*env.ctx, dwh_);
  dwo_ = mpc::refresh_share(*env.ctx, dwo_);
}

void SecureRnn::update(float lr) {
  tensor::axpy(-lr, dwx_, wx_);
  tensor::axpy(-lr, dwh_, wh_);
  tensor::axpy(-lr, dwo_, wo_);
  dwx_.fill(0.0f);
  dwh_.fill(0.0f);
  dwo_.fill(0.0f);
}

}  // namespace psml::ml
