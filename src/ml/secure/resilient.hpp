// Fault-tolerant secure training step — graceful degradation under
// transport failures.
//
// secure_train_batch_resilient wraps one secure SGD step in a retry loop:
// before each attempt it snapshots the model's parameter shares (a purely
// local operation — no reconstruction, no communication) and marks the
// triplet-store cursors. When the step dies with a TimeoutError or
// NetworkError it rolls both back, re-synchronizes the per-op sequence
// counter with the peer, waits out an exponential backoff, and retries.
// Both servers run the identical loop (SPMD), so a failure observed by
// either side is observed by both — the peer's recv of the failed step
// times out or errors too, and both roll back to the same point.
//
// Requirements:
//   * The triplet store must be in retain or recycle mode (consuming pops
//     destroy material and cannot be rewound) — see TripletStore.
//   * The channel should carry a receive timeout (policy.recv_timeout or
//     the channel default); with no timeout a dead-but-not-closed peer
//     blocks forever and the retry loop never gets control.
#pragma once

#include <chrono>
#include <cstdint>

#include "ml/secure/secure_model.hpp"

namespace psml::ml {

struct RetryPolicy {
  // Total tries including the first; the final failure is rethrown.
  int max_attempts = 3;
  // Exponential backoff between attempts with deterministic jitter in
  // [0.5, 1.0) x the nominal delay, seeded so test runs are reproducible.
  double backoff_base_ms = 5.0;
  double backoff_max_ms = 500.0;
  std::uint64_t jitter_seed = 1;
  // When positive, installed as the channel's default receive timeout for
  // the duration of the call (restored on exit). Zero keeps the channel's
  // existing default.
  std::chrono::milliseconds recv_timeout{0};
};

struct ResilientStats {
  int attempts = 0;   // tries made, successful one included
  int rollbacks = 0;  // snapshot restores performed
  bool completed = false;
};

// Runs one secure training step under `policy`. Returns once the step
// completed; rethrows the last transport error when max_attempts are
// exhausted (model shares are left rolled back to the pre-step snapshot,
// so the caller can continue with a coarser recovery). Non-transport
// exceptions propagate immediately.
ResilientStats secure_train_batch_resilient(SecureEnv& env,
                                            SecureSequential& model,
                                            LossKind loss, const MatrixF& x_i,
                                            const MatrixF& y_i, float lr,
                                            const RetryPolicy& policy = {});

}  // namespace psml::ml
