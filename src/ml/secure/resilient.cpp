#include "ml/secure/resilient.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <thread>

#include "common/log.hpp"
#include "ml/checkpoint.hpp"
#include "mpc/party.hpp"
#include "pipeline/async_lane.hpp"

namespace psml::ml {

namespace {

std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

double backoff_ms(const RetryPolicy& policy, int attempt) {
  const double nominal = std::min(
      policy.backoff_max_ms,
      policy.backoff_base_ms * std::pow(2.0, static_cast<double>(attempt)));
  // Deterministic jitter factor in [0.5, 1.0).
  const std::uint64_t h =
      mix64(policy.jitter_seed ^ (0x5eedull + static_cast<std::uint64_t>(attempt)));
  const double unit = static_cast<double>(h >> 11) /
                      static_cast<double>(1ull << 53);  // [0, 1)
  return nominal * (0.5 + 0.5 * unit);
}

// Restores the channel's default receive timeout on scope exit, including
// the rethrow path when attempts are exhausted.
class TimeoutGuard {
 public:
  TimeoutGuard(net::Channel& ch, std::chrono::milliseconds timeout)
      : ch_(ch), saved_(ch.default_timeout()) {
    if (timeout.count() > 0) ch_.set_default_timeout(timeout);
  }
  ~TimeoutGuard() { ch_.set_default_timeout(saved_); }
  TimeoutGuard(const TimeoutGuard&) = delete;
  TimeoutGuard& operator=(const TimeoutGuard&) = delete;

 private:
  net::Channel& ch_;
  std::chrono::milliseconds saved_;
};

// Distinct control-tag block per retry attempt; the offset keeps these
// clear of any kControl + seq tags protocol code might use.
net::Tag resync_tag(int attempt) {
  return mpc::tags::kControl + 0x00e00000u + static_cast<net::Tag>(attempt);
}

// Sequence-counter resynchronization. After an aborted step the two
// servers' op counters can diverge (one side got further before failing).
// Both exchange their current counter and jump to the maximum: every stale
// in-flight or buffered message carries a tag derived from a seq below that
// maximum, so the retried step's fresh tags cannot collide with leftovers.
//
// The receive deadline is deliberately more generous than the per-step
// timeout: a one-sided fault (e.g. a corrupted frame) fails the victim
// immediately while the other server only notices a full recv timeout
// later, so the peers can enter recovery up to one timeout apart.
void resync_seq_counters(mpc::PartyContext& ctx, int attempt,
                         const RetryPolicy& policy) {
  const std::uint32_t mine = ctx.peek_seq();
  std::uint8_t buf[4];
  for (int i = 0; i < 4; ++i) buf[i] = static_cast<std::uint8_t>(mine >> (8 * i));
  const net::Tag tag = resync_tag(attempt);
  ctx.peer().send(tag, std::span<const std::uint8_t>(buf, 4));

  const std::chrono::milliseconds step_timeout = ctx.peer().default_timeout();
  const net::Deadline deadline =
      step_timeout.count() > 0
          ? net::Clock::now() + 2 * step_timeout +
                std::chrono::milliseconds(
                    static_cast<long long>(policy.backoff_max_ms) + 1)
          : net::kNoDeadline;
  const net::Message m = ctx.peer().recv(tag, deadline);
  PSML_REQUIRE(m.payload.size() == 4, "seq resync: bad payload");
  std::uint32_t theirs = 0;
  for (int i = 0; i < 4; ++i) {
    theirs |= static_cast<std::uint32_t>(m.payload[i]) << (8 * i);
  }
  ctx.resync_seq(theirs);
}

}  // namespace

ResilientStats secure_train_batch_resilient(SecureEnv& env,
                                            SecureSequential& model,
                                            LossKind loss, const MatrixF& x_i,
                                            const MatrixF& y_i, float lr,
                                            const RetryPolicy& policy) {
  PSML_REQUIRE(env.ctx != nullptr, "resilient train: null party context");
  PSML_REQUIRE(policy.max_attempts >= 1, "resilient train: max_attempts < 1");
  mpc::TripletStore& store = env.ctx->triplets();
  PSML_REQUIRE(store.retain() || store.recycle(),
               "resilient train: triplet store must be in retain or recycle "
               "mode so a failed step can rewind (see TripletStore)");

  TimeoutGuard timeout_guard(env.ctx->peer(), policy.recv_timeout);

  // Pre-step snapshot: parameter shares (local, no comms) + triplet cursors.
  std::stringstream snapshot;
  save_share_snapshot(snapshot, model);
  const mpc::TripletStore::Mark mark = store.mark();

  ResilientStats stats;
  for (int attempt = 0;; ++attempt) {
    stats.attempts = attempt + 1;
    try {
      if (attempt > 0) {
        // Recovery runs inside the try so a transport failure *during*
        // recovery (the lane flush or the resync exchange) also counts
        // against the attempt budget instead of escaping immediately.
        if (env.lane != nullptr) env.lane->drain();
        snapshot.clear();
        snapshot.seekg(0);
        load_share_snapshot(snapshot, model);
        store.rewind(mark);
        // A failed attempt can advance a compression stream's send baseline
        // past what the peer actually delivered; dropping all baselines
        // forces the retry to start every stream dense. Both servers do
        // this, keeping sender and receiver state consistent.
        env.ctx->compressed().reset_baselines();
        stats.rollbacks += 1;
        std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
            backoff_ms(policy, attempt - 1)));
        resync_seq_counters(*env.ctx, attempt, policy);
      }
      secure_train_batch(env, model, loss, x_i, y_i, lr);
      stats.completed = true;
      return stats;
    } catch (const NetworkError& e) {
      // TimeoutError is a NetworkError; both mean "this step's transport
      // failed", and both are retryable. Anything else propagates.
      if (attempt + 1 >= policy.max_attempts) {
        // Leave the model at the pre-step snapshot so the caller resumes
        // from a consistent state on both servers.
        if (env.lane != nullptr) env.lane->drain();
        snapshot.clear();
        snapshot.seekg(0);
        load_share_snapshot(snapshot, model);
        store.rewind(mark);
        env.ctx->compressed().reset_baselines();
        stats.rollbacks += 1;
        throw;
      }
      PSML_WARN("resilient train: attempt " << (attempt + 1) << "/"
                                            << policy.max_attempts
                                            << " failed (" << e.what()
                                            << "); rolling back and retrying");
    }
  }
}

}  // namespace psml::ml
