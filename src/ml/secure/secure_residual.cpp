#include "ml/secure/secure_residual.hpp"

#include "tensor/ops.hpp"

namespace psml::ml {

SecureResidualBlock::SecureResidualBlock(
    std::vector<std::unique_ptr<SecureLayer>> inner, std::size_t width)
    : inner_(std::move(inner)), width_(width) {
  PSML_REQUIRE(!inner_.empty(), "SecureResidualBlock: empty inner stack");
  set_layer_id(0);
}

void SecureResidualBlock::set_layer_id(std::uint32_t id) {
  SecureLayer::set_layer_id(id);
  for (std::size_t i = 0; i < inner_.size(); ++i) {
    inner_[i]->set_layer_id(id * 16 + static_cast<std::uint32_t>(i) + 1000);
  }
}

void SecureResidualBlock::plan(std::vector<mpc::TripletSpec>& specs,
                               std::size_t batch, bool training) const {
  for (const auto& l : inner_) l->plan(specs, batch, training);
  specs.push_back({mpc::TripletKind::kActivation, batch, 0, width_});
}

MatrixF SecureResidualBlock::forward(SecureEnv& env, const MatrixF& x_i) {
  MatrixF cur = x_i;
  for (auto& l : inner_) cur = l->forward(env, cur);
  PSML_REQUIRE(cur.same_shape(x_i),
               "SecureResidualBlock: inner stack changed feature width");
  // Skip connection: share-linear, local.
  MatrixF z;
  tensor::add(cur, x_i, z);
  auto act = mpc::secure_activation(*env.ctx, z);
  act_mask_ = std::move(act.grad_mask);
  return std::move(act.value_share);
}

MatrixF SecureResidualBlock::backward(SecureEnv& env, const MatrixF& dy_i) {
  MatrixF dz;
  tensor::hadamard(dy_i, act_mask_, dz);  // public mask: local
  MatrixF dinner = dz;
  for (auto it = inner_.rbegin(); it != inner_.rend(); ++it) {
    dinner = (*it)->backward(env, dinner);
  }
  MatrixF dx;
  tensor::add(dinner, dz, dx);
  return dx;
}

void SecureResidualBlock::update(float lr) {
  for (auto& l : inner_) l->update(lr);
}

}  // namespace psml::ml
