#include "ml/models.hpp"

#include "mpc/share.hpp"

namespace psml::ml {

std::string to_string(ModelKind kind) {
  switch (kind) {
    case ModelKind::kCnn: return "CNN";
    case ModelKind::kMlp: return "MLP";
    case ModelKind::kRnn: return "RNN";
    case ModelKind::kLinear: return "linear";
    case ModelKind::kLogistic: return "logistic";
    case ModelKind::kSvm: return "SVM";
  }
  return "?";
}

LossKind loss_for(ModelKind kind) {
  return kind == ModelKind::kSvm ? LossKind::kHinge : LossKind::kMse;
}

tensor::ConvShape cnn_conv_shape(const ModelConfig& cfg) {
  tensor::ConvShape s;
  s.in_h = cfg.image_h;
  s.in_w = cfg.image_w;
  s.in_c = cfg.channels;
  s.kernel = 5;
  // Large images get a strided convolution so the patch matrix stays
  // tractable (the paper scales by hardware; we scale by stride).
  s.stride = cfg.image_h > 64 ? 4 : 1;
  s.pad = 0;
  s.out_c = 8;
  return s;
}

namespace {

// Architecture description: ordered (in, out) dims of the dense layers plus
// whether an activation follows, so plaintext and secure builds stay in
// lockstep.
struct DenseSpec {
  std::size_t in, out;
  bool activation_after;
};

std::vector<DenseSpec> dense_specs(const ModelConfig& cfg,
                                   std::size_t first_in) {
  switch (cfg.kind) {
    case ModelKind::kMlp:
      // Paper Sec. 7.1: hidden 128, middle 64, output `classes`.
      return {{first_in, 128, true}, {128, 64, true}, {64, cfg.classes, false}};
    case ModelKind::kCnn:
      // After the conv layer: FC 64 with activation, then the output layer.
      return {{first_in, 64, true}, {64, cfg.classes, false}};
    case ModelKind::kLinear:
      return {{first_in, cfg.classes, false}};
    case ModelKind::kLogistic:
      return {{first_in, cfg.classes, true}};
    case ModelKind::kSvm:
      return {{first_in, cfg.classes, false}};
    case ModelKind::kRnn:
      break;
  }
  throw InvalidArgument("dense_specs: RNN is built by build_plain_rnn");
}

}  // namespace

Sequential build_plain(const ModelConfig& cfg) {
  PSML_REQUIRE(cfg.kind != ModelKind::kRnn,
               "build_plain: use build_plain_rnn for RNN");
  Sequential model;
  std::size_t first_in = cfg.input_dim;
  std::uint64_t seed = cfg.seed;

  if (cfg.kind == ModelKind::kCnn) {
    const auto shape = cnn_conv_shape(cfg);
    PSML_REQUIRE(cfg.input_dim == cfg.channels * cfg.image_h * cfg.image_w,
                 "CNN: input_dim != channels*h*w");
    model.add(std::make_unique<Conv2D>(shape, cfg.engine, seed++));
    model.add(std::make_unique<PiecewiseActivation>());
    first_in = shape.out_c * shape.out_h() * shape.out_w();
  }

  for (const auto& spec : dense_specs(cfg, first_in)) {
    model.add(std::make_unique<Dense>(spec.in, spec.out, cfg.engine, seed++));
    if (spec.activation_after) {
      model.add(std::make_unique<PiecewiseActivation>());
    }
  }
  return model;
}

RnnModel build_plain_rnn(const ModelConfig& cfg) {
  return RnnModel(cfg.input_dim, cfg.rnn_hidden, cfg.classes, cfg.seed);
}

SecurePair build_secure_pair(const ModelConfig& cfg) {
  PSML_REQUIRE(cfg.kind != ModelKind::kRnn,
               "build_secure_pair: use build_secure_rnn_pair for RNN");
  SecurePair pair;
  std::size_t first_in = cfg.input_dim;
  std::uint64_t seed = cfg.seed;
  std::uint64_t share_seed = cfg.seed ^ 0x5eedULL;

  auto add_activation = [&](std::size_t width) {
    auto a0 = std::make_unique<SecureActivation>();
    auto a1 = std::make_unique<SecureActivation>();
    a0->set_width(width);
    a1->set_width(width);
    pair.m0.add(std::move(a0));
    pair.m1.add(std::move(a1));
  };

  if (cfg.kind == ModelKind::kCnn) {
    const auto shape = cnn_conv_shape(cfg);
    PSML_REQUIRE(cfg.input_dim == cfg.channels * cfg.image_h * cfg.image_w,
                 "CNN: input_dim != channels*h*w");
    MatrixF w = xavier_init(shape.patch_cols(), shape.out_c, seed++);
    auto shares = mpc::share_float(w, share_seed++);
    pair.m0.add(std::make_unique<SecureConv2D>(shape, std::move(shares.s0)));
    pair.m1.add(std::make_unique<SecureConv2D>(shape, std::move(shares.s1)));
    first_in = shape.out_c * shape.out_h() * shape.out_w();
    add_activation(first_in);
  }

  for (const auto& spec : dense_specs(cfg, first_in)) {
    MatrixF w = xavier_init(spec.in, spec.out, seed++);
    auto shares = mpc::share_float(w, share_seed++);
    MatrixF b(1, spec.out, 0.0f);
    auto b_shares = mpc::share_float(b, share_seed++);
    pair.m0.add(std::make_unique<SecureDense>(std::move(shares.s0),
                                              std::move(b_shares.s0)));
    pair.m1.add(std::make_unique<SecureDense>(std::move(shares.s1),
                                              std::move(b_shares.s1)));
    if (spec.activation_after) add_activation(spec.out);
  }
  return pair;
}

SecureRnnPair build_secure_rnn_pair(const ModelConfig& cfg) {
  MatrixF wx = xavier_init(cfg.input_dim, cfg.rnn_hidden, cfg.seed);
  MatrixF wh = xavier_init(cfg.rnn_hidden, cfg.rnn_hidden, cfg.seed + 1);
  MatrixF wo = xavier_init(cfg.rnn_hidden, cfg.classes, cfg.seed + 2);
  auto sx = mpc::share_float(wx, cfg.seed ^ 0xA11CE);
  auto sh = mpc::share_float(wh, cfg.seed ^ 0xB0B);
  auto so = mpc::share_float(wo, cfg.seed ^ 0xCAFE);
  SecureRnnPair pair;
  pair.m0 = std::make_unique<SecureRnn>(std::move(sx.s0), std::move(sh.s0),
                                        std::move(so.s0));
  pair.m1 = std::make_unique<SecureRnn>(std::move(sx.s1), std::move(sh.s1),
                                        std::move(so.s1));
  return pair;
}

Sequential reconstruct_plain(const ModelConfig& cfg, SecureSequential& m0,
                             SecureSequential& m1) {
  Sequential plain = build_plain(cfg);
  PSML_CHECK(plain.size() == m0.size() && plain.size() == m1.size());
  for (std::size_t i = 0; i < plain.size(); ++i) {
    if (auto* d = dynamic_cast<Dense*>(&plain.layer(i))) {
      auto& s0 = dynamic_cast<SecureDense&>(m0.layer(i));
      auto& s1 = dynamic_cast<SecureDense&>(m1.layer(i));
      d->weights() = mpc::reconstruct_float(s0.weight_share(),
                                            s1.weight_share());
      d->bias() = mpc::reconstruct_float(s0.bias_share(), s1.bias_share());
    } else if (auto* c = dynamic_cast<Conv2D*>(&plain.layer(i))) {
      auto& s0 = dynamic_cast<SecureConv2D&>(m0.layer(i));
      auto& s1 = dynamic_cast<SecureConv2D&>(m1.layer(i));
      c->weights() = mpc::reconstruct_float(s0.weight_share(),
                                            s1.weight_share());
    }
  }
  return plain;
}

RnnModel reconstruct_plain_rnn(const ModelConfig& cfg, const SecureRnn& m0,
                               const SecureRnn& m1) {
  RnnModel plain = build_plain_rnn(cfg);
  plain.wx() = mpc::reconstruct_float(m0.wx_share(), m1.wx_share());
  plain.wh() = mpc::reconstruct_float(m0.wh_share(), m1.wh_share());
  plain.wo() = mpc::reconstruct_float(m0.wo_share(), m1.wo_share());
  return plain;
}

}  // namespace psml::ml
