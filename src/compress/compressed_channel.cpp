#include "compress/compressed_channel.hpp"

#include <cstring>

#include "net/serialize.hpp"
#include "sparse/csr.hpp"
#include "tensor/ops.hpp"

namespace psml::compress {

namespace {

enum SubKind : std::uint8_t { kDense = 0, kCsrDelta = 1 };

std::vector<std::uint8_t> with_prefix(SubKind sk,
                                      std::vector<std::uint8_t> body) {
  std::vector<std::uint8_t> out(body.size() + 1);
  out[0] = static_cast<std::uint8_t>(sk);
  std::memcpy(out.data() + 1, body.data(), body.size());
  return out;
}

}  // namespace

Endpoint::Endpoint(net::Channel& channel, Config cfg)
    : channel_(channel), cfg_(cfg) {}

void Endpoint::send(net::Tag tag, std::uint64_t key, const MatrixF& m) {
  std::lock_guard<std::mutex> lock(send_mutex_);
  stats_.messages += 1;
  // Derived from the serializer (wire header + payload + our subkind byte),
  // not hard-coded, so the ratio accounting tracks any header change.
  const std::size_t dense_payload = net::encoded_matrix_bytes(m) + 1;
  stats_.dense_bytes += dense_payload;

  if (cfg_.enabled) {
    auto it = send_baseline_.find(key);
    if (it != send_baseline_.end() && it->second.same_shape(m)) {
      MatrixF delta;
      tensor::sub(m, it->second, delta);
      if (tensor::zero_fraction(delta) >= cfg_.sparsity_threshold) {
        const auto csr = sparse::Csr::from_dense(delta);
        // CSR only pays off if it is actually smaller than dense.
        if (net::encoded_csr_bytes(csr) + 1 < dense_payload) {
          auto buf = with_prefix(kCsrDelta, net::encode_csr(csr));
          stats_.sent_bytes += buf.size();
          stats_.compressed_messages += 1;
          channel_.send(tag, buf);
          it->second = m;  // advance baseline
          return;
        }
      }
    }
  }
  auto buf = with_prefix(kDense, net::encode_matrix(m));
  stats_.sent_bytes += buf.size();
  channel_.send(tag, buf);
  if (cfg_.enabled) send_baseline_[key] = m;
}

MatrixF Endpoint::recv(net::Tag tag, std::uint64_t key) {
  // The blocking channel receive happens OUTSIDE the endpoint lock: holding
  // it here would recreate the cross-party pipeline deadlock documented in
  // net::Channel::recv (main thread blocks holding the lock; the comm-lane
  // thread that must send the peer's awaited message queues behind it).
  // Tags are globally unique per message, so concurrent recvs for different
  // keys cannot steal each other's payloads; only the baseline map needs
  // the lock.
  const net::Message msg = channel_.recv(tag);
  std::lock_guard<std::mutex> lock(recv_mutex_);
  if (msg.payload.empty()) {
    throw ProtocolError("compressed recv: empty payload");
  }
  const auto sk = static_cast<SubKind>(msg.payload[0]);
  const std::uint8_t* body = msg.payload.data() + 1;
  const std::size_t body_size = msg.payload.size() - 1;

  switch (sk) {
    case kDense: {
      MatrixF m = net::decode_matrix_f32(body, body_size);
      if (cfg_.enabled) recv_baseline_[key] = m;
      return m;
    }
    case kCsrDelta: {
      auto it = recv_baseline_.find(key);
      if (it == recv_baseline_.end()) {
        throw ProtocolError(
            "compressed recv: delta received with no baseline for key " +
            std::to_string(key));
      }
      MatrixF delta = net::decode_matrix_f32(body, body_size);
      if (!delta.same_shape(it->second)) {
        throw ProtocolError("compressed recv: delta shape drifted");
      }
      tensor::add(it->second, delta, it->second);
      return it->second;
    }
    default:
      throw ProtocolError("compressed recv: unknown subkind byte");
  }
}

void Endpoint::reset_baselines() {
  std::scoped_lock lock(send_mutex_, recv_mutex_);
  send_baseline_.clear();
  recv_baseline_.clear();
}

}  // namespace psml::compress
