#include "compress/compressed_channel.hpp"

#include <cstring>

#include "net/buffer_pool.hpp"
#include "net/serialize.hpp"
#include "net/wire_buf.hpp"
#include "sparse/csr.hpp"
#include "tensor/ops.hpp"

namespace psml::compress {

namespace {

enum SubKind : std::uint8_t { kDense = 0, kCsrDelta = 1, kPair = 2 };

}  // namespace

Endpoint::Endpoint(net::Channel& channel, Config cfg)
    : channel_(channel), cfg_(cfg) {}

std::size_t Endpoint::plan_body(std::uint64_t key, const MatrixF& m,
                                net::WireBuf& out) {
  const std::size_t before = out.size();
  stats_.messages += 1;
  // Derived from the serializer (wire header + payload + our subkind byte),
  // not hard-coded, so the ratio accounting tracks any header change.
  const std::size_t dense_payload = net::encoded_matrix_bytes(m) + 1;
  stats_.dense_bytes += dense_payload;

  const std::uint8_t sk_dense = kDense;
  const std::uint8_t sk_csr = kCsrDelta;

  if (cfg_.enabled) {
    auto it = send_state_.find(key);
    if (it != send_state_.end() && it->second.baseline.same_shape(m)) {
      SendState& st = it->second;
      // st.delta is per-key scratch: after the first epoch its allocation is
      // reused every send instead of churning a fresh matrix per call.
      tensor::sub(m, st.baseline, st.delta);
      if (tensor::zero_fraction(st.delta) >= cfg_.sparsity_threshold) {
        const auto csr = sparse::Csr::from_dense(st.delta);
        // CSR only pays off if it is actually smaller than dense.
        if (net::encoded_csr_bytes(csr) + 1 < dense_payload) {
          out.append_copy(&sk_csr, 1);
          out.append_vector(net::encode_csr(csr));
          stats_.compressed_messages += 1;
          st.baseline = m;  // same shape: copy-assign reuses the allocation
          const std::size_t appended = out.size() - before;
          stats_.sent_bytes += appended;
          return appended;
        }
      }
    }
  }
  out.append_copy(&sk_dense, 1);
  // Borrowed view of the caller's matrix storage — valid through the
  // synchronous channel send that follows plan_body.
  net::encode_matrix_into(m, out);
  if (cfg_.enabled) {
    SendState& st = send_state_[key];
    st.baseline = m;
  }
  const std::size_t appended = out.size() - before;
  stats_.sent_bytes += appended;
  return appended;
}

void Endpoint::send(net::Tag tag, std::uint64_t key, const MatrixF& m) {
  std::lock_guard<std::mutex> lock(send_mutex_);
  net::WireBuf buf;
  plan_body(key, m, buf);
  channel_.send(tag, std::move(buf));
}

void Endpoint::send_pair(net::Tag tag, std::uint64_t key_a, const MatrixF& a,
                         std::uint64_t key_b, const MatrixF& b) {
  std::lock_guard<std::mutex> lock(send_mutex_);
  net::WireBuf buf;
  // Prefix placeholder: [kPair][u32 len_a]; len_a patched once body_a is
  // planned. append_copy lands in the arena, so we plan body_a into a side
  // WireBuf first and splice — arena offsets stay valid through append_buf.
  net::WireBuf body_a;
  const std::size_t len_a = plan_body(key_a, a, body_a);
  std::uint8_t prefix[5];
  prefix[0] = kPair;
  const auto la = static_cast<std::uint32_t>(len_a);
  prefix[1] = static_cast<std::uint8_t>(la & 0xff);
  prefix[2] = static_cast<std::uint8_t>((la >> 8) & 0xff);
  prefix[3] = static_cast<std::uint8_t>((la >> 16) & 0xff);
  prefix[4] = static_cast<std::uint8_t>((la >> 24) & 0xff);
  buf.append_copy(prefix, sizeof(prefix));
  buf.append_buf(std::move(body_a));
  plan_body(key_b, b, buf);
  stats_.sent_bytes += sizeof(prefix);
  channel_.send(tag, std::move(buf));
}

MatrixF Endpoint::decode_body(std::uint64_t key, const std::uint8_t* data,
                              std::size_t size) {
  if (size == 0) {
    throw ProtocolError("compressed recv: empty payload");
  }
  const auto sk = static_cast<SubKind>(data[0]);
  const std::uint8_t* body = data + 1;
  const std::size_t body_size = size - 1;

  switch (sk) {
    case kDense: {
      MatrixF m = net::decode_matrix_f32(body, body_size);
      if (cfg_.enabled) recv_baseline_[key] = m;
      return m;
    }
    case kCsrDelta: {
      auto it = recv_baseline_.find(key);
      if (it == recv_baseline_.end()) {
        throw ProtocolError(
            "compressed recv: delta received with no baseline for key " +
            std::to_string(key));
      }
      MatrixF delta = net::decode_matrix_f32(body, body_size);
      if (!delta.same_shape(it->second)) {
        throw ProtocolError("compressed recv: delta shape drifted");
      }
      tensor::add(it->second, delta, it->second);
      return it->second;
    }
    default:
      throw ProtocolError("compressed recv: unknown subkind byte");
  }
}

MatrixF Endpoint::recv(net::Tag tag, std::uint64_t key) {
  // The blocking channel receive happens OUTSIDE the endpoint lock: holding
  // it here would recreate the cross-party pipeline deadlock documented in
  // net::Channel::recv (main thread blocks holding the lock; the comm-lane
  // thread that must send the peer's awaited message queues behind it).
  // Tags are globally unique per message, so concurrent recvs for different
  // keys cannot steal each other's payloads; only the baseline map needs
  // the lock.
  net::Message msg = channel_.recv(tag);
  MatrixF out;
  {
    std::lock_guard<std::mutex> lock(recv_mutex_);
    out = decode_body(key, msg.payload.data(), msg.payload.size());
  }
  net::BufferPool::global().release(std::move(msg.payload));
  return out;
}

std::pair<MatrixF, MatrixF> Endpoint::recv_pair(net::Tag tag,
                                                std::uint64_t key_a,
                                                std::uint64_t key_b) {
  net::Message msg = channel_.recv(tag);
  const std::uint8_t* p = msg.payload.data();
  const std::size_t n = msg.payload.size();
  if (n < 5 || p[0] != kPair) {
    throw ProtocolError("compressed recv_pair: not a pair frame");
  }
  const std::uint32_t len_a = static_cast<std::uint32_t>(p[1]) |
                              (static_cast<std::uint32_t>(p[2]) << 8) |
                              (static_cast<std::uint32_t>(p[3]) << 16) |
                              (static_cast<std::uint32_t>(p[4]) << 24);
  if (5 + static_cast<std::size_t>(len_a) > n) {
    throw ProtocolError("compressed recv_pair: len_a overruns payload");
  }
  std::pair<MatrixF, MatrixF> out;
  {
    std::lock_guard<std::mutex> lock(recv_mutex_);
    out.first = decode_body(key_a, p + 5, len_a);
    out.second = decode_body(key_b, p + 5 + len_a, n - 5 - len_a);
  }
  net::BufferPool::global().release(std::move(msg.payload));
  return out;
}

void Endpoint::reset_baselines() {
  std::scoped_lock lock(send_mutex_, recv_mutex_);
  send_state_.clear();
  recv_baseline_.clear();
}

}  // namespace psml::compress
