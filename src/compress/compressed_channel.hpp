// Compressed transmission for inter-node communication (paper Sec. 4.4).
//
// Across training epochs the reconstruct-phase matrices evolve as
//   E_{j+1} = E_j + dA_j,   F_{j+1} = F_j + dB_j        (Eqs. 11-12)
// and the deltas dA/dB (gradient steps) are usually sparse. Each logical
// tensor stream — identified by a caller-chosen 64-bit key such as
// (layer, direction, operand) — keeps the previously transmitted matrix as a
// baseline on both sides. A send computes delta = current - baseline; if the
// delta is at least `sparsity_threshold` zeros (default 75 %, the paper's
// setting) it goes out CSR-encoded, otherwise the dense matrix goes out and
// both sides reset their baseline.
//
// Wire format: 1 subkind byte (kDense | kCsrDelta) + the net:: payload.
// A coalesced pair frame (send_pair/recv_pair — the E and F halves of a
// reconstruct step in ONE message per direction) is
//   1 byte kPair | u32 len_a (little-endian) | body_a | body_b
// where each body is exactly the single-stream encoding above, so baselines
// and compression decisions per logical stream are identical whether a
// matrix travelled alone or paired.
#pragma once

#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "net/channel.hpp"
#include "net/serialize.hpp"
#include "tensor/matrix.hpp"

namespace psml::compress {

struct Config {
  bool enabled = true;
  // Minimum fraction of zero entries in the delta for CSR to be used.
  double sparsity_threshold = 0.75;
};

struct Stats {
  std::uint64_t messages = 0;
  std::uint64_t compressed_messages = 0;
  std::uint64_t dense_bytes = 0;  // bytes a dense-only scheme would have sent
  std::uint64_t sent_bytes = 0;   // bytes actually sent

  double savings() const {
    return dense_bytes == 0
               ? 0.0
               : 1.0 - static_cast<double>(sent_bytes) / dense_bytes;
  }
};

// One endpoint of a compressed tensor stream. A protocol party owns one
// Endpoint per channel; it serves both directions (send and recv keep
// independent baseline maps).
class Endpoint {
 public:
  explicit Endpoint(net::Channel& channel, Config cfg = Config());

  // Sends `m` on `tag` for logical stream `key`.
  void send(net::Tag tag, std::uint64_t key, const MatrixF& m);

  // Receives the matrix for logical stream `key`. Throws ProtocolError if a
  // delta arrives for an unknown baseline or shapes drift.
  MatrixF recv(net::Tag tag, std::uint64_t key);

  // Coalesced pair: both matrices go out in ONE channel message (halving
  // the per-step frame count of the E/F reconstruct exchange). Each half
  // keeps its own stream key, so delta baselines behave exactly as two
  // single sends would.
  void send_pair(net::Tag tag, std::uint64_t key_a, const MatrixF& a,
                 std::uint64_t key_b, const MatrixF& b);
  std::pair<MatrixF, MatrixF> recv_pair(net::Tag tag, std::uint64_t key_a,
                                        std::uint64_t key_b);

  const Stats& stats() const { return stats_; }
  void reset_stats() { stats_ = Stats{}; }

  // Drops all baselines (e.g. between training runs).
  void reset_baselines();

 private:
  // Per-key send-side state. `baseline` advances by same-shape copy-assign
  // (reuses its allocation) and `delta` is scratch reused across epochs —
  // the steady state of a training run does no per-send allocation here.
  struct SendState {
    MatrixF baseline;
    MatrixF delta;
  };

  // Appends one stream body ([subkind][payload]) to `out` and advances the
  // stream's baseline; returns the bytes appended. Caller holds send_mutex_.
  std::size_t plan_body(std::uint64_t key, const MatrixF& m,
                        net::WireBuf& out);
  // Decodes one stream body and advances the recv baseline. Caller holds
  // recv_mutex_.
  MatrixF decode_body(std::uint64_t key, const std::uint8_t* data,
                      std::size_t size);

  net::Channel& channel_;
  Config cfg_;
  Stats stats_;
  std::unordered_map<std::uint64_t, SendState> send_state_;
  std::unordered_map<std::uint64_t, MatrixF> recv_baseline_;
  // The double pipeline sends/receives from two threads (main + comm lane);
  // each direction keeps its own lock so full-duplex traffic does not
  // serialize.
  std::mutex send_mutex_;
  std::mutex recv_mutex_;
};

// Stream-key helper: pack (layer, phase, operand) into the 64-bit key space.
constexpr std::uint64_t stream_key(std::uint32_t layer, std::uint32_t phase,
                                   std::uint32_t operand) {
  return (static_cast<std::uint64_t>(layer) << 32) |
         (static_cast<std::uint64_t>(phase & 0xffffu) << 16) |
         (operand & 0xffffu);
}

}  // namespace psml::compress
