// AVX2/FMA instantiation of the packed-GEMM engine. This TU (and only this
// TU) is built with -mavx2 -mfma — see src/tensor/CMakeLists.txt — so
// nothing here may run unless cpu_has_avx2_fma() reported true; gemm.cpp owns
// that dispatch.
//
// f32 uses a hand-written 6x16 microkernel: 12 FMA accumulators + 2 B vectors
// + 1 broadcast register, the classic 15-of-16 ymm budget. u64 reuses the
// generic microkernel template — with AVX2 enabled GCC lowers the fixed-bound
// 4x8 accumulator loops to vpmuludq-based 64-bit multiplies, which is where
// the ring kernel's speedup comes from.
#include "tensor/gemm_kernel.hpp"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace psml::tensor::detail {

#if defined(__AVX2__) && defined(__FMA__)

namespace {

// acc[6][16] over one packed A panel ([kc][6]) and B panel ([kc][16]).
void micro_f32_avx2(std::size_t kc, const float* ap, const float* bp, float* c,
                    std::size_t ldc, std::size_t mr, std::size_t nr,
                    float alpha, float beta) {
  constexpr std::size_t MR = TilePlan<float>::MR;
  constexpr std::size_t NR = TilePlan<float>::NR;
  __m256 acc[MR][2];
  for (std::size_t i = 0; i < MR; ++i) {
    acc[i][0] = _mm256_setzero_ps();
    acc[i][1] = _mm256_setzero_ps();
  }
  for (std::size_t p = 0; p < kc; ++p) {
    const __m256 b0 = _mm256_loadu_ps(bp + p * NR);
    const __m256 b1 = _mm256_loadu_ps(bp + p * NR + 8);
    const float* a = ap + p * MR;
    for (std::size_t i = 0; i < MR; ++i) {
      const __m256 av = _mm256_broadcast_ss(a + i);
      acc[i][0] = _mm256_fmadd_ps(av, b0, acc[i][0]);
      acc[i][1] = _mm256_fmadd_ps(av, b1, acc[i][1]);
    }
  }
  const __m256 va = _mm256_set1_ps(alpha);
  if (mr == MR && nr == NR) {
    if (beta == 0.0f) {
      for (std::size_t i = 0; i < MR; ++i) {
        float* ci = c + i * ldc;
        _mm256_storeu_ps(ci, _mm256_mul_ps(va, acc[i][0]));
        _mm256_storeu_ps(ci + 8, _mm256_mul_ps(va, acc[i][1]));
      }
    } else {
      const __m256 vb = _mm256_set1_ps(beta);
      for (std::size_t i = 0; i < MR; ++i) {
        float* ci = c + i * ldc;
        const __m256 c0 = _mm256_mul_ps(vb, _mm256_loadu_ps(ci));
        const __m256 c1 = _mm256_mul_ps(vb, _mm256_loadu_ps(ci + 8));
        _mm256_storeu_ps(ci, _mm256_fmadd_ps(va, acc[i][0], c0));
        _mm256_storeu_ps(ci + 8, _mm256_fmadd_ps(va, acc[i][1], c1));
      }
    }
    return;
  }
  // Ragged edge: spill the accumulators and write the live sub-tile.
  alignas(kCacheLineBytes) float buf[MR][NR];
  for (std::size_t i = 0; i < MR; ++i) {
    _mm256_store_ps(buf[i], acc[i][0]);
    _mm256_store_ps(buf[i] + 8, acc[i][1]);
  }
  for (std::size_t i = 0; i < mr; ++i) {
    for (std::size_t j = 0; j < nr; ++j) {
      float& out = c[i * ldc + j];
      out = beta == 0.0f ? alpha * buf[i][j] : alpha * buf[i][j] + beta * out;
    }
  }
}

}  // namespace

void gemm_f32_simd(const GemmArgsF32& g) { packed_gemm<float>(g, micro_f32_avx2); }

void gemm_u64_simd(const GemmArgsU64& g) {
  packed_gemm<std::uint64_t>(
      g, micro_kernel_generic<std::uint64_t, TilePlan<std::uint64_t>::MR,
                              TilePlan<std::uint64_t>::NR>);
}

#else  // non-x86 build (or the ISA flags were stripped): alias the scalar path

void gemm_f32_simd(const GemmArgsF32& g) { gemm_f32_scalar(g); }
void gemm_u64_simd(const GemmArgsU64& g) { gemm_u64_scalar(g); }

#endif

}  // namespace psml::tensor::detail
