#include "tensor/im2col.hpp"

#include "tensor/gemm.hpp"
#include "tensor/ops.hpp"

namespace psml::tensor {

namespace {

void check_input(const MatrixF& input, const ConvShape& s) {
  PSML_REQUIRE(input.cols() == s.in_c * s.in_h * s.in_w,
               "conv: input cols != in_c*in_h*in_w");
}

}  // namespace

MatrixF im2col(const MatrixF& input, const ConvShape& s) {
  check_input(input, s);
  const std::size_t batch = input.rows();
  const std::size_t oh = s.out_h();
  const std::size_t ow = s.out_w();
  MatrixF patches(s.patch_rows(batch), s.patch_cols());

  for (std::size_t b = 0; b < batch; ++b) {
    const float* img = input.data() + b * input.cols();
    for (std::size_t oy = 0; oy < oh; ++oy) {
      for (std::size_t ox = 0; ox < ow; ++ox) {
        float* prow =
            patches.data() + ((b * oh + oy) * ow + ox) * patches.cols();
        std::size_t col = 0;
        for (std::size_t c = 0; c < s.in_c; ++c) {
          const float* chan = img + c * s.in_h * s.in_w;
          for (std::size_t ky = 0; ky < s.kernel; ++ky) {
            const std::ptrdiff_t iy =
                static_cast<std::ptrdiff_t>(oy * s.stride + ky) -
                static_cast<std::ptrdiff_t>(s.pad);
            for (std::size_t kx = 0; kx < s.kernel; ++kx, ++col) {
              const std::ptrdiff_t ix =
                  static_cast<std::ptrdiff_t>(ox * s.stride + kx) -
                  static_cast<std::ptrdiff_t>(s.pad);
              if (iy < 0 || ix < 0 ||
                  iy >= static_cast<std::ptrdiff_t>(s.in_h) ||
                  ix >= static_cast<std::ptrdiff_t>(s.in_w)) {
                prow[col] = 0.0f;
              } else {
                prow[col] = chan[iy * s.in_w + ix];
              }
            }
          }
        }
      }
    }
  }
  return patches;
}

MatrixF col2im(const MatrixF& patches, const ConvShape& s, std::size_t batch) {
  PSML_REQUIRE(patches.rows() == s.patch_rows(batch) &&
                   patches.cols() == s.patch_cols(),
               "col2im: patch matrix shape mismatch");
  const std::size_t oh = s.out_h();
  const std::size_t ow = s.out_w();
  MatrixF grad(batch, s.in_c * s.in_h * s.in_w, 0.0f);

  for (std::size_t b = 0; b < batch; ++b) {
    float* img = grad.data() + b * grad.cols();
    for (std::size_t oy = 0; oy < oh; ++oy) {
      for (std::size_t ox = 0; ox < ow; ++ox) {
        const float* prow =
            patches.data() + ((b * oh + oy) * ow + ox) * patches.cols();
        std::size_t col = 0;
        for (std::size_t c = 0; c < s.in_c; ++c) {
          float* chan = img + c * s.in_h * s.in_w;
          for (std::size_t ky = 0; ky < s.kernel; ++ky) {
            const std::ptrdiff_t iy =
                static_cast<std::ptrdiff_t>(oy * s.stride + ky) -
                static_cast<std::ptrdiff_t>(s.pad);
            for (std::size_t kx = 0; kx < s.kernel; ++kx, ++col) {
              const std::ptrdiff_t ix =
                  static_cast<std::ptrdiff_t>(ox * s.stride + kx) -
                  static_cast<std::ptrdiff_t>(s.pad);
              if (iy >= 0 && ix >= 0 &&
                  iy < static_cast<std::ptrdiff_t>(s.in_h) &&
                  ix < static_cast<std::ptrdiff_t>(s.in_w)) {
                chan[iy * s.in_w + ix] += prow[col];
              }
            }
          }
        }
      }
    }
  }
  return grad;
}

MatrixF conv2d_direct(const MatrixF& input, const MatrixF& weights,
                      const ConvShape& s) {
  check_input(input, s);
  PSML_REQUIRE(weights.rows() == s.out_c && weights.cols() == s.patch_cols(),
               "conv: weight shape mismatch");
  const std::size_t batch = input.rows();
  const std::size_t oh = s.out_h();
  const std::size_t ow = s.out_w();
  MatrixF out(batch, s.out_c * oh * ow, 0.0f);

  for (std::size_t b = 0; b < batch; ++b) {
    const float* img = input.data() + b * input.cols();
    for (std::size_t f = 0; f < s.out_c; ++f) {
      const float* w = weights.data() + f * weights.cols();
      float* omap = out.data() + b * out.cols() + f * oh * ow;
      for (std::size_t oy = 0; oy < oh; ++oy) {
        for (std::size_t ox = 0; ox < ow; ++ox) {
          float acc = 0.0f;
          std::size_t col = 0;
          for (std::size_t c = 0; c < s.in_c; ++c) {
            const float* chan = img + c * s.in_h * s.in_w;
            for (std::size_t ky = 0; ky < s.kernel; ++ky) {
              const std::ptrdiff_t iy =
                  static_cast<std::ptrdiff_t>(oy * s.stride + ky) -
                  static_cast<std::ptrdiff_t>(s.pad);
              for (std::size_t kx = 0; kx < s.kernel; ++kx, ++col) {
                const std::ptrdiff_t ix =
                    static_cast<std::ptrdiff_t>(ox * s.stride + kx) -
                    static_cast<std::ptrdiff_t>(s.pad);
                if (iy >= 0 && ix >= 0 &&
                    iy < static_cast<std::ptrdiff_t>(s.in_h) &&
                    ix < static_cast<std::ptrdiff_t>(s.in_w)) {
                  acc += w[col] * chan[iy * s.in_w + ix];
                }
              }
            }
          }
          omap[oy * ow + ox] = acc;
        }
      }
    }
  }
  return out;
}

}  // namespace psml::tensor
