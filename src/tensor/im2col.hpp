// im2col / col2im lowering and a direct 2-D convolution reference.
//
// Convolution in the secure CNN is executed as a triplet *matrix* multiply
// over the im2col-lowered input (the paper protects "triplet multiplication",
// which covers conv through exactly this lowering). col2im is needed by the
// backward pass.
#pragma once

#include "tensor/matrix.hpp"

namespace psml::tensor {

struct ConvShape {
  std::size_t in_h = 0, in_w = 0;      // input spatial dims
  std::size_t in_c = 1;                // input channels
  std::size_t kernel = 5;              // square kernel
  std::size_t stride = 1;
  std::size_t pad = 0;
  std::size_t out_c = 1;               // number of filters

  std::size_t out_h() const {
    PSML_REQUIRE(in_h + 2 * pad >= kernel, "conv: kernel larger than input");
    return (in_h + 2 * pad - kernel) / stride + 1;
  }
  std::size_t out_w() const {
    PSML_REQUIRE(in_w + 2 * pad >= kernel, "conv: kernel larger than input");
    return (in_w + 2 * pad - kernel) / stride + 1;
  }
  // Rows/cols of the lowered patch matrix for a batch of size `batch`:
  // (batch * out_h * out_w) x (in_c * kernel * kernel).
  std::size_t patch_rows(std::size_t batch) const {
    return batch * out_h() * out_w();
  }
  std::size_t patch_cols() const { return in_c * kernel * kernel; }
};

// input: batch x (in_c * in_h * in_w), row-major, channel-major per image.
// Returns patch matrix P with shape patch_rows(batch) x patch_cols(); then
// conv output = P x W^T where W is out_c x patch_cols().
MatrixF im2col(const MatrixF& input, const ConvShape& shape);

// Inverse scatter-add of im2col: grad w.r.t. the input from the patch-matrix
// gradient. Returns batch x (in_c * in_h * in_w).
MatrixF col2im(const MatrixF& patches, const ConvShape& shape,
               std::size_t batch);

// Direct (non-lowered) convolution reference used to validate im2col+GEMM.
// weights: out_c x (in_c * kernel * kernel).
MatrixF conv2d_direct(const MatrixF& input, const MatrixF& weights,
                      const ConvShape& shape);

}  // namespace psml::tensor
