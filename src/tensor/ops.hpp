// Elementwise and structural matrix operations.
//
// Every binary/unary elementwise op has a serial form and a parallel form
// (suffix `_par`) running on the global thread pool with cache-line-aligned
// chunking — the CPU optimization of Sec. 5.1.
#pragma once

#include <cmath>
#include <cstdint>
#include <functional>

#include "tensor/matrix.hpp"

namespace psml::tensor {

// ---- serial elementwise -------------------------------------------------

template <typename T>
void add(const Matrix<T>& a, const Matrix<T>& b, Matrix<T>& out) {
  PSML_REQUIRE(a.same_shape(b), "add: shape mismatch");
  if (!out.same_shape(a)) out.resize(a.rows(), a.cols());
  const T* pa = a.data();
  const T* pb = b.data();
  T* po = out.data();
  for (std::size_t i = 0; i < a.size(); ++i) po[i] = pa[i] + pb[i];
}

template <typename T>
void sub(const Matrix<T>& a, const Matrix<T>& b, Matrix<T>& out) {
  PSML_REQUIRE(a.same_shape(b), "sub: shape mismatch");
  if (!out.same_shape(a)) out.resize(a.rows(), a.cols());
  const T* pa = a.data();
  const T* pb = b.data();
  T* po = out.data();
  for (std::size_t i = 0; i < a.size(); ++i) po[i] = pa[i] - pb[i];
}

template <typename T>
void hadamard(const Matrix<T>& a, const Matrix<T>& b, Matrix<T>& out) {
  PSML_REQUIRE(a.same_shape(b), "hadamard: shape mismatch");
  if (!out.same_shape(a)) out.resize(a.rows(), a.cols());
  const T* pa = a.data();
  const T* pb = b.data();
  T* po = out.data();
  for (std::size_t i = 0; i < a.size(); ++i) po[i] = pa[i] * pb[i];
}

template <typename T>
void scale(const Matrix<T>& a, T s, Matrix<T>& out) {
  if (!out.same_shape(a)) out.resize(a.rows(), a.cols());
  const T* pa = a.data();
  T* po = out.data();
  for (std::size_t i = 0; i < a.size(); ++i) po[i] = pa[i] * s;
}

// out += a * s
template <typename T>
void axpy(T s, const Matrix<T>& a, Matrix<T>& out) {
  PSML_REQUIRE(a.same_shape(out), "axpy: shape mismatch");
  const T* pa = a.data();
  T* po = out.data();
  for (std::size_t i = 0; i < a.size(); ++i) po[i] += s * pa[i];
}

// ---- parallel elementwise (cache-line chunked) --------------------------

void add_par(const MatrixF& a, const MatrixF& b, MatrixF& out);
void sub_par(const MatrixF& a, const MatrixF& b, MatrixF& out);
void hadamard_par(const MatrixF& a, const MatrixF& b, MatrixF& out);
void scale_par(const MatrixF& a, float s, MatrixF& out);
void axpy_par(float s, const MatrixF& a, MatrixF& out);

// ---- structural ----------------------------------------------------------

template <typename T>
Matrix<T> transpose(const Matrix<T>& a) {
  Matrix<T> out(a.cols(), a.rows());
  // Blocked transpose for cache friendliness.
  constexpr std::size_t kBlock = 32;
  for (std::size_t rb = 0; rb < a.rows(); rb += kBlock) {
    for (std::size_t cb = 0; cb < a.cols(); cb += kBlock) {
      const std::size_t rmax = std::min(rb + kBlock, a.rows());
      const std::size_t cmax = std::min(cb + kBlock, a.cols());
      for (std::size_t r = rb; r < rmax; ++r) {
        for (std::size_t c = cb; c < cmax; ++c) {
          out(c, r) = a(r, c);
        }
      }
    }
  }
  return out;
}

// Horizontal concatenation [a | b] — used by the fused Eq. 8 operand.
template <typename T>
Matrix<T> hconcat(const Matrix<T>& a, const Matrix<T>& b) {
  PSML_REQUIRE(a.rows() == b.rows(), "hconcat: row mismatch");
  Matrix<T> out(a.rows(), a.cols() + b.cols());
  for (std::size_t r = 0; r < a.rows(); ++r) {
    std::memcpy(out.data() + r * out.cols(), a.data() + r * a.cols(),
                a.cols() * sizeof(T));
    std::memcpy(out.data() + r * out.cols() + a.cols(),
                b.data() + r * b.cols(), b.cols() * sizeof(T));
  }
  return out;
}

// Vertical concatenation [a ; b] — used by the fused Eq. 8 operand.
template <typename T>
Matrix<T> vconcat(const Matrix<T>& a, const Matrix<T>& b) {
  PSML_REQUIRE(a.cols() == b.cols(), "vconcat: col mismatch");
  Matrix<T> out(a.rows() + b.rows(), a.cols());
  std::memcpy(out.data(), a.data(), a.bytes());
  std::memcpy(out.data() + a.size(), b.data(), b.bytes());
  return out;
}

// ---- reductions / stats ---------------------------------------------------

template <typename T>
T sum(const Matrix<T>& a) {
  T acc{};
  for (std::size_t i = 0; i < a.size(); ++i) acc += a.data()[i];
  return acc;
}

double max_abs_diff(const MatrixF& a, const MatrixF& b);
double max_abs_diff(const MatrixD& a, const MatrixD& b);

// Fraction of exactly-zero entries; the compression layer's sparsity test.
template <typename T>
double zero_fraction(const Matrix<T>& a) {
  if (a.empty()) return 1.0;
  std::size_t zeros = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a.data()[i] == T{}) ++zeros;
  }
  return static_cast<double>(zeros) / static_cast<double>(a.size());
}

// Frobenius norm.
double fro_norm(const MatrixF& a);

}  // namespace psml::tensor
