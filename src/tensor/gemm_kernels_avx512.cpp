// AVX-512DQ instantiation of the packed engine for the u64 ring kernel.
//
// The ring multiply wants the low 64 bits of a 64x64 product mod 2^64. AVX2
// has no 64-bit vector multiply, so the AVX2 tier decomposes it into three
// 32x32 vpmuludq cross products (~1.4x the seed kernel); AVX-512DQ's vpmullq
// does it in one instruction over 8 lanes, which is where the ring kernel's
// >= 2x target comes from. f32 stays on the AVX2/FMA tier on purpose: it
// already saturates there, and 512-bit f32 tiles would only add frequency-
// throttling risk for no measured win.
//
// Built with -mavx512f -mavx512dq (see CMakeLists.txt); reached only through
// cpu_has_avx512dq() dispatch in gemm.cpp.
#include "tensor/gemm_kernel.hpp"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace psml::tensor::detail {

#if defined(__AVX512F__) && defined(__AVX512DQ__)

namespace {

// 4x8 u64 microkernel: one zmm per B step, four broadcast/fma-style chains.
void micro_u64_avx512(std::size_t kc, const std::uint64_t* ap,
                      const std::uint64_t* bp, std::uint64_t* c,
                      std::size_t ldc, std::size_t mr, std::size_t nr,
                      std::uint64_t alpha, std::uint64_t beta) {
  constexpr std::size_t MR = TilePlan<std::uint64_t>::MR;
  constexpr std::size_t NR = TilePlan<std::uint64_t>::NR;
  static_assert(NR == 8, "u64 micro tile must be one zmm wide");
  __m512i acc[MR];
  for (std::size_t i = 0; i < MR; ++i) acc[i] = _mm512_setzero_si512();
  for (std::size_t p = 0; p < kc; ++p) {
    const __m512i b =
        _mm512_loadu_si512(reinterpret_cast<const void*>(bp + p * NR));
    const std::uint64_t* a = ap + p * MR;
    for (std::size_t i = 0; i < MR; ++i) {
      const __m512i av = _mm512_set1_epi64(static_cast<long long>(a[i]));
      acc[i] = _mm512_add_epi64(acc[i], _mm512_mullo_epi64(av, b));
    }
  }
  const __m512i va = _mm512_set1_epi64(static_cast<long long>(alpha));
  if (mr == MR && nr == NR) {
    if (beta == 0) {
      for (std::size_t i = 0; i < MR; ++i) {
        _mm512_storeu_si512(reinterpret_cast<void*>(c + i * ldc),
                            _mm512_mullo_epi64(va, acc[i]));
      }
    } else {
      const __m512i vb = _mm512_set1_epi64(static_cast<long long>(beta));
      for (std::size_t i = 0; i < MR; ++i) {
        void* ci = reinterpret_cast<void*>(c + i * ldc);
        const __m512i cv = _mm512_loadu_si512(ci);
        _mm512_storeu_si512(
            ci, _mm512_add_epi64(_mm512_mullo_epi64(va, acc[i]),
                                 _mm512_mullo_epi64(vb, cv)));
      }
    }
    return;
  }
  alignas(kCacheLineBytes) std::uint64_t buf[MR][NR];
  for (std::size_t i = 0; i < MR; ++i) {
    _mm512_store_si512(reinterpret_cast<void*>(buf[i]), acc[i]);
  }
  for (std::size_t i = 0; i < mr; ++i) {
    for (std::size_t j = 0; j < nr; ++j) {
      std::uint64_t& out = c[i * ldc + j];
      out = beta == 0 ? alpha * buf[i][j] : alpha * buf[i][j] + beta * out;
    }
  }
}

}  // namespace

void gemm_u64_avx512(const GemmArgsU64& g) {
  packed_gemm<std::uint64_t>(g, micro_u64_avx512);
}

#else  // ISA flags unavailable: alias the AVX2-tier path

void gemm_u64_avx512(const GemmArgsU64& g) { gemm_u64_simd(g); }

#endif

}  // namespace psml::tensor::detail
