// Dense row-major matrix with cache-line-aligned storage.
//
// This is the value type flowing through the whole framework: plaintext
// tensors, secret shares, Beaver triplets, and wire payloads are all
// Matrix<T> for T in {float, double, uint64_t (ring elements)}.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <initializer_list>
#include <span>
#include <utility>
#include <vector>

#include "common/aligned.hpp"
#include "common/error.hpp"

namespace psml {

template <typename T>
class Matrix {
 public:
  using value_type = T;

  Matrix() = default;

  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols) {}

  Matrix(std::size_t rows, std::size_t cols, T fill)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  // Row-major initializer: Matrix<float>({{1,2},{3,4}}).
  Matrix(std::initializer_list<std::initializer_list<T>> init) {
    rows_ = init.size();
    cols_ = rows_ == 0 ? 0 : init.begin()->size();
    data_.reserve(rows_ * cols_);
    for (const auto& row : init) {
      PSML_REQUIRE(row.size() == cols_, "ragged initializer list");
      data_.insert(data_.end(), row.begin(), row.end());
    }
  }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }
  std::size_t bytes() const { return size() * sizeof(T); }

  T* data() { return data_.data(); }
  const T* data() const { return data_.data(); }

  std::span<T> span() { return {data_.data(), data_.size()}; }
  std::span<const T> span() const { return {data_.data(), data_.size()}; }

  T& operator()(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  const T& operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  T& at(std::size_t r, std::size_t c) {
    PSML_REQUIRE(r < rows_ && c < cols_, "Matrix::at out of range");
    return (*this)(r, c);
  }
  const T& at(std::size_t r, std::size_t c) const {
    PSML_REQUIRE(r < rows_ && c < cols_, "Matrix::at out of range");
    return (*this)(r, c);
  }

  std::span<T> row(std::size_t r) { return {data_.data() + r * cols_, cols_}; }
  std::span<const T> row(std::size_t r) const {
    return {data_.data() + r * cols_, cols_};
  }

  bool same_shape(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

  void fill(T value) { std::fill(data_.begin(), data_.end(), value); }

  void resize(std::size_t rows, std::size_t cols) {
    rows_ = rows;
    cols_ = cols;
    data_.assign(rows * cols, T{});
  }

  friend bool operator==(const Matrix& a, const Matrix& b) {
    return a.rows_ == b.rows_ && a.cols_ == b.cols_ && a.data_ == b.data_;
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<T, AlignedAllocator<T>> data_;
};

using MatrixF = Matrix<float>;
using MatrixD = Matrix<double>;
using MatrixU64 = Matrix<std::uint64_t>;

}  // namespace psml
