// Internal packed-GEMM engine shared by every CPU matmul kernel in the repo:
// the f32 kernels behind tensor::gemm_blocked / gemm_parallel and the u64
// ring kernel behind mpc::ring_matmul.
//
// Structure (BLIS-style):
//   - operands are described by (pointer, row stride, col stride), so all four
//     transpose combinations are handled by the packing routines for free —
//     no transpose copies on the way in;
//   - A is packed into MR-row micro-panels ([kc][MR] column-major within the
//     panel), B into NR-column micro-panels ([kc][NR]); ragged edges are
//     zero-padded so the microkernel always runs full tiles;
//   - a register-blocked microkernel contracts one MRxNR tile over kc;
//   - the macro loop walks fixed MCxNC tiles of C. Parallelism is a 2-D
//     partition of that tile grid; the per-element update order (k blocks in
//     ascending order, one owner tile per C element) is therefore identical
//     for every thread count, which makes f32 results bit-identical between
//     gemm_blocked and gemm_parallel for a fixed tile plan.
//
// Numeric semantics (shared with gemm_naive, documented in docs/ANALYSIS.md):
//   - branch-free accumulation: there is no value-based work skipping, so
//     NaN/Inf in either operand propagates exactly as written (the seed
//     kernels skipped `a == 0` terms and silently dropped 0*NaN = NaN);
//   - beta == 0 overwrites C (BLAS semantics: existing garbage, including
//     NaN, does not propagate); any other beta multiplies.
//
// The engine is a template so the scalar fallback and the SIMD build share
// one implementation: gemm_kernels_scalar.cpp instantiates it with baseline
// codegen, gemm_kernels_avx2.cpp with -mavx2 -mfma (plus a hand-written
// AVX2/FMA f32 microkernel). Runtime dispatch lives in gemm.cpp.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/aligned.hpp"
#include "common/thread_pool.hpp"

namespace psml::tensor::detail {

// One GEMM problem: C(m,n) = alpha * A(m,k) x B(k,n) + beta * C, with A/B
// given as strided views (row stride = step between op-rows, col stride =
// step between op-columns) and C dense row-major with leading dimension ldc.
template <typename T>
struct GemmArgs {
  std::size_t m = 0, n = 0, k = 0;
  T alpha{};
  T beta{};
  const T* a = nullptr;
  std::size_t a_rs = 0, a_cs = 0;
  const T* b = nullptr;
  std::size_t b_rs = 0, b_cs = 0;
  T* c = nullptr;
  std::size_t ldc = 0;
  bool parallel = false;  // 2-D tile partition on the global thread pool
};

using GemmArgsF32 = GemmArgs<float>;
using GemmArgsU64 = GemmArgs<std::uint64_t>;

// Cache-tile plan. MR/NR are the register tile; MC/KC/NC the cache blocks.
// These are compile-time constants on purpose: the tile plan must not depend
// on runtime state (thread count, pool size) or the bit-consistency guarantee
// above evaporates.
template <typename T>
struct TilePlan;

template <>
struct TilePlan<float> {
  static constexpr std::size_t MR = 6;    // micro rows (broadcast operand)
  static constexpr std::size_t NR = 16;   // micro cols (two 8-lane vectors)
  static constexpr std::size_t MC = 72;   // A block rows   (multiple of MR)
  static constexpr std::size_t KC = 256;  // shared k block
  static constexpr std::size_t NC = 512;  // B block cols   (multiple of NR)
};

template <>
struct TilePlan<std::uint64_t> {
  static constexpr std::size_t MR = 4;
  static constexpr std::size_t NR = 8;
  static constexpr std::size_t MC = 64;
  static constexpr std::size_t KC = 192;  // u64 panels are 8 bytes/elem
  static constexpr std::size_t NC = 256;
};

// Packs the mc x kc block starting at `a` (strided view) into MR-row
// micro-panels: panel q holds rows [q*MR, q*MR+MR) laid out [kc][MR] so the
// microkernel reads MR contiguous values per k step. Short final panels are
// zero-padded — padded lanes contribute to accumulators that writeback
// discards, so the padding is never observable.
template <typename T, std::size_t MR>
void pack_a(const T* a, std::size_t rs, std::size_t cs, std::size_t mc,
            std::size_t kc, T* out) {
  for (std::size_t ir = 0; ir < mc; ir += MR) {
    const std::size_t mr = mc - ir < MR ? mc - ir : MR;
    for (std::size_t p = 0; p < kc; ++p) {
      const T* col = a + ir * rs + p * cs;
      std::size_t i = 0;
      for (; i < mr; ++i) out[i] = col[i * rs];
      for (; i < MR; ++i) out[i] = T{};
      out += MR;
    }
  }
}

// Packs the kc x nc block starting at `b` into NR-column micro-panels laid
// out [kc][NR]; same zero-padding contract as pack_a.
template <typename T, std::size_t NR>
void pack_b(const T* b, std::size_t rs, std::size_t cs, std::size_t kc,
            std::size_t nc, T* out) {
  for (std::size_t jr = 0; jr < nc; jr += NR) {
    const std::size_t nr = nc - jr < NR ? nc - jr : NR;
    for (std::size_t p = 0; p < kc; ++p) {
      const T* row = b + p * rs + jr * cs;
      std::size_t j = 0;
      for (; j < nr; ++j) out[j] = row[j * cs];
      for (; j < NR; ++j) out[j] = T{};
      out += NR;
    }
  }
}

// Portable register-blocked microkernel: acc[MR][NR] += Ap x Bp over kc,
// then C[0..mr)[0..nr) = alpha*acc + beta*C (beta == 0 overwrites). The
// fixed-bound loops unroll fully; built with vector ISA flags the compiler
// keeps `acc` in registers and vectorizes the j dimension.
template <typename T, std::size_t MR, std::size_t NR>
void micro_kernel_generic(std::size_t kc, const T* ap, const T* bp, T* c,
                          std::size_t ldc, std::size_t mr, std::size_t nr,
                          T alpha, T beta) {
  T acc[MR][NR] = {};
  for (std::size_t p = 0; p < kc; ++p) {
    const T* a = ap + p * MR;
    const T* b = bp + p * NR;
    for (std::size_t i = 0; i < MR; ++i) {
      const T av = a[i];
      for (std::size_t j = 0; j < NR; ++j) acc[i][j] += av * b[j];
    }
  }
  if (mr == MR && nr == NR) {
    if (beta == T{}) {
      for (std::size_t i = 0; i < MR; ++i)
        for (std::size_t j = 0; j < NR; ++j) c[i * ldc + j] = alpha * acc[i][j];
    } else {
      for (std::size_t i = 0; i < MR; ++i)
        for (std::size_t j = 0; j < NR; ++j)
          c[i * ldc + j] = alpha * acc[i][j] + beta * c[i * ldc + j];
    }
    return;
  }
  for (std::size_t i = 0; i < mr; ++i) {
    for (std::size_t j = 0; j < nr; ++j) {
      T& out = c[i * ldc + j];
      out = beta == T{} ? alpha * acc[i][j] : alpha * acc[i][j] + beta * out;
    }
  }
}

// Scales one C tile by beta without touching A/B — the k == 0 degenerate
// case, where the macro loop would otherwise never apply beta.
template <typename T>
void scale_tile(T* c, std::size_t ldc, std::size_t mc, std::size_t nc, T beta) {
  for (std::size_t i = 0; i < mc; ++i) {
    T* row = c + i * ldc;
    if (beta == T{}) {
      for (std::size_t j = 0; j < nc; ++j) row[j] = T{};
    } else {
      for (std::size_t j = 0; j < nc; ++j) row[j] *= beta;
    }
  }
}

// Runs tiles [t0, t1) of the MCxNC grid. `micro` has the signature of
// micro_kernel_generic. Pack buffers are reused across the tiles of one call
// (one call == one thread-pool chunk, or the whole grid single-threaded).
template <typename T, typename Micro>
void run_tile_range(const GemmArgs<T>& g, std::size_t t0, std::size_t t1,
                    Micro micro) {
  using Plan = TilePlan<T>;
  constexpr std::size_t MR = Plan::MR, NR = Plan::NR;
  constexpr std::size_t MC = Plan::MC, KC = Plan::KC, NC = Plan::NC;
  const std::size_t nbj = (g.n + NC - 1) / NC;

  std::vector<T, AlignedAllocator<T>> apack(MC * KC);
  std::vector<T, AlignedAllocator<T>> bpack(KC * NC);

  for (std::size_t t = t0; t < t1; ++t) {
    const std::size_t ic = (t / nbj) * MC;
    const std::size_t jc = (t % nbj) * NC;
    const std::size_t mc = g.m - ic < MC ? g.m - ic : MC;
    const std::size_t nc = g.n - jc < NC ? g.n - jc : NC;
    T* ctile = g.c + ic * g.ldc + jc;

    if (g.k == 0) {
      scale_tile(ctile, g.ldc, mc, nc, g.beta);
      continue;
    }
    for (std::size_t pc = 0; pc < g.k; pc += KC) {
      const std::size_t kc = g.k - pc < KC ? g.k - pc : KC;
      // First k block applies the caller's beta; later blocks accumulate.
      const T beta_eff = pc == 0 ? g.beta : T{1};
      pack_b<T, NR>(g.b + pc * g.b_rs + jc * g.b_cs, g.b_rs, g.b_cs, kc, nc,
                    bpack.data());
      pack_a<T, MR>(g.a + ic * g.a_rs + pc * g.a_cs, g.a_rs, g.a_cs, mc, kc,
                    apack.data());
      for (std::size_t jr = 0; jr < nc; jr += NR) {
        const std::size_t nr = nc - jr < NR ? nc - jr : NR;
        const T* bp = bpack.data() + (jr / NR) * (NR * kc);
        for (std::size_t ir = 0; ir < mc; ir += MR) {
          const std::size_t mr = mc - ir < MR ? mc - ir : MR;
          const T* ap = apack.data() + (ir / MR) * (MR * kc);
          micro(kc, ap, bp, ctile + ir * g.ldc + jr, g.ldc, mr, nr, g.alpha,
                beta_eff);
        }
      }
    }
  }
}

// Full engine: partitions the MCxNC tile grid, serially or across the global
// thread pool. Tiles own disjoint C regions and each runs its k loop
// in-order, so serial and parallel execution produce identical bits.
template <typename T, typename Micro>
void packed_gemm(const GemmArgs<T>& g, Micro micro) {
  using Plan = TilePlan<T>;
  if (g.m == 0 || g.n == 0) return;
  const std::size_t nbi = (g.m + Plan::MC - 1) / Plan::MC;
  const std::size_t nbj = (g.n + Plan::NC - 1) / Plan::NC;
  const std::size_t tiles = nbi * nbj;
  if (g.parallel && tiles > 1) {
    parallel_for(
        0, tiles,
        [&g, micro](std::size_t lo, std::size_t hi) {
          run_tile_range<T>(g, lo, hi, micro);
        },
        /*grain=*/1);
  } else {
    run_tile_range<T>(g, 0, tiles, micro);
  }
}

// Entry points exported by the two kernel TUs. The *_simd variants are built
// with -mavx2 -mfma and must only be called when cpu_has_avx2_fma() is true;
// dispatch is centralized in gemm.cpp.
void gemm_f32_scalar(const GemmArgsF32& g);
void gemm_u64_scalar(const GemmArgsU64& g);
void gemm_f32_simd(const GemmArgsF32& g);
void gemm_u64_simd(const GemmArgsU64& g);
// AVX-512DQ tier (vpmullq 64-bit multiply), u64 only; call only when
// cpu_has_avx512dq() is true.
void gemm_u64_avx512(const GemmArgsU64& g);
bool cpu_has_avx2_fma();
bool cpu_has_avx512dq();

// u64 entry honoring the process-wide GemmIsa selection (defined in gemm.cpp
// next to the f32 dispatch); mpc::ring_matmul calls this.
void gemm_u64_auto(const GemmArgsU64& g);

}  // namespace psml::tensor::detail
