// Portable instantiation of the packed-GEMM engine: baseline codegen (no ISA
// flags beyond the project defaults), used on CPUs without AVX2/FMA and when
// tests force GemmIsa::kScalar to cross-check the SIMD path.
#include "tensor/gemm_kernel.hpp"

namespace psml::tensor::detail {

void gemm_f32_scalar(const GemmArgsF32& g) {
  packed_gemm<float>(
      g, micro_kernel_generic<float, TilePlan<float>::MR, TilePlan<float>::NR>);
}

void gemm_u64_scalar(const GemmArgsU64& g) {
  packed_gemm<std::uint64_t>(
      g, micro_kernel_generic<std::uint64_t, TilePlan<std::uint64_t>::MR,
                              TilePlan<std::uint64_t>::NR>);
}

bool cpu_has_avx2_fma() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

bool cpu_has_avx512dq() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx512f") &&
         __builtin_cpu_supports("avx512dq");
#else
  return false;
#endif
}

}  // namespace psml::tensor::detail
