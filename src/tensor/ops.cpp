#include "tensor/ops.hpp"

#include <algorithm>
#include <cmath>

#include "common/thread_pool.hpp"

namespace psml::tensor {

namespace {

// All parallel elementwise kernels share this driver. Chunks are multiples of
// a cache line (16 floats), so no two threads write the same line, and small
// inputs fall back to the serial path (one parallel region, merged work).
template <typename Body>
void elementwise_par(std::size_t n, Body&& body) {
  constexpr std::size_t kSerialCutoff = 1 << 14;  // 16K floats = 64 KiB
  if (n < kSerialCutoff) {
    body(0, n);
    return;
  }
  parallel_for(0, n, body, kFloatsPerCacheLine * 64);
}

}  // namespace

void add_par(const MatrixF& a, const MatrixF& b, MatrixF& out) {
  PSML_REQUIRE(a.same_shape(b), "add_par: shape mismatch");
  if (!out.same_shape(a)) out.resize(a.rows(), a.cols());
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  elementwise_par(a.size(), [=](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) po[i] = pa[i] + pb[i];
  });
}

void sub_par(const MatrixF& a, const MatrixF& b, MatrixF& out) {
  PSML_REQUIRE(a.same_shape(b), "sub_par: shape mismatch");
  if (!out.same_shape(a)) out.resize(a.rows(), a.cols());
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  elementwise_par(a.size(), [=](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) po[i] = pa[i] - pb[i];
  });
}

void hadamard_par(const MatrixF& a, const MatrixF& b, MatrixF& out) {
  PSML_REQUIRE(a.same_shape(b), "hadamard_par: shape mismatch");
  if (!out.same_shape(a)) out.resize(a.rows(), a.cols());
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  elementwise_par(a.size(), [=](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) po[i] = pa[i] * pb[i];
  });
}

void scale_par(const MatrixF& a, float s, MatrixF& out) {
  if (!out.same_shape(a)) out.resize(a.rows(), a.cols());
  const float* pa = a.data();
  float* po = out.data();
  elementwise_par(a.size(), [=](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) po[i] = pa[i] * s;
  });
}

void axpy_par(float s, const MatrixF& a, MatrixF& out) {
  PSML_REQUIRE(a.same_shape(out), "axpy_par: shape mismatch");
  const float* pa = a.data();
  float* po = out.data();
  elementwise_par(a.size(), [=](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) po[i] += s * pa[i];
  });
}

double max_abs_diff(const MatrixF& a, const MatrixF& b) {
  PSML_REQUIRE(a.same_shape(b), "max_abs_diff: shape mismatch");
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    m = std::max(m, std::abs(static_cast<double>(a.data()[i]) - b.data()[i]));
  }
  return m;
}

double max_abs_diff(const MatrixD& a, const MatrixD& b) {
  PSML_REQUIRE(a.same_shape(b), "max_abs_diff: shape mismatch");
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    m = std::max(m, std::abs(a.data()[i] - b.data()[i]));
  }
  return m;
}

double fro_norm(const MatrixF& a) {
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    acc += static_cast<double>(a.data()[i]) * a.data()[i];
  }
  return std::sqrt(acc);
}

}  // namespace psml::tensor
