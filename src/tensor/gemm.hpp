// Host-side GEMM kernels: C = alpha * A(+T) x B(+T) + beta * C.
//
// Three tiers:
//   gemm_naive    — triple loop, the reference every other kernel is tested
//                   against; also the "SecureML baseline" compute path.
//   gemm_blocked  — packed panels + register-blocked microkernel (6x16 f32),
//                   runtime-dispatched AVX2/FMA with a portable scalar
//                   fallback, single-threaded.
//   gemm_parallel — the same packed engine with the MCxNC tile grid
//                   partitioned 2-D across the global thread pool; the CPU
//                   side of the adaptive dispatcher.
//
// Numeric contract (all tiers, see docs/ANALYSIS.md "Packed GEMM engine"):
//   - no value-based work skipping: NaN/Inf anywhere in A or B propagates;
//   - beta == 0 overwrites C (BLAS semantics), other betas multiply;
//   - for a fixed tile plan, gemm_blocked and gemm_parallel are bit-identical
//     at every thread count (each C element has one owner tile and a fixed
//     k-block accumulation order).
#pragma once

#include <cstddef>

#include "tensor/matrix.hpp"

namespace psml::tensor {

enum class Trans { kNo, kYes };

struct GemmDims {
  std::size_t m, n, k;
};

// Validates shapes and returns (m, n, k) for C(m,n) = A op x B op.
GemmDims gemm_dims(const MatrixF& a, Trans ta, const MatrixF& b, Trans tb,
                   const MatrixF& c);

void gemm_naive(float alpha, const MatrixF& a, Trans ta, const MatrixF& b,
                Trans tb, float beta, MatrixF& c);

void gemm_blocked(float alpha, const MatrixF& a, Trans ta, const MatrixF& b,
                  Trans tb, float beta, MatrixF& c);

void gemm_parallel(float alpha, const MatrixF& a, Trans ta, const MatrixF& b,
                   Trans tb, float beta, MatrixF& c);

// Convenience: C = A x B with a fresh output, parallel kernel.
MatrixF matmul(const MatrixF& a, const MatrixF& b);

// Convenience: C = A x B with the naive kernel (baseline mode).
MatrixF matmul_naive(const MatrixF& a, const MatrixF& b);

// ---- kernel selection -------------------------------------------------------
//
// kAuto picks AVX2/FMA when the CPU has it, scalar otherwise. kSimd/kScalar
// force a path (kSimd silently degrades to scalar on CPUs without AVX2/FMA);
// tests use the forced modes to cross-check both codegens, benchmarks to
// price them. Selection is process-global and cheap to read.

enum class GemmIsa { kAuto, kScalar, kSimd };

void set_gemm_isa(GemmIsa isa);
GemmIsa gemm_isa();

// True when the running CPU supports the AVX2/FMA microkernel.
bool gemm_simd_available();

// Human-readable name of the kernel the current selection resolves to,
// e.g. "avx2fma-6x16" or "scalar-6x16".
const char* gemm_kernel_name();

// Monotonic counter bumped by every set_gemm_isa() call. Cost models
// calibrated against the CPU kernel (profile::AdaptiveDispatch) stamp the
// revision they saw and treat a mismatch as "calibration is stale".
std::size_t gemm_kernel_revision();

}  // namespace psml::tensor
