// Host-side GEMM kernels: C = alpha * A(+T) x B(+T) + beta * C.
//
// Three tiers:
//   gemm_naive    — triple loop, the reference every other kernel is tested
//                   against; also the "SecureML baseline" compute path.
//   gemm_blocked  — cache-blocked, register-tiled, single-threaded.
//   gemm_parallel — gemm_blocked across row panels on the global thread pool;
//                   the CPU side of the adaptive dispatcher.
#pragma once

#include "tensor/matrix.hpp"

namespace psml::tensor {

enum class Trans { kNo, kYes };

struct GemmDims {
  std::size_t m, n, k;
};

// Validates shapes and returns (m, n, k) for C(m,n) = A op x B op.
GemmDims gemm_dims(const MatrixF& a, Trans ta, const MatrixF& b, Trans tb,
                   const MatrixF& c);

void gemm_naive(float alpha, const MatrixF& a, Trans ta, const MatrixF& b,
                Trans tb, float beta, MatrixF& c);

void gemm_blocked(float alpha, const MatrixF& a, Trans ta, const MatrixF& b,
                  Trans tb, float beta, MatrixF& c);

void gemm_parallel(float alpha, const MatrixF& a, Trans ta, const MatrixF& b,
                   Trans tb, float beta, MatrixF& c);

// Convenience: C = A x B with a fresh output, parallel kernel.
MatrixF matmul(const MatrixF& a, const MatrixF& b);

// Convenience: C = A x B with the naive kernel (baseline mode).
MatrixF matmul_naive(const MatrixF& a, const MatrixF& b);

}  // namespace psml::tensor
