#include "tensor/gemm.hpp"

#include <algorithm>

#include "common/thread_pool.hpp"
#include "tensor/ops.hpp"

namespace psml::tensor {

namespace {

std::size_t op_rows(const MatrixF& x, Trans t) {
  return t == Trans::kNo ? x.rows() : x.cols();
}
std::size_t op_cols(const MatrixF& x, Trans t) {
  return t == Trans::kNo ? x.cols() : x.rows();
}

// Cache-blocked ikj kernel over plain row-major operands, rows [r0, r1).
// Inner loop is over contiguous B/C rows, so it vectorizes.
void gemm_rows(float alpha, const float* a, const float* b, float beta,
               float* c, std::size_t r0, std::size_t r1, std::size_t n,
               std::size_t k) {
  constexpr std::size_t kKB = 256;  // k-block: A panel + B panel fit in L1/L2
  constexpr std::size_t kJB = 512;  // j-block: C row segment stays in L1

  for (std::size_t i = r0; i < r1; ++i) {
    float* ci = c + i * n;
    if (beta == 0.0f) {
      std::fill(ci, ci + n, 0.0f);
    } else if (beta != 1.0f) {
      for (std::size_t j = 0; j < n; ++j) ci[j] *= beta;
    }
  }
  for (std::size_t kb = 0; kb < k; kb += kKB) {
    const std::size_t kmax = std::min(kb + kKB, k);
    for (std::size_t jb = 0; jb < n; jb += kJB) {
      const std::size_t jmax = std::min(jb + kJB, n);
      for (std::size_t i = r0; i < r1; ++i) {
        const float* ai = a + i * k;
        float* ci = c + i * n;
        for (std::size_t kk = kb; kk < kmax; ++kk) {
          const float av = alpha * ai[kk];
          if (av == 0.0f) continue;
          const float* bk = b + kk * n;
          for (std::size_t j = jb; j < jmax; ++j) {
            ci[j] += av * bk[j];
          }
        }
      }
    }
  }
}

}  // namespace

GemmDims gemm_dims(const MatrixF& a, Trans ta, const MatrixF& b, Trans tb,
                   const MatrixF& c) {
  const std::size_t m = op_rows(a, ta);
  const std::size_t k = op_cols(a, ta);
  const std::size_t kb = op_rows(b, tb);
  const std::size_t n = op_cols(b, tb);
  PSML_REQUIRE(k == kb, "gemm: inner dimensions disagree");
  PSML_REQUIRE(c.rows() == m && c.cols() == n, "gemm: output shape mismatch");
  return {m, n, k};
}

void gemm_naive(float alpha, const MatrixF& a, Trans ta, const MatrixF& b,
                Trans tb, float beta, MatrixF& c) {
  const auto [m, n, k] = gemm_dims(a, ta, b, tb, c);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (std::size_t kk = 0; kk < k; ++kk) {
        const float av = ta == Trans::kNo ? a(i, kk) : a(kk, i);
        const float bv = tb == Trans::kNo ? b(kk, j) : b(j, kk);
        acc += av * bv;
      }
      c(i, j) = alpha * acc + beta * c(i, j);
    }
  }
}

void gemm_blocked(float alpha, const MatrixF& a, Trans ta, const MatrixF& b,
                  Trans tb, float beta, MatrixF& c) {
  const auto [m, n, k] = gemm_dims(a, ta, b, tb, c);
  // Normalize to non-transposed row-major operands; the transpose copy is
  // O(mk + kn) against the O(mnk) multiply.
  const MatrixF* ap = &a;
  const MatrixF* bp = &b;
  MatrixF at, bt;
  if (ta == Trans::kYes) {
    at = transpose(a);
    ap = &at;
  }
  if (tb == Trans::kYes) {
    bt = transpose(b);
    bp = &bt;
  }
  gemm_rows(alpha, ap->data(), bp->data(), beta, c.data(), 0, m, n, k);
}

void gemm_parallel(float alpha, const MatrixF& a, Trans ta, const MatrixF& b,
                   Trans tb, float beta, MatrixF& c) {
  const auto [m, n, k] = gemm_dims(a, ta, b, tb, c);
  const MatrixF* ap = &a;
  const MatrixF* bp = &b;
  MatrixF at, bt;
  if (ta == Trans::kYes) {
    at = transpose(a);
    ap = &at;
  }
  if (tb == Trans::kYes) {
    bt = transpose(b);
    bp = &bt;
  }
  // Small problems: parallel launch overhead dominates.
  if (m * n * k < (std::size_t{1} << 18)) {
    gemm_rows(alpha, ap->data(), bp->data(), beta, c.data(), 0, m, n, k);
    return;
  }
  const float* pa = ap->data();
  const float* pb = bp->data();
  float* pc = c.data();
  parallel_for(
      0, m,
      [=](std::size_t lo, std::size_t hi) {
        gemm_rows(alpha, pa, pb, beta, pc, lo, hi, n, k);
      },
      /*grain=*/4);
}

MatrixF matmul(const MatrixF& a, const MatrixF& b) {
  MatrixF c(a.rows(), b.cols());
  gemm_parallel(1.0f, a, Trans::kNo, b, Trans::kNo, 0.0f, c);
  return c;
}

MatrixF matmul_naive(const MatrixF& a, const MatrixF& b) {
  MatrixF c(a.rows(), b.cols());
  gemm_naive(1.0f, a, Trans::kNo, b, Trans::kNo, 0.0f, c);
  return c;
}

}  // namespace psml::tensor
