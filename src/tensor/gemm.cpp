#include "tensor/gemm.hpp"

#include <atomic>

#include "tensor/gemm_kernel.hpp"

namespace psml::tensor {

namespace {

std::size_t op_rows(const MatrixF& x, Trans t) {
  return t == Trans::kNo ? x.rows() : x.cols();
}
std::size_t op_cols(const MatrixF& x, Trans t) {
  return t == Trans::kNo ? x.cols() : x.rows();
}

std::atomic<GemmIsa> g_isa{GemmIsa::kAuto};
std::atomic<std::size_t> g_isa_revision{0};

bool resolve_simd() {
  switch (g_isa.load(std::memory_order_relaxed)) {
    case GemmIsa::kScalar:
      return false;
    case GemmIsa::kSimd:
    case GemmIsa::kAuto:
      break;
  }
  return detail::cpu_has_avx2_fma();
}

// Fills the strided-view fields of `g` for one operand pair. A transposed
// operand is handled by swapping the view strides — the packing routines do
// the gather, so there is no transpose copy.
detail::GemmArgsF32 make_args(float alpha, const MatrixF& a, Trans ta,
                              const MatrixF& b, Trans tb, float beta,
                              MatrixF& c, const GemmDims& d, bool parallel) {
  detail::GemmArgsF32 g;
  g.m = d.m;
  g.n = d.n;
  g.k = d.k;
  g.alpha = alpha;
  g.beta = beta;
  g.a = a.data();
  if (ta == Trans::kNo) {
    g.a_rs = a.cols();  // storage m x k
    g.a_cs = 1;
  } else {
    g.a_rs = 1;         // storage k x m
    g.a_cs = a.cols();
  }
  g.b = b.data();
  if (tb == Trans::kNo) {
    g.b_rs = b.cols();  // storage k x n
    g.b_cs = 1;
  } else {
    g.b_rs = 1;         // storage n x k
    g.b_cs = b.cols();
  }
  g.c = c.data();
  g.ldc = d.n;
  g.parallel = parallel;
  return g;
}

void run_packed(const detail::GemmArgsF32& g) {
  if (resolve_simd()) {
    detail::gemm_f32_simd(g);
  } else {
    detail::gemm_f32_scalar(g);
  }
}

}  // namespace

GemmDims gemm_dims(const MatrixF& a, Trans ta, const MatrixF& b, Trans tb,
                   const MatrixF& c) {
  const std::size_t m = op_rows(a, ta);
  const std::size_t k = op_cols(a, ta);
  const std::size_t kb = op_rows(b, tb);
  const std::size_t n = op_cols(b, tb);
  PSML_REQUIRE(k == kb, "gemm: inner dimensions disagree");
  PSML_REQUIRE(c.rows() == m && c.cols() == n, "gemm: output shape mismatch");
  return {m, n, k};
}

void gemm_naive(float alpha, const MatrixF& a, Trans ta, const MatrixF& b,
                Trans tb, float beta, MatrixF& c) {
  const auto [m, n, k] = gemm_dims(a, ta, b, tb, c);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (std::size_t kk = 0; kk < k; ++kk) {
        const float av = ta == Trans::kNo ? a(i, kk) : a(kk, i);
        const float bv = tb == Trans::kNo ? b(kk, j) : b(j, kk);
        acc += av * bv;
      }
      // beta == 0 overwrites (BLAS semantics) so stale C contents — including
      // NaN in freshly "allocated" buffers — never leak into the result.
      c(i, j) = beta == 0.0f ? alpha * acc : alpha * acc + beta * c(i, j);
    }
  }
}

void gemm_blocked(float alpha, const MatrixF& a, Trans ta, const MatrixF& b,
                  Trans tb, float beta, MatrixF& c) {
  const GemmDims d = gemm_dims(a, ta, b, tb, c);
  run_packed(make_args(alpha, a, ta, b, tb, beta, c, d, /*parallel=*/false));
}

void gemm_parallel(float alpha, const MatrixF& a, Trans ta, const MatrixF& b,
                   Trans tb, float beta, MatrixF& c) {
  const GemmDims d = gemm_dims(a, ta, b, tb, c);
  // Small problems: parallel launch overhead dominates. The serial engine is
  // bit-identical, so the cutoff is invisible to results.
  const bool parallel = d.m * d.n * d.k >= (std::size_t{1} << 18);
  run_packed(make_args(alpha, a, ta, b, tb, beta, c, d, parallel));
}

MatrixF matmul(const MatrixF& a, const MatrixF& b) {
  MatrixF c(a.rows(), b.cols());
  gemm_parallel(1.0f, a, Trans::kNo, b, Trans::kNo, 0.0f, c);
  return c;
}

MatrixF matmul_naive(const MatrixF& a, const MatrixF& b) {
  MatrixF c(a.rows(), b.cols());
  gemm_naive(1.0f, a, Trans::kNo, b, Trans::kNo, 0.0f, c);
  return c;
}

namespace detail {
void gemm_u64_auto(const GemmArgsU64& g) {
  if (!resolve_simd()) {
    gemm_u64_scalar(g);
  } else if (cpu_has_avx512dq()) {
    gemm_u64_avx512(g);
  } else {
    gemm_u64_simd(g);
  }
}
}  // namespace detail

void set_gemm_isa(GemmIsa isa) {
  g_isa.store(isa, std::memory_order_relaxed);
  g_isa_revision.fetch_add(1, std::memory_order_relaxed);
}

GemmIsa gemm_isa() { return g_isa.load(std::memory_order_relaxed); }

bool gemm_simd_available() { return detail::cpu_has_avx2_fma(); }

const char* gemm_kernel_name() {
  return resolve_simd() ? "avx2fma-6x16" : "scalar-6x16";
}

std::size_t gemm_kernel_revision() {
  return g_isa_revision.load(std::memory_order_relaxed);
}

}  // namespace psml::tensor
