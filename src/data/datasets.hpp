// Synthetic dataset generators standing in for the paper's five datasets
// (MNIST, VGGFace2, NIST fingerprints, CIFAR-10, SYNTHETIC). See DESIGN.md §2:
// the evaluation measures runtime against tensor shapes, so the generators
// reproduce each dataset's *geometry* (scaled where the original would not
// fit this machine) and produce separable Gaussian class blobs so that
// training measurably converges.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "tensor/matrix.hpp"

namespace psml::data {

enum class DatasetKind { kMnist, kVggFace2, kNist, kCifar10, kSynthetic };

std::string to_string(DatasetKind kind);

struct Geometry {
  std::size_t h = 0, w = 0, c = 1;
  std::size_t features() const { return h * w * c; }
};

// Scaled geometry used throughout the reproduction (paper-original sizes in
// comments in the implementation).
Geometry dataset_geometry(DatasetKind kind);

enum class LabelScheme {
  kOneHot10,   // 10-class one-hot (CNN / MLP)
  kBinary01,   // {0,1} single column (linear / logistic regression)
  kBinaryPm1,  // {-1,+1} single column (SVM)
};

struct Dataset {
  MatrixF x;  // samples x features, values roughly in [0, 1]
  MatrixF y;  // samples x classes per the label scheme
  Geometry geometry;
  std::size_t classes = 0;
};

// Gaussian class-blob data with the geometry of `kind`. Deterministic in
// `seed`. Separation is chosen so a linear model reaches >90 % train
// accuracy within a few epochs.
Dataset make_dataset(DatasetKind kind, LabelScheme scheme,
                     std::size_t samples, std::uint64_t seed);

// Batch slice [begin, begin+count) rows of a matrix.
MatrixF slice_rows(const MatrixF& m, std::size_t begin, std::size_t count);

// Splits a batch's feature columns into `steps` equal chunks — the sequence
// view used by the RNN (SYNTHETIC matrices are 32x64: rows become steps).
std::vector<MatrixF> sequence_view(const MatrixF& batch, std::size_t steps);

}  // namespace psml::data
