#include "data/datasets.hpp"

#include <algorithm>
#include <cstring>
#include <random>

#include "rng/rng.hpp"

namespace psml::data {

std::string to_string(DatasetKind kind) {
  switch (kind) {
    case DatasetKind::kMnist: return "MNIST";
    case DatasetKind::kVggFace2: return "VGGFace2";
    case DatasetKind::kNist: return "NIST";
    case DatasetKind::kCifar10: return "CIFAR-10";
    case DatasetKind::kSynthetic: return "SYNTHETIC";
  }
  return "?";
}

Geometry dataset_geometry(DatasetKind kind) {
  switch (kind) {
    case DatasetKind::kMnist:
      return {28, 28, 1};  // original 28x28
    case DatasetKind::kVggFace2:
      return {48, 48, 1};  // original 200x200, scaled for this machine
    case DatasetKind::kNist:
      return {64, 64, 1};  // original 512x512, scaled
    case DatasetKind::kCifar10:
      return {32, 32, 3};  // original 32x32x3
    case DatasetKind::kSynthetic:
      return {32, 64, 1};  // the paper's 32x64 matrices
  }
  return {};
}

Dataset make_dataset(DatasetKind kind, LabelScheme scheme,
                     std::size_t samples, std::uint64_t seed) {
  Dataset ds;
  ds.geometry = dataset_geometry(kind);
  const std::size_t d = ds.geometry.features();
  const std::size_t n_classes = scheme == LabelScheme::kOneHot10 ? 10 : 2;
  ds.classes = scheme == LabelScheme::kOneHot10 ? 10 : 1;

  // Per-class mean images: smooth blobs at class-dependent positions so the
  // data have image-like spatial correlation and a conv layer has structure
  // to find.
  std::mt19937_64 gen(seed);
  std::vector<MatrixF> means;
  means.reserve(n_classes);
  for (std::size_t c = 0; c < n_classes; ++c) {
    MatrixF mean(1, d, 0.0f);
    const double cy = 0.2 + 0.6 * ((c * 7) % n_classes) /
                                static_cast<double>(n_classes);
    const double cx = 0.2 + 0.6 * ((c * 3) % n_classes) /
                                static_cast<double>(n_classes);
    const double sigma = 0.15 * static_cast<double>(ds.geometry.h);
    for (std::size_t ch = 0; ch < ds.geometry.c; ++ch) {
      for (std::size_t y = 0; y < ds.geometry.h; ++y) {
        for (std::size_t x = 0; x < ds.geometry.w; ++x) {
          const double dy = static_cast<double>(y) - cy * ds.geometry.h;
          const double dx = static_cast<double>(x) - cx * ds.geometry.w;
          const double v = std::exp(-(dx * dx + dy * dy) / (2 * sigma * sigma));
          mean.data()[ch * ds.geometry.h * ds.geometry.w +
                      y * ds.geometry.w + x] =
              static_cast<float>(0.8 * v * (0.5 + 0.5 * ((c + ch) % 2)) +
                                 0.1 * ((c + ch) % 3) / 3.0);
        }
      }
    }
    means.push_back(std::move(mean));
  }

  ds.x.resize(samples, d);
  ds.y.resize(samples, ds.classes);
  MatrixF noise(samples, d);
  rng::fill_normal_par(noise, 0.0f, 0.08f, seed ^ 0x1234);

  std::uniform_int_distribution<std::size_t> pick(0, n_classes - 1);
  for (std::size_t r = 0; r < samples; ++r) {
    const std::size_t c = pick(gen);
    const float* mean = means[c].data();
    float* row = ds.x.data() + r * d;
    const float* nrow = noise.data() + r * d;
    for (std::size_t j = 0; j < d; ++j) {
      row[j] = std::clamp(mean[j] + nrow[j], 0.0f, 1.0f);
    }
    switch (scheme) {
      case LabelScheme::kOneHot10:
        ds.y(r, c) = 1.0f;
        break;
      case LabelScheme::kBinary01:
        ds.y(r, 0) = c == 1 ? 1.0f : 0.0f;
        break;
      case LabelScheme::kBinaryPm1:
        ds.y(r, 0) = c == 1 ? 1.0f : -1.0f;
        break;
    }
  }
  return ds;
}

MatrixF slice_rows(const MatrixF& m, std::size_t begin, std::size_t count) {
  PSML_REQUIRE(begin + count <= m.rows(), "slice_rows: out of range");
  MatrixF out(count, m.cols());
  std::memcpy(out.data(), m.data() + begin * m.cols(),
              count * m.cols() * sizeof(float));
  return out;
}

std::vector<MatrixF> sequence_view(const MatrixF& batch, std::size_t steps) {
  PSML_REQUIRE(steps > 0 && batch.cols() % steps == 0,
               "sequence_view: feature count not divisible by steps");
  const std::size_t d = batch.cols() / steps;
  std::vector<MatrixF> xs(steps, MatrixF(batch.rows(), d));
  for (std::size_t r = 0; r < batch.rows(); ++r) {
    const float* row = batch.data() + r * batch.cols();
    for (std::size_t t = 0; t < steps; ++t) {
      std::memcpy(xs[t].data() + r * d, row + t * d, d * sizeof(float));
    }
  }
  return xs;
}

}  // namespace psml::data
