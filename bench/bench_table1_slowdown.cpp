// Table 1: slowdown of SecureML (2PC, unoptimized) over the original
// non-secure implementation, MNIST. Paper: CNN 2.49x, MLP 1.80x,
// linear 1.93x, logistic 1.97x (avg ~2x).
#include "bench_util.hpp"

using namespace psml;
using namespace psml::bench;

int main() {
  header("Table 1", "original vs SecureML training time on MNIST");
  std::printf("%-10s %12s %12s %10s %10s\n", "method", "original(s)",
              "secureml(s)", "slowdown", "paper");
  const struct {
    ml::ModelKind kind;
    double paper_slowdown;
  } rows[] = {{ml::ModelKind::kCnn, 2.49},
              {ml::ModelKind::kMlp, 1.80},
              {ml::ModelKind::kLinear, 1.93},
              {ml::ModelKind::kLogistic, 1.97}};

  double sum_ratio = 0;
  for (const auto& row : rows) {
    // The paper's 2x regime is compute-dominated (60k MNIST images per
    // batch); scale up enough that GEMMs dominate the fixed protocol costs.
    auto cfg = default_config(row.kind, data::DatasetKind::kMnist,
                              parsecureml::Mode::kPlainCpu);
    cfg.samples = scaled(row.kind == ml::ModelKind::kCnn ? 128 : 512);
    cfg.batch = cfg.samples;
    cfg.epochs = 2;
    const auto plain = parsecureml::run_training(cfg);
    cfg.mode = parsecureml::Mode::kSecureML;
    const auto secure = parsecureml::run_training(cfg);
    const double slowdown = secure.total_sec / plain.online_sec;
    sum_ratio += slowdown;
    std::printf("%-10s %12.3f %12.3f %9.2fx %9.2fx\n",
                ml::to_string(row.kind).c_str(), plain.online_sec,
                secure.total_sec, slowdown, row.paper_slowdown);
  }
  std::printf("average slowdown: %.2fx (paper ~2x on V100-scale workloads; "
              "models with tiny outputs stay overhead-bound at this "
              "machine's scale)\n",
              sum_ratio / 4.0);
  return 0;
}
