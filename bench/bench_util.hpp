// Shared helpers for the table/figure reproduction benches.
//
// Every bench prints a header naming the paper artifact it regenerates, then
// CSV-ish rows with a `paper=` reference column where the paper states a
// number, so EXPERIMENTS.md can be filled by running the binary. Sizes are
// scaled to this machine (see DESIGN.md §2); the PSML_BENCH_SCALE env var
// multiplies sample counts for bigger runs.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "common/env.hpp"
#include "parsecureml/framework.hpp"

namespace psml::bench {

inline std::size_t scaled(std::size_t base) {
  const double s = env_double("PSML_BENCH_SCALE", 1.0);
  return std::max<std::size_t>(1, static_cast<std::size_t>(base * s));
}

inline void header(const std::string& artifact, const std::string& what) {
  std::printf("==========================================================\n");
  std::printf("%s — %s\n", artifact.c_str(), what.c_str());
  std::printf("(scaled reproduction; shapes comparable, absolute numbers "
              "machine-dependent)\n");
  std::printf("==========================================================\n");
}

inline const std::vector<ml::ModelKind>& all_models() {
  static const std::vector<ml::ModelKind> kinds = {
      ml::ModelKind::kCnn,    ml::ModelKind::kMlp,
      ml::ModelKind::kLinear, ml::ModelKind::kLogistic,
      ml::ModelKind::kSvm,    ml::ModelKind::kRnn};
  return kinds;
}

inline const std::vector<data::DatasetKind>& all_datasets() {
  static const std::vector<data::DatasetKind> kinds = {
      data::DatasetKind::kVggFace2, data::DatasetKind::kNist,
      data::DatasetKind::kSynthetic, data::DatasetKind::kMnist,
      data::DatasetKind::kCifar10};
  return kinds;
}

// The paper only evaluates RNN on SYNTHETIC (Sec. 7.1).
inline bool valid_combo(ml::ModelKind model, data::DatasetKind dataset) {
  if (model == ml::ModelKind::kRnn) {
    return dataset == data::DatasetKind::kSynthetic;
  }
  return true;
}

// A small default workload: fast on a laptop-class box, big enough that the
// GPU path wins on the heavy models.
inline parsecureml::RunConfig default_config(ml::ModelKind model,
                                             data::DatasetKind dataset,
                                             parsecureml::Mode mode) {
  parsecureml::RunConfig cfg;
  cfg.model = model;
  cfg.dataset = dataset;
  cfg.mode = mode;
  cfg.samples = scaled(48);
  cfg.batch = cfg.samples;
  cfg.epochs = 1;
  cfg.lr = 0.2f;
  cfg.evaluate = false;
  cfg.seed = 20260705;
  // CNN patch matrices explode on the big image sets; trim samples to keep
  // the offline phase tractable on 2 cores.
  if (model == ml::ModelKind::kCnn &&
      (dataset == data::DatasetKind::kVggFace2 ||
       dataset == data::DatasetKind::kNist)) {
    cfg.samples = scaled(12);
    cfg.batch = cfg.samples;
  }
  return cfg;
}

}  // namespace psml::bench
