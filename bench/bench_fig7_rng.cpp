// Fig. 7: random-number generation — cuRAND-style counter RNG on the
// (simulated) GPU vs MT19937 on the CPU, n x n matrices. Paper shape: CPU
// wins for small matrices, the GPU generator only pays off at large n.
#include "bench_util.hpp"
#include "common/timer.hpp"
#include "rng/rng.hpp"
#include "sgpu/ops.hpp"

using namespace psml;
using namespace psml::bench;

namespace {

double time_best_of(int reps, const std::function<void()>& fn) {
  double best = 1e100;
  for (int i = 0; i < reps; ++i) {
    Timer t;
    fn();
    best = std::min(best, t.seconds());
  }
  return best;
}

}  // namespace

int main() {
  header("Fig. 7", "cuRAND-style GPU RNG vs MT19937 CPU RNG, n x n fills");
  auto& dev = sgpu::Device::global();
  std::printf("%-8s %14s %14s %14s %10s\n", "n", "mt19937-1t(s)",
              "mt19937-par(s)", "gpu-philox(s)", "gpu/cpu");

  for (const std::size_t n : {128u, 256u, 512u, 1024u, 2048u}) {
    MatrixF host(n, n);
    const double t_serial = time_best_of(3, [&] {
      rng::fill_uniform(host, -1.0f, 1.0f);
    });
    const double t_par = time_best_of(3, [&] {
      rng::fill_uniform_par(host, -1.0f, 1.0f, 42);
    });
    // GPU path includes the D2H copy of the generated matrix, like cuRAND
    // usage that must land host-side.
    const double t_gpu = time_best_of(3, [&] {
      sgpu::DeviceMatrix d(dev, n, n);
      sgpu::philox_uniform_async(dev, dev.default_stream(), d, -1.0f, 1.0f,
                                 42);
      sgpu::download_async(dev, dev.default_stream(), host, d);
      dev.default_stream().synchronize();
    });
    std::printf("%-8zu %14.5f %14.5f %14.5f %9.2fx\n", n, t_serial, t_par,
                t_gpu, t_serial / t_gpu);
  }
  std::printf("\npaper shape: GPU generator only beats CPU MT19937 at large "
              "matrix dimensions (crossover visible above)\n");
  return 0;
}
