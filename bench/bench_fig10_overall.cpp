// Figs. 10-12: ParSecureML speedup over SecureML for six models x five
// datasets — overall, online-phase, and offline-phase speedups.
// Paper: 33.8x average overall, 64.5x online, 1.3x offline. On this
// CPU-only substrate the absolute ratios are smaller (the simulated GPU is
// backed by the same cores), but the shape must hold: online >> offline
// speedup; heavier models/datasets gain more.
#include "bench_util.hpp"

using namespace psml;
using namespace psml::bench;

int main() {
  header("Figs. 10/11/12",
         "ParSecureML vs SecureML speedups (overall / online / offline)");
  std::printf("%-10s %-10s %9s %9s %9s\n", "dataset", "model", "overall",
              "online", "offline");

  double sum_total = 0, sum_online = 0, sum_offline = 0;
  int count = 0;
  for (const auto dataset : all_datasets()) {
    for (const auto model : all_models()) {
      if (!valid_combo(model, dataset)) continue;
      auto cfg = default_config(model, dataset, parsecureml::Mode::kSecureML);
      const auto base = parsecureml::run_training(cfg);
      cfg.mode = parsecureml::Mode::kParSecureML;
      const auto fast = parsecureml::run_training(cfg);

      const double sp_total = base.total_sec / fast.total_sec;
      const double sp_online = base.online_sec / fast.online_sec;
      const double off_base =
          base.offline_generate_sec + base.offline_transmit_sec;
      const double off_fast =
          fast.offline_generate_sec + fast.offline_transmit_sec;
      const double sp_offline = off_base / std::max(1e-9, off_fast);
      sum_total += sp_total;
      sum_online += sp_online;
      sum_offline += sp_offline;
      ++count;
      std::printf("%-10s %-10s %8.2fx %8.2fx %8.2fx\n",
                  data::to_string(dataset).c_str(),
                  ml::to_string(model).c_str(), sp_total, sp_online,
                  sp_offline);
    }
  }
  const double avg_total = sum_total / count;
  const double avg_online = sum_online / count;
  const double avg_offline = sum_offline / count;
  std::printf("\naverages: overall %.2fx (paper 33.8x), online %.2fx (paper "
              "64.5x), offline %.2fx (paper 1.3x)\n",
              avg_total, avg_online, avg_offline);
  std::printf("shape check: online %s offline speedup (paper: online >> "
              "offline; our adaptive dealer also accelerates the offline "
              "phase, so the gap narrows on this substrate)\n",
              avg_online > avg_offline ? ">" : "<=");
  return 0;
}
