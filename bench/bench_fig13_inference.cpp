// Fig. 13: secure-inference speedups of ParSecureML over SecureML (forward
// pass only). Paper: 31.7x average; linear regression and SVM share the
// w^T x + b form, so the paper reports linear only.
#include "bench_util.hpp"

using namespace psml;
using namespace psml::bench;

int main() {
  header("Fig. 13", "inference (forward-pass) speedups vs SecureML");
  std::printf("%-10s %-10s %9s %9s\n", "dataset", "model", "online",
              "overall");

  const std::vector<ml::ModelKind> kinds = {
      ml::ModelKind::kCnn, ml::ModelKind::kMlp, ml::ModelKind::kLinear,
      ml::ModelKind::kLogistic, ml::ModelKind::kRnn};

  double sum_online = 0;
  int count = 0;
  for (const auto dataset : all_datasets()) {
    for (const auto model : kinds) {
      if (!valid_combo(model, dataset)) continue;
      auto cfg = default_config(model, dataset, parsecureml::Mode::kSecureML);
      const auto base = parsecureml::run_inference(cfg);
      cfg.mode = parsecureml::Mode::kParSecureML;
      const auto fast = parsecureml::run_inference(cfg);
      const double sp_online = base.online_sec / fast.online_sec;
      const double sp_total = base.total_sec / fast.total_sec;
      sum_online += sp_online;
      ++count;
      std::printf("%-10s %-10s %8.2fx %8.2fx\n",
                  data::to_string(dataset).c_str(),
                  ml::to_string(model).c_str(), sp_online, sp_total);
    }
  }
  std::printf("\naverage online inference speedup: %.2fx (paper 31.7x)\n",
              sum_online / count);
  return 0;
}
