// Fig. 14: benefit of the CPU optimizations (thread-local MT19937 parallel
// RNG + cache-line-chunked parallel add/sub, Sec. 5.1). Paper: 10.71%
// average improvement; larger images benefit more.
#include "bench_util.hpp"

using namespace psml;
using namespace psml::bench;

int main() {
  header("Fig. 14", "CPU-parallelism optimization benefit");
  std::printf("%-10s %-10s %12s %12s %10s\n", "dataset", "model",
              "no-cpu-par(s)", "cpu-par(s)", "benefit");

  const std::vector<data::DatasetKind> datasets = {
      data::DatasetKind::kMnist, data::DatasetKind::kVggFace2,
      data::DatasetKind::kCifar10};
  const std::vector<ml::ModelKind> models = {
      ml::ModelKind::kMlp, ml::ModelKind::kLinear, ml::ModelKind::kLogistic};

  double sum = 0;
  int count = 0;
  for (const auto dataset : datasets) {
    for (const auto model : models) {
      auto cfg = default_config(model, dataset, parsecureml::Mode::kCustom);
      cfg.custom_opts = mpc::PartyOptions::parsecureml();
      cfg.custom_opts.cpu_parallel = false;
      const auto off = parsecureml::run_training(cfg);
      cfg.custom_opts.cpu_parallel = true;
      const auto on = parsecureml::run_training(cfg);
      const double benefit = (off.total_sec - on.total_sec) / off.total_sec;
      sum += benefit;
      ++count;
      std::printf("%-10s %-10s %12.3f %12.3f %9.1f%%\n",
                  data::to_string(dataset).c_str(),
                  ml::to_string(model).c_str(), off.total_sec, on.total_sec,
                  benefit * 100.0);
    }
  }
  std::printf("\naverage benefit: %.1f%% (paper 10.71%%; larger images gain "
              "more)\n",
              sum / count * 100.0);
  return 0;
}
