// Fig. 16: communication reduction from compressed transmission (delta-CSR
// on the E/F exchanges). Paper: 22.9% average reduction. Includes the
// threshold ablation from DESIGN.md §5.
#include "bench_util.hpp"

using namespace psml;
using namespace psml::bench;

int main() {
  header("Fig. 16", "inter-server communication reduction from compression");
  std::printf("%-10s %-10s %12s %12s %10s %10s\n", "dataset", "model",
              "plain(MiB)", "comp(MiB)", "saved", "csr-msgs");

  double sum = 0;
  int count = 0;
  for (const auto dataset :
       {data::DatasetKind::kMnist, data::DatasetKind::kSynthetic}) {
    for (const auto model :
         {ml::ModelKind::kMlp, ml::ModelKind::kLogistic,
          ml::ModelKind::kLinear, ml::ModelKind::kSvm}) {
      auto cfg = default_config(model, dataset, parsecureml::Mode::kCustom);
      cfg.epochs = 4;  // deltas need epochs to pay off
      cfg.custom_opts = mpc::PartyOptions::parsecureml();
      cfg.custom_opts.use_gpu = false;  // comms-focused run
      cfg.custom_opts.adaptive = false;
      cfg.custom_opts.use_compression = false;
      const auto off = parsecureml::run_training(cfg);
      cfg.custom_opts.use_compression = true;
      const auto on = parsecureml::run_training(cfg);

      const double mb_off =
          static_cast<double>(off.server_to_server_bytes) / (1 << 20);
      const double mb_on =
          static_cast<double>(on.server_to_server_bytes) / (1 << 20);
      const double saved = (mb_off - mb_on) / mb_off;
      sum += saved;
      ++count;
      std::printf("%-10s %-10s %12.2f %12.2f %9.1f%% %10llu\n",
                  data::to_string(dataset).c_str(),
                  ml::to_string(model).c_str(), mb_off, mb_on, saved * 100.0,
                  static_cast<unsigned long long>(
                      on.compression.compressed_messages));
    }
  }
  std::printf("\naverage communication saved: %.1f%% (paper 22.9%%)\n",
              sum / count * 100.0);

  // Threshold ablation: how much of the traffic compresses as the sparsity
  // threshold moves (75% is the paper default).
  std::printf("\n-- sparsity threshold ablation (MLP/MNIST) --\n");
  std::printf("%-10s %12s %12s\n", "threshold", "comp(MiB)", "csr-msgs");
  for (const double th : {0.25, 0.5, 0.75, 0.9, 0.99}) {
    auto cfg = default_config(ml::ModelKind::kMlp, data::DatasetKind::kMnist,
                              parsecureml::Mode::kCustom);
    cfg.epochs = 4;
    cfg.custom_opts = mpc::PartyOptions::parsecureml();
    cfg.custom_opts.use_gpu = false;
    cfg.custom_opts.adaptive = false;
    cfg.custom_opts.compression_threshold = th;
    const auto r = parsecureml::run_training(cfg);
    std::printf("%-10.2f %12.2f %12llu\n", th,
                static_cast<double>(r.server_to_server_bytes) / (1 << 20),
                static_cast<unsigned long long>(
                    r.compression.compressed_messages));
  }
  return 0;
}
