// Fig. 15: benefit of the Tensor-Core GEMM path (fp16 multiply, fp32
// accumulate; Sec. 5.2). Paper: 3.11% average; programs dominated by large
// GEMMs benefit the most.
#include "bench_util.hpp"
#include "common/timer.hpp"
#include "rng/rng.hpp"
#include "sgpu/ops.hpp"

using namespace psml;
using namespace psml::bench;

int main() {
  header("Fig. 15", "Tensor-Core GEMM path benefit");
  std::printf("hardware F16C conversion available: %s\n\n",
              sgpu::tensor_core_hw_f16c() ? "yes" : "no (scalar fallback)");

  // Kernel-level: where the mechanism lives. Large GEMMs gain from the
  // halved memory traffic of fp16 operands; small GEMMs see conversion
  // overhead — the same regime split the paper reports.
  std::printf("-- kernel level (n x n GEMM, device) --\n");
  std::printf("%-8s %12s %12s %10s\n", "n", "fp32(s)", "tc(s)", "benefit");
  auto& dev = sgpu::Device::global();
  for (const std::size_t n : {128u, 256u, 512u, 1024u}) {
    MatrixF a(n, n), b(n, n);
    rng::fill_uniform_par(a, -1.0f, 1.0f, 1);
    rng::fill_uniform_par(b, -1.0f, 1.0f, 2);
    auto best = [&](bool tc) {
      double best_t = 1e100;
      for (int i = 0; i < 3; ++i) {
        Timer t;
        (void)sgpu::device_matmul(dev, a, b, tc);
        best_t = std::min(best_t, t.seconds());
      }
      return best_t;
    };
    const double fp32 = best(false);
    const double tc = best(true);
    std::printf("%-8zu %12.5f %12.5f %9.1f%%\n", n, fp32, tc,
                (fp32 - tc) / fp32 * 100.0);
  }

  // End-to-end: full secure training with/without the TC path.
  std::printf("\n-- end to end (secure training) --\n");
  std::printf("%-10s %-10s %12s %12s %10s\n", "dataset", "model", "fp32(s)",
              "tc(s)", "benefit");
  double sum = 0;
  int count = 0;
  for (const auto model : {ml::ModelKind::kMlp, ml::ModelKind::kLinear}) {
    for (const auto dataset :
         {data::DatasetKind::kNist, data::DatasetKind::kSynthetic}) {
      auto cfg = default_config(model, dataset, parsecureml::Mode::kCustom);
      cfg.samples = scaled(256);  // big enough that GEMMs pass the TC gate
      cfg.batch = cfg.samples;
      cfg.custom_opts = mpc::PartyOptions::parsecureml();
      cfg.custom_opts.adaptive = false;  // keep every GEMM on the device
      auto best_of = [&](bool tc_on) {
        cfg.custom_opts.use_tensor_core = tc_on;
        double best = 1e100;
        for (int i = 0; i < 3; ++i) {
          best = std::min(best, parsecureml::run_training(cfg).total_sec);
        }
        return best;
      };
      const double fp32 = best_of(false);
      const double tc = best_of(true);
      const double benefit = (fp32 - tc) / fp32;
      sum += benefit;
      ++count;
      std::printf("%-10s %-10s %12.3f %12.3f %9.1f%%\n",
                  data::to_string(dataset).c_str(),
                  ml::to_string(model).c_str(), fp32, tc, benefit * 100.0);
    }
  }
  std::printf("\naverage end-to-end benefit: %.1f%% (paper 3.11%%)\n",
              sum / count * 100.0);
  return 0;
}
