// Microbenchmarks (google-benchmark): GEMM kernel tiers, Tensor-Core path,
// RNG engines, CSR codec, channel throughput.
#include <benchmark/benchmark.h>

#include "net/local_channel.hpp"
#include "net/serialize.hpp"
#include "rng/philox.hpp"
#include "rng/rng.hpp"
#include "sgpu/ops.hpp"
#include "sparse/csr.hpp"
#include "tensor/gemm.hpp"
#include "tensor/im2col.hpp"
#include "tensor/ops.hpp"

namespace {

using namespace psml;

MatrixF rand_mat(std::size_t r, std::size_t c, std::uint64_t seed) {
  MatrixF m(r, c);
  rng::fill_uniform_par(m, -1.0f, 1.0f, seed);
  return m;
}

void BM_GemmNaive(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const MatrixF a = rand_mat(n, n, 1), b = rand_mat(n, n, 2);
  MatrixF c(n, n);
  for (auto _ : state) {
    tensor::gemm_naive(1.0f, a, tensor::Trans::kNo, b, tensor::Trans::kNo,
                       0.0f, c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_GemmNaive)->Arg(64)->Arg(128)->Arg(256);

void BM_GemmBlocked(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const MatrixF a = rand_mat(n, n, 1), b = rand_mat(n, n, 2);
  MatrixF c(n, n);
  for (auto _ : state) {
    tensor::gemm_blocked(1.0f, a, tensor::Trans::kNo, b, tensor::Trans::kNo,
                         0.0f, c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_GemmBlocked)->Arg(64)->Arg(128)->Arg(256)->Arg(512);

void BM_GemmParallel(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const MatrixF a = rand_mat(n, n, 1), b = rand_mat(n, n, 2);
  MatrixF c(n, n);
  for (auto _ : state) {
    tensor::gemm_parallel(1.0f, a, tensor::Trans::kNo, b, tensor::Trans::kNo,
                          0.0f, c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_GemmParallel)->Arg(128)->Arg(256)->Arg(512);

void BM_DeviceGemm(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const MatrixF a = rand_mat(n, n, 1), b = rand_mat(n, n, 2);
  for (auto _ : state) {
    auto c = sgpu::device_matmul(a, b, state.range(1) != 0);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_DeviceGemm)
    ->Args({128, 0})
    ->Args({128, 1})
    ->Args({512, 0})
    ->Args({512, 1});

void BM_RngMt19937Serial(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  MatrixF m(n, n);
  for (auto _ : state) {
    rng::fill_uniform(m, -1.0f, 1.0f);
    benchmark::DoNotOptimize(m.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n);
}
BENCHMARK(BM_RngMt19937Serial)->Arg(256)->Arg(1024);

void BM_RngMt19937Parallel(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  MatrixF m(n, n);
  for (auto _ : state) {
    rng::fill_uniform_par(m, -1.0f, 1.0f, 42);
    benchmark::DoNotOptimize(m.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n);
}
BENCHMARK(BM_RngMt19937Parallel)->Arg(256)->Arg(1024);

void BM_RngPhilox(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  MatrixF m(n, n);
  for (auto _ : state) {
    rng::philox_fill_uniform_par(m, -1.0f, 1.0f, 42);
    benchmark::DoNotOptimize(m.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n);
}
BENCHMARK(BM_RngPhilox)->Arg(256)->Arg(1024);

void BM_CsrEncode(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const double density = static_cast<double>(state.range(1)) / 100.0;
  MatrixF m = rand_mat(n, n, 3);
  MatrixF mask(n, n);
  rng::fill_uniform_par(mask, 0.0f, 1.0f, 4);
  for (std::size_t i = 0; i < m.size(); ++i) {
    if (mask.data()[i] > density) m.data()[i] = 0.0f;
  }
  for (auto _ : state) {
    auto csr = sparse::Csr::from_dense(m);
    auto bytes = csr.serialize();
    benchmark::DoNotOptimize(bytes.data());
  }
  state.SetBytesProcessed(state.iterations() * m.bytes());
}
BENCHMARK(BM_CsrEncode)->Args({512, 5})->Args({512, 25})->Args({512, 75});

void BM_LocalChannelThroughput(benchmark::State& state) {
  const auto bytes = static_cast<std::size_t>(state.range(0));
  auto pair = net::LocalChannel::make_pair();
  std::vector<std::uint8_t> payload(bytes, 7);
  for (auto _ : state) {
    pair.a->send(1, payload);
    auto msg = pair.b->recv(1);
    benchmark::DoNotOptimize(msg.payload.data());
  }
  state.SetBytesProcessed(state.iterations() * bytes);
}
BENCHMARK(BM_LocalChannelThroughput)->Arg(1 << 10)->Arg(1 << 20);

void BM_Im2col(benchmark::State& state) {
  const auto hw = static_cast<std::size_t>(state.range(0));
  tensor::ConvShape s;
  s.in_h = hw;
  s.in_w = hw;
  s.kernel = 5;
  s.out_c = 8;
  const MatrixF x = rand_mat(4, hw * hw, 5);
  for (auto _ : state) {
    auto p = tensor::im2col(x, s);
    benchmark::DoNotOptimize(p.data());
  }
}
BENCHMARK(BM_Im2col)->Arg(28)->Arg(64);

}  // namespace
