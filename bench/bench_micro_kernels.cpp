// Microbenchmarks (google-benchmark): GEMM kernel tiers, Tensor-Core path,
// RNG engines, CSR codec, channel throughput.
//
// Besides the google-benchmark suites, this binary owns the machine-readable
// kernel baseline:
//
//   bench_micro_kernels --emit-kernel-baseline[=PATH] [--smoke]
//
// times the seed (pre-packing) f32/u64 kernels — preserved verbatim below —
// against the packed engine across paper-relevant shapes and writes a JSON
// report (default BENCH_kernels.json). --smoke shrinks shapes/reps so CI can
// run it per-push and upload the artifact; the full run is the perf gate for
// kernel changes (packed f32 >= 3x seed blocked at 512^3 single-threaded,
// packed u64 >= 2x the seed ring kernel).
#include <benchmark/benchmark.h>

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/timer.hpp"
#include "mpc/ring.hpp"
#include "net/local_channel.hpp"
#include "net/serialize.hpp"
#include "profile/adaptive.hpp"
#include "rng/philox.hpp"
#include "rng/rng.hpp"
#include "sgpu/ops.hpp"
#include "sparse/csr.hpp"
#include "tensor/gemm.hpp"
#include "tensor/im2col.hpp"
#include "tensor/ops.hpp"

namespace {

using namespace psml;

MatrixF rand_mat(std::size_t r, std::size_t c, std::uint64_t seed) {
  MatrixF m(r, c);
  rng::fill_uniform_par(m, -1.0f, 1.0f, seed);
  return m;
}

// ---- seed kernels (pre-PR4 state), kept as the baseline under test --------
namespace seed {

// The seed gemm_blocked inner kernel: cache-blocked ikj with a per-element
// zero skip, no packing, no explicit SIMD.
void gemm_rows(float alpha, const float* a, const float* b, float beta,
               float* c, std::size_t r0, std::size_t r1, std::size_t n,
               std::size_t k) {
  constexpr std::size_t kKB = 256;
  constexpr std::size_t kJB = 512;
  for (std::size_t i = r0; i < r1; ++i) {
    float* ci = c + i * n;
    if (beta == 0.0f) {
      std::fill(ci, ci + n, 0.0f);
    } else if (beta != 1.0f) {
      for (std::size_t j = 0; j < n; ++j) ci[j] *= beta;
    }
  }
  for (std::size_t kb = 0; kb < k; kb += kKB) {
    const std::size_t kmax = std::min(kb + kKB, k);
    for (std::size_t jb = 0; jb < n; jb += kJB) {
      const std::size_t jmax = std::min(jb + kJB, n);
      for (std::size_t i = r0; i < r1; ++i) {
        const float* ai = a + i * k;
        float* ci = c + i * n;
        for (std::size_t kk = kb; kk < kmax; ++kk) {
          const float av = alpha * ai[kk];
          if (av == 0.0f) continue;
          const float* bk = b + kk * n;
          for (std::size_t j = jb; j < jmax; ++j) {
            ci[j] += av * bk[j];
          }
        }
      }
    }
  }
}

void gemm_blocked(const MatrixF& a, const MatrixF& b, MatrixF& c) {
  gemm_rows(1.0f, a.data(), b.data(), 0.0f, c.data(), 0, a.rows(), b.cols(),
            a.cols());
}

// The seed ring_matmul: blocked ikj with the zero skip.
MatrixU64 ring_matmul(const MatrixU64& a, const MatrixU64& b) {
  const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
  MatrixU64 c(m, n, 0);
  constexpr std::size_t kKB = 128;
  for (std::size_t kb = 0; kb < k; kb += kKB) {
    const std::size_t kmax = std::min(kb + kKB, k);
    for (std::size_t i = 0; i < m; ++i) {
      const std::uint64_t* ai = a.data() + i * k;
      std::uint64_t* ci = c.data() + i * n;
      for (std::size_t kk = kb; kk < kmax; ++kk) {
        const std::uint64_t av = ai[kk];
        if (av == 0) continue;
        const std::uint64_t* bk = b.data() + kk * n;
        for (std::size_t j = 0; j < n; ++j) ci[j] += av * bk[j];
      }
    }
  }
  return c;
}

}  // namespace seed

// ---- JSON baseline emitter -------------------------------------------------

struct KernelShape {
  std::size_t m, k, n;
};

template <typename F>
double best_of(int reps, F&& fn) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    Timer t;
    fn();
    best = std::min(best, t.seconds());
  }
  return best;
}

double gflops(const KernelShape& s, double sec) {
  return 2.0 * static_cast<double>(s.m) * static_cast<double>(s.k) *
         static_cast<double>(s.n) / sec / 1e9;
}

int emit_kernel_baseline(const std::string& path, bool smoke) {
  const std::vector<KernelShape> f32_shapes =
      smoke ? std::vector<KernelShape>{{64, 64, 64}, {128, 128, 128}}
            : std::vector<KernelShape>{{64, 64, 64},
                                       {128, 128, 128},
                                       {256, 256, 256},
                                       {512, 512, 512},
                                       {256, 784, 128}};  // MNIST MLP layer
  const std::vector<KernelShape> u64_shapes =
      smoke ? std::vector<KernelShape>{{64, 64, 64}, {128, 128, 128}}
            : std::vector<KernelShape>{{128, 128, 128},
                                       {256, 256, 256},
                                       {512, 512, 512}};
  const int reps = smoke ? 2 : 3;

  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"schema\": \"psml-kernel-baseline-v1\",\n");
  std::fprintf(out, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(out, "  \"kernel\": \"%s\",\n", tensor::gemm_kernel_name());
  std::fprintf(out, "  \"simd_available\": %s,\n",
               tensor::gemm_simd_available() ? "true" : "false");
  std::fprintf(out, "  \"f32\": [\n");

  for (std::size_t si = 0; si < f32_shapes.size(); ++si) {
    const KernelShape& s = f32_shapes[si];
    const MatrixF a = rand_mat(s.m, s.k, 1);
    const MatrixF b = rand_mat(s.k, s.n, 2);
    MatrixF c(s.m, s.n);

    const double naive_s = best_of(reps, [&] {
      tensor::gemm_naive(1.0f, a, tensor::Trans::kNo, b, tensor::Trans::kNo,
                         0.0f, c);
    });
    const double seed_s = best_of(reps, [&] { seed::gemm_blocked(a, b, c); });
    // Packed engine, forced scalar codegen (single-threaded).
    tensor::set_gemm_isa(tensor::GemmIsa::kScalar);
    const double packed_scalar_s = best_of(reps, [&] {
      tensor::gemm_blocked(1.0f, a, tensor::Trans::kNo, b, tensor::Trans::kNo,
                           0.0f, c);
    });
    // Packed engine, auto ISA (AVX2/FMA where available), single-threaded
    // and thread-pool-tiled.
    tensor::set_gemm_isa(tensor::GemmIsa::kAuto);
    const double packed_st_s = best_of(reps, [&] {
      tensor::gemm_blocked(1.0f, a, tensor::Trans::kNo, b, tensor::Trans::kNo,
                           0.0f, c);
    });
    const double packed_mt_s = best_of(reps, [&] {
      tensor::gemm_parallel(1.0f, a, tensor::Trans::kNo, b, tensor::Trans::kNo,
                            0.0f, c);
    });

    std::fprintf(
        out,
        "    {\"m\": %zu, \"k\": %zu, \"n\": %zu,\n"
        "     \"naive_s\": %.6e, \"seed_blocked_s\": %.6e,\n"
        "     \"packed_scalar_st_s\": %.6e, \"packed_st_s\": %.6e,\n"
        "     \"packed_mt_s\": %.6e,\n"
        "     \"packed_st_gflops\": %.3f,\n"
        "     \"speedup_packed_vs_seed_blocked\": %.3f,\n"
        "     \"speedup_packed_vs_naive\": %.3f}%s\n",
        s.m, s.k, s.n, naive_s, seed_s, packed_scalar_s, packed_st_s,
        packed_mt_s, gflops(s, packed_st_s), seed_s / packed_st_s,
        naive_s / packed_st_s, si + 1 < f32_shapes.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out, "  \"u64\": [\n");

  for (std::size_t si = 0; si < u64_shapes.size(); ++si) {
    const KernelShape& s = u64_shapes[si];
    MatrixU64 a(s.m, s.k), b(s.k, s.n);
    rng::fill_uniform_u64_par(a, 11);
    rng::fill_uniform_u64_par(b, 12);

    const double seed_s = best_of(reps, [&] {
      auto c = seed::ring_matmul(a, b);
      benchmark::DoNotOptimize(c.data());
    });
    const double packed_s = best_of(reps, [&] {
      auto c = mpc::ring_matmul(a, b);
      benchmark::DoNotOptimize(c.data());
    });
    std::fprintf(out,
                 "    {\"m\": %zu, \"k\": %zu, \"n\": %zu,\n"
                 "     \"seed_ring_s\": %.6e, \"packed_ring_s\": %.6e,\n"
                 "     \"speedup_packed_vs_seed\": %.3f}%s\n",
                 s.m, s.k, s.n, seed_s, packed_s, seed_s / packed_s,
                 si + 1 < u64_shapes.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);

  // Kernel selection flipped above — refit the CPU/GPU crossover model so a
  // process embedding this (or a copy-pasted flow) ends with honest
  // decisions. This is the recalibration hook from profile::AdaptiveDispatch.
  profile::AdaptiveDispatch::global().recalibrate(sgpu::Device::global());

  std::printf("wrote %s (kernel: %s)\n", path.c_str(),
              tensor::gemm_kernel_name());
  return 0;
}

// ---- google-benchmark suites ----------------------------------------------

void BM_GemmNaive(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const MatrixF a = rand_mat(n, n, 1), b = rand_mat(n, n, 2);
  MatrixF c(n, n);
  for (auto _ : state) {
    tensor::gemm_naive(1.0f, a, tensor::Trans::kNo, b, tensor::Trans::kNo,
                       0.0f, c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_GemmNaive)->Arg(64)->Arg(128)->Arg(256);

void BM_GemmSeedBlocked(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const MatrixF a = rand_mat(n, n, 1), b = rand_mat(n, n, 2);
  MatrixF c(n, n);
  for (auto _ : state) {
    seed::gemm_blocked(a, b, c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_GemmSeedBlocked)->Arg(64)->Arg(128)->Arg(256)->Arg(512);

void BM_GemmBlocked(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const MatrixF a = rand_mat(n, n, 1), b = rand_mat(n, n, 2);
  MatrixF c(n, n);
  for (auto _ : state) {
    tensor::gemm_blocked(1.0f, a, tensor::Trans::kNo, b, tensor::Trans::kNo,
                         0.0f, c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_GemmBlocked)->Arg(64)->Arg(128)->Arg(256)->Arg(512);

void BM_GemmParallel(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const MatrixF a = rand_mat(n, n, 1), b = rand_mat(n, n, 2);
  MatrixF c(n, n);
  for (auto _ : state) {
    tensor::gemm_parallel(1.0f, a, tensor::Trans::kNo, b, tensor::Trans::kNo,
                          0.0f, c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_GemmParallel)->Arg(128)->Arg(256)->Arg(512);

void BM_RingMatmulSeed(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  MatrixU64 a(n, n), b(n, n);
  rng::fill_uniform_u64_par(a, 11);
  rng::fill_uniform_u64_par(b, 12);
  for (auto _ : state) {
    auto c = seed::ring_matmul(a, b);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_RingMatmulSeed)->Arg(128)->Arg(256);

void BM_RingMatmulPacked(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  MatrixU64 a(n, n), b(n, n);
  rng::fill_uniform_u64_par(a, 11);
  rng::fill_uniform_u64_par(b, 12);
  for (auto _ : state) {
    auto c = mpc::ring_matmul(a, b);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_RingMatmulPacked)->Arg(128)->Arg(256);

void BM_DeviceGemm(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const MatrixF a = rand_mat(n, n, 1), b = rand_mat(n, n, 2);
  for (auto _ : state) {
    auto c = sgpu::device_matmul(a, b, state.range(1) != 0);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_DeviceGemm)
    ->Args({128, 0})
    ->Args({128, 1})
    ->Args({512, 0})
    ->Args({512, 1});

void BM_RngMt19937Serial(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  MatrixF m(n, n);
  for (auto _ : state) {
    rng::fill_uniform(m, -1.0f, 1.0f);
    benchmark::DoNotOptimize(m.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n);
}
BENCHMARK(BM_RngMt19937Serial)->Arg(256)->Arg(1024);

void BM_RngMt19937Parallel(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  MatrixF m(n, n);
  for (auto _ : state) {
    rng::fill_uniform_par(m, -1.0f, 1.0f, 42);
    benchmark::DoNotOptimize(m.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n);
}
BENCHMARK(BM_RngMt19937Parallel)->Arg(256)->Arg(1024);

void BM_RngPhilox(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  MatrixF m(n, n);
  for (auto _ : state) {
    rng::philox_fill_uniform_par(m, -1.0f, 1.0f, 42);
    benchmark::DoNotOptimize(m.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n);
}
BENCHMARK(BM_RngPhilox)->Arg(256)->Arg(1024);

void BM_CsrEncode(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const double density = static_cast<double>(state.range(1)) / 100.0;
  MatrixF m = rand_mat(n, n, 3);
  MatrixF mask(n, n);
  rng::fill_uniform_par(mask, 0.0f, 1.0f, 4);
  for (std::size_t i = 0; i < m.size(); ++i) {
    if (mask.data()[i] > density) m.data()[i] = 0.0f;
  }
  for (auto _ : state) {
    auto csr = sparse::Csr::from_dense(m);
    auto bytes = csr.serialize();
    benchmark::DoNotOptimize(bytes.data());
  }
  state.SetBytesProcessed(state.iterations() * m.bytes());
}
BENCHMARK(BM_CsrEncode)->Args({512, 5})->Args({512, 25})->Args({512, 75});

void BM_LocalChannelThroughput(benchmark::State& state) {
  const auto bytes = static_cast<std::size_t>(state.range(0));
  auto pair = net::LocalChannel::make_pair();
  std::vector<std::uint8_t> payload(bytes, 7);
  for (auto _ : state) {
    pair.a->send(1, payload);
    auto msg = pair.b->recv(1);
    benchmark::DoNotOptimize(msg.payload.data());
  }
  state.SetBytesProcessed(state.iterations() * bytes);
}
BENCHMARK(BM_LocalChannelThroughput)->Arg(1 << 10)->Arg(1 << 20);

void BM_Im2col(benchmark::State& state) {
  const auto hw = static_cast<std::size_t>(state.range(0));
  tensor::ConvShape s;
  s.in_h = hw;
  s.in_w = hw;
  s.kernel = 5;
  s.out_c = 8;
  const MatrixF x = rand_mat(4, hw * hw, 5);
  for (auto _ : state) {
    auto p = tensor::im2col(x, s);
    benchmark::DoNotOptimize(p.data());
  }
}
BENCHMARK(BM_Im2col)->Arg(28)->Arg(64);

}  // namespace

// Custom main so --emit-kernel-baseline can bypass google-benchmark.
int main(int argc, char** argv) {
  std::string baseline_path;
  bool emit = false, smoke = false;
  std::vector<char*> passthrough;
  passthrough.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--emit-kernel-baseline") == 0) {
      emit = true;
      baseline_path = "BENCH_kernels.json";
    } else if (std::strncmp(arg, "--emit-kernel-baseline=", 23) == 0) {
      emit = true;
      baseline_path = arg + 23;
    } else if (std::strcmp(arg, "--smoke") == 0) {
      smoke = true;
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  if (emit) return emit_kernel_baseline(baseline_path, smoke);

  int pass_argc = static_cast<int>(passthrough.size());
  benchmark::Initialize(&pass_argc, passthrough.data());
  if (benchmark::ReportUnrecognizedArguments(pass_argc, passthrough.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
