// Fig. 5 mechanism bench: the transfer/compute pipeline inside Eq. 8.
// The overlap only matters when transfers are slow relative to compute, so
// this sweeps the simulated PCIe bandwidth: at V100-era bandwidths (~12
// GB/s) with big matrices the pipeline hides most of the H2D cost; with
// unthrottled memcpy (this machine's default) it is nearly free but also
// nearly unnecessary — which is exactly why Fig. 5 exists for real PCIe.
#include <thread>

#include "bench_util.hpp"
#include "common/timer.hpp"
#include "mpc/secure_matmul.hpp"
#include "mpc/share.hpp"
#include "net/local_channel.hpp"
#include "rng/rng.hpp"

using namespace psml;
using namespace psml::bench;

namespace {

double run_pipeline_case(sgpu::Device& dev, bool pipeline, std::size_t n,
                         int reps) {
  mpc::PartyOptions opts = mpc::PartyOptions::parsecureml();
  opts.adaptive = false;         // always on the device
  opts.use_tensor_core = false;  // isolate the transfer/compute overlap
  opts.use_pipeline = pipeline;
  opts.use_compression = false;

  mpc::TripletDealer dealer(&dev, {true, false, 3141});
  auto [t0, t1] = dealer.make_matmul(n, n, n);
  MatrixF a(n, n), b(n, n);
  rng::fill_uniform_par(a, -1.0f, 1.0f, 1);
  rng::fill_uniform_par(b, -1.0f, 1.0f, 2);
  const auto sa = mpc::share_float(a, 3);
  const auto sb = mpc::share_float(b, 4);

  auto chans = net::LocalChannel::make_pair();
  mpc::PartyContext ctx0(0, chans.a, &dev, opts);
  mpc::PartyContext ctx1(1, chans.b, &dev, opts);

  double best = 1e100;
  for (int r = 0; r < reps; ++r) {
    Timer t;
    MatrixF c1;
    std::thread peer(
        [&] { c1 = mpc::secure_matmul(ctx1, sa.s1, sb.s1, t1); });
    MatrixF c0 = mpc::secure_matmul(ctx0, sa.s0, sb.s0, t0);
    peer.join();
    best = std::min(best, t.seconds());
  }
  return best;
}

}  // namespace

int main() {
  header("Fig. 5", "transfer/compute pipeline benefit vs PCIe bandwidth");
  std::printf("%-12s %-6s %14s %14s %10s\n", "pcie(GB/s)", "n",
              "no-pipe(s)", "pipelined(s)", "benefit");

  const std::size_t n = scaled(512);
  for (const double gbps : {1.0, 4.0, 12.0, 0.0 /* unthrottled */}) {
    sgpu::Device::Config cfg;
    cfg.compute_threads = 0;
    cfg.pcie_gbps = gbps;
    cfg.memory_bytes = std::size_t{2} << 30;
    sgpu::Device dev(cfg);
    const double no_pipe = run_pipeline_case(dev, false, n, 5);
    const double pipe = run_pipeline_case(dev, true, n, 5);
    char label[32];
    if (gbps == 0.0) {
      std::snprintf(label, sizeof(label), "memcpy");
    } else {
      std::snprintf(label, sizeof(label), "%.0f", gbps);
    }
    std::printf("%-12s %-6zu %14.4f %14.4f %9.1f%%\n", label, n, no_pipe,
                pipe, (no_pipe - pipe) / no_pipe * 100.0);
  }
  std::printf("\npaper shape: the slower the interconnect relative to "
              "compute, the more the Fig. 5 overlap saves (at high "
              "bandwidth the benefit shrinks toward scheduling noise — on "
              "2 cores the extra copy thread can even cost a little)\n");
  return 0;
}
