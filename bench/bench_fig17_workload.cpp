// Fig. 17: influence of workload size — ParSecureML-vs-SecureML speedup as
// the SYNTHETIC workload grows. Paper shape: speedup increases with workload
// size; small workloads belong on the CPU (the adaptive dispatcher's
// crossover, Sec. 7.7).
#include "bench_util.hpp"
#include "profile/adaptive.hpp"

using namespace psml;
using namespace psml::bench;

int main() {
  header("Fig. 17", "speedup vs workload size (SYNTHETIC)");
  std::printf("%-12s %12s %12s %10s\n", "samples", "secureml(s)",
              "parsecure(s)", "speedup");

  for (const std::size_t samples : {8u, 16u, 32u, 64u, 128u, 256u}) {
    auto cfg = default_config(ml::ModelKind::kMlp,
                              data::DatasetKind::kSynthetic,
                              parsecureml::Mode::kSecureML);
    cfg.samples = scaled(samples);
    cfg.batch = cfg.samples;
    const auto base = parsecureml::run_training(cfg);
    cfg.mode = parsecureml::Mode::kParSecureML;
    const auto fast = parsecureml::run_training(cfg);
    std::printf("%-12zu %12.3f %12.3f %9.2fx\n", cfg.samples, base.total_sec,
                fast.total_sec, base.total_sec / fast.total_sec);
  }

  // The adaptive dispatcher's view of the same phenomenon: estimated CPU vs
  // GPU cost per GEMM size, and where the crossover falls.
  std::printf("\n-- adaptive dispatcher cost model (calibrated) --\n");
  auto& dispatch = profile::AdaptiveDispatch::global();
  std::printf("%-8s %14s %14s %8s\n", "n", "est-cpu(s)", "est-gpu(s)",
              "choice");
  for (std::size_t n = 16; n <= 2048; n *= 2) {
    const auto d = dispatch.decide(n, n, n);
    std::printf("%-8zu %14.6f %14.6f %8s\n", n, d.est_cpu_sec, d.est_gpu_sec,
                d.use_gpu ? "GPU" : "CPU");
  }
  std::printf("\npaper shape: performance improvement grows with workload "
              "size; small workloads stay on the CPU\n");
  return 0;
}
