// Fig. 2: time breakdown of two-party computation (MLP, MNIST, one batch):
// offline = {generate, transmit}, online = {compute1, communicate, compute2}.
// Paper (60k x 28x28 in one batch): generate 62.68s, transmit 0.21s,
// compute1 0.19s, communicate 0.24s, compute2 95.52s — compute2 dominates
// online; generate dominates offline.
#include "bench_util.hpp"

using namespace psml;
using namespace psml::bench;

int main() {
  header("Fig. 2", "two-party computation time breakdown (MLP on MNIST)");
  auto cfg = default_config(ml::ModelKind::kMlp, data::DatasetKind::kMnist,
                            parsecureml::Mode::kSecureML);
  cfg.samples = scaled(256);  // one big batch, like the paper's setup
  cfg.batch = cfg.samples;
  const auto r = parsecureml::run_training(cfg);

  auto phase = [&](const char* name) {
    auto it = r.online_phases.find(name);
    return it == r.online_phases.end() ? 0.0 : it->second;
  };
  // Profiler aggregates both servers; halve for per-server wall estimate.
  const double c1 = phase("online.compute1") / 2;
  const double comm = phase("online.communicate") / 2;
  const double c2 = phase("online.compute2") / 2;

  std::printf("%-22s %10s   %s\n", "phase", "time(s)", "paper shape");
  std::printf("%-22s %10.4f   dominates offline (62.68s)\n",
              "offline.generate", r.offline_generate_sec);
  std::printf("%-22s %10.4f   small (0.21s)\n", "offline.transmit",
              r.offline_transmit_sec);
  std::printf("%-22s %10.4f   small (0.19s)\n", "online.compute1", c1);
  std::printf("%-22s %10.4f   small (0.24s)\n", "online.communicate", comm);
  std::printf("%-22s %10.4f   dominates online (95.52s)\n",
              "online.compute2", c2);

  const bool c2_dominates = c2 > 3 * (c1 + comm);
  const bool gen_dominates = r.offline_generate_sec > 2 * r.offline_transmit_sec;
  std::printf("\nshape check: compute2 dominates online: %s | generate "
              "dominates offline: %s\n",
              c2_dominates ? "yes (matches paper)" : "NO",
              gen_dominates ? "yes (matches paper)" : "NO");
  return 0;
}
