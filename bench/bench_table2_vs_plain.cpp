// Table 2: slowdown of SecureML and ParSecureML relative to *non-secure GPU*
// machine learning. Paper averages: SecureML 249.34x, ParSecureML 10.98x —
// ParSecureML closes most of the security gap; CNN pays the most; MNIST
// (small images) pays the least.
#include "bench_util.hpp"

using namespace psml;
using namespace psml::bench;

int main() {
  header("Table 2", "slowdown vs non-secure GPU ML");
  std::printf("%-10s %-10s %10s %12s %14s\n", "dataset", "model", "gpu(s)",
              "secureml(x)", "parsecureml(x)");

  double sum_base = 0, sum_fast = 0;
  int count = 0;
  for (const auto dataset : all_datasets()) {
    for (const auto model : all_models()) {
      if (!valid_combo(model, dataset)) continue;
      auto cfg = default_config(model, dataset, parsecureml::Mode::kPlainGpu);
      const auto gpu = parsecureml::run_training(cfg);
      cfg.mode = parsecureml::Mode::kSecureML;
      const auto base = parsecureml::run_training(cfg);
      cfg.mode = parsecureml::Mode::kParSecureML;
      const auto fast = parsecureml::run_training(cfg);

      const double sl_base = base.total_sec / gpu.online_sec;
      const double sl_fast = fast.total_sec / gpu.online_sec;
      sum_base += sl_base;
      sum_fast += sl_fast;
      ++count;
      std::printf("%-10s %-10s %10.3f %11.1fx %13.1fx\n",
                  data::to_string(dataset).c_str(),
                  ml::to_string(model).c_str(), gpu.online_sec, sl_base,
                  sl_fast);
    }
  }
  std::printf("\naverages: SecureML %.1fx (paper 249.3x), ParSecureML %.1fx "
              "(paper 11.0x)\n",
              sum_base / count, sum_fast / count);
  std::printf("shape check: ParSecureML slowdown << SecureML slowdown\n");
  return 0;
}
