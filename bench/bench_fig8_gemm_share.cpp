// Fig. 8: proportion of device time spent in GEMM vs matrix dimension.
// Paper shape: the GEMM share grows with n (> 50% by n = 16384 on a V100);
// the remainder is H2D/D2H copies.
#include "bench_util.hpp"
#include "sgpu/ops.hpp"
#include "tensor/matrix.hpp"
#include "rng/rng.hpp"

using namespace psml;
using namespace psml::bench;

int main() {
  header("Fig. 8", "GEMM share of total device time vs matrix dimension");
  auto& dev = sgpu::Device::global();
  std::printf("%-8s %12s %12s %12s %10s\n", "n", "gemm(s)", "h2d(s)",
              "d2h(s)", "gemm-share");

  for (const std::size_t n : {64u, 128u, 256u, 512u, 1024u}) {
    MatrixF a(n, n), b(n, n);
    rng::fill_uniform_par(a, -1.0f, 1.0f, 1);
    rng::fill_uniform_par(b, -1.0f, 1.0f, 2);
    dev.trace().clear();
    (void)sgpu::device_matmul(dev, a, b);
    const auto summary = dev.trace().summary();
    const double gemm = summary.count("kernel:gemm")
                            ? summary.at("kernel:gemm").total_sec
                            : 0.0;
    const double h2d = summary.count("memcpy_h2d")
                           ? summary.at("memcpy_h2d").total_sec
                           : 0.0;
    const double d2h = summary.count("memcpy_d2h")
                           ? summary.at("memcpy_d2h").total_sec
                           : 0.0;
    const double share = gemm / std::max(1e-12, gemm + h2d + d2h);
    std::printf("%-8zu %12.6f %12.6f %12.6f %9.1f%%\n", n, gemm, h2d, d2h,
                share * 100.0);
  }
  std::printf("\npaper shape: GEMM share grows monotonically with n — the "
              "bigger the matrices, the more GEMM optimization (Tensor "
              "Cores) matters\n");
  return 0;
}
