// Protocol microbenchmarks (google-benchmark): secure matmul under each
// execution mode (the Eq. 6 vs Eq. 8 ablation, pipeline on/off, ring64 mode)
// and triplet generation.
#include <benchmark/benchmark.h>

#include <thread>

#include "mpc/activation.hpp"
#include "mpc/ring_protocol.hpp"
#include "mpc/secure_matmul.hpp"
#include "mpc/share.hpp"
#include "net/local_channel.hpp"
#include "rng/rng.hpp"

namespace {

using namespace psml;

MatrixF rand_mat(std::size_t r, std::size_t c, std::uint64_t seed) {
  MatrixF m(r, c);
  rng::fill_uniform_par(m, -1.0f, 1.0f, seed);
  return m;
}

// Runs one secure matmul between two fresh parties; returns via benchmark
// timing. Options configure the execution path being measured.
void bench_secure_matmul(benchmark::State& state, mpc::PartyOptions opts) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const MatrixF a = rand_mat(n, n, 1);
  const MatrixF b = rand_mat(n, n, 2);
  sgpu::Device* dev = opts.use_gpu ? &sgpu::Device::global() : nullptr;
  mpc::TripletDealer dealer(dev, {opts.use_gpu, false, 42});
  auto [t0, t1] = dealer.make_matmul(n, n, n);
  const auto sa = mpc::share_float(a, 3);
  const auto sb = mpc::share_float(b, 4);

  auto chans = net::LocalChannel::make_pair();
  mpc::PartyContext ctx0(0, chans.a, dev, opts);
  mpc::PartyContext ctx1(1, chans.b, dev, opts);

  for (auto _ : state) {
    MatrixF c1;
    std::thread peer(
        [&] { c1 = mpc::secure_matmul(ctx1, sa.s1, sb.s1, t1); });
    MatrixF c0 = mpc::secure_matmul(ctx0, sa.s0, sb.s0, t0);
    peer.join();
    benchmark::DoNotOptimize(c0.data());
    benchmark::DoNotOptimize(c1.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}

void BM_SecureMatmul_Baseline(benchmark::State& state) {
  bench_secure_matmul(state, mpc::PartyOptions::secureml_baseline());
}
BENCHMARK(BM_SecureMatmul_Baseline)->Arg(64)->Arg(128)->Arg(256);

void BM_SecureMatmul_Eq6Parallel(benchmark::State& state) {
  auto opts = mpc::PartyOptions::parsecureml();
  opts.use_gpu = false;
  opts.adaptive = false;
  opts.fuse_eq8 = false;
  bench_secure_matmul(state, opts);
}
BENCHMARK(BM_SecureMatmul_Eq6Parallel)->Arg(128)->Arg(256);

void BM_SecureMatmul_Eq8Cpu(benchmark::State& state) {
  auto opts = mpc::PartyOptions::parsecureml();
  opts.use_gpu = false;
  opts.adaptive = false;
  bench_secure_matmul(state, opts);
}
BENCHMARK(BM_SecureMatmul_Eq8Cpu)->Arg(128)->Arg(256);

void BM_SecureMatmul_GpuNoPipeline(benchmark::State& state) {
  auto opts = mpc::PartyOptions::parsecureml();
  opts.adaptive = false;
  opts.use_pipeline = false;
  bench_secure_matmul(state, opts);
}
BENCHMARK(BM_SecureMatmul_GpuNoPipeline)->Arg(128)->Arg(256)->Arg(512);

void BM_SecureMatmul_GpuPipelined(benchmark::State& state) {
  auto opts = mpc::PartyOptions::parsecureml();
  opts.adaptive = false;
  bench_secure_matmul(state, opts);
}
BENCHMARK(BM_SecureMatmul_GpuPipelined)->Arg(128)->Arg(256)->Arg(512);

void BM_SecureMatmulRing(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const MatrixU64 a = mpc::encode_fixed(rand_mat(n, n, 5));
  const MatrixU64 b = mpc::encode_fixed(rand_mat(n, n, 6));
  auto [t0, t1] = mpc::make_ring_matmul_triplet(n, n, n, 7);
  const auto sa = mpc::share_ring(a, 8);
  const auto sb = mpc::share_ring(b, 9);
  auto opts = mpc::PartyOptions::secureml_baseline();
  auto chans = net::LocalChannel::make_pair();
  mpc::PartyContext ctx0(0, chans.a, nullptr, opts);
  mpc::PartyContext ctx1(1, chans.b, nullptr, opts);
  for (auto _ : state) {
    MatrixU64 c1;
    std::thread peer(
        [&] { c1 = mpc::secure_matmul_ring(ctx1, sa.s1, sb.s1, t1); });
    MatrixU64 c0 = mpc::secure_matmul_ring(ctx0, sa.s0, sb.s0, t0);
    peer.join();
    benchmark::DoNotOptimize(c0.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_SecureMatmulRing)->Arg(64)->Arg(128);

void BM_TripletGenCpu(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  mpc::TripletDealer dealer(nullptr, {false, false, 10});
  for (auto _ : state) {
    auto pair = dealer.make_matmul(n, n, n);
    benchmark::DoNotOptimize(pair.first.z.data());
  }
}
BENCHMARK(BM_TripletGenCpu)->Arg(128)->Arg(256);

void BM_SecureActivation(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  mpc::TripletDealer dealer(nullptr, {false, false, 12});
  const MatrixF x = rand_mat(n, n, 13);
  const auto sx = mpc::share_float(x, 14);
  auto opts = mpc::PartyOptions::parsecureml();
  opts.use_gpu = false;
  opts.adaptive = false;
  auto chans = net::LocalChannel::make_pair();
  mpc::PartyContext ctx0(0, chans.a, nullptr, opts);
  mpc::PartyContext ctx1(1, chans.b, nullptr, opts);
  for (auto _ : state) {
    state.PauseTiming();
    auto [a0, a1] = dealer.make_activation(n, n);
    state.ResumeTiming();
    mpc::ActivationResult r1;
    std::thread peer(
        [&] { r1 = mpc::secure_activation(ctx1, sx.s1, a1); });
    mpc::ActivationResult r0 = mpc::secure_activation(ctx0, sx.s0, a0);
    peer.join();
    benchmark::DoNotOptimize(r0.value_share.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n);
}
BENCHMARK(BM_SecureActivation)->Arg(32)->Arg(128);

void BM_RefreshShare(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  auto opts = mpc::PartyOptions::secureml_baseline();
  auto chans = net::LocalChannel::make_pair();
  mpc::PartyContext ctx0(0, chans.a, nullptr, opts);
  mpc::PartyContext ctx1(1, chans.b, nullptr, opts);
  const MatrixF s0 = rand_mat(n, n, 15);
  const MatrixF s1 = rand_mat(n, n, 16);
  for (auto _ : state) {
    MatrixF r1;
    std::thread peer([&] { r1 = mpc::refresh_share(ctx1, s1); });
    MatrixF r0 = mpc::refresh_share(ctx0, s0);
    peer.join();
    benchmark::DoNotOptimize(r0.data());
  }
  state.SetBytesProcessed(state.iterations() * n * n * sizeof(float));
}
BENCHMARK(BM_RefreshShare)->Arg(128)->Arg(512);

void BM_TripletGenGpu(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  mpc::TripletDealer dealer(&sgpu::Device::global(), {true, false, 11});
  for (auto _ : state) {
    auto pair = dealer.make_matmul(n, n, n);
    benchmark::DoNotOptimize(pair.first.z.data());
  }
}
BENCHMARK(BM_TripletGenGpu)->Arg(128)->Arg(256)->Arg(512);

}  // namespace
