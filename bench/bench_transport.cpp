// Transport data-path throughput: zero-copy scatter-gather vs the seed
// flatten-and-copy path, over LocalChannel and loopback TCP, plus CRC32 /
// CRC32C kernel throughput (table vs hardware tier).
//
//   bench_transport                          human-readable report
//   bench_transport --emit-comm-baseline[=PATH] [--smoke]
//                                            machine-readable BENCH_comm.json
//
// The "seed" mode reproduces the pre-WireBuf data path: the matrix is
// flattened into one heap payload per message (net::encode_matrix) and the
// frame checksum uses the table CRC tier — exactly what the seed transport
// did. The "zerocopy" mode is the current path: net::send_matrix appends the
// matrix storage as a borrowed view (no payload materialization) and the CRC
// kernel is runtime-dispatched (SSE4.2 / PCLMUL where available).
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "common/crc32.hpp"
#include "common/timer.hpp"
#include "net/buffer_pool.hpp"
#include "net/local_channel.hpp"
#include "net/serialize.hpp"
#include "net/tcp_channel.hpp"
#include "net/wire_buf.hpp"
#include "rng/rng.hpp"
#include "tensor/matrix.hpp"

namespace {

using namespace psml;

MatrixF rand_mat(std::size_t r, std::size_t c, std::uint64_t seed) {
  MatrixF m(r, c);
  rng::fill_uniform_par(m, -1.0f, 1.0f, seed);
  return m;
}

struct Rate {
  double msgs_per_s = 0.0;
  double gbps = 0.0;  // payload GB/s (decimal)
};

// One-directional stream of `reps` matrices from tx to rx; the receiver
// decodes every message, so the measured rate includes the full
// encode->frame->deliver->decode path.
Rate run_stream(net::Channel& tx, net::Channel& rx, const MatrixF& m,
                int reps, bool seed_path) {
  const net::Tag tag = 7;
  const std::size_t wire_bytes = net::encoded_matrix_bytes(m);
  Timer t;
  std::thread sender([&] {
    for (int r = 0; r < reps; ++r) {
      if (seed_path) {
        // Seed emulation: one full payload materialization per message.
        net::WireBuf buf;
        buf.append_vector(net::encode_matrix(m));
        tx.send(tag, std::move(buf));
      } else {
        net::send_matrix(tx, tag, m);
      }
    }
  });
  for (int r = 0; r < reps; ++r) {
    MatrixF got = net::recv_matrix_f32(rx, tag);
    if (got.rows() != m.rows()) std::abort();  // keep the decode live
  }
  sender.join();
  const double sec = t.seconds();
  Rate out;
  out.msgs_per_s = reps / sec;
  out.gbps = static_cast<double>(wire_bytes) * reps / sec / 1e9;
  return out;
}

struct StreamResult {
  std::size_t rows = 0, cols = 0;
  int reps = 0;
  Rate seed, zc;
  double speedup() const {
    return seed.gbps > 0.0 ? zc.gbps / seed.gbps : 0.0;
  }
};

// Seed transports checksummed with the table CRC tier; the zero-copy path
// uses the dispatched hardware tier. Forcing the ISA per mode makes the two
// configurations faithful end-to-end.
StreamResult bench_pair(net::Channel& a, net::Channel& b, std::size_t n,
                        int reps) {
  StreamResult r;
  r.rows = r.cols = n;
  r.reps = reps;
  const MatrixF m = rand_mat(n, n, 0x9e3779b9ull + n);
  set_crc32_isa(Crc32Isa::kTable);
  run_stream(a, b, m, 2, true);  // warm-up
  r.seed = run_stream(a, b, m, reps, true);
  set_crc32_isa(Crc32Isa::kAuto);
  run_stream(a, b, m, 2, false);
  r.zc = run_stream(a, b, m, reps, false);
  return r;
}

int reps_for(std::size_t n, bool smoke) {
  const double target = (smoke ? 8.0 : 192.0) * 1024 * 1024;
  const double bytes = static_cast<double>(n) * n * 4;
  const int reps = static_cast<int>(target / bytes);
  return std::max(4, std::min(reps, 512));
}

struct CrcResult {
  const char* algo;
  const char* kernel;
  std::size_t bytes = 0;
  double table_gbps = 0.0;
  double hw_gbps = 0.0;
  double speedup() const {
    return table_gbps > 0.0 ? hw_gbps / table_gbps : 0.0;
  }
};

double crc_gbps(std::uint32_t (*fn)(const void*, std::size_t, std::uint32_t),
                const std::vector<std::uint8_t>& buf, int passes) {
  volatile std::uint32_t sink = 0;
  // warm-up
  sink = fn(buf.data(), buf.size(), sink);
  double best = 0.0;
  for (int p = 0; p < passes; ++p) {
    Timer t;
    sink = fn(buf.data(), buf.size(), sink);
    const double g = static_cast<double>(buf.size()) / t.seconds() / 1e9;
    if (g > best) best = g;
  }
  (void)sink;
  return best;
}

CrcResult bench_crc(bool c_variant, bool smoke) {
  std::vector<std::uint8_t> buf((smoke ? 2u : 16u) << 20);
  for (std::size_t i = 0; i < buf.size(); ++i) {
    buf[i] = static_cast<std::uint8_t>(i * 2654435761u >> 13);
  }
  const int passes = smoke ? 3 : 8;
  CrcResult r;
  r.algo = c_variant ? "crc32c" : "crc32";
  r.bytes = buf.size();
  auto fn = c_variant ? &psml::crc32c : &psml::crc32;
  set_crc32_isa(Crc32Isa::kTable);
  r.table_gbps = crc_gbps(fn, buf, passes);
  set_crc32_isa(Crc32Isa::kAuto);
  r.hw_gbps = crc_gbps(fn, buf, passes);
  r.kernel = c_variant ? crc32c_kernel_name() : crc32_kernel_name();
  return r;
}

void print_stream_table(const char* transport,
                        const std::vector<StreamResult>& rows) {
  std::printf("\n%s f32 matrix stream (payload GB/s, decimal):\n", transport);
  std::printf("  %-10s %6s %12s %12s %12s %12s %8s\n", "shape", "reps",
              "seed msg/s", "seed GB/s", "zc msg/s", "zc GB/s", "speedup");
  for (const StreamResult& r : rows) {
    std::printf("  %4zux%-5zu %6d %12.0f %12.3f %12.0f %12.3f %7.2fx\n",
                r.rows, r.cols, r.reps, r.seed.msgs_per_s, r.seed.gbps,
                r.zc.msgs_per_s, r.zc.gbps, r.speedup());
  }
}

int emit_comm_baseline(const std::string& path, bool smoke,
                       const std::vector<StreamResult>& local,
                       const std::vector<StreamResult>& tcp,
                       const std::vector<CrcResult>& crc) {
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"schema\": \"psml-comm-baseline-v1\",\n");
  std::fprintf(out, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(out, "  \"crc32_kernel\": \"%s\",\n", crc32_kernel_name());
  std::fprintf(out, "  \"crc32c_kernel\": \"%s\",\n", crc32c_kernel_name());
  std::fprintf(out, "  \"crc\": [\n");
  for (std::size_t i = 0; i < crc.size(); ++i) {
    const CrcResult& r = crc[i];
    std::fprintf(out,
                 "    {\"algo\": \"%s\", \"kernel\": \"%s\", \"bytes\": %zu,\n"
                 "     \"table_gbps\": %.3f, \"hw_gbps\": %.3f, "
                 "\"speedup_hw_vs_table\": %.3f}%s\n",
                 r.algo, r.kernel, r.bytes, r.table_gbps, r.hw_gbps,
                 r.speedup(), i + 1 < crc.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  const auto emit_rows = [&](const char* key,
                             const std::vector<StreamResult>& rows,
                             bool last) {
    std::fprintf(out, "  \"%s\": [\n", key);
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const StreamResult& r = rows[i];
      std::fprintf(
          out,
          "    {\"rows\": %zu, \"cols\": %zu, \"reps\": %d,\n"
          "     \"seed_msgs_per_s\": %.1f, \"seed_gbps\": %.3f,\n"
          "     \"zc_msgs_per_s\": %.1f, \"zc_gbps\": %.3f,\n"
          "     \"speedup_zc_vs_seed\": %.3f}%s\n",
          r.rows, r.cols, r.reps, r.seed.msgs_per_s, r.seed.gbps,
          r.zc.msgs_per_s, r.zc.gbps, r.speedup(),
          i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(out, "  ]%s\n", last ? "" : ",");
  };
  emit_rows("local", local, false);
  emit_rows("tcp", tcp, true);
  std::fprintf(out, "}\n");
  std::fclose(out);
  std::printf("wrote %s\n", path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool emit = false, smoke = false;
  std::string baseline_path;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--emit-comm-baseline") == 0) {
      emit = true;
      baseline_path = "BENCH_comm.json";
    } else if (std::strncmp(arg, "--emit-comm-baseline=", 21) == 0) {
      emit = true;
      baseline_path = arg + 21;
    } else if (std::strcmp(arg, "--smoke") == 0) {
      smoke = true;
    } else {
      std::fprintf(stderr,
                   "usage: bench_transport [--emit-comm-baseline[=PATH]] "
                   "[--smoke]\n");
      return 2;
    }
  }

  const std::vector<std::size_t> sizes =
      smoke ? std::vector<std::size_t>{64, 256}
            : std::vector<std::size_t>{64, 128, 256, 512, 1024};

  bench::header("BENCH_comm", "transport data-path throughput");
  std::printf("crc32 kernel: %s   crc32c kernel: %s\n", crc32_kernel_name(),
              crc32c_kernel_name());

  // CRC kernel throughput.
  std::vector<CrcResult> crc;
  crc.push_back(bench_crc(false, smoke));
  crc.push_back(bench_crc(true, smoke));
  std::printf("\nCRC kernel throughput (%zu MiB buffer):\n",
              crc[0].bytes >> 20);
  for (const CrcResult& r : crc) {
    std::printf("  %-7s table %7.3f GB/s   %-6s %7.3f GB/s   %6.2fx\n",
                r.algo, r.table_gbps, r.kernel, r.hw_gbps, r.speedup());
  }

  // LocalChannel.
  std::vector<StreamResult> local;
  {
    auto pair = net::LocalChannel::make_pair();
    for (std::size_t n : sizes) {
      local.push_back(bench_pair(*pair.a, *pair.b, n, reps_for(n, smoke)));
    }
  }
  print_stream_table("LocalChannel", local);

  // Loopback TCP.
  std::vector<StreamResult> tcp;
  {
    const std::uint16_t port = 39353;
    std::shared_ptr<net::Channel> server;
    std::thread listener([&] { server = net::TcpChannel::listen(port); });
    auto client = net::TcpChannel::connect("127.0.0.1", port, 10.0);
    listener.join();
    for (std::size_t n : sizes) {
      tcp.push_back(bench_pair(*client, *server, n, reps_for(n, smoke)));
    }
    client->close();
    server->close();
  }
  print_stream_table("loopback TCP", tcp);

  const auto pm = net::BufferPool::global().metrics();
  std::printf("\nbuffer pool: hits=%llu misses=%llu drops=%llu held=%llu B\n",
              static_cast<unsigned long long>(pm.hits),
              static_cast<unsigned long long>(pm.misses),
              static_cast<unsigned long long>(pm.drops),
              static_cast<unsigned long long>(pm.bytes_held));

  set_crc32_isa(Crc32Isa::kAuto);
  if (emit) return emit_comm_baseline(baseline_path, smoke, local, tcp, crc);
  return 0;
}
