// Ablation study (DESIGN.md §5): starting from full ParSecureML, disable one
// optimization at a time and measure the cost. Complements Figs. 14/15 with
// the pipeline, compression, Eq. 8 fusion, and adaptive-dispatch axes.
#include "bench_util.hpp"

using namespace psml;
using namespace psml::bench;

namespace {

struct Axis {
  const char* name;
  void (*disable)(mpc::PartyOptions&);
};

}  // namespace

int main() {
  header("Ablation", "disable one ParSecureML optimization at a time");

  const Axis axes[] = {
      {"-pipeline", [](mpc::PartyOptions& o) { o.use_pipeline = false; }},
      {"-compression", [](mpc::PartyOptions& o) { o.use_compression = false; }},
      {"-tensor-core", [](mpc::PartyOptions& o) { o.use_tensor_core = false; }},
      {"-eq8-fusion", [](mpc::PartyOptions& o) { o.fuse_eq8 = false; }},
      {"-cpu-parallel", [](mpc::PartyOptions& o) { o.cpu_parallel = false; }},
      {"-adaptive", [](mpc::PartyOptions& o) { o.adaptive = false; }},
      {"-gpu (all CPU)", [](mpc::PartyOptions& o) {
         o.use_gpu = false;
         o.adaptive = false;
       }},
  };

  for (const auto model : {ml::ModelKind::kMlp, ml::ModelKind::kCnn}) {
    auto cfg = default_config(model, data::DatasetKind::kMnist,
                              parsecureml::Mode::kCustom);
    cfg.samples = scaled(96);
    cfg.batch = cfg.samples;
    cfg.epochs = 2;
    cfg.custom_opts = mpc::PartyOptions::parsecureml();
    const auto full = parsecureml::run_training(cfg);
    std::printf("\n%s on MNIST (full ParSecureML: online %.3fs, total "
                "%.3fs, s2s %.2f MiB)\n",
                ml::to_string(model).c_str(), full.online_sec, full.total_sec,
                static_cast<double>(full.server_to_server_bytes) / (1 << 20));
    std::printf("%-16s %10s %10s %12s %12s\n", "variant", "online(s)",
                "total(s)", "vs-full-onl", "s2s(MiB)");

    for (const auto& axis : axes) {
      cfg.custom_opts = mpc::PartyOptions::parsecureml();
      axis.disable(cfg.custom_opts);
      const auto r = parsecureml::run_training(cfg);
      std::printf("%-16s %10.3f %10.3f %11.2fx %12.2f\n", axis.name,
                  r.online_sec, r.total_sec, r.online_sec / full.online_sec,
                  static_cast<double>(r.server_to_server_bytes) / (1 << 20));
    }
  }
  std::printf("\n(vs-full-onl > 1 means the disabled optimization was "
              "helping at this scale)\n");
  return 0;
}
