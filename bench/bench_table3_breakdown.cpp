// Table 3: online/total time and "occupancy" (online share of total) for
// SecureML and ParSecureML. Paper: SecureML occupancy > 90% everywhere;
// ParSecureML drops it to ~54% on average because the online phase is where
// the GPU acceleration lands.
#include "bench_util.hpp"

using namespace psml;
using namespace psml::bench;

int main() {
  header("Table 3", "online/total breakdown and occupancy");
  std::printf("%-10s %-10s | %9s %9s %7s | %9s %9s %7s\n", "dataset", "model",
              "sml-onl", "sml-tot", "occ%", "par-onl", "par-tot", "occ%");

  double occ_base_sum = 0, occ_fast_sum = 0;
  int count = 0;
  for (const auto dataset :
       {data::DatasetKind::kMnist, data::DatasetKind::kSynthetic,
        data::DatasetKind::kNist}) {
    for (const auto model : all_models()) {
      if (!valid_combo(model, dataset)) continue;
      auto cfg = default_config(model, dataset, parsecureml::Mode::kSecureML);
      // Several epochs so the one-time offline material amortizes, as in the
      // paper's full training runs (occupancy = online share of total).
      cfg.epochs = 4;
      const auto base = parsecureml::run_training(cfg);
      cfg.mode = parsecureml::Mode::kParSecureML;
      const auto fast = parsecureml::run_training(cfg);

      const double occ_base = base.online_sec / base.total_sec * 100.0;
      const double occ_fast = fast.online_sec / fast.total_sec * 100.0;
      occ_base_sum += occ_base;
      occ_fast_sum += occ_fast;
      ++count;
      std::printf("%-10s %-10s | %9.3f %9.3f %6.1f%% | %9.3f %9.3f %6.1f%%\n",
                  data::to_string(dataset).c_str(),
                  ml::to_string(model).c_str(), base.online_sec,
                  base.total_sec, occ_base, fast.online_sec, fast.total_sec,
                  occ_fast);
    }
  }
  std::printf("\naverage occupancy: SecureML %.1f%% (paper >90%%), "
              "ParSecureML %.1f%% (paper 54.2%%)\n",
              occ_base_sum / count, occ_fast_sum / count);
  std::printf("shape check: ParSecureML occupancy %s SecureML occupancy "
              "(paper: strictly lower; on this substrate the offline phase "
              "accelerates alongside the online one, so the drop "
              "concentrates in the compute-heavy cells)\n",
              occ_fast_sum < occ_base_sum ? "<" : ">=");
  return 0;
}
