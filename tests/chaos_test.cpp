// Chaos suite: scripted transport faults driven through the secure
// protocols. Every run must either complete with results identical to a
// clean run (benign faults: delays, duplicates, healed partitions) or fail
// fast with the correct typed error (TimeoutError / NetworkError) — never
// hang, never silently corrupt. The resilient training tests additionally
// require full recovery: rollback to the pre-step snapshot, sequence
// resync, retry, and a final model that matches the plaintext reference.
#include <gtest/gtest.h>

#include <chrono>
#include <sstream>
#include <thread>

#include "data/datasets.hpp"
#include "ml/checkpoint.hpp"
#include "ml/models.hpp"
#include "ml/secure/resilient.hpp"
#include "ml/secure/secure_model.hpp"
#include "mpc/secure_matmul.hpp"
#include "mpc/share.hpp"
#include "net/fault_inject.hpp"
#include "net/local_channel.hpp"
#include "tensor/gemm.hpp"
#include "tensor/ops.hpp"
#include "test_util.hpp"

namespace psml {
namespace {

using psml::test::expect_near;
using psml::test::random_matrix;

std::vector<std::uint8_t> bytes(std::initializer_list<std::uint8_t> init) {
  return std::vector<std::uint8_t>(init);
}

mpc::PartyOptions cpu_opts() {
  mpc::PartyOptions opts = mpc::PartyOptions::parsecureml();
  opts.use_gpu = false;
  opts.adaptive = false;
  opts.use_pipeline = false;
  return opts;
}

std::pair<mpc::TripletStore, mpc::TripletStore> gen_stores(
    const std::vector<mpc::TripletSpec>& plan, std::uint64_t seed) {
  mpc::TripletDealer dealer(nullptr, {false, false, seed});
  return dealer.generate(plan);
}

// run_parties over caller-provided (fault-injected) channels.
void run_chaos_parties(
    const mpc::PartyOptions& opts, net::ChannelPair chans,
    const std::function<void(mpc::PartyContext&)>& party0,
    const std::function<void(mpc::PartyContext&)>& party1) {
  sgpu::Device* dev = opts.use_gpu ? &sgpu::Device::global() : nullptr;
  mpc::PartyContext ctx0(0, chans.a, dev, opts);
  mpc::PartyContext ctx1(1, chans.b, dev, opts);

  std::exception_ptr err0, err1;
  std::thread t0([&] {
    try {
      party0(ctx0);
    } catch (...) {
      err0 = std::current_exception();
    }
  });
  std::thread t1([&] {
    try {
      party1(ctx1);
    } catch (...) {
      err1 = std::current_exception();
    }
  });
  t0.join();
  t1.join();
  if (err0) std::rethrow_exception(err0);
  if (err1) std::rethrow_exception(err1);
}

TEST(FaultPlan, ParseAndPrintRoundTrip) {
  const std::string spec =
      "delay@0:50;drop@2;flip@3:7;trunc@4:2;dup@5;part@6:3;close@9";
  const net::FaultPlan plan = net::FaultPlan::parse(spec);
  ASSERT_EQ(plan.actions.size(), 7u);
  EXPECT_EQ(plan.actions[0].kind, net::FaultAction::Kind::kDelay);
  EXPECT_EQ(plan.actions[0].index, 0u);
  EXPECT_EQ(plan.actions[0].arg, 50u);
  EXPECT_EQ(plan.actions[1].kind, net::FaultAction::Kind::kDrop);
  EXPECT_FALSE(plan.actions[1].has_arg);
  EXPECT_EQ(plan.actions[6].kind, net::FaultAction::Kind::kClose);
  EXPECT_EQ(plan.to_string(), spec);
  EXPECT_TRUE(net::FaultPlan::parse("").empty());
  EXPECT_TRUE(net::FaultPlan::parse(" ; ; ").empty());
}

TEST(FaultPlan, MalformedSpecThrows) {
  EXPECT_THROW(net::FaultPlan::parse("delay"), InvalidArgument);
  EXPECT_THROW(net::FaultPlan::parse("wat@1"), InvalidArgument);
  EXPECT_THROW(net::FaultPlan::parse("flip@x"), InvalidArgument);
  EXPECT_THROW(net::FaultPlan::parse("drop@1:zz"), InvalidArgument);
}

TEST(ChaosChannel, BenignFaultsPreserveDelivery) {
  // Delay, duplicate, and a healed partition must all be invisible to the
  // application: every message arrives once, in order.
  auto chans = net::FaultInjectChannel::wrap_pair(
      net::LocalChannel::make_pair(),
      net::FaultPlan::parse("delay@0:20;dup@1;part@2:2"), net::FaultPlan{},
      7);
  for (std::uint8_t i = 0; i < 4; ++i) {
    chans.a->send(10u + i, bytes({i}));
  }
  for (std::uint8_t i = 0; i < 4; ++i) {
    const net::Message m = chans.b->recv(10u + i);
    EXPECT_EQ(m.payload, bytes({i}));
  }
  auto* fic = dynamic_cast<net::FaultInjectChannel*>(chans.a.get());
  ASSERT_NE(fic, nullptr);
  EXPECT_EQ(fic->faults_fired(), 3u);
}

TEST(ChaosChannel, BitFlipSurfacesNetworkError) {
  auto chans = net::FaultInjectChannel::wrap_pair(
      net::LocalChannel::make_pair(), net::FaultPlan::parse("flip@0"),
      net::FaultPlan{}, 7);
  chans.a->send(1, bytes({1, 2, 3}));
  EXPECT_THROW(chans.b->recv(1), NetworkError);
}

TEST(ChaosChannel, TruncationSurfacesNetworkError) {
  auto chans = net::FaultInjectChannel::wrap_pair(
      net::LocalChannel::make_pair(), net::FaultPlan::parse("trunc@0:5"),
      net::FaultPlan{}, 7);
  chans.a->send(1, bytes({1, 2, 3}));
  EXPECT_THROW(chans.b->recv(1), NetworkError);
}

TEST(ChaosChannel, DroppedMessageSurfacesTimeout) {
  auto chans = net::FaultInjectChannel::wrap_pair(
      net::LocalChannel::make_pair(), net::FaultPlan::parse("drop@0"),
      net::FaultPlan{}, 7);
  chans.a->send(1, bytes({1}));
  EXPECT_THROW(
      chans.b->recv(1, net::deadline_after(std::chrono::milliseconds(80))),
      TimeoutError);
  // The drop is permanent but the channel is not: later traffic flows.
  chans.a->send(2, bytes({2}));
  EXPECT_EQ(chans.b->recv(2).payload, bytes({2}));
}

TEST(ChaosMatmul, BenignPlanMatchesCleanRun) {
  const std::size_t m = 16, k = 24, n = 12;
  const MatrixF a = random_matrix(m, k, 301);
  const MatrixF b = random_matrix(k, n, 302);
  const auto sa = mpc::share_float(a, 31);
  const auto sb = mpc::share_float(b, 32);

  // Same triplet seed for both runs, so a clean run and a benign-chaos run
  // must produce bit-identical shares. Two sequential matmuls per run: the
  // coalesced E/F exchange sends ONE frame per direction per step, so the
  // two-send partition window (part@0:2) spans both steps and heals when
  // step 2's frame goes out.
  auto run = [&](net::ChannelPair chans, MatrixF& c0, MatrixF& c1,
                 MatrixF& d0, MatrixF& d1) {
    mpc::TripletDealer dealer(nullptr, {false, false, 33});
    auto [t0, t1] = dealer.make_matmul(m, k, n);
    auto [u0, u1] = dealer.make_matmul(m, k, n);
    run_chaos_parties(
        cpu_opts(), std::move(chans),
        [&](mpc::PartyContext& ctx) {
          c0 = mpc::secure_matmul(ctx, sa.s0, sb.s0, t0);
          d0 = mpc::secure_matmul(ctx, sa.s0, sb.s0, u0);
        },
        [&](mpc::PartyContext& ctx) {
          c1 = mpc::secure_matmul(ctx, sa.s1, sb.s1, t1);
          d1 = mpc::secure_matmul(ctx, sa.s1, sb.s1, u1);
        });
  };

  MatrixF clean0, clean1, clean_d0, clean_d1;
  run(net::LocalChannel::make_pair(), clean0, clean1, clean_d0, clean_d1);

  MatrixF chaos0, chaos1, chaos_d0, chaos_d1;
  run(net::FaultInjectChannel::wrap_pair(
          net::LocalChannel::make_pair(),
          net::FaultPlan::parse("delay@0:15;dup@1"),
          net::FaultPlan::parse("part@0:2"), 9),
      chaos0, chaos1, chaos_d0, chaos_d1);

  EXPECT_EQ(tensor::max_abs_diff(clean0, chaos0), 0.0f);
  EXPECT_EQ(tensor::max_abs_diff(clean1, chaos1), 0.0f);
  EXPECT_EQ(tensor::max_abs_diff(clean_d0, chaos_d0), 0.0f);
  EXPECT_EQ(tensor::max_abs_diff(clean_d1, chaos_d1), 0.0f);
  expect_near(mpc::reconstruct_float(chaos0, chaos1), tensor::matmul(a, b),
              1e-2, "chaos matmul");
  expect_near(mpc::reconstruct_float(chaos_d0, chaos_d1),
              tensor::matmul(a, b), 1e-2, "chaos matmul step 2");
}

TEST(ChaosMatmul, CorruptionFailsFastWithTypedError) {
  const std::size_t m = 8, k = 8, n = 8;
  const auto sa = mpc::share_float(random_matrix(m, k, 303), 34);
  const auto sb = mpc::share_float(random_matrix(k, n, 304), 35);
  mpc::TripletDealer dealer(nullptr, {false, false, 36});
  auto [t0, t1] = dealer.make_matmul(m, k, n);

  auto chans = net::FaultInjectChannel::wrap_pair(
      net::LocalChannel::make_pair(), net::FaultPlan::parse("flip@0"),
      net::FaultPlan{}, 11);
  // The party that never sees the corrupt frame must not hang: it times
  // out waiting for its dead peer. TimeoutError is a NetworkError, so both
  // failure shapes satisfy the typed-error contract.
  chans.a->set_default_timeout(std::chrono::milliseconds(400));
  chans.b->set_default_timeout(std::chrono::milliseconds(400));

  EXPECT_THROW(run_chaos_parties(
                   cpu_opts(), std::move(chans),
                   [&](mpc::PartyContext& ctx) {
                     mpc::secure_matmul(ctx, sa.s0, sb.s0, t0);
                   },
                   [&](mpc::PartyContext& ctx) {
                     mpc::secure_matmul(ctx, sa.s1, sb.s1, t1);
                   }),
               NetworkError);
}

TEST(StepRollback, TripletRewindReplaysIdentically) {
  mpc::TripletDealer dealer(nullptr, {false, false, 41});
  auto [st0, st1] = dealer.generate({{mpc::TripletKind::kMatMul, 4, 4, 4},
                                     {mpc::TripletKind::kMatMul, 4, 4, 4},
                                     {mpc::TripletKind::kElementwise, 4, 0, 4}});
  st0.set_retain(true);
  (void)st0.pop_matmul();
  const mpc::TripletStore::Mark mark = st0.mark();
  const mpc::TripletShare first = st0.pop_matmul();
  const mpc::TripletShare elem = st0.pop_elementwise();
  st0.rewind(mark);
  const mpc::TripletShare replay = st0.pop_matmul();
  EXPECT_EQ(tensor::max_abs_diff(first.u, replay.u), 0.0f);
  EXPECT_EQ(tensor::max_abs_diff(first.z, replay.z), 0.0f);
  const mpc::TripletShare elem_replay = st0.pop_elementwise();
  EXPECT_EQ(tensor::max_abs_diff(elem.z, elem_replay.z), 0.0f);
  // Retain mode still detects exhaustion instead of wrapping: both deques
  // are fully consumed at this point.
  EXPECT_ANY_THROW(st0.pop_matmul());
  EXPECT_ANY_THROW(st0.pop_elementwise());
}

TEST(StepRollback, ShareSnapshotRestoresParameters) {
  ml::ModelConfig mc;
  mc.kind = ml::ModelKind::kMlp;
  mc.input_dim = 20;
  mc.classes = 10;
  mc.seed = 42;
  auto pair = ml::build_secure_pair(mc);

  std::stringstream snap;
  ml::save_share_snapshot(snap, pair.m0);

  std::vector<MatrixF*> state = pair.m0.collect_state();
  ASSERT_FALSE(state.empty());
  std::vector<MatrixF> before;
  for (MatrixF* p : state) before.push_back(*p);
  for (MatrixF* p : state) {
    for (std::size_t i = 0; i < p->size(); ++i) p->data()[i] += 1.0f;
  }

  ml::load_share_snapshot(snap, pair.m0);
  for (std::size_t i = 0; i < state.size(); ++i) {
    EXPECT_EQ(tensor::max_abs_diff(*state[i], before[i]), 0.0f);
  }

  // A snapshot from a different architecture is rejected, not applied.
  ml::ModelConfig other = mc;
  other.input_dim = 21;
  auto other_pair = ml::build_secure_pair(other);
  snap.clear();
  snap.seekg(0);
  EXPECT_THROW(ml::load_share_snapshot(snap, other_pair.m0), InvalidArgument);
}

TEST(ResilientTraining, RecoversFromTransientBitFlip) {
  const std::size_t batch = 8;
  const auto ds = data::make_dataset(data::DatasetKind::kMnist,
                                     data::LabelScheme::kOneHot10, batch, 75);
  ml::ModelConfig mc;
  mc.kind = ml::ModelKind::kMlp;
  mc.input_dim = ds.geometry.features();
  mc.classes = 10;
  mc.seed = 76;

  auto plain = ml::build_plain(mc);
  ml::train_batch(plain, ml::LossKind::kMse, ds.x, ds.y, 0.25f);

  auto pair = ml::build_secure_pair(mc);
  std::vector<mpc::TripletSpec> plan;
  pair.m0.plan_batch(plan, batch, ml::LossKind::kMse, 10, true);
  auto [st0, st1] = gen_stores(plan, 77);
  auto xs = mpc::share_float(ds.x, 78);
  auto ys = mpc::share_float(ds.y, 79);

  // One corrupted frame mid-forward: party 1 sees a CRC failure at once,
  // party 0 only notices when its recv deadline expires — recovery must
  // bridge that asymmetry.
  auto chans = net::FaultInjectChannel::wrap_pair(
      net::LocalChannel::make_pair(), net::FaultPlan::parse("flip@3"),
      net::FaultPlan{}, 99);

  ml::RetryPolicy pol;
  pol.max_attempts = 4;
  pol.recv_timeout = std::chrono::milliseconds(500);
  pol.backoff_base_ms = 2.0;
  pol.backoff_max_ms = 20.0;

  ml::ResilientStats s0, s1;
  run_chaos_parties(
      cpu_opts(), std::move(chans),
      [&](mpc::PartyContext& ctx) {
        ctx.set_triplets(std::move(st0));
        ctx.triplets().set_retain(true);
        ml::SecureEnv env{&ctx, true, nullptr};
        s0 = ml::secure_train_batch_resilient(env, pair.m0, ml::LossKind::kMse,
                                              xs.s0, ys.s0, 0.25f, pol);
      },
      [&](mpc::PartyContext& ctx) {
        ctx.set_triplets(std::move(st1));
        ctx.triplets().set_retain(true);
        ml::SecureEnv env{&ctx, true, nullptr};
        s1 = ml::secure_train_batch_resilient(env, pair.m1, ml::LossKind::kMse,
                                              xs.s1, ys.s1, 0.25f, pol);
      });

  EXPECT_TRUE(s0.completed);
  EXPECT_TRUE(s1.completed);
  EXPECT_GE(s0.rollbacks, 1);
  EXPECT_GE(s1.rollbacks, 1);

  // The recovered step must match the plaintext reference exactly as a
  // clean secure step would (same bound as SecureVsPlain).
  auto secure_as_plain = ml::reconstruct_plain(mc, pair.m0, pair.m1);
  for (std::size_t i = 0; i < plain.size(); ++i) {
    auto* dp = dynamic_cast<ml::Dense*>(&plain.layer(i));
    if (dp == nullptr) continue;
    auto* dsec = dynamic_cast<ml::Dense*>(&secure_as_plain.layer(i));
    ASSERT_NE(dsec, nullptr);
    expect_near(dsec->weights(), dp->weights(), 5e-2,
                ("layer " + std::to_string(i)).c_str());
  }
}

TEST(ResilientTraining, ExhaustedRetriesRethrowAndRollBack) {
  const std::size_t batch = 4;
  const auto ds = data::make_dataset(data::DatasetKind::kMnist,
                                     data::LabelScheme::kOneHot10, batch, 85);
  ml::ModelConfig mc;
  mc.kind = ml::ModelKind::kMlp;
  mc.input_dim = ds.geometry.features();
  mc.classes = 10;
  mc.seed = 86;

  auto pair = ml::build_secure_pair(mc);
  auto reference = ml::reconstruct_plain(mc, pair.m0, pair.m1);

  std::vector<mpc::TripletSpec> plan;
  pair.m0.plan_batch(plan, batch, ml::LossKind::kMse, 10, true);
  auto [st0, st1] = gen_stores(plan, 87);
  auto xs = mpc::share_float(ds.x, 88);
  auto ys = mpc::share_float(ds.y, 89);

  // close@2 kills the transport for good: no amount of retries can succeed,
  // so the policy must give up with the typed error after max_attempts.
  auto chans = net::FaultInjectChannel::wrap_pair(
      net::LocalChannel::make_pair(), net::FaultPlan::parse("close@2"),
      net::FaultPlan{}, 13);

  ml::RetryPolicy pol;
  pol.max_attempts = 2;
  pol.recv_timeout = std::chrono::milliseconds(250);
  pol.backoff_base_ms = 1.0;
  pol.backoff_max_ms = 5.0;

  auto step = [&](mpc::PartyContext& ctx, ml::SecureSequential& model,
                  const MatrixF& x, const MatrixF& y,
                  mpc::TripletStore&& st) {
    ctx.set_triplets(std::move(st));
    ctx.triplets().set_retain(true);
    ml::SecureEnv env{&ctx, true, nullptr};
    ml::secure_train_batch_resilient(env, model, ml::LossKind::kMse, x, y,
                                     0.25f, pol);
  };

  EXPECT_THROW(run_chaos_parties(
                   cpu_opts(), std::move(chans),
                   [&](mpc::PartyContext& ctx) {
                     step(ctx, pair.m0, xs.s0, ys.s0, std::move(st0));
                   },
                   [&](mpc::PartyContext& ctx) {
                     step(ctx, pair.m1, xs.s1, ys.s1, std::move(st1));
                   }),
               NetworkError);

  // Both parties were left at the pre-step snapshot: the reconstruction is
  // bit-identical to the initial model.
  auto after = ml::reconstruct_plain(mc, pair.m0, pair.m1);
  for (std::size_t i = 0; i < reference.size(); ++i) {
    auto* d0 = dynamic_cast<ml::Dense*>(&reference.layer(i));
    if (d0 == nullptr) continue;
    auto* d1 = dynamic_cast<ml::Dense*>(&after.layer(i));
    ASSERT_NE(d1, nullptr);
    EXPECT_EQ(tensor::max_abs_diff(d0->weights(), d1->weights()), 0.0f);
  }
}

}  // namespace
}  // namespace psml
