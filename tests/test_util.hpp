// Shared test utilities: deterministic matrices, matrix comparison, and the
// two-party harness used by every protocol test.
#pragma once

#include <gtest/gtest.h>

#include <functional>
#include <thread>

#include "mpc/party.hpp"
#include "net/local_channel.hpp"
#include "rng/rng.hpp"
#include "sgpu/device.hpp"
#include "tensor/matrix.hpp"
#include "tensor/ops.hpp"

namespace psml::test {

inline MatrixF random_matrix(std::size_t rows, std::size_t cols,
                             std::uint64_t seed, float lo = -1.0f,
                             float hi = 1.0f) {
  MatrixF m(rows, cols);
  rng::fill_uniform_par(m, lo, hi, seed);
  return m;
}

inline void expect_near(const MatrixF& a, const MatrixF& b, double tol,
                        const char* what = "") {
  ASSERT_TRUE(a.same_shape(b)) << what << ": shape mismatch";
  EXPECT_LE(tensor::max_abs_diff(a, b), tol) << what;
}

// Runs the two server roles on two threads over a fresh LocalChannel pair
// and propagates assertion failures / exceptions.
inline void run_parties(
    const mpc::PartyOptions& opts,
    const std::function<void(mpc::PartyContext&)>& party0,
    const std::function<void(mpc::PartyContext&)>& party1) {
  auto chans = net::LocalChannel::make_pair();
  sgpu::Device* dev = opts.use_gpu ? &sgpu::Device::global() : nullptr;
  mpc::PartyContext ctx0(0, chans.a, dev, opts);
  mpc::PartyContext ctx1(1, chans.b, dev, opts);

  std::exception_ptr err0, err1;
  std::thread t0([&] {
    try {
      party0(ctx0);
    } catch (...) {
      err0 = std::current_exception();
    }
  });
  std::thread t1([&] {
    try {
      party1(ctx1);
    } catch (...) {
      err1 = std::current_exception();
    }
  });
  t0.join();
  t1.join();
  if (err0) std::rethrow_exception(err0);
  if (err1) std::rethrow_exception(err1);
}

}  // namespace psml::test
