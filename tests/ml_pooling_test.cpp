// Average pooling (plain + secure) and momentum optimizer tests.
#include <gtest/gtest.h>

#include "ml/optimizer.hpp"
#include "ml/plain/pooling.hpp"
#include "ml/secure/secure_pooling.hpp"
#include "mpc/share.hpp"
#include "tensor/ops.hpp"
#include "test_util.hpp"

namespace psml::ml {
namespace {

using psml::test::expect_near;
using psml::test::random_matrix;

TEST(AvgPool, KnownAnswer2x2) {
  PoolShape s;
  s.in_h = 4;
  s.in_w = 4;
  s.window = 2;
  MatrixF x(1, 16);
  for (int i = 0; i < 16; ++i) x.data()[i] = static_cast<float>(i);
  AvgPool2D pool(s);
  const MatrixF y = pool.forward(x);
  ASSERT_EQ(y.cols(), 4u);
  // Window (0,0): {0,1,4,5} -> 2.5.
  EXPECT_FLOAT_EQ(y(0, 0), 2.5f);
  EXPECT_FLOAT_EQ(y(0, 1), 4.5f);
  EXPECT_FLOAT_EQ(y(0, 2), 10.5f);
  EXPECT_FLOAT_EQ(y(0, 3), 12.5f);
}

TEST(AvgPool, MultiChannel) {
  PoolShape s;
  s.in_h = 4;
  s.in_w = 4;
  s.channels = 3;
  s.window = 2;
  const MatrixF x = random_matrix(5, s.in_features(), 1201);
  AvgPool2D pool(s);
  const MatrixF y = pool.forward(x);
  EXPECT_EQ(y.cols(), 3u * 4u);
  // Channel 2's first output window equals the mean of its 4 inputs.
  const float* chan2 = x.data() + 2 * 16;
  const float expect =
      (chan2[0] + chan2[1] + chan2[4] + chan2[5]) / 4.0f;
  EXPECT_NEAR(y(0, 2 * 4), expect, 1e-6);
}

TEST(AvgPool, BackwardIsAdjoint) {
  // <pool(x), g> == <x, unpool(g)> — the defining adjoint identity.
  PoolShape s;
  s.in_h = 6;
  s.in_w = 6;
  s.channels = 2;
  s.window = 3;
  const MatrixF x = random_matrix(3, s.in_features(), 1202);
  const MatrixF g = random_matrix(3, s.out_features_(), 1203);
  const MatrixF px = AvgPool2D::pool(x, s);
  const MatrixF ug = AvgPool2D::unpool(g, s);
  double lhs = 0, rhs = 0;
  for (std::size_t i = 0; i < px.size(); ++i) {
    lhs += static_cast<double>(px.data()[i]) * g.data()[i];
  }
  for (std::size_t i = 0; i < x.size(); ++i) {
    rhs += static_cast<double>(x.data()[i]) * ug.data()[i];
  }
  EXPECT_NEAR(lhs, rhs, 1e-3);
}

TEST(AvgPool, RejectsNonDividingWindow) {
  PoolShape s;
  s.in_h = 5;
  s.in_w = 4;
  s.window = 2;
  EXPECT_THROW(AvgPool2D{s}, InvalidArgument);
}

TEST(SecureAvgPool, SharesReconstructToPlainPool) {
  PoolShape s;
  s.in_h = 8;
  s.in_w = 8;
  s.window = 2;
  const MatrixF x = random_matrix(4, s.in_features(), 1204);
  const MatrixF expected = AvgPool2D::pool(x, s);

  auto xs = mpc::share_float(x, 1205);
  SecureAvgPool2D l0(s), l1(s);
  SecureEnv env{nullptr, true, nullptr};  // no ctx needed: pure local layer
  const MatrixF y0 = l0.forward(env, xs.s0);
  const MatrixF y1 = l1.forward(env, xs.s1);
  expect_near(mpc::reconstruct_float(y0, y1), expected, 1e-4,
              "secure avg pool");

  // Backward too.
  const MatrixF g = random_matrix(4, s.out_features_(), 1206);
  auto gs = mpc::share_float(g, 1207);
  const MatrixF dx0 = l0.backward(env, gs.s0);
  const MatrixF dx1 = l1.backward(env, gs.s1);
  expect_near(mpc::reconstruct_float(dx0, dx1), AvgPool2D::unpool(g, s),
              1e-4, "secure unpool");
}

TEST(SecureAvgPool, ConsumesNoTriplets) {
  PoolShape s;
  s.in_h = 4;
  s.in_w = 4;
  SecureAvgPool2D layer(s);
  std::vector<mpc::TripletSpec> specs;
  layer.plan(specs, 16, true);
  EXPECT_TRUE(specs.empty());
}

TEST(Momentum, MatchesManualRecursion) {
  MatrixF w(2, 2, 1.0f);
  const MatrixF g(2, 2, 0.5f);
  MomentumState opt(0.9f);
  // Step 1: v = 0.5; w = 1 - 0.1*0.5 = 0.95
  opt.step(w, g, 0.1f);
  EXPECT_NEAR(w(0, 0), 0.95f, 1e-6);
  // Step 2: v = 0.9*0.5 + 0.5 = 0.95; w = 0.95 - 0.095 = 0.855
  opt.step(w, g, 0.1f);
  EXPECT_NEAR(w(0, 0), 0.855f, 1e-6);
}

TEST(Momentum, SecureSharesTrackPlaintext) {
  // Apply momentum independently to the two shares; the reconstruction must
  // equal plaintext momentum (linearity).
  const MatrixF w0 = random_matrix(4, 4, 1208);
  MatrixF w_plain = w0;
  auto w_shares = mpc::share_float(w0, 1209);
  MomentumState opt_plain(0.9f), opt_s0(0.9f), opt_s1(0.9f);

  for (int step = 0; step < 5; ++step) {
    const MatrixF g = random_matrix(4, 4, 1210 + step);
    auto g_shares = mpc::share_float(g, 1300 + step);
    opt_plain.step(w_plain, g, 0.05f);
    opt_s0.step(w_shares.s0, g_shares.s0, 0.05f);
    opt_s1.step(w_shares.s1, g_shares.s1, 0.05f);
  }
  expect_near(mpc::reconstruct_float(w_shares.s0, w_shares.s1), w_plain,
              1e-3, "secure momentum");
}

TEST(Momentum, IndependentStatePerTensor) {
  MatrixF w1(2, 2, 0.0f), w2(2, 2, 0.0f);
  const MatrixF g(2, 2, 1.0f);
  MomentumState opt(0.5f);
  opt.step(w1, g, 1.0f);
  opt.step(w1, g, 1.0f);
  opt.step(w2, g, 1.0f);
  // w1 took two steps (velocities 1, 1.5): w1 = -2.5; w2 one step: -1.
  EXPECT_NEAR(w1(0, 0), -2.5f, 1e-6);
  EXPECT_NEAR(w2(0, 0), -1.0f, 1e-6);
  opt.reset();
  opt.step(w2, g, 1.0f);
  EXPECT_NEAR(w2(0, 0), -2.0f, 1e-6);  // velocity restarted at g
}

}  // namespace
}  // namespace psml::ml
