// Residual block tests: plaintext gradient correctness and secure/plain
// equivalence (the ResNet-style extension of Sec. 7.7).
#include <gtest/gtest.h>

#include "ml/plain/residual.hpp"
#include "ml/secure/secure_residual.hpp"
#include "ml/models.hpp"
#include "test_util.hpp"

namespace psml::ml {
namespace {

using psml::test::expect_near;
using psml::test::random_matrix;
using psml::test::run_parties;

std::unique_ptr<ResidualBlock> make_plain_block(std::size_t width,
                                                std::uint64_t seed) {
  std::vector<std::unique_ptr<Layer>> inner;
  inner.push_back(
      std::make_unique<Dense>(width, width, Engine::kCpuParallel, seed));
  return std::make_unique<ResidualBlock>(std::move(inner));
}

TEST(ResidualBlock, ForwardIsInnerPlusSkipThenActivation) {
  const std::size_t width = 6, batch = 4;
  auto block = make_plain_block(width, 601);
  Dense same(width, width, Engine::kCpuParallel, 601);
  const MatrixF x = random_matrix(batch, width, 602, -0.2f, 0.2f);

  MatrixF z;
  tensor::add(same.forward(x), x, z);
  PiecewiseActivation act;
  const MatrixF expected = act.forward(z);
  expect_near(block->forward(x), expected, 1e-6, "residual forward");
}

TEST(ResidualBlock, WidthMismatchRejected) {
  std::vector<std::unique_ptr<Layer>> inner;
  inner.push_back(std::make_unique<Dense>(6, 7, Engine::kCpuParallel, 603));
  ResidualBlock block(std::move(inner));
  EXPECT_THROW(block.forward(random_matrix(2, 6, 604)), InvalidArgument);
  EXPECT_THROW(ResidualBlock({}), InvalidArgument);
}

TEST(ResidualBlock, GradientCheck) {
  const std::size_t width = 5, batch = 3;
  auto block = make_plain_block(width, 605);
  MatrixF x = random_matrix(batch, width, 606, -0.2f, 0.2f);
  const MatrixF target = random_matrix(batch, width, 607);

  const MatrixF pred = block->forward(x);
  const auto lr_res = compute_loss(LossKind::kMse, pred, target);
  const MatrixF dx = block->backward(lr_res.grad);

  const float eps = 1e-3f;
  for (std::size_t r = 0; r < batch; ++r) {
    for (std::size_t c = 0; c < width; ++c) {
      auto probe = make_plain_block(width, 605);
      MatrixF xp = x, xm = x;
      xp(r, c) += eps;
      xm(r, c) -= eps;
      const float lp =
          compute_loss(LossKind::kMse, probe->forward(xp), target).value;
      auto probe2 = make_plain_block(width, 605);
      const float lm =
          compute_loss(LossKind::kMse, probe2->forward(xm), target).value;
      const float numeric = (lp - lm) / (2 * eps);
      EXPECT_NEAR(numeric, dx(r, c), 5e-2 * std::abs(numeric) + 2e-3);
    }
  }
}

TEST(SecureResidualBlock, MatchesPlainForwardBackward) {
  const std::size_t width = 8, batch = 6;
  const MatrixF w = xavier_init(width, width, 608);
  const MatrixF x = random_matrix(batch, width, 609, -0.2f, 0.2f);
  const MatrixF dy = random_matrix(batch, width, 610, -0.1f, 0.1f);

  // Plaintext reference.
  std::vector<std::unique_ptr<Layer>> pinner;
  auto pdense = std::make_unique<Dense>(width, width, Engine::kCpuParallel, 1);
  pdense->weights() = w;
  pinner.push_back(std::move(pdense));
  ResidualBlock plain(std::move(pinner));
  const MatrixF y_ref = plain.forward(x);
  const MatrixF dx_ref = plain.backward(dy);

  // Secure twin.
  auto ws = mpc::share_float(w, 611);
  auto bs = mpc::share_float(MatrixF(1, width, 0.0f), 612);
  auto make_secure = [&](int party) {
    std::vector<std::unique_ptr<SecureLayer>> inner;
    inner.push_back(std::make_unique<SecureDense>(
        party == 0 ? ws.s0 : ws.s1, party == 0 ? bs.s0 : bs.s1));
    auto block =
        std::make_unique<SecureResidualBlock>(std::move(inner), width);
    block->set_layer_id(3);
    return block;
  };
  auto b0 = make_secure(0);
  auto b1 = make_secure(1);

  std::vector<mpc::TripletSpec> plan;
  b0->plan(plan, batch, /*training=*/true);
  mpc::TripletDealer dealer(nullptr, {false, false, 613});
  auto [st0, st1] = dealer.generate(plan);
  auto xs = mpc::share_float(x, 614);
  auto dys = mpc::share_float(dy, 615);

  mpc::PartyOptions opts = mpc::PartyOptions::parsecureml();
  opts.use_gpu = false;
  opts.adaptive = false;
  MatrixF y0, y1, dx0, dx1;
  run_parties(
      opts,
      [&](mpc::PartyContext& ctx) {
        ctx.set_triplets(std::move(st0));
        SecureEnv env{&ctx, true, nullptr};
        y0 = b0->forward(env, xs.s0);
        dx0 = b0->backward(env, dys.s0);
      },
      [&](mpc::PartyContext& ctx) {
        ctx.set_triplets(std::move(st1));
        SecureEnv env{&ctx, true, nullptr};
        y1 = b1->forward(env, xs.s1);
        dx1 = b1->backward(env, dys.s1);
      });

  expect_near(mpc::reconstruct_float(y0, y1), y_ref, 5e-3,
              "secure residual forward");
  expect_near(mpc::reconstruct_float(dx0, dx1), dx_ref, 5e-3,
              "secure residual backward");
}

TEST(SecureResidualBlock, NestsInSecureSequential) {
  // Residual block inside a SecureSequential model trains end to end.
  const std::size_t width = 8, batch = 8;
  const MatrixF w_in = xavier_init(width, width, 620);
  auto make_model = [&](int party, const mpc::SharePair<float>& ws,
                        const mpc::SharePair<float>& bs) {
    SecureSequential model;
    std::vector<std::unique_ptr<SecureLayer>> inner;
    inner.push_back(std::make_unique<SecureDense>(
        party == 0 ? ws.s0 : ws.s1, party == 0 ? bs.s0 : bs.s1));
    model.add(std::make_unique<SecureResidualBlock>(std::move(inner), width));
    return model;
  };
  auto ws = mpc::share_float(w_in, 621);
  auto bs = mpc::share_float(MatrixF(1, width, 0.0f), 622);
  auto m0 = make_model(0, ws, bs);
  auto m1 = make_model(1, ws, bs);

  std::vector<mpc::TripletSpec> plan;
  m0.plan_batch(plan, batch, LossKind::kMse, width, true);
  mpc::TripletDealer dealer(nullptr, {false, false, 623});
  auto [st0, st1] = dealer.generate(plan);
  const MatrixF x = random_matrix(batch, width, 624, -0.2f, 0.2f);
  const MatrixF y = random_matrix(batch, width, 625, 0.0f, 1.0f);
  auto xs = mpc::share_float(x, 626);
  auto ys = mpc::share_float(y, 627);

  mpc::PartyOptions opts = mpc::PartyOptions::parsecureml();
  opts.use_gpu = false;
  opts.adaptive = false;
  run_parties(
      opts,
      [&](mpc::PartyContext& ctx) {
        ctx.set_triplets(std::move(st0));
        SecureEnv env{&ctx, true, nullptr};
        secure_train_batch(env, m0, LossKind::kMse, xs.s0, ys.s0, 0.1f);
      },
      [&](mpc::PartyContext& ctx) {
        ctx.set_triplets(std::move(st1));
        SecureEnv env{&ctx, true, nullptr};
        secure_train_batch(env, m1, LossKind::kMse, xs.s1, ys.s1, 0.1f);
      });
  // Weights moved and remain reconstructible.
  auto& d0 = dynamic_cast<SecureResidualBlock&>(m0.layer(0));
  auto& d1 = dynamic_cast<SecureResidualBlock&>(m1.layer(0));
  auto& sd0 = dynamic_cast<SecureDense&>(d0.inner_layer(0));
  auto& sd1 = dynamic_cast<SecureDense&>(d1.inner_layer(0));
  const MatrixF w_after =
      mpc::reconstruct_float(sd0.weight_share(), sd1.weight_share());
  EXPECT_GT(tensor::max_abs_diff(w_after, w_in), 1e-6);
  EXPECT_LT(tensor::fro_norm(w_after), 10 * tensor::fro_norm(w_in) + 10);
}

}  // namespace
}  // namespace psml::ml
