// PartyContext / PartyOptions unit tests: construction contracts, option
// factories, sequence counters, stream salts.
#include <gtest/gtest.h>

#include "mpc/party.hpp"
#include "net/local_channel.hpp"
#include "sgpu/device.hpp"

namespace psml::mpc {
namespace {

TEST(PartyOptions, BaselineDisablesEverything) {
  const auto o = PartyOptions::secureml_baseline();
  EXPECT_FALSE(o.use_gpu);
  EXPECT_FALSE(o.use_pipeline);
  EXPECT_FALSE(o.use_tensor_core);
  EXPECT_FALSE(o.use_compression);
  EXPECT_FALSE(o.fuse_eq8);
  EXPECT_FALSE(o.cpu_parallel);
  EXPECT_FALSE(o.adaptive);
}

TEST(PartyOptions, ParSecureMLEnablesEverything) {
  const auto o = PartyOptions::parsecureml();
  EXPECT_TRUE(o.use_gpu);
  EXPECT_TRUE(o.use_pipeline);
  EXPECT_TRUE(o.use_tensor_core);
  EXPECT_TRUE(o.use_compression);
  EXPECT_TRUE(o.fuse_eq8);
  EXPECT_TRUE(o.cpu_parallel);
  EXPECT_TRUE(o.adaptive);
  EXPECT_DOUBLE_EQ(o.compression_threshold, 0.75);
}

TEST(PartyContext, RejectsBadPartyId) {
  auto chans = net::LocalChannel::make_pair();
  EXPECT_THROW(
      PartyContext(2, chans.a, nullptr, PartyOptions::secureml_baseline()),
      InvalidArgument);
  EXPECT_THROW(
      PartyContext(-1, chans.a, nullptr, PartyOptions::secureml_baseline()),
      InvalidArgument);
}

TEST(PartyContext, RejectsNullChannel) {
  EXPECT_THROW(
      PartyContext(0, nullptr, nullptr, PartyOptions::secureml_baseline()),
      InvalidArgument);
}

TEST(PartyContext, GpuModeRequiresDevice) {
  auto chans = net::LocalChannel::make_pair();
  PartyOptions opts = PartyOptions::parsecureml();
  EXPECT_THROW(PartyContext(0, chans.a, nullptr, opts), InvalidArgument);
  // With a device it constructs and exposes two streams.
  PartyContext ctx(0, chans.a, &sgpu::Device::global(), opts);
  EXPECT_TRUE(ctx.has_device());
  EXPECT_NE(&ctx.copy_stream(), &ctx.compute_stream());
}

TEST(PartyContext, CpuModeHasNoDevice) {
  auto chans = net::LocalChannel::make_pair();
  PartyContext ctx(1, chans.a, nullptr, PartyOptions::secureml_baseline());
  EXPECT_FALSE(ctx.has_device());
  EXPECT_THROW(ctx.device(), Error);
}

TEST(PartyContext, SequenceIsMonotone) {
  auto chans = net::LocalChannel::make_pair();
  PartyContext ctx(0, chans.a, nullptr, PartyOptions::secureml_baseline());
  const auto a = ctx.next_seq();
  const auto b = ctx.next_seq();
  const auto c = ctx.next_seq();
  EXPECT_EQ(b, a + 1);
  EXPECT_EQ(c, b + 1);
}

TEST(PartyContext, StreamSaltRoundTrips) {
  auto chans = net::LocalChannel::make_pair();
  PartyContext ctx(0, chans.a, nullptr, PartyOptions::secureml_baseline());
  EXPECT_EQ(ctx.stream_salt(), 0u);
  ctx.set_stream_salt(7);
  EXPECT_EQ(ctx.stream_salt(), 7u);
}

TEST(PartyContext, CompressionConfigHonorsOptions) {
  auto chans = net::LocalChannel::make_pair();
  PartyOptions opts = PartyOptions::secureml_baseline();
  opts.use_compression = false;
  PartyContext a(0, chans.a, nullptr, opts);
  PartyContext b(1, chans.b, nullptr, opts);
  // Disabled compression: identical resends stay dense (no compressed msgs).
  MatrixF m(8, 8, 1.0f);
  a.compressed().send(1, 5, m);
  (void)b.compressed().recv(1, 5);
  a.compressed().send(1, 5, m);
  (void)b.compressed().recv(1, 5);
  EXPECT_EQ(a.compressed().stats().compressed_messages, 0u);
}

TEST(Tags, FamiliesDoNotOverlap) {
  EXPECT_NE(tags::kExchangeE & 0xff000000u, tags::kExchangeF & 0xff000000u);
  EXPECT_NE(tags::kExchangeE & 0xff000000u, tags::kOpenMasked & 0xff000000u);
  EXPECT_NE(tags::kClientData & 0xff000000u, tags::kResult & 0xff000000u);
  EXPECT_NE(tags::kControl & 0xff000000u, tags::kResult & 0xff000000u);
}

}  // namespace
}  // namespace psml::mpc
