// CRC-32 / CRC-32C kernel validation: every dispatched tier must agree with
// the byte-at-a-time table oracle bit-for-bit over random lengths,
// alignments, and seeds, and seed-chaining must compose over discontiguous
// buffers (the property the scatter-gather send path relies on when it
// checksums a frame fragment by fragment).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

#include "common/crc32.hpp"

namespace psml {
namespace {

// RAII forced-ISA scope so a failing test cannot leak its override into
// later suites in the same binary.
class IsaScope {
 public:
  explicit IsaScope(Crc32Isa isa) : prev_(crc32_isa()) { set_crc32_isa(isa); }
  ~IsaScope() { set_crc32_isa(prev_); }

 private:
  Crc32Isa prev_;
};

std::vector<std::uint8_t> random_bytes(std::size_t n, std::uint32_t seed) {
  std::mt19937 rng(seed);
  std::vector<std::uint8_t> v(n);
  for (auto& b : v) b = static_cast<std::uint8_t>(rng());
  return v;
}

// Check-value vectors: crc of the ASCII string "123456789".
TEST(Crc32, KnownCheckValues) {
  const char* s = "123456789";
  EXPECT_EQ(crc32_table(s, 9), 0xCBF43926u);
  EXPECT_EQ(crc32c_table(s, 9), 0xE3069283u);
  for (Crc32Isa isa :
       {Crc32Isa::kTable, Crc32Isa::kSlice8, Crc32Isa::kHw, Crc32Isa::kAuto}) {
    IsaScope scope(isa);
    EXPECT_EQ(crc32(s, 9), 0xCBF43926u) << crc32_kernel_name();
    EXPECT_EQ(crc32c(s, 9), 0xE3069283u) << crc32c_kernel_name();
  }
}

TEST(Crc32, EmptyAndSeedIdentity) {
  for (Crc32Isa isa :
       {Crc32Isa::kTable, Crc32Isa::kSlice8, Crc32Isa::kHw, Crc32Isa::kAuto}) {
    IsaScope scope(isa);
    EXPECT_EQ(crc32(nullptr, 0), 0u);
    EXPECT_EQ(crc32c(nullptr, 0), 0u);
    EXPECT_EQ(crc32(nullptr, 0, 0xdeadbeefu), 0xdeadbeefu);
    EXPECT_EQ(crc32c(nullptr, 0, 0xdeadbeefu), 0xdeadbeefu);
  }
}

// Every tier against the table oracle over random lengths (covering the
// sub-64-byte scalar path, the fold-loop threshold, and multi-KB buffers),
// every alignment offset 0..15, and random nonzero seeds.
TEST(Crc32, TiersMatchTableOverLengthsAlignmentsSeeds) {
  std::mt19937 rng(0x5eed);
  const auto buf = random_bytes(64 * 1024 + 64, 1);
  std::vector<std::size_t> lengths = {0, 1, 3, 7, 8, 9, 15, 16, 17, 31, 32,
                                      63, 64, 65, 127, 128, 255, 4096};
  for (int i = 0; i < 24; ++i) {
    lengths.push_back(rng() % (48 * 1024));
  }
  for (Crc32Isa isa : {Crc32Isa::kSlice8, Crc32Isa::kHw}) {
    IsaScope scope(isa);
    for (std::size_t len : lengths) {
      for (std::size_t align = 0; align < 16; ++align) {
        const std::uint8_t* p = buf.data() + align;
        const std::uint32_t seed =
            (len % 3 == 0) ? 0u : static_cast<std::uint32_t>(rng());
        EXPECT_EQ(crc32(p, len, seed), crc32_table(p, len, seed))
            << "kernel=" << crc32_kernel_name() << " len=" << len
            << " align=" << align << " seed=" << seed;
        EXPECT_EQ(crc32c(p, len, seed), crc32c_table(p, len, seed))
            << "kernel=" << crc32c_kernel_name() << " len=" << len
            << " align=" << align << " seed=" << seed;
      }
    }
  }
}

// crc(A||B) == crc(B, crc(A)) for every tier and random split points —
// including splits that land mid-word and splits into 3+ fragments, which is
// exactly how the wire path checksums a scatter-gather frame.
TEST(Crc32, SeedChainingOverDiscontiguousBuffers) {
  std::mt19937 rng(0xc4a1);
  const auto buf = random_bytes(8192, 2);
  for (Crc32Isa isa : {Crc32Isa::kTable, Crc32Isa::kSlice8, Crc32Isa::kHw}) {
    IsaScope scope(isa);
    const std::uint32_t whole32 = crc32(buf.data(), buf.size());
    const std::uint32_t whole32c = crc32c(buf.data(), buf.size());
    for (int trial = 0; trial < 50; ++trial) {
      // Random fragmentation into 2..6 pieces.
      const int pieces = 2 + static_cast<int>(rng() % 5);
      std::vector<std::size_t> cuts = {0, buf.size()};
      for (int i = 0; i < pieces - 1; ++i) {
        cuts.push_back(rng() % buf.size());
      }
      std::sort(cuts.begin(), cuts.end());
      std::uint32_t c32 = 0, c32c = 0;
      for (std::size_t i = 0; i + 1 < cuts.size(); ++i) {
        c32 = crc32(buf.data() + cuts[i], cuts[i + 1] - cuts[i], c32);
        c32c = crc32c(buf.data() + cuts[i], cuts[i + 1] - cuts[i], c32c);
      }
      EXPECT_EQ(c32, whole32) << crc32_kernel_name();
      EXPECT_EQ(c32c, whole32c) << crc32c_kernel_name();
    }
  }
}

// A forced tier the CPU lacks must silently fall back, never crash; the
// resolved kernel name reflects what actually runs.
TEST(Crc32, ForcedHwFallsBackWhenUnavailable) {
  IsaScope scope(Crc32Isa::kHw);
  if (!crc32_hw_available()) {
    EXPECT_STREQ(crc32_kernel_name(), "slice8");
  } else {
    EXPECT_STREQ(crc32_kernel_name(), "pclmul");
  }
  if (!crc32c_hw_available()) {
    EXPECT_STREQ(crc32c_kernel_name(), "slice8");
  } else {
    EXPECT_STREQ(crc32c_kernel_name(), "sse42");
  }
  // Whatever resolved, the answer is still right.
  const char* s = "123456789";
  EXPECT_EQ(crc32(s, 9), 0xCBF43926u);
  EXPECT_EQ(crc32c(s, 9), 0xE3069283u);
}

TEST(Crc32, SingleBitFlipChangesCrc) {
  auto buf = random_bytes(1024, 3);
  const std::uint32_t clean32 = crc32(buf.data(), buf.size());
  const std::uint32_t clean32c = crc32c(buf.data(), buf.size());
  std::mt19937 rng(4);
  for (int i = 0; i < 64; ++i) {
    const std::size_t byte = rng() % buf.size();
    const std::uint8_t bit = static_cast<std::uint8_t>(1u << (rng() % 8));
    buf[byte] ^= bit;
    EXPECT_NE(crc32(buf.data(), buf.size()), clean32);
    EXPECT_NE(crc32c(buf.data(), buf.size()), clean32c);
    buf[byte] ^= bit;
  }
}

}  // namespace
}  // namespace psml
