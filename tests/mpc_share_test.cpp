// Secret-sharing and fixed-point ring tests.
#include <gtest/gtest.h>

#include "mpc/ring.hpp"
#include "mpc/share.hpp"
#include "tensor/gemm.hpp"
#include "test_util.hpp"

namespace psml::mpc {
namespace {

using psml::test::expect_near;
using psml::test::random_matrix;

TEST(ShareFloat, ReconstructIdentity) {
  const MatrixF x = random_matrix(33, 21, 101);
  const auto p = share_float(x, 5);
  expect_near(reconstruct_float(p.s0, p.s1), x, 1e-5, "float shares");
}

TEST(ShareFloat, SharesLookRandom) {
  // A share alone must not correlate with the secret: correlation of s0 with
  // x over many entries should be near zero relative to the mask radius.
  MatrixF x(1, 10000, 0.75f);  // constant secret
  const auto p = share_float(x, 6);
  double mean = 0;
  for (std::size_t i = 0; i < p.s0.size(); ++i) mean += p.s0.data()[i];
  mean /= static_cast<double>(p.s0.size());
  EXPECT_NEAR(mean, 0.0, 0.5);  // uniform in [-16, 16]
  // And the share range actually uses the mask radius.
  double max_abs = 0;
  for (std::size_t i = 0; i < p.s0.size(); ++i) {
    max_abs = std::max(max_abs, std::abs(double{p.s0.data()[i]}));
  }
  EXPECT_GT(max_abs, kFloatMaskRadius / 2);
}

TEST(ShareFloat, DifferentSeedsDifferentShares) {
  const MatrixF x = random_matrix(8, 8, 102);
  const auto p1 = share_float(x, 1);
  const auto p2 = share_float(x, 2);
  EXPECT_FALSE(p1.s0 == p2.s0);
}

TEST(ShareRing, ReconstructExact) {
  MatrixU64 x(17, 9);
  rng::fill_uniform_u64_par(x, 103);
  const auto p = share_ring(x, 7);
  EXPECT_TRUE(reconstruct_ring(p.s0, p.s1) == x);
}

TEST(ShareRing, LinearityOfShares) {
  // share(a) + share(b) reconstructs to a + b.
  MatrixU64 a(5, 5), b(5, 5);
  rng::fill_uniform_u64_par(a, 104);
  rng::fill_uniform_u64_par(b, 105);
  const auto pa = share_ring(a, 8);
  const auto pb = share_ring(b, 9);
  const MatrixU64 s0 = ring_add(pa.s0, pb.s0);
  const MatrixU64 s1 = ring_add(pa.s1, pb.s1);
  EXPECT_TRUE(reconstruct_ring(s0, s1) == ring_add(a, b));
}

TEST(Fixed, ScalarCodecRoundTrip) {
  for (double v : {0.0, 1.0, -1.0, 0.5, -0.125, 3.14159, -123.456, 1e-4}) {
    EXPECT_NEAR(decode_fixed(encode_fixed(v)), v, 1.0 / kFixedScale) << v;
  }
}

TEST(Fixed, MatrixCodecRoundTrip) {
  const MatrixF x = random_matrix(13, 11, 106, -10.0f, 10.0f);
  const MatrixF back = decode_fixed(encode_fixed(x));
  expect_near(x, back, 1.0 / kFixedScale, "fixed codec");
}

TEST(Fixed, NegativeValuesTwoComplement) {
  const std::uint64_t enc = encode_fixed(-2.5);
  EXPECT_LT(static_cast<std::int64_t>(enc), 0);
  EXPECT_DOUBLE_EQ(decode_fixed(enc), -2.5);
}

TEST(Ring, AddSubWraparound) {
  MatrixU64 a(1, 1, 0), b(1, 1, 0);
  a.data()[0] = UINT64_MAX;
  b.data()[0] = 2;
  EXPECT_EQ(ring_add(a, b).data()[0], 1u);
  a.data()[0] = 0;
  b.data()[0] = 1;
  EXPECT_EQ(ring_sub(a, b).data()[0], UINT64_MAX);
}

TEST(Ring, MatmulMatchesFloatForSmallValues) {
  const MatrixF af = random_matrix(9, 7, 107);
  const MatrixF bf = random_matrix(7, 5, 108);
  const MatrixU64 a = encode_fixed(af);
  const MatrixU64 b = encode_fixed(bf);
  MatrixU64 c = ring_matmul(a, b);
  // Product carries 2*kFracBits fractional bits; truncate both... this is
  // plaintext so a single arithmetic shift is exact.
  for (std::size_t i = 0; i < c.size(); ++i) {
    c.data()[i] = static_cast<std::uint64_t>(
        static_cast<std::int64_t>(c.data()[i]) >> kFracBits);
  }
  const MatrixF ref = tensor::matmul(af, bf);
  expect_near(decode_fixed(c), ref, 7.0 * 2.0 / kFixedScale, "ring matmul");
}

TEST(Ring, TruncationPairApproximatesShift) {
  // trunc(v0) + trunc(v1) must equal trunc(v0 + v1) within 1 ulp.
  const MatrixF xf = random_matrix(50, 50, 109, -100.0f, 100.0f);
  const MatrixU64 x = encode_fixed(xf);
  // Scale up as if after a product.
  MatrixU64 scaled(x.rows(), x.cols());
  for (std::size_t i = 0; i < x.size(); ++i) {
    scaled.data()[i] = x.data()[i] << kFracBits;
  }
  const auto p = share_ring(scaled, 10);
  const MatrixU64 t0 = truncate_share(p.s0, 0);
  const MatrixU64 t1 = truncate_share(p.s1, 1);
  const MatrixU64 rec = reconstruct_ring(t0, t1);
  const MatrixF back = decode_fixed(rec);
  expect_near(back, xf, 2.5 / kFixedScale, "truncation");
}

TEST(Ring, MatmulDimMismatchThrows) {
  EXPECT_THROW(ring_matmul(MatrixU64(2, 3), MatrixU64(4, 2)), InvalidArgument);
}

TEST(Ring, TruncateRejectsBadParty) {
  EXPECT_THROW(truncate_share(MatrixU64(1, 1), 2), InvalidArgument);
}

}  // namespace
}  // namespace psml::mpc
