// Unit tests for src/common: half floats, thread pool, parallel_for, timers,
// env parsing, error macros.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <numeric>
#include <thread>
#include <vector>

#include "common/aligned.hpp"
#include "common/env.hpp"
#include "common/error.hpp"
#include "common/half.hpp"
#include "common/log.hpp"
#include "common/thread_pool.hpp"
#include "common/timer.hpp"

namespace psml {
namespace {

TEST(Half, RoundTripExactValues) {
  // Values exactly representable in binary16 survive a round trip.
  const float exact[] = {0.0f, 1.0f,  -1.0f, 0.5f,  -0.5f, 2.0f,
                         1.5f, 0.25f, 100.0f, -320.5f, 65504.0f};
  for (float f : exact) {
    EXPECT_EQ(half_bits_to_float(float_to_half_bits(f)), f) << f;
  }
}

TEST(Half, RoundTripIsClose) {
  // Arbitrary floats round to within half-precision ulp (~0.1% relative).
  for (int i = -200; i <= 200; ++i) {
    const float f = 0.037f * static_cast<float>(i) * std::pow(1.1f, i % 7);
    const float r = half_bits_to_float(float_to_half_bits(f));
    if (f == 0.0f) {
      EXPECT_EQ(r, 0.0f);
    } else {
      EXPECT_NEAR(r / f, 1.0f, 1.0f / 1024.0f) << f;
    }
  }
}

TEST(Half, Overflow) {
  EXPECT_TRUE(std::isinf(half_bits_to_float(float_to_half_bits(1e6f))));
  EXPECT_TRUE(std::isinf(half_bits_to_float(float_to_half_bits(-1e6f))));
  EXPECT_LT(half_bits_to_float(float_to_half_bits(-1e6f)), 0.0f);
}

TEST(Half, NaN) {
  const float nan = std::nanf("");
  EXPECT_TRUE(std::isnan(half_bits_to_float(float_to_half_bits(nan))));
}

TEST(Half, Subnormals) {
  // Smallest positive half subnormal is 2^-24 ~ 5.96e-8.
  const float tiny = 6.0e-8f;
  const float r = half_bits_to_float(float_to_half_bits(tiny));
  EXPECT_GT(r, 0.0f);
  EXPECT_NEAR(r, tiny, 6.0e-8);
  // Values below half the smallest subnormal flush to zero.
  EXPECT_EQ(half_bits_to_float(float_to_half_bits(1.0e-9f)), 0.0f);
}

TEST(Half, ExhaustiveRoundTripAllEncodings) {
  // Every finite binary16 bit pattern must survive half -> float -> half
  // exactly (float holds all halfs; conversion back must round-trip).
  int checked = 0;
  for (std::uint32_t bits = 0; bits <= 0xFFFFu; ++bits) {
    const auto h = static_cast<std::uint16_t>(bits);
    const std::uint32_t exp = (h >> 10) & 0x1F;
    if (exp == 0x1F) continue;  // inf/NaN: payload normalization allowed
    const float f = half_bits_to_float(h);
    const std::uint16_t back = float_to_half_bits(f);
    if (h == 0x8000u) {
      // -0 may round-trip to -0; require sign+zero preserved.
      ASSERT_EQ(back & 0x7FFFu, 0u);
    } else {
      ASSERT_EQ(back, h) << "bits 0x" << std::hex << bits;
    }
    ++checked;
  }
  EXPECT_EQ(checked, 0x10000 - 2 * 0x400);  // all finite encodings
}

TEST(Log, LevelsFilterAndRoundTrip) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  // Below-threshold logging must be a no-op (no crash, no output check
  // needed — the macro's guard is what we exercise).
  PSML_DEBUG("this must be filtered " << 42);
  set_log_level(LogLevel::kTrace);
  EXPECT_EQ(log_level(), LogLevel::kTrace);
  set_log_level(before);
}

TEST(Half, SignPreserved) {
  for (float f : {-3.5f, -0.125f, -65000.0f}) {
    EXPECT_LT(half_bits_to_float(float_to_half_bits(f)), 0.0f) << f;
  }
}

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futs;
  for (int i = 0; i < 50; ++i) {
    futs.push_back(pool.submit([&counter] { counter.fetch_add(1); }));
  }
  for (auto& f : futs) f.wait();
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(10000);
  pool.parallel_for(0, hits.size(), [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
  });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, ParallelForEmptyRange) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(5, 5, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, ParallelForRespectsGrainAlignment) {
  ThreadPool pool(4);
  std::mutex m;
  std::vector<std::pair<std::size_t, std::size_t>> chunks;
  const std::size_t grain = 16;
  pool.parallel_for(
      0, 1000,
      [&](std::size_t lo, std::size_t hi) {
        std::lock_guard<std::mutex> lock(m);
        chunks.emplace_back(lo, hi);
      },
      grain);
  for (const auto& [lo, hi] : chunks) {
    EXPECT_EQ(lo % grain, 0u) << "chunk start not grain-aligned";
  }
}

TEST(ThreadPool, ParallelForPropagatesException) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallel_for(0, 100000,
                        [](std::size_t lo, std::size_t) {
                          if (lo > 0) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
}

TEST(ThreadPool, GlobalPoolIsSingleton) {
  EXPECT_EQ(&ThreadPool::global(), &ThreadPool::global());
  EXPECT_GE(ThreadPool::global().size(), 1u);
}

TEST(ThreadPool, SubmitAfterShutdownThrowsTypedError) {
  ThreadPool pool(2);
  pool.shutdown();
  // The typed exception (not a bare std::runtime_error) so callers can
  // distinguish lifecycle misuse from task failures; it is still a
  // psml::Error for blanket handlers.
  EXPECT_THROW(pool.submit([] {}), ShutdownError);
  EXPECT_THROW(pool.submit([] {}), Error);
}

TEST(ThreadPool, ShutdownRunsAlreadyQueuedTasks) {
  ThreadPool pool(1);
  std::atomic<int> ran{0};
  std::vector<std::future<void>> futs;
  for (int i = 0; i < 16; ++i) {
    futs.push_back(pool.submit([&] {
      std::this_thread::sleep_for(std::chrono::microseconds(100));
      ran.fetch_add(1);
    }));
  }
  pool.shutdown();
  EXPECT_EQ(ran.load(), 16);
  for (auto& f : futs) f.get();  // all futures are fulfilled, none broken
}

TEST(ThreadPool, ParallelForPropagatesExactlyOneException) {
  // "First one wins": every chunk throws a distinct message, the caller sees
  // exactly one of them, and the pool survives to run more work.
  ThreadPool pool(4);
  std::atomic<int> thrown{0};
  try {
    pool.parallel_for(0, 100000, [&](std::size_t lo, std::size_t) {
      thrown.fetch_add(1);
      throw std::runtime_error("boom@" + std::to_string(lo));
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_EQ(std::string(e.what()).rfind("boom@", 0), 0u) << e.what();
  }
  EXPECT_GE(thrown.load(), 1);
  std::atomic<int> ran{0};
  pool.parallel_for(0, 1000, [&](std::size_t lo, std::size_t hi) {
    ran.fetch_add(static_cast<int>(hi - lo));
  });
  EXPECT_EQ(ran.load(), 1000);
}

TEST(ThreadPool, ParallelForPropagatesExceptionFromWorkerThread) {
  // Force the throwing chunk onto a pool thread (not the caller) to check
  // cross-thread propagation, retrying since chunk assignment is racy.
  ThreadPool pool(4);
  const std::thread::id caller = std::this_thread::get_id();
  bool propagated_from_worker = false;
  for (int attempt = 0; attempt < 50 && !propagated_from_worker; ++attempt) {
    try {
      pool.parallel_for(0, 64 * 16, [&](std::size_t, std::size_t) {
        if (std::this_thread::get_id() != caller) {
          throw std::logic_error("worker boom");
        }
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      });
    } catch (const std::logic_error&) {
      propagated_from_worker = true;
    }
  }
  EXPECT_TRUE(propagated_from_worker);
}

TEST(Timer, MeasuresElapsed) {
  Timer t;
  volatile double x = 0;
  for (int i = 0; i < 100000; ++i) x = x + 1;
  EXPECT_GT(t.seconds(), 0.0);
  EXPECT_GE(t.nanos(), 0);
}

TEST(Stopwatch, Accumulates) {
  Stopwatch sw;
  sw.start();
  sw.stop();
  sw.add(1.5);
  EXPECT_GE(sw.seconds(), 1.5);
  sw.reset();
  EXPECT_EQ(sw.seconds(), 0.0);
}

TEST(Env, ParsesAndFallsBack) {
  ::setenv("PSML_TEST_NUM", "42", 1);
  EXPECT_EQ(env_size_t("PSML_TEST_NUM", 7), 42u);
  EXPECT_EQ(env_size_t("PSML_TEST_MISSING", 7), 7u);
  ::setenv("PSML_TEST_BAD", "xyz", 1);
  EXPECT_EQ(env_size_t("PSML_TEST_BAD", 7), 7u);
  ::setenv("PSML_TEST_DBL", "2.5", 1);
  EXPECT_DOUBLE_EQ(env_double("PSML_TEST_DBL", 1.0), 2.5);
  EXPECT_EQ(env_string("PSML_TEST_MISSING", "dflt"), "dflt");
}

TEST(Error, CheckMacroThrows) {
  EXPECT_THROW(PSML_CHECK(1 == 2), Error);
  EXPECT_NO_THROW(PSML_CHECK(1 == 1));
  EXPECT_THROW(PSML_REQUIRE(false, "nope"), InvalidArgument);
}

TEST(Error, HierarchyIsSound) {
  EXPECT_THROW(throw NetworkError("x"), Error);
  EXPECT_THROW(throw ProtocolError("x"), Error);
  EXPECT_THROW(throw DeviceError("x"), Error);
}

TEST(Aligned, AllocatorAligns) {
  AlignedAllocator<float> alloc;
  float* p = alloc.allocate(100);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % kCacheLineBytes, 0u);
  alloc.deallocate(p, 100);
}

}  // namespace
}  // namespace psml
