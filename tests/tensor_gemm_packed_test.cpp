// Packed-engine property tests: every forced ISA tier must agree with
// gemm_naive across transposes, alpha/beta, ragged shapes, and non-finite
// inputs — and the parallel engine must be bit-identical to the serial one.
//
// These pin the kernel-semantics bugs fixed in PR 4: the seed kernels
// skipped `a == 0` terms (dropping 0 * NaN = NaN and 0 * Inf = NaN), and
// beta == 0 semantics differed between tiers when C held garbage.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "tensor/gemm.hpp"
#include "test_util.hpp"

namespace psml::tensor {
namespace {

using psml::test::random_matrix;

// Restores the process-wide kernel selection on scope exit so a failing
// assertion cannot leak a forced ISA into other suites.
struct IsaGuard {
  ~IsaGuard() { set_gemm_isa(GemmIsa::kAuto); }
};

// NaN-aware elementwise comparison: both NaN, or within tol.
void expect_same_semantics(const MatrixF& ref, const MatrixF& got, double tol,
                           const std::string& what) {
  ASSERT_TRUE(ref.same_shape(got)) << what;
  for (std::size_t i = 0; i < ref.size(); ++i) {
    const float r = ref.data()[i], g = got.data()[i];
    if (std::isnan(r)) {
      EXPECT_TRUE(std::isnan(g)) << what << " at " << i << ": ref NaN, got " << g;
    } else if (std::isinf(r)) {
      EXPECT_EQ(r, g) << what << " at " << i;
    } else {
      EXPECT_NEAR(r, g, tol) << what << " at " << i;
    }
  }
}

std::vector<GemmIsa> isas_under_test() {
  std::vector<GemmIsa> v{GemmIsa::kScalar};
  if (gemm_simd_available()) v.push_back(GemmIsa::kSimd);
  return v;
}

const char* isa_name(GemmIsa isa) {
  return isa == GemmIsa::kScalar ? "scalar" : "simd";
}

TEST(GemmPacked, AllTransAlphaBetaRaggedShapesMatchNaive) {
  IsaGuard guard;
  struct Shape {
    std::size_t m, k, n;
  };
  // Deliberately straddle the tile plan: MR=6/NR=16 register tiles,
  // MC=72/KC=256/NC=512 cache blocks.
  const Shape shapes[] = {{1, 1, 1},   {6, 16, 16},  {7, 17, 18},
                          {5, 300, 3}, {73, 257, 33}, {64, 64, 513}};
  const float alphas[] = {0.0f, 1.0f, -1.0f, 0.5f};
  const float betas[] = {0.0f, 1.0f, 2.0f, -0.5f};
  for (GemmIsa isa : isas_under_test()) {
    set_gemm_isa(isa);
    for (const auto& s : shapes) {
      for (int ta = 0; ta < 2; ++ta) {
        for (int tb = 0; tb < 2; ++tb) {
          const Trans tta = ta ? Trans::kYes : Trans::kNo;
          const Trans ttb = tb ? Trans::kYes : Trans::kNo;
          const MatrixF a = ta ? random_matrix(s.k, s.m, 1) : random_matrix(s.m, s.k, 1);
          const MatrixF b = tb ? random_matrix(s.n, s.k, 2) : random_matrix(s.k, s.n, 2);
          // Cycle alpha/beta with the shape so the sweep stays cheap but
          // every pair appears against several shapes/transposes.
          for (std::size_t c = 0; c < 4; ++c) {
            const float alpha = alphas[(c + s.m) % 4];
            const float beta = betas[(c + s.n) % 4];
            MatrixF c_ref = random_matrix(s.m, s.n, 7);
            MatrixF c_got = c_ref;
            gemm_naive(alpha, a, tta, b, ttb, beta, c_ref);
            gemm_blocked(alpha, a, tta, b, ttb, beta, c_got);
            expect_same_semantics(
                c_ref, c_got, 1e-3 * static_cast<double>(s.k),
                std::string(isa_name(isa)) + " m" + std::to_string(s.m) + "k" +
                    std::to_string(s.k) + "n" + std::to_string(s.n) + " ta" +
                    std::to_string(ta) + "tb" + std::to_string(tb) + " a" +
                    std::to_string(alpha) + " b" + std::to_string(beta));
          }
        }
      }
    }
  }
}

TEST(GemmPacked, NaNAndInfPropagateThroughZeroRows) {
  // Regression for the seed kernels' `av == 0` skip: a zero row in A times a
  // NaN/Inf column in B must produce NaN (0 * NaN = NaN, 0 * Inf = NaN), as
  // the naive reference computes. The seed blocked kernel silently returned
  // 0 here.
  IsaGuard guard;
  const std::size_t n = 37;  // ragged against every tile size
  MatrixF a = random_matrix(n, n, 3);
  MatrixF b = random_matrix(n, n, 4);
  for (std::size_t j = 0; j < n; ++j) a(5, j) = 0.0f;  // zero row
  b(11, 7) = std::numeric_limits<float>::quiet_NaN();
  b(23, 2) = std::numeric_limits<float>::infinity();
  b(24, 2) = -std::numeric_limits<float>::infinity();

  MatrixF c_ref(n, n), c_got(n, n);
  gemm_naive(1.0f, a, Trans::kNo, b, Trans::kNo, 0.0f, c_ref);
  // The reference must see NaN in the zero row (this is the semantic the
  // seed kernel dropped).
  ASSERT_TRUE(std::isnan(c_ref(5, 7)));
  ASSERT_TRUE(std::isnan(c_ref(5, 2)));
  for (GemmIsa isa : isas_under_test()) {
    set_gemm_isa(isa);
    gemm_blocked(1.0f, a, Trans::kNo, b, Trans::kNo, 0.0f, c_got);
    expect_same_semantics(c_ref, c_got, 1e-2, isa_name(isa));
    gemm_parallel(1.0f, a, Trans::kNo, b, Trans::kNo, 0.0f, c_got);
    expect_same_semantics(c_ref, c_got, 1e-2, isa_name(isa));
  }
}

TEST(GemmPacked, SignedZeroInputsAgreeWithNaive) {
  IsaGuard guard;
  const std::size_t n = 19;
  MatrixF a(n, n, 0.0f), b = random_matrix(n, n, 5);
  for (std::size_t i = 0; i < a.size(); i += 2) a.data()[i] = -0.0f;
  MatrixF c_ref(n, n), c_got(n, n);
  gemm_naive(-1.0f, a, Trans::kNo, b, Trans::kNo, 0.0f, c_ref);
  for (GemmIsa isa : isas_under_test()) {
    set_gemm_isa(isa);
    gemm_blocked(-1.0f, a, Trans::kNo, b, Trans::kNo, 0.0f, c_got);
    expect_same_semantics(c_ref, c_got, 0.0, isa_name(isa));
  }
}

TEST(GemmPacked, BetaZeroOverwritesNaNGarbageInC) {
  // BLAS semantics shared by every tier: beta == 0 means "overwrite", so
  // NaN garbage in an uninitialized C never leaks into the product.
  IsaGuard guard;
  const std::size_t n = 23;
  const MatrixF a = random_matrix(n, n, 6);
  const MatrixF b = random_matrix(n, n, 7);
  MatrixF c_ref(n, n, std::numeric_limits<float>::quiet_NaN());
  MatrixF c_got = c_ref;
  gemm_naive(1.0f, a, Trans::kNo, b, Trans::kNo, 0.0f, c_ref);
  for (std::size_t i = 0; i < c_ref.size(); ++i) {
    ASSERT_FALSE(std::isnan(c_ref.data()[i]));
  }
  for (GemmIsa isa : isas_under_test()) {
    set_gemm_isa(isa);
    gemm_blocked(1.0f, a, Trans::kNo, b, Trans::kNo, 0.0f, c_got);
    expect_same_semantics(c_ref, c_got, 1e-3 * n, isa_name(isa));
  }
}

TEST(GemmPacked, SerialAndParallelAreBitIdentical) {
  // The 2-D tile partition gives every C element one owner tile and a fixed
  // k-block order, so thread count cannot perturb float summation order:
  // gemm_blocked and gemm_parallel must agree to the bit, run after run.
  IsaGuard guard;
  struct Shape {
    std::size_t m, k, n;
  };
  // Big enough to clear the parallel cutoff and span several MCxNC tiles.
  const Shape shapes[] = {{150, 300, 520}, {73, 600, 513}};
  for (GemmIsa isa : isas_under_test()) {
    set_gemm_isa(isa);
    for (const auto& s : shapes) {
      const MatrixF a = random_matrix(s.m, s.k, 8);
      const MatrixF b = random_matrix(s.k, s.n, 9);
      MatrixF c_serial(s.m, s.n), c_par(s.m, s.n), c_par2(s.m, s.n);
      gemm_blocked(0.75f, a, Trans::kNo, b, Trans::kNo, 0.0f, c_serial);
      gemm_parallel(0.75f, a, Trans::kNo, b, Trans::kNo, 0.0f, c_par);
      gemm_parallel(0.75f, a, Trans::kNo, b, Trans::kNo, 0.0f, c_par2);
      ASSERT_EQ(0, std::memcmp(c_serial.data(), c_par.data(), c_serial.bytes()))
          << isa_name(isa);
      ASSERT_EQ(0, std::memcmp(c_par.data(), c_par2.data(), c_par.bytes()))
          << isa_name(isa);
    }
  }
}

TEST(GemmPacked, KZeroAppliesBetaOnly) {
  IsaGuard guard;
  const MatrixF a(5, 0), b(0, 9);
  MatrixF c_ref(5, 9, 3.0f), c_got = c_ref;
  gemm_naive(1.0f, a, Trans::kNo, b, Trans::kNo, 2.0f, c_ref);
  gemm_blocked(1.0f, a, Trans::kNo, b, Trans::kNo, 2.0f, c_got);
  expect_same_semantics(c_ref, c_got, 0.0, "k=0 beta=2");
  MatrixF z_ref(5, 9, 7.0f), z_got = z_ref;
  gemm_naive(1.0f, a, Trans::kNo, b, Trans::kNo, 0.0f, z_ref);
  gemm_blocked(1.0f, a, Trans::kNo, b, Trans::kNo, 0.0f, z_got);
  expect_same_semantics(z_ref, z_got, 0.0, "k=0 beta=0");
}

TEST(GemmPacked, KernelSelectionApi) {
  IsaGuard guard;
  const std::size_t rev0 = gemm_kernel_revision();
  set_gemm_isa(GemmIsa::kScalar);
  EXPECT_EQ(gemm_isa(), GemmIsa::kScalar);
  EXPECT_STREQ(gemm_kernel_name(), "scalar-6x16");
  EXPECT_GT(gemm_kernel_revision(), rev0);
  if (gemm_simd_available()) {
    set_gemm_isa(GemmIsa::kSimd);
    EXPECT_STREQ(gemm_kernel_name(), "avx2fma-6x16");
  }
}

}  // namespace
}  // namespace psml::tensor
