// CSR tests: round trips, SpMM, wire format, and poisoned-input rejection.
#include <gtest/gtest.h>

#include <cstring>

#include "sparse/csr.hpp"
#include "tensor/gemm.hpp"
#include "tensor/ops.hpp"
#include "test_util.hpp"

namespace psml::sparse {
namespace {

using psml::test::expect_near;
using psml::test::random_matrix;

MatrixF sparse_random(std::size_t rows, std::size_t cols, double density,
                      std::uint64_t seed) {
  MatrixF m = random_matrix(rows, cols, seed);
  MatrixF mask(rows, cols);
  psml::rng::fill_uniform_par(mask, 0.0f, 1.0f, seed ^ 0xFF);
  for (std::size_t i = 0; i < m.size(); ++i) {
    if (mask.data()[i] > density) m.data()[i] = 0.0f;
  }
  return m;
}

class CsrDensity : public ::testing::TestWithParam<double> {};

TEST_P(CsrDensity, DenseRoundTrip) {
  const MatrixF dense = sparse_random(37, 53, GetParam(), 41);
  const Csr csr = Csr::from_dense(dense);
  expect_near(csr.to_dense(), dense, 0.0, "round trip");
}

TEST_P(CsrDensity, SerializeRoundTrip) {
  const MatrixF dense = sparse_random(23, 31, GetParam(), 42);
  const Csr csr = Csr::from_dense(dense);
  const auto bytes = csr.serialize();
  EXPECT_EQ(bytes.size(), csr.wire_bytes());
  const Csr back = Csr::deserialize(bytes.data(), bytes.size());
  EXPECT_TRUE(csr == back);
  expect_near(back.to_dense(), dense, 0.0, "wire round trip");
}

TEST_P(CsrDensity, SpmmMatchesDense) {
  const MatrixF a = sparse_random(19, 29, GetParam(), 43);
  const MatrixF x = random_matrix(29, 7, 44);
  const Csr csr = Csr::from_dense(a);
  expect_near(csr.spmm(x), tensor::matmul(a, x), 1e-4, "spmm");
}

INSTANTIATE_TEST_SUITE_P(Densities, CsrDensity,
                         ::testing::Values(0.0, 0.05, 0.25, 0.5, 1.0));

TEST(Csr, EmptyMatrix) {
  const MatrixF dense(0, 0);
  const Csr csr = Csr::from_dense(dense);
  EXPECT_EQ(csr.nnz(), 0u);
  const auto bytes = csr.serialize();
  const Csr back = Csr::deserialize(bytes.data(), bytes.size());
  EXPECT_TRUE(csr == back);
}

TEST(Csr, AllZeroMatrix) {
  const MatrixF dense(5, 9, 0.0f);
  const Csr csr = Csr::from_dense(dense);
  EXPECT_EQ(csr.nnz(), 0u);
  EXPECT_LT(csr.wire_bytes(), dense.bytes());
  expect_near(csr.to_dense(), dense, 0.0, "zeros");
}

TEST(Csr, AddToAccumulates) {
  const MatrixF delta = sparse_random(8, 8, 0.2, 45);
  MatrixF acc = random_matrix(8, 8, 46);
  MatrixF expected;
  tensor::add(acc, delta, expected);
  Csr::from_dense(delta).add_to(acc);
  expect_near(acc, expected, 0.0, "add_to");
}

TEST(Csr, AddToShapeMismatchThrows) {
  const Csr csr = Csr::from_dense(MatrixF(3, 3, 1.0f));
  MatrixF wrong(4, 3);
  EXPECT_THROW(csr.add_to(wrong), InvalidArgument);
}

TEST(Csr, SpmmDimMismatchThrows) {
  const Csr csr = Csr::from_dense(MatrixF(3, 5, 1.0f));
  EXPECT_THROW(csr.spmm(MatrixF(4, 2)), InvalidArgument);
}

TEST(Csr, WireBytesSmallerWhenSparse) {
  const MatrixF dense = sparse_random(100, 100, 0.05, 47);
  const Csr csr = Csr::from_dense(dense);
  EXPECT_LT(csr.wire_bytes(), csr.dense_bytes() / 2);
}

// ---- poisoned wire input ----------------------------------------------------

TEST(CsrDeserialize, TruncatedHeader) {
  std::vector<std::uint8_t> buf(4, 0);
  EXPECT_THROW(Csr::deserialize(buf.data(), buf.size()), ProtocolError);
}

TEST(CsrDeserialize, SizeMismatch) {
  const Csr csr = Csr::from_dense(MatrixF(3, 3, 1.0f));
  auto bytes = csr.serialize();
  bytes.pop_back();
  EXPECT_THROW(Csr::deserialize(bytes.data(), bytes.size()), ProtocolError);
  bytes.push_back(0);
  bytes.push_back(0);
  EXPECT_THROW(Csr::deserialize(bytes.data(), bytes.size()), ProtocolError);
}

TEST(CsrDeserialize, OutOfRangeColumnIndex) {
  MatrixF dense(2, 2, 1.0f);
  auto bytes = Csr::from_dense(dense).serialize();
  // Column indices start after header (12B) + row_ptr (3 * 4B).
  const std::size_t col_off = 12 + 3 * 4;
  std::uint32_t bad = 999;
  std::memcpy(bytes.data() + col_off, &bad, sizeof(bad));
  EXPECT_THROW(Csr::deserialize(bytes.data(), bytes.size()), ProtocolError);
}

TEST(CsrDeserialize, NonMonotoneRowPtr) {
  MatrixF dense(2, 2, 1.0f);
  auto bytes = Csr::from_dense(dense).serialize();
  // row_ptr lives right after the 12-byte header: values {0, 2, 4}.
  std::uint32_t bad = 3;
  std::memcpy(bytes.data() + 12, &bad, sizeof(bad));  // row_ptr[0] = 3
  EXPECT_THROW(Csr::deserialize(bytes.data(), bytes.size()), ProtocolError);
}

}  // namespace
}  // namespace psml::sparse
