// Two-party secure matmul tests: correctness of the triplet protocol across
// every execution mode (Eq. 6 naive, Eq. 8 CPU, Eq. 8 GPU pipelined, Tensor
// Core, compression on/off) and the elementwise protocol.
#include <gtest/gtest.h>

#include "mpc/secure_matmul.hpp"
#include "mpc/secure_mul.hpp"
#include "mpc/share.hpp"
#include "mpc/triplet.hpp"
#include "tensor/gemm.hpp"
#include "tensor/ops.hpp"
#include "test_util.hpp"

namespace psml::mpc {
namespace {

using psml::test::expect_near;
using psml::test::random_matrix;
using psml::test::run_parties;

// Tolerance: float shares carry mask radius ~16, so reconstruction noise is
// ~16 * k * eps per output element.
double tol(std::size_t k) { return 2e-4 * static_cast<double>(k) + 1e-4; }

struct ModeCase {
  const char* name;
  PartyOptions opts;
};

std::vector<ModeCase> all_modes() {
  std::vector<ModeCase> modes;
  modes.push_back({"secureml_baseline", PartyOptions::secureml_baseline()});
  modes.push_back({"parsecureml_full", PartyOptions::parsecureml()});

  PartyOptions cpu_eq8 = PartyOptions::parsecureml();
  cpu_eq8.use_gpu = false;
  cpu_eq8.adaptive = false;
  modes.push_back({"cpu_eq8", cpu_eq8});

  PartyOptions gpu_nopipe = PartyOptions::parsecureml();
  gpu_nopipe.use_pipeline = false;
  gpu_nopipe.adaptive = false;
  modes.push_back({"gpu_no_pipeline", gpu_nopipe});

  PartyOptions gpu_pipe = PartyOptions::parsecureml();
  gpu_pipe.adaptive = false;  // force GPU even for small matrices
  modes.push_back({"gpu_pipelined", gpu_pipe});

  PartyOptions gpu_no_tc = PartyOptions::parsecureml();
  gpu_no_tc.adaptive = false;
  gpu_no_tc.use_tensor_core = false;
  modes.push_back({"gpu_fp32", gpu_no_tc});

  PartyOptions no_comp = PartyOptions::parsecureml();
  no_comp.use_compression = false;
  modes.push_back({"no_compression", no_comp});

  PartyOptions eq6_parallel = PartyOptions::parsecureml();
  eq6_parallel.use_gpu = false;
  eq6_parallel.adaptive = false;
  eq6_parallel.fuse_eq8 = false;
  modes.push_back({"cpu_eq6", eq6_parallel});
  return modes;
}

class SecureMatmulModes : public ::testing::TestWithParam<ModeCase> {};

TEST_P(SecureMatmulModes, ReconstructsToPlainProduct) {
  const auto& mode = GetParam();
  const std::size_t m = 24, k = 40, n = 16;
  const MatrixF a = random_matrix(m, k, 201);
  const MatrixF b = random_matrix(k, n, 202);
  const MatrixF expected = tensor::matmul(a, b);

  sgpu::Device* dev =
      mode.opts.use_gpu ? &sgpu::Device::global() : nullptr;
  TripletDealer dealer(dev, {mode.opts.use_gpu, false, 77});
  auto [t0, t1] = dealer.make_matmul(m, k, n);
  const auto sa = share_float(a, 11);
  const auto sb = share_float(b, 12);

  MatrixF c0, c1;
  run_parties(
      mode.opts,
      [&](PartyContext& ctx) { c0 = secure_matmul(ctx, sa.s0, sb.s0, t0); },
      [&](PartyContext& ctx) { c1 = secure_matmul(ctx, sa.s1, sb.s1, t1); });

  // The tensor-core mode quantizes E/F/A/B to fp16 on the device, so allow a
  // proportionally larger tolerance there.
  const double t = mode.opts.use_tensor_core && mode.opts.use_gpu
                       ? 0.3
                       : tol(k);
  expect_near(reconstruct_float(c0, c1), expected, t, mode.name);
}

TEST_P(SecureMatmulModes, SequenceOfMultiplications) {
  // Chained products (the shape of a forward pass) stay correct.
  const auto& mode = GetParam();
  const std::size_t n = 12;
  const MatrixF a = random_matrix(n, n, 203);
  const MatrixF b = random_matrix(n, n, 204);
  const MatrixF c = random_matrix(n, n, 205);
  const MatrixF expected = tensor::matmul(tensor::matmul(a, b), c);

  sgpu::Device* dev =
      mode.opts.use_gpu ? &sgpu::Device::global() : nullptr;
  TripletDealer dealer(dev, {mode.opts.use_gpu, false, 78});
  auto [t0a, t1a] = dealer.make_matmul(n, n, n);
  auto [t0b, t1b] = dealer.make_matmul(n, n, n);
  const auto sa = share_float(a, 13);
  const auto sb = share_float(b, 14);
  const auto sc = share_float(c, 15);

  MatrixF r0, r1;
  run_parties(
      mode.opts,
      [&](PartyContext& ctx) {
        MatrixF ab = secure_matmul(ctx, sa.s0, sb.s0, t0a);
        r0 = secure_matmul(ctx, ab, sc.s0, t0b);
      },
      [&](PartyContext& ctx) {
        MatrixF ab = secure_matmul(ctx, sa.s1, sb.s1, t1a);
        r1 = secure_matmul(ctx, ab, sc.s1, t1b);
      });

  const double t = mode.opts.use_tensor_core && mode.opts.use_gpu
                       ? 0.6
                       : 10 * tol(n);
  expect_near(reconstruct_float(r0, r1), expected, t, mode.name);
}

INSTANTIATE_TEST_SUITE_P(Modes, SecureMatmulModes,
                         ::testing::ValuesIn(all_modes()),
                         [](const auto& info) { return info.param.name; });

TEST(SecureMatmul, CoalescedExchangeIsOneMessagePerParty) {
  // The E/F reconstruction sends both masked operands in ONE coalesced
  // channel message per direction (half the frames, half the syscalls).
  const std::size_t m = 8, k = 8, n = 8;
  const MatrixF a = random_matrix(m, k, 301);
  const MatrixF b = random_matrix(k, n, 302);

  PartyOptions opts = PartyOptions::parsecureml();
  opts.use_gpu = false;
  opts.adaptive = false;

  TripletDealer dealer(nullptr, {false, false, 77});
  auto [t0, t1] = dealer.make_matmul(m, k, n);
  const auto sa = share_float(a, 21);
  const auto sb = share_float(b, 22);

  MatrixF c0, c1;
  std::uint64_t sent0 = 0, sent1 = 0;
  run_parties(
      opts,
      [&](PartyContext& ctx) {
        c0 = secure_matmul(ctx, sa.s0, sb.s0, t0);
        sent0 = ctx.peer().stats().messages_sent.load();
      },
      [&](PartyContext& ctx) {
        c1 = secure_matmul(ctx, sa.s1, sb.s1, t1);
        sent1 = ctx.peer().stats().messages_sent.load();
      });

  EXPECT_EQ(sent0, 1u);
  EXPECT_EQ(sent1, 1u);
  expect_near(reconstruct_float(c0, c1), tensor::matmul(a, b), tol(k));
}

TEST(SecureMatmul, NonSquareShapes) {
  const std::size_t m = 3, k = 57, n = 21;
  const MatrixF a = random_matrix(m, k, 206);
  const MatrixF b = random_matrix(k, n, 207);
  TripletDealer dealer(nullptr, {false, false, 79});
  auto [t0, t1] = dealer.make_matmul(m, k, n);
  const auto sa = share_float(a, 16);
  const auto sb = share_float(b, 17);
  PartyOptions opts = PartyOptions::parsecureml();
  opts.use_gpu = false;
  opts.adaptive = false;
  MatrixF c0, c1;
  run_parties(
      opts,
      [&](PartyContext& ctx) { c0 = secure_matmul(ctx, sa.s0, sb.s0, t0); },
      [&](PartyContext& ctx) { c1 = secure_matmul(ctx, sa.s1, sb.s1, t1); });
  expect_near(reconstruct_float(c0, c1), tensor::matmul(a, b), tol(k),
              "non-square");
}

TEST(SecureMatmul, TripletShapeMismatchThrows) {
  TripletDealer dealer(nullptr, {false, false, 80});
  auto [t0, t1] = dealer.make_matmul(4, 4, 4);
  PartyOptions opts = PartyOptions::secureml_baseline();
  const MatrixF wrong = random_matrix(5, 4, 208);
  const MatrixF b = random_matrix(4, 4, 209);
  EXPECT_THROW(
      run_parties(
          opts,
          [&](PartyContext& ctx) { secure_matmul(ctx, wrong, b, t0); },
          [&](PartyContext& ctx) { secure_matmul(ctx, wrong, b, t1); }),
      InvalidArgument);
}

TEST(SecureMatmul, StorePopsInOrder) {
  TripletDealer dealer(nullptr, {false, false, 81});
  auto [st0, st1] = dealer.generate({{TripletKind::kMatMul, 4, 6, 5},
                                     {TripletKind::kMatMul, 2, 3, 2}});
  EXPECT_EQ(st0.matmul_size(), 2u);
  const TripletShare first = st0.pop_matmul();
  EXPECT_EQ(first.u.rows(), 4u);
  EXPECT_EQ(first.u.cols(), 6u);
  const TripletShare second = st0.pop_matmul();
  EXPECT_EQ(second.u.rows(), 2u);
  EXPECT_THROW(st0.pop_matmul(), Error);
}

TEST(SecureMatmul, DealerTripletsAreConsistent) {
  // U, V, Z reconstruct to a valid Beaver triple: Z = U x V.
  sgpu::Device& dev = sgpu::Device::global();
  TripletDealer dealer(&dev, {true, false, 82});
  auto [t0, t1] = dealer.make_matmul(13, 9, 7);
  const MatrixF u = reconstruct_float(t0.u, t1.u);
  const MatrixF v = reconstruct_float(t0.v, t1.v);
  const MatrixF z = reconstruct_float(t0.z, t1.z);
  expect_near(z, tensor::matmul(u, v), tol(9), "dealer invariant");
}

TEST(SecureMul, ElementwiseReconstructs) {
  const std::size_t m = 15, n = 33;
  const MatrixF x = random_matrix(m, n, 210);
  const MatrixF y = random_matrix(m, n, 211);
  MatrixF expected;
  tensor::hadamard(x, y, expected);

  TripletDealer dealer(nullptr, {false, false, 83});
  auto [t0, t1] = dealer.make_elementwise(m, n);
  const auto sx = share_float(x, 18);
  const auto sy = share_float(y, 19);
  PartyOptions opts = PartyOptions::parsecureml();
  opts.use_gpu = false;
  MatrixF c0, c1;
  run_parties(
      opts,
      [&](PartyContext& ctx) { c0 = secure_mul(ctx, sx.s0, sy.s0, t0); },
      [&](PartyContext& ctx) { c1 = secure_mul(ctx, sx.s1, sy.s1, t1); });
  expect_near(reconstruct_float(c0, c1), expected, 1e-3, "secure_mul");
}

TEST(SecureMul, ShapeMismatchThrows) {
  TripletDealer dealer(nullptr, {false, false, 84});
  auto [t0, t1] = dealer.make_elementwise(3, 3);
  PartyOptions opts = PartyOptions::secureml_baseline();
  const MatrixF x = random_matrix(3, 3, 212);
  const MatrixF y = random_matrix(3, 4, 213);
  EXPECT_THROW(
      run_parties(
          opts, [&](PartyContext& ctx) { secure_mul(ctx, x, y, t0); },
          [&](PartyContext& ctx) { secure_mul(ctx, x, y, t1); }),
      InvalidArgument);
}

TEST(SecureMatmul, CompressionAcrossEpochsReducesTraffic) {
  // Same operands re-multiplied epoch after epoch (stable comm keys): the
  // E/F deltas are zero, so compressed mode sends far fewer bytes.
  const std::size_t n = 48;
  const MatrixF a = random_matrix(n, n, 214);
  const MatrixF b = random_matrix(n, n, 215);
  const auto sa = share_float(a, 20);
  const auto sb = share_float(b, 21);

  auto run_epochs = [&](bool compression) {
    PartyOptions opts = PartyOptions::parsecureml();
    opts.use_gpu = false;
    opts.adaptive = false;
    opts.use_compression = compression;
    TripletDealer dealer(nullptr, {false, false, 85});
    constexpr int kEpochs = 5;
    std::vector<std::pair<TripletShare, TripletShare>> triplets;
    for (int e = 0; e < kEpochs; ++e) triplets.push_back(dealer.make_matmul(n, n, n));
    std::uint64_t total_sent = 0;
    run_parties(
        opts,
        [&](PartyContext& ctx) {
          for (int e = 0; e < kEpochs; ++e) {
            // NOTE: the triplet changes per epoch, so E/F change too; but
            // re-using the *same* triplet each epoch models the all-zero
            // delta case. Use triplets[0] deliberately.
            (void)secure_matmul(ctx, sa.s0, sb.s0, triplets[0].first, 4242);
          }
          total_sent = ctx.peer().stats().bytes_sent.load();
        },
        [&](PartyContext& ctx) {
          for (int e = 0; e < kEpochs; ++e) {
            (void)secure_matmul(ctx, sa.s1, sb.s1, triplets[0].second, 4242);
          }
        });
    return total_sent;
  };

  const std::uint64_t with = run_epochs(true);
  const std::uint64_t without = run_epochs(false);
  EXPECT_LT(with, without / 2);
}

}  // namespace
}  // namespace psml::mpc
