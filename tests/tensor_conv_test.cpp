// im2col / col2im / direct convolution equivalence and adjoint properties.
#include <gtest/gtest.h>

#include "tensor/gemm.hpp"
#include "tensor/im2col.hpp"
#include "tensor/ops.hpp"
#include "test_util.hpp"

namespace psml::tensor {
namespace {

using psml::test::expect_near;
using psml::test::random_matrix;

struct ConvCase {
  std::size_t h, w, c, kernel, stride, pad, out_c, batch;
};

class ConvShapes : public ::testing::TestWithParam<ConvCase> {};

ConvShape to_shape(const ConvCase& cc) {
  ConvShape s;
  s.in_h = cc.h;
  s.in_w = cc.w;
  s.in_c = cc.c;
  s.kernel = cc.kernel;
  s.stride = cc.stride;
  s.pad = cc.pad;
  s.out_c = cc.out_c;
  return s;
}

TEST_P(ConvShapes, Im2colGemmMatchesDirect) {
  const auto cc = GetParam();
  const ConvShape s = to_shape(cc);
  const MatrixF input = random_matrix(cc.batch, s.in_c * s.in_h * s.in_w, 31);
  const MatrixF weights = random_matrix(s.out_c, s.patch_cols(), 32);

  const MatrixF direct = conv2d_direct(input, weights, s);

  const MatrixF patches = im2col(input, s);
  // P x W^T gives rows (b, oy, ox) by out_c; rearrange like conv2d_direct.
  const MatrixF flat = matmul(patches, transpose(weights));
  const std::size_t spatial = s.out_h() * s.out_w();
  MatrixF lowered(cc.batch, s.out_c * spatial);
  for (std::size_t b = 0; b < cc.batch; ++b) {
    for (std::size_t sp = 0; sp < spatial; ++sp) {
      for (std::size_t f = 0; f < s.out_c; ++f) {
        lowered(b, f * spatial + sp) = flat(b * spatial + sp, f);
      }
    }
  }
  expect_near(direct, lowered, 1e-3, "im2col+gemm vs direct");
}

TEST_P(ConvShapes, Col2imIsAdjointOfIm2col) {
  // <im2col(x), p> == <x, col2im(p)> for all x, p — the defining property of
  // the transpose/adjoint, which is exactly what backward needs.
  const auto cc = GetParam();
  const ConvShape s = to_shape(cc);
  const MatrixF x = random_matrix(cc.batch, s.in_c * s.in_h * s.in_w, 33);
  const MatrixF p = random_matrix(s.patch_rows(cc.batch), s.patch_cols(), 34);

  const MatrixF ix = im2col(x, s);
  const MatrixF cp = col2im(p, s, cc.batch);

  double lhs = 0.0, rhs = 0.0;
  for (std::size_t i = 0; i < ix.size(); ++i) {
    lhs += static_cast<double>(ix.data()[i]) * p.data()[i];
  }
  for (std::size_t i = 0; i < x.size(); ++i) {
    rhs += static_cast<double>(x.data()[i]) * cp.data()[i];
  }
  EXPECT_NEAR(lhs, rhs, 1e-2 * std::abs(lhs) + 1e-3);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ConvShapes,
    ::testing::Values(ConvCase{8, 8, 1, 3, 1, 0, 2, 2},
                      ConvCase{12, 10, 1, 5, 1, 0, 4, 3},
                      ConvCase{9, 9, 2, 3, 2, 0, 3, 2},
                      ConvCase{8, 8, 1, 3, 1, 1, 2, 1},
                      ConvCase{16, 16, 3, 5, 2, 2, 4, 2},
                      ConvCase{5, 5, 1, 5, 1, 0, 1, 4}));

TEST(Conv, OutputDims) {
  ConvShape s;
  s.in_h = 28;
  s.in_w = 28;
  s.kernel = 5;
  EXPECT_EQ(s.out_h(), 24u);
  EXPECT_EQ(s.out_w(), 24u);
  s.stride = 2;
  EXPECT_EQ(s.out_h(), 12u);
  s.pad = 2;
  EXPECT_EQ(s.out_h(), 14u);
}

TEST(Conv, KernelLargerThanInputThrows) {
  ConvShape s;
  s.in_h = 3;
  s.in_w = 3;
  s.kernel = 5;
  EXPECT_THROW(s.out_h(), InvalidArgument);
}

TEST(Conv, InputWidthValidated) {
  ConvShape s;
  s.in_h = 8;
  s.in_w = 8;
  const MatrixF bad(2, 63);
  EXPECT_THROW(im2col(bad, s), InvalidArgument);
  const MatrixF w(1, 999);
  const MatrixF good(2, 64);
  EXPECT_THROW(conv2d_direct(good, w, s), InvalidArgument);
}

TEST(Conv, KnownAnswer3x3) {
  // 3x3 image, 2x2-equivalent: kernel 3 with one output pixel = plain dot.
  ConvShape s;
  s.in_h = 3;
  s.in_w = 3;
  s.kernel = 3;
  s.out_c = 1;
  MatrixF img(1, 9);
  for (int i = 0; i < 9; ++i) img.data()[i] = static_cast<float>(i + 1);
  MatrixF w(1, 9, 1.0f);
  const MatrixF out = conv2d_direct(img, w, s);
  ASSERT_EQ(out.cols(), 1u);
  EXPECT_FLOAT_EQ(out(0, 0), 45.0f);
}

}  // namespace
}  // namespace psml::tensor
