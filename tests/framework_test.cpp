// End-to-end framework tests: run_training / run_inference across modes and
// models, phase accounting, compression stats, and accuracy.
#include <gtest/gtest.h>

#include "parsecureml/framework.hpp"
#include "parsecureml/store_transfer.hpp"
#include "net/local_channel.hpp"

#include <cstdio>
#include <fstream>
#include <thread>

namespace psml::parsecureml {
namespace {

RunConfig small_config(ml::ModelKind model, Mode mode) {
  RunConfig cfg;
  cfg.model = model;
  cfg.dataset = data::DatasetKind::kMnist;
  cfg.samples = 32;
  cfg.batch = 16;
  cfg.epochs = 1;
  cfg.lr = 0.2f;
  cfg.mode = mode;
  cfg.seed = 1234;
  return cfg;
}

class AllModelsSecure : public ::testing::TestWithParam<ml::ModelKind> {};

TEST_P(AllModelsSecure, ParSecureMLTrainingRuns) {
  RunConfig cfg = small_config(GetParam(), Mode::kParSecureML);
  if (GetParam() == ml::ModelKind::kRnn) {
    cfg.dataset = data::DatasetKind::kSynthetic;
  }
  const RunResult r = run_training(cfg);
  EXPECT_GT(r.online_sec, 0.0);
  EXPECT_GT(r.offline_generate_sec, 0.0);
  EXPECT_GT(r.total_sec, r.online_sec);
  EXPECT_GT(r.server_to_server_bytes, 0u);
  EXPECT_GT(r.offline_bytes, 0u);
  EXPECT_GT(r.online_phases.count("online.communicate"), 0u);
  EXPECT_GT(r.online_phases.count("online.compute2"), 0u);
}

TEST_P(AllModelsSecure, SecureMLBaselineTrainingRuns) {
  RunConfig cfg = small_config(GetParam(), Mode::kSecureML);
  if (GetParam() == ml::ModelKind::kRnn) {
    cfg.dataset = data::DatasetKind::kSynthetic;
  }
  const RunResult r = run_training(cfg);
  EXPECT_GT(r.online_sec, 0.0);
  EXPECT_EQ(r.compression.compressed_messages, 0u);  // disabled in baseline
}

INSTANTIATE_TEST_SUITE_P(
    Models, AllModelsSecure,
    ::testing::Values(ml::ModelKind::kMlp, ml::ModelKind::kCnn,
                      ml::ModelKind::kLinear, ml::ModelKind::kLogistic,
                      ml::ModelKind::kSvm, ml::ModelKind::kRnn),
    [](const auto& info) { return ml::to_string(info.param); });

TEST(Framework, PlainModesRun) {
  for (const Mode mode : {Mode::kPlainCpu, Mode::kPlainGpu}) {
    const RunResult r =
        run_training(small_config(ml::ModelKind::kLogistic, mode));
    EXPECT_GT(r.online_sec, 0.0) << to_string(mode);
    EXPECT_EQ(r.server_to_server_bytes, 0u) << to_string(mode);
  }
}

TEST(Framework, SecureTrainingLearns) {
  RunConfig cfg = small_config(ml::ModelKind::kLogistic, Mode::kParSecureML);
  cfg.samples = 64;
  cfg.batch = 64;
  cfg.epochs = 25;
  cfg.lr = 0.05f;
  const RunResult r = run_training(cfg);
  // Threshold leaves headroom for the (intentionally random) refresh-mask
  // noise; typical runs land well above 0.85.
  EXPECT_GT(r.accuracy, 0.75) << "secure logistic regression must learn";
}

TEST(Framework, SecureMatchesPlainAccuracyApproximately) {
  RunConfig cfg = small_config(ml::ModelKind::kLinear, Mode::kParSecureML);
  cfg.samples = 64;
  cfg.batch = 64;
  cfg.epochs = 8;
  cfg.lr = 0.02f;
  const RunResult secure = run_training(cfg);
  cfg.mode = Mode::kPlainCpu;
  const RunResult plain = run_training(cfg);
  EXPECT_NEAR(secure.accuracy, plain.accuracy, 0.15);
}

TEST(Framework, InferenceRunsAndScores) {
  RunConfig cfg = small_config(ml::ModelKind::kMlp, Mode::kParSecureML);
  const RunResult r = run_inference(cfg);
  EXPECT_GT(r.online_sec, 0.0);
  EXPECT_GE(r.accuracy, 0.0);
  EXPECT_LE(r.accuracy, 1.0);
}

TEST(Framework, InferenceCheaperThanTraining) {
  RunConfig cfg = small_config(ml::ModelKind::kMlp, Mode::kParSecureML);
  cfg.evaluate = false;
  const RunResult train = run_training(cfg);
  const RunResult infer = run_inference(cfg);
  EXPECT_LT(infer.server_to_server_bytes, train.server_to_server_bytes);
  EXPECT_LT(infer.offline_bytes, train.offline_bytes);
}

TEST(Framework, CustomModeAblation) {
  RunConfig cfg = small_config(ml::ModelKind::kMlp, Mode::kCustom);
  cfg.custom_opts = mpc::PartyOptions::parsecureml();
  cfg.custom_opts.use_compression = false;
  const RunResult without = run_training(cfg);
  EXPECT_EQ(without.compression.compressed_messages, 0u);

  cfg.custom_opts.use_compression = true;
  cfg.epochs = 3;  // deltas need history to compress
  const RunResult with = run_training(cfg);
  EXPECT_GE(with.compression.messages, 1u);
}

TEST(Framework, MultiEpochCompressionSavesBytes) {
  RunConfig cfg = small_config(ml::ModelKind::kLinear, Mode::kCustom);
  cfg.samples = 32;
  cfg.batch = 32;
  cfg.epochs = 6;
  cfg.evaluate = false;
  cfg.custom_opts = mpc::PartyOptions::parsecureml();
  cfg.custom_opts.use_gpu = false;
  cfg.custom_opts.adaptive = false;

  cfg.custom_opts.use_compression = true;
  const RunResult with = run_training(cfg);
  cfg.custom_opts.use_compression = false;
  const RunResult without = run_training(cfg);
  // The X operand repeats every epoch (same batch), so E-deltas are zero and
  // compressed traffic must be clearly smaller.
  EXPECT_LT(with.server_to_server_bytes, without.server_to_server_bytes);
  EXPECT_GT(with.compression.savings(), 0.05);
}

TEST(Framework, OfflinePhaseBreakdownPopulated) {
  const RunResult r =
      run_training(small_config(ml::ModelKind::kMlp, Mode::kParSecureML));
  EXPECT_GT(r.offline_generate_sec, 0.0);
  EXPECT_GT(r.offline_transmit_sec, 0.0);
  // Sanity: offline phases are part of total.
  EXPECT_LE(r.offline_generate_sec + r.offline_transmit_sec + r.online_sec,
            r.total_sec * 1.01);
}

TEST(StoreTransfer, RoundTripsAllKinds) {
  mpc::TripletDealer dealer(nullptr, {false, false, 1010});
  auto [st0, st1] = dealer.generate({{mpc::TripletKind::kMatMul, 4, 6, 5},
                                     {mpc::TripletKind::kElementwise, 3, 0, 7},
                                     {mpc::TripletKind::kActivation, 2, 0, 9}});
  auto chans = net::LocalChannel::make_pair();
  std::thread sender([&] { send_store(*chans.a, st0); });
  mpc::TripletStore received = recv_store(*chans.b);
  sender.join();
  ASSERT_EQ(received.matmul_size(), 1u);
  ASSERT_EQ(received.elementwise_size(), 1u);
  ASSERT_EQ(received.activation_size(), 1u);
  const auto t = received.pop_matmul();
  EXPECT_TRUE(t.u == st0.matmuls()[0].u);
  EXPECT_TRUE(t.z == st0.matmuls()[0].z);
  const auto a = received.pop_activation();
  EXPECT_TRUE(a.s_lo == st0.activations()[0].s_lo);
}

TEST(Framework, MiniBatchSecureMatchesPlain) {
  // Multiple batches per epoch: the secure schedule (per-batch stream salts,
  // per-batch triplets, recycled across epochs) must track plaintext SGD.
  RunConfig cfg = small_config(ml::ModelKind::kLogistic, Mode::kParSecureML);
  cfg.samples = 48;
  cfg.batch = 16;  // 3 batches per epoch
  cfg.epochs = 6;
  cfg.lr = 0.05f;
  const RunResult secure = run_training(cfg);
  cfg.mode = Mode::kPlainCpu;
  const RunResult plain = run_training(cfg);
  EXPECT_NEAR(secure.accuracy, plain.accuracy, 0.15);
}

TEST(Framework, CheckpointPathWritesModel) {
  RunConfig cfg = small_config(ml::ModelKind::kLinear, Mode::kParSecureML);
  cfg.checkpoint_path = "/tmp/psml_framework_ckpt.bin";
  const RunResult r = run_training(cfg);
  (void)r;
  std::ifstream is(cfg.checkpoint_path, std::ios::binary);
  EXPECT_TRUE(is.good());
  is.close();
  std::remove(cfg.checkpoint_path.c_str());
}

TEST(Framework, InvalidConfigsRejected) {
  RunConfig cfg = small_config(ml::ModelKind::kMlp, Mode::kParSecureML);
  cfg.samples = 0;
  EXPECT_THROW(run_training(cfg), InvalidArgument);
  cfg = small_config(ml::ModelKind::kMlp, Mode::kParSecureML);
  cfg.batch = 0;
  EXPECT_THROW(run_training(cfg), InvalidArgument);
  cfg = small_config(ml::ModelKind::kMlp, Mode::kParSecureML);
  cfg.epochs = 0;
  EXPECT_THROW(run_inference(cfg), InvalidArgument);
  cfg = small_config(ml::ModelKind::kMlp, Mode::kParSecureML);
  cfg.lr = -1.0f;
  EXPECT_THROW(run_training(cfg), InvalidArgument);
  cfg = small_config(ml::ModelKind::kRnn, Mode::kParSecureML);
  cfg.dataset = data::DatasetKind::kSynthetic;
  cfg.rnn_steps = 7;  // 2048 features not divisible by 7
  EXPECT_THROW(run_training(cfg), InvalidArgument);
}

TEST(Framework, ModeNames) {
  EXPECT_EQ(to_string(Mode::kParSecureML), "ParSecureML");
  EXPECT_EQ(to_string(Mode::kSecureML), "SecureML");
}

}  // namespace
}  // namespace psml::parsecureml
