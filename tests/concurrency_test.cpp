// Multi-threaded hammer tests for the concurrency primitives (ThreadPool,
// AsyncLane, sgpu::Stream/Event, LocalChannel, TcpChannel).
//
// These are the regression tests for the TSan-clean pass: each one drives a
// primitive from several threads at once so that a reintroduced data race or
// lock-order problem shows up under `ctest -L tsan` (thread-sanitizer
// preset). They also pin down the documented shutdown semantics: submit/run
// racing shutdown either completes or throws psml::ShutdownError — work is
// never silently dropped.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "net/local_channel.hpp"
#include "net/tcp_channel.hpp"
#include "pipeline/async_lane.hpp"
#include "profile/adaptive.hpp"
#include "sgpu/stream.hpp"

namespace psml {
namespace {

TEST(ThreadPoolHammer, ManyConcurrentSubmitters) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  std::vector<std::thread> submitters;
  std::vector<std::vector<std::future<void>>> futs(4);
  for (int t = 0; t < 4; ++t) {
    submitters.emplace_back([&, t] {
      for (int i = 0; i < 200; ++i) {
        futs[t].push_back(pool.submit([&] { ran.fetch_add(1); }));
      }
    });
  }
  for (auto& s : submitters) s.join();
  for (auto& v : futs) {
    for (auto& f : v) f.wait();
  }
  EXPECT_EQ(ran.load(), 4 * 200);
}

TEST(ThreadPoolHammer, SubmitRacingShutdownCompletesOrThrows) {
  for (int round = 0; round < 5; ++round) {
    ThreadPool pool(2);
    std::atomic<int> accepted{0}, ran{0};
    std::vector<std::thread> submitters;
    for (int t = 0; t < 3; ++t) {
      submitters.emplace_back([&] {
        for (int i = 0; i < 500; ++i) {
          try {
            pool.submit([&] { ran.fetch_add(1); });
            accepted.fetch_add(1);
          } catch (const ShutdownError&) {
            // Expected once shutdown wins the race; nothing was enqueued.
          }
        }
      });
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    pool.shutdown();
    for (auto& s : submitters) s.join();
    // Every accepted task must have run: shutdown drains the queue.
    EXPECT_EQ(ran.load(), accepted.load());
    // And the pool is now terminally closed.
    EXPECT_THROW(pool.submit([] {}), ShutdownError);
  }
}

TEST(ThreadPoolHammer, ConcurrentParallelForCallsOnOnePool) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 1 << 14;
  std::vector<std::vector<int>> arrays(4, std::vector<int>(kN, 0));
  std::vector<std::thread> drivers;
  for (int t = 0; t < 4; ++t) {
    drivers.emplace_back([&, t] {
      pool.parallel_for(0, kN, [&, t](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) arrays[t][i] += 1;
      });
    });
  }
  for (auto& d : drivers) d.join();
  for (const auto& a : arrays) {
    for (int v : a) ASSERT_EQ(v, 1);
  }
}

TEST(AsyncLaneHammer, DrainRacingRunNeverLosesTasks) {
  pipeline::AsyncLane lane;
  std::atomic<int> ran{0};
  std::atomic<bool> go{true};
  std::vector<std::thread> producers;
  for (int t = 0; t < 2; ++t) {
    producers.emplace_back([&] {
      for (int i = 0; i < 300; ++i) lane.run([&] { ran.fetch_add(1); });
    });
  }
  std::thread drainer([&] {
    while (go.load()) lane.drain();
  });
  for (auto& p : producers) p.join();
  go.store(false);
  drainer.join();
  // All submissions happened-before this drain, so it covers them all.
  lane.drain();
  EXPECT_EQ(ran.load(), 2 * 300);
}

TEST(AsyncLaneHammer, RunRacingStopCompletesOrThrows) {
  for (int round = 0; round < 5; ++round) {
    pipeline::AsyncLane lane;
    std::atomic<int> accepted{0}, ran{0};
    std::vector<std::thread> producers;
    for (int t = 0; t < 3; ++t) {
      producers.emplace_back([&] {
        for (int i = 0; i < 500; ++i) {
          try {
            lane.run([&] { ran.fetch_add(1); });
            accepted.fetch_add(1);
          } catch (const ShutdownError&) {
          }
        }
      });
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    lane.stop();
    for (auto& p : producers) p.join();
    EXPECT_EQ(ran.load(), accepted.load());
    EXPECT_THROW(lane.run([] {}), ShutdownError);
  }
}

TEST(StreamHammer, EnqueueRacingSynchronize) {
  sgpu::Stream stream;
  std::atomic<int> ran{0};
  std::atomic<bool> go{true};
  std::thread syncer([&] {
    while (go.load()) stream.synchronize();
  });
  std::vector<std::thread> producers;
  for (int t = 0; t < 2; ++t) {
    producers.emplace_back([&] {
      for (int i = 0; i < 300; ++i) stream.enqueue([&] { ran.fetch_add(1); });
    });
  }
  for (auto& p : producers) p.join();
  go.store(false);
  syncer.join();
  stream.synchronize();
  EXPECT_EQ(ran.load(), 2 * 300);
}

TEST(StreamHammer, EventOrderingAcrossStreamsUnderLoad) {
  // Producer stream writes a slot, records an event; consumer stream waits on
  // the event before reading the slot. Any missing synchronization in
  // Event/Stream shows up as a torn read here (and as a TSan report).
  sgpu::Stream producer, consumer;
  for (int i = 0; i < 100; ++i) {
    int slot = 0;
    producer.enqueue([&slot, i] { slot = i + 1; });
    sgpu::Event e = producer.record_event();
    consumer.wait_event(e);
    int seen = -1;
    consumer.enqueue([&slot, &seen] { seen = slot; });
    consumer.synchronize();
    ASSERT_EQ(seen, i + 1);
  }
  producer.synchronize();
}

TEST(StreamHammer, HostWaitersOnOneEvent) {
  sgpu::Stream stream;
  stream.enqueue(
      [] { std::this_thread::sleep_for(std::chrono::milliseconds(5)); });
  sgpu::Event e = stream.record_event();
  std::atomic<int> woke{0};
  std::vector<std::thread> waiters;
  for (int t = 0; t < 4; ++t) {
    waiters.emplace_back([&] {
      e.wait();
      woke.fetch_add(1);
    });
  }
  for (auto& w : waiters) w.join();
  EXPECT_EQ(woke.load(), 4);
  EXPECT_TRUE(e.ready());
}

TEST(LocalChannelHammer, BidirectionalTraffic) {
  auto pair = net::LocalChannel::make_pair();
  constexpr int kMsgs = 500;
  std::thread peer([&] {
    for (int i = 0; i < kMsgs; ++i) {
      net::Message m = pair.b->recv(1);
      pair.b->send(2, m.payload);
    }
  });
  for (int i = 0; i < kMsgs; ++i) {
    const std::vector<std::uint8_t> payload{static_cast<std::uint8_t>(i & 0xff)};
    pair.a->send(1, payload);
    net::Message echo = pair.a->recv(2);
    ASSERT_EQ(echo.payload.size(), 1u);
    ASSERT_EQ(echo.payload[0], static_cast<std::uint8_t>(i & 0xff));
  }
  peer.join();
}

TEST(LocalChannelHammer, CloseRacingBlockedRecv) {
  for (int round = 0; round < 10; ++round) {
    auto pair = net::LocalChannel::make_pair();
    std::atomic<bool> receiving{false};
    std::thread receiver([&] {
      receiving.store(true);
      EXPECT_THROW(pair.a->recv(7), NetworkError);
    });
    while (!receiving.load()) std::this_thread::yield();
    pair.b->close();
    receiver.join();
  }
}

TEST(AdaptiveDispatchHammer, DecideRacingCalibrate) {
  // Regression for the unsynchronized model_ publication: decide() used to
  // read the model fields while calibrate() was mid-assignment, so readers
  // could observe a torn model (calibrated == true with a half-written fit).
  // Now the model is a mutex-guarded snapshot; this drives both sides hard
  // enough that any reintroduced race is a TSan report and any torn read
  // shows up as a nonsensical estimate.
  profile::AdaptiveDispatch d;
  sgpu::Device& dev = sgpu::Device::global();
  std::atomic<bool> go{true};
  std::vector<std::thread> deciders;
  for (int t = 0; t < 3; ++t) {
    deciders.emplace_back([&] {
      while (go.load()) {
        const auto dec = d.decide(256, 256, 256);
        // A published model is always internally consistent: estimates are
        // finite and non-negative (zero while uncalibrated/stale).
        ASSERT_GE(dec.est_cpu_sec, 0.0);
        ASSERT_GE(dec.est_gpu_sec, 0.0);
        const auto snap = d.model();
        if (snap.calibrated) {
          ASSERT_GT(snap.cpu_sec_per_flop, 0.0);
        }
      }
    });
  }
  // Tiny probe sizes keep each calibration cheap; ~20 rounds still spans
  // many decide() iterations per publication.
  for (int round = 0; round < 20; ++round) d.calibrate(dev, 16, 32);
  go.store(false);
  for (auto& t : deciders) t.join();
  EXPECT_TRUE(d.model().calibrated);
}

TEST(TcpChannelHammer, CloseRacingBlockedRecv) {
  // Regression for the fd_ data race: close() from one thread while another
  // is blocked in recv() must atomically claim the descriptor; the blocked
  // recv fails with NetworkError instead of reading freed/reused state.
  const std::uint16_t port = 39266;
  std::shared_ptr<net::Channel> server;
  std::thread listener([&] { server = net::TcpChannel::listen(port); });
  auto client = net::TcpChannel::connect("127.0.0.1", port, 5.0);
  listener.join();

  std::atomic<bool> receiving{false};
  std::thread receiver([&] {
    receiving.store(true);
    EXPECT_THROW(client->recv(1), NetworkError);
  });
  while (!receiving.load()) std::this_thread::yield();
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  client->close();
  receiver.join();
  server->close();
}

}  // namespace
}  // namespace psml
