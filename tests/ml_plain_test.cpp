// Plaintext ML stack tests: numerical gradient checks per layer, loss
// functions, engine equivalence, training convergence.
#include <gtest/gtest.h>

#include "data/datasets.hpp"
#include "ml/models.hpp"
#include "ml/plain/layers.hpp"
#include "ml/plain/model.hpp"
#include "ml/plain/rnn.hpp"
#include "tensor/ops.hpp"
#include "test_util.hpp"

namespace psml::ml {
namespace {

using psml::test::expect_near;
using psml::test::random_matrix;

// Central-difference gradient check for a Dense layer through MSE loss.
TEST(Dense, NumericalGradientCheck) {
  const std::size_t batch = 4, in = 6, out = 3;
  Dense layer(in, out, Engine::kCpuParallel, 55);
  const MatrixF x = random_matrix(batch, in, 501);
  const MatrixF target = random_matrix(batch, out, 502);

  auto loss_at = [&](const MatrixF& w) {
    Dense probe(in, out, Engine::kCpuParallel, 55);
    probe.weights() = w;
    const MatrixF pred = probe.forward(x);
    return compute_loss(LossKind::kMse, pred, target).value;
  };

  // Analytic gradient: forward + backward accumulates dW internally, read it
  // back via an SGD step of known lr.
  Dense probe(in, out, Engine::kCpuParallel, 55);
  const MatrixF w0 = probe.weights();
  const MatrixF pred = probe.forward(x);
  const auto lr_res = compute_loss(LossKind::kMse, pred, target);
  probe.backward(lr_res.grad);
  MatrixF w_after = probe.weights();
  probe.update(1.0f);
  MatrixF analytic(in, out);
  tensor::sub(w_after, probe.weights(), analytic);  // = 1.0 * dW

  const float eps = 1e-3f;
  for (std::size_t r = 0; r < in; r += 2) {
    for (std::size_t c = 0; c < out; c += 2) {
      MatrixF wp = w0, wm = w0;
      wp(r, c) += eps;
      wm(r, c) -= eps;
      const float numeric = (loss_at(wp) - loss_at(wm)) / (2 * eps);
      // MSE in compute_loss averages over rows but sums the 0.5*d^2 terms —
      // the numeric and analytic derivative use the identical definition.
      EXPECT_NEAR(numeric, analytic(r, c), 5e-2 * std::abs(numeric) + 1e-3)
          << r << "," << c;
    }
  }
}

TEST(Dense, BackwardInputGradientCheck) {
  const std::size_t batch = 3, in = 5, out = 4;
  Dense layer(in, out, Engine::kCpuParallel, 56);
  MatrixF x = random_matrix(batch, in, 503);
  const MatrixF target = random_matrix(batch, out, 504);

  const MatrixF pred = layer.forward(x);
  const auto lr_res = compute_loss(LossKind::kMse, pred, target);
  const MatrixF dx = layer.backward(lr_res.grad);

  const float eps = 1e-3f;
  for (std::size_t r = 0; r < batch; ++r) {
    for (std::size_t c = 0; c < in; c += 2) {
      MatrixF xp = x, xm = x;
      xp(r, c) += eps;
      xm(r, c) -= eps;
      Dense probe(in, out, Engine::kCpuParallel, 56);
      const float lp =
          compute_loss(LossKind::kMse, probe.forward(xp), target).value;
      const float lm =
          compute_loss(LossKind::kMse, probe.forward(xm), target).value;
      const float numeric = (lp - lm) / (2 * eps);
      EXPECT_NEAR(numeric, dx(r, c), 5e-2 * std::abs(numeric) + 1e-3);
    }
  }
}

TEST(Conv2D, GradientCheckThroughLoss) {
  tensor::ConvShape shape;
  shape.in_h = 6;
  shape.in_w = 6;
  shape.kernel = 3;
  shape.out_c = 2;
  Conv2D layer(shape, Engine::kCpuParallel, 57);
  const MatrixF x = random_matrix(2, 36, 505);
  const MatrixF target = random_matrix(2, layer.out_features(36), 506);

  const MatrixF pred = layer.forward(x);
  const auto lr_res = compute_loss(LossKind::kMse, pred, target);
  layer.backward(lr_res.grad);
  const MatrixF w0 = layer.weights();
  layer.update(1.0f);
  MatrixF analytic(w0.rows(), w0.cols());
  tensor::sub(w0, layer.weights(), analytic);

  const float eps = 1e-3f;
  for (std::size_t r = 0; r < w0.rows(); r += 3) {
    for (std::size_t c = 0; c < w0.cols(); ++c) {
      Conv2D probe(shape, Engine::kCpuParallel, 57);
      MatrixF wp = w0;
      wp(r, c) += eps;
      probe.weights() = wp;
      const float lp =
          compute_loss(LossKind::kMse, probe.forward(x), target).value;
      MatrixF wm = w0;
      wm(r, c) -= eps;
      probe.weights() = wm;
      const float lm =
          compute_loss(LossKind::kMse, probe.forward(x), target).value;
      const float numeric = (lp - lm) / (2 * eps);
      EXPECT_NEAR(numeric, analytic(r, c), 5e-2 * std::abs(numeric) + 1e-3);
    }
  }
}

TEST(Activations, ForwardBackward) {
  PiecewiseActivation act;
  const MatrixF x{{-1.0f, 0.0f, 1.0f}};
  const MatrixF y = act.forward(x);
  EXPECT_FLOAT_EQ(y(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(y(0, 1), 0.5f);
  EXPECT_FLOAT_EQ(y(0, 2), 1.0f);
  const MatrixF dy{{1.0f, 1.0f, 1.0f}};
  const MatrixF dx = act.backward(dy);
  EXPECT_FLOAT_EQ(dx(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(dx(0, 1), 1.0f);
  EXPECT_FLOAT_EQ(dx(0, 2), 0.0f);

  ReLU relu;
  const MatrixF ry = relu.forward(x);
  EXPECT_FLOAT_EQ(ry(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(ry(0, 2), 1.0f);
  const MatrixF rdx = relu.backward(dy);
  EXPECT_FLOAT_EQ(rdx(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(rdx(0, 2), 1.0f);
}

TEST(Loss, MseValueAndGrad) {
  const MatrixF pred{{1.0f, 2.0f}};
  const MatrixF target{{0.0f, 4.0f}};
  const auto r = compute_loss(LossKind::kMse, pred, target);
  EXPECT_NEAR(r.value, 0.5f * (1.0f + 4.0f) / 1.0f, 1e-6);
  EXPECT_FLOAT_EQ(r.grad(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(r.grad(0, 1), -2.0f);
}

TEST(Loss, HingeValueAndGrad) {
  const MatrixF pred{{0.5f}, {2.0f}};
  const MatrixF target{{1.0f}, {1.0f}};
  const auto r = compute_loss(LossKind::kHinge, pred, target);
  // Row 0 violates the margin (1 - 0.5 = 0.5); row 1 satisfies it.
  EXPECT_NEAR(r.value, 0.5f / 2.0f, 1e-6);
  EXPECT_FLOAT_EQ(r.grad(0, 0), -0.5f);
  EXPECT_FLOAT_EQ(r.grad(1, 0), 0.0f);
}

TEST(Accuracy, ArgmaxAndBinary) {
  const MatrixF pred{{0.9f, 0.1f}, {0.2f, 0.8f}};
  const MatrixF target{{1.0f, 0.0f}, {1.0f, 0.0f}};
  EXPECT_DOUBLE_EQ(accuracy(pred, target), 0.5);

  const MatrixF bp{{0.7f}, {0.2f}};
  const MatrixF bt{{1.0f}, {0.0f}};
  EXPECT_DOUBLE_EQ(accuracy(bp, bt), 1.0);

  const MatrixF sp{{0.4f}, {-3.0f}};
  const MatrixF st{{1.0f}, {-1.0f}};
  EXPECT_DOUBLE_EQ(accuracy(sp, st), 1.0);
}

TEST(Engines, AllEnginesAgreeOnForward) {
  const MatrixF x = random_matrix(8, 20, 507);
  MatrixF outs[3];
  int i = 0;
  for (const auto engine :
       {Engine::kCpuNaive, Engine::kCpuParallel, Engine::kGpu}) {
    Dense layer(20, 10, engine, 58);
    outs[i++] = layer.forward(x);
  }
  expect_near(outs[0], outs[1], 1e-4, "naive vs parallel");
  expect_near(outs[0], outs[2], 1e-4, "naive vs gpu");
}

class ModelTraining : public ::testing::TestWithParam<ModelKind> {};

TEST_P(ModelTraining, ConvergesOnSeparableData) {
  const ModelKind kind = GetParam();
  if (kind == ModelKind::kRnn) GTEST_SKIP() << "RNN covered separately";

  const auto scheme = kind == ModelKind::kSvm
                          ? data::LabelScheme::kBinaryPm1
                          : (kind == ModelKind::kCnn || kind == ModelKind::kMlp
                                 ? data::LabelScheme::kOneHot10
                                 : data::LabelScheme::kBinary01);
  const auto ds = data::make_dataset(data::DatasetKind::kMnist, scheme, 128,
                                     61);
  ModelConfig mc;
  mc.kind = kind;
  mc.input_dim = ds.geometry.features();
  mc.image_h = ds.geometry.h;
  mc.image_w = ds.geometry.w;
  mc.channels = ds.geometry.c;
  mc.classes = ds.y.cols() == 10 ? 10 : 1;
  auto model = build_plain(mc);
  const auto loss = loss_for(kind);

  // Full-batch GD on ~800-dim inputs needs a conservative step size; large
  // rates diverge (grad ~ X^T X w with eigenvalues ~ tens). The CNN is the
  // touchiest: its conv gradient sums over every spatial position, so the
  // effective step is ~out_h*out_w times larger and the Eq. 9 activation
  // saturates irrecoverably if pushed — hence the smaller rate and the
  // more modest accuracy bar.
  const bool is_cnn = kind == ModelKind::kCnn;
  const float lr = is_cnn ? 0.005f : (kind == ModelKind::kMlp ? 0.05f : 0.02f);
  const int epochs = is_cnn ? 120 : 80;
  const double bar = is_cnn ? 0.3 : 0.6;
  const double acc_before = accuracy(model.forward(ds.x), ds.y);
  float last_loss = 0;
  for (int epoch = 0; epoch < epochs; ++epoch) {
    last_loss = train_batch(model, loss, ds.x, ds.y, lr);
  }
  const double acc_after = accuracy(model.forward(ds.x), ds.y);
  EXPECT_GT(acc_after, std::max(bar, acc_before)) << "loss=" << last_loss;
}

INSTANTIATE_TEST_SUITE_P(Kinds, ModelTraining,
                         ::testing::Values(ModelKind::kMlp, ModelKind::kCnn,
                                           ModelKind::kLinear,
                                           ModelKind::kLogistic,
                                           ModelKind::kSvm),
                         [](const auto& info) { return to_string(info.param); });

TEST(Rnn, ForwardShapesAndBackwardRuns) {
  RnnModel rnn(16, 8, 1, 62);
  std::vector<MatrixF> xs;
  for (int t = 0; t < 4; ++t) xs.push_back(random_matrix(6, 16, 510 + t));
  const MatrixF out = rnn.forward(xs);
  EXPECT_EQ(out.rows(), 6u);
  EXPECT_EQ(out.cols(), 1u);
  const MatrixF target = random_matrix(6, 1, 520);
  const auto lr_res = compute_loss(LossKind::kMse, out, target);
  rnn.backward(lr_res.grad);
  rnn.update(0.1f);
}

TEST(Rnn, LearnsSimpleTarget) {
  // Learn to regress the mean of the last step's inputs.
  const std::size_t batch = 64, d = 8, steps = 3;
  std::vector<MatrixF> xs;
  for (std::size_t t = 0; t < steps; ++t) {
    xs.push_back(random_matrix(batch, d, 530 + t, 0.0f, 1.0f));
  }
  MatrixF target(batch, 1);
  for (std::size_t r = 0; r < batch; ++r) {
    float mean = 0;
    for (std::size_t c = 0; c < d; ++c) mean += xs[steps - 1](r, c);
    target(r, 0) = mean / static_cast<float>(d);
  }
  RnnModel rnn(d, 16, 1, 63);
  float first_loss = 0, last_loss = 0;
  for (int epoch = 0; epoch < 200; ++epoch) {
    const MatrixF pred = rnn.forward(xs);
    const auto lr_res = compute_loss(LossKind::kMse, pred, target);
    if (epoch == 0) first_loss = lr_res.value;
    last_loss = lr_res.value;
    rnn.backward(lr_res.grad);
    rnn.update(0.05f);
  }
  EXPECT_LT(last_loss, first_loss * 0.7f);
}

TEST(Models, FactoriesProduceExpectedArchitectures) {
  ModelConfig mc;
  mc.kind = ModelKind::kMlp;
  mc.input_dim = 100;
  auto mlp = build_plain(mc);
  EXPECT_EQ(mlp.size(), 5u);  // dense, act, dense, act, dense

  mc.kind = ModelKind::kLinear;
  mc.classes = 1;
  EXPECT_EQ(build_plain(mc).size(), 1u);

  mc.kind = ModelKind::kLogistic;
  EXPECT_EQ(build_plain(mc).size(), 2u);

  mc.kind = ModelKind::kCnn;
  mc.image_h = 12;
  mc.image_w = 12;
  mc.channels = 1;
  mc.input_dim = 144;
  mc.classes = 10;
  auto cnn = build_plain(mc);
  EXPECT_EQ(cnn.size(), 5u);  // conv, act, dense, act, dense

  EXPECT_THROW(
      [] {
        ModelConfig bad;
        bad.kind = ModelKind::kRnn;
        (void)build_plain(bad);
      }(),
      InvalidArgument);
}

}  // namespace
}  // namespace psml::ml
