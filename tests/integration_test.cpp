// Cross-module integration tests: TCP-backend protocol equivalence, failure
// injection (peer loss mid-protocol, exhausted offline material, corrupt
// payloads), and multi-threaded end-to-end runs.
#include <gtest/gtest.h>

#include <thread>

#include "mpc/secure_matmul.hpp"
#include "mpc/share.hpp"
#include "net/local_channel.hpp"
#include "net/tcp_channel.hpp"
#include "parsecureml/framework.hpp"
#include "parsecureml/store_transfer.hpp"
#include "tensor/gemm.hpp"
#include "test_util.hpp"

namespace psml {
namespace {

using psml::test::expect_near;
using psml::test::random_matrix;

mpc::PartyOptions cpu_opts() {
  auto opts = mpc::PartyOptions::parsecureml();
  opts.use_gpu = false;
  opts.adaptive = false;
  return opts;
}

// The same secure matmul over LocalChannel and over TCP loopback must give
// identical results (transport independence).
TEST(Integration, TcpBackendMatchesLocalBackend) {
  const std::size_t n = 24;
  const MatrixF a = random_matrix(n, n, 701);
  const MatrixF b = random_matrix(n, n, 702);
  mpc::TripletDealer dealer(nullptr, {false, false, 703});
  auto [t0, t1] = dealer.make_matmul(n, n, n);
  const auto sa = mpc::share_float(a, 704);
  const auto sb = mpc::share_float(b, 705);

  auto run_with = [&](std::shared_ptr<net::Channel> ch0,
                      std::shared_ptr<net::Channel> ch1) {
    mpc::PartyContext ctx0(0, std::move(ch0), nullptr, cpu_opts());
    mpc::PartyContext ctx1(1, std::move(ch1), nullptr, cpu_opts());
    MatrixF c0, c1;
    std::thread peer(
        [&] { c1 = mpc::secure_matmul(ctx1, sa.s1, sb.s1, t1); });
    c0 = mpc::secure_matmul(ctx0, sa.s0, sb.s0, t0);
    peer.join();
    return mpc::reconstruct_float(c0, c1);
  };

  auto local = net::LocalChannel::make_pair();
  const MatrixF via_local = run_with(local.a, local.b);

  const std::uint16_t port = 39267;
  std::shared_ptr<net::Channel> srv;
  std::thread listener([&] { srv = net::TcpChannel::listen(port); });
  auto cli = net::TcpChannel::connect("127.0.0.1", port, 5.0);
  listener.join();
  const MatrixF via_tcp = run_with(srv, cli);

  expect_near(via_local, via_tcp, 1e-6, "transport independence");
  expect_near(via_local, tensor::matmul(a, b), 1e-2, "correct result");
}

TEST(Integration, PeerLossMidProtocolRaisesNetworkError) {
  const std::size_t n = 8;
  mpc::TripletDealer dealer(nullptr, {false, false, 706});
  auto [t0, t1] = dealer.make_matmul(n, n, n);
  const MatrixF a = random_matrix(n, n, 707);
  const auto sa = mpc::share_float(a, 708);

  auto chans = net::LocalChannel::make_pair();
  mpc::PartyContext ctx0(0, chans.a, nullptr, cpu_opts());
  // Party 1 vanishes before responding.
  std::thread killer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    chans.b->close();
  });
  EXPECT_THROW((void)mpc::secure_matmul(ctx0, sa.s0, sa.s0, t0),
               NetworkError);
  killer.join();
}

TEST(Integration, ExhaustedTripletStoreRaises) {
  auto chans = net::LocalChannel::make_pair();
  mpc::PartyContext ctx(0, chans.a, nullptr, cpu_opts());
  EXPECT_THROW(ctx.triplets().pop_matmul(), Error);
  EXPECT_THROW(ctx.triplets().pop_elementwise(), Error);
  EXPECT_THROW(ctx.triplets().pop_activation(), Error);
}

TEST(Integration, CorruptStoreTransferRaises) {
  auto chans = net::LocalChannel::make_pair();
  // Send a header announcing matrices that never arrive correctly.
  std::vector<std::uint8_t> bogus_header(12, 0);
  bogus_header[0] = 200;  // n_matmul = 200
  chans.a->send(mpc::tags::kControl + 0x100, bogus_header);
  // First "matrix" message is garbage.
  chans.a->send(mpc::tags::kControl + 0x101, std::vector<std::uint8_t>{1, 2});
  EXPECT_THROW(parsecureml::recv_store(*chans.b), Error);
}

TEST(Integration, WrongSizeStoreHeaderRaises) {
  auto chans = net::LocalChannel::make_pair();
  chans.a->send(mpc::tags::kControl + 0x100,
                std::vector<std::uint8_t>{1, 2, 3});
  EXPECT_THROW(parsecureml::recv_store(*chans.b), ProtocolError);
}

TEST(Integration, RecyclingStoreServesManyEpochs) {
  mpc::TripletDealer dealer(nullptr, {false, false, 709});
  auto [st0, st1] = dealer.generate({{mpc::TripletKind::kMatMul, 4, 4, 4},
                                     {mpc::TripletKind::kMatMul, 2, 2, 2}});
  st0.set_recycle(true);
  // 10 epochs x 2 pops from a 2-triplet store: cycles in order.
  for (int e = 0; e < 10; ++e) {
    const auto first = st0.pop_matmul();
    EXPECT_EQ(first.u.rows(), 4u) << "epoch " << e;
    const auto second = st0.pop_matmul();
    EXPECT_EQ(second.u.rows(), 2u) << "epoch " << e;
  }
  EXPECT_EQ(st0.matmul_size(), 2u);  // nothing consumed
}

TEST(Integration, ConcurrentIndependentRuns) {
  // Two complete secure training runs in parallel threads must not
  // interfere (separate channels/contexts; shared global device + pools).
  auto run_one = [](std::uint64_t seed) {
    parsecureml::RunConfig cfg;
    cfg.model = ml::ModelKind::kLinear;
    cfg.dataset = data::DatasetKind::kMnist;
    cfg.samples = 16;
    cfg.batch = 16;
    cfg.epochs = 1;
    cfg.mode = parsecureml::Mode::kParSecureML;
    cfg.seed = seed;
    cfg.evaluate = false;
    return parsecureml::run_training(cfg);
  };
  parsecureml::RunResult r1, r2;
  std::thread t1([&] { r1 = run_one(1); });
  std::thread t2([&] { r2 = run_one(2); });
  t1.join();
  t2.join();
  EXPECT_GT(r1.online_sec, 0.0);
  EXPECT_GT(r2.online_sec, 0.0);
}

TEST(Integration, RefreshShareKeepsMagnitudesBounded) {
  // The float-mode stability mechanism: shares of a small value with huge
  // share magnitudes come back at mask scale and still reconstruct.
  auto chans = net::LocalChannel::make_pair();
  mpc::PartyContext ctx0(0, chans.a, nullptr, cpu_opts());
  mpc::PartyContext ctx1(1, chans.b, nullptr, cpu_opts());

  const std::size_t n = 32;
  MatrixF value = random_matrix(n, n, 710, -0.5f, 0.5f);
  MatrixF huge(n, n);
  rng::fill_uniform_par(huge, -1e6f, 1e6f, 711);
  MatrixF s0 = huge;
  MatrixF s1;
  tensor::sub(value, huge, s1);

  MatrixF r0, r1;
  std::thread peer([&] { r1 = mpc::refresh_share(ctx1, s1); });
  r0 = mpc::refresh_share(ctx0, s0);
  peer.join();

  double max_share = 0;
  for (std::size_t i = 0; i < r0.size(); ++i) {
    max_share = std::max(max_share, std::abs(double{r0.data()[i]}));
  }
  EXPECT_LE(max_share, mpc::kFloatMaskRadius * 1.01);
  expect_near(mpc::reconstruct_float(r0, r1), value, 0.5,
              "refresh preserves value (up to pre-existing float noise)");
}

TEST(Integration, ChannelStressManyTagsManyThreads) {
  // Hammer one channel pair with interleaved tagged traffic from two sender
  // threads and assert nothing is lost or cross-delivered.
  auto chans = net::LocalChannel::make_pair();
  constexpr int kPerTag = 200;
  std::thread sender([&] {
    for (int i = 0; i < kPerTag; ++i) {
      for (net::Tag tag = 1; tag <= 4; ++tag) {
        std::vector<std::uint8_t> payload = {
            static_cast<std::uint8_t>(tag), static_cast<std::uint8_t>(i)};
        chans.a->send(tag, payload);
      }
    }
  });
  for (net::Tag tag = 4; tag >= 1; --tag) {
    for (int i = 0; i < kPerTag; ++i) {
      const auto msg = chans.b->recv(tag);
      ASSERT_EQ(msg.payload[0], tag);
      ASSERT_EQ(msg.payload[1], static_cast<std::uint8_t>(i));  // per-tag FIFO
    }
  }
  sender.join();
}

}  // namespace
}  // namespace psml
