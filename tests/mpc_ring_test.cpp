// Fixed-point ring (Z_2^64) secure matmul protocol tests — the SecureML
// algebra mode.
#include <gtest/gtest.h>

#include "mpc/ring_protocol.hpp"
#include "tensor/gemm.hpp"
#include "tensor/ops.hpp"
#include "test_util.hpp"

namespace psml::mpc {
namespace {

using psml::test::expect_near;
using psml::test::random_matrix;
using psml::test::run_parties;

PartyOptions cpu_opts() {
  PartyOptions opts = PartyOptions::secureml_baseline();
  return opts;
}

struct RingShape {
  std::size_t m, k, n;
};

class RingMatmul : public ::testing::TestWithParam<RingShape> {};

TEST_P(RingMatmul, ReconstructsToPlainProduct) {
  const auto [m, k, n] = GetParam();
  const MatrixF af = random_matrix(m, k, 401);
  const MatrixF bf = random_matrix(k, n, 402);
  const MatrixF expected = tensor::matmul(af, bf);

  const MatrixU64 a = encode_fixed(af);
  const MatrixU64 b = encode_fixed(bf);
  const auto sa = share_ring(a, 41);
  const auto sb = share_ring(b, 42);
  auto [t0, t1] = make_ring_matmul_triplet(m, k, n, 43);

  MatrixU64 c0, c1;
  run_parties(
      cpu_opts(),
      [&](PartyContext& ctx) {
        c0 = secure_matmul_ring(ctx, sa.s0, sb.s0, t0);
      },
      [&](PartyContext& ctx) {
        c1 = secure_matmul_ring(ctx, sa.s1, sb.s1, t1);
      });

  const MatrixF result = decode_fixed(reconstruct_ring(c0, c1));
  // Error: k accumulated 1-ulp input roundings + 1 truncation ulp.
  expect_near(result, expected,
              static_cast<double>(k + 4) * 2.0 / kFixedScale, "ring 2pc");
}

INSTANTIATE_TEST_SUITE_P(Shapes, RingMatmul,
                         ::testing::Values(RingShape{1, 1, 1},
                                           RingShape{4, 8, 4},
                                           RingShape{16, 32, 8},
                                           RingShape{33, 19, 27}));

TEST(RingMatmul, WithoutTruncationKeepsDoubleScale) {
  const std::size_t n = 4;
  const MatrixF af = random_matrix(n, n, 403);
  const MatrixF bf = random_matrix(n, n, 404);
  const auto sa = share_ring(encode_fixed(af), 44);
  const auto sb = share_ring(encode_fixed(bf), 45);
  auto [t0, t1] = make_ring_matmul_triplet(n, n, n, 46);
  MatrixU64 c0, c1;
  run_parties(
      cpu_opts(),
      [&](PartyContext& ctx) {
        c0 = secure_matmul_ring(ctx, sa.s0, sb.s0, t0, /*truncate=*/false);
      },
      [&](PartyContext& ctx) {
        c1 = secure_matmul_ring(ctx, sa.s1, sb.s1, t1, /*truncate=*/false);
      });
  // Reconstruct and manually shift: must match the plain product.
  MatrixU64 c = reconstruct_ring(c0, c1);
  for (std::size_t i = 0; i < c.size(); ++i) {
    c.data()[i] = static_cast<std::uint64_t>(
        static_cast<std::int64_t>(c.data()[i]) >> kFracBits);
  }
  expect_near(decode_fixed(c), tensor::matmul(af, bf),
              static_cast<double>(n + 2) * 2.0 / kFixedScale, "no-trunc");
}

TEST(RingMatmul, TripletShapeMismatchThrows) {
  auto [t0, t1] = make_ring_matmul_triplet(2, 2, 2, 47);
  const MatrixU64 wrong(3, 2);
  const MatrixU64 b(2, 2);
  EXPECT_THROW(
      run_parties(
          cpu_opts(),
          [&](PartyContext& ctx) {
            secure_matmul_ring(ctx, wrong, b, t0);
          },
          [&](PartyContext& ctx) {
            secure_matmul_ring(ctx, wrong, b, t1);
          }),
      InvalidArgument);
}

TEST(RingMatmul, WraparoundMatchesReferenceTripleLoop) {
  // The packed u64 engine must compute exact mod-2^64 products even when
  // every partial product overflows: seed values sit near 2^63 and 2^64 - 1.
  // Ragged shapes straddle the 4x8 register tile and 64/192/256 cache blocks.
  struct Shape {
    std::size_t m, k, n;
  };
  const Shape shapes[] = {{1, 1, 1}, {3, 5, 7}, {4, 8, 8}, {65, 193, 9},
                          {17, 400, 33}};
  std::uint64_t state = 0x9e3779b97f4a7c15ull;
  auto next = [&state]() {
    // splitmix64 — deterministic fill, no library RNG needed in tests.
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  };
  // Exercise both the forced-scalar tier and whatever SIMD tier dispatch
  // picks on this machine; restore auto selection on exit even when an
  // assertion bails out of the loop early.
  struct IsaGuard {
    ~IsaGuard() { tensor::set_gemm_isa(tensor::GemmIsa::kAuto); }
  } guard;
  for (const auto isa : {tensor::GemmIsa::kScalar, tensor::GemmIsa::kAuto}) {
    tensor::set_gemm_isa(isa);
    for (const auto& s : shapes) {
      MatrixU64 a(s.m, s.k), b(s.k, s.n);
      for (std::size_t i = 0; i < a.size(); ++i) {
        // Bias toward the wraparound-heavy top of the ring.
        a.data()[i] = (std::uint64_t{1} << 63) + (next() >> 1);
      }
      for (std::size_t i = 0; i < b.size(); ++i) {
        b.data()[i] = ~std::uint64_t{0} - (next() >> 32);
      }
      const MatrixU64 c = ring_matmul(a, b);
      for (std::size_t i = 0; i < s.m; ++i) {
        for (std::size_t j = 0; j < s.n; ++j) {
          std::uint64_t acc = 0;
          for (std::size_t kk = 0; kk < s.k; ++kk) acc += a(i, kk) * b(kk, j);
          ASSERT_EQ(acc, c(i, j)) << "m" << s.m << "k" << s.k << "n" << s.n
                                  << " at (" << i << "," << j << ")";
        }
      }
    }
  }
}

TEST(RingMatmul, MaskingIsUniform) {
  // The opened value E = A - U must be uniformly distributed regardless of
  // A: with U uniform over the ring, a constant A cannot show through. Check
  // that E for two very different A's has indistinguishable bit statistics.
  const std::size_t n = 64;
  auto [t0, t1] = make_ring_matmul_triplet(n, n, n, 48);
  const MatrixU64 u = reconstruct_ring(t0.u, t1.u);

  MatrixF small_f(n, n, 0.001f), large_f(n, n, 100.0f);
  const MatrixU64 e_small = ring_sub(encode_fixed(small_f), u);
  const MatrixU64 e_large = ring_sub(encode_fixed(large_f), u);

  auto popcount_rate = [](const MatrixU64& m) {
    std::size_t ones = 0;
    for (std::size_t i = 0; i < m.size(); ++i) {
      ones += static_cast<std::size_t>(__builtin_popcountll(m.data()[i]));
    }
    return static_cast<double>(ones) / (64.0 * static_cast<double>(m.size()));
  };
  EXPECT_NEAR(popcount_rate(e_small), 0.5, 0.01);
  EXPECT_NEAR(popcount_rate(e_large), 0.5, 0.01);
}

}  // namespace
}  // namespace psml::mpc
