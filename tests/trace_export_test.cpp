// Chrome-trace export of the simulated-device activity timeline.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "sgpu/ops.hpp"
#include "sgpu/trace_export.hpp"
#include "test_util.hpp"

namespace psml::sgpu {
namespace {

TEST(TraceExport, EmptyTraceIsValidJsonArray) {
  Trace trace;
  const std::string json = to_chrome_trace_json(trace);
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json.back(), ']');
  // Metadata events for the three tracks are always present.
  EXPECT_NE(json.find("thread_name"), std::string::npos);
}

TEST(TraceExport, ContainsRecordedActivities) {
  Trace trace;
  trace.record(ActivityKind::kMemcpyH2D, "h2d", 0.0, 0.001, 4096);
  trace.record(ActivityKind::kKernel, "gemm", 0.001, 0.005);
  const std::string json = to_chrome_trace_json(trace);
  EXPECT_NE(json.find("\"name\":\"gemm\""), std::string::npos);
  EXPECT_NE(json.find("\"bytes\":4096"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  // Durations are microseconds in the trace event format.
  EXPECT_NE(json.find("\"dur\":4000"), std::string::npos);
}

TEST(TraceExport, EscapesSpecialCharacters) {
  Trace trace;
  trace.record(ActivityKind::kKernel, "evil\"name\\", 0.0, 0.001);
  const std::string json = to_chrome_trace_json(trace);
  EXPECT_NE(json.find("evil\\\"name\\\\"), std::string::npos);
}

TEST(TraceExport, RealWorkloadRoundTripsThroughFile) {
  Device dev{Device::Config{.compute_threads = 2,
                            .pcie_gbps = 0.0,
                            .memory_bytes = 64 << 20,
                            .launch_overhead_us = 0.0}};
  dev.trace().clear();
  const MatrixF a = psml::test::random_matrix(48, 48, 9);
  (void)device_matmul(dev, a, a);

  const std::string path = "/tmp/psml_trace_test.json";
  write_chrome_trace(path, dev.trace());
  std::ifstream is(path);
  ASSERT_TRUE(is.good());
  std::stringstream ss;
  ss << is.rdbuf();
  const std::string json = ss.str();
  EXPECT_NE(json.find("gemm"), std::string::npos);
  EXPECT_NE(json.find("h2d"), std::string::npos);
  // Balanced brackets (cheap structural sanity).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  std::remove(path.c_str());
}

TEST(TraceExport, BadPathThrows) {
  Trace trace;
  EXPECT_THROW(write_chrome_trace("/nonexistent/dir/trace.json", trace),
               Error);
}

}  // namespace
}  // namespace psml::sgpu
