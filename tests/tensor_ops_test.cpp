// Unit tests for Matrix and elementwise/structural tensor operations.
#include <gtest/gtest.h>

#include "tensor/matrix.hpp"
#include "tensor/ops.hpp"
#include "test_util.hpp"

namespace psml::tensor {
namespace {

using psml::test::expect_near;
using psml::test::random_matrix;

TEST(Matrix, BasicAccessors) {
  MatrixF m(3, 4, 2.5f);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 4u);
  EXPECT_EQ(m.size(), 12u);
  EXPECT_EQ(m.bytes(), 48u);
  EXPECT_FLOAT_EQ(m(2, 3), 2.5f);
  m(1, 2) = -1.0f;
  EXPECT_FLOAT_EQ(m.at(1, 2), -1.0f);
  EXPECT_THROW(m.at(3, 0), InvalidArgument);
  EXPECT_THROW(m.at(0, 4), InvalidArgument);
}

TEST(Matrix, InitializerList) {
  MatrixF m{{1, 2, 3}, {4, 5, 6}};
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_FLOAT_EQ(m(1, 2), 6.0f);
  EXPECT_THROW((MatrixF{{1, 2}, {3}}), InvalidArgument);
}

TEST(Matrix, Equality) {
  MatrixF a{{1, 2}, {3, 4}};
  MatrixF b{{1, 2}, {3, 4}};
  MatrixF c{{1, 2}, {3, 5}};
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
}

TEST(Matrix, RowSpan) {
  MatrixF m{{1, 2}, {3, 4}};
  auto r = m.row(1);
  EXPECT_EQ(r.size(), 2u);
  EXPECT_FLOAT_EQ(r[0], 3.0f);
}

TEST(Matrix, DataIsCacheLineAligned) {
  MatrixF m(17, 19);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(m.data()) % kCacheLineBytes, 0u);
}

TEST(Ops, AddSubHadamardScale) {
  const MatrixF a{{1, 2}, {3, 4}};
  const MatrixF b{{10, 20}, {30, 40}};
  MatrixF out;
  add(a, b, out);
  EXPECT_FLOAT_EQ(out(1, 1), 44.0f);
  sub(b, a, out);
  EXPECT_FLOAT_EQ(out(0, 0), 9.0f);
  hadamard(a, b, out);
  EXPECT_FLOAT_EQ(out(1, 0), 90.0f);
  scale(a, 3.0f, out);
  EXPECT_FLOAT_EQ(out(0, 1), 6.0f);
}

TEST(Ops, ShapeMismatchThrows) {
  const MatrixF a(2, 3), b(3, 2);
  MatrixF out;
  EXPECT_THROW(add(a, b, out), InvalidArgument);
  EXPECT_THROW(sub(a, b, out), InvalidArgument);
  EXPECT_THROW(hadamard(a, b, out), InvalidArgument);
}

TEST(Ops, AxpyAccumulates) {
  const MatrixF a{{1, 1}, {1, 1}};
  MatrixF out{{1, 2}, {3, 4}};
  axpy(2.0f, a, out);
  EXPECT_FLOAT_EQ(out(0, 0), 3.0f);
  EXPECT_FLOAT_EQ(out(1, 1), 6.0f);
}

class ParallelOps : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ParallelOps, ParallelMatchesSerial) {
  const std::size_t n = GetParam();
  const MatrixF a = random_matrix(n, n + 3, 21);
  const MatrixF b = random_matrix(n, n + 3, 22);
  MatrixF ser, par;
  add(a, b, ser);
  add_par(a, b, par);
  expect_near(ser, par, 0.0, "add");
  sub(a, b, ser);
  sub_par(a, b, par);
  expect_near(ser, par, 0.0, "sub");
  hadamard(a, b, ser);
  hadamard_par(a, b, par);
  expect_near(ser, par, 0.0, "hadamard");
  scale(a, -2.5f, ser);
  scale_par(a, -2.5f, par);
  expect_near(ser, par, 0.0, "scale");
  ser = b;
  par = b;
  axpy(0.5f, a, ser);
  axpy_par(0.5f, a, par);
  expect_near(ser, par, 0.0, "axpy");
}

INSTANTIATE_TEST_SUITE_P(Sizes, ParallelOps,
                         ::testing::Values(1, 7, 64, 255, 600));

TEST(Ops, Transpose) {
  const MatrixF a = random_matrix(37, 53, 23);
  const MatrixF at = transpose(a);
  ASSERT_EQ(at.rows(), 53u);
  ASSERT_EQ(at.cols(), 37u);
  for (std::size_t r = 0; r < a.rows(); ++r) {
    for (std::size_t c = 0; c < a.cols(); ++c) {
      ASSERT_FLOAT_EQ(at(c, r), a(r, c));
    }
  }
  expect_near(transpose(at), a, 0.0, "double transpose");
}

TEST(Ops, Concat) {
  const MatrixF a{{1, 2}, {3, 4}};
  const MatrixF b{{5}, {6}};
  const MatrixF h = hconcat(a, b);
  ASSERT_EQ(h.rows(), 2u);
  ASSERT_EQ(h.cols(), 3u);
  EXPECT_FLOAT_EQ(h(0, 2), 5.0f);
  EXPECT_FLOAT_EQ(h(1, 0), 3.0f);

  const MatrixF c{{7, 8}};
  const MatrixF v = vconcat(a, c);
  ASSERT_EQ(v.rows(), 3u);
  EXPECT_FLOAT_EQ(v(2, 1), 8.0f);

  EXPECT_THROW(hconcat(a, c), InvalidArgument);
  EXPECT_THROW(vconcat(a, b), InvalidArgument);
}

TEST(Ops, ZeroFraction) {
  MatrixF m(10, 10, 0.0f);
  EXPECT_DOUBLE_EQ(zero_fraction(m), 1.0);
  m(0, 0) = 1.0f;
  EXPECT_DOUBLE_EQ(zero_fraction(m), 0.99);
  m.fill(2.0f);
  EXPECT_DOUBLE_EQ(zero_fraction(m), 0.0);
  EXPECT_DOUBLE_EQ(zero_fraction(MatrixF()), 1.0);
}

TEST(Ops, SumAndNorm) {
  const MatrixF m{{3, 4}};
  EXPECT_FLOAT_EQ(sum(m), 7.0f);
  EXPECT_DOUBLE_EQ(fro_norm(m), 5.0);
}

TEST(Ops, MaxAbsDiff) {
  const MatrixF a{{1, 2}}, b{{1.5, 1}};
  EXPECT_DOUBLE_EQ(tensor::max_abs_diff(a, b), 1.0);
}

}  // namespace
}  // namespace psml::tensor
