// reconstruct-before-mask fixture: in a function that masks with triplet
// members, opening an operand share before (or without) its E_i = A_i - U_i
// masking step reveals the raw input; opening the masked difference is the
// protocol's reconstruct step and passes.

void open_raw_operand(Channel& ch, const MatrixF& x_i, const MatrixF& x_peer,
                      const TripletShare& t) {
  MatrixF opened = reconstruct_float(x_i, x_peer);  // EXPECT: reconstruct-before-mask
  MatrixF e_i;
  sub(x_i, t.u, e_i);
  ch.send(3, e_i);
}

void open_masked_difference(Channel& ch, const MatrixF& x_i,
                            const MatrixF& e_peer, const TripletShare& t) {
  MatrixF e_i;
  sub(x_i, t.u, e_i);
  MatrixF e = reconstruct_float(e_i, e_peer);  // clean: E is the blinded value
  ch.send(4, e);
}
