// taint-to-log fixture: secret share material reaching a print sink must be
// flagged; metadata and declassified values must pass.

void log_share(const SharePair& p) {
  float y = p.s1;
  std::printf("%f", y);  // EXPECT: taint-to-log
}

void log_stream(const SharePair& p) {
  std::cout << p.s1;  // EXPECT: taint-to-log
}

void log_fine(const SharePair& p) {
  PSML_INFO("rows=%zu", p.rows());  // clean: shape metadata launders taint
}

void log_declassified(Channel& ch, const SharePair& p) {
  float open_val = reconstruct_float(ch, p);
  PSML_INFO("loss=%f", open_val);  // clean: sanctioned declassifier
}
