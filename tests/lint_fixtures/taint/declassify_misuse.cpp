// Declassifier-misuse fixture: declassify() is an audited escape hatch, so
// a call on a provably-public value is a no-op that dilutes the audit
// surface; declassifying genuinely secret values is its purpose and passes.

float useless(const MatrixF& pub) {
  float metadata = static_cast<float>(pub.rows());
  return declassify(metadata);  // EXPECT: useless-declassify
}

float useless_double(const SharePair& p) {
  float opened = declassify(p.a.data()[0]);
  return declassify(opened);  // EXPECT: useless-declassify
}

float intended(const SharePair& p) {
  return declassify(p.a.data()[0]);  // clean: a real secret->public transition
}
