// taint-to-channel fixture: a share sent raw over the wire must be flagged;
// the masked (E_i = A_i - U_i) exchange of the Beaver online phase must pass.

void send_share(Channel& ch, const SharePair& p) {
  MatrixF raw = p.a;
  ch.send(42, raw);  // EXPECT: taint-to-channel
}

void send_masked(Channel& ch, const SharePair& p, const TripletShare& t) {
  MatrixF e;
  sub(p.a, t.u, e);
  ch.send(7, e);  // clean: e is blinded by the triplet mask above
}
