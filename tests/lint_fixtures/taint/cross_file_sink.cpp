// Cross-TU fixture, sink half: debug_dump logs its parameter, so its summary
// marks param 0 as a taint-to-log sink. Nothing here is secret on its own —
// the violation materializes at the *call site* in cross_file_flow.cpp.

void debug_dump(const MatrixF& m) {
  PSML_INFO("m00=%f", m.at(0, 0));
}
