// triplet-double-consume fixture: the same triplet component feeding two
// different masks on one control path must be flagged; if/else-exclusive
// uses and re-emits into the same destination must pass.

void double_consume(const TripletShare& t, const MatrixF& a, const MatrixF& b) {
  MatrixF e;
  MatrixF f;
  sub(a, t.u, e);
  sub(b, t.u, f);  // EXPECT: triplet-double-consume
}

void branch_consume(bool flip, const TripletShare& t, const MatrixF& a,
                    const MatrixF& b) {
  MatrixF e;
  MatrixF f;
  if (flip) {
    sub(a, t.u, e);  // clean: exclusive with the else arm below
  } else {
    sub(b, t.u, f);
  }
}

void same_dest_ok(const TripletShare& t, const MatrixF& a) {
  MatrixF e;
  sub(a, t.u, e);
  sub(a, t.u, e);  // clean: re-emit into the same destination
}
