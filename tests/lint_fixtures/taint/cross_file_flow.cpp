// Cross-TU fixture, flow half: passing a secret share to debug_dump (defined
// in cross_file_sink.cpp) must be flagged via the interprocedural summary;
// passing public data must pass.

void leak_via_helper(const SharePair& p) {
  MatrixF s = p.a;
  debug_dump(s);  // EXPECT: taint-to-log
}

void fine_via_helper(const MatrixF& pub) {
  debug_dump(pub);  // clean: no secret reaches the logged parameter
}
