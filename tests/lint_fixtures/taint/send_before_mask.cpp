// send-before-mask fixture: in a function that performs triplet masking, an
// exchange must come *after* the E_i = A_i - U_i step (paper Eq. 6/8), and
// every secret operand exchanged must be blinded. Functions that never mask
// are outside the protocol pass.

void send_premature(Channel& ch, const MatrixF& a, const TripletShare& t) {
  MatrixF e;
  ch.send(1, e);  // EXPECT: send-before-mask
  sub(a, t.u, e);
}

void send_unmasked_operand(Channel& ch, const MatrixF& a, const MatrixF& b,
                           const TripletShare& t) {
  MatrixF e;
  sub(a, t.u, e);
  ch.send(1, e);  // clean: masked above, then exchanged
  ch.send(2, b);  // EXPECT: send-before-mask
}

void send_public(Channel& ch, const MatrixF& pub) {
  ch.send(3, pub);  // clean: no masking in this function, pass is disarmed
}
