// taint-to-persist fixture: serializing a secret RNG seed into a checkpoint
// must be flagged; serializing public shape metadata must pass.

void checkpoint_seed(std::ostream& os) {
  std::uint64_t seed = random_seed();
  os.write(reinterpret_cast<const char*>(&seed), sizeof(seed));  // EXPECT: taint-to-persist
}

void checkpoint_dims(std::ostream& os, const MatrixF& w) {
  std::uint64_t rows = w.rows();
  os.write(reinterpret_cast<const char*>(&rows), sizeof(rows));  // clean: shape only
}
