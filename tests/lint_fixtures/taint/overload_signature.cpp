// Summary-keying regression fixture: two same-name, same-arity overloads
// with different parameter types must keep separate cross-TU summaries.
// Before signature keying, the (Channel&, MatrixF) overload's sink bit
// cross-poisoned the (Stats&, MatrixF) overload and flagged emit(st, raw)
// below.

void emit(Channel& ch, const MatrixF& m) {
  ch.send(9, m);  // channel sink: parameter 1 lands on the wire
}

void emit(Stats& st, const MatrixF& m) {
  st.accumulate(m);  // no sink: local aggregation only
}

void overload_leak(Channel& ch, const SharePair& p) {
  MatrixF raw = p.a;
  emit(ch, raw);  // EXPECT: taint-to-channel
}

void overload_clean(Stats& st, const SharePair& p) {
  MatrixF raw = p.a;
  emit(st, raw);  // clean: this overload never touches the wire
}
