// rng-outside-rng and naked-thread fixture: this path is outside src/rng/
// and outside the owned-concurrency files, so both rules are armed.

void bad_rng() {
  std::mt19937 gen(42);  // EXPECT: rng-outside-rng
  (void)gen;
}

void bad_thread() {
  std::thread t([] { work(); });  // EXPECT: naked-thread
  t.join();
}

void fine_id() {
  auto id = std::this_thread::get_id();  // clean: no thread construction
  (void)id;
}
