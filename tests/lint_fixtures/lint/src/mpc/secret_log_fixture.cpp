// secret-logging fixture: the rule is path-gated, so this file lives under a
// src/mpc/ suffix. Logging share material must be flagged; logging public
// metadata must not.

void leak_share(const MatrixF& share0) {
  PSML_INFO("s0[0]=%f", share0.data()[0]);  // EXPECT: secret-logging
}

void leak_triplet(const MatrixF& m) {
  std::printf("%f", triplet_cache[0]);  // EXPECT: secret-logging
}

void fine_metadata(unsigned long rows, unsigned long cols) {
  PSML_INFO("matmul %lux%lu", rows, cols);  // clean: shape only
}
