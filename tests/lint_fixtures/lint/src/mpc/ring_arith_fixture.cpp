// ring-raw-arith fixture: raw word arithmetic on ring shares must be flagged
// even through a `using` alias, a typedef, or an auto& rebinding; the
// sanctioned ring_* calls must stay clean.

using Share = MatrixU64;     // alias chain: tracked by the type registry
typedef Share RingWord;      // alias of an alias

MatrixU64 ring_add(const MatrixU64& a, const MatrixU64& b);

MatrixU64 bad_sum(const MatrixU64& a, const MatrixU64& b) {
  MatrixU64 c = a;
  c.data()[0] = a.data()[0] + b.data()[0];  // EXPECT: ring-raw-arith
  return c;
}

Share bad_alias(const Share& x, const Share& y) {
  Share s = x;
  s.data()[1] = x.data()[1] * y.data()[1];  // EXPECT: ring-raw-arith
  return s;
}

RingWord bad_ref(RingWord& w, const RingWord& other) {
  auto& r = w;
  r.data()[2] = r.data()[2] - other.data()[2];  // EXPECT: ring-raw-arith
  return w;
}

MatrixU64 good_sum(const MatrixU64& a, const MatrixU64& b) {
  return ring_add(a, b);  // clean: audited ring op
}
