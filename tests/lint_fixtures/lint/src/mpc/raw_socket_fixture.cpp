// Fixture for the raw-socket-io rule: socket syscalls outside src/net/
// bypass Channel framing (checksums, sequencing, reconnect) and must be
// flagged; qualified and member `send`/`recv` calls are the sanctioned
// Channel path and must stay clean.
#include <cstddef>

void leaky_raw_syscalls(int fd, void* p, std::size_t n) {
  ::send(fd, p, n, 0);                  // EXPECT: raw-socket-io
  ::recv(fd, p, n, 0);                  // EXPECT: raw-socket-io
  ::sendto(fd, p, n, 0, nullptr, 0);    // EXPECT: raw-socket-io
  writev(fd, nullptr, 1);               // EXPECT: raw-socket-io
  sendmsg(fd, nullptr, 0);              // EXPECT: raw-socket-io
  recvmsg(fd, nullptr, 0);              // EXPECT: raw-socket-io
  readv(fd, nullptr, 1);                // EXPECT: raw-socket-io
}

// Clean twins: member and namespace-qualified sends are the Channel API, not
// socket syscalls.
struct FakeChannel {
  void send(int tag, const void* body);
  void recv(int tag);
  static void recv_all();
};

void sanctioned_channel_calls(FakeChannel& ch) {
  ch.send(1, nullptr);
  ch.recv(1);
  FakeChannel::recv_all();
}

namespace wrapped {
void send(int tag);
}

void qualified_wrapper_call() { wrapped::send(3); }
