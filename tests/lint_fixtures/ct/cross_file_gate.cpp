// Interprocedural fixture, callee half: a helper that branches on its
// parameter records a ct-bit in the cross-TU summary. Callers feeding it a
// secret are flagged (see cross_file_gate_caller.cpp).

float relu_gate(float v) {
  if (v > 0.0f) {  // records the ct-bit for parameter 0
    return v;
  }
  return 0.0f;
}
