// variable-latency fixture: division/modulo, early-exit comparisons, and
// short-circuit operators on secret operands must be flagged; public
// operands and the vetted constant-time ring helpers must pass.

float leak_division(const SharePair& p, float denom) {
  return p.a.data()[0] / denom;  // EXPECT: variable-latency
}

std::uint64_t leak_modulo(const TripletShare& t, std::uint64_t m) {
  return static_cast<std::uint64_t>(t.u.data()[0]) % m;  // EXPECT: variable-latency
}

bool leak_early_exit(const SharePair& p, const SharePair& q) {
  return memcmp(p.a.data(), q.a.data(), 16) == 0;  // EXPECT: variable-latency
}

bool leak_short_circuit(bool pub, const SharePair& p) {
  bool secret_flag = p.a.data()[0] > 0.5f;
  return pub && secret_flag;  // EXPECT: variable-latency
}

// Same shape as the vetted ring_scale_share: the body divides, but the
// implementation is audited constant-time (table entry), so neither the
// body nor calls feeding it secrets are flagged.
std::uint64_t ring_scale_share(std::uint64_t share, std::uint64_t c) {
  return share / c;  // clean: vetted constant-time table entry
}

std::uint64_t clean_vetted_call(const TripletShare& t) {
  return ring_scale_share(static_cast<std::uint64_t>(t.u.data()[0]), 3);  // clean
}

std::size_t clean_public_division(std::size_t bytes) {
  return bytes / sizeof(float);  // clean: both operands public
}

bool clean_rvalue_ref(TripletShare&& t, std::vector<TripletShare>& sink) {
  sink.push_back(static_cast<TripletShare&&>(t));  // clean: && is a type, not an operator
  return true;
}
