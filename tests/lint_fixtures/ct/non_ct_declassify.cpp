// non-ct-declassify fixture: opening a value under (or computed under) a
// secret branch reveals the branch condition — the declassification is
// wider than annotated. Declassifying the condition first must pass.

float leak_declassify_under_branch(const SharePair& p, const SharePair& q) {
  float out = 0.0f;
  if (p.a.data()[0] > 0.0f) {  // EXPECT: secret-branch
    out = declassify(q.a.data()[0]);  // EXPECT: non-ct-declassify
  }
  return out;
}

float leak_implicit_join(const SharePair& p) {
  float flag = 0.0f;
  if (p.a.data()[0] > 0.0f) {  // EXPECT: secret-branch
    flag = 1.0f;
  }
  return declassify(flag);  // EXPECT: non-ct-declassify
}

float clean_declassified_condition(const SharePair& p, const SharePair& q) {
  const float cond = declassify(p.a.data()[0]);
  float out = 0.0f;
  if (cond > 0.0f) {  // clean: the condition itself was declassified
    out = declassify(q.a.data()[0]);  // clean: public control flow
  }
  return out;
}
