// secret-branch fixture: control flow steered by secret data must be
// flagged; branching on opened (reconstructed/declassified) values must
// pass. Covers if / while / ternary plus the else-inherits-the-condition
// rule.

float leak_if(const SharePair& p) {
  float acc = 0.0f;
  if (p.a.data()[0] > 0.0f) {  // EXPECT: secret-branch
    acc = 1.0f;
  }
  return acc;
}

int leak_while(const TripletShare& t) {
  int spins = 0;
  while (t.u.data()[0] > 0.5f) {  // EXPECT: secret-branch
    ++spins;
  }
  return spins;
}

float leak_ternary(const SharePair& p, float hi, float lo) {
  return p.a.data()[0] > 0.0f ? hi : lo;  // EXPECT: secret-branch
}

float clean_branch_on_opened(const SharePair& p) {
  MatrixF open = reconstruct_float(p.a, p.b);
  if (open.data()[0] > 0.0f) {  // clean: the value was opened first
    return 1.0f;
  }
  return 0.0f;
}

float clean_public_loop(const MatrixF& pub) {
  float acc = 0.0f;
  for (std::size_t i = 0; i < pub.size(); ++i) {  // clean: public trip count
    acc += pub.data()[i];
  }
  return acc;
}
