// secret-index fixture: memory access patterns steered by secret-derived
// indices must be flagged (subscript, .at(), pointer arithmetic); public
// indexing of secret containers must pass.

float leak_subscript(const MatrixF& table, const SharePair& p) {
  std::size_t idx = static_cast<std::size_t>(p.a.data()[0]);
  return table.data()[idx];  // EXPECT: secret-index
}

float leak_at(const std::vector<float>& v, const TripletShare& t) {
  std::size_t idx = static_cast<std::size_t>(t.u.data()[0]);
  return v.at(idx);  // EXPECT: secret-index
}

float leak_pointer_arith(const float* base, const SharePair& p) {
  std::size_t off = static_cast<std::size_t>(p.a.data()[0]);
  return *(base + off);  // EXPECT: secret-index
}

float clean_public_index(const SharePair& p, std::size_t i) {
  return p.a.data()[i];  // clean: secret data, public index
}

float clean_structured_binding(TripletStore& store) {
  auto [lo, hi] = store.pop_activation().bounds();
  return lo + hi;  // clean: structured binding is not a subscript
}
