// Interprocedural fixture, caller half: feeding a secret into a function
// that branches on the parameter (cross_file_gate.cpp) leaks through the
// callee's timing even though this file contains no branch at all.

float leak_via_callee(const SharePair& p) {
  return relu_gate(p.a.data()[0]);  // EXPECT: secret-branch
}

float clean_via_callee(float pub) {
  return relu_gate(pub);  // clean: public argument
}
