// Property tests: all GEMM kernel variants agree with the naive reference
// across shapes, transposes, and alpha/beta combinations.
#include <gtest/gtest.h>

#include <tuple>

#include "tensor/gemm.hpp"
#include "tensor/ops.hpp"
#include "test_util.hpp"

namespace psml::tensor {
namespace {

using psml::test::expect_near;
using psml::test::random_matrix;

struct Shape {
  std::size_t m, k, n;
};

class GemmShapes : public ::testing::TestWithParam<Shape> {};

TEST_P(GemmShapes, BlockedMatchesNaive) {
  const auto [m, k, n] = GetParam();
  const MatrixF a = random_matrix(m, k, 1);
  const MatrixF b = random_matrix(k, n, 2);
  MatrixF c_ref(m, n), c(m, n);
  gemm_naive(1.0f, a, Trans::kNo, b, Trans::kNo, 0.0f, c_ref);
  gemm_blocked(1.0f, a, Trans::kNo, b, Trans::kNo, 0.0f, c);
  expect_near(c_ref, c, 1e-3 * k, "blocked");
}

TEST_P(GemmShapes, ParallelMatchesNaive) {
  const auto [m, k, n] = GetParam();
  const MatrixF a = random_matrix(m, k, 3);
  const MatrixF b = random_matrix(k, n, 4);
  MatrixF c_ref(m, n), c(m, n);
  gemm_naive(1.0f, a, Trans::kNo, b, Trans::kNo, 0.0f, c_ref);
  gemm_parallel(1.0f, a, Trans::kNo, b, Trans::kNo, 0.0f, c);
  expect_near(c_ref, c, 1e-3 * k, "parallel");
}

TEST_P(GemmShapes, AlphaBetaHandled) {
  const auto [m, k, n] = GetParam();
  const MatrixF a = random_matrix(m, k, 5);
  const MatrixF b = random_matrix(k, n, 6);
  MatrixF c_ref = random_matrix(m, n, 7);
  MatrixF c = c_ref;
  gemm_naive(0.5f, a, Trans::kNo, b, Trans::kNo, 2.0f, c_ref);
  gemm_parallel(0.5f, a, Trans::kNo, b, Trans::kNo, 2.0f, c);
  expect_near(c_ref, c, 1e-3 * k, "alpha/beta");
}

TEST_P(GemmShapes, TransposeAMatchesNaive) {
  const auto [m, k, n] = GetParam();
  const MatrixF at = random_matrix(k, m, 8);  // A^T stored
  const MatrixF b = random_matrix(k, n, 9);
  MatrixF c_ref(m, n), c(m, n);
  gemm_naive(1.0f, at, Trans::kYes, b, Trans::kNo, 0.0f, c_ref);
  gemm_parallel(1.0f, at, Trans::kYes, b, Trans::kNo, 0.0f, c);
  expect_near(c_ref, c, 1e-3 * k, "transA");
}

TEST_P(GemmShapes, TransposeBMatchesNaive) {
  const auto [m, k, n] = GetParam();
  const MatrixF a = random_matrix(m, k, 10);
  const MatrixF bt = random_matrix(n, k, 11);  // B^T stored
  MatrixF c_ref(m, n), c(m, n);
  gemm_naive(1.0f, a, Trans::kNo, bt, Trans::kYes, 0.0f, c_ref);
  gemm_blocked(1.0f, a, Trans::kNo, bt, Trans::kYes, 0.0f, c);
  expect_near(c_ref, c, 1e-3 * k, "transB");
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmShapes,
    ::testing::Values(Shape{1, 1, 1}, Shape{1, 7, 3}, Shape{5, 1, 5},
                      Shape{16, 16, 16}, Shape{17, 31, 13}, Shape{64, 64, 64},
                      Shape{33, 129, 65}, Shape{128, 300, 64},
                      Shape{257, 128, 129}, Shape{100, 1, 100}),
    [](const auto& info) {
      // Appends, not a chained operator+: GCC 12 emits spurious -Wrestrict
      // warnings on the temporary chain, and this file must build -Werror.
      std::string name = "m";
      name += std::to_string(info.param.m);
      name += 'k';
      name += std::to_string(info.param.k);
      name += 'n';
      name += std::to_string(info.param.n);
      return name;
    });

TEST(Gemm, ShapeMismatchThrows) {
  const MatrixF a(4, 5), b(6, 3);
  MatrixF c(4, 3);
  EXPECT_THROW(gemm_naive(1.0f, a, Trans::kNo, b, Trans::kNo, 0.0f, c),
               InvalidArgument);
  MatrixF bad_c(5, 3);
  const MatrixF b2(5, 3);
  EXPECT_THROW(gemm_naive(1.0f, a, Trans::kNo, b2, Trans::kNo, 0.0f, bad_c),
               InvalidArgument);
}

TEST(Gemm, MatmulConvenience) {
  const MatrixF a{{1, 2}, {3, 4}};
  const MatrixF b{{5, 6}, {7, 8}};
  const MatrixF c = matmul(a, b);
  EXPECT_FLOAT_EQ(c(0, 0), 19.0f);
  EXPECT_FLOAT_EQ(c(0, 1), 22.0f);
  EXPECT_FLOAT_EQ(c(1, 0), 43.0f);
  EXPECT_FLOAT_EQ(c(1, 1), 50.0f);
  expect_near(c, matmul_naive(a, b), 1e-6, "naive agrees");
}

TEST(Gemm, IdentityIsNeutral) {
  const std::size_t n = 37;
  MatrixF eye(n, n, 0.0f);
  for (std::size_t i = 0; i < n; ++i) eye(i, i) = 1.0f;
  const MatrixF a = random_matrix(n, n, 12);
  expect_near(matmul(a, eye), a, 1e-5, "A*I");
  expect_near(matmul(eye, a), a, 1e-5, "I*A");
}

TEST(Gemm, ZeroKProductIsZeroFill) {
  // beta=0 must overwrite garbage in C even when alpha*A*B contributes 0.
  const MatrixF a(3, 4, 0.0f);
  const MatrixF b(4, 2, 5.0f);
  MatrixF c(3, 2, 123.0f);
  gemm_blocked(1.0f, a, Trans::kNo, b, Trans::kNo, 0.0f, c);
  for (std::size_t i = 0; i < c.size(); ++i) EXPECT_EQ(c.data()[i], 0.0f);
}

}  // namespace
}  // namespace psml::tensor
