// Synthetic dataset generator tests.
#include <gtest/gtest.h>

#include <algorithm>

#include "data/datasets.hpp"
#include "tensor/ops.hpp"
#include "test_util.hpp"

namespace psml::data {
namespace {

using psml::test::expect_near;

TEST(Data, GeometriesMatchSpec) {
  EXPECT_EQ(dataset_geometry(DatasetKind::kMnist).features(), 28u * 28u);
  EXPECT_EQ(dataset_geometry(DatasetKind::kCifar10).features(),
            32u * 32u * 3u);
  EXPECT_EQ(dataset_geometry(DatasetKind::kSynthetic).features(), 32u * 64u);
  EXPECT_GT(dataset_geometry(DatasetKind::kNist).features(),
            dataset_geometry(DatasetKind::kVggFace2).features());
}

class AllDatasets : public ::testing::TestWithParam<DatasetKind> {};

TEST_P(AllDatasets, ShapesAndRanges) {
  const auto ds = make_dataset(GetParam(), LabelScheme::kOneHot10, 64, 5);
  EXPECT_EQ(ds.x.rows(), 64u);
  EXPECT_EQ(ds.x.cols(), ds.geometry.features());
  EXPECT_EQ(ds.y.rows(), 64u);
  EXPECT_EQ(ds.y.cols(), 10u);
  for (std::size_t i = 0; i < ds.x.size(); ++i) {
    ASSERT_GE(ds.x.data()[i], 0.0f);
    ASSERT_LE(ds.x.data()[i], 1.0f);
  }
  // Every row is one-hot.
  for (std::size_t r = 0; r < ds.y.rows(); ++r) {
    float rowsum = 0;
    for (std::size_t c = 0; c < 10; ++c) rowsum += ds.y(r, c);
    ASSERT_FLOAT_EQ(rowsum, 1.0f);
  }
}

TEST_P(AllDatasets, DeterministicInSeed) {
  const auto a = make_dataset(GetParam(), LabelScheme::kBinary01, 32, 9);
  const auto b = make_dataset(GetParam(), LabelScheme::kBinary01, 32, 9);
  EXPECT_TRUE(a.x == b.x);
  EXPECT_TRUE(a.y == b.y);
  const auto c = make_dataset(GetParam(), LabelScheme::kBinary01, 32, 10);
  EXPECT_FALSE(a.x == c.x);
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, AllDatasets,
    ::testing::Values(DatasetKind::kMnist, DatasetKind::kVggFace2,
                      DatasetKind::kNist, DatasetKind::kCifar10,
                      DatasetKind::kSynthetic),
    [](const auto& info) {
      std::string name = to_string(info.param);
      name.erase(std::remove(name.begin(), name.end(), '-'), name.end());
      return name;
    });

TEST(Data, BinaryLabelSchemes) {
  const auto d01 = make_dataset(DatasetKind::kMnist, LabelScheme::kBinary01,
                                128, 6);
  EXPECT_EQ(d01.y.cols(), 1u);
  for (std::size_t r = 0; r < d01.y.rows(); ++r) {
    ASSERT_TRUE(d01.y(r, 0) == 0.0f || d01.y(r, 0) == 1.0f);
  }
  const auto dpm = make_dataset(DatasetKind::kMnist, LabelScheme::kBinaryPm1,
                                128, 6);
  for (std::size_t r = 0; r < dpm.y.rows(); ++r) {
    ASSERT_TRUE(dpm.y(r, 0) == -1.0f || dpm.y(r, 0) == 1.0f);
  }
}

TEST(Data, ClassesAreSeparable) {
  // Means of the two binary classes must differ clearly (else no model can
  // learn anything from the generator).
  const auto ds = make_dataset(DatasetKind::kMnist, LabelScheme::kBinary01,
                               256, 7);
  MatrixF mean0(1, ds.x.cols(), 0.0f), mean1(1, ds.x.cols(), 0.0f);
  std::size_t n0 = 0, n1 = 0;
  for (std::size_t r = 0; r < ds.x.rows(); ++r) {
    MatrixF& target = ds.y(r, 0) > 0.5f ? mean1 : mean0;
    (ds.y(r, 0) > 0.5f ? n1 : n0) += 1;
    for (std::size_t c = 0; c < ds.x.cols(); ++c) {
      target.data()[c] += ds.x(r, c);
    }
  }
  ASSERT_GT(n0, 0u);
  ASSERT_GT(n1, 0u);
  double dist = 0;
  for (std::size_t c = 0; c < ds.x.cols(); ++c) {
    const double d = mean0.data()[c] / n0 - mean1.data()[c] / n1;
    dist += d * d;
  }
  EXPECT_GT(std::sqrt(dist), 0.5);
}

TEST(Data, SliceRows) {
  const auto ds = make_dataset(DatasetKind::kSynthetic,
                               LabelScheme::kBinary01, 10, 8);
  const MatrixF s = slice_rows(ds.x, 4, 3);
  EXPECT_EQ(s.rows(), 3u);
  EXPECT_EQ(s.cols(), ds.x.cols());
  for (std::size_t c = 0; c < s.cols(); ++c) {
    ASSERT_FLOAT_EQ(s(0, c), ds.x(4, c));
    ASSERT_FLOAT_EQ(s(2, c), ds.x(6, c));
  }
  EXPECT_THROW(slice_rows(ds.x, 8, 5), InvalidArgument);
}

TEST(Data, SequenceView) {
  MatrixF batch(2, 8);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    batch.data()[i] = static_cast<float>(i);
  }
  const auto xs = sequence_view(batch, 4);
  ASSERT_EQ(xs.size(), 4u);
  EXPECT_EQ(xs[0].rows(), 2u);
  EXPECT_EQ(xs[0].cols(), 2u);
  EXPECT_FLOAT_EQ(xs[0](0, 0), 0.0f);
  EXPECT_FLOAT_EQ(xs[0](1, 1), 9.0f);
  EXPECT_FLOAT_EQ(xs[3](0, 0), 6.0f);
  EXPECT_THROW(sequence_view(batch, 3), InvalidArgument);
}

}  // namespace
}  // namespace psml::data
