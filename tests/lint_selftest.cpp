// Golden-fixture selftest for the static checkers (psml-lint, psml-taint).
//
// Each fixture under tests/lint_fixtures/ tags the lines that MUST be
// reported with `// EXPECT: <rule-id>` and places clean twins alongside. The
// selftest runs each checker over its fixture subtree and asserts the
// reported (file, line, rule) set equals the EXPECT set exactly — a missed
// seeded leak and a false positive on a clean twin both fail. It also
// validates the SARIF output the CI job uploads, the allowlist
// budget/suppression mechanics, and the stripping pass the token analyses
// run on (psml-ct has its own selftest in ct_selftest.cpp on the same
// harness, tests/selftest_util.hpp).
//
// Invocation (wired up in tests/CMakeLists.txt):
//   lint_selftest <psml-lint> <psml-taint> <fixtures-dir>

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "lint_common.hpp"
#include "selftest_util.hpp"

namespace fs = std::filesystem;
using namespace psml::selftest;

namespace {

std::string g_lint_bin;
std::string g_taint_bin;
fs::path g_fixtures;

}  // namespace

TEST(LintSelftest, LintFixturesExactMatch) {
  const fs::path dir = g_fixtures / "lint";
  const ToolRun r = run_tool(g_lint_bin + " " + dir.string());
  expect_same_findings(parse_findings(r.output), expected_findings(dir));
  EXPECT_NE(r.exit_code, 0) << "seeded violations must fail the run";
}

TEST(LintSelftest, TaintFixturesExactMatch) {
  const fs::path dir = g_fixtures / "taint";
  const ToolRun r = run_tool(g_taint_bin + " " + dir.string());
  expect_same_findings(parse_findings(r.output), expected_findings(dir));
  EXPECT_NE(r.exit_code, 0) << "seeded violations must fail the run";
}

TEST(LintSelftest, LintSarifValid) {
  const fs::path dir = g_fixtures / "lint";
  const fs::path sarif = temp_file("psml_selftest_lint.sarif");
  run_tool(g_lint_bin + " --sarif " + sarif.string() + " " + dir.string());
  EXPECT_EQ(check_sarif(sarif, "psml-lint"), expected_findings(dir).size());
  fs::remove(sarif);
}

TEST(LintSelftest, TaintSarifValid) {
  const fs::path dir = g_fixtures / "taint";
  const fs::path sarif = temp_file("psml_selftest_taint.sarif");
  run_tool(g_taint_bin + " --sarif " + sarif.string() + " " + dir.string());
  EXPECT_EQ(check_sarif(sarif, "psml-taint"), expected_findings(dir).size());
  fs::remove(sarif);
}

TEST(LintSelftest, AllowlistSuppressesAndMarksSarif) {
  const fs::path dir = g_fixtures / "taint";
  const fs::path allow = temp_file("psml_selftest_allow.txt");
  {
    std::ofstream os(allow);
    os << "# selftest allowlist\n"
       << "taint-to-channel share_to_send.cpp fixture: suppression check\n";
  }
  const fs::path sarif = temp_file("psml_selftest_suppressed.sarif");
  const ToolRun r = run_tool(g_taint_bin + " --allowlist " + allow.string() +
                             " --sarif " + sarif.string() + " " +
                             dir.string());

  std::set<Finding> want = expected_findings(dir);
  want.erase({"share_to_send.cpp", 6, "taint-to-channel"});
  expect_same_findings(parse_findings(r.output), want);
  EXPECT_NE(r.output.find("1 allowlisted"), std::string::npos) << r.output;

  // SARIF still carries the suppressed result, flagged as suppressed.
  EXPECT_EQ(check_sarif(sarif, "psml-taint"), want.size() + 1);
  EXPECT_NE(read_file(sarif).find("\"suppressions\""), std::string::npos);
  fs::remove(allow);
  fs::remove(sarif);
}

TEST(LintSelftest, AllowlistBudgetIsHardError) {
  const fs::path allow = temp_file("psml_selftest_overbudget.txt");
  {
    std::ofstream os(allow);
    for (int i = 0; i < 11; ++i) {
      os << "taint-to-log file" << i << ".cpp entry " << i << "\n";
    }
  }
  // The lint fixture tree is taint-clean, so any failure is the budget.
  const fs::path dir = g_fixtures / "lint";
  const ToolRun r = run_tool(g_taint_bin + " --allowlist " + allow.string() +
                             " " + dir.string());
  EXPECT_NE(r.exit_code, 0);
  EXPECT_NE(r.output.find("budget"), std::string::npos) << r.output;
  fs::remove(allow);
}

// --- strip_source unit tests ------------------------------------------------
// The analyzers all tokenize the stripped view, so a stripper desync silently
// blinds every rule downstream of the bad line. These pin the two lexing
// subtleties that have bitten: digit separators (a ' that is NOT a char
// literal) and raw string literals (whose content must not toggle string /
// comment state).

TEST(StripSource, DigitSeparatorsAreNotCharLiterals) {
  const std::vector<std::string> in{
      "std::uint64_t mod = 1'000'003;",
      "auto mask = 0xFFFF'FFFF'0000'0000ull % secret;",
      "ch.send(0, secret);",
  };
  const auto out = psml::lint::strip_source(in);
  // Separators are literal code characters; nothing on these lines is
  // string/comment content, so the lines survive verbatim.
  EXPECT_EQ(out[0], in[0]);
  EXPECT_EQ(out[1], in[1]);
  // A mis-lexed separator would open a bogus char literal and swallow the
  // following statement; the sink call must stay visible.
  EXPECT_EQ(out[2], in[2]);
}

TEST(StripSource, CharLiteralsStillBlankAroundSeparators) {
  const std::vector<std::string> in{
      "if (tag == 'x') { count += 10'000; }",
  };
  const auto out = psml::lint::strip_source(in);
  // The real char literal is blanked (quotes kept), the separator is not.
  EXPECT_EQ(out[0], "if (tag == ' ') { count += 10'000; }");
}

TEST(StripSource, RawStringsBlankWithoutDesync) {
  const std::vector<std::string> in{
      "auto re = R\"(quote \" slash // brace { still literal)\";",
      "ch.send(1, secret);",
  };
  const auto out = psml::lint::strip_source(in);
  // Raw content (including the embedded quote and //) is blanked without
  // terminating at the embedded quote or opening a line comment.
  EXPECT_EQ(out[0].find('{'), std::string::npos) << out[0];
  EXPECT_NE(out[0].find("auto re = "), std::string::npos) << out[0];
  EXPECT_EQ(out[1], in[1]);
}

TEST(StripSource, RawStringDelimitersAndEncodingPrefixes) {
  const std::vector<std::string> in{
      "auto a = u8R\"sep(not closed by )\" alone)sep\"; int live = 1;",
      "auto b = LR\"(x)\"; int also_live = 2;",
      "int fooR = 3; auto s = \"plainR\"; int tailR = 4;",
  };
  const auto out = psml::lint::strip_source(in);
  // d-char-seq delimited raw string: the bare )" inside must not close it.
  EXPECT_NE(out[0].find("int live = 1;"), std::string::npos) << out[0];
  EXPECT_EQ(out[0].find("alone"), std::string::npos) << out[0];
  // Encoding prefixes (LR, u8R, ...) are recognized as raw-string openers.
  EXPECT_NE(out[1].find("int also_live = 2;"), std::string::npos) << out[1];
  EXPECT_EQ(out[1].find('x'), std::string::npos) << out[1];
  // An identifier merely ending in R does not start a raw string; the
  // following ordinary string is still blanked normally.
  EXPECT_NE(out[2].find("int fooR = 3;"), std::string::npos) << out[2];
  EXPECT_EQ(out[2].find("plainR"), std::string::npos) << out[2];
  EXPECT_NE(out[2].find("int tailR = 4;"), std::string::npos) << out[2];
}

TEST(StripSource, MultiLineRawStringKeepsLineCount) {
  const std::vector<std::string> in{
      "auto doc = R\"(first",
      "  \"second\" // not a comment",
      ")\"; int after = 5;",
  };
  const auto out = psml::lint::strip_source(in);
  ASSERT_EQ(out.size(), in.size());  // line numbers must stay stable
  EXPECT_EQ(out[1].find("second"), std::string::npos) << out[1];
  EXPECT_NE(out[2].find("int after = 5;"), std::string::npos) << out[2];
}

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  if (argc < 4) {
    std::fprintf(stderr,
                 "usage: lint_selftest LINT_BIN TAINT_BIN FIXTURE_DIR\n");
    return 2;
  }
  g_lint_bin = argv[1];
  g_taint_bin = argv[2];
  g_fixtures = argv[3];
  return RUN_ALL_TESTS();
}
