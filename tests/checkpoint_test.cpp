// Model checkpoint save/load round trips and mismatch rejection.
#include <gtest/gtest.h>

#include <sstream>

#include "ml/checkpoint.hpp"
#include "ml/models.hpp"
#include "test_util.hpp"

namespace psml::ml {
namespace {

using psml::test::expect_near;
using psml::test::random_matrix;

ModelConfig mlp_config() {
  ModelConfig mc;
  mc.kind = ModelKind::kMlp;
  mc.input_dim = 40;
  mc.classes = 10;
  mc.seed = 501;
  return mc;
}

TEST(Checkpoint, SequentialRoundTrip) {
  auto model = build_plain(mlp_config());
  // Perturb so we are not just re-reading the deterministic init.
  const MatrixF x = random_matrix(8, 40, 1);
  MatrixF y(8, 10, 0.0f);
  for (int r = 0; r < 8; ++r) y(r, r % 10) = 1.0f;
  train_batch(model, LossKind::kMse, x, y, 0.1f);

  std::stringstream ss;
  save_model(ss, model);

  auto mc2 = mlp_config();
  mc2.seed = 999;  // different init — must be fully overwritten
  auto restored = build_plain(mc2);
  load_model(ss, restored);

  expect_near(restored.forward(x), model.forward(x), 1e-6,
              "restored model forward");
}

TEST(Checkpoint, CnnRoundTrip) {
  ModelConfig mc;
  mc.kind = ModelKind::kCnn;
  mc.image_h = 10;
  mc.image_w = 10;
  mc.channels = 1;
  mc.input_dim = 100;
  mc.classes = 10;
  auto model = build_plain(mc);

  std::stringstream ss;
  save_model(ss, model);
  mc.seed = 77;
  auto restored = build_plain(mc);
  load_model(ss, restored);

  const MatrixF x = random_matrix(4, 100, 2);
  expect_near(restored.forward(x), model.forward(x), 1e-6, "cnn restored");
}

TEST(Checkpoint, RnnRoundTrip) {
  RnnModel model(6, 5, 1, 503);
  std::stringstream ss;
  save_model(ss, model);
  RnnModel restored(6, 5, 1, 999);
  load_model(ss, restored);
  expect_near(restored.wx(), model.wx(), 0.0, "wx");
  expect_near(restored.wh(), model.wh(), 0.0, "wh");
  expect_near(restored.wo(), model.wo(), 0.0, "wo");
}

TEST(Checkpoint, FileRoundTrip) {
  auto model = build_plain(mlp_config());
  const std::string path = "/tmp/psml_ckpt_test.bin";
  save_model(path, model);
  auto mc2 = mlp_config();
  mc2.seed = 31337;
  auto restored = build_plain(mc2);
  load_model(path, restored);
  const MatrixF x = random_matrix(3, 40, 3);
  expect_near(restored.forward(x), model.forward(x), 1e-6, "file round trip");
  std::remove(path.c_str());
}

TEST(Checkpoint, ArchitectureMismatchRejected) {
  auto mlp = build_plain(mlp_config());
  std::stringstream ss;
  save_model(ss, mlp);

  ModelConfig lin;
  lin.kind = ModelKind::kLinear;
  lin.input_dim = 40;
  lin.classes = 1;
  auto linear = build_plain(lin);
  EXPECT_THROW(load_model(ss, linear), InvalidArgument);
}

TEST(Checkpoint, ShapeMismatchRejected) {
  auto model = build_plain(mlp_config());
  std::stringstream ss;
  save_model(ss, model);

  auto mc2 = mlp_config();
  mc2.input_dim = 41;  // same layer kinds, different first-layer shape
  auto other = build_plain(mc2);
  EXPECT_THROW(load_model(ss, other), InvalidArgument);
}

TEST(Checkpoint, GarbageRejected) {
  auto model = build_plain(mlp_config());
  std::stringstream ss("this is not a checkpoint at all");
  EXPECT_THROW(load_model(ss, model), InvalidArgument);
  std::stringstream empty;
  EXPECT_THROW(load_model(empty, model), InvalidArgument);
}

TEST(Checkpoint, TruncatedRejected) {
  auto model = build_plain(mlp_config());
  std::stringstream ss;
  save_model(ss, model);
  std::string bytes = ss.str();
  bytes.resize(bytes.size() / 2);
  std::stringstream truncated(bytes);
  EXPECT_THROW(load_model(truncated, model), InvalidArgument);
}

TEST(Checkpoint, MissingFileRejected) {
  auto model = build_plain(mlp_config());
  EXPECT_THROW(load_model("/nonexistent/psml.bin", model), InvalidArgument);
}

TEST(Checkpoint, SecureTrainingResume) {
  // Reconstructed secure model -> checkpoint -> reload -> re-share: the
  // full deployment loop for resuming secure training.
  auto mc = mlp_config();
  auto pair = build_secure_pair(mc);
  auto reconstructed = reconstruct_plain(mc, pair.m0, pair.m1);
  std::stringstream ss;
  save_model(ss, reconstructed);
  auto mc2 = mlp_config();
  mc2.seed = 12345;
  auto reloaded = build_plain(mc2);
  load_model(ss, reloaded);
  const MatrixF x = random_matrix(5, 40, 4);
  expect_near(reloaded.forward(x), reconstructed.forward(x), 1e-6,
              "secure resume chain");
}

}  // namespace
}  // namespace psml::ml
