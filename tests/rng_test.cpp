// RNG tests: determinism of parallel fills, distribution sanity, Philox
// counter-RNG properties, thread-local generator isolation.
#include <gtest/gtest.h>

#include <set>
#include <thread>

#include "rng/philox.hpp"
#include "rng/rng.hpp"
#include "tensor/ops.hpp"

namespace psml::rng {
namespace {

TEST(Rng, ParallelFillDeterministicInSeed) {
  MatrixF a(123, 77), b(123, 77);
  fill_uniform_par(a, -1.0f, 1.0f, 42);
  fill_uniform_par(b, -1.0f, 1.0f, 42);
  EXPECT_TRUE(a == b);
  fill_uniform_par(b, -1.0f, 1.0f, 43);
  EXPECT_FALSE(a == b);
}

TEST(Rng, ParallelNormalDeterministic) {
  MatrixF a(64, 64), b(64, 64);
  fill_normal_par(a, 0.0f, 1.0f, 7);
  fill_normal_par(b, 0.0f, 1.0f, 7);
  EXPECT_TRUE(a == b);
}

TEST(Rng, UniformRangeRespected) {
  MatrixF m(100, 100);
  fill_uniform_par(m, 2.0f, 5.0f, 1);
  for (std::size_t i = 0; i < m.size(); ++i) {
    ASSERT_GE(m.data()[i], 2.0f);
    ASSERT_LT(m.data()[i], 5.0f);
  }
}

TEST(Rng, UniformMeanIsCentered) {
  MatrixF m(200, 200);
  fill_uniform_par(m, -1.0f, 1.0f, 9);
  const double mean = tensor::sum(m) / static_cast<double>(m.size());
  EXPECT_NEAR(mean, 0.0, 0.02);
}

TEST(Rng, NormalMomentsSane) {
  MatrixF m(300, 300);
  fill_normal_par(m, 3.0f, 2.0f, 11);
  double mean = 0, var = 0;
  for (std::size_t i = 0; i < m.size(); ++i) mean += m.data()[i];
  mean /= static_cast<double>(m.size());
  for (std::size_t i = 0; i < m.size(); ++i) {
    var += (m.data()[i] - mean) * (m.data()[i] - mean);
  }
  var /= static_cast<double>(m.size());
  EXPECT_NEAR(mean, 3.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.1);
}

TEST(Rng, BernoulliProportion) {
  MatrixF m(200, 200);
  fill_bernoulli(m, 0.3);
  const double p = tensor::sum(m) / static_cast<double>(m.size());
  EXPECT_NEAR(p, 0.3, 0.02);
}

TEST(Rng, SerialFillUsesThreadGenerator) {
  seed_thread_generator(1234);
  MatrixF a(10, 10);
  fill_uniform(a, 0.0f, 1.0f);
  seed_thread_generator(1234);
  MatrixF b(10, 10);
  fill_uniform(b, 0.0f, 1.0f);
  EXPECT_TRUE(a == b);
}

TEST(Rng, ThreadGeneratorsAreIndependentObjects) {
  std::mt19937* main_gen = &thread_generator();
  std::mt19937* other_gen = nullptr;
  std::thread t([&] { other_gen = &thread_generator(); });
  t.join();
  EXPECT_NE(main_gen, other_gen);
}

TEST(Rng, U64FillsNonConstant) {
  MatrixU64 m(32, 32);
  fill_uniform_u64_par(m, 5);
  std::set<std::uint64_t> uniq(m.data(), m.data() + m.size());
  EXPECT_GT(uniq.size(), m.size() / 2);
  MatrixU64 m2(32, 32);
  fill_uniform_u64_par(m2, 5);
  EXPECT_TRUE(m == m2);
}

TEST(Rng, RandomSeedVaries) {
  EXPECT_NE(random_seed(), random_seed());
}

TEST(Philox, DeterministicInSeedAndCounter) {
  Philox4x32 g(99);
  const auto b1 = g.block(0);
  const auto b2 = g.block(0);
  EXPECT_EQ(b1, b2);
  EXPECT_NE(g.block(0), g.block(1));
  Philox4x32 g2(100);
  EXPECT_NE(g.block(0), g2.block(0));
}

TEST(Philox, FillMatchesParallelFill) {
  MatrixF a(97, 53), b(97, 53);
  philox_fill_uniform(a, -2.0f, 2.0f, 31337);
  philox_fill_uniform_par(b, -2.0f, 2.0f, 31337);
  EXPECT_TRUE(a == b);
}

TEST(Philox, RangeAndDistribution) {
  MatrixF m(300, 300);
  philox_fill_uniform_par(m, 0.0f, 1.0f, 77);
  double mean = 0;
  for (std::size_t i = 0; i < m.size(); ++i) {
    ASSERT_GE(m.data()[i], 0.0f);
    ASSERT_LT(m.data()[i], 1.0f);
    mean += m.data()[i];
  }
  mean /= static_cast<double>(m.size());
  EXPECT_NEAR(mean, 0.5, 0.01);
}

TEST(Philox, U64Fill) {
  MatrixU64 m(11, 13);
  philox_fill_u64(m, 3);
  std::set<std::uint64_t> uniq(m.data(), m.data() + m.size());
  EXPECT_EQ(uniq.size(), m.size());  // collisions astronomically unlikely
}

TEST(Philox, HighQualityBitMixing) {
  // Adjacent counters must produce uncorrelated outputs: count bit flips
  // between consecutive blocks; expect ~50%.
  Philox4x32 g(1);
  std::size_t flips = 0, bits = 0;
  for (std::uint64_t c = 0; c < 1000; ++c) {
    const auto a = g.block(c);
    const auto b = g.block(c + 1);
    for (int i = 0; i < 4; ++i) {
      flips += static_cast<std::size_t>(__builtin_popcount(a[i] ^ b[i]));
      bits += 32;
    }
  }
  const double rate = static_cast<double>(flips) / static_cast<double>(bits);
  EXPECT_NEAR(rate, 0.5, 0.02);
}

TEST(Rng, LockedFillStillCorrectRange) {
  MatrixF m(64, 64);
  fill_uniform_locked(m, 0.0f, 1.0f);
  for (std::size_t i = 0; i < m.size(); ++i) {
    ASSERT_GE(m.data()[i], 0.0f);
    ASSERT_LT(m.data()[i], 1.0f);
  }
}

}  // namespace
}  // namespace psml::rng
