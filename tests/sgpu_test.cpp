// Simulated-device tests: memory accounting, stream ordering, events,
// copies, kernel correctness (gemm, gemm_tc, axpby, activation, philox),
// transfer throttling, and the activity trace.
#include <gtest/gtest.h>

#include <atomic>

#include "common/half.hpp"
#include "common/timer.hpp"
#include "rng/philox.hpp"
#include "sgpu/device.hpp"
#include "sgpu/kernels.hpp"
#include "sgpu/ops.hpp"
#include "tensor/gemm.hpp"
#include "tensor/ops.hpp"
#include "test_util.hpp"

namespace psml::sgpu {
namespace {

using psml::test::expect_near;
using psml::test::random_matrix;

Device::Config small_config() {
  Device::Config cfg;
  cfg.compute_threads = 2;
  cfg.memory_bytes = 8 << 20;  // 8 MiB
  return cfg;
}

TEST(Device, MemoryAccounting) {
  Device dev(small_config());
  EXPECT_EQ(dev.allocated_bytes(), 0u);
  {
    DeviceBuffer b1 = dev.alloc(1 << 20);
    EXPECT_EQ(dev.allocated_bytes(), std::size_t{1} << 20);
    DeviceBuffer b2 = dev.alloc(2 << 20);
    EXPECT_EQ(dev.allocated_bytes(), std::size_t{3} << 20);
  }
  EXPECT_EQ(dev.allocated_bytes(), 0u);  // RAII release
}

TEST(Device, OutOfMemoryThrows) {
  Device dev(small_config());
  EXPECT_THROW(dev.alloc(16 << 20), DeviceError);
  // A failed alloc must not leak accounting.
  EXPECT_EQ(dev.allocated_bytes(), 0u);
}

TEST(Device, BufferMoveSemantics) {
  Device dev(small_config());
  DeviceBuffer a = dev.alloc(1024);
  void* p = a.raw();
  DeviceBuffer b = std::move(a);
  EXPECT_EQ(b.raw(), p);
  EXPECT_FALSE(a.valid());  // NOLINT(bugprone-use-after-move)
  EXPECT_EQ(dev.allocated_bytes(), 1024u);
}

TEST(Stream, ExecutesInOrder) {
  Stream s;
  std::vector<int> order;
  std::mutex m;
  for (int i = 0; i < 100; ++i) {
    s.enqueue([&, i] {
      std::lock_guard<std::mutex> lock(m);
      order.push_back(i);
    });
  }
  s.synchronize();
  ASSERT_EQ(order.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(order[i], i);
}

TEST(Stream, EventOrdersAcrossStreams) {
  Stream producer, consumer;
  std::atomic<int> value{0};
  producer.enqueue([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    value.store(42);
  });
  Event e = producer.record_event();
  consumer.wait_event(e);
  std::atomic<int> seen{-1};
  consumer.enqueue([&] { seen.store(value.load()); });
  consumer.synchronize();
  EXPECT_EQ(seen.load(), 42);
}

TEST(Stream, HostWaitOnEvent) {
  Stream s;
  s.enqueue([] { std::this_thread::sleep_for(std::chrono::milliseconds(20)); });
  Event e = s.record_event();
  EXPECT_FALSE(e.ready());
  e.wait();
  EXPECT_TRUE(e.ready());
}

TEST(Device, CopyRoundTrip) {
  Device dev(small_config());
  const MatrixF src = random_matrix(64, 64, 81);
  Stream& s = dev.default_stream();
  DeviceMatrix d(dev, 64, 64);
  upload_async(dev, s, d, src);
  MatrixF dst(64, 64);
  download_async(dev, s, dst, d);
  s.synchronize();
  expect_near(src, dst, 0.0, "h2d/d2h round trip");
}

TEST(Device, CopyBoundsChecked) {
  Device dev(small_config());
  DeviceBuffer buf = dev.alloc(64);
  std::vector<float> host(1000);
  EXPECT_THROW(
      dev.memcpy_h2d(dev.default_stream(), buf, host.data(), 4000),
      InvalidArgument);
}

class DeviceGemm : public ::testing::TestWithParam<std::size_t> {};

TEST_P(DeviceGemm, MatchesCpu) {
  const std::size_t n = GetParam();
  const MatrixF a = random_matrix(n, n + 5, 82);
  const MatrixF b = random_matrix(n + 5, n + 2, 83);
  const MatrixF ref = tensor::matmul(a, b);
  expect_near(ref, device_matmul(a, b), 1e-3 * n, "device gemm");
}

TEST_P(DeviceGemm, TensorCorePathApproximatesFp32) {
  const std::size_t n = GetParam();
  const MatrixF a = random_matrix(n, n, 84);
  const MatrixF b = random_matrix(n, n, 85);
  const MatrixF ref = tensor::matmul(a, b);
  const MatrixF tc = device_matmul(a, b, /*tensor_core=*/true);
  // fp16 mantissa is 10 bits: relative error ~ 2^-10 per product, grows
  // with sqrt(k); a loose elementwise bound of 0.02 * k covers it.
  expect_near(ref, tc, 2e-3 * static_cast<double>(n) + 0.05, "gemm_tc");
}

INSTANTIATE_TEST_SUITE_P(Sizes, DeviceGemm,
                         ::testing::Values(4, 17, 64, 128, 200));

TEST(Kernels, GemmTcExactlyMatchesHalfReference) {
  // The TC path must equal an explicit fp16-quantize + fp32-accumulate
  // reference, not merely approximate fp32.
  Device dev(small_config());
  const std::size_t m = 9, k = 13, n = 11;
  const MatrixF a = random_matrix(m, k, 86);
  const MatrixF b = random_matrix(k, n, 87);
  MatrixF ref(m, n, 0.0f);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (std::size_t kk = 0; kk < k; ++kk) {
        const float av = half_bits_to_float(float_to_half_bits(a(i, kk)));
        const float bv = half_bits_to_float(float_to_half_bits(b(kk, j)));
        acc += av * bv;
      }
      ref(i, j) = acc;
    }
  }
  MatrixF c(m, n, 0.0f);
  k_gemm_tc(dev, a.data(), b.data(), c.data(), m, n, k, 1.0f, 0.0f);
  expect_near(ref, c, 1e-5, "tc vs half reference");
}

TEST(Kernels, Axpby) {
  Device dev(small_config());
  const MatrixF x = random_matrix(10, 10, 88);
  const MatrixF y = random_matrix(10, 10, 89);
  MatrixF out(10, 10);
  k_axpby(dev, -1.0f, x.data(), y.data(), out.data(), x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    ASSERT_FLOAT_EQ(out.data()[i], -x.data()[i] + y.data()[i]);
  }
}

TEST(Kernels, ActivationPiecewise) {
  Device dev(small_config());
  const MatrixF x{{-2.0f, -0.5f, -0.2f, 0.0f, 0.49f, 0.5f, 3.0f}};
  MatrixF out(1, 7), grad(1, 7);
  k_activation_piecewise(dev, x.data(), out.data(), 7);
  k_activation_piecewise_grad(dev, x.data(), grad.data(), 7);
  const float expect_v[] = {0.0f, 0.0f, 0.3f, 0.5f, 0.99f, 1.0f, 1.0f};
  const float expect_g[] = {0.0f, 0.0f, 1.0f, 1.0f, 1.0f, 0.0f, 0.0f};
  for (int i = 0; i < 7; ++i) {
    EXPECT_NEAR(out.data()[i], expect_v[i], 1e-6) << i;
    EXPECT_FLOAT_EQ(grad.data()[i], expect_g[i]) << i;
  }
}

TEST(Kernels, PhiloxKernelMatchesHostPhilox) {
  Device dev(small_config());
  MatrixF dev_out(33, 17), host_out(33, 17);
  k_philox_uniform(dev, dev_out.data(), dev_out.size(), -1.0f, 1.0f, 4242);
  rng::philox_fill_uniform(host_out, -1.0f, 1.0f, 4242);
  expect_near(dev_out, host_out, 0.0, "philox kernel");
}

TEST(Device, PipelineOverlapsCopiesAndCompute) {
  // With a throttled copy engine, two streams (copy || compute) must finish
  // faster than the same work serialized on one stream.
  Device::Config cfg = small_config();
  cfg.pcie_gbps = 0.5;  // slow PCIe so copies dominate
  Device dev(cfg);
  const std::size_t n = 256;
  const MatrixF a = random_matrix(n, n, 90);

  auto run = [&](bool overlapped) {
    auto copy_s = dev.create_stream();
    auto comp_s = dev.create_stream();
    Stream& cs = overlapped ? *copy_s : *comp_s;
    Timer t;
    std::vector<DeviceMatrix> bufs;
    for (int i = 0; i < 4; ++i) {
      bufs.emplace_back(dev, n, n);
      upload_async(dev, cs, bufs.back(), a);
      Event e = cs.record_event();
      comp_s->wait_event(e);
      dev.launch(*comp_s, "spin", [] {
        std::this_thread::sleep_for(std::chrono::milliseconds(15));
      });
    }
    comp_s->synchronize();
    copy_s->synchronize();
    return t.seconds();
  };

  // Best-of-3 per mode: wall-clock under ctest -j load is noisy.
  double serial = 1e100, overlapped = 1e100;
  for (int i = 0; i < 3; ++i) {
    serial = std::min(serial, run(false));
    overlapped = std::min(overlapped, run(true));
  }
  EXPECT_LT(overlapped, serial);
}

TEST(Trace, RecordsActivities) {
  Device dev(small_config());
  dev.trace().clear();
  const MatrixF a = random_matrix(32, 32, 91);
  (void)device_matmul(dev, a, a);
  const auto summary = dev.trace().summary();
  EXPECT_EQ(summary.at("memcpy_h2d").count, 2u);
  EXPECT_EQ(summary.at("memcpy_d2h").count, 1u);
  EXPECT_EQ(summary.at("kernel:gemm").count, 1u);
  EXPECT_GT(summary.at("kernel:gemm").total_sec, 0.0);
  EXPECT_EQ(summary.at("memcpy_h2d").bytes, 2 * a.bytes());
}

TEST(Trace, DisableStopsRecording) {
  Device dev(small_config());
  dev.trace().clear();
  dev.trace().set_enabled(false);
  const MatrixF a = random_matrix(8, 8, 92);
  (void)device_matmul(dev, a, a);
  EXPECT_TRUE(dev.trace().snapshot().empty());
  dev.trace().set_enabled(true);
}

TEST(Device, ThrottleEnforcesBandwidth) {
  Device::Config cfg = small_config();
  cfg.pcie_gbps = 1.0;  // 1 GB/s
  Device dev(cfg);
  const std::size_t bytes = 4 << 20;  // 4 MiB -> >= 4 ms at 1 GB/s
  DeviceBuffer buf = dev.alloc(bytes);
  std::vector<float> host(bytes / sizeof(float), 1.0f);
  Timer t;
  dev.memcpy_h2d(dev.default_stream(), buf, host.data(), bytes);
  dev.default_stream().synchronize();
  EXPECT_GE(t.seconds(), 0.003);
}

TEST(Device, GlobalDeviceIsSingleton) {
  EXPECT_EQ(&Device::global(), &Device::global());
}

}  // namespace
}  // namespace psml::sgpu
