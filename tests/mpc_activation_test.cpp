// Secure activation (Eq. 9) and masked-comparison protocol tests.
#include <gtest/gtest.h>

#include "mpc/activation.hpp"
#include "mpc/share.hpp"
#include "mpc/triplet.hpp"
#include "tensor/ops.hpp"
#include "test_util.hpp"

namespace psml::mpc {
namespace {

using psml::test::expect_near;
using psml::test::random_matrix;
using psml::test::run_parties;

PartyOptions cpu_opts() {
  PartyOptions opts = PartyOptions::parsecureml();
  opts.use_gpu = false;
  opts.adaptive = false;
  return opts;
}

TEST(ActivationRef, MatchesEq9) {
  const MatrixF x{{-1.0f, -0.5f, 0.0f, 0.4f, 0.5f, 2.0f}};
  const MatrixF y = activation_ref(x);
  EXPECT_FLOAT_EQ(y(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(y(0, 2), 0.5f);
  EXPECT_FLOAT_EQ(y(0, 3), 0.9f);
  EXPECT_FLOAT_EQ(y(0, 5), 1.0f);
  const MatrixF g = activation_grad_ref(x);
  EXPECT_FLOAT_EQ(g(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(g(0, 2), 1.0f);
  EXPECT_FLOAT_EQ(g(0, 5), 0.0f);
}

class ActivationSizes
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(ActivationSizes, SecureMatchesReference) {
  const auto [m, n] = GetParam();
  // Pre-activations spanning all three regions.
  const MatrixF x = random_matrix(m, n, 301, -2.0f, 2.0f);
  const MatrixF expected = activation_ref(x);
  const MatrixF expected_grad = activation_grad_ref(x);

  TripletDealer dealer(nullptr, {false, false, 91});
  auto [a0, a1] = dealer.make_activation(m, n);
  const auto sx = share_float(x, 31);

  ActivationResult r0, r1;
  run_parties(
      cpu_opts(),
      [&](PartyContext& ctx) { r0 = secure_activation(ctx, sx.s0, a0); },
      [&](PartyContext& ctx) { r1 = secure_activation(ctx, sx.s1, a1); });

  // Boundary elements can flip to the adjacent region when the share noise
  // crosses the threshold; with inputs drawn continuously this happens with
  // probability ~0. Values must reconstruct to f(x).
  expect_near(reconstruct_float(r0.value_share, r1.value_share), expected,
              2e-3, "activation value");
  // Both servers computed the same public mask, equal to f'(x).
  expect_near(r0.grad_mask, r1.grad_mask, 0.0, "masks agree");
  expect_near(r0.grad_mask, expected_grad, 0.0, "mask correct");
}

INSTANTIATE_TEST_SUITE_P(Sizes, ActivationSizes,
                         ::testing::Values(std::pair<std::size_t, std::size_t>{1, 1},
                                           std::pair<std::size_t, std::size_t>{7, 13},
                                           std::pair<std::size_t, std::size_t>{64, 10},
                                           std::pair<std::size_t, std::size_t>{128, 64}));

TEST(Activation, SaturatedRegionsShareCorrectly) {
  // All-high input: f = 1 everywhere; shares must be (0, 1) per element.
  MatrixF x(4, 4, 5.0f);
  TripletDealer dealer(nullptr, {false, false, 92});
  auto [a0, a1] = dealer.make_activation(4, 4);
  const auto sx = share_float(x, 32);
  ActivationResult r0, r1;
  run_parties(
      cpu_opts(),
      [&](PartyContext& ctx) { r0 = secure_activation(ctx, sx.s0, a0); },
      [&](PartyContext& ctx) { r1 = secure_activation(ctx, sx.s1, a1); });
  for (std::size_t i = 0; i < r0.value_share.size(); ++i) {
    EXPECT_FLOAT_EQ(r0.value_share.data()[i], 0.0f);
    EXPECT_FLOAT_EQ(r1.value_share.data()[i], 1.0f);
    EXPECT_FLOAT_EQ(r0.grad_mask.data()[i], 0.0f);
  }
}

TEST(Activation, MaterialShapeMismatchThrows) {
  TripletDealer dealer(nullptr, {false, false, 93});
  auto [a0, a1] = dealer.make_activation(3, 3);
  const MatrixF x = random_matrix(4, 3, 302);
  EXPECT_THROW(
      run_parties(
          cpu_opts(),
          [&](PartyContext& ctx) { secure_activation(ctx, x, a0); },
          [&](PartyContext& ctx) { secure_activation(ctx, x, a1); }),
      InvalidArgument);
}

TEST(SecureLessThan, ComputesPublicMask) {
  const MatrixF x{{-3.0f, 0.2f, 0.9f, 1.0f, 1.5f, 42.0f}};
  TripletDealer dealer(nullptr, {false, false, 94});
  auto [a0, a1] = dealer.make_activation(1, 6);
  const auto sx = share_float(x, 33);
  MatrixF m0, m1;
  run_parties(
      cpu_opts(),
      [&](PartyContext& ctx) {
        m0 = secure_less_than(ctx, sx.s0, 1.0f, a0);
      },
      [&](PartyContext& ctx) {
        m1 = secure_less_than(ctx, sx.s1, 1.0f, a1);
      });
  expect_near(m0, m1, 0.0, "masks agree");
  EXPECT_FLOAT_EQ(m0(0, 0), 1.0f);  // -3 < 1
  EXPECT_FLOAT_EQ(m0(0, 1), 1.0f);  // 0.2 < 1
  EXPECT_FLOAT_EQ(m0(0, 2), 1.0f);  // 0.9 < 1
  EXPECT_FLOAT_EQ(m0(0, 4), 0.0f);  // 1.5 >= 1
  EXPECT_FLOAT_EQ(m0(0, 5), 0.0f);  // 42 >= 1
}

TEST(Activation, FromStoreConsumesMaterial) {
  TripletDealer dealer(nullptr, {false, false, 95});
  auto [st0, st1] = dealer.generate({{TripletKind::kActivation, 2, 0, 2}});
  const MatrixF x = random_matrix(2, 2, 303);
  const auto sx = share_float(x, 34);
  ActivationResult r0, r1;
  run_parties(
      cpu_opts(),
      [&](PartyContext& ctx) {
        ctx.set_triplets(std::move(st0));
        r0 = secure_activation(ctx, sx.s0);
        EXPECT_EQ(ctx.triplets().activation_size(), 0u);
      },
      [&](PartyContext& ctx) {
        ctx.set_triplets(std::move(st1));
        r1 = secure_activation(ctx, sx.s1);
      });
  expect_near(reconstruct_float(r0.value_share, r1.value_share),
              activation_ref(x), 2e-3, "store-driven activation");
}

}  // namespace
}  // namespace psml::mpc
