// Triplet dealer tests: Beaver invariants, determinism, store accounting,
// recycle semantics, plan generation.
#include <gtest/gtest.h>

#include "mpc/triplet.hpp"
#include "tensor/gemm.hpp"
#include "tensor/ops.hpp"
#include "test_util.hpp"

namespace psml::mpc {
namespace {

using psml::test::expect_near;

TEST(Dealer, MatmulTripletInvariant) {
  TripletDealer dealer(nullptr, {false, false, 801});
  for (const auto& [m, k, n] :
       {std::tuple<std::size_t, std::size_t, std::size_t>{1, 1, 1},
        {5, 9, 3},
        {32, 64, 16}}) {
    auto [t0, t1] = dealer.make_matmul(m, k, n);
    const MatrixF u = reconstruct_float(t0.u, t1.u);
    const MatrixF v = reconstruct_float(t0.v, t1.v);
    const MatrixF z = reconstruct_float(t0.z, t1.z);
    expect_near(z, tensor::matmul(u, v), 1e-3 * static_cast<double>(k) + 1e-3,
                "Z = U x V");
  }
}

TEST(Dealer, ElementwiseTripletInvariant) {
  TripletDealer dealer(nullptr, {false, false, 802});
  auto [t0, t1] = dealer.make_elementwise(7, 11);
  const MatrixF u = reconstruct_float(t0.u, t1.u);
  const MatrixF v = reconstruct_float(t0.v, t1.v);
  const MatrixF z = reconstruct_float(t0.z, t1.z);
  MatrixF expected;
  tensor::hadamard(u, v, expected);
  expect_near(z, expected, 1e-3, "Z = U .* V");
}

TEST(Dealer, ActivationMasksArePositive) {
  TripletDealer dealer(nullptr, {false, false, 803});
  auto [a0, a1] = dealer.make_activation(9, 9);
  const MatrixF s_lo = reconstruct_float(a0.s_lo, a1.s_lo);
  const MatrixF s_hi = reconstruct_float(a0.s_hi, a1.s_hi);
  for (std::size_t i = 0; i < s_lo.size(); ++i) {
    ASSERT_GE(s_lo.data()[i], 0.5f - 1e-3f);
    ASSERT_LE(s_lo.data()[i], 2.0f + 1e-3f);
    ASSERT_GT(s_hi.data()[i], 0.0f);
  }
}

TEST(Dealer, DeterministicInSeed) {
  TripletDealer d1(nullptr, {false, false, 804});
  TripletDealer d2(nullptr, {false, false, 804});
  auto [a0, a1] = d1.make_matmul(4, 4, 4);
  auto [b0, b1] = d2.make_matmul(4, 4, 4);
  EXPECT_TRUE(a0.u == b0.u);
  EXPECT_TRUE(a1.z == b1.z);
  TripletDealer d3(nullptr, {false, false, 805});
  auto [c0, c1] = d3.make_matmul(4, 4, 4);
  EXPECT_FALSE(a0.u == c0.u);
}

TEST(Dealer, GpuAndCpuDealersAgreeOnAlgebra) {
  // Same seed, different engines: the triplets differ only in Z rounding.
  TripletDealer cpu(nullptr, {false, false, 806});
  TripletDealer gpu(&sgpu::Device::global(), {true, false, 806});
  auto [c0, c1] = cpu.make_matmul(64, 96, 64);
  auto [g0, g1] = gpu.make_matmul(64, 96, 64);
  EXPECT_TRUE(c0.u == g0.u);  // same RNG stream
  expect_near(reconstruct_float(c0.z, c1.z), reconstruct_float(g0.z, g1.z),
              1e-2, "Z agree across engines");
}

TEST(Store, BytesAccounting) {
  TripletDealer dealer(nullptr, {false, false, 807});
  auto [st0, st1] = dealer.generate({{TripletKind::kMatMul, 4, 8, 2}});
  // u 4x8 + v 8x2 + z 4x2 = 32+16+8 floats = 224 bytes.
  EXPECT_EQ(st0.bytes(), 224u);
  EXPECT_EQ(st1.bytes(), 224u);
}

TEST(Store, GenerateHonorsPlanOrderAndKinds) {
  TripletDealer dealer(nullptr, {false, false, 808});
  auto [st0, st1] = dealer.generate({{TripletKind::kMatMul, 2, 3, 4},
                                     {TripletKind::kElementwise, 5, 0, 6},
                                     {TripletKind::kMatMul, 7, 8, 9},
                                     {TripletKind::kActivation, 2, 0, 2}});
  EXPECT_EQ(st0.matmul_size(), 2u);
  EXPECT_EQ(st0.elementwise_size(), 1u);
  EXPECT_EQ(st0.activation_size(), 1u);
  EXPECT_EQ(st0.pop_matmul().u.rows(), 2u);
  EXPECT_EQ(st0.pop_matmul().u.rows(), 7u);
  EXPECT_EQ(st0.pop_elementwise().u.rows(), 5u);
  EXPECT_TRUE(st0.empty() == false);  // activation still present
  (void)st0.pop_activation();
  EXPECT_TRUE(st0.empty());
}

TEST(Store, RecycleTogglesAndResets) {
  TripletDealer dealer(nullptr, {false, false, 809});
  auto [st0, st1] = dealer.generate({{TripletKind::kMatMul, 2, 2, 2},
                                     {TripletKind::kMatMul, 3, 3, 3}});
  st0.set_recycle(true);
  EXPECT_TRUE(st0.recycle());
  EXPECT_EQ(st0.pop_matmul().u.rows(), 2u);
  // Re-enabling resets cursors to the front.
  st0.set_recycle(true);
  EXPECT_EQ(st0.pop_matmul().u.rows(), 2u);
  // Disabling recycle goes back to consuming pops.
  st0.set_recycle(false);
  EXPECT_EQ(st0.pop_matmul().u.rows(), 2u);
  EXPECT_EQ(st0.matmul_size(), 1u);
}

TEST(Dealer, GpuWithoutDeviceRejected) {
  EXPECT_THROW(TripletDealer(nullptr, {true, false, 810}), InvalidArgument);
}

TEST(Dealer, SharesOfTripletLookIndependent) {
  // Each share alone must be decorrelated from U: correlation over many
  // entries close to zero relative to share scale.
  TripletDealer dealer(nullptr, {false, false, 811});
  auto [t0, t1] = dealer.make_matmul(64, 64, 4);
  const MatrixF u = reconstruct_float(t0.u, t1.u);
  double dot = 0, nu = 0, ns = 0;
  for (std::size_t i = 0; i < u.size(); ++i) {
    dot += static_cast<double>(u.data()[i]) * t0.u.data()[i];
    nu += static_cast<double>(u.data()[i]) * u.data()[i];
    ns += static_cast<double>(t0.u.data()[i]) * t0.u.data()[i];
  }
  const double corr = dot / std::sqrt(nu * ns);
  EXPECT_LT(std::abs(corr), 0.1);
}

}  // namespace
}  // namespace psml::mpc
