// Typed device-op wrapper tests (sgpu/ops.hpp): shape validation, async
// kernel wrappers, stream round trips, multi-op chains.
#include <gtest/gtest.h>

#include "sgpu/ops.hpp"
#include "tensor/gemm.hpp"
#include "tensor/ops.hpp"
#include "test_util.hpp"

namespace psml::sgpu {
namespace {

using psml::test::expect_near;
using psml::test::random_matrix;

Device& dev() {
  static Device d{Device::Config{.compute_threads = 2,
                                 .pcie_gbps = 0.0,
                                 .memory_bytes = 256 << 20,
                                 .launch_overhead_us = 0.0}};
  return d;
}

TEST(DeviceMatrix, AccessorsAndAllocation) {
  DeviceMatrix m(dev(), 10, 20);
  EXPECT_EQ(m.rows(), 10u);
  EXPECT_EQ(m.cols(), 20u);
  EXPECT_EQ(m.size(), 200u);
  EXPECT_EQ(m.bytes(), 800u);
  EXPECT_TRUE(m.valid());
  DeviceMatrix empty;
  EXPECT_FALSE(empty.valid());
}

TEST(Ops, UploadShapeMismatchThrows) {
  DeviceMatrix d(dev(), 4, 4);
  const MatrixF wrong = random_matrix(4, 5, 1101);
  EXPECT_THROW(upload_async(dev(), dev().default_stream(), d, wrong),
               InvalidArgument);
  MatrixF host(5, 4);
  EXPECT_THROW(download_async(dev(), dev().default_stream(), host, d),
               InvalidArgument);
}

TEST(Ops, GemmShapeValidation) {
  DeviceMatrix a(dev(), 3, 4), b(dev(), 5, 2), c(dev(), 3, 2);
  EXPECT_THROW(gemm_async(dev(), dev().default_stream(), a, b, c),
               InvalidArgument);
  DeviceMatrix b2(dev(), 4, 2), bad_c(dev(), 2, 2);
  EXPECT_THROW(gemm_async(dev(), dev().default_stream(), a, b2, bad_c),
               InvalidArgument);
}

TEST(Ops, AxpbyAsyncMatchesHost) {
  const std::size_t n = 33;
  const MatrixF x = random_matrix(n, n, 1102);
  const MatrixF y = random_matrix(n, n, 1103);
  Stream& s = dev().default_stream();
  DeviceMatrix dx = to_device_async(dev(), s, x);
  DeviceMatrix dy = to_device_async(dev(), s, y);
  DeviceMatrix dout(dev(), n, n);
  axpby_async(dev(), s, -2.0f, dx, dy, dout);
  MatrixF out(n, n);
  download_async(dev(), s, out, dout);
  s.synchronize();
  for (std::size_t i = 0; i < out.size(); ++i) {
    ASSERT_FLOAT_EQ(out.data()[i], -2.0f * x.data()[i] + y.data()[i]);
  }
}

TEST(Ops, AddInplaceAsync) {
  const MatrixF x = random_matrix(8, 8, 1104);
  const MatrixF acc0 = random_matrix(8, 8, 1105);
  Stream& s = dev().default_stream();
  DeviceMatrix dx = to_device_async(dev(), s, x);
  DeviceMatrix dacc = to_device_async(dev(), s, acc0);
  add_inplace_async(dev(), s, dx, dacc);
  MatrixF out(8, 8);
  download_async(dev(), s, out, dacc);
  s.synchronize();
  MatrixF expected;
  tensor::add(acc0, x, expected);
  expect_near(out, expected, 0.0, "add inplace");
}

TEST(Ops, ActivationAsyncPair) {
  const MatrixF x = random_matrix(16, 16, 1106, -1.5f, 1.5f);
  Stream& s = dev().default_stream();
  DeviceMatrix dx = to_device_async(dev(), s, x);
  DeviceMatrix dv(dev(), 16, 16), dg(dev(), 16, 16);
  activation_async(dev(), s, dx, dv);
  activation_grad_async(dev(), s, dx, dg);
  MatrixF v(16, 16), g(16, 16);
  download_async(dev(), s, v, dv);
  download_async(dev(), s, g, dg);
  s.synchronize();
  for (std::size_t i = 0; i < x.size(); ++i) {
    const float xi = x.data()[i];
    const float expect_v = xi < -0.5f ? 0.0f : (xi > 0.5f ? 1.0f : xi + 0.5f);
    ASSERT_FLOAT_EQ(v.data()[i], expect_v);
    ASSERT_FLOAT_EQ(g.data()[i], (xi > -0.5f && xi < 0.5f) ? 1.0f : 0.0f);
  }
}

TEST(Ops, PhiloxAsyncDeterministic) {
  Stream& s = dev().default_stream();
  DeviceMatrix d1(dev(), 12, 12), d2(dev(), 12, 12);
  philox_uniform_async(dev(), s, d1, 0.0f, 1.0f, 999);
  philox_uniform_async(dev(), s, d2, 0.0f, 1.0f, 999);
  MatrixF m1(12, 12), m2(12, 12);
  download_async(dev(), s, m1, d1);
  download_async(dev(), s, m2, d2);
  s.synchronize();
  EXPECT_TRUE(m1 == m2);
}

TEST(Ops, ChainedOpsOnOneStreamAreOrdered) {
  // upload -> gemm -> axpby -> download as one in-order stream program.
  const std::size_t n = 24;
  const MatrixF a = random_matrix(n, n, 1107);
  const MatrixF b = random_matrix(n, n, 1108);
  Stream& s = dev().default_stream();
  DeviceMatrix da = to_device_async(dev(), s, a);
  DeviceMatrix db = to_device_async(dev(), s, b);
  DeviceMatrix dc(dev(), n, n);
  gemm_async(dev(), s, da, db, dc);
  DeviceMatrix dout(dev(), n, n);
  axpby_async(dev(), s, 1.0f, dc, da, dout);  // out = (A x B) + A
  MatrixF out(n, n);
  download_async(dev(), s, out, dout);
  s.synchronize();
  MatrixF expected;
  tensor::add(tensor::matmul(a, b), a, expected);
  expect_near(out, expected, 1e-3, "chained ops");
}

TEST(Ops, GemmAccumulatesWithBeta) {
  const std::size_t n = 16;
  const MatrixF a = random_matrix(n, n, 1109);
  const MatrixF b = random_matrix(n, n, 1110);
  const MatrixF c0 = random_matrix(n, n, 1111);
  Stream& s = dev().default_stream();
  DeviceMatrix da = to_device_async(dev(), s, a);
  DeviceMatrix db = to_device_async(dev(), s, b);
  DeviceMatrix dc = to_device_async(dev(), s, c0);
  gemm_async(dev(), s, da, db, dc, 2.0f, 1.0f);
  MatrixF out(n, n);
  download_async(dev(), s, out, dc);
  s.synchronize();
  MatrixF expected = c0;
  tensor::gemm_parallel(2.0f, a, tensor::Trans::kNo, b, tensor::Trans::kNo,
                        1.0f, expected);
  expect_near(out, expected, 1e-3, "beta accumulate");
}

TEST(Ops, ManySmallBuffersNoLeak) {
  const std::size_t before = dev().allocated_bytes();
  for (int i = 0; i < 200; ++i) {
    DeviceMatrix tmp(dev(), 16, 16);
    (void)tmp;
  }
  EXPECT_EQ(dev().allocated_bytes(), before);
}

}  // namespace
}  // namespace psml::sgpu
