// Shared harness for the analyzer golden-fixture selftests (lint_selftest,
// ct_selftest): tool invocation, EXPECT-marker parsing, exact-match
// assertion, and SARIF 2.1.0 shape validation.
#pragma once

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <tuple>

#include "json_mini.hpp"

// check_sarif wants to bail out of a helper (not the TEST body), where
// ASSERT_* cannot return a value; this wraps the pattern.
#define ASSERT_NE_OR_RETURN(ptr)       \
  EXPECT_TRUE(ptr) << #ptr " missing"; \
  if (!(ptr)) return 0

namespace psml::selftest {

namespace fs = std::filesystem;

struct ToolRun {
  std::string output;
  int exit_code = -1;
};

// Runs `cmd` with stderr folded into stdout; captures everything.
inline ToolRun run_tool(const std::string& cmd) {
  ToolRun r;
  FILE* pipe = popen((cmd + " 2>&1").c_str(), "r");
  if (!pipe) return r;
  char buf[4096];
  std::size_t n = 0;
  while ((n = fread(buf, 1, sizeof(buf), pipe)) > 0) {
    r.output.append(buf, n);
  }
  const int status = pclose(pipe);
  r.exit_code = status < 0 ? -1 : WEXITSTATUS(status);
  return r;
}

// (basename, line, rule) — basenames are unique across the fixture tree, and
// comparing basenames sidesteps absolute-vs-relative path differences
// between what ctest passes and what the tool prints.
using Finding = std::tuple<std::string, std::size_t, std::string>;

inline std::set<Finding> parse_findings(const std::string& output) {
  std::set<Finding> out;
  static const std::regex line_re(R"(^(.*):(\d+): \[([a-z0-9-]+)\])");
  std::istringstream is(output);
  std::string line;
  while (std::getline(is, line)) {
    std::smatch m;
    if (std::regex_search(line, m, line_re)) {
      out.insert({fs::path(m[1].str()).filename().string(),
                  static_cast<std::size_t>(std::stoul(m[2].str())),
                  m[3].str()});
    }
  }
  return out;
}

inline std::set<Finding> expected_findings(const fs::path& dir) {
  std::set<Finding> out;
  for (const auto& ent : fs::recursive_directory_iterator(dir)) {
    if (!ent.is_regular_file()) continue;
    const std::string ext = ent.path().extension().string();
    if (ext != ".cpp" && ext != ".hpp" && ext != ".h" && ext != ".cc") {
      continue;
    }
    std::ifstream is(ent.path());
    std::string line;
    std::size_t ln = 0;
    static const std::regex expect_re(R"(//\s*EXPECT:\s*([a-z0-9-]+))");
    while (std::getline(is, line)) {
      ++ln;
      std::smatch m;
      if (std::regex_search(line, m, expect_re)) {
        out.insert({ent.path().filename().string(), ln, m[1].str()});
      }
    }
  }
  return out;
}

inline std::string describe(const std::set<Finding>& s) {
  std::ostringstream os;
  for (const auto& [file, line, rule] : s) {
    os << "  " << file << ":" << line << " [" << rule << "]\n";
  }
  return os.str();
}

inline void expect_same_findings(const std::set<Finding>& got,
                                 const std::set<Finding>& want) {
  EXPECT_EQ(got, want) << "reported:\n"
                       << describe(got) << "expected:\n"
                       << describe(want);
}

inline std::string read_file(const fs::path& p) {
  std::ifstream is(p, std::ios::binary);
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

inline fs::path temp_file(const std::string& name) {
  return fs::temp_directory_path() / name;
}

// Validates the SARIF log at `path` against the 2.1.0 shape CI uploads and
// returns the run's results array size (reported + suppressed).
inline std::size_t check_sarif(const fs::path& path,
                               const std::string& tool_name) {
  std::string err;
  const auto root = psml::lint::json::parse(read_file(path), err);
  EXPECT_TRUE(root) << "SARIF parse error: " << err;
  if (!root) return 0;
  using psml::lint::json::Kind;

  const auto* version = root->get("version");
  ASSERT_NE_OR_RETURN(version);
  EXPECT_EQ(version->str, "2.1.0");
  EXPECT_TRUE(root->get("$schema"));

  const auto* runs = root->get("runs");
  EXPECT_TRUE(runs && runs->is(Kind::kArray) && runs->array.size() == 1);
  if (!runs || runs->array.empty()) return 0;
  const auto* run = runs->at(0);

  const auto* driver =
      run->get("tool") ? run->get("tool")->get("driver") : nullptr;
  EXPECT_TRUE(driver) << "runs[0].tool.driver missing";
  if (!driver) return 0;
  EXPECT_EQ(driver->get("name") ? driver->get("name")->str : "", tool_name);
  const auto* rules = driver->get("rules");
  EXPECT_TRUE(rules && rules->is(Kind::kArray) && !rules->array.empty());

  const auto* results = run->get("results");
  EXPECT_TRUE(results && results->is(Kind::kArray));
  if (!results) return 0;
  for (const auto& res : results->array) {
    const auto* rule_id = res->get("ruleId");
    EXPECT_TRUE(rule_id && rule_id->is(Kind::kString));
    const auto* msg = res->get("message");
    EXPECT_TRUE(msg && msg->get("text"));
    const auto* locs = res->get("locations");
    EXPECT_TRUE(locs && locs->is(Kind::kArray) && locs->array.size() == 1);
    if (!locs || locs->array.empty()) continue;
    const auto* phys = locs->at(0)->get("physicalLocation");
    EXPECT_TRUE(phys && phys->get("artifactLocation") &&
                phys->get("artifactLocation")->get("uri"));
    EXPECT_TRUE(phys && phys->get("region") &&
                phys->get("region")->get("startLine"));
  }
  return results->array.size();
}

// Counts the active (non-comment, non-blank) entries of an allowlist file.
inline std::size_t count_allowlist_entries(const fs::path& p) {
  std::ifstream is(p);
  std::string line;
  std::size_t n = 0;
  while (std::getline(is, line)) {
    const std::size_t b = line.find_first_not_of(" \t");
    if (b == std::string::npos || line[b] == '#') continue;
    ++n;
  }
  return n;
}

}  // namespace psml::selftest
