// Profiler and adaptive-dispatch tests.
#include <gtest/gtest.h>

#include "profile/adaptive.hpp"
#include "profile/profiler.hpp"
#include "tensor/gemm.hpp"

namespace psml::profile {
namespace {

TEST(Profiler, AccumulatesPhases) {
  Profiler p;
  p.add("phase_a", 1.0);
  p.add("phase_a", 2.0);
  p.add("phase_b", 0.5);
  EXPECT_DOUBLE_EQ(p.total("phase_a"), 3.0);
  EXPECT_DOUBLE_EQ(p.total("phase_b"), 0.5);
  EXPECT_DOUBLE_EQ(p.total("missing"), 0.0);
  const auto report = p.report();
  EXPECT_EQ(report.at("phase_a").count, 2u);
  p.reset();
  EXPECT_DOUBLE_EQ(p.total("phase_a"), 0.0);
}

TEST(Profiler, ScopedPhaseRecords) {
  Profiler p;
  {
    ScopedPhase sp(p, "scoped");
    volatile double x = 0;
    for (int i = 0; i < 10000; ++i) x = x + 1;
  }
  EXPECT_GT(p.total("scoped"), 0.0);
  EXPECT_EQ(p.report().at("scoped").count, 1u);
}

TEST(Profiler, ThreadSafeAccumulation) {
  Profiler p;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&p] {
      for (int i = 0; i < 1000; ++i) p.add("conc", 0.001);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_NEAR(p.total("conc"), 4.0, 1e-9);
  EXPECT_EQ(p.report().at("conc").count, 4000u);
}

TEST(Adaptive, UncalibratedUsesStaticThreshold) {
  AdaptiveDispatch d;
  EXPECT_FALSE(d.model().calibrated);
  EXPECT_FALSE(d.decide(8, 8, 8).use_gpu);        // tiny -> CPU
  EXPECT_TRUE(d.decide(1024, 1024, 1024).use_gpu);  // big -> GPU
}

TEST(Adaptive, CalibratedModelPrefersCpuForTinyGpuForHuge) {
  AdaptiveDispatch d;
  d.calibrate(sgpu::Device::global());
  ASSERT_TRUE(d.model().calibrated);
  EXPECT_GE(d.model().cpu_sec_per_flop, 0.0);

  const auto tiny = d.decide(4, 4, 4);
  const auto huge = d.decide(4096, 4096, 4096);
  // Estimated costs must be monotone in problem size.
  EXPECT_LT(tiny.est_cpu_sec, huge.est_cpu_sec);
  EXPECT_LT(tiny.est_gpu_sec, huge.est_gpu_sec);
}

TEST(Adaptive, ManualModelRespected) {
  AdaptiveDispatch d;
  AdaptiveDispatch::Model m;
  m.calibrated = true;
  m.cpu_sec_per_flop = 1e-9;
  m.gpu_sec_per_flop = 1e-11;
  m.gpu_overhead_sec = 1e-3;
  d.set_model(m);
  // 2*8^3 = 1024 flops: CPU ~1us, GPU overhead 1ms -> CPU wins.
  EXPECT_FALSE(d.decide(8, 8, 8).use_gpu);
  // 2*2048^3 ~ 1.7e10 flops: CPU ~17s, GPU ~0.17s -> GPU wins.
  EXPECT_TRUE(d.decide(2048, 2048, 2048).use_gpu);
}

TEST(Adaptive, KernelChangeStalesModelUntilRecalibration) {
  // Changing the GEMM kernel selection (tensor::set_gemm_isa) invalidates the
  // fitted CPU slope: decide() must fall back to the static threshold until
  // recalibrate() refits against the new kernel.
  AdaptiveDispatch d;
  d.calibrate(sgpu::Device::global(), 16, 32);
  ASSERT_TRUE(d.model().calibrated);
  EXPECT_GT(d.decide(256, 256, 256).est_cpu_sec, 0.0);

  tensor::set_gemm_isa(tensor::gemm_isa());  // same ISA, but bumps revision
  // Stale: estimates revert to the static-threshold fallback (zeros).
  EXPECT_DOUBLE_EQ(d.decide(256, 256, 256).est_cpu_sec, 0.0);
  EXPECT_FALSE(d.decide(8, 8, 8).use_gpu);
  EXPECT_TRUE(d.decide(1024, 1024, 1024).use_gpu);

  d.recalibrate(sgpu::Device::global());
  EXPECT_TRUE(d.model().calibrated);
  EXPECT_GT(d.decide(256, 256, 256).est_cpu_sec, 0.0);
}

TEST(Adaptive, CrossoverExistsWithOverheadModel) {
  // With CPU slope > GPU slope and positive GPU overhead there must be a
  // crossover size: small -> CPU, large -> GPU, monotone switch.
  AdaptiveDispatch d;
  AdaptiveDispatch::Model m;
  m.calibrated = true;
  m.cpu_sec_per_flop = 5e-10;
  m.gpu_sec_per_flop = 5e-11;
  m.gpu_overhead_sec = 5e-4;
  m.gpu_sec_per_byte = 1e-10;
  d.set_model(m);
  bool seen_cpu = false, seen_gpu = false;
  bool switched_back = false;
  bool last_gpu = false;
  for (std::size_t n = 4; n <= 4096; n *= 2) {
    const bool gpu = d.decide(n, n, n).use_gpu;
    if (!gpu) seen_cpu = true;
    if (gpu) seen_gpu = true;
    if (last_gpu && !gpu) switched_back = true;
    last_gpu = gpu;
  }
  EXPECT_TRUE(seen_cpu);
  EXPECT_TRUE(seen_gpu);
  EXPECT_FALSE(switched_back);
}

}  // namespace
}  // namespace psml::profile
