// Channel tests: local pair semantics, tag-selective receive, TCP loopback,
// matrix serialization, traffic stats, close/error behaviour.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "net/local_channel.hpp"
#include "net/serialize.hpp"
#include "net/tcp_channel.hpp"
#include "test_util.hpp"

namespace psml::net {
namespace {

using psml::test::expect_near;
using psml::test::random_matrix;

std::vector<std::uint8_t> bytes(std::initializer_list<std::uint8_t> init) {
  return std::vector<std::uint8_t>(init);
}

TEST(LocalChannel, SendRecvRoundTrip) {
  auto pair = LocalChannel::make_pair();
  pair.a->send(7, bytes({1, 2, 3}));
  const Message m = pair.b->recv(7);
  EXPECT_EQ(m.tag, 7u);
  EXPECT_EQ(m.payload, bytes({1, 2, 3}));
}

TEST(LocalChannel, BothDirections) {
  auto pair = LocalChannel::make_pair();
  pair.a->send(1, bytes({10}));
  pair.b->send(2, bytes({20}));
  EXPECT_EQ(pair.b->recv(1).payload, bytes({10}));
  EXPECT_EQ(pair.a->recv(2).payload, bytes({20}));
}

TEST(LocalChannel, TagSelectiveReceiveBuffersOthers) {
  auto pair = LocalChannel::make_pair();
  pair.a->send(1, bytes({1}));
  pair.a->send(2, bytes({2}));
  pair.a->send(3, bytes({3}));
  // Receive out of order; earlier messages are buffered, not lost.
  EXPECT_EQ(pair.b->recv(3).payload, bytes({3}));
  EXPECT_EQ(pair.b->recv(1).payload, bytes({1}));
  EXPECT_EQ(pair.b->recv(2).payload, bytes({2}));
}

TEST(LocalChannel, RecvAnyReturnsInOrder) {
  auto pair = LocalChannel::make_pair();
  pair.a->send(5, bytes({5}));
  pair.a->send(6, bytes({6}));
  EXPECT_EQ(pair.b->recv_any().tag, 5u);
  EXPECT_EQ(pair.b->recv_any().tag, 6u);
}

TEST(LocalChannel, FifoPerTag) {
  auto pair = LocalChannel::make_pair();
  pair.a->send(9, bytes({1}));
  pair.a->send(9, bytes({2}));
  EXPECT_EQ(pair.b->recv(9).payload, bytes({1}));
  EXPECT_EQ(pair.b->recv(9).payload, bytes({2}));
}

TEST(LocalChannel, CloseUnblocksReceiver) {
  auto pair = LocalChannel::make_pair();
  std::thread closer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    pair.a->close();
  });
  EXPECT_THROW(pair.b->recv(1), NetworkError);
  closer.join();
}

TEST(LocalChannel, SendAfterCloseThrows) {
  auto pair = LocalChannel::make_pair();
  pair.a->close();
  EXPECT_THROW(pair.a->send(1, bytes({1})), NetworkError);
}

TEST(LocalChannel, StatsCountTraffic) {
  auto pair = LocalChannel::make_pair();
  pair.a->send(1, bytes({1, 2, 3, 4}));
  pair.b->recv(1);
  EXPECT_EQ(pair.a->stats().bytes_sent.load(), 4u);
  EXPECT_EQ(pair.a->stats().messages_sent.load(), 1u);
  EXPECT_EQ(pair.b->stats().bytes_received.load(), 4u);
  EXPECT_EQ(pair.b->stats().messages_received.load(), 1u);
}

TEST(LocalChannel, BlockingRecvWaitsForMessage) {
  auto pair = LocalChannel::make_pair();
  std::thread sender([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    pair.a->send(42, bytes({9}));
  });
  const Message m = pair.b->recv(42);  // must block until sender runs
  EXPECT_EQ(m.payload, bytes({9}));
  sender.join();
}

TEST(Serialize, MatrixF32RoundTrip) {
  const MatrixF m = random_matrix(17, 23, 71);
  const auto buf = encode_matrix(m);
  EXPECT_EQ(peek_kind(buf.data(), buf.size()), PayloadKind::kDenseF32);
  const MatrixF back = decode_matrix_f32(buf.data(), buf.size());
  expect_near(m, back, 0.0, "f32 round trip");
}

TEST(Serialize, MatrixU64RoundTrip) {
  MatrixU64 m(5, 7);
  rng::fill_uniform_u64_par(m, 3);
  const auto buf = encode_matrix(m);
  const MatrixU64 back = decode_matrix_u64(buf.data(), buf.size());
  EXPECT_TRUE(m == back);
}

TEST(Serialize, CsrPayloadDecodesToDense) {
  MatrixF m(6, 6, 0.0f);
  m(1, 2) = 3.5f;
  m(4, 0) = -1.0f;
  const auto csr = sparse::Csr::from_dense(m);
  const auto buf = encode_csr(csr);
  EXPECT_EQ(peek_kind(buf.data(), buf.size()), PayloadKind::kCsrF32);
  expect_near(decode_matrix_f32(buf.data(), buf.size()), m, 0.0, "csr");
}

TEST(Serialize, MalformedPayloadThrows) {
  std::vector<std::uint8_t> tiny(3, 0);
  EXPECT_THROW(decode_matrix_f32(tiny.data(), tiny.size()), ProtocolError);

  const MatrixF m = random_matrix(4, 4, 72);
  auto buf = encode_matrix(m);
  buf.pop_back();
  EXPECT_THROW(decode_matrix_f32(buf.data(), buf.size()), ProtocolError);

  // Wrong-kind decode.
  const auto fbuf = encode_matrix(m);
  EXPECT_THROW(decode_matrix_u64(fbuf.data(), fbuf.size()), ProtocolError);
}

TEST(Serialize, ChannelHelpers) {
  auto pair = LocalChannel::make_pair();
  const MatrixF m = random_matrix(9, 4, 73);
  send_matrix(*pair.a, 11, m);
  expect_near(recv_matrix_f32(*pair.b, 11), m, 0.0, "channel matrix");
}

TEST(LocalChannel, ConcurrentTaggedRecvDoesNotHoldLockAcrossBlock) {
  // Regression test for the cross-party double-pipeline deadlock: two
  // threads per endpoint, each waiting for a tag whose sender is the peer's
  // *other* thread. If recv() held its lock while blocked on the transport,
  // this cycle deadlocks:
  //   A.t1 waits 1 (sent by B.t2 after B.t2 gets 4)
  //   B.t1 waits 3 (sent by A.t2 after A.t2 gets 2)
  //   A.t2 needs the lock held by A.t1 to read its already-arrived 2
  //   B.t2 needs the lock held by B.t1 to read its already-arrived 4
  auto pair = LocalChannel::make_pair();
  pair.a->send(4, bytes({4}));  // for B.t2
  pair.b->send(2, bytes({2}));  // for A.t2

  std::atomic<int> done{0};
  std::thread a1([&] {
    EXPECT_EQ(pair.a->recv(1).payload, bytes({1}));
    done.fetch_add(1);
  });
  std::thread b1([&] {
    EXPECT_EQ(pair.b->recv(3).payload, bytes({3}));
    done.fetch_add(1);
  });
  // Give t1 threads time to enter recv and become drainers.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  std::thread a2([&] {
    EXPECT_EQ(pair.a->recv(2).payload, bytes({2}));
    pair.a->send(3, bytes({3}));
    done.fetch_add(1);
  });
  std::thread b2([&] {
    EXPECT_EQ(pair.b->recv(4).payload, bytes({4}));
    pair.b->send(1, bytes({1}));
    done.fetch_add(1);
  });
  a1.join();
  b1.join();
  a2.join();
  b2.join();
  EXPECT_EQ(done.load(), 4);
}

TEST(LocalChannel, ManyThreadsManyTagsOneChannel) {
  // N threads per side, each exchanging on its own tag, interleaved.
  auto pair = LocalChannel::make_pair();
  constexpr int kThreads = 4;
  constexpr int kRounds = 50;
  std::vector<std::thread> threads;
  std::atomic<int> errors{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int r = 0; r < kRounds; ++r) {
        const Tag tag = static_cast<Tag>(100 + t);
        pair.a->send(tag, bytes({static_cast<std::uint8_t>(r)}));
        const auto m = pair.a->recv(tag);
        if (m.payload[0] != static_cast<std::uint8_t>(r)) errors.fetch_add(1);
      }
    });
    threads.emplace_back([&, t] {
      for (int r = 0; r < kRounds; ++r) {
        const Tag tag = static_cast<Tag>(100 + t);
        const auto m = pair.b->recv(tag);
        if (m.payload[0] != static_cast<std::uint8_t>(r)) errors.fetch_add(1);
        pair.b->send(tag, m.payload);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(errors.load(), 0);
}

TEST(TcpChannel, LoopbackRoundTrip) {
  const std::uint16_t port = 39251;
  std::shared_ptr<Channel> server;
  std::thread listener([&] { server = TcpChannel::listen(port); });
  auto client = TcpChannel::connect("127.0.0.1", port, 5.0);
  listener.join();

  const MatrixF m = random_matrix(31, 17, 74);
  send_matrix(*client, 5, m);
  expect_near(recv_matrix_f32(*server, 5), m, 0.0, "tcp matrix");

  // Reverse direction + tag reorder across TCP.
  server->send(8, bytes({8}));
  server->send(9, bytes({9}));
  EXPECT_EQ(client->recv(9).payload, bytes({9}));
  EXPECT_EQ(client->recv(8).payload, bytes({8}));
}

TEST(TcpChannel, LargeTransfer) {
  const std::uint16_t port = 39252;
  std::shared_ptr<Channel> server;
  std::thread listener([&] { server = TcpChannel::listen(port); });
  auto client = TcpChannel::connect("127.0.0.1", port, 5.0);
  listener.join();

  const MatrixF m = random_matrix(512, 512, 75);  // 1 MiB payload
  std::thread sender([&] { send_matrix(*client, 1, m); });
  expect_near(recv_matrix_f32(*server, 1), m, 0.0, "tcp 1MiB");
  sender.join();
}

TEST(TcpChannel, PeerCloseRaises) {
  const std::uint16_t port = 39253;
  std::shared_ptr<Channel> server;
  std::thread listener([&] { server = TcpChannel::listen(port); });
  auto client = TcpChannel::connect("127.0.0.1", port, 5.0);
  listener.join();
  client->close();
  EXPECT_THROW(server->recv(1), NetworkError);
}

TEST(TcpChannel, ConnectTimeoutOnDeadPort) {
  EXPECT_THROW(TcpChannel::connect("127.0.0.1", 39254, 0.3), NetworkError);
}

}  // namespace
}  // namespace psml::net
