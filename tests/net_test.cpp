// Channel tests: local pair semantics, tag-selective receive, TCP loopback,
// matrix serialization, traffic stats, close/error behaviour, receive
// deadlines, and the hardened TCP framing (header validation, accept
// timeout, reconnect-and-resume).
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "common/crc32.hpp"
#include "net/buffer_pool.hpp"
#include "net/local_channel.hpp"
#include "net/serialize.hpp"
#include "net/tcp_channel.hpp"
#include "net/wire_buf.hpp"
#include "test_util.hpp"

namespace psml::net {
namespace {

using psml::test::expect_near;
using psml::test::random_matrix;

std::vector<std::uint8_t> bytes(std::initializer_list<std::uint8_t> init) {
  return std::vector<std::uint8_t>(init);
}

TEST(LocalChannel, SendRecvRoundTrip) {
  auto pair = LocalChannel::make_pair();
  pair.a->send(7, bytes({1, 2, 3}));
  const Message m = pair.b->recv(7);
  EXPECT_EQ(m.tag, 7u);
  EXPECT_EQ(m.payload, bytes({1, 2, 3}));
}

TEST(LocalChannel, BothDirections) {
  auto pair = LocalChannel::make_pair();
  pair.a->send(1, bytes({10}));
  pair.b->send(2, bytes({20}));
  EXPECT_EQ(pair.b->recv(1).payload, bytes({10}));
  EXPECT_EQ(pair.a->recv(2).payload, bytes({20}));
}

TEST(LocalChannel, TagSelectiveReceiveBuffersOthers) {
  auto pair = LocalChannel::make_pair();
  pair.a->send(1, bytes({1}));
  pair.a->send(2, bytes({2}));
  pair.a->send(3, bytes({3}));
  // Receive out of order; earlier messages are buffered, not lost.
  EXPECT_EQ(pair.b->recv(3).payload, bytes({3}));
  EXPECT_EQ(pair.b->recv(1).payload, bytes({1}));
  EXPECT_EQ(pair.b->recv(2).payload, bytes({2}));
}

TEST(LocalChannel, RecvAnyReturnsInOrder) {
  auto pair = LocalChannel::make_pair();
  pair.a->send(5, bytes({5}));
  pair.a->send(6, bytes({6}));
  EXPECT_EQ(pair.b->recv_any().tag, 5u);
  EXPECT_EQ(pair.b->recv_any().tag, 6u);
}

TEST(LocalChannel, FifoPerTag) {
  auto pair = LocalChannel::make_pair();
  pair.a->send(9, bytes({1}));
  pair.a->send(9, bytes({2}));
  EXPECT_EQ(pair.b->recv(9).payload, bytes({1}));
  EXPECT_EQ(pair.b->recv(9).payload, bytes({2}));
}

TEST(LocalChannel, CloseUnblocksReceiver) {
  auto pair = LocalChannel::make_pair();
  std::thread closer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    pair.a->close();
  });
  EXPECT_THROW(pair.b->recv(1), NetworkError);
  closer.join();
}

TEST(LocalChannel, SendAfterCloseThrows) {
  auto pair = LocalChannel::make_pair();
  pair.a->close();
  EXPECT_THROW(pair.a->send(1, bytes({1})), NetworkError);
}

TEST(LocalChannel, StatsCountTraffic) {
  auto pair = LocalChannel::make_pair();
  pair.a->send(1, bytes({1, 2, 3, 4}));
  pair.b->recv(1);
  EXPECT_EQ(pair.a->stats().bytes_sent.load(), 4u);
  EXPECT_EQ(pair.a->stats().messages_sent.load(), 1u);
  EXPECT_EQ(pair.b->stats().bytes_received.load(), 4u);
  EXPECT_EQ(pair.b->stats().messages_received.load(), 1u);
}

TEST(LocalChannel, BlockingRecvWaitsForMessage) {
  auto pair = LocalChannel::make_pair();
  std::thread sender([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    pair.a->send(42, bytes({9}));
  });
  const Message m = pair.b->recv(42);  // must block until sender runs
  EXPECT_EQ(m.payload, bytes({9}));
  sender.join();
}

TEST(Serialize, MatrixF32RoundTrip) {
  const MatrixF m = random_matrix(17, 23, 71);
  const auto buf = encode_matrix(m);
  EXPECT_EQ(peek_kind(buf.data(), buf.size()), PayloadKind::kDenseF32);
  const MatrixF back = decode_matrix_f32(buf.data(), buf.size());
  expect_near(m, back, 0.0, "f32 round trip");
}

TEST(Serialize, MatrixU64RoundTrip) {
  MatrixU64 m(5, 7);
  rng::fill_uniform_u64_par(m, 3);
  const auto buf = encode_matrix(m);
  const MatrixU64 back = decode_matrix_u64(buf.data(), buf.size());
  EXPECT_TRUE(m == back);
}

TEST(Serialize, CsrPayloadDecodesToDense) {
  MatrixF m(6, 6, 0.0f);
  m(1, 2) = 3.5f;
  m(4, 0) = -1.0f;
  const auto csr = sparse::Csr::from_dense(m);
  const auto buf = encode_csr(csr);
  EXPECT_EQ(peek_kind(buf.data(), buf.size()), PayloadKind::kCsrF32);
  expect_near(decode_matrix_f32(buf.data(), buf.size()), m, 0.0, "csr");
}

TEST(Serialize, MalformedPayloadThrows) {
  std::vector<std::uint8_t> tiny(3, 0);
  EXPECT_THROW(decode_matrix_f32(tiny.data(), tiny.size()), ProtocolError);

  const MatrixF m = random_matrix(4, 4, 72);
  auto buf = encode_matrix(m);
  buf.pop_back();
  EXPECT_THROW(decode_matrix_f32(buf.data(), buf.size()), ProtocolError);

  // Wrong-kind decode.
  const auto fbuf = encode_matrix(m);
  EXPECT_THROW(decode_matrix_u64(fbuf.data(), fbuf.size()), ProtocolError);
}

TEST(Serialize, ChannelHelpers) {
  auto pair = LocalChannel::make_pair();
  const MatrixF m = random_matrix(9, 4, 73);
  send_matrix(*pair.a, 11, m);
  expect_near(recv_matrix_f32(*pair.b, 11), m, 0.0, "channel matrix");
}

TEST(LocalChannel, ConcurrentTaggedRecvDoesNotHoldLockAcrossBlock) {
  // Regression test for the cross-party double-pipeline deadlock: two
  // threads per endpoint, each waiting for a tag whose sender is the peer's
  // *other* thread. If recv() held its lock while blocked on the transport,
  // this cycle deadlocks:
  //   A.t1 waits 1 (sent by B.t2 after B.t2 gets 4)
  //   B.t1 waits 3 (sent by A.t2 after A.t2 gets 2)
  //   A.t2 needs the lock held by A.t1 to read its already-arrived 2
  //   B.t2 needs the lock held by B.t1 to read its already-arrived 4
  auto pair = LocalChannel::make_pair();
  pair.a->send(4, bytes({4}));  // for B.t2
  pair.b->send(2, bytes({2}));  // for A.t2

  std::atomic<int> done{0};
  std::thread a1([&] {
    EXPECT_EQ(pair.a->recv(1).payload, bytes({1}));
    done.fetch_add(1);
  });
  std::thread b1([&] {
    EXPECT_EQ(pair.b->recv(3).payload, bytes({3}));
    done.fetch_add(1);
  });
  // Give t1 threads time to enter recv and become drainers.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  std::thread a2([&] {
    EXPECT_EQ(pair.a->recv(2).payload, bytes({2}));
    pair.a->send(3, bytes({3}));
    done.fetch_add(1);
  });
  std::thread b2([&] {
    EXPECT_EQ(pair.b->recv(4).payload, bytes({4}));
    pair.b->send(1, bytes({1}));
    done.fetch_add(1);
  });
  a1.join();
  b1.join();
  a2.join();
  b2.join();
  EXPECT_EQ(done.load(), 4);
}

TEST(LocalChannel, ManyThreadsManyTagsOneChannel) {
  // N threads per side, each exchanging on its own tag, interleaved.
  auto pair = LocalChannel::make_pair();
  constexpr int kThreads = 4;
  constexpr int kRounds = 50;
  std::vector<std::thread> threads;
  std::atomic<int> errors{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int r = 0; r < kRounds; ++r) {
        const Tag tag = static_cast<Tag>(100 + t);
        pair.a->send(tag, bytes({static_cast<std::uint8_t>(r)}));
        const auto m = pair.a->recv(tag);
        if (m.payload[0] != static_cast<std::uint8_t>(r)) errors.fetch_add(1);
      }
    });
    threads.emplace_back([&, t] {
      for (int r = 0; r < kRounds; ++r) {
        const Tag tag = static_cast<Tag>(100 + t);
        const auto m = pair.b->recv(tag);
        if (m.payload[0] != static_cast<std::uint8_t>(r)) errors.fetch_add(1);
        pair.b->send(tag, m.payload);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(errors.load(), 0);
}

TEST(TcpChannel, LoopbackRoundTrip) {
  const std::uint16_t port = 39251;
  std::shared_ptr<Channel> server;
  std::thread listener([&] { server = TcpChannel::listen(port); });
  auto client = TcpChannel::connect("127.0.0.1", port, 5.0);
  listener.join();

  const MatrixF m = random_matrix(31, 17, 74);
  send_matrix(*client, 5, m);
  expect_near(recv_matrix_f32(*server, 5), m, 0.0, "tcp matrix");

  // Reverse direction + tag reorder across TCP.
  server->send(8, bytes({8}));
  server->send(9, bytes({9}));
  EXPECT_EQ(client->recv(9).payload, bytes({9}));
  EXPECT_EQ(client->recv(8).payload, bytes({8}));
}

TEST(TcpChannel, LargeTransfer) {
  const std::uint16_t port = 39252;
  std::shared_ptr<Channel> server;
  std::thread listener([&] { server = TcpChannel::listen(port); });
  auto client = TcpChannel::connect("127.0.0.1", port, 5.0);
  listener.join();

  const MatrixF m = random_matrix(512, 512, 75);  // 1 MiB payload
  std::thread sender([&] { send_matrix(*client, 1, m); });
  expect_near(recv_matrix_f32(*server, 1), m, 0.0, "tcp 1MiB");
  sender.join();
}

TEST(TcpChannel, PeerCloseRaises) {
  const std::uint16_t port = 39253;
  std::shared_ptr<Channel> server;
  std::thread listener([&] { server = TcpChannel::listen(port); });
  auto client = TcpChannel::connect("127.0.0.1", port, 5.0);
  listener.join();
  client->close();
  EXPECT_THROW(server->recv(1), NetworkError);
}

TEST(TcpChannel, ConnectTimeoutOnDeadPort) {
  EXPECT_THROW(TcpChannel::connect("127.0.0.1", 39254, 0.3), NetworkError);
}

// --------------------------------------------------------------------------
// Receive deadlines

TEST(LocalChannel, RecvDeadlineThrowsTimeoutErrorAndChannelSurvives) {
  auto pair = LocalChannel::make_pair();
  EXPECT_THROW(
      pair.b->recv(1, deadline_after(std::chrono::milliseconds(50))),
      TimeoutError);
  // A timeout is not fatal: the channel keeps working afterwards.
  pair.a->send(1, bytes({1}));
  EXPECT_EQ(pair.b->recv(1).payload, bytes({1}));
}

TEST(LocalChannel, DefaultTimeoutAppliesToPlainRecv) {
  auto pair = LocalChannel::make_pair();
  pair.b->set_default_timeout(std::chrono::milliseconds(50));
  EXPECT_THROW(pair.b->recv(1), TimeoutError);
  EXPECT_THROW(pair.b->recv_any(), TimeoutError);
  // Messages that are already buffered beat the deadline.
  pair.a->send(2, bytes({2}));
  EXPECT_EQ(pair.b->recv(2).payload, bytes({2}));
  pair.b->set_default_timeout(std::chrono::milliseconds(0));  // disable again
}

TEST(LocalChannel, WaiterTimesOutWhileAnotherThreadDrains) {
  // The drainer blocks forever on tag 1; a second thread waiting on tag 2
  // with a deadline must still get its TimeoutError (the deadline applies
  // to the reorder-buffer wait, not just the transport read).
  auto pair = LocalChannel::make_pair();
  std::thread drainer([&] {
    EXPECT_EQ(pair.b->recv(1).payload, bytes({1}));
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_THROW(
      pair.b->recv(2, deadline_after(std::chrono::milliseconds(60))),
      TimeoutError);
  pair.a->send(1, bytes({1}));
  drainer.join();
}

// --------------------------------------------------------------------------
// recv_any vs the tag-pending reorder buffer

TEST(LocalChannel, RecvAnyDrainsTagPendingBufferFirst) {
  // recv(3) buffers tags 1 and 2 while hunting for 3; a later recv_any
  // must return those buffered messages, in arrival order, before reading
  // the transport again.
  auto pair = LocalChannel::make_pair();
  pair.a->send(1, bytes({1}));
  pair.a->send(2, bytes({2}));
  pair.a->send(3, bytes({3}));
  EXPECT_EQ(pair.b->recv(3).payload, bytes({3}));
  EXPECT_EQ(pair.b->recv_any().tag, 1u);
  EXPECT_EQ(pair.b->recv_any().tag, 2u);
}

TEST(LocalChannel, CloseFailsAllPendingWaiters) {
  // Several threads parked on different tags: close() must wake every one
  // of them with NetworkError, not just the current drainer.
  auto pair = LocalChannel::make_pair();
  std::atomic<int> network_errors{0};
  std::vector<std::thread> waiters;
  for (int t = 0; t < 3; ++t) {
    waiters.emplace_back([&, t] {
      try {
        pair.b->recv(static_cast<Tag>(100 + t));
      } catch (const NetworkError&) {
        network_errors.fetch_add(1);
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  pair.a->close();
  for (auto& th : waiters) th.join();
  EXPECT_EQ(network_errors.load(), 3);
}

// --------------------------------------------------------------------------
// Hardened TCP framing

TEST(TcpChannel, AcceptTimeoutSurfacesAsTimeoutError) {
  TcpOptions opts;
  opts.accept_timeout_sec = 0.2;
  EXPECT_THROW(TcpChannel::listen(39257, opts), TimeoutError);
}

TEST(TcpChannel, ConnectRetriesUntilListenerAppears) {
  // The listener starts late; connect()'s backoff loop must keep redialing
  // instead of giving up on the first ECONNREFUSED. The port sits below the
  // ephemeral range: redialing an ephemeral port can self-connect
  // (simultaneous open) and steal it from the late listener's bind.
  const std::uint16_t port = 19258;
  std::shared_ptr<Channel> server;
  std::thread listener([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    server = TcpChannel::listen(port);
  });
  auto client = TcpChannel::connect("127.0.0.1", port, 5.0);
  listener.join();
  client->send(1, bytes({1}));
  EXPECT_EQ(server->recv(1).payload, bytes({1}));
}

namespace {

// Mirrors of the private wire structs in tcp_channel.cpp, used to speak the
// protocol from a raw socket and then violate it.
struct RawHello {
  std::uint32_t magic = 0x484d5350u;  // "PSMH"
  std::uint32_t version = 2;
  std::uint64_t session_id = 0;
  std::uint64_t last_recv_seq = 0;
  std::uint32_t flags = 0;
  std::uint32_t crc = 0;
};
static_assert(sizeof(RawHello) == 32);

struct RawFrameHeader {
  std::uint32_t magic = 0x324d5350u;  // "PSM2"
  std::uint32_t tag = 0;
  std::uint64_t seq = 0;
  std::uint64_t payload_len = 0;
  std::uint32_t payload_crc = 0;
  std::uint32_t header_crc = 0;
};
static_assert(sizeof(RawFrameHeader) == 32);

// Connects a raw socket to a TcpChannel server on `port` (retrying while
// the listener thread is still binding) and completes the hello handshake,
// returning the connected fd.
int raw_handshake_client(std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  int fd = -1;
  for (int attempt = 0; attempt < 200; ++attempt) {
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) {
      break;
    }
    ::close(fd);
    fd = -1;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GE(fd, 0) << "raw client never reached the listener";
  RawHello hello;
  hello.crc = crc32(&hello, sizeof(hello) - sizeof(std::uint32_t));
  EXPECT_EQ(::send(fd, &hello, sizeof(hello), MSG_NOSIGNAL),
            static_cast<ssize_t>(sizeof(hello)));
  RawHello server_hello{};
  EXPECT_EQ(::recv(fd, &server_hello, sizeof(server_hello), MSG_WAITALL),
            static_cast<ssize_t>(sizeof(server_hello)));
  return fd;
}

}  // namespace

TEST(TcpChannel, CorruptFrameHeaderRejectedCleanly) {
  const std::uint16_t port = 39259;
  std::shared_ptr<Channel> server;
  std::thread listener([&] { server = TcpChannel::listen(port); });
  const int fd = raw_handshake_client(port);
  listener.join();

  std::uint8_t garbage[32];
  std::fill(std::begin(garbage), std::end(garbage), 0xab);
  ASSERT_EQ(::send(fd, garbage, sizeof(garbage), MSG_NOSIGNAL),
            static_cast<ssize_t>(sizeof(garbage)));
  EXPECT_THROW(server->recv(1), NetworkError);
  ::close(fd);
}

TEST(TcpChannel, OversizedFrameHeaderRejectedWithoutAllocation) {
  // A header whose CRC checks out but that announces an absurd payload must
  // be refused by the PSML_NET_MAX_FRAME cap before any allocation.
  const std::uint16_t port = 39260;
  std::shared_ptr<Channel> server;
  std::thread listener([&] { server = TcpChannel::listen(port); });
  const int fd = raw_handshake_client(port);
  listener.join();

  RawFrameHeader h;
  h.tag = 1;
  h.seq = 1;
  h.payload_len = 1ull << 40;  // 1 TiB
  h.payload_crc = 0;
  h.header_crc = crc32(&h, sizeof(h) - sizeof(std::uint32_t));
  ASSERT_EQ(::send(fd, &h, sizeof(h), MSG_NOSIGNAL),
            static_cast<ssize_t>(sizeof(h)));
  try {
    server->recv(1);
    FAIL() << "oversized frame was accepted";
  } catch (const NetworkError& e) {
    EXPECT_NE(std::string(e.what()).find("PSML_NET_MAX_FRAME"),
              std::string::npos);
  }
  ::close(fd);
}

TEST(TcpChannel, ReconnectAndResumeAfterInjectedDisconnect) {
  const std::uint16_t port = 39261;
  TcpOptions opts;
  opts.resume = true;
  opts.backoff_base_ms = 5.0;
  opts.backoff_max_ms = 100.0;

  std::shared_ptr<Channel> server;
  std::thread listener([&] { server = TcpChannel::listen(port, opts); });
  auto client = TcpChannel::connect("127.0.0.1", port, opts);
  listener.join();

  client->send(1, bytes({1}));
  EXPECT_EQ(server->recv(1).payload, bytes({1}));
  server->send(2, bytes({2}));
  EXPECT_EQ(client->recv(2).payload, bytes({2}));

  auto* tcp_client = dynamic_cast<TcpChannel*>(client.get());
  ASSERT_NE(tcp_client, nullptr);
  const std::uint64_t session_before = tcp_client->session_id();
  tcp_client->inject_disconnect();

  // Traffic after the break must flow again over the resumed session. The
  // client redials while the server re-accepts inside its recv.
  std::thread sender([&] { client->send(3, bytes({3})); });
  EXPECT_EQ(server->recv(3).payload, bytes({3}));
  sender.join();
  std::thread replier([&] { server->send(4, bytes({4, 4})); });
  EXPECT_EQ(client->recv(4).payload, bytes({4, 4}));
  replier.join();

  EXPECT_GE(tcp_client->reconnect_count(), 1);
  EXPECT_EQ(tcp_client->session_id(), session_before);
}

TEST(TcpChannel, DisconnectWithoutResumeFailsFast) {
  const std::uint16_t port = 39262;
  std::shared_ptr<Channel> server;
  std::thread listener([&] { server = TcpChannel::listen(port); });
  auto client = TcpChannel::connect("127.0.0.1", port, 5.0);
  listener.join();

  auto* tcp_client = dynamic_cast<TcpChannel*>(client.get());
  ASSERT_NE(tcp_client, nullptr);
  tcp_client->inject_disconnect();
  EXPECT_THROW(server->recv(1), NetworkError);
}

// ---------------------------------------------------------------------------
// Zero-copy data path: WireBuf fragments, the buffer pool, CRC32C
// negotiation, and the coalesced E/F pair frame.

TEST(WireBuf, FragmentChainedChecksumMatchesFlatCrc) {
  // The same logical payload, once flat and once as three fragments of
  // different ownership strengths; the chained checksum must equal the
  // one-shot CRC over the flat bytes for both polynomial families.
  std::vector<std::uint8_t> flat(300);
  for (std::size_t i = 0; i < flat.size(); ++i) {
    flat[i] = static_cast<std::uint8_t>(i * 7 + 3);
  }

  WireBuf buf;
  buf.append_copy(flat.data(), 10);
  std::vector<std::uint8_t> mid(flat.begin() + 10, flat.begin() + 200);
  buf.append_vector(std::move(mid));
  buf.append_view(flat.data() + 200, 100);
  ASSERT_EQ(buf.size(), flat.size());
  ASSERT_EQ(buf.fragment_count(), 3u);
  EXPECT_EQ(buf.checksum(&crc32), crc32(flat.data(), flat.size(), 0));
  EXPECT_EQ(buf.checksum(&crc32c), crc32c(flat.data(), flat.size(), 0));

  // Flattening through take_bytes preserves fragment order exactly.
  EXPECT_EQ(std::move(buf).take_bytes(), flat);
}

TEST(WireBuf, MakeOwnedSurvivesSourceScope) {
  WireBuf buf;
  {
    std::vector<std::uint8_t> local(64, 0xcd);
    buf.append_view(local.data(), local.size());
    EXPECT_FALSE(buf.fully_owned());
    buf.make_owned();
    EXPECT_TRUE(buf.fully_owned());
    // Mutating the source after make_owned must not reach the copy.
    local.assign(local.size(), 0x00);
  }
  EXPECT_EQ(std::move(buf).take_bytes(), std::vector<std::uint8_t>(64, 0xcd));
}

TEST(WireBuf, CloneSharedSharesStorageWithoutCopying) {
  std::vector<std::uint8_t> body(512, 0x5a);
  const std::uint8_t* storage = body.data();

  WireBuf buf;
  buf.append_vector(std::move(body));
  ASSERT_TRUE(buf.fully_owned());
  WireBuf clone = buf.clone_shared();

  // Both point at the very same storage — a refcount bump, not a byte copy.
  ASSERT_EQ(clone.fragment_count(), 1u);
  EXPECT_EQ(clone.views()[0].data, storage);
  EXPECT_EQ(buf.views()[0].data, storage);
  EXPECT_EQ(std::move(clone).take_bytes(),
            std::vector<std::uint8_t>(512, 0x5a));
}

TEST(LocalChannel, WireBufDeliveryIsBitIdenticalAndZeroCopy) {
  auto pair = LocalChannel::make_pair();
  std::vector<std::uint8_t> payload(4096);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::uint8_t>(i * 31 + 5);
  }
  const std::vector<std::uint8_t> expect = payload;
  const std::uint8_t* storage = payload.data();

  WireBuf buf;
  buf.append_vector(std::move(payload));
  pair.a->send(9, std::move(buf));
  Message m = pair.b->recv(9);
  EXPECT_EQ(m.payload, expect);
  // A single whole-vector WireBuf moves through in-process delivery without
  // ever being copied: the receiver sees the sender's allocation.
  EXPECT_EQ(m.payload.data(), storage);
}

TEST(LocalChannel, FragmentedWireBufDeliversFlattenedBitIdentical) {
  auto pair = LocalChannel::make_pair();
  std::vector<std::uint8_t> head = {0x01, 0x02};
  std::vector<std::uint8_t> tail(100, 0x77);
  std::vector<std::uint8_t> expect = head;
  expect.insert(expect.end(), tail.begin(), tail.end());

  WireBuf buf;
  buf.append_copy(head.data(), head.size());
  buf.append_view(tail.data(), tail.size());
  pair.a->send(3, std::move(buf));
  EXPECT_EQ(pair.b->recv(3).payload, expect);
}

TEST(BufferPool, RoundTripHitsAndOffClassDrops) {
  BufferPool pool(1 << 20);
  auto v = pool.acquire(1000);
  EXPECT_EQ(v.size(), 1000u);
  EXPECT_EQ(v.capacity(), 1024u);  // rounded up to the size class
  pool.release(std::move(v));
  auto m1 = pool.metrics();
  EXPECT_EQ(m1.releases, 1u);
  EXPECT_EQ(m1.bytes_held, 1024u);

  // Any request that maps to the same class is served from the bin.
  auto w = pool.acquire(777);
  EXPECT_EQ(w.size(), 777u);
  auto m2 = pool.metrics();
  EXPECT_EQ(m2.hits, 1u);
  EXPECT_EQ(m2.bytes_held, 0u);

  // A buffer whose capacity is not an exact class size is rejected — it
  // would otherwise shrink the class guarantee for later acquires.
  std::vector<std::uint8_t> odd(300);
  ASSERT_NE(odd.capacity(), 512u);
  pool.release(std::move(odd));
  EXPECT_EQ(pool.metrics().drops, 1u);
}

TEST(BufferPool, CapBoundsRetainedBytes) {
  BufferPool pool(2048);
  auto a = pool.acquire(1024);
  auto b = pool.acquire(1024);
  auto c = pool.acquire(1024);
  pool.release(std::move(a));
  pool.release(std::move(b));
  pool.release(std::move(c));  // third release would exceed the cap
  const auto m = pool.metrics();
  EXPECT_EQ(m.releases, 2u);
  EXPECT_EQ(m.drops, 1u);
  EXPECT_LE(m.bytes_held, pool.cap_bytes());
}

TEST(TcpChannel, Crc32cNegotiatedBetweenNativePeers) {
  const std::uint16_t port = 39263;
  std::shared_ptr<Channel> server;
  std::thread listener([&] { server = TcpChannel::listen(port); });
  auto client = TcpChannel::connect("127.0.0.1", port, 5.0);
  listener.join();

  auto* s = dynamic_cast<TcpChannel*>(server.get());
  auto* c = dynamic_cast<TcpChannel*>(client.get());
  ASSERT_NE(s, nullptr);
  ASSERT_NE(c, nullptr);
  EXPECT_TRUE(s->crc32c_negotiated());
  EXPECT_TRUE(c->crc32c_negotiated());
  client->send(1, bytes({5, 6, 7}));
  EXPECT_EQ(server->recv(1).payload, bytes({5, 6, 7}));
}

TEST(TcpChannel, LegacyPeerWithoutCrc32cFallsBackToIeee) {
  const std::uint16_t port = 39264;
  std::shared_ptr<Channel> server;
  std::thread listener([&] { server = TcpChannel::listen(port); });
  const int fd = raw_handshake_client(port);  // hello advertises flags = 0
  listener.join();

  auto* s = dynamic_cast<TcpChannel*>(server.get());
  ASSERT_NE(s, nullptr);
  EXPECT_FALSE(s->crc32c_negotiated());

  // A frame checksummed with plain IEEE crc32 must be accepted.
  std::vector<std::uint8_t> body = {1, 2, 3, 4, 5};
  RawFrameHeader h;
  h.tag = 7;
  h.seq = 1;
  h.payload_len = body.size();
  h.payload_crc = crc32(body.data(), body.size());
  h.header_crc = crc32(&h, sizeof(h) - sizeof(std::uint32_t));
  ASSERT_EQ(::send(fd, &h, sizeof(h), MSG_NOSIGNAL),
            static_cast<ssize_t>(sizeof(h)));
  ASSERT_EQ(::send(fd, body.data(), body.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(body.size()));
  EXPECT_EQ(server->recv(7).payload, bytes({1, 2, 3, 4, 5}));
  ::close(fd);
}

TEST(TcpChannel, CorruptCoalescedPairPayloadFailsFast) {
  const std::uint16_t port = 39265;
  std::shared_ptr<Channel> server;
  std::thread listener([&] { server = TcpChannel::listen(port); });
  const int fd = raw_handshake_client(port);
  listener.join();

  // Build a coalesced E/F pair payload exactly as compress::Endpoint frames
  // it: [kPair=2][u32 len_a LE][body_a][body_b], each body led by the
  // kDense=0 subkind byte.
  const MatrixF e = psml::test::random_matrix(8, 8, 42);
  const MatrixF f = psml::test::random_matrix(8, 8, 43);
  const auto enc_a = encode_matrix(e);
  const auto enc_b = encode_matrix(f);
  std::vector<std::uint8_t> payload;
  payload.push_back(2);  // kPair
  const std::uint32_t len_a = static_cast<std::uint32_t>(enc_a.size() + 1);
  for (int sh = 0; sh < 32; sh += 8) {
    payload.push_back(static_cast<std::uint8_t>((len_a >> sh) & 0xff));
  }
  payload.push_back(0);  // kDense
  payload.insert(payload.end(), enc_a.begin(), enc_a.end());
  payload.push_back(0);  // kDense
  payload.insert(payload.end(), enc_b.begin(), enc_b.end());

  RawFrameHeader h;
  h.tag = 0x00e00001u;  // an exchange-style tag; any tag works
  h.seq = 1;
  h.payload_len = payload.size();
  h.payload_crc = crc32(payload.data(), payload.size());
  h.header_crc = crc32(&h, sizeof(h) - sizeof(std::uint32_t));
  // Flip one bit inside body_b after checksumming: the frame CRC must catch
  // it at the transport layer, before any decode runs.
  payload[5 + len_a + enc_b.size() / 2] ^= 0x10;

  ASSERT_EQ(::send(fd, &h, sizeof(h), MSG_NOSIGNAL),
            static_cast<ssize_t>(sizeof(h)));
  ASSERT_EQ(::send(fd, payload.data(), payload.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(payload.size()));
  EXPECT_THROW(server->recv(h.tag), NetworkError);
  ::close(fd);
}

}  // namespace
}  // namespace psml::net
