// AsyncLane (layer-pipeline executor) tests.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>

#include "common/timer.hpp"
#include "pipeline/async_lane.hpp"

namespace psml::pipeline {
namespace {

TEST(AsyncLane, ReturnsResults) {
  AsyncLane lane;
  auto f = lane.run([] { return 41 + 1; });
  EXPECT_EQ(f.get(), 42);
}

TEST(AsyncLane, ExecutesFifo) {
  AsyncLane lane;
  std::vector<int> order;
  std::mutex m;
  std::vector<std::future<void>> futs;
  for (int i = 0; i < 64; ++i) {
    futs.push_back(lane.run([&, i] {
      std::lock_guard<std::mutex> lock(m);
      order.push_back(i);
    }));
  }
  for (auto& f : futs) f.wait();
  for (int i = 0; i < 64; ++i) EXPECT_EQ(order[i], i);
}

TEST(AsyncLane, OverlapsWithCaller) {
  // Work on the lane runs concurrently with caller work: total elapsed must
  // be close to max(lane, caller), not their sum.
  AsyncLane lane;
  Timer t;
  auto f = lane.run(
      [] { std::this_thread::sleep_for(std::chrono::milliseconds(60)); });
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  f.wait();
  EXPECT_LT(t.seconds(), 0.11);
}

TEST(AsyncLane, PropagatesExceptions) {
  AsyncLane lane;
  auto f = lane.run([]() -> int { throw std::runtime_error("lane boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(AsyncLane, PropagatesTypedExceptionsAndKeepsWorking) {
  // The future carries the exact exception type, and one failed task must not
  // poison the lane: later tasks still run and return results.
  AsyncLane lane;
  auto bad = lane.run([]() -> int {
    throw psml::ProtocolError("reconstruct mismatch");
  });
  try {
    bad.get();
    FAIL() << "expected ProtocolError";
  } catch (const psml::ProtocolError& e) {
    EXPECT_STREQ(e.what(), "reconstruct mismatch");
  }
  auto good = lane.run([] { return 7; });
  EXPECT_EQ(good.get(), 7);
}

TEST(AsyncLane, VoidFuturePropagatesExceptions) {
  AsyncLane lane;
  auto f = lane.run([] { throw psml::Error("void boom"); });
  EXPECT_THROW(f.get(), psml::Error);
}

TEST(AsyncLane, DrainWaitsForAll) {
  AsyncLane lane;
  std::atomic<int> done{0};
  for (int i = 0; i < 10; ++i) {
    lane.run([&] {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      done.fetch_add(1);
    });
  }
  lane.drain();
  EXPECT_EQ(done.load(), 10);
}

TEST(AsyncLane, DestructorJoinsCleanly) {
  std::atomic<int> done{0};
  {
    AsyncLane lane;
    for (int i = 0; i < 5; ++i) lane.run([&] { done.fetch_add(1); });
    lane.drain();
  }
  EXPECT_EQ(done.load(), 5);
}

TEST(AsyncLane, MoveOnlyResults) {
  AsyncLane lane;
  auto f = lane.run([] { return std::make_unique<int>(7); });
  EXPECT_EQ(*f.get(), 7);
}

TEST(AsyncLane, DrainThenRunQueuesNormally) {
  // drain() is not terminal: work submitted after a drain queues and runs,
  // and a second drain covers it (the documented "queue" semantics).
  AsyncLane lane;
  std::atomic<int> ran{0};
  for (int i = 0; i < 8; ++i) lane.run([&] { ran.fetch_add(1); });
  lane.drain();
  EXPECT_EQ(ran.load(), 8);
  for (int i = 0; i < 8; ++i) lane.run([&] { ran.fetch_add(1); });
  lane.drain();
  EXPECT_EQ(ran.load(), 16);
}

TEST(AsyncLane, StopRejectsNewWork) {
  AsyncLane lane;
  std::atomic<int> ran{0};
  for (int i = 0; i < 4; ++i) lane.run([&] { ran.fetch_add(1); });
  lane.stop();
  // stop() ran the queued tasks before joining, and is terminal + idempotent.
  EXPECT_EQ(ran.load(), 4);
  EXPECT_THROW(lane.run([] {}), psml::ShutdownError);
  lane.stop();
  EXPECT_THROW(lane.run([] {}), psml::ShutdownError);
}

TEST(AsyncLane, DrainAfterStopReturnsImmediately) {
  AsyncLane lane;
  lane.run([] {});
  lane.stop();
  lane.drain();  // queue is empty and the worker is gone: must not block
}

}  // namespace
}  // namespace psml::pipeline
