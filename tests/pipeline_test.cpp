// AsyncLane (layer-pipeline executor) tests.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>

#include "common/timer.hpp"
#include "pipeline/async_lane.hpp"

namespace psml::pipeline {
namespace {

TEST(AsyncLane, ReturnsResults) {
  AsyncLane lane;
  auto f = lane.run([] { return 41 + 1; });
  EXPECT_EQ(f.get(), 42);
}

TEST(AsyncLane, ExecutesFifo) {
  AsyncLane lane;
  std::vector<int> order;
  std::mutex m;
  std::vector<std::future<void>> futs;
  for (int i = 0; i < 64; ++i) {
    futs.push_back(lane.run([&, i] {
      std::lock_guard<std::mutex> lock(m);
      order.push_back(i);
    }));
  }
  for (auto& f : futs) f.wait();
  for (int i = 0; i < 64; ++i) EXPECT_EQ(order[i], i);
}

TEST(AsyncLane, OverlapsWithCaller) {
  // Work on the lane runs concurrently with caller work: total elapsed must
  // be close to max(lane, caller), not their sum.
  AsyncLane lane;
  Timer t;
  auto f = lane.run(
      [] { std::this_thread::sleep_for(std::chrono::milliseconds(60)); });
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  f.wait();
  EXPECT_LT(t.seconds(), 0.11);
}

TEST(AsyncLane, PropagatesExceptions) {
  AsyncLane lane;
  auto f = lane.run([]() -> int { throw std::runtime_error("lane boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(AsyncLane, DrainWaitsForAll) {
  AsyncLane lane;
  std::atomic<int> done{0};
  for (int i = 0; i < 10; ++i) {
    lane.run([&] {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      done.fetch_add(1);
    });
  }
  lane.drain();
  EXPECT_EQ(done.load(), 10);
}

TEST(AsyncLane, DestructorJoinsCleanly) {
  std::atomic<int> done{0};
  {
    AsyncLane lane;
    for (int i = 0; i < 5; ++i) lane.run([&] { done.fetch_add(1); });
    lane.drain();
  }
  EXPECT_EQ(done.load(), 5);
}

TEST(AsyncLane, MoveOnlyResults) {
  AsyncLane lane;
  auto f = lane.run([] { return std::make_unique<int>(7); });
  EXPECT_EQ(*f.get(), 7);
}

}  // namespace
}  // namespace psml::pipeline
