// Secure ML stack tests: secure layers reconstruct to the plaintext
// computation, secure training matches plaintext training, pipeline on/off
// equivalence, secure RNN.
#include <gtest/gtest.h>

#include "data/datasets.hpp"
#include "tensor/gemm.hpp"
#include "ml/models.hpp"
#include "ml/secure/secure_model.hpp"
#include "ml/secure/secure_rnn.hpp"
#include "tensor/ops.hpp"
#include "test_util.hpp"

namespace psml::ml {
namespace {

using psml::test::expect_near;
using psml::test::random_matrix;
using psml::test::run_parties;

mpc::PartyOptions cpu_opts(bool pipeline = false) {
  mpc::PartyOptions opts = mpc::PartyOptions::parsecureml();
  opts.use_gpu = false;
  opts.adaptive = false;
  opts.use_pipeline = pipeline;
  return opts;
}

// Generates the offline stores for one plan on both parties.
std::pair<mpc::TripletStore, mpc::TripletStore> gen_stores(
    const std::vector<mpc::TripletSpec>& plan, std::uint64_t seed) {
  mpc::TripletDealer dealer(nullptr, {false, false, seed});
  return dealer.generate(plan);
}

TEST(SecureDense, ForwardMatchesPlain) {
  const std::size_t batch = 8, in = 12, out = 6;
  const MatrixF w = xavier_init(in, out, 71);
  const MatrixF x = random_matrix(batch, in, 601);
  const MatrixF expected = tensor::matmul(x, w);

  auto ws = mpc::share_float(w, 72);
  auto xs = mpc::share_float(x, 73);
  auto bs = mpc::share_float(MatrixF(1, out, 0.0f), 74);
  SecureDense l0(ws.s0, bs.s0), l1(ws.s1, bs.s1);
  l0.set_layer_id(1);
  l1.set_layer_id(1);
  std::vector<mpc::TripletSpec> plan;
  l0.plan(plan, batch, /*training=*/false);
  auto [st0, st1] = gen_stores(plan, 74);

  MatrixF y0, y1;
  run_parties(
      cpu_opts(),
      [&](mpc::PartyContext& ctx) {
        ctx.set_triplets(std::move(st0));
        SecureEnv env{&ctx, false, nullptr};
        y0 = l0.forward(env, xs.s0);
      },
      [&](mpc::PartyContext& ctx) {
        ctx.set_triplets(std::move(st1));
        SecureEnv env{&ctx, false, nullptr};
        y1 = l1.forward(env, xs.s1);
      });
  expect_near(mpc::reconstruct_float(y0, y1), expected, 1e-2,
              "secure dense forward");
}

// Full train-batch equivalence: run one SGD step securely and in plaintext
// from identical weights; the reconstructed secure weights must match the
// plaintext weights.
class SecureVsPlain : public ::testing::TestWithParam<bool> {};

TEST_P(SecureVsPlain, OneSgdStepMatchesPlaintext) {
  const bool pipeline = GetParam();
  const std::size_t batch = 16;
  const auto ds = data::make_dataset(data::DatasetKind::kMnist,
                                     data::LabelScheme::kOneHot10, batch, 75);
  ModelConfig mc;
  mc.kind = ModelKind::kMlp;
  mc.input_dim = ds.geometry.features();
  mc.classes = 10;
  mc.seed = 76;

  // Plaintext step.
  auto plain = build_plain(mc);
  train_batch(plain, LossKind::kMse, ds.x, ds.y, 0.25f);

  // Secure step from the same init.
  auto pair = build_secure_pair(mc);
  std::vector<mpc::TripletSpec> plan;
  pair.m0.plan_batch(plan, batch, LossKind::kMse, 10, true);
  auto [st0, st1] = gen_stores(plan, 77);
  auto xs = mpc::share_float(ds.x, 78);
  auto ys = mpc::share_float(ds.y, 79);

  run_parties(
      cpu_opts(pipeline),
      [&](mpc::PartyContext& ctx) {
        ctx.set_triplets(std::move(st0));
        std::unique_ptr<pipeline::AsyncLane> lane;
        if (pipeline) lane = std::make_unique<pipeline::AsyncLane>();
        SecureEnv env{&ctx, true, lane.get()};
        secure_train_batch(env, pair.m0, LossKind::kMse, xs.s0, ys.s0, 0.25f);
      },
      [&](mpc::PartyContext& ctx) {
        ctx.set_triplets(std::move(st1));
        std::unique_ptr<pipeline::AsyncLane> lane;
        if (pipeline) lane = std::make_unique<pipeline::AsyncLane>();
        SecureEnv env{&ctx, true, lane.get()};
        secure_train_batch(env, pair.m1, LossKind::kMse, xs.s1, ys.s1, 0.25f);
      });

  auto secure_as_plain = reconstruct_plain(mc, pair.m0, pair.m1);
  // Compare layer-by-layer weights. The activation-region mask can differ on
  // measure-zero boundaries; tolerance covers share noise only.
  for (std::size_t i = 0; i < plain.size(); ++i) {
    auto* dp = dynamic_cast<Dense*>(&plain.layer(i));
    if (dp == nullptr) continue;
    auto* ds_layer = dynamic_cast<Dense*>(&secure_as_plain.layer(i));
    ASSERT_NE(ds_layer, nullptr);
    expect_near(ds_layer->weights(), dp->weights(), 5e-2,
                ("layer " + std::to_string(i)).c_str());
  }
}

INSTANTIATE_TEST_SUITE_P(PipelineOnOff, SecureVsPlain, ::testing::Bool(),
                         [](const auto& info) {
                           return info.param ? "pipelined" : "serial";
                         });

TEST(SecureTraining, MlpConvergesOnSeparableData) {
  const std::size_t n = 64;
  const auto ds = data::make_dataset(data::DatasetKind::kMnist,
                                     data::LabelScheme::kOneHot10, n, 80);
  ModelConfig mc;
  mc.kind = ModelKind::kMlp;
  mc.input_dim = ds.geometry.features();
  mc.classes = 10;
  mc.seed = 81;
  auto pair = build_secure_pair(mc);

  constexpr int kEpochs = 20;
  std::vector<mpc::TripletSpec> plan;
  for (int e = 0; e < kEpochs; ++e) {
    pair.m0.plan_batch(plan, n, LossKind::kMse, 10, true);
  }
  auto [st0, st1] = gen_stores(plan, 82);
  auto xs = mpc::share_float(ds.x, 83);
  auto ys = mpc::share_float(ds.y, 84);

  run_parties(
      cpu_opts(),
      [&](mpc::PartyContext& ctx) {
        ctx.set_triplets(std::move(st0));
        SecureEnv env{&ctx, true, nullptr};
        for (int e = 0; e < kEpochs; ++e) {
          secure_train_batch(env, pair.m0, LossKind::kMse, xs.s0, ys.s0,
                             0.05f);
        }
      },
      [&](mpc::PartyContext& ctx) {
        ctx.set_triplets(std::move(st1));
        SecureEnv env{&ctx, true, nullptr};
        for (int e = 0; e < kEpochs; ++e) {
          secure_train_batch(env, pair.m1, LossKind::kMse, xs.s1, ys.s1,
                             0.05f);
        }
      });

  auto trained = reconstruct_plain(mc, pair.m0, pair.m1);
  EXPECT_GT(accuracy(trained.forward(ds.x), ds.y), 0.55);
}

TEST(SecureTraining, SvmHingeLossStep) {
  const std::size_t n = 32;
  const auto ds = data::make_dataset(data::DatasetKind::kMnist,
                                     data::LabelScheme::kBinaryPm1, n, 85);
  ModelConfig mc;
  mc.kind = ModelKind::kSvm;
  mc.input_dim = ds.geometry.features();
  mc.classes = 1;
  mc.seed = 86;

  auto plain = build_plain(mc);
  for (int e = 0; e < 3; ++e) {
    train_batch(plain, LossKind::kHinge, ds.x, ds.y, 0.3f);
  }

  auto pair = build_secure_pair(mc);
  std::vector<mpc::TripletSpec> plan;
  for (int e = 0; e < 3; ++e) {
    pair.m0.plan_batch(plan, n, LossKind::kHinge, 1, true);
  }
  auto [st0, st1] = gen_stores(plan, 87);
  auto xs = mpc::share_float(ds.x, 88);
  auto ys = mpc::share_float(ds.y, 89);
  run_parties(
      cpu_opts(),
      [&](mpc::PartyContext& ctx) {
        ctx.set_triplets(std::move(st0));
        SecureEnv env{&ctx, true, nullptr};
        for (int e = 0; e < 3; ++e) {
          secure_train_batch(env, pair.m0, LossKind::kHinge, xs.s0, ys.s0,
                             0.3f);
        }
      },
      [&](mpc::PartyContext& ctx) {
        ctx.set_triplets(std::move(st1));
        SecureEnv env{&ctx, true, nullptr};
        for (int e = 0; e < 3; ++e) {
          secure_train_batch(env, pair.m1, LossKind::kHinge, xs.s1, ys.s1,
                             0.3f);
        }
      });
  auto trained = reconstruct_plain(mc, pair.m0, pair.m1);
  auto* dp = dynamic_cast<Dense*>(&plain.layer(0));
  auto* dsec = dynamic_cast<Dense*>(&trained.layer(0));
  ASSERT_NE(dp, nullptr);
  ASSERT_NE(dsec, nullptr);
  expect_near(dsec->weights(), dp->weights(), 5e-2, "svm weights");
}

TEST(SecureCnn, OneStepMatchesPlain) {
  const std::size_t batch = 4;
  ModelConfig mc;
  mc.kind = ModelKind::kCnn;
  mc.image_h = 10;
  mc.image_w = 10;
  mc.channels = 1;
  mc.input_dim = 100;
  mc.classes = 10;
  mc.seed = 90;

  const MatrixF x = random_matrix(batch, 100, 602, 0.0f, 1.0f);
  MatrixF y(batch, 10, 0.0f);
  for (std::size_t r = 0; r < batch; ++r) y(r, r % 10) = 1.0f;

  auto plain = build_plain(mc);
  train_batch(plain, LossKind::kMse, x, y, 0.2f);

  auto pair = build_secure_pair(mc);
  std::vector<mpc::TripletSpec> plan;
  pair.m0.plan_batch(plan, batch, LossKind::kMse, 10, true);
  auto [st0, st1] = gen_stores(plan, 91);
  auto xs = mpc::share_float(x, 92);
  auto ys = mpc::share_float(y, 93);
  run_parties(
      cpu_opts(),
      [&](mpc::PartyContext& ctx) {
        ctx.set_triplets(std::move(st0));
        SecureEnv env{&ctx, true, nullptr};
        secure_train_batch(env, pair.m0, LossKind::kMse, xs.s0, ys.s0, 0.2f);
      },
      [&](mpc::PartyContext& ctx) {
        ctx.set_triplets(std::move(st1));
        SecureEnv env{&ctx, true, nullptr};
        secure_train_batch(env, pair.m1, LossKind::kMse, xs.s1, ys.s1, 0.2f);
      });
  auto trained = reconstruct_plain(mc, pair.m0, pair.m1);
  auto* cp = dynamic_cast<Conv2D*>(&plain.layer(0));
  auto* cs = dynamic_cast<Conv2D*>(&trained.layer(0));
  ASSERT_NE(cp, nullptr);
  ASSERT_NE(cs, nullptr);
  expect_near(cs->weights(), cp->weights(), 5e-2, "conv weights");
}

TEST(SecureRnn, ForwardMatchesPlainRnn) {
  ModelConfig mc;
  mc.kind = ModelKind::kRnn;
  mc.input_dim = 8;
  mc.rnn_hidden = 6;
  mc.classes = 1;
  mc.rnn_steps = 3;
  mc.seed = 94;

  auto plain = build_plain_rnn(mc);
  auto pair = build_secure_rnn_pair(mc);

  const std::size_t batch = 5;
  std::vector<MatrixF> xs_plain;
  for (int t = 0; t < 3; ++t) {
    xs_plain.push_back(random_matrix(batch, 8, 610 + t, -0.4f, 0.4f));
  }
  const MatrixF expected = plain.forward(xs_plain);

  std::vector<MatrixF> xs0, xs1;
  for (const auto& x : xs_plain) {
    auto s = mpc::share_float(x, 95);
    xs0.push_back(std::move(s.s0));
    xs1.push_back(std::move(s.s1));
  }
  std::vector<mpc::TripletSpec> plan;
  pair.m0->plan(plan, batch, 3, /*training=*/false);
  auto [st0, st1] = gen_stores(plan, 96);

  MatrixF o0, o1;
  run_parties(
      cpu_opts(),
      [&](mpc::PartyContext& ctx) {
        ctx.set_triplets(std::move(st0));
        SecureEnv env{&ctx, false, nullptr};
        o0 = pair.m0->forward(env, xs0);
      },
      [&](mpc::PartyContext& ctx) {
        ctx.set_triplets(std::move(st1));
        SecureEnv env{&ctx, false, nullptr};
        o1 = pair.m1->forward(env, xs1);
      });
  expect_near(mpc::reconstruct_float(o0, o1), expected, 5e-2,
              "secure rnn forward");
}

TEST(SecureRnn, TrainingStepMatchesPlain) {
  ModelConfig mc;
  mc.kind = ModelKind::kRnn;
  mc.input_dim = 6;
  mc.rnn_hidden = 4;
  mc.classes = 1;
  mc.rnn_steps = 2;
  mc.seed = 97;

  auto plain = build_plain_rnn(mc);
  auto pair = build_secure_rnn_pair(mc);

  const std::size_t batch = 6;
  std::vector<MatrixF> xs_plain;
  for (int t = 0; t < 2; ++t) {
    xs_plain.push_back(random_matrix(batch, 6, 620 + t, -0.4f, 0.4f));
  }
  const MatrixF y = random_matrix(batch, 1, 630, 0.0f, 1.0f);

  // Plaintext step.
  const MatrixF pred = plain.forward(xs_plain);
  const auto lr_res = compute_loss(LossKind::kMse, pred, y);
  plain.backward(lr_res.grad);
  plain.update(0.3f);

  // Secure step.
  std::vector<MatrixF> xs0, xs1;
  for (const auto& x : xs_plain) {
    auto s = mpc::share_float(x, 98);
    xs0.push_back(std::move(s.s0));
    xs1.push_back(std::move(s.s1));
  }
  auto ys = mpc::share_float(y, 99);
  std::vector<mpc::TripletSpec> plan;
  pair.m0->plan(plan, batch, 2, /*training=*/true);
  auto [st0, st1] = gen_stores(plan, 100);

  auto step = [&](mpc::PartyContext& ctx, SecureRnn& rnn,
                  const std::vector<MatrixF>& xs, const MatrixF& yy) {
    SecureEnv env{&ctx, true, nullptr};
    MatrixF p = rnn.forward(env, xs);
    MatrixF grad(p.rows(), p.cols());
    const float inv_n = 1.0f / static_cast<float>(p.rows());
    for (std::size_t i = 0; i < grad.size(); ++i) {
      grad.data()[i] = (p.data()[i] - yy.data()[i]) * inv_n;
    }
    rnn.backward(env, grad);
    rnn.update(0.3f);
  };
  run_parties(
      cpu_opts(),
      [&](mpc::PartyContext& ctx) {
        ctx.set_triplets(std::move(st0));
        step(ctx, *pair.m0, xs0, ys.s0);
      },
      [&](mpc::PartyContext& ctx) {
        ctx.set_triplets(std::move(st1));
        step(ctx, *pair.m1, xs1, ys.s1);
      });

  auto trained = reconstruct_plain_rnn(mc, *pair.m0, *pair.m1);
  expect_near(trained.wx(), plain.wx(), 5e-2, "wx");
  expect_near(trained.wh(), plain.wh(), 5e-2, "wh");
  expect_near(trained.wo(), plain.wo(), 5e-2, "wo");
}

TEST(SecurePlan, InferencePlanSmallerThanTraining) {
  ModelConfig mc;
  mc.kind = ModelKind::kMlp;
  mc.input_dim = 50;
  mc.classes = 10;
  auto pair = build_secure_pair(mc);
  std::vector<mpc::TripletSpec> train_plan, infer_plan;
  pair.m0.plan_batch(train_plan, 8, LossKind::kMse, 10, true);
  pair.m0.plan_batch(infer_plan, 8, LossKind::kMse, 10, false);
  EXPECT_GT(train_plan.size(), infer_plan.size());
  // Inference: one matmul per dense + activations, no backward triplets.
  std::size_t matmuls = 0;
  for (const auto& s : infer_plan) {
    if (s.kind == mpc::TripletKind::kMatMul) ++matmuls;
  }
  EXPECT_EQ(matmuls, 3u);
}

}  // namespace
}  // namespace psml::ml
