// Compressed-transmission tests: dense/delta round trips, the 75 % sparsity
// threshold, byte accounting, baselines, and failure injection.
#include <gtest/gtest.h>

#include <thread>

#include "compress/compressed_channel.hpp"
#include "net/local_channel.hpp"
#include "tensor/ops.hpp"
#include "test_util.hpp"

namespace psml::compress {
namespace {

using psml::test::expect_near;
using psml::test::random_matrix;

struct Pair {
  net::ChannelPair chans;
  std::unique_ptr<Endpoint> a, b;

  explicit Pair(Config cfg = Config()) {
    chans = net::LocalChannel::make_pair();
    a = std::make_unique<Endpoint>(*chans.a, cfg);
    b = std::make_unique<Endpoint>(*chans.b, cfg);
  }
};

// Applies a sparse delta: flips `changes` entries by +1.
MatrixF apply_sparse_delta(MatrixF m, std::size_t changes) {
  for (std::size_t i = 0; i < changes; ++i) {
    m.data()[(i * 97) % m.size()] += 1.0f;
  }
  return m;
}

TEST(Compress, FirstSendIsDense) {
  Pair p;
  const MatrixF m = random_matrix(20, 20, 51);
  p.a->send(1, 100, m);
  expect_near(p.b->recv(1, 100), m, 0.0, "first send");
  EXPECT_EQ(p.a->stats().compressed_messages, 0u);
}

TEST(Compress, SparseDeltaIsCompressed) {
  Pair p;
  const MatrixF m1 = random_matrix(64, 64, 52);
  const MatrixF m2 = apply_sparse_delta(m1, 10);  // 10/4096 changed
  p.a->send(1, 100, m1);
  (void)p.b->recv(1, 100);
  p.a->send(1, 100, m2);
  expect_near(p.b->recv(1, 100), m2, 0.0, "delta recv");
  EXPECT_EQ(p.a->stats().compressed_messages, 1u);
  EXPECT_LT(p.a->stats().sent_bytes, p.a->stats().dense_bytes);
}

TEST(Compress, DenseDeltaFallsBack) {
  Pair p;
  const MatrixF m1 = random_matrix(32, 32, 53);
  const MatrixF m2 = random_matrix(32, 32, 54);  // totally different
  p.a->send(1, 100, m1);
  (void)p.b->recv(1, 100);
  p.a->send(1, 100, m2);
  expect_near(p.b->recv(1, 100), m2, 0.0, "dense fallback");
  EXPECT_EQ(p.a->stats().compressed_messages, 0u);
}

TEST(Compress, IdenticalResendCostsAlmostNothing) {
  Pair p;
  const MatrixF m = random_matrix(128, 128, 55);
  p.a->send(1, 100, m);
  (void)p.b->recv(1, 100);
  const auto before = p.a->stats().sent_bytes;
  p.a->send(1, 100, m);  // delta is all zeros
  expect_near(p.b->recv(1, 100), m, 0.0, "identical resend");
  const auto delta_bytes = p.a->stats().sent_bytes - before;
  EXPECT_LT(delta_bytes, m.bytes() / 50);
}

TEST(Compress, LongChainOfDeltasStaysExact) {
  Pair p;
  MatrixF m = random_matrix(48, 48, 56);
  p.a->send(1, 7, m);
  (void)p.b->recv(1, 7);
  for (int epoch = 0; epoch < 20; ++epoch) {
    m = apply_sparse_delta(m, 5);
    p.a->send(1, 7, m);
    expect_near(p.b->recv(1, 7), m, 0.0, "chain");
  }
  EXPECT_EQ(p.a->stats().compressed_messages, 20u);
}

TEST(Compress, IndependentKeysKeepIndependentBaselines) {
  Pair p;
  const MatrixF ma = random_matrix(16, 16, 57);
  const MatrixF mb = random_matrix(16, 16, 58);
  p.a->send(1, 1, ma);
  p.a->send(2, 2, mb);
  expect_near(p.b->recv(1, 1), ma, 0.0, "key 1");
  expect_near(p.b->recv(2, 2), mb, 0.0, "key 2");
  // Sparse update to key 1 only.
  const MatrixF ma2 = apply_sparse_delta(ma, 3);
  p.a->send(1, 1, ma2);
  expect_near(p.b->recv(1, 1), ma2, 0.0, "key 1 delta");
  EXPECT_EQ(p.a->stats().compressed_messages, 1u);
}

TEST(Compress, DisabledNeverCompresses) {
  Config cfg;
  cfg.enabled = false;
  Pair p(cfg);
  const MatrixF m = random_matrix(32, 32, 59);
  p.a->send(1, 1, m);
  (void)p.b->recv(1, 1);
  p.a->send(1, 1, m);  // identical: would compress if enabled
  (void)p.b->recv(1, 1);
  EXPECT_EQ(p.a->stats().compressed_messages, 0u);
}

class ThresholdSweep : public ::testing::TestWithParam<double> {};

TEST_P(ThresholdSweep, ThresholdGovernsCompression) {
  Config cfg;
  cfg.sparsity_threshold = GetParam();
  Pair p(cfg);
  // Delta with exactly 80 % zeros (CSR clearly smaller than dense).
  MatrixF m1(20, 20, 1.0f);
  MatrixF m2 = m1;
  for (std::size_t i = 0; i < m2.size(); i += 5) m2.data()[i] += 1.0f;
  p.a->send(1, 1, m1);
  (void)p.b->recv(1, 1);
  p.a->send(1, 1, m2);
  expect_near(p.b->recv(1, 1), m2, 0.0, "threshold");
  const bool compressed = p.a->stats().compressed_messages == 1;
  EXPECT_EQ(compressed, GetParam() <= 0.8);
}

INSTANTIATE_TEST_SUITE_P(Thresholds, ThresholdSweep,
                         ::testing::Values(0.10, 0.50, 0.75, 0.95));

TEST(Compress, ShapeChangeResetsBaseline) {
  Pair p;
  p.a->send(1, 1, random_matrix(8, 8, 60));
  (void)p.b->recv(1, 1);
  const MatrixF bigger = random_matrix(16, 16, 61);
  p.a->send(1, 1, bigger);
  expect_near(p.b->recv(1, 1), bigger, 0.0, "shape change");
}

TEST(Compress, SavingsMetric) {
  Stats s;
  EXPECT_DOUBLE_EQ(s.savings(), 0.0);
  s.dense_bytes = 100;
  s.sent_bytes = 25;
  EXPECT_DOUBLE_EQ(s.savings(), 0.75);
}

TEST(Compress, DeltaWithoutBaselineThrows) {
  // Receiver with no baseline must reject a delta payload. Simulate by
  // sending a compressed delta through one endpoint and receiving with a
  // *fresh* endpoint on the same channel (no recv baseline).
  auto chans = net::LocalChannel::make_pair();
  Endpoint sender(*chans.a);
  Endpoint thrower(*chans.b);
  const MatrixF m1 = random_matrix(32, 32, 62);
  sender.send(1, 9, m1);
  {
    Endpoint receiver(*chans.b);
    expect_near(receiver.recv(1, 9), m1, 0.0, "setup");
  }
  sender.send(1, 9, m1);  // compressed (identical)
  EXPECT_THROW(thrower.recv(1, 9), ProtocolError);
}

TEST(Compress, ConcurrentBidirectionalTraffic) {
  Pair p;
  constexpr int kRounds = 50;
  std::exception_ptr err;
  std::thread peer([&] {
    try {
      MatrixF m = random_matrix(24, 24, 63);
      for (int i = 0; i < kRounds; ++i) {
        p.b->send(2, 5, m);
        (void)p.b->recv(1, 5);
        m = apply_sparse_delta(m, 2);
      }
    } catch (...) {
      err = std::current_exception();
    }
  });
  MatrixF m = random_matrix(24, 24, 64);
  for (int i = 0; i < kRounds; ++i) {
    p.a->send(1, 5, m);
    (void)p.a->recv(2, 5);
    m = apply_sparse_delta(m, 2);
  }
  peer.join();
  ASSERT_FALSE(err);
}

TEST(Compress, PairRoundTripIsOneChannelMessage) {
  Pair p;
  const MatrixF e = random_matrix(16, 12, 7);
  const MatrixF f = random_matrix(12, 10, 8);

  const auto msgs_before = p.chans.a->stats().messages_sent.load();
  p.a->send_pair(5, 1, e, 2, f);
  auto [re, rf] = p.b->recv_pair(5, 1, 2);

  expect_near(re, e, 0.0, "pair first half");
  expect_near(rf, f, 0.0, "pair second half");
  // The whole point of the pair frame: both halves ride one channel message.
  EXPECT_EQ(p.chans.a->stats().messages_sent.load() - msgs_before, 1u);
  // Stats still count each half as a logical message.
  EXPECT_EQ(p.a->stats().messages, 2u);
}

TEST(Compress, PairHalvesKeepIndependentDeltaBaselines) {
  Pair p;
  MatrixF e = random_matrix(32, 32, 7);
  MatrixF f = random_matrix(32, 32, 8);
  p.a->send_pair(5, 1, e, 2, f);
  (void)p.b->recv_pair(5, 1, 2);
  EXPECT_EQ(p.a->stats().compressed_messages, 0u);

  // Sparse per-half deltas: both halves must compress against the baselines
  // established by the first pair, exactly as two single sends would.
  const MatrixF e2 = apply_sparse_delta(e, 3);
  const MatrixF f2 = apply_sparse_delta(f, 3);
  p.a->send_pair(5, 1, e2, 2, f2);
  auto [re2, rf2] = p.b->recv_pair(5, 1, 2);

  expect_near(re2, e2, 0.0, "pair delta first half");
  expect_near(rf2, f2, 0.0, "pair delta second half");
  EXPECT_EQ(p.a->stats().compressed_messages, 2u);
  EXPECT_LT(p.a->stats().sent_bytes, p.a->stats().dense_bytes);
}

TEST(Compress, PairAndSingleSendsShareBaselinesPerKey) {
  // A key's baseline is the same whether the matrix travels alone or as a
  // pair half; mixing the two paths must stay exact and keep compressing.
  Pair p;
  MatrixF e = random_matrix(24, 24, 9);
  p.a->send(3, 1, e);
  (void)p.b->recv(3, 1);

  const MatrixF e2 = apply_sparse_delta(e, 2);
  const MatrixF f = random_matrix(24, 24, 10);
  p.a->send_pair(5, 1, e2, 2, f);
  auto [re2, rf] = p.b->recv_pair(5, 1, 2);

  expect_near(re2, e2, 0.0, "delta via pair after single send");
  expect_near(rf, f, 0.0, "fresh pair half");
  // The first half compressed against the single-send baseline; the second
  // half had no baseline yet and went dense.
  EXPECT_EQ(p.a->stats().compressed_messages, 1u);
}

}  // namespace
}  // namespace psml::compress
