// End-to-end ring-mode (Z_2^64 fixed-point) secure training — SecureML's
// exact algebra with no float-share compromises: linear regression trained
// entirely on ring shares, compared against plaintext float training.
#include <gtest/gtest.h>

#include "data/datasets.hpp"
#include "mpc/ring_protocol.hpp"
#include "tensor/gemm.hpp"
#include "tensor/ops.hpp"
#include "test_util.hpp"

namespace psml::mpc {
namespace {

using psml::test::expect_near;
using psml::test::random_matrix;
using psml::test::run_parties;

PartyOptions cpu_opts() { return PartyOptions::secureml_baseline(); }

TEST(RingScale, PublicConstantScaling) {
  const MatrixF xf = random_matrix(16, 16, 1001, -4.0f, 4.0f);
  const auto shares = share_ring(encode_fixed(xf), 1002);
  const double c = 0.125;
  const MatrixU64 s0 = ring_scale_share(shares.s0, c, 0);
  const MatrixU64 s1 = ring_scale_share(shares.s1, c, 1);
  MatrixF expected;
  tensor::scale(xf, static_cast<float>(c), expected);
  expect_near(decode_fixed(reconstruct_ring(s0, s1)), expected,
              4.0 / kFixedScale, "public scaling");
}

TEST(RingScale, NegativeConstant) {
  const MatrixF xf = random_matrix(8, 8, 1003);
  const auto shares = share_ring(encode_fixed(xf), 1004);
  const MatrixU64 s0 = ring_scale_share(shares.s0, -0.5, 0);
  const MatrixU64 s1 = ring_scale_share(shares.s1, -0.5, 1);
  MatrixF expected;
  tensor::scale(xf, -0.5f, expected);
  expect_near(decode_fixed(reconstruct_ring(s0, s1)), expected,
              4.0 / kFixedScale, "negative scaling");
}

// Full secure linear-regression training in the ring: per epoch
//   z     = X w                    (ring triplet matmul, truncated)
//   g     = X^T (z - y)            (ring triplet matmul, truncated)
//   w    -= lr/n * g               (local public scaling)
// compared against the identical float plaintext recursion.
TEST(RingTraining, LinearRegressionMatchesPlaintext) {
  const std::size_t n = 32, d = 16;
  const auto ds = data::make_dataset(data::DatasetKind::kSynthetic,
                                     data::LabelScheme::kBinary01, n, 1005);
  // Reduce to d features to keep ring products well inside fixed-point range.
  MatrixF x(n, d);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < d; ++c) x(r, c) = ds.x(r, c * 7);
  }
  const MatrixF& y = ds.y;

  constexpr int kEpochs = 10;
  const float lr_over_n = 0.5f / static_cast<float>(n);

  // Plaintext reference.
  MatrixF w_ref(d, 1, 0.0f);
  for (int e = 0; e < kEpochs; ++e) {
    MatrixF z = tensor::matmul(x, w_ref);
    MatrixF diff;
    tensor::sub(z, y, diff);
    MatrixF g = tensor::matmul(tensor::transpose(x), diff);
    tensor::axpy(-lr_over_n, g, w_ref);
  }

  // Ring-mode secure run.
  const auto xs = share_ring(encode_fixed(x), 1006);
  const MatrixU64 xt0 = [&] {
    // Transpose of a share is a share of the transpose.
    MatrixU64 t(d, n);
    for (std::size_t r = 0; r < n; ++r) {
      for (std::size_t c = 0; c < d; ++c) t(c, r) = xs.s0(r, c);
    }
    return t;
  }();
  const MatrixU64 xt1 = [&] {
    MatrixU64 t(d, n);
    for (std::size_t r = 0; r < n; ++r) {
      for (std::size_t c = 0; c < d; ++c) t(c, r) = xs.s1(r, c);
    }
    return t;
  }();
  const auto ys = share_ring(encode_fixed(y), 1007);

  // Per-epoch triplets (no recycling — exactness test, not compression).
  std::vector<std::pair<RingTripletShare, RingTripletShare>> fwd, bwd;
  for (int e = 0; e < kEpochs; ++e) {
    fwd.push_back(make_ring_matmul_triplet(n, d, 1, 2000 + e));
    bwd.push_back(make_ring_matmul_triplet(d, n, 1, 3000 + e));
  }

  MatrixU64 w0(d, 1, 0), w1(d, 1, 0);
  auto server = [&](PartyContext& ctx, MatrixU64& w, const MatrixU64& x_sh,
                    const MatrixU64& xt_sh, const MatrixU64& y_sh,
                    bool first) {
    for (int e = 0; e < kEpochs; ++e) {
      const auto& tf = first ? fwd[e].first : fwd[e].second;
      const auto& tb = first ? bwd[e].first : bwd[e].second;
      MatrixU64 z = secure_matmul_ring(ctx, x_sh, w, tf);
      MatrixU64 diff = ring_sub(z, y_sh);
      MatrixU64 g = secure_matmul_ring(ctx, xt_sh, diff, tb);
      const MatrixU64 step = ring_scale_share(g, lr_over_n, ctx.id());
      w = ring_sub(w, step);
    }
  };
  run_parties(
      cpu_opts(),
      [&](PartyContext& ctx) { server(ctx, w0, xs.s0, xt0, ys.s0, true); },
      [&](PartyContext& ctx) { server(ctx, w1, xs.s1, xt1, ys.s1, false); });

  const MatrixF w_secure = decode_fixed(reconstruct_ring(w0, w1));
  // Fixed-point rounding accumulates ~1 ulp per product per epoch.
  expect_near(w_secure, w_ref,
              kEpochs * (d + n) * 4.0 / kFixedScale + 1e-3, "ring training");

  // And the trained model actually predicts: compare fit quality.
  const MatrixF pred_secure = tensor::matmul(x, w_secure);
  const MatrixF pred_ref = tensor::matmul(x, w_ref);
  expect_near(pred_secure, pred_ref, 0.05, "predictions agree");
}

TEST(RingTraining, WeightsStayExactlyReconstructible) {
  // Unlike float mode, ring shares never lose precision: after many
  // epochs of mock updates with huge share magnitudes, reconstruction is
  // still exact.
  MatrixU64 value(8, 8);
  MatrixF vf = random_matrix(8, 8, 1008);
  value = encode_fixed(vf);
  auto shares = share_ring(value, 1009);
  for (int i = 0; i < 1000; ++i) {
    // Add and remove a large random mask — net zero, but the intermediate
    // share magnitudes span the whole ring.
    MatrixU64 mask(8, 8);
    rng::fill_uniform_u64_par(mask, 5000 + i);
    shares.s0 = ring_add(shares.s0, mask);
    shares.s1 = ring_sub(shares.s1, mask);
  }
  EXPECT_TRUE(reconstruct_ring(shares.s0, shares.s1) == value);
}

}  // namespace
}  // namespace psml::mpc
