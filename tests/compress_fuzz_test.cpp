// Randomized stress test of the compressed channel: arbitrary interleavings
// of sparse deltas, dense rewrites, shape changes, and multiple keys must
// reconstruct exactly on the receiver, whatever the compressor decided.
#include <gtest/gtest.h>

#include <random>

#include "compress/compressed_channel.hpp"
#include "net/local_channel.hpp"
#include "tensor/ops.hpp"
#include "test_util.hpp"

namespace psml::compress {
namespace {

using psml::test::expect_near;

class CompressFuzz : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(CompressFuzz, RandomUpdateSequencesReconstructExactly) {
  std::mt19937 gen(GetParam());
  auto chans = net::LocalChannel::make_pair();
  Config cfg;
  std::uniform_real_distribution<double> threshold_pick(0.3, 0.95);
  cfg.sparsity_threshold = threshold_pick(gen);
  Endpoint sender(*chans.a, cfg);
  Endpoint receiver(*chans.b, cfg);

  constexpr int kKeys = 3;
  std::map<std::uint64_t, MatrixF> current;

  std::uniform_int_distribution<int> key_pick(0, kKeys - 1);
  std::uniform_int_distribution<int> action_pick(0, 9);
  std::uniform_int_distribution<std::size_t> dim_pick(1, 24);

  for (int step = 0; step < 120; ++step) {
    const std::uint64_t key = static_cast<std::uint64_t>(key_pick(gen)) + 1;
    const int action = action_pick(gen);
    auto it = current.find(key);

    if (it == current.end() || action < 2) {
      // Fresh matrix (possibly a shape change).
      MatrixF m(dim_pick(gen), dim_pick(gen));
      psml::rng::fill_uniform_par(m, -1.0f, 1.0f, GetParam() * 1000 + step);
      current[key] = std::move(m);
    } else if (action < 8) {
      // Sparse-ish delta: flip a random fraction of entries.
      MatrixF& m = it->second;
      std::uniform_int_distribution<std::size_t> idx(0, m.size() - 1);
      const std::size_t changes = 1 + idx(gen) / 4;
      for (std::size_t c = 0; c < changes; ++c) {
        m.data()[idx(gen)] += 0.25f;
      }
    } else {
      // Dense rewrite, same shape.
      MatrixF& m = it->second;
      psml::rng::fill_uniform_par(m, -2.0f, 2.0f, GetParam() * 2000 + step);
    }

    const net::Tag tag = static_cast<net::Tag>(key);
    sender.send(tag, key, current[key]);
    const MatrixF got = receiver.recv(tag, key);
    ASSERT_TRUE(got.same_shape(current[key])) << "step " << step;
    ASSERT_LE(tensor::max_abs_diff(got, current[key]), 0.0)
        << "step " << step << " key " << key;
  }
  // The stream must have used both modes at least once across the run for
  // the test to mean anything (statistically certain at 120 steps).
  EXPECT_GT(sender.stats().messages, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CompressFuzz,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

}  // namespace
}  // namespace psml::compress
