// Algebraic property tests over the tensor kernels — the identities the MPC
// layer silently relies on (linearity everywhere).
#include <gtest/gtest.h>

#include "tensor/gemm.hpp"
#include "tensor/im2col.hpp"
#include "tensor/ops.hpp"
#include "test_util.hpp"

namespace psml::tensor {
namespace {

using psml::test::expect_near;
using psml::test::random_matrix;

class LinearityShapes
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

// (A + B) x C == A x C + B x C — the distributivity that makes X = X0 + X1
// sharable through matmul.
TEST_P(LinearityShapes, GemmDistributesOverAddition) {
  const auto [m, n] = GetParam();
  const std::size_t k = m + n;
  const MatrixF a = random_matrix(m, k, 901);
  const MatrixF b = random_matrix(m, k, 902);
  const MatrixF c = random_matrix(k, n, 903);

  MatrixF sum;
  add(a, b, sum);
  const MatrixF lhs = matmul(sum, c);
  MatrixF rhs;
  add(matmul(a, c), matmul(b, c), rhs);
  expect_near(lhs, rhs, 1e-3 * static_cast<double>(k), "distributivity");
}

// im2col is linear: im2col(A + B) == im2col(A) + im2col(B) — why each server
// can lower its own share of a conv input locally.
TEST_P(LinearityShapes, Im2colIsLinear) {
  const auto [m, n] = GetParam();
  (void)n;
  ConvShape s;
  s.in_h = 8;
  s.in_w = 8;
  s.kernel = 3;
  const std::size_t batch = m;
  const MatrixF a = random_matrix(batch, 64, 904);
  const MatrixF b = random_matrix(batch, 64, 905);
  MatrixF sum;
  add(a, b, sum);
  MatrixF rhs;
  add(im2col(a, s), im2col(b, s), rhs);
  expect_near(im2col(sum, s), rhs, 1e-5, "im2col linearity");
}

// Transpose is linear and an involution.
TEST_P(LinearityShapes, TransposeProperties) {
  const auto [m, n] = GetParam();
  const MatrixF a = random_matrix(m, n, 906);
  const MatrixF b = random_matrix(m, n, 907);
  MatrixF sum;
  add(a, b, sum);
  MatrixF rhs;
  add(transpose(a), transpose(b), rhs);
  expect_near(transpose(sum), rhs, 0.0, "transpose linearity");
  expect_near(transpose(transpose(a)), a, 0.0, "involution");
}

// (A x B)^T == B^T x A^T — backward passes depend on it.
TEST_P(LinearityShapes, GemmTransposeIdentity) {
  const auto [m, n] = GetParam();
  const std::size_t k = 2 * n + 1;
  const MatrixF a = random_matrix(m, k, 908);
  const MatrixF b = random_matrix(k, n, 909);
  expect_near(transpose(matmul(a, b)), matmul(transpose(b), transpose(a)),
              1e-3 * static_cast<double>(k), "(AB)^T = B^T A^T");
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, LinearityShapes,
    ::testing::Values(std::tuple<std::size_t, std::size_t>{1, 1},
                      std::tuple<std::size_t, std::size_t>{3, 5},
                      std::tuple<std::size_t, std::size_t>{8, 8},
                      std::tuple<std::size_t, std::size_t>{17, 31}));

TEST(Associativity, ChainedProducts) {
  // (A x B) x C == A x (B x C) within float tolerance.
  const MatrixF a = random_matrix(9, 13, 910);
  const MatrixF b = random_matrix(13, 7, 911);
  const MatrixF c = random_matrix(7, 5, 912);
  expect_near(matmul(matmul(a, b), c), matmul(a, matmul(b, c)), 1e-2,
              "associativity");
}

TEST(Scaling, ScalarsCommuteThroughGemm) {
  const MatrixF a = random_matrix(6, 6, 913);
  const MatrixF b = random_matrix(6, 6, 914);
  MatrixF a2;
  scale(a, 2.5f, a2);
  MatrixF expected;
  scale(matmul(a, b), 2.5f, expected);
  expect_near(matmul(a2, b), expected, 1e-4, "scalar commutes");
}

TEST(Hadamard, CommutesAndDistributes) {
  const MatrixF a = random_matrix(10, 10, 915);
  const MatrixF b = random_matrix(10, 10, 916);
  const MatrixF c = random_matrix(10, 10, 917);
  MatrixF ab, ba;
  hadamard(a, b, ab);
  hadamard(b, a, ba);
  expect_near(ab, ba, 0.0, "commutativity");
  MatrixF bc_sum, lhs, rhs1, rhs2, rhs;
  add(b, c, bc_sum);
  hadamard(a, bc_sum, lhs);
  hadamard(a, b, rhs1);
  hadamard(a, c, rhs2);
  add(rhs1, rhs2, rhs);
  expect_near(lhs, rhs, 1e-5, "distributivity");
}

TEST(Concat, Eq8FusionIdentity) {
  // [D | E] x [F ; B] == D x F + E x B — the identity behind Eq. 8.
  const std::size_t m = 7, k1 = 5, k2 = 9, n = 4;
  const MatrixF d = random_matrix(m, k1, 918);
  const MatrixF e = random_matrix(m, k2, 919);
  const MatrixF f = random_matrix(k1, n, 920);
  const MatrixF b = random_matrix(k2, n, 921);

  const MatrixF fused = matmul(hconcat(d, e), vconcat(f, b));
  MatrixF split;
  add(matmul(d, f), matmul(e, b), split);
  expect_near(fused, split, 1e-4, "Eq. 8 fusion identity");
}

TEST(Col2Im, LinearInPatches) {
  ConvShape s;
  s.in_h = 6;
  s.in_w = 6;
  s.kernel = 3;
  const std::size_t batch = 2;
  const MatrixF p1 = random_matrix(s.patch_rows(batch), s.patch_cols(), 922);
  const MatrixF p2 = random_matrix(s.patch_rows(batch), s.patch_cols(), 923);
  MatrixF sum;
  add(p1, p2, sum);
  MatrixF rhs;
  add(col2im(p1, s, batch), col2im(p2, s, batch), rhs);
  expect_near(col2im(sum, s, batch), rhs, 1e-5, "col2im linearity");
}

}  // namespace
}  // namespace psml::tensor
