// Golden-fixture selftest for psml-ct, the constant-time / implicit-flow
// analyzer. Mirrors lint_selftest.cpp (shared harness in selftest_util.hpp):
// fixtures under tests/lint_fixtures/ct/ mark every line that MUST be
// reported with `// EXPECT: <rule-id>` next to clean twins, and the reported
// (file, line, rule) set must equal the EXPECT set exactly. Also validates
// the SARIF log CI uploads, allowlist suppression, and the combined
// three-tool allowlist budget (psml-lint + psml-taint + psml-ct share one
// <=10-entry budget; see docs/ANALYSIS.md).
//
// Invocation (wired up in tests/CMakeLists.txt):
//   ct_selftest <psml-ct> <fixtures-dir> <lint-allowlist> <taint-allowlist>
//               <ct-allowlist>

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>
#include <string>

#include "selftest_util.hpp"

namespace fs = std::filesystem;
using namespace psml::selftest;

namespace {

std::string g_ct_bin;
fs::path g_fixtures;
fs::path g_allowlists[3];  // psml-lint, psml-taint, psml-ct (repo copies)

}  // namespace

TEST(CtSelftest, CtFixturesExactMatch) {
  const fs::path dir = g_fixtures / "ct";
  const ToolRun r = run_tool(g_ct_bin + " " + dir.string());
  expect_same_findings(parse_findings(r.output), expected_findings(dir));
  EXPECT_NE(r.exit_code, 0) << "seeded violations must fail the run";
}

TEST(CtSelftest, EveryRuleClassIsSeeded) {
  // Guards the fixture tree itself: each of the four finding classes must
  // keep at least one seeded leak, or a regression in that rule would pass
  // the exact-match test vacuously.
  const auto want = expected_findings(g_fixtures / "ct");
  for (const char* rule : {"secret-branch", "secret-index",
                           "variable-latency", "non-ct-declassify"}) {
    bool seeded = false;
    for (const auto& [file, line, r] : want) seeded |= (r == rule);
    EXPECT_TRUE(seeded) << "no fixture seeds [" << rule << "]";
  }
}

TEST(CtSelftest, CtSarifValid) {
  const fs::path dir = g_fixtures / "ct";
  const fs::path sarif = temp_file("psml_selftest_ct.sarif");
  run_tool(g_ct_bin + " --sarif " + sarif.string() + " " + dir.string());
  EXPECT_EQ(check_sarif(sarif, "psml-ct"), expected_findings(dir).size());
  fs::remove(sarif);
}

TEST(CtSelftest, AllowlistSuppressesAndMarksSarif) {
  const fs::path dir = g_fixtures / "ct";
  const fs::path allow = temp_file("psml_selftest_ct_allow.txt");
  {
    std::ofstream os(allow);
    // cross_file_gate_caller.cpp carries exactly one secret-branch finding.
    os << "secret-branch cross_file_gate_caller.cpp fixture: suppression\n";
  }
  const fs::path sarif = temp_file("psml_selftest_ct_suppressed.sarif");
  const ToolRun r = run_tool(g_ct_bin + " --allowlist " + allow.string() +
                             " --sarif " + sarif.string() + " " +
                             dir.string());

  std::set<Finding> want = expected_findings(dir);
  want.erase({"cross_file_gate_caller.cpp", 6, "secret-branch"});
  expect_same_findings(parse_findings(r.output), want);
  EXPECT_NE(r.output.find("1 allowlisted"), std::string::npos) << r.output;

  EXPECT_EQ(check_sarif(sarif, "psml-ct"), want.size() + 1);
  EXPECT_NE(read_file(sarif).find("\"suppressions\""), std::string::npos);
  fs::remove(allow);
  fs::remove(sarif);
}

TEST(CtSelftest, CombinedAllowlistBudgetWithinTen) {
  // The three analyzers budget suppressions jointly: 10 entries total across
  // the repo, enforced here because each tool alone only checks its own file.
  std::size_t total = 0;
  for (const auto& p : g_allowlists) {
    ASSERT_TRUE(fs::exists(p)) << p << " missing";
    const std::size_t n = count_allowlist_entries(p);
    std::printf("  %s: %zu entr%s\n", p.string().c_str(), n,
                n == 1 ? "y" : "ies");
    total += n;
  }
  EXPECT_LE(total, 10u)
      << "combined psml-lint/psml-taint/psml-ct allowlist budget exceeded; "
         "fix or annotate the code instead of suppressing";
}

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  if (argc < 6) {
    std::fprintf(stderr,
                 "usage: ct_selftest CT_BIN FIXTURE_DIR LINT_ALLOWLIST "
                 "TAINT_ALLOWLIST CT_ALLOWLIST\n");
    return 2;
  }
  g_ct_bin = argv[1];
  g_fixtures = argv[2];
  g_allowlists[0] = argv[3];
  g_allowlists[1] = argv[4];
  g_allowlists[2] = argv[5];
  return RUN_ALL_TESTS();
}
