// Protocol-level walkthrough of one Beaver triplet multiplication — prints
// every quantity of Sec. 2.2 (Eqs. 1-6) on a tiny matrix so the protocol can
// be followed by eye. Also demonstrates the ring64 fixed-point mode.
#include <cstdio>
#include <thread>

#include "mpc/ring_protocol.hpp"
#include "mpc/secure_matmul.hpp"
#include "mpc/share.hpp"
#include "net/local_channel.hpp"
#include "tensor/gemm.hpp"

using namespace psml;

namespace {

void print(const char* name, const MatrixF& m) {
  std::printf("%s =\n", name);
  for (std::size_t r = 0; r < m.rows(); ++r) {
    std::printf("  [");
    for (std::size_t c = 0; c < m.cols(); ++c) {
      std::printf(" %7.3f", m(r, c));
    }
    std::printf(" ]\n");
  }
}

}  // namespace

int main() {
  const MatrixF a{{1.0f, 2.0f}, {3.0f, 4.0f}};
  const MatrixF b{{0.5f, -1.0f}, {2.0f, 0.25f}};
  print("A", a);
  print("B", b);
  print("A x B (plaintext reference)", tensor::matmul(a, b));

  // Offline: the dealer samples U, V, computes Z = U x V, shares everything.
  mpc::TripletDealer dealer(nullptr, {false, false, 4242});
  auto [t0, t1] = dealer.make_matmul(2, 2, 2);
  print("U (dealer secret, reconstructed for display)",
        mpc::reconstruct_float(t0.u, t1.u));
  print("Z = U x V", mpc::reconstruct_float(t0.z, t1.z));

  const auto sa = mpc::share_float(a, 1);
  const auto sb = mpc::share_float(b, 2);
  print("A_0 (server0's share — random-looking)", sa.s0);
  print("A_1 (server1's share)", sa.s1);

  // Online: the two servers run Eqs. 4-6 over a channel.
  auto chans = net::LocalChannel::make_pair();
  auto opts = mpc::PartyOptions::parsecureml();
  opts.use_gpu = false;
  opts.adaptive = false;
  mpc::PartyContext ctx0(0, chans.a, nullptr, opts);
  mpc::PartyContext ctx1(1, chans.b, nullptr, opts);

  MatrixF c0, c1;
  std::thread s1([&] { c1 = mpc::secure_matmul(ctx1, sa.s1, sb.s1, t1); });
  c0 = mpc::secure_matmul(ctx0, sa.s0, sb.s0, t0);
  s1.join();
  print("C_0 (server0's result share)", c0);
  print("C_1 (server1's result share)", c1);
  print("C = C_0 + C_1 (client reconstruction)",
        mpc::reconstruct_float(c0, c1));

  // Ring64 fixed-point mode: exact algebra over Z_2^64.
  std::printf("\n--- ring64 fixed-point mode (SecureML algebra) ---\n");
  const auto ra = mpc::share_ring(mpc::encode_fixed(a), 3);
  const auto rb = mpc::share_ring(mpc::encode_fixed(b), 4);
  auto [rt0, rt1] = mpc::make_ring_matmul_triplet(2, 2, 2, 5);
  auto rchans = net::LocalChannel::make_pair();
  mpc::PartyContext rctx0(0, rchans.a, nullptr, opts);
  mpc::PartyContext rctx1(1, rchans.b, nullptr, opts);
  MatrixU64 rc0, rc1;
  std::thread rs1(
      [&] { rc1 = mpc::secure_matmul_ring(rctx1, ra.s1, rb.s1, rt1); });
  rc0 = mpc::secure_matmul_ring(rctx0, ra.s0, rb.s0, rt0);
  rs1.join();
  print("C (ring64, decoded)",
        mpc::decode_fixed(mpc::reconstruct_ring(rc0, rc1)));
  return 0;
}
